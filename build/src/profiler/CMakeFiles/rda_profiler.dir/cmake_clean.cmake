file(REMOVE_RECURSE
  "CMakeFiles/rda_profiler.dir/detector.cpp.o"
  "CMakeFiles/rda_profiler.dir/detector.cpp.o.d"
  "CMakeFiles/rda_profiler.dir/loop_mapper.cpp.o"
  "CMakeFiles/rda_profiler.dir/loop_mapper.cpp.o.d"
  "CMakeFiles/rda_profiler.dir/multi_granularity.cpp.o"
  "CMakeFiles/rda_profiler.dir/multi_granularity.cpp.o.d"
  "CMakeFiles/rda_profiler.dir/report.cpp.o"
  "CMakeFiles/rda_profiler.dir/report.cpp.o.d"
  "CMakeFiles/rda_profiler.dir/reuse_distance.cpp.o"
  "CMakeFiles/rda_profiler.dir/reuse_distance.cpp.o.d"
  "CMakeFiles/rda_profiler.dir/window.cpp.o"
  "CMakeFiles/rda_profiler.dir/window.cpp.o.d"
  "librda_profiler.a"
  "librda_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rda_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
