// Ablation: baseline-scheduler timeslice sensitivity.
//
// The interference the paper attacks comes from time-multiplexed working
// sets evicting each other. A longer timeslice amortizes cache refills
// (fewer, longer residencies); a shorter one approaches round-robin
// thrashing (paper Fig. 1). RDA's advantage should shrink as the quantum
// grows but remain positive while working sets overlap in the LLC.
#include <cstring>
#include <iostream>

#include "exp/harness.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace rda;
  const bool quick = !(argc > 1 && std::strcmp(argv[1], "--full") == 0);
  std::cout << "=== Ablation: CFS timeslice vs RDA benefit (BLAS-3) ===\n\n";

  const auto specs = workload::table2_workloads();
  const workload::WorkloadSpec spec =
      quick ? workload::scale_workload(
                  workload::find_workload(specs, "BLAS-3"), 0.25, 2)
            : workload::find_workload(specs, "BLAS-3");

  util::Table table({"quantum [ms]", "Linux GFLOPS", "Strict GFLOPS",
                     "speedup", "Linux J", "Strict J"});
  for (const double quantum_ms : {1.0, 3.0, 6.0, 12.0, 24.0, 48.0}) {
    sim::EngineConfig engine;
    engine.machine = sim::MachineConfig::e5_2420();
    engine.calib.quantum = util::ms(quantum_ms);

    exp::RunConfig cfg;
    cfg.engine = engine;
    cfg.policy = core::PolicyKind::kLinuxDefault;
    const exp::RunRow base = exp::run_workload(spec, cfg);
    cfg.policy = core::PolicyKind::kStrict;
    const exp::RunRow strict = exp::run_workload(spec, cfg);

    table.begin_row()
        .add_cell(quantum_ms, 1)
        .add_cell(base.gflops, 2)
        .add_cell(strict.gflops, 2)
        .add_cell(strict.gflops / base.gflops, 2)
        .add_cell(base.system_joules, 0)
        .add_cell(strict.system_joules, 0);
  }
  std::cout << table.render()
            << "\n(RDA:Strict is timeslice-insensitive: admitted periods own "
               "their cache share regardless of preemption frequency)\n";
  return 0;
}
