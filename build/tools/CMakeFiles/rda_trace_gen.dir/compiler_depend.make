# Empty compiler generated dependencies file for rda_trace_gen.
# This may be replaced when dependencies are built.
