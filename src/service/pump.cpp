#include "service/pump.hpp"

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "service/queue.hpp"
#include "service/shard.hpp"
#include "util/check.hpp"

namespace rda::service {

namespace {

core::AdmitRequest make_request(sim::ThreadId thread, double demand) {
  core::AdmitRequest request;
  request.thread = thread;
  request.process = thread;
  request.demands = {{ResourceKind::kLLC, demand}};
  return request;
}

}  // namespace

PumpResult run_pump(const PumpConfig& config) {
  RDA_CHECK_MSG(config.producers >= 1, "pump needs at least one producer");
  RDA_CHECK_MSG(config.nodes >= 1, "pump needs at least one node");
  RDA_CHECK_MSG(config.shards >= 1, "pump needs at least one shard");
  const int nodes = config.nodes;
  const int shards = config.shards;
  const std::uint64_t total_ops =
      static_cast<std::uint64_t>(config.producers) *
      config.ops_per_producer;
  RDA_CHECK_MSG(total_ops + 1000 <
                    static_cast<std::uint64_t>(sim::kInvalidThread),
                "op count exceeds the per-op thread-id space");

  std::vector<std::unique_ptr<core::AdmissionCore>> cores;
  cores.reserve(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    core::AdmissionConfig cc;
    cc.llc_capacity_bytes = config.llc_capacity_bytes;
    cc.policy = core::PolicyKind::kStrict;
    cores.push_back(std::make_unique<core::AdmissionCore>(cc));
    // Wakes only ever target the squatters, which never fit; a no-op
    // waker documents that nobody sleeps on these cores.
    cores.back()->set_batch_waker([](const auto&) {});
  }

  // Park squatters on EVERY node: the first holds 55% of the LLC, the
  // rest park behind it (two cannot co-fit), so each node's waitlist
  // stays non-empty and every producer op goes through the slow lane.
  const sim::ThreadId squatter_base =
      static_cast<sim::ThreadId>(total_ops + 1);
  std::vector<std::vector<core::PeriodId>> squatter_parked(
      static_cast<std::size_t>(nodes));
  std::vector<core::PeriodId> squatter_held(
      static_cast<std::size_t>(nodes), core::kInvalidPeriod);
  for (int n = 0; n < nodes; ++n) {
    for (int s = 0; s < config.squatters; ++s) {
      const auto id = static_cast<sim::ThreadId>(
          squatter_base + static_cast<sim::ThreadId>(
                              n * config.squatters + s));
      const core::AdmitTicket ticket = cores[static_cast<std::size_t>(n)]
          ->admit(make_request(id, 0.55 * config.llc_capacity_bytes), 0.0);
      if (s == 0) {
        RDA_CHECK_MSG(ticket.admitted, "first squatter must fit alone");
        squatter_held[static_cast<std::size_t>(n)] = ticket.id;
      } else {
        RDA_CHECK_MSG(!ticket.admitted, "squatters must not co-fit");
        squatter_parked[static_cast<std::size_t>(n)].push_back(ticket.id);
      }
    }
  }

  const double demand = config.demand_fraction * config.llc_capacity_bytes;
  const auto start = std::chrono::steady_clock::now();

  if (!config.batched) {
    std::vector<std::thread> producers;
    producers.reserve(static_cast<std::size_t>(config.producers));
    for (int p = 0; p < config.producers; ++p) {
      producers.emplace_back([&, p] {
        const std::uint64_t base =
            static_cast<std::uint64_t>(p) * config.ops_per_producer;
        for (std::uint64_t i = 0; i < config.ops_per_producer; ++i) {
          const auto thread = static_cast<sim::ThreadId>(base + i);
          core::AdmissionCore& core =
              *cores[static_cast<std::size_t>(thread) %
                     static_cast<std::size_t>(nodes)];
          const core::AdmitTicket ticket =
              core.admit(make_request(thread, demand), 0.0);
          RDA_CHECK_MSG(ticket.admitted,
                        "pump demand sized to always admit");
          core.release(ticket.id, {}, 0.0);
        }
      });
    }
    for (std::thread& t : producers) t.join();
  } else {
    // One queue per shard; an op's shard is decided at push time from its
    // node, so drainer s is the SOLE consumer of queue s.
    std::vector<std::unique_ptr<SubmissionQueue<sim::ThreadId>>> queues;
    queues.reserve(static_cast<std::size_t>(shards));
    for (int s = 0; s < shards; ++s) {
      queues.push_back(std::make_unique<SubmissionQueue<sim::ThreadId>>(
          config.queue_capacity));
    }

    // Drainer s terminates after draining exactly the ops routed to it:
    // ids are 0..total_ops-1, so node n carries ceil((total_ops - n) /
    // nodes) ops and shard s the sum over its nodes.
    std::vector<std::uint64_t> expected(static_cast<std::size_t>(shards),
                                        0);
    for (int n = 0; n < nodes; ++n) {
      const std::uint64_t on_node =
          n < static_cast<int>(total_ops)
              ? (total_ops - static_cast<std::uint64_t>(n) +
                 static_cast<std::uint64_t>(nodes) - 1) /
                    static_cast<std::uint64_t>(nodes)
              : 0;
      expected[static_cast<std::size_t>(shard_of_node(n, shards))] +=
          on_node;
    }

    std::vector<std::thread> producers;
    producers.reserve(static_cast<std::size_t>(config.producers));
    for (int p = 0; p < config.producers; ++p) {
      producers.emplace_back([&, p] {
        const std::uint64_t base =
            static_cast<std::uint64_t>(p) * config.ops_per_producer;
        for (std::uint64_t i = 0; i < config.ops_per_producer; ++i) {
          const auto thread = static_cast<sim::ThreadId>(base + i);
          const int node = static_cast<int>(
              thread % static_cast<sim::ThreadId>(nodes));
          SubmissionQueue<sim::ThreadId>& queue =
              *queues[static_cast<std::size_t>(shard_of_node(node, shards))];
          while (!queue.push(thread)) std::this_thread::yield();
        }
      });
    }

    std::vector<std::thread> drainers;
    drainers.reserve(static_cast<std::size_t>(shards));
    for (int s = 0; s < shards; ++s) {
      drainers.emplace_back([&, s] {
        SubmissionQueue<sim::ThreadId>& queue =
            *queues[static_cast<std::size_t>(s)];
        std::vector<sim::ThreadId> batch;
        std::vector<std::vector<core::AdmitRequest>> requests(
            static_cast<std::size_t>(nodes));
        std::vector<core::PeriodId> admitted;
        std::uint64_t drained = 0;
        while (drained < expected[static_cast<std::size_t>(s)]) {
          batch.clear();
          queue.pop_batch(batch, config.batch_max);
          if (batch.empty()) {
            std::this_thread::yield();
            continue;
          }
          drained += batch.size();
          // Bucket per node so each of this drainer's nodes pays ONE
          // admit_batch/release_batch for its share of the batch.
          for (auto& bucket : requests) bucket.clear();
          for (const sim::ThreadId thread : batch) {
            const auto node = static_cast<std::size_t>(
                thread % static_cast<sim::ThreadId>(nodes));
            requests[node].push_back(make_request(thread, demand));
          }
          for (int n = s; n < nodes; n += shards) {
            auto& bucket = requests[static_cast<std::size_t>(n)];
            if (bucket.empty()) continue;
            const std::vector<core::AdmitTicket> tickets =
                cores[static_cast<std::size_t>(n)]->admit_batch(
                    std::move(bucket), 0.0);
            bucket = {};
            admitted.clear();
            for (const core::AdmitTicket& ticket : tickets) {
              RDA_CHECK_MSG(ticket.admitted,
                            "pump demand sized to always admit");
              admitted.push_back(ticket.id);
            }
            cores[static_cast<std::size_t>(n)]->release_batch(admitted,
                                                              0.0);
          }
        }
      });
    }

    for (std::thread& t : producers) t.join();
    for (std::thread& t : drainers) t.join();
  }

  const auto stop = std::chrono::steady_clock::now();

  // Unwind the squatters so every core audit comes out clean.
  for (int n = 0; n < nodes; ++n) {
    for (const core::PeriodId id :
         squatter_parked[static_cast<std::size_t>(n)]) {
      cores[static_cast<std::size_t>(n)]->try_withdraw(id, 0.0);
    }
    if (squatter_held[static_cast<std::size_t>(n)] !=
        core::kInvalidPeriod) {
      cores[static_cast<std::size_t>(n)]->release(
          squatter_held[static_cast<std::size_t>(n)], {}, 0.0);
    }
    const core::AdmissionCore::AuditReport audit =
        cores[static_cast<std::size_t>(n)]->audit();
    RDA_CHECK_MSG(audit.ok, audit.detail);
  }

  PumpResult result;
  result.ops = total_ops;
  result.seconds =
      std::chrono::duration<double>(stop - start).count();
  result.mops = result.seconds > 0.0
                    ? static_cast<double>(total_ops) / result.seconds / 1e6
                    : 0.0;
  return result;
}

}  // namespace rda::service
