// Phase programs: what a simulated thread executes.
//
// A phase is the simulator-side image of a progress period (§2): a stretch
// of execution with a roughly constant resource demand — an amount of work
// (flops), a working-set size, and a reuse level. `marked` phases carry the
// pp_begin/pp_end annotations; unmarked phases model un-instrumented code
// that the paper's extension "ignores ... and schedules directly on the
// operating system".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace rda::sim {

struct PhaseSpec {
  double flops = 0.0;            ///< work to retire in this phase
  std::uint64_t wss_bytes = 0;   ///< TRUE working set (drives cache behaviour)
  /// What the application DECLARES to the scheduler via pp_begin; 0 means
  /// "honest" (same as wss_bytes). Letting these differ models developers
  /// who over- or under-estimate their working sets — the scenario the
  /// counter-feedback extension corrects.
  std::uint64_t declared_wss_bytes = 0;
  /// Declared DRAM-bandwidth demand (bytes/second); 0 = undeclared. Gated
  /// only when the scheduler's multi-resource extension is enabled.
  double bw_bytes_per_sec = 0.0;
  /// Declared package-power demand (watts); 0 = undeclared. Gated only when
  /// the scheduler configures an energy budget (RAPL-style power cap).
  double watts = 0.0;
  ReuseLevel reuse = ReuseLevel::kLow;

  std::uint64_t declared_wss() const {
    return declared_wss_bytes != 0 ? declared_wss_bytes : wss_bytes;
  }
  bool marked = false;           ///< wrapped in pp_begin/pp_end
  bool barrier_after = false;    ///< process-wide barrier when phase ends
  /// The phase body performs blocking synchronization (locks/barriers).
  /// Legal only on unmarked phases (§3.4: "we do not allow progress periods
  /// to contain blocking synchronizations").
  bool contains_blocking_sync = false;
  std::string label;             ///< for reports ("dgemm", "wnsq.PP1", ...)
};

/// The per-thread script: phases executed in order.
struct PhaseProgram {
  std::vector<PhaseSpec> phases;

  double total_flops() const {
    double sum = 0.0;
    for (const auto& p : phases) sum += p.flops;
    return sum;
  }

  std::size_t marked_count() const {
    std::size_t n = 0;
    for (const auto& p : phases) n += p.marked ? 1 : 0;
    return n;
  }
};

/// Builder so workload definitions read declaratively.
class ProgramBuilder {
 public:
  /// Appends a marked progress period.
  ProgramBuilder& period(std::string label, double flops,
                         std::uint64_t wss_bytes, ReuseLevel reuse) {
    PhaseSpec p;
    p.label = std::move(label);
    p.flops = flops;
    p.wss_bytes = wss_bytes;
    p.reuse = reuse;
    p.marked = true;
    program_.phases.push_back(std::move(p));
    return *this;
  }

  /// Appends a marked period that also declares a bandwidth demand
  /// (multi-resource extension).
  ProgramBuilder& period_bw(std::string label, double flops,
                            std::uint64_t wss_bytes, ReuseLevel reuse,
                            double bw_bytes_per_sec) {
    period(std::move(label), flops, wss_bytes, reuse);
    program_.phases.back().bw_bytes_per_sec = bw_bytes_per_sec;
    return *this;
  }

  /// Declares a package-power demand (watts) on the most recent phase
  /// (multi-resource extension: admitted against the energy budget).
  ProgramBuilder& watts(double watts) {
    if (!program_.phases.empty()) program_.phases.back().watts = watts;
    return *this;
  }

  /// Appends an un-instrumented phase (default-scheduled).
  ProgramBuilder& plain(std::string label, double flops,
                        std::uint64_t wss_bytes, ReuseLevel reuse) {
    PhaseSpec p;
    p.label = std::move(label);
    p.flops = flops;
    p.wss_bytes = wss_bytes;
    p.reuse = reuse;
    p.marked = false;
    program_.phases.push_back(std::move(p));
    return *this;
  }

  /// Overrides the declared working set of the most recent phase (a
  /// developer's mis-estimate; the counter-feedback extension corrects it).
  ProgramBuilder& declared(std::uint64_t declared_wss_bytes) {
    if (!program_.phases.empty()) {
      program_.phases.back().declared_wss_bytes = declared_wss_bytes;
    }
    return *this;
  }

  /// Marks a process-wide barrier after the most recent phase. Blocking
  /// synchronization may not live inside a progress period (§3.4), so the
  /// barrier attaches to phase *ends* only.
  ProgramBuilder& barrier() {
    if (!program_.phases.empty()) program_.phases.back().barrier_after = true;
    return *this;
  }

  PhaseProgram build() { return std::move(program_); }

 private:
  PhaseProgram program_;
};

}  // namespace rda::sim
