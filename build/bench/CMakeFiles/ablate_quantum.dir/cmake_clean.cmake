file(REMOVE_RECURSE
  "CMakeFiles/ablate_quantum.dir/ablate_quantum.cpp.o"
  "CMakeFiles/ablate_quantum.dir/ablate_quantum.cpp.o.d"
  "ablate_quantum"
  "ablate_quantum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_quantum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
