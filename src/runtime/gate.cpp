#include "runtime/gate.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "util/check.hpp"

namespace rda::rt {

namespace {

core::AdmissionConfig to_core_config(const GateConfig& config) {
  core::AdmissionConfig c;
  c.llc_capacity_bytes = config.llc_capacity_bytes;
  c.bandwidth_capacity = config.bandwidth_capacity;
  c.policy = config.policy;
  c.oversubscription = config.oversubscription;
  c.fast_path = config.fast_path;
  c.partitioning = config.partitioning;
  c.feedback = config.feedback;
  c.monitor = config.monitor;
  c.trace_sink = config.trace_sink;
  c.fault_injector = config.fault_injector;
  return c;
}

/// Gates opted into reap_on_thread_exit. Deliberately leaked (never
/// destroyed): the thread_local exit guards of detached threads can run
/// after static destructors, and must still find a live registry.
struct ExitReapRegistry {
  std::mutex mu;
  std::vector<AdmissionGate*> gates;
};

ExitReapRegistry& exit_registry() {
  static ExitReapRegistry* r = new ExitReapRegistry;
  return *r;
}

void register_for_exit_reap(AdmissionGate* gate) {
  ExitReapRegistry& r = exit_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.gates.push_back(gate);
}

void deregister_for_exit_reap(AdmissionGate* gate) {
  ExitReapRegistry& r = exit_registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.gates.erase(std::remove(r.gates.begin(), r.gates.end(), gate),
                r.gates.end());
}

/// Runs at thread exit and reaps the thread from every registered gate. The
/// registry lock is held across the reaps so a gate mid-destruction (which
/// deregisters first) can never be reached half-dead.
struct ThreadExitGuard {
  std::uint32_t tid = 0;
  ~ThreadExitGuard() {
    ExitReapRegistry& r = exit_registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (AdmissionGate* gate : r.gates) gate->reap_thread(tid);
  }
};

void arm_thread_exit_guard(std::uint32_t tid) {
  thread_local ThreadExitGuard guard{tid};
  guard.tid = tid;  // idempotent; also silences unused-variable concerns
}

}  // namespace

AdmissionGate::AdmissionGate(GateConfig config)
    : config_(config),
      core_(to_core_config(config)),
      epoch_(std::chrono::steady_clock::now()) {
  // The kernel wake event: flag the thread and ping every sleeper. Runs
  // under mu_ (the core is only ever called with mu_ held), so the insert
  // needs no further synchronization. With an injector attached the
  // notification itself becomes a fault site: a lost wake leaves the grant
  // standing core-side (sliced waiters recover it); a delayed wake sets the
  // flag but swallows the ping (the next slice poll finds it).
  core_.set_waker([this](sim::ThreadId tid) {
    const std::uint32_t token = static_cast<std::uint32_t>(tid);
    if (config_.fault_injector != nullptr) {
      const fault::FaultSpec* fired =
          config_.fault_injector->consult(fault::Hook::kWake, tid);
      if (fired != nullptr) {
        if (fired->kind == fault::FaultKind::kLostWake) {
          ++lost_wakes_;
          return;
        }
        if (fired->kind == fault::FaultKind::kDelayedWake) {
          granted_.insert(token);
          return;
        }
      }
    }
    granted_.insert(token);
    cv_.notify_all();
  });
  if (config_.reap_on_thread_exit) register_for_exit_reap(this);
}

AdmissionGate::~AdmissionGate() {
  if (config_.reap_on_thread_exit) deregister_for_exit_reap(this);
}

std::uint32_t AdmissionGate::self_id() {
  // thread_local slot token: assigned once per OS thread, never recycled
  // within the process, shared across all gates (the token only has to
  // identify the thread, not the gate).
  static std::atomic<std::uint32_t> next_token{1};
  thread_local const std::uint32_t token =
      next_token.fetch_add(1, std::memory_order_relaxed);
  return token;
}

std::uint32_t AdmissionGate::group_of(std::uint32_t thread_id) const {
  const auto it = groups_.find(thread_id);
  // Default: every thread is its own singleton group, so pool semantics
  // never trigger unless join_group was called.
  return it == groups_.end() ? thread_id : it->second;
}

double AdmissionGate::now_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

std::optional<core::PeriodId> AdmissionGate::begin_impl(
    std::vector<core::ResourceDemand> demands, ReuseLevel reuse,
    std::string label, WaitMode mode, std::chrono::nanoseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  const std::uint32_t tid = self_id();
  if (config_.reap_on_thread_exit) arm_thread_exit_guard(tid);

  core::AdmitRequest request;
  request.thread = tid;
  request.process = group_of(tid);
  request.demands = std::move(demands);
  request.reuse = reuse;
  request.label = std::move(label);

  const core::AdmitTicket ticket = core_.admit(std::move(request),
                                               now_seconds());
  if (ticket.admitted) return ticket.id;

  if (mode == WaitMode::kTry) {
    const bool withdrawn = core_.withdraw(ticket.id, now_seconds());
    RDA_CHECK(withdrawn);
    return std::nullopt;
  }

  ++waits_;
  const double wait_start = now_seconds();

  if (hardened()) {
    const WaitOutcome outcome =
        hardened_wait(lock, tid, ticket.id, mode, timeout);
    total_wait_seconds_ += now_seconds() - wait_start;
    if (outcome.failure != nullptr && mode == WaitMode::kBlocking) {
      throw AdmissionRejected(ticket.id, outcome.failure);
    }
    return outcome.id;
  }

  // Paper-faithful fast path: a single predicate wait on the grant flag.
  bool granted = true;
  if (mode == WaitMode::kBlocking) {
    cv_.wait(lock, [&] { return granted_.count(tid) != 0; });
  } else {
    granted = cv_.wait_for(lock, timeout,
                           [&] { return granted_.count(tid) != 0; });
  }
  total_wait_seconds_ += now_seconds() - wait_start;
  if (granted) {
    granted_.erase(tid);
    return ticket.id;
  }
  // Timed out. Withdraw can still lose to a wake that fired between the
  // predicate's last false and re-acquiring mu_: then the period is already
  // admitted (its load charged, the grant flagged) and withdraw returns
  // false — consume the grant instead of stranding the capacity.
  if (!core_.withdraw(ticket.id, now_seconds())) {
    RDA_CHECK_MSG(granted_.count(tid) != 0,
                  "timed-out period " << ticket.id
                                      << " already admitted but no grant "
                                         "flagged for thread "
                                      << tid);
    granted_.erase(tid);
    return ticket.id;
  }
  return std::nullopt;
}

AdmissionGate::WaitOutcome AdmissionGate::hardened_wait(
    std::unique_lock<std::mutex>& lock, std::uint32_t tid, core::PeriodId id,
    WaitMode mode, std::chrono::nanoseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  double slice = config_.retry.initial_slice_seconds;
  const bool timed_watchdog = config_.monitor.watchdog.enable &&
                              config_.monitor.watchdog.max_wait_seconds > 0.0;
  for (;;) {
    // Fate checks, in precedence order: an explicit grant wins, then the
    // terminal verdicts, then the lost-wake recovery probe.
    if (granted_.erase(tid) != 0) return {id, nullptr};
    if (core_.take_rejection(id)) {
      return {std::nullopt, "starvation watchdog evicted the request"};
    }
    if (core_.take_reclaimed(id)) {
      return {std::nullopt, "waitlisted period was reclaimed"};
    }
    if (core_.is_admitted(id)) {
      // Admitted core-side but the notification never arrived (injected
      // loss): consume the grant directly.
      ++recovered_wakes_;
      return {id, nullptr};
    }
    // Drive the time-triggered watchdog from the waiter itself — the native
    // gate has no other periodic actor. An escalation may have settled our
    // own fate; re-check before sleeping.
    if (timed_watchdog && core_.watchdog_tick(now_seconds())) continue;

    if (mode == WaitMode::kTimed &&
        std::chrono::steady_clock::now() >= deadline) {
      if (!core_.withdraw(id, now_seconds())) {
        // Already admitted: the grant raced the timeout, or its wake was
        // injected away — consume it either way.
        if (granted_.erase(tid) == 0) ++recovered_wakes_;
        return {id, nullptr};
      }
      return {std::nullopt, nullptr};  // plain timeout
    }

    auto wait_dur = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::duration<double>(slice));
    if (mode == WaitMode::kTimed) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::nanoseconds>(deadline - std::chrono::steady_clock::now());
      wait_dur = std::max(std::chrono::nanoseconds(0),
                          std::min(wait_dur, remaining));
    }
    cv_.wait_for(lock, wait_dur);
    slice = std::min(slice * config_.retry.backoff_multiplier,
                     config_.retry.max_slice_seconds);
  }
}

core::PeriodId AdmissionGate::begin(ResourceKind resource, double demand,
                                    ReuseLevel reuse, std::string label) {
  const std::optional<core::PeriodId> id =
      begin_impl({{resource, demand}}, reuse, std::move(label),
                 WaitMode::kBlocking, {});
  RDA_CHECK(id.has_value());
  return *id;
}

core::PeriodId AdmissionGate::begin_multi(
    std::vector<core::ResourceDemand> demands, ReuseLevel reuse,
    std::string label) {
  const std::optional<core::PeriodId> id =
      begin_impl(std::move(demands), reuse, std::move(label),
                 WaitMode::kBlocking, {});
  RDA_CHECK(id.has_value());
  return *id;
}

std::optional<core::PeriodId> AdmissionGate::try_begin(ResourceKind resource,
                                                       double demand,
                                                       ReuseLevel reuse,
                                                       std::string label) {
  return begin_impl({{resource, demand}}, reuse, std::move(label),
                    WaitMode::kTry, {});
}

std::optional<core::PeriodId> AdmissionGate::begin_for(
    ResourceKind resource, double demand, ReuseLevel reuse,
    std::chrono::nanoseconds timeout, std::string label) {
  return begin_impl({{resource, demand}}, reuse, std::move(label),
                    WaitMode::kTimed, timeout);
}

void AdmissionGate::end(core::PeriodId id) {
  end(id, core::ReleaseObservation{});
}

void AdmissionGate::end(core::PeriodId id,
                        const core::ReleaseObservation& observed) {
  std::lock_guard<std::mutex> lock(mu_);
  core_.release(id, observed, now_seconds());
  // The release's rescan may have escalated waiters (round-triggered
  // watchdog); rung-3 rejections get no Waker call, so ping the sliced
  // sleepers to discover their fate promptly.
  if (hardened()) cv_.notify_all();
}

void AdmissionGate::reap_thread(std::uint32_t thread_id) {
  std::lock_guard<std::mutex> lock(mu_);
  // remember_waiter: the reaped thread may still be alive inside a timed
  // wait (supervisor-initiated reclaim); it must be able to observe the
  // reclaim from its sliced wait instead of withdrawing a vanished period.
  core_.reap(thread_id, now_seconds(), /*remember_waiter=*/true);
  granted_.erase(thread_id);
  groups_.erase(thread_id);
  // Freed capacity (or a rescan verdict) may concern any sleeper.
  cv_.notify_all();
}

std::size_t AdmissionGate::sweep(std::uint64_t max_epoch_age) {
  std::lock_guard<std::mutex> lock(mu_);
  // remember_waiters: a live waiter evicted by the sweep must be able to
  // observe the reclaim from its sliced wait.
  const std::size_t reaped =
      core_.sweep(max_epoch_age, now_seconds(), /*remember_waiters=*/true);
  if (reaped > 0) cv_.notify_all();
  return reaped;
}

void AdmissionGate::heartbeat() {
  std::lock_guard<std::mutex> lock(mu_);
  core_.heartbeat(self_id());
}

void AdmissionGate::advance_epoch() {
  std::lock_guard<std::mutex> lock(mu_);
  core_.advance_epoch();
}

void AdmissionGate::mark_pool(std::uint32_t group) {
  std::lock_guard<std::mutex> lock(mu_);
  core_.mark_pool(group);
}

void AdmissionGate::join_group(std::uint32_t group) {
  std::lock_guard<std::mutex> lock(mu_);
  groups_[self_id()] = group;
}

GateStats AdmissionGate::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  GateStats s;
  s.monitor = core_.stats();
  s.waits = waits_;
  s.total_wait_seconds = total_wait_seconds_;
  s.fast_path_hits = core_.fast_path_hits();
  s.partitioned_periods = core_.partitioned_periods();
  s.lost_wakes = lost_wakes_;
  s.recovered_wakes = recovered_wakes_;
  return s;
}

double AdmissionGate::usage(ResourceKind resource) const {
  std::lock_guard<std::mutex> lock(mu_);
  return core_.resources().usage(resource);
}

std::size_t AdmissionGate::waiting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return core_.monitor().waitlist().size();
}

}  // namespace rda::rt
