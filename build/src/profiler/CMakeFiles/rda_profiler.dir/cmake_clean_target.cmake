file(REMOVE_RECURSE
  "librda_profiler.a"
)
