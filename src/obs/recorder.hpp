// EventRecorder — the standard concrete TraceSink.
//
// Owns the event ring, per-kind counters, and the wait-latency histogram
// (block→wake matched online by period id, so force-admitted and
// pool-group wakes are timed too). Thread-safe: the native gate already
// serializes emissions under its mutex, but the recorder does not depend
// on that.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/ring.hpp"
#include "obs/sink.hpp"

namespace rda::obs {

class EventRecorder final : public TraceSink {
 public:
  explicit EventRecorder(std::size_t capacity = 1 << 16);

  void record(const Event& event) override;

  /// Recorded events still held, oldest first.
  std::vector<Event> events() const { return ring_.snapshot(); }
  std::uint64_t total_recorded() const { return ring_.total_recorded(); }
  std::uint64_t dropped() const { return ring_.dropped(); }

  std::uint64_t count(EventKind kind) const;
  WaitHistogram wait_histogram() const;

 private:
  EventRing ring_;
  mutable SpinLock lock_;  ///< guards counts_, waits_, block_time_
  std::array<std::uint64_t, kNumEventKinds> counts_{};
  WaitHistogram waits_;
  /// Block timestamp of periods currently parked (consumed on wake).
  std::unordered_map<core::PeriodId, double> block_time_;
};

}  // namespace rda::obs
