#!/usr/bin/env bash
# Tier-1 gate: full build + full test suite, then the concurrency-sensitive
# admission/gate tests again under ThreadSanitizer and under ASan+UBSan.
#
#   scripts/tier1.sh            # all stages
#   scripts/tier1.sh --no-tsan  # skip both sanitizer stages
set -euo pipefail
cd "$(dirname "$0")/.."

run_tsan=1
[[ "${1:-}" == "--no-tsan" ]] && run_tsan=0

echo "== tier-1: build + full test suite =="
cmake --preset default
cmake --build --preset default -j "$(nproc)"
ctest --preset default -j "$(nproc)"

if [[ "$run_tsan" == 1 ]]; then
  echo "== tier-1: admission core/gate/parity + profiler + fault tests under ThreadSanitizer =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$(nproc)" \
    --target runtime_test core_test integration_test profiler_test trace_test \
             fault_test service_test
  ( cd build-tsan && ctest \
      -R 'AdmissionGate|AdmissionCore|AdmissionParity|ContendedStress|Sharding|GateRace|ProfilePipeline|TraceArena|MatrixDeterminism|FaultGate|FaultScenario|Watchdog|Reclaim|ServiceRace|ServicePump|ShardMailbox|SubmissionQueue|TenantLedger|Adversary|Credit' \
      --output-on-failure -j "$(nproc)" )

  echo "== tier-1: admission core/gate/waitlist + fault/recovery tests under ASan+UBSan =="
  cmake --preset asan
  cmake --build --preset asan -j "$(nproc)" \
    --target runtime_test core_test integration_test fault_test trace_test \
             util_test service_test
  ( cd build-asan && ctest \
      -R 'AdmissionGate|AdmissionCore|AdmissionParity|ContendedStress|Sharding|GateRace|Waitlist|WakeStrategy|FaultInjector|FaultScenario|FaultGate|Watchdog|Reclaim|TraceCorrupt|AtomicFile|ServiceRace|ServicePump|ServiceFrontEnd|ShardHash|ShardMailbox|ArrivalTrace|SubmissionQueue|TenantLedger|Adversary|Credit' \
      --output-on-failure -j "$(nproc)" )
fi

echo "== tier-1: profiler perf snapshot (BENCH_profiler.json) =="
# Small trace keeps the gate fast; the acceptance-scale run is
#   build/bench/micro_profiler --records 50000000 --jobs 4 --sample-rate 0.01
( cd build/bench && ./micro_profiler --records 2000000 --jobs 4 \
    --sample-rate 0.02 --out BENCH_profiler.json )

echo "== tier-1: gate overhead snapshot (BENCH_gate.json) =="
# Exits non-zero if the uncontended begin/end round trip regresses more
# than 10% over the pre-AdmissionCore baseline (189 ns).
( cd build/bench && ./micro_gate --iters 1000000 --out BENCH_gate.json )

echo "== tier-1: multi-demand gate points (vector admission path) =="
# The 3-demand begin_multi round trip and its 8-thread contended throughput
# must stay within 10% of the committed BENCH_gate.json snapshot after
# normalizing both sides by their own calibration factor (latency scales
# with machine slowness; throughput scales inversely).
json_field() { sed -n "s/.*\"$2\": \([0-9.]*\),*.*/\1/p" "$1"; }
fresh_gate="build/bench/BENCH_gate.json"
fresh_mf="$(json_field "$fresh_gate" machine_factor)"
base_mf="$(json_field BENCH_gate.json machine_factor)"
fresh_multi_ns="$(json_field "$fresh_gate" multi_uncontended_ns)"
base_multi_ns="$(json_field BENCH_gate.json multi_uncontended_ns)"
fresh_multi_mops="$(json_field "$fresh_gate" multi_contended_mops)"
base_multi_mops="$(json_field BENCH_gate.json multi_contended_mops)"
if [[ -z "$base_multi_ns" || -z "$base_multi_mops" ]]; then
  echo "no committed multi-demand baseline yet; recorded ${fresh_multi_ns} ns," \
       "${fresh_multi_mops} Mops/s"
else
  awk -v fns="$fresh_multi_ns" -v bns="$base_multi_ns" \
      -v fmops="$fresh_multi_mops" -v bmops="$base_multi_mops" \
      -v fmf="$fresh_mf" -v bmf="$base_mf" 'BEGIN {
    ns_adj = fns / fmf; ns_base = bns / bmf;
    mops_adj = fmops * fmf; mops_base = bmops * bmf;
    printf "multi uncontended: %.1f ns adj (baseline %.1f, ceiling %.1f)\n",
           ns_adj, ns_base, ns_base * 1.10;
    printf "multi contended:   %.3f Mops/s adj (baseline %.3f, floor %.3f)\n",
           mops_adj, mops_base, mops_base * 0.90;
    exit (ns_adj <= ns_base * 1.10 && mops_adj >= mops_base * 0.90) ? 0 : 1;
  }'
fi

echo "== tier-1: 16-thread contended admission throughput (sharded core) =="
# Scaling gate for the sharded AdmissionCore: the fresh 16-thread point must
# stay within 10% of the committed BENCH_gate.json snapshot. Only meaningful
# with 16 real cores (micro_gate itself emits null below that, where the
# number would measure the OS scheduler, not the gate).
if [[ "$(nproc)" -ge 16 ]]; then
  fresh_mops16="$(sed -n 's/.*"contended_mops_16": \([0-9.]*\),.*/\1/p' \
    build/bench/BENCH_gate.json)"
  committed_mops16="$(sed -n 's/.*"contended_mops_16": \([0-9.]*\),.*/\1/p' \
    BENCH_gate.json)"
  if [[ -z "$fresh_mops16" ]]; then
    echo "error: micro_gate produced no 16-thread point on a >=16-core host"
    exit 1
  fi
  if [[ -z "$committed_mops16" ]]; then
    echo "no committed 16-thread baseline yet; recorded $fresh_mops16 Mops/s"
  else
    awk -v fresh="$fresh_mops16" -v base="$committed_mops16" 'BEGIN {
      floor = base * 0.9;
      printf "16-thread contended: %.3f Mops/s (committed %.3f, floor %.3f)\n",
             fresh, base, floor;
      exit (fresh >= floor) ? 0 : 1;
    }'
  fi
else
  # micro_gate emits the same reason into the JSON so a null baseline is
  # self-describing rather than a mystery.
  reason="$(sed -n 's/.*"contended_mops_16_skipped": "\([^"]*\)".*/\1/p' \
    build/bench/BENCH_gate.json)"
  echo "skipped: ${reason:-$(nproc) hardware threads (<16)}"
fi

echo "== tier-1: simulation hot-path snapshot (BENCH_sim.json) =="
# Exits non-zero if any engine scenario regresses more than 10% over the
# post-overhaul baseline, if the parallel matrix is not bit-identical to the
# serial one, or if sampled-sets miss ratios drift beyond the 2% budget.
( cd build/bench && ./micro_sim_engine --reps 3 --out BENCH_sim.json )

echo "== tier-1: parallel fig9 smoke (determinism across --jobs) =="
# The full fig9 sweep fanned across every core, twice, plus a serial run:
# all three CSVs must be byte-identical or run_matrix has a race.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
build/bench/fig9_gflops --quick --csv --jobs "$(nproc)" > "$smoke_dir/par1.csv"
build/bench/fig9_gflops --quick --csv --jobs "$(nproc)" > "$smoke_dir/par2.csv"
build/bench/fig9_gflops --quick --csv --jobs 1 > "$smoke_dir/serial.csv"
cmp "$smoke_dir/par1.csv" "$smoke_dir/par2.csv"
cmp "$smoke_dir/par1.csv" "$smoke_dir/serial.csv"

echo "== tier-1: power-cap smoke (multi-resource gates + determinism) =="
# Quick energy-cap + mixed-workload cells: the watts budget must hold, the
# LLC+bandwidth combiner must beat LLC-only on GFLOPS/W, and the CSV must
# be byte-identical regardless of --jobs fan-out.
build/bench/power_cap --quick --csv --jobs "$(nproc)" > "$smoke_dir/power_par.csv"
build/bench/power_cap --quick --csv --jobs 1 > "$smoke_dir/power_serial.csv"
cmp "$smoke_dir/power_par.csv" "$smoke_dir/power_serial.csv"
# Exits non-zero when the cap is violated, never binds, or the mixed cell
# loses its 1.05x efficiency edge.
( cd build/bench && ./power_cap --quick --jobs "$(nproc)" \
    --out BENCH_power_quick.json > /dev/null )

echo "== tier-1: fault-matrix smoke (ledger + determinism across --jobs) =="
# Seeded fault grid through both substrates: exits non-zero on any invariant
# ledger failure, and the CSV must be byte-identical regardless of fan-out.
build/tools/fault_matrix --seed 1 --seeds 2 --jobs "$(nproc)" \
  --out "$smoke_dir/fault_par.csv"
build/tools/fault_matrix --seed 1 --seeds 2 --jobs 1 \
  --out "$smoke_dir/fault_serial.csv"
cmp "$smoke_dir/fault_par.csv" "$smoke_dir/fault_serial.csv"

echo "== tier-1: service front-end smoke (determinism across --jobs) =="
# The deterministic service cells (arrival stream -> batched admission ->
# locality routing, including the node-death cell) fanned out and serial:
# byte-identical CSVs or the cell runner has a race / the simulation leaks
# host state into results.
build/bench/service_load --quick --csv --jobs "$(nproc)" \
  > "$smoke_dir/service_par.csv"
build/bench/service_load --quick --csv --jobs 1 \
  > "$smoke_dir/service_serial.csv"
cmp "$smoke_dir/service_par.csv" "$smoke_dir/service_serial.csv"

echo "== tier-1: sharded drain smoke (determinism across --shards) =="
# The same cells through 1, 4, and 16 drain shards: the tenant-hash
# partition plus the seniority-ordered mailbox merge must reproduce the
# single-queue schedule byte-for-byte, mailboxed ledger column included.
# The serial CSV above ran at the default sharding (one per node), so the
# cmp chain also pins default == explicit.
build/bench/service_load --quick --csv --jobs 1 --shards 1 \
  > "$smoke_dir/service_k1.csv"
build/bench/service_load --quick --csv --jobs "$(nproc)" --shards 4 \
  > "$smoke_dir/service_k4.csv"
build/bench/service_load --quick --csv --jobs 1 --shards 16 \
  > "$smoke_dir/service_k16.csv"
cmp "$smoke_dir/service_serial.csv" "$smoke_dir/service_k1.csv"
cmp "$smoke_dir/service_serial.csv" "$smoke_dir/service_k4.csv"
cmp "$smoke_dir/service_serial.csv" "$smoke_dir/service_k16.csv"

echo "== tier-1: adversary smoke (ledger determinism across --jobs/--shards) =="
# The adversarial-tenant cells with the TenantLedger engaged: fanned-out,
# serial, and 1/16-shard runs must be byte-identical — including the
# ledger_fingerprint column, which pins audit order, credit balances, and
# penalty rungs themselves to the K-invariance contract (DESIGN §17).
build/bench/adversary --quick --csv --jobs "$(nproc)" \
  > "$smoke_dir/adversary_par.csv"
build/bench/adversary --quick --csv --jobs 1 \
  > "$smoke_dir/adversary_serial.csv"
build/bench/adversary --quick --csv --jobs 1 --shards 1 \
  > "$smoke_dir/adversary_k1.csv"
build/bench/adversary --quick --csv --jobs "$(nproc)" --shards 16 \
  > "$smoke_dir/adversary_k16.csv"
cmp "$smoke_dir/adversary_par.csv" "$smoke_dir/adversary_serial.csv"
cmp "$smoke_dir/adversary_serial.csv" "$smoke_dir/adversary_k1.csv"
cmp "$smoke_dir/adversary_serial.csv" "$smoke_dir/adversary_k16.csv"

echo "== tier-1: adversary snapshot (BENCH_adversary.json) =="
# Exits non-zero if one WSS inflator among eight tenants costs honest
# tenants < 25% unenforced (the attack stopped mattering), if enforcement
# recovers < 90% of all-honest honest-tenant goodput, if an all-honest
# fleet pays > 2% for the machinery, if Jain fairness fails to improve,
# if credit conservation breaks — or, against the committed snapshot, if
# recovery falls > 0.10 or any cell's honest goodput drops > 10%.
( cd build/bench && ./adversary --out BENCH_adversary.json \
    --baseline ../../BENCH_adversary.json )

echo "== tier-1: service load snapshot (BENCH_service.json) =="
# Exits non-zero if locality routing stops out-serving random placement on
# any arrival shape, if the fault cell loses work, or — against the
# committed snapshot — if goodput drops >10%, p99 admission latency grows
# >10%, or (on >=8-core hosts) the batched submission pump loses its 2x
# edge over per-call admission / the sharded drain loses its 2x scaling
# at 4 drain workers, after machine-drift calibration.
( cd build/bench && ./service_load --out BENCH_service.json \
    --baseline ../../BENCH_service.json )
# The wall-clock pump points are host-dependent: below 8 cores service_load
# writes null metrics with a reason. Surface that reason here (same
# contract as contended_mops_16_skipped) so a null in the snapshot is
# self-describing — and refuse a null on a host big enough to measure.
for key in batch_speedup drain_scaling; do
  val="$(sed -n "s/.*\"$key\": \([0-9.]*\),*.*/\1/p" \
    build/bench/BENCH_service.json)"
  if [[ -n "$val" ]]; then
    echo "pump $key: $val"
  elif [[ "$(nproc)" -ge 8 ]]; then
    echo "error: service_load produced no $key point on a >=8-core host"
    exit 1
  else
    reason="$(sed -n "s/.*\"${key}_skipped\": \"\([^\"]*\)\".*/\1/p" \
      build/bench/BENCH_service.json)"
    echo "pump $key skipped: ${reason:-$(nproc) hardware threads (<8)}"
  fi
done

echo "tier-1 OK"
