// Admission-lifecycle event vocabulary (observability layer).
//
// Every state transition a progress period can take through the scheduler —
// begin, admit, block, wake, force-admit, pool-disable, cancel, end — is
// recordable as one fixed-size typed event. The §5 evaluation figures all
// derive from *when* these transitions happened; aggregate counters alone
// (MonitorStats) cannot localize bugs like a leaked period or a stranded
// pool. Events carry enough payload to reconstruct the full lifecycle of
// each period and to reconcile against the aggregate stats.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

#include "common/types.hpp"
#include "sim/ids.hpp"

namespace rda::obs {

/// One admission-lifecycle transition.
enum class EventKind : std::uint8_t {
  kBegin,        ///< pp_begin entered the scheduler
  kAdmit,        ///< admitted immediately (predicate passed on begin)
  kBlock,        ///< denied; parked on the resource waitlist
  kWake,         ///< admitted from the waitlist and woken
  kForceAdmit,   ///< liveness override (demand can never fit; resource free)
  kPoolDisable,  ///< §3.4: one denied member paused the whole pool
  kCancel,       ///< waitlisted request withdrawn (timeout / try_begin)
  kEnd,          ///< pp_end released the period's load
  kReclaim,      ///< orphaned period reaped; its load/slot returned
  kDemandClamp,  ///< watchdog rung 1: infeasible demand clamped to capacity
  kReject,       ///< watchdog rung 3: waiter evicted with an error
  kNodeDown,     ///< cluster node marked down after repeated failures
  kNodeUp,       ///< cluster node rejoined the placement set
  kEnqueue,      ///< service front end accepted a submission into the queue
  kBatchDrain,   ///< drain loop pulled a batch; demand = batch size
  kSteal,        ///< idle node stole a tenant batch; demand = batch size
  kShed,         ///< overload ladder rung 3: submission shed before admission
  kMailbox,      ///< requeued submission posted to a drain shard's mailbox
  kPenalty,      ///< tenant ledger moved a tenant's penalty rung; demand = rung
  kCreditGrant,  ///< unused fair share banked as credits; demand = units
  kCreditSpend,  ///< burst over fair share paid in credits; demand = units
};

inline constexpr std::size_t kNumEventKinds = 21;

constexpr std::string_view to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kBegin: return "begin";
    case EventKind::kAdmit: return "admit";
    case EventKind::kBlock: return "block";
    case EventKind::kWake: return "wake";
    case EventKind::kForceAdmit: return "force_admit";
    case EventKind::kPoolDisable: return "pool_disable";
    case EventKind::kCancel: return "cancel";
    case EventKind::kEnd: return "end";
    case EventKind::kReclaim: return "reclaim";
    case EventKind::kDemandClamp: return "demand_clamp";
    case EventKind::kReject: return "reject";
    case EventKind::kNodeDown: return "node_down";
    case EventKind::kNodeUp: return "node_up";
    case EventKind::kEnqueue: return "enqueue";
    case EventKind::kBatchDrain: return "batch_drain";
    case EventKind::kSteal: return "steal";
    case EventKind::kShed: return "shed";
    case EventKind::kMailbox: return "mailbox";
    case EventKind::kPenalty: return "penalty";
    case EventKind::kCreditGrant: return "credit_grant";
    case EventKind::kCreditSpend: return "credit_spend";
  }
  return "?";
}

/// Fixed-size event record. Labels are truncated to fit so a ring of these
/// never allocates on the hot path.
struct Event {
  double time = 0.0;  ///< seconds (sim time or gate-epoch time)
  EventKind kind = EventKind::kBegin;
  ResourceKind resource = ResourceKind::kLLC;
  sim::ThreadId thread = sim::kInvalidThread;
  sim::ProcessId process = sim::kInvalidProcess;
  core::PeriodId period = core::kInvalidPeriod;
  double demand = 0.0;  ///< primary-resource demand (bytes or bytes/second)
  char label[24] = {};  ///< truncated period label ("dgemm", "wnsq.PP1", ...)

  void set_label(std::string_view text) {
    const std::size_t n = std::min(text.size(), sizeof(label) - 1);
    std::memcpy(label, text.data(), n);
    label[n] = '\0';
  }
};

}  // namespace rda::obs
