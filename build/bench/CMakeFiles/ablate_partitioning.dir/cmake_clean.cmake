file(REMOVE_RECURSE
  "CMakeFiles/ablate_partitioning.dir/ablate_partitioning.cpp.o"
  "CMakeFiles/ablate_partitioning.dir/ablate_partitioning.cpp.o.d"
  "ablate_partitioning"
  "ablate_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
