#include "workload/trace_models.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "profiler/report.hpp"
#include "util/units.hpp"

namespace rda::workload {
namespace {

using rda::util::MB;

TEST(TraceModels, InputScalesMatchPaper) {
  EXPECT_EQ(wnsq_input_sizes(),
            (std::vector<std::uint64_t>{8000, 15625, 32768, 64000}));
  EXPECT_EQ(ocp_input_sizes(),
            (std::vector<std::uint64_t>{514, 1026, 2050, 4098}));
}

TEST(TraceModels, WssGrowsMonotonicallyAndSublinearly) {
  auto check_curve = [](auto wss_fn, const std::vector<std::uint64_t>& inputs) {
    std::uint64_t prev = 0;
    for (const std::uint64_t n : inputs) {
      const std::uint64_t wss = wss_fn(n);
      EXPECT_GT(wss, prev);  // monotone growth
      prev = wss;
    }
    // Sublinear: doubling input must grow WSS by much less than 2x.
    const double ratio = static_cast<double>(wss_fn(inputs[1])) /
                         static_cast<double>(wss_fn(inputs[0]));
    EXPECT_LT(ratio, 1.7);
  };
  check_curve(wnsq_pp1_wss, wnsq_input_sizes());
  check_curve(wnsq_pp2_wss, wnsq_input_sizes());
  check_curve(ocp_pp1_wss, ocp_input_sizes());
  check_curve(ocp_pp2_wss, ocp_input_sizes());
}

TEST(TraceModels, WnsqFig13CrossoverCalibration) {
  // Fig. 13's shape requires: 6 instances at 8000 molecules fit the 15 MB
  // LLC; 12 do not; at 32768 even 6 exceed it.
  const double llc = static_cast<double>(MB(15));
  EXPECT_LT(6.0 * static_cast<double>(wnsq_pp1_wss(8000)), llc);
  EXPECT_GT(12.0 * static_cast<double>(wnsq_pp1_wss(8000)), llc);
  EXPECT_GT(6.0 * static_cast<double>(wnsq_pp1_wss(32768)), llc);
  // And 512 molecules barely touch the cache even with 12 instances.
  EXPECT_LT(12.0 * static_cast<double>(wnsq_pp1_wss(512)), llc * 0.6);
}

TEST(TraceModels, LargestPpWorkScalesQuadratically) {
  // Asymptotically quadratic (a fixed per-timestep floor dominates only at
  // tiny inputs).
  const double f1 = wnsq_largest_pp_flops(10000);
  const double f2 = wnsq_largest_pp_flops(20000);
  EXPECT_NEAR(f2 / f1, 4.0, 0.15);
  const auto program = wnsq_largest_pp_program(8000);
  ASSERT_EQ(program.phases.size(), 1u);
  EXPECT_TRUE(program.phases[0].marked);
  EXPECT_EQ(program.phases[0].wss_bytes, wnsq_pp1_wss(8000));
}

TEST(TraceModels, ProfilerMeasuresModelWssWithin20Percent) {
  // The end-to-end property Fig. 12 rests on: running the §2.4 profiler on
  // the generated trace recovers the model's ground-truth working sets.
  const AppTraceModel model = make_wnsq_trace(8000, /*windows_per_pp=*/5,
                                              /*seed=*/77);
  prof::WindowConfig wcfg;
  wcfg.window_accesses = model.window_accesses;
  wcfg.hot_threshold = model.hot_threshold;
  prof::DetectorConfig dcfg;
  const prof::ProfileReport report =
      prof::Profiler(wcfg, dcfg).profile(*model.source, model.nest);
  ASSERT_GE(report.periods.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    const double measured =
        static_cast<double>(report.periods[i].period.wss_bytes);
    const double truth = static_cast<double>(model.true_wss[i]);
    EXPECT_NEAR(measured, truth, 0.20 * truth) << "period " << i;
  }
}

TEST(TraceModels, ProfilerMapsPeriodsToDistinctLoops) {
  const AppTraceModel model = make_ocp_trace(514, 5, 78);
  prof::WindowConfig wcfg;
  wcfg.window_accesses = model.window_accesses;
  wcfg.hot_threshold = model.hot_threshold;
  const prof::ProfileReport report =
      prof::Profiler(wcfg, {}).profile(*model.source, model.nest);
  ASSERT_GE(report.periods.size(), 2u);
  ASSERT_TRUE(report.periods[0].boundary_loop.has_value());
  ASSERT_TRUE(report.periods[1].boundary_loop.has_value());
  EXPECT_NE(*report.periods[0].boundary_loop,
            *report.periods[1].boundary_loop);
}

TEST(TraceModels, TracesDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    const AppTraceModel model = make_wnsq_trace(8000, 3, seed);
    trace::TraceRecord rec;
    std::uint64_t hash = 1469598103934665603ull;
    while (model.source->next(rec)) {
      hash = (hash ^ rec.value) * 1099511628211ull;
    }
    return hash;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace rda::workload
