// Ablation: waitlist scan policy, wake order, and the §3.4 thread-pool
// guard.
//
//   * work-conserving scan (default): admit every fitting waitlist entry,
//   * head-only scan: strict FIFO — stop at the first entry that does not
//     fit (stronger arrival-order fairness, weaker utilization),
//   * wake order (AdmissionCore WakeStrategy): FIFO arrival order vs
//     demand-aware best-fit — wake the largest waiter that fits first,
//   * pool guard on/off for the task-pool workload (Raytrace).
#include <cstring>
#include <iostream>

#include "exp/harness.hpp"
#include "util/table.hpp"

namespace {

using namespace rda;

/// Strict-policy RunConfig with the given waitlist knobs, routed through the
/// harness's full-options override so the cells can join a parallel matrix.
exp::RunConfig config_with(bool work_conserving, bool pool_guard,
                           core::WakeOrder wake_order = core::WakeOrder::kFifo) {
  exp::RunConfig cfg;
  cfg.engine.machine = sim::MachineConfig::e5_2420();
  core::RdaOptions options;
  options.policy = core::PolicyKind::kStrict;
  options.monitor.work_conserving = work_conserving;
  options.monitor.pool_guard = pool_guard;
  options.monitor.wake_order = wake_order;
  cfg.rda_options = options;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = !(argc > 1 && std::strcmp(argv[1], "--full") == 0);
  std::cout << "=== Ablation: waitlist scan policy, wake order, "
               "thread-pool guard ===\n\n";

  const auto specs = workload::table2_workloads();
  auto pick = [&](const char* name) {
    const auto& spec = workload::find_workload(specs, name);
    return quick ? workload::scale_workload(spec, 0.25, 2) : spec;
  };

  // Six independent cells: 2 scan policies + 2 wake orders on BLAS-3,
  // 2 pool-guard settings on Raytrace.
  const auto blas = pick("BLAS-3");
  const auto raytrace = pick("Raytrace");
  struct Cell {
    const workload::WorkloadSpec* spec;
    exp::RunConfig cfg;
  };
  const std::vector<Cell> cells = {
      {&blas, config_with(/*work_conserving=*/true, /*pool_guard=*/true)},
      {&blas, config_with(/*work_conserving=*/false, /*pool_guard=*/true)},
      {&blas, config_with(true, true, core::WakeOrder::kFifo)},
      {&blas, config_with(true, true, core::WakeOrder::kBestFitDemand)},
      {&raytrace, config_with(true, /*pool_guard=*/true)},
      {&raytrace, config_with(true, /*pool_guard=*/false)},
  };
  std::vector<exp::RunRow> rows(cells.size());
  exp::run_cells(cells.size(), exp::parse_jobs(argc, argv),
                 [&](std::size_t i) {
                   rows[i] = exp::run_workload(*cells[i].spec, cells[i].cfg);
                 });

  {
    util::Table table({"scan policy", "GFLOPS", "system J", "gate blocks",
                       "makespan [s]"});
    for (std::size_t i = 0; i < 2; ++i) {
      const exp::RunRow& row = rows[i];
      table.begin_row()
          .add_cell(i == 0 ? "work-conserving" : "head-only FIFO")
          .add_cell(row.gflops, 2)
          .add_cell(row.system_joules, 0)
          .add_cell(row.gate_blocks)
          .add_cell(row.makespan, 1);
    }
    std::cout << "BLAS-3 (heterogeneous demands -> scan policy matters)\n"
              << table.render() << "\n";
  }

  {
    util::Table table({"wake order", "GFLOPS", "system J", "gate blocks",
                       "makespan [s]"});
    for (const std::size_t i : {std::size_t{2}, std::size_t{3}}) {
      const core::WakeOrder order = i == 2 ? core::WakeOrder::kFifo
                                           : core::WakeOrder::kBestFitDemand;
      const exp::RunRow& row = rows[i];
      table.begin_row()
          .add_cell(std::string(core::to_string(order)))
          .add_cell(row.gflops, 2)
          .add_cell(row.system_joules, 0)
          .add_cell(row.gate_blocks)
          .add_cell(row.makespan, 1);
    }
    std::cout << "BLAS-3 (wake order: who gets freed capacity first)\n"
              << table.render() << "\n";
  }

  {
    util::Table table({"pool guard", "GFLOPS", "system J", "gate blocks",
                       "makespan [s]"});
    for (const std::size_t i : {std::size_t{4}, std::size_t{5}}) {
      const exp::RunRow& row = rows[i];
      table.begin_row()
          .add_cell(i == 4 ? "on (§3.4 group pause)" : "off (individual)")
          .add_cell(row.gflops, 2)
          .add_cell(row.system_joules, 0)
          .add_cell(row.gate_blocks)
          .add_cell(row.makespan, 1);
    }
    std::cout << "Raytrace (task pool)\n" << table.render();
  }
  return 0;
}
