// Tests for the §6 cache-partitioning extension: streaming periods larger
// than the LLC are confined to a small partition and co-run with normal
// periods instead of serializing the machine.
#include <gtest/gtest.h>

#include "core/rda_scheduler.hpp"
#include "sim/engine.hpp"
#include "util/units.hpp"

namespace rda::core {
namespace {

using rda::util::MB;

sim::PhaseSpec marked_phase(double mb, ReuseLevel reuse, double flops = 1e9) {
  sim::PhaseSpec p;
  p.flops = flops;
  p.wss_bytes = MB(mb);
  p.reuse = reuse;
  p.marked = true;
  return p;
}

RdaScheduler make_sched(bool partition) {
  RdaOptions options;
  options.policy = PolicyKind::kStrict;
  options.partitioning.enable = partition;
  options.partitioning.streaming_fraction = 0.10;
  return RdaScheduler(static_cast<double>(MB(15)), sim::Calibration{},
                      options);
}

class NullWaker : public sim::ThreadWaker {
 public:
  void wake(sim::ThreadId) override {}
};

TEST(Partitioning, OversizedPeriodChargedOnlyItsPartition) {
  RdaScheduler sched = make_sched(true);
  NullWaker waker;
  sched.attach(waker);
  const auto r = sched.on_phase_begin(1, 1, marked_phase(40, ReuseLevel::kLow),
                                      0.0);
  EXPECT_TRUE(r.admit);
  EXPECT_NEAR(r.occupancy_cap, 0.10 * static_cast<double>(MB(15)), 1.0);
  // Load table holds 1.5 MB, not 40 MB.
  EXPECT_NEAR(sched.resources().usage(ResourceKind::kLLC),
              0.10 * static_cast<double>(MB(15)), 1.0);
  EXPECT_EQ(sched.partitioned_periods(), 1u);
  // A normal 10 MB period co-runs.
  EXPECT_TRUE(
      sched.on_phase_begin(2, 2, marked_phase(10, ReuseLevel::kHigh), 0.0)
          .admit);
}

TEST(Partitioning, DisabledFallsBackToForcedSoloRun) {
  RdaScheduler sched = make_sched(false);
  NullWaker waker;
  sched.attach(waker);
  const auto r = sched.on_phase_begin(1, 1, marked_phase(40, ReuseLevel::kLow),
                                      0.0);
  EXPECT_TRUE(r.admit);  // liveness override
  EXPECT_DOUBLE_EQ(r.occupancy_cap, 0.0);
  // The full demand is charged: nobody else fits until it ends.
  EXPECT_FALSE(
      sched.on_phase_begin(2, 2, marked_phase(10, ReuseLevel::kHigh), 0.0)
          .admit);
  EXPECT_EQ(sched.partitioned_periods(), 0u);
}

TEST(Partitioning, FittingPeriodsUnaffected) {
  RdaScheduler sched = make_sched(true);
  NullWaker waker;
  sched.attach(waker);
  const auto r =
      sched.on_phase_begin(1, 1, marked_phase(6, ReuseLevel::kHigh), 0.0);
  EXPECT_TRUE(r.admit);
  EXPECT_DOUBLE_EQ(r.occupancy_cap, 0.0);
  EXPECT_NEAR(sched.resources().usage(ResourceKind::kLLC),
              static_cast<double>(MB(6)), 1.0);
}

TEST(Partitioning, EndReleasesTheReducedCharge) {
  RdaScheduler sched = make_sched(true);
  NullWaker waker;
  sched.attach(waker);
  const sim::PhaseSpec big = marked_phase(40, ReuseLevel::kLow);
  sched.on_phase_begin(1, 1, big, 0.0);
  sched.on_phase_end(1, 1, big, sim::PhaseObservation{}, 1.0);
  EXPECT_NEAR(sched.resources().usage(ResourceKind::kLLC), 0.0, 1e-6);
}

// End-to-end: a streaming app co-scheduled with a cache-fitting app. With
// partitioning the fitter keeps its residency (and its speed); without,
// the forced oversized period serializes or pollutes.
TEST(Partitioning, ProtectsCoRunningFitter) {
  auto run = [&](bool partition) {
    sim::EngineConfig cfg;
    cfg.machine = sim::MachineConfig::e5_2420();
    sim::Engine engine(cfg);
    RdaOptions options;
    options.policy = PolicyKind::kStrict;
    options.partitioning.enable = partition;
    core::RdaScheduler gate(static_cast<double>(cfg.machine.llc_bytes),
                            cfg.calib, options);
    engine.set_gate(&gate);
    // Streaming hog: 40 MB working set, low reuse.
    const sim::ProcessId hog = engine.create_process();
    engine.add_thread(
        hog, sim::ProgramBuilder()
                 .period("hog", 4e9, MB(40), ReuseLevel::kLow)
                 .build());
    // Fitter: 8 MB, high reuse.
    const sim::ProcessId fitter = engine.create_process();
    engine.add_thread(
        fitter, sim::ProgramBuilder()
                    .period("fit", 4e9, MB(8), ReuseLevel::kHigh)
                    .build());
    const sim::SimResult result = engine.run();
    return result.threads[1].finish_time;  // the fitter
  };
  const double with_partition = run(true);
  const double without = run(false);
  // Without partitioning the fitter waits behind the forced hog (or gets
  // polluted); with it, it runs immediately at full residency.
  EXPECT_LT(with_partition, 0.8 * without);
}

}  // namespace
}  // namespace rda::core
