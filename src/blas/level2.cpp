#include "blas/level2.hpp"

#include "util/check.hpp"

namespace rda::blas {

void dgemv_n(std::size_t m, std::size_t n, double alpha,
             std::span<const double> a, std::span<const double> x, double beta,
             std::span<double> y) {
  RDA_CHECK(a.size() >= m * n);
  RDA_CHECK(x.size() >= n);
  RDA_CHECK(y.size() >= m);
  for (std::size_t i = 0; i < m; ++i) {
    const double* row = &a[i * n];
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) acc += row[j] * x[j];
    y[i] = alpha * acc + beta * y[i];
  }
}

void dgemv_t(std::size_t m, std::size_t n, double alpha,
             std::span<const double> a, std::span<const double> x, double beta,
             std::span<double> y) {
  RDA_CHECK(a.size() >= m * n);
  RDA_CHECK(x.size() >= m);
  RDA_CHECK(y.size() >= n);
  for (std::size_t j = 0; j < n; ++j) y[j] *= beta;
  for (std::size_t i = 0; i < m; ++i) {
    const double* row = &a[i * n];
    const double xi = alpha * x[i];
    for (std::size_t j = 0; j < n; ++j) y[j] += xi * row[j];
  }
}

void dtrmv_upper(std::size_t n, std::span<const double> a,
                 std::span<double> x) {
  RDA_CHECK(a.size() >= n * n);
  RDA_CHECK(x.size() >= n);
  // Forward order is safe: x[i] depends only on x[j >= i].
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = &a[i * n];
    double acc = 0.0;
    for (std::size_t j = i; j < n; ++j) acc += row[j] * x[j];
    x[i] = acc;
  }
}

void dtrsv_upper(std::size_t n, std::span<const double> a,
                 std::span<double> x) {
  RDA_CHECK(a.size() >= n * n);
  RDA_CHECK(x.size() >= n);
  RDA_CHECK(n > 0);
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    const double* row = &a[ii * n];
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= row[j] * x[j];
    RDA_CHECK_MSG(row[ii] != 0.0, "singular triangular matrix");
    x[ii] = acc / row[ii];
  }
}

}  // namespace rda::blas
