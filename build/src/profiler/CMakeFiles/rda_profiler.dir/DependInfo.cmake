
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profiler/detector.cpp" "src/profiler/CMakeFiles/rda_profiler.dir/detector.cpp.o" "gcc" "src/profiler/CMakeFiles/rda_profiler.dir/detector.cpp.o.d"
  "/root/repo/src/profiler/loop_mapper.cpp" "src/profiler/CMakeFiles/rda_profiler.dir/loop_mapper.cpp.o" "gcc" "src/profiler/CMakeFiles/rda_profiler.dir/loop_mapper.cpp.o.d"
  "/root/repo/src/profiler/multi_granularity.cpp" "src/profiler/CMakeFiles/rda_profiler.dir/multi_granularity.cpp.o" "gcc" "src/profiler/CMakeFiles/rda_profiler.dir/multi_granularity.cpp.o.d"
  "/root/repo/src/profiler/report.cpp" "src/profiler/CMakeFiles/rda_profiler.dir/report.cpp.o" "gcc" "src/profiler/CMakeFiles/rda_profiler.dir/report.cpp.o.d"
  "/root/repo/src/profiler/reuse_distance.cpp" "src/profiler/CMakeFiles/rda_profiler.dir/reuse_distance.cpp.o" "gcc" "src/profiler/CMakeFiles/rda_profiler.dir/reuse_distance.cpp.o.d"
  "/root/repo/src/profiler/window.cpp" "src/profiler/CMakeFiles/rda_profiler.dir/window.cpp.o" "gcc" "src/profiler/CMakeFiles/rda_profiler.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/rda_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rda_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
