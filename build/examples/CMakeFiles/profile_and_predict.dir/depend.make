# Empty dependencies file for profile_and_predict.
# This may be replaced when dependencies are built.
