// Minimal fork-join worker pool for independent analysis jobs.
//
// The profiling pipeline fans per-granularity trace passes out across
// threads; each job writes only to its own pre-allocated result slot, so the
// pool needs nothing beyond "run these tasks on up to N threads and join".
// Determinism is the caller's contract: jobs must not communicate, and the
// caller must consume results in a thread-count-independent order.
#pragma once

#include <functional>
#include <vector>

namespace rda::util {

/// Resolves a --jobs style request: values >= 1 pass through, anything else
/// (0, negative) means "one per hardware thread" with a floor of 1.
int resolve_jobs(int requested);

/// Runs `tasks` to completion on at most `jobs` threads (work-stealing via a
/// shared atomic cursor, so long tasks do not serialize behind short ones).
/// `jobs <= 1` runs everything inline on the calling thread — the
/// single-threaded baseline path has no pool overhead and no nondeterminism.
/// The first exception thrown by any task is rethrown after all threads
/// join; remaining tasks still run (they may hold references to live state).
void parallel_run(std::vector<std::function<void()>>& tasks, int jobs);

}  // namespace rda::util
