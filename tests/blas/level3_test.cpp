#include "blas/level3.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace rda::blas {
namespace {

std::vector<double> random_matrix(std::size_t rows, std::size_t cols,
                                  std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> m(rows * cols);
  for (double& x : m) x = rng.next_double(-1.0, 1.0);
  return m;
}

std::vector<double> random_upper(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> a(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      a[i * n + j] = rng.next_double(-1.0, 1.0);
    }
    a[i * n + i] = rng.next_double(1.0, 2.0);
  }
  return a;
}

TEST(Dgemm, TinyKnownResult) {
  // [[1,2],[3,4]] * [[5,6],[7,8]] = [[19,22],[43,50]]
  const std::vector<double> a = {1, 2, 3, 4};
  const std::vector<double> b = {5, 6, 7, 8};
  std::vector<double> c = {0, 0, 0, 0};
  dgemm(2, 2, 2, 1.0, a, b, 0.0, c);
  EXPECT_DOUBLE_EQ(c[0], 19.0);
  EXPECT_DOUBLE_EQ(c[1], 22.0);
  EXPECT_DOUBLE_EQ(c[2], 43.0);
  EXPECT_DOUBLE_EQ(c[3], 50.0);
}

TEST(Dgemm, AlphaBetaHandled) {
  const std::vector<double> a = {1, 0, 0, 1};  // identity
  const std::vector<double> b = {2, 3, 4, 5};
  std::vector<double> c = {10, 10, 10, 10};
  dgemm(2, 2, 2, 2.0, a, b, 0.5, c);  // C = 2*B + 0.5*C
  EXPECT_DOUBLE_EQ(c[0], 9.0);
  EXPECT_DOUBLE_EQ(c[1], 11.0);
  EXPECT_DOUBLE_EQ(c[2], 13.0);
  EXPECT_DOUBLE_EQ(c[3], 15.0);
}

// The blocked kernel must match the naive oracle, including at sizes that
// are not multiples of the 96-wide tiles.
class DgemmVsNaive
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DgemmVsNaive, Matches) {
  const auto [m, n, k] = GetParam();
  const auto a = random_matrix(m, k, 21);
  const auto b = random_matrix(k, n, 22);
  auto c_blocked = random_matrix(m, n, 23);
  auto c_naive = c_blocked;
  dgemm(m, n, k, 1.3, a, b, 0.7, c_blocked);
  dgemm_naive(m, n, k, 1.3, a, b, 0.7, c_naive);
  for (std::size_t i = 0; i < c_blocked.size(); ++i) {
    EXPECT_NEAR(c_blocked[i], c_naive[i], 1e-10) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DgemmVsNaive,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(8, 8, 8),
                      std::make_tuple(96, 96, 96),
                      std::make_tuple(97, 95, 33),
                      std::make_tuple(128, 64, 200),
                      std::make_tuple(191, 7, 96)));

TEST(DsyrkUpper, MatchesGemmWithTranspose) {
  const std::size_t n = 17, k = 9;
  const auto a = random_matrix(n, k, 31);
  // Dense A*A^T via dgemm_naive with manual transpose.
  std::vector<double> at(k * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t l = 0; l < k; ++l) at[l * n + i] = a[i * k + l];
  }
  std::vector<double> dense(n * n, 0.0);
  dgemm_naive(n, n, k, 1.0, a, at, 0.0, dense);

  std::vector<double> c(n * n, 0.0);
  dsyrk_upper(n, k, 1.0, a, 0.0, c);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      EXPECT_NEAR(c[i * n + j], dense[i * n + j], 1e-10);
    }
  }
}

TEST(DsyrkUpper, LowerTriangleUntouched) {
  const std::size_t n = 5, k = 3;
  const auto a = random_matrix(n, k, 32);
  std::vector<double> c(n * n, -7.0);
  dsyrk_upper(n, k, 1.0, a, 0.0, c);
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      EXPECT_DOUBLE_EQ(c[i * n + j], -7.0);
    }
  }
}

TEST(DtrmmRu, MatchesDenseMultiply) {
  const std::size_t m = 11, n = 8;
  const auto u = random_upper(n, 41);
  auto b = random_matrix(m, n, 42);
  std::vector<double> expected(m * n, 0.0);
  dgemm_naive(m, n, n, 1.0, b, u, 0.0, expected);  // B*U, zeros below diag
  dtrmm_ru(m, n, u, b);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(b[i], expected[i], 1e-10);
  }
}

TEST(DtrsmRu, InvertsDtrmm) {
  const std::size_t m = 10, n = 12;
  const auto u = random_upper(n, 51);
  const auto b0 = random_matrix(m, n, 52);
  auto b = b0;
  dtrmm_ru(m, n, u, b);  // B = B0 * U
  dtrsm_ru(m, n, u, b);  // solve X*U = B -> X = B0
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(b[i], b0[i], 1e-9);
  }
}

TEST(DtrsmRu, SingularDiagonalDetected) {
  std::vector<double> u = {1.0, 2.0, 0.0, 0.0};  // U[1][1] == 0
  std::vector<double> b = {1.0, 1.0};
  EXPECT_THROW(dtrsm_ru(1, 2, u, b), util::CheckFailure);
}

TEST(FlopCounts, Level3) {
  EXPECT_DOUBLE_EQ(dgemm_flops(512, 512, 512), 2.0 * 512 * 512 * 512);
  EXPECT_DOUBLE_EQ(dsyrk_flops(10, 4), 10.0 * 11.0 * 4.0);
  EXPECT_DOUBLE_EQ(dtrmm_flops(8, 4), 128.0);
  EXPECT_DOUBLE_EQ(dtrsm_flops(8, 4), 128.0);
}

}  // namespace
}  // namespace rda::blas
