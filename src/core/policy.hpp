// Scheduling policies (§3.3).
//
// Algorithm 1 computes outcome = (capacity − usage) − demand and asks
// apply_policy(outcome, resource) whether the period may run. The paper
// ships two configurations:
//   * RDA:Strict      — deny anything that would exceed capacity
//                       (outcome >= 0). Maximum resource efficiency.
//   * RDA:Compromise  — allow while usage + demand <= x × capacity, i.e.
//                       outcome >= −(x−1) × capacity, with x = 2 by default.
//                       Trades some efficiency for concurrency.
// "The policy allows users to specify that a certain amount of
//  oversubscription is allowed to provide more concurrency."
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "core/resource_monitor.hpp"

namespace rda::core {

/// Named configurations used throughout the benches and tests.
enum class PolicyKind {
  kLinuxDefault,  ///< no admission control (baseline; gate never attached)
  kStrict,        ///< RDA: Strict
  kCompromise,    ///< RDA: Compromise (oversubscription factor x)
};

std::string to_string(PolicyKind kind);

/// apply_policy(outcome, resource) of Algorithm 1.
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  /// `outcome` is remaining-after-admission (may be negative); `resource`
  /// carries capacity and current usage.
  virtual bool allow(double outcome, const ResourceState& resource) const = 0;

  /// Total aggregate demand this policy admits against `capacity` — the
  /// budget the striped resource monitor partitions across its stripes.
  /// allow(remaining − demand) ⟺ usage + demand ≤ admission_bound(capacity),
  /// which is what lets the lock-free fast lane replace the policy check
  /// with an atomic budget acquisition.
  virtual double admission_bound(double capacity) const { return capacity; }

  virtual std::string name() const = 0;
};

/// RDA:Strict — never oversubscribe.
class StrictPolicy final : public SchedulingPolicy {
 public:
  bool allow(double outcome, const ResourceState& resource) const override;
  std::string name() const override { return "RDA:Strict"; }
};

/// RDA:Compromise — allow up to factor × capacity of aggregate demand.
class CompromisePolicy final : public SchedulingPolicy {
 public:
  explicit CompromisePolicy(double oversubscription_factor = 2.0);
  bool allow(double outcome, const ResourceState& resource) const override;
  double admission_bound(double capacity) const override;
  std::string name() const override;
  double factor() const { return factor_; }

 private:
  double factor_;
};

/// Admits everything (useful for overhead-only measurements: the API calls
/// are made, the predicate always says yes).
class AlwaysAdmitPolicy final : public SchedulingPolicy {
 public:
  bool allow(double outcome, const ResourceState& resource) const override;
  double admission_bound(double capacity) const override;
  std::string name() const override { return "AlwaysAdmit"; }
};

/// Factory for the named configurations. kLinuxDefault maps to AlwaysAdmit
/// (callers normally just skip attaching the gate for the baseline).
std::unique_ptr<SchedulingPolicy> make_policy(PolicyKind kind,
                                              double oversubscription = 2.0);

// --- Combining policies (multi-resource admission) --------------------------
//
// A progress period declares a *vector* of {resource, amount} demands; the
// combiner decides how the per-resource verdicts fold into one admit/deny,
// and performs the matching load charge. Each resource keeps its own
// Strict/Compromise bound (the PolicyTable below), so e.g. the LLC can run
// Compromise(x=2) while the watts budget stays Strict.

enum class CombinerKind {
  kAllMustFit,       ///< admit iff every declared demand fits its bound
  kWeightedSum,      ///< admit iff the weighted utilization stays under a
                     ///< threshold; demands are then charged force-if-needed
  kPriorityOrdered,  ///< the first-declared demand must fit hard; the rest
                     ///< are charged force-if-needed (overdraft-backed)
};

std::string_view to_string(CombinerKind kind);

struct CombinerOptions {
  CombinerKind kind = CombinerKind::kAllMustFit;
  /// kWeightedSum: admit while the weight-averaged post-admission
  /// utilization (usage + amount over the per-resource admission bound)
  /// stays <= this.
  double weighted_threshold = 1.0;
  /// kWeightedSum: per-resource weights (indexed by ResourceKind).
  std::array<double, kNumResourceKinds> weights{1.0, 1.0, 1.0, 1.0};
};

/// One per-resource bound policy per ResourceKind (non-owning). Entries must
/// never be null — callers fill unconfigured kinds with the default policy.
using PolicyTable = std::array<const SchedulingPolicy*, kNumResourceKinds>;

/// Folds per-resource predicate verdicts into one admission decision and
/// performs the matching all-or-nothing load charge.
///
/// Contract, for every combiner:
///  * try_schedule is atomic: on false, the load table is exactly as it was
///    (partial claims rolled back); on true, every declared demand has been
///    charged (reversible by one decrement_load per demand).
///  * would_admit is a pure read and must never pass when a serialized
///    try_schedule against the same monitor state would fail — the rescan
///    loop relies on would_admit ⇒ try_schedule under the slow-lane lock.
///  * Forced charges (kWeightedSum / kPriorityOrdered overflow) go through
///    increment_load, which books the shortfall as overdraft, so the
///    per-kind Σusage+Σfree−overdraft == bound invariant holds throughout.
class CombiningPolicy {
 public:
  virtual ~CombiningPolicy() = default;

  virtual CombinerKind kind() const = 0;
  virtual std::string name() const = 0;

  /// Decision only, no load change.
  virtual bool would_admit(const std::vector<ResourceDemand>& demands,
                           const ResourceMonitor& resources,
                           const PolicyTable& policies) const = 0;

  /// Decision + all-or-nothing charge on `stripe`.
  virtual bool try_schedule(const std::vector<ResourceDemand>& demands,
                            std::uint32_t stripe, ResourceMonitor& resources,
                            const PolicyTable& policies) const = 0;
};

std::unique_ptr<CombiningPolicy> make_combiner(const CombinerOptions& options);

/// The process-wide default combiner (all-must-fit) — what a predicate uses
/// when no combiner was configured. Never null.
const CombiningPolicy& default_combiner();

}  // namespace rda::core
