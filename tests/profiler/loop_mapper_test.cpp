#include "profiler/loop_mapper.hpp"

#include <gtest/gtest.h>

namespace rda::prof {
namespace {

DetectedPeriod period_with_jump(std::uint64_t pc) {
  DetectedPeriod p;
  p.first_window = 0;
  p.last_window = 3;
  p.dominant_jump_pc = pc;
  return p;
}

TEST(LoopMapper, MapsJumpToOutermostEnclosingLoop) {
  trace::LoopNest nest;
  const auto outer = nest.add_loop("outer", 0x1000, 0x2000);
  const auto inner = nest.add_nested(outer, "inner", 0x1100, 0x1800);
  LoopMapper mapper(nest);
  const MappedPeriod mapped = mapper.map(period_with_jump(0x1400));
  ASSERT_TRUE(mapped.innermost_loop.has_value());
  ASSERT_TRUE(mapped.boundary_loop.has_value());
  EXPECT_EQ(*mapped.innermost_loop, inner);
  // §2.4: the OUTERMOST containing loop becomes the period boundary.
  EXPECT_EQ(*mapped.boundary_loop, outer);
}

TEST(LoopMapper, SiblingNestsMapIndependently) {
  trace::LoopNest nest;
  const auto a = nest.add_loop("pp1", 0x1000, 0x2000);
  const auto b = nest.add_loop("pp2", 0x3000, 0x4000);
  LoopMapper mapper(nest);
  EXPECT_EQ(*mapper.map(period_with_jump(0x1500)).boundary_loop, a);
  EXPECT_EQ(*mapper.map(period_with_jump(0x3500)).boundary_loop, b);
}

TEST(LoopMapper, UnknownPcLeavesUnmapped) {
  trace::LoopNest nest;
  nest.add_loop("only", 0x1000, 0x2000);
  LoopMapper mapper(nest);
  const MappedPeriod mapped = mapper.map(period_with_jump(0x9000));
  EXPECT_FALSE(mapped.innermost_loop.has_value());
  EXPECT_FALSE(mapped.boundary_loop.has_value());
}

TEST(LoopMapper, ZeroPcMeansNoJumpsObserved) {
  trace::LoopNest nest;
  nest.add_loop("only", 0x0, 0x2000);  // would contain pc 0 if queried
  LoopMapper mapper(nest);
  const MappedPeriod mapped = mapper.map(period_with_jump(0));
  EXPECT_FALSE(mapped.innermost_loop.has_value());
}

TEST(LoopMapper, MapAllPreservesOrderAndPayload) {
  trace::LoopNest nest;
  nest.add_loop("l", 0x1000, 0x2000);
  LoopMapper mapper(nest);
  std::vector<DetectedPeriod> periods = {period_with_jump(0x1001),
                                         period_with_jump(0x1ff0)};
  periods[0].wss_bytes = 111;
  periods[1].wss_bytes = 222;
  const auto mapped = mapper.map_all(periods);
  ASSERT_EQ(mapped.size(), 2u);
  EXPECT_EQ(mapped[0].period.wss_bytes, 111u);
  EXPECT_EQ(mapped[1].period.wss_bytes, 222u);
}

}  // namespace
}  // namespace rda::prof
