// micro_gate — native admission-gate overhead benchmark: the cost the
// pp_begin/pp_end API adds around a real progress period, before/after the
// AdmissionCore refactor.
//
//   micro_gate [--iters N] [--threads T] [--out BENCH_gate.json]
//
// Reports, and emits as JSON for trend tracking:
//   * uncontended begin/end round-trip latency (slow path and cached
//     fast path, Fig. 11),
//   * try_begin latency when the request is always denied (predicate +
//     withdrawal, never blocks),
//   * T-thread contended round-trip throughput (within capacity, so the
//     mutex — not the waitlist — is the bottleneck),
//   * the ratio against the pre-refactor uncontended baseline, captured
//     on this machine before RdaScheduler/AdmissionGate were rebuilt as
//     adapters over AdmissionCore. Acceptance gate: within 10% after
//     normalizing by a fixed calibration kernel that tracks how fast the
//     machine itself is running today (see kCalibBaselineNs).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "calib.hpp"
#include "exp/harness.hpp"
#include "runtime/gate.hpp"
#include "util/atomic_file.hpp"
#include "util/units.hpp"

namespace {

using namespace rda;
using rda::bench::bench_calibration;
using rda::bench::kCalibBaselineNs;
using rda::bench::ns_since;
using rda::util::MB;

/// Uncontended begin/end latency measured by google-benchmark at commit
/// 4cc6d69, when the gate still owned its registry/predicate/waitlist
/// directly (CPU time was 185 ns; wall 189 ns).
constexpr double kPreRefactorUncontendedNs = 189.0;

rt::GateConfig config(core::PolicyKind policy, bool fast_path = false) {
  rt::GateConfig cfg;
  cfg.llc_capacity_bytes = static_cast<double>(MB(15));
  cfg.policy = policy;
  cfg.fast_path = fast_path;
  return cfg;
}

/// Uncontended begin/end round trip (always admitted). Measured as the
/// minimum over many small chunks: the round trip is ~200 ns, so one
/// migration or frequency dip poisons a single long average, while the
/// best chunk reflects the sustained hot-path cost.
double bench_uncontended(std::uint64_t iters, bool fast_path) {
  rt::AdmissionGate gate(config(core::PolicyKind::kStrict, fast_path));
  // Warm up (and prime the decision cache when fast_path is on).
  for (int i = 0; i < 1000; ++i) {
    gate.end(gate.begin(ResourceKind::kLLC, static_cast<double>(MB(1)),
                        ReuseLevel::kHigh));
  }
  const std::uint64_t chunk = std::max<std::uint64_t>(iters / 32, 1);
  double best = 1e18;
  for (std::uint64_t done = 0; done < iters; done += chunk) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < chunk; ++i) {
      gate.end(gate.begin(ResourceKind::kLLC, static_cast<double>(MB(1)),
                          ReuseLevel::kHigh));
    }
    best = std::min(best, ns_since(t0, chunk));
  }
  return best;
}

/// try_begin when the request never fits (pure predicate + withdrawal). A
/// second thread must hold the blocking period (one active per thread).
double bench_try_denied(std::uint64_t iters) {
  rt::AdmissionGate gate(config(core::PolicyKind::kStrict));
  std::promise<void> hold, release;
  std::thread holder([&] {
    const auto id = gate.begin(ResourceKind::kLLC,
                               static_cast<double>(MB(12)), ReuseLevel::kHigh);
    hold.set_value();
    release.get_future().wait();
    gate.end(id);
  });
  hold.get_future().wait();
  const std::uint64_t chunk = std::max<std::uint64_t>(iters / 32, 1);
  double best = 1e18;
  for (std::uint64_t done = 0; done < iters; done += chunk) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < chunk; ++i) {
      auto denied = gate.try_begin(ResourceKind::kLLC,
                                   static_cast<double>(MB(8)),
                                   ReuseLevel::kHigh);
      if (denied.has_value()) {
        std::fprintf(stderr, "unexpected admission in denied bench\n");
        std::exit(1);
      }
    }
    best = std::min(best, ns_since(t0, chunk));
  }
  release.set_value();
  holder.join();
  return best;
}

rt::GateConfig multi_config(core::PolicyKind policy) {
  rt::GateConfig cfg = config(policy);
  cfg.bandwidth_capacity = 30e9;       // bytes/s, e5_2420 DRAM
  cfg.energy_capacity_watts = 100.0;   // ample: measures the path, not waits
  return cfg;
}

/// Uncontended THREE-demand begin_multi/end round trip (LLC + bandwidth +
/// energy, always admitted): the vector-demand overhead on top of the
/// scalar path above.
double bench_multi_uncontended(std::uint64_t iters) {
  rt::AdmissionGate gate(multi_config(core::PolicyKind::kStrict));
  const std::vector<core::ResourceDemand> demands = {
      {ResourceKind::kLLC, static_cast<double>(MB(1))},
      {ResourceKind::kMemBandwidth, 1e9},
      {ResourceKind::kEnergyBudget, 5.0}};
  for (int i = 0; i < 1000; ++i) {
    gate.end(gate.begin_multi(demands, ReuseLevel::kHigh));
  }
  const std::uint64_t chunk = std::max<std::uint64_t>(iters / 32, 1);
  double best = 1e18;
  for (std::uint64_t done = 0; done < iters; done += chunk) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < chunk; ++i) {
      gate.end(gate.begin_multi(demands, ReuseLevel::kHigh));
    }
    best = std::min(best, ns_since(t0, chunk));
  }
  return best;
}

/// T-thread contended three-demand round trips, all within every budget
/// (T x {1 MB, 1 GB/s, 5 W} against {15 MB, 30 GB/s, 100 W}): lock and
/// budget-stripe contention on the vector path, not waiting.
double bench_multi_contended(std::uint64_t iters_per_thread, int threads) {
  rt::AdmissionGate gate(multi_config(core::PolicyKind::kCompromise));
  std::vector<std::thread> workers;
  const auto t0 = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&gate, iters_per_thread] {
      const std::vector<core::ResourceDemand> demands = {
          {ResourceKind::kLLC, static_cast<double>(MB(1))},
          {ResourceKind::kMemBandwidth, 1e9},
          {ResourceKind::kEnergyBudget, 5.0}};
      for (std::uint64_t i = 0; i < iters_per_thread; ++i) {
        gate.end(gate.begin_multi(demands, ReuseLevel::kHigh));
      }
    });
  }
  for (auto& w : workers) w.join();
  return ns_since(t0, iters_per_thread * static_cast<std::uint64_t>(threads));
}

/// T-thread contended round trips, all within capacity (1 MB each on a
/// 15 MB cache under Compromise): measures lock contention, not waiting.
double bench_contended(std::uint64_t iters_per_thread, int threads) {
  rt::AdmissionGate gate(config(core::PolicyKind::kCompromise));
  std::vector<std::thread> workers;
  const auto t0 = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&gate, iters_per_thread] {
      for (std::uint64_t i = 0; i < iters_per_thread; ++i) {
        gate.end(gate.begin(ResourceKind::kLLC, static_cast<double>(MB(1)),
                            ReuseLevel::kHigh));
      }
    });
  }
  for (auto& w : workers) w.join();
  return ns_since(t0, iters_per_thread * static_cast<std::uint64_t>(threads));
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t iters = exp::parse_u64_flag(argc, argv, "--iters",
                                                  2'000'000);
  const int threads =
      static_cast<int>(exp::parse_u64_flag(argc, argv, "--threads", 8));
  const std::string out_path =
      exp::parse_string_flag(argc, argv, "--out", "BENCH_gate.json");

  // Best of 5 per point, with a short quiesce before each rep: the gate
  // path is ~200 ns, so a stray scheduler tick or a post-load frequency
  // dip poisons any single run. The min is the sustained hot-path cost.
  auto best5 = [](auto&& fn) {
    double best = 1e18;
    for (int i = 0; i < 5; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      best = std::min(best, fn());
    }
    return best;
  };

  const double calib_ns = best5([] { return bench_calibration(); });
  // Never scale the baseline DOWN: a faster-than-anchor machine just makes
  // the gate easier to pass, which is fine; only slowdowns are corrected.
  const double machine_factor = std::max(1.0, calib_ns / kCalibBaselineNs);

  const double uncontended_ns =
      best5([&] { return bench_uncontended(iters, false); });
  const double fast_path_ns =
      best5([&] { return bench_uncontended(iters, true); });
  const double try_denied_ns = best5([&] { return bench_try_denied(iters); });
  const double multi_uncontended_ns =
      best5([&] { return bench_multi_uncontended(iters); });
  const double contended_ns = best5(
      [&] { return bench_contended(iters / 4, threads); });
  const double contended_mops = 1e3 / contended_ns;
  const double multi_contended_ns =
      best5([&] { return bench_multi_contended(iters / 4, threads); });
  const double multi_contended_mops = 1e3 / multi_contended_ns;
  const double vs_baseline = uncontended_ns / kPreRefactorUncontendedNs;
  const double vs_baseline_adj = vs_baseline / machine_factor;

  // Fixed 16-thread point for the sharded-core scaling gate. Only
  // meaningful with 16 real cores: on smaller hosts the threads time-slice
  // one another and the number measures the OS scheduler, so it is skipped
  // (tier1.sh applies the same guard before comparing it).
  const unsigned cores = std::thread::hardware_concurrency();
  double contended_mops_16 = 0.0;
  if (cores >= 16) {
    const double ns16 =
        best5([&] { return bench_contended(iters / 8, 16); });
    contended_mops_16 = 1e3 / ns16;
  }

  std::printf("calibration kernel:    %.1f ns (anchor %.0f ns, machine %.2fx)\n",
              calib_ns, kCalibBaselineNs, machine_factor);
  std::printf(
      "uncontended begin/end: %.1f ns (baseline %.0f ns, %.2fx raw, "
      "%.2fx machine-adjusted)\n",
      uncontended_ns, kPreRefactorUncontendedNs, vs_baseline, vs_baseline_adj);
  std::printf("fast-path begin/end:   %.1f ns\n", fast_path_ns);
  std::printf("try_begin denied:      %.1f ns\n", try_denied_ns);
  std::printf("3-demand begin/end:    %.1f ns (%.2fx the scalar path)\n",
              multi_uncontended_ns, multi_uncontended_ns / uncontended_ns);
  std::printf("%d-thread contended:    %.1f ns/op (%.2f Mops/s aggregate)\n",
              threads, contended_ns, contended_mops);
  std::printf("%d-thread 3-demand:     %.1f ns/op (%.2f Mops/s aggregate)\n",
              threads, multi_contended_ns, multi_contended_mops);
  if (cores >= 16) {
    std::printf("16-thread contended:   %.2f Mops/s aggregate\n",
                contended_mops_16);
  } else {
    std::printf("16-thread contended:   skipped (%u hardware threads)\n",
                cores);
  }

  // A skipped metric names its reason instead of silently reading as a
  // mysterious null (tier1.sh surfaces the reason when it skips the gate).
  char mops16[192];
  if (cores >= 16) {
    std::snprintf(mops16, sizeof(mops16), "%.3f", contended_mops_16);
  } else {
    std::snprintf(mops16, sizeof(mops16),
                  "null,\n  \"contended_mops_16_skipped\": "
                  "\"%u hardware threads (<16): the point would measure the "
                  "OS scheduler, not the gate\"",
                  cores);
  }
  char json[1536];
  std::snprintf(json, sizeof(json),
                "{\n"
                "  \"iters\": %llu,\n"
                "  \"threads\": %d,\n"
                "  \"calib_ns\": %.2f,\n"
                "  \"machine_factor\": %.4f,\n"
                "  \"uncontended_ns\": %.2f,\n"
                "  \"fast_path_ns\": %.2f,\n"
                "  \"try_denied_ns\": %.2f,\n"
                "  \"multi_uncontended_ns\": %.2f,\n"
                "  \"contended_ns_per_op\": %.2f,\n"
                "  \"contended_mops\": %.3f,\n"
                "  \"multi_contended_mops\": %.3f,\n"
                "  \"contended_mops_16\": %s,\n"
                "  \"pre_refactor_uncontended_ns\": %.1f,\n"
                "  \"uncontended_vs_baseline\": %.4f,\n"
                "  \"uncontended_vs_baseline_adj\": %.4f\n"
                "}\n",
                static_cast<unsigned long long>(iters), threads, calib_ns,
                machine_factor, uncontended_ns, fast_path_ns, try_denied_ns,
                multi_uncontended_ns, contended_ns, contended_mops,
                multi_contended_mops, mops16, kPreRefactorUncontendedNs,
                vs_baseline, vs_baseline_adj);
  try {
    rda::util::write_file_atomic(out_path, json);
    std::printf("wrote %s\n", out_path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "warning: %s\n", e.what());
  }
  // The refactor must not regress the hot path by more than 10% once
  // machine drift is factored out (see kCalibBaselineNs).
  return vs_baseline_adj <= 1.10 ? 0 : 1;
}
