# Empty compiler generated dependencies file for rda_sim.
# This may be replaced when dependencies are built.
