// Resource monitor (§3.2): real-time estimation of hardware load.
//
// "A table is used to keep track of the current load level for the
//  resources, where an entry is allocated to each resource to save its
//  current usage level. The resource manager keeps the usage estimation
//  up-to-date any time a process enters or completes a progress period."
//
// Sharded-core edition: the single usage double per resource is split into
// kStripes cacheline-padded stripes so concurrent admissions do not bounce
// one cacheline. The policy bound (capacity for Strict, x·capacity for
// Compromise, +inf for AlwaysAdmit) is partitioned across the stripes as a
// *budget*: each stripe holds `free` headroom, and an admission succeeds by
// atomically taking `demand` out of the free pool (own stripe first, then
// stealing from siblings). Free is never negative — a FORCED charge
// (watchdog rung 2, liveness admit, pool group admit) takes whatever free
// exists and books the shortfall in a per-resource `overdraft` counter,
// which later releases pay down before refilling any free pool. The
// invariant
//
//     Σ usage[s] + Σ free[s] − overdraft == admission_bound   (finite bounds)
//
// makes "usage + demand <= bound" — exactly the Strict/Compromise predicate
// — equivalent to "the acquisition found enough free budget", without any
// global lock or any torn read of the aggregate: positive free is always
// genuinely grantable budget, even while forced admissions overshoot.
//
// The per-stripe version counters support the cached-decision fast path: a
// thread's prior admission decision is reusable only while nobody else has
// changed any load entry; version() sums the stripes (plus 1 so a fresh
// monitor matches the legacy epoch) and usage() reads the stripes under a
// bounded seqlock retry loop.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "common/types.hpp"

namespace rda::core {

/// Capacity + current aggregate demand of one hardware resource.
struct ResourceState {
  double capacity = 0.0;
  double usage = 0.0;

  double remaining() const { return capacity - usage; }
};

class ResourceMonitor {
 public:
  /// Stripe count. 16 matches the shard count of the sharded registry, so
  /// a thread's home shard maps one-to-one onto a budget stripe.
  static constexpr std::uint32_t kStripes = 16;

  ResourceMonitor();

  /// Configures the maximum capacity of a resource (e.g. LLC bytes from the
  /// machine description). Capacity must be positive before use. Resets the
  /// admission bound to `capacity` (Strict semantics) until
  /// set_admission_bound says otherwise.
  void set_capacity(ResourceKind kind, double capacity);

  /// Partitions `bound` (policy admission budget; may be +inf) across the
  /// stripes. Call after set_capacity, before concurrent use.
  void set_admission_bound(ResourceKind kind, double bound);
  double admission_bound(ResourceKind kind) const {
    return bounds_[static_cast<std::size_t>(kind)].load(
        std::memory_order_relaxed);
  }

  /// Snapshot of capacity + aggregate usage. By value: the aggregate is
  /// assembled from the stripes at call time.
  ResourceState state(ResourceKind kind) const;
  double capacity(ResourceKind kind) const {
    return capacities_[static_cast<std::size_t>(kind)].load(
        std::memory_order_relaxed);
  }
  /// Aggregate usage across stripes, read under a bounded seqlock retry
  /// loop: if the stripes keep churning the last (possibly slightly torn)
  /// sum is returned — admission skew from a torn advisory read is
  /// transient and self-correcting, a livelocked reader is not.
  double usage(ResourceKind kind) const;
  double remaining(ResourceKind kind) const {
    return capacity(kind) - usage(kind);
  }
  /// Aggregate unclaimed admission budget (plain sum; pair with usage()
  /// only at quiescence, e.g. in AdmissionCore::audit).
  double total_free(ResourceKind kind) const;

  /// Atomically claims `demand` of admission budget and charges it as usage
  /// on `stripe`. Tries the stripe's own free pool first, then steals the
  /// shortfall from sibling stripes; on failure every partial claim is
  /// rolled back and false is returned. This IS the Strict/Compromise
  /// predicate: it succeeds iff usage + demand <= admission_bound in some
  /// serialization of the concurrent admissions.
  bool try_acquire(ResourceKind kind, double demand, std::uint32_t stripe);

  /// Adds a progress period's demand to the active load (paper Fig. 5,
  /// "increment load value") WITHOUT consulting the budget — the forced
  /// path (watchdog rung 2, liveness admit, pool group admit). Whatever
  /// free budget exists is consumed; the shortfall is booked as overdraft,
  /// so free pools never go negative and try_acquire stays sound.
  void increment_load(ResourceKind kind, double demand,
                      std::uint32_t stripe = 0);

  /// Removes a completed period's demand (paper Fig. 6, "decrement load")
  /// from the stripe it was charged on. The returned budget pays down any
  /// overdraft first; the remainder refills that stripe's free pool. Checks
  /// the stripe's load never goes negative (up to floating-point dust,
  /// which is snapped to zero).
  void decrement_load(ResourceKind kind, double demand,
                      std::uint32_t stripe = 0);

  /// Budget overshoot from forced charges not yet repaid by releases.
  double overdraft(ResourceKind kind) const {
    return overdraft_[static_cast<std::size_t>(kind)].load(
        std::memory_order_relaxed);
  }

  /// Forced-oversubscription tally: load admitted by the watchdog BEYOND
  /// what the policy would allow. It rides on top of the ordinary usage
  /// (the load itself is still charged via increment_load) purely as an
  /// audit trail — the fault-matrix ledger asserts it returns to zero.
  void add_oversubscribed(ResourceKind kind, double demand);
  void remove_oversubscribed(ResourceKind kind, double demand);
  double oversubscribed(ResourceKind kind) const {
    return oversub_[static_cast<std::size_t>(kind)].load(
        std::memory_order_relaxed);
  }

  /// True when the resource carries no load beyond floating-point dust.
  /// Admission liveness decisions must use this, never `usage() > 0`: a
  /// long sequence of increment/decrement pairs at megabyte scale leaves
  /// residues of ~1e-2 bytes.
  bool effectively_free(ResourceKind kind) const;

  /// Bumped on every load change; keying for cached admission decisions.
  /// Sum of the per-stripe counters (+1 to match the legacy initial epoch).
  std::uint64_t version() const;

 private:
  // One budget stripe. usage/free/version share a line on purpose: the
  // owning shard's admissions touch all three together, and different
  // stripes never share a line.
  struct alignas(64) Stripe {
    std::atomic<double> usage{0.0};
    std::atomic<double> free{0.0};
    std::atomic<std::uint64_t> version{0};
  };

  double dust_threshold(ResourceKind kind) const;
  std::uint64_t version_sum(ResourceKind kind) const;

  std::array<std::array<Stripe, kStripes>, kNumResourceKinds> stripes_{};
  std::array<std::atomic<double>, kNumResourceKinds> capacities_{};
  std::array<std::atomic<double>, kNumResourceKinds> bounds_{};
  std::array<std::atomic<double>, kNumResourceKinds> oversub_{};
  std::array<std::atomic<double>, kNumResourceKinds> overdraft_{};
};

}  // namespace rda::core
