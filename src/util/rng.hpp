// Deterministic pseudo-random number generation.
//
// Everything in this repository that needs randomness (trace generators,
// workload jitter, property-test sweeps) goes through this engine so that a
// fixed seed reproduces a run bit-for-bit — a prerequisite for the
// determinism integration tests and for comparing scheduling policies on
// identical workloads.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace rda::util {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
/// Small, fast, and good enough statistical quality for simulation inputs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the single-word seed into full state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Lemire's multiply-shift rejection-free mapping is fine here; slight
    // modulo bias at 2^64-scale bounds is irrelevant for simulation inputs.
    return next_u64() % bound;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Standard normal via Marsaglia polar method.
  double next_gaussian() {
    if (have_cached_) {
      have_cached_ = false;
      return cached_;
    }
    double u, v, s;
    do {
      u = next_double(-1.0, 1.0);
      v = next_double(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    cached_ = v * m;
    have_cached_ = true;
    return u * m;
  }

  /// Bernoulli draw with probability p of true.
  bool next_bool(double p) { return next_double() < p; }

  // UniformRandomBitGenerator interface so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next_u64(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double cached_ = 0.0;
  bool have_cached_ = false;
};

}  // namespace rda::util
