#include "sim/phase.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace rda::sim {
namespace {

using rda::util::MB;

TEST(ProgramBuilder, PeriodsAreMarked) {
  const PhaseProgram p = ProgramBuilder()
                             .period("pp", 1e9, MB(2), ReuseLevel::kHigh)
                             .plain("glue", 1e8, MB(0.1), ReuseLevel::kLow)
                             .build();
  ASSERT_EQ(p.phases.size(), 2u);
  EXPECT_TRUE(p.phases[0].marked);
  EXPECT_FALSE(p.phases[1].marked);
  EXPECT_EQ(p.phases[0].label, "pp");
  EXPECT_EQ(p.marked_count(), 1u);
}

TEST(ProgramBuilder, TotalsSum) {
  const PhaseProgram p = ProgramBuilder()
                             .period("a", 1e9, MB(1), ReuseLevel::kHigh)
                             .period("b", 2e9, MB(1), ReuseLevel::kHigh)
                             .plain("c", 5e8, MB(1), ReuseLevel::kLow)
                             .build();
  EXPECT_DOUBLE_EQ(p.total_flops(), 3.5e9);
  EXPECT_EQ(p.marked_count(), 2u);
}

TEST(ProgramBuilder, BarrierAttachesToLastPhase) {
  const PhaseProgram p = ProgramBuilder()
                             .plain("a", 1e8, MB(1), ReuseLevel::kLow)
                             .barrier()
                             .plain("b", 1e8, MB(1), ReuseLevel::kLow)
                             .build();
  EXPECT_TRUE(p.phases[0].barrier_after);
  EXPECT_FALSE(p.phases[1].barrier_after);
}

TEST(ProgramBuilder, BarrierOnEmptyProgramIsNoop) {
  const PhaseProgram p = ProgramBuilder().barrier().build();
  EXPECT_TRUE(p.phases.empty());
}

TEST(ProgramBuilder, DeclaredOverridesGateView) {
  const PhaseProgram p = ProgramBuilder()
                             .period("pp", 1e9, MB(2), ReuseLevel::kHigh)
                             .declared(MB(12))
                             .build();
  EXPECT_EQ(p.phases[0].wss_bytes, MB(2));            // true behaviour
  EXPECT_EQ(p.phases[0].declared_wss(), MB(12));      // what the gate sees
}

TEST(ProgramBuilder, HonestByDefault) {
  const PhaseProgram p = ProgramBuilder()
                             .period("pp", 1e9, MB(2), ReuseLevel::kHigh)
                             .build();
  EXPECT_EQ(p.phases[0].declared_wss_bytes, 0u);
  EXPECT_EQ(p.phases[0].declared_wss(), MB(2));
}

TEST(ProgramBuilder, PeriodBwDeclaresBandwidth) {
  const PhaseProgram p =
      ProgramBuilder()
          .period_bw("stream", 1e9, MB(0.6), ReuseLevel::kLow, 8e9)
          .period("plainpp", 1e9, MB(1), ReuseLevel::kHigh)
          .build();
  EXPECT_DOUBLE_EQ(p.phases[0].bw_bytes_per_sec, 8e9);
  EXPECT_DOUBLE_EQ(p.phases[1].bw_bytes_per_sec, 0.0);
}

TEST(PhaseSpec, DefaultsAreSafe) {
  const PhaseSpec p;
  EXPECT_FALSE(p.marked);
  EXPECT_FALSE(p.barrier_after);
  EXPECT_FALSE(p.contains_blocking_sync);
  EXPECT_DOUBLE_EQ(p.flops, 0.0);
  EXPECT_EQ(p.declared_wss(), 0u);
}

}  // namespace
}  // namespace rda::sim
