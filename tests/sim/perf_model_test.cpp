#include "sim/perf_model.hpp"

#include <gtest/gtest.h>

namespace rda::sim {
namespace {

TEST(PerfModel, FullyResidentHighReuseNearPeak) {
  Calibration calib;
  const PhaseRate rate = compute_rate(calib, ReuseLevel::kHigh, 1.0);
  // Only the small streaming term remains: within a few % of peak.
  EXPECT_GT(rate.flops_per_sec, 0.95 * calib.core_flops);
  EXPECT_DOUBLE_EQ(rate.residency_bytes_per_sec, 0.0);
}

TEST(PerfModel, EvictionSlowsHighReuseMoreThanLow) {
  Calibration calib;
  const double high_resident =
      compute_rate(calib, ReuseLevel::kHigh, 1.0).flops_per_sec;
  const double high_evicted =
      compute_rate(calib, ReuseLevel::kHigh, 0.0).flops_per_sec;
  const double low_resident =
      compute_rate(calib, ReuseLevel::kLow, 1.0).flops_per_sec;
  const double low_evicted =
      compute_rate(calib, ReuseLevel::kLow, 0.0).flops_per_sec;
  const double high_slowdown = high_resident / high_evicted;
  const double low_slowdown = low_resident / low_evicted;
  EXPECT_GT(high_slowdown, low_slowdown);
  EXPECT_GT(high_slowdown, 1.5);  // losing the cache must hurt a lot
  EXPECT_LT(low_slowdown, 1.2);   // streaming barely cares
}

TEST(PerfModel, RateMonotonicInResidency) {
  Calibration calib;
  double prev = 0.0;
  for (double f = 0.0; f <= 1.0; f += 0.1) {
    const double rate = compute_rate(calib, ReuseLevel::kHigh, f).flops_per_sec;
    EXPECT_GT(rate, prev);
    prev = rate;
  }
}

TEST(PerfModel, TrafficConsistentWithMissRates) {
  Calibration calib;
  const PhaseRate r = compute_rate(calib, ReuseLevel::kMedium, 0.5);
  EXPECT_NEAR(r.dram_bytes_per_sec,
              r.residency_bytes_per_sec / calib.fill_efficiency +
                  r.streaming_bytes_per_sec,
              1e-6 * r.dram_bytes_per_sec);
}

TEST(PerfModel, ResidentFractionClamped) {
  Calibration calib;
  const PhaseRate below = compute_rate(calib, ReuseLevel::kHigh, -0.5);
  const PhaseRate zero = compute_rate(calib, ReuseLevel::kHigh, 0.0);
  EXPECT_DOUBLE_EQ(below.flops_per_sec, zero.flops_per_sec);
  const PhaseRate above = compute_rate(calib, ReuseLevel::kHigh, 1.5);
  const PhaseRate one = compute_rate(calib, ReuseLevel::kHigh, 1.0);
  EXPECT_DOUBLE_EQ(above.flops_per_sec, one.flops_per_sec);
}

TEST(PerfModel, BandwidthCapScalesAggregateTraffic) {
  Calibration calib;
  // 12 fully-evicted low-reuse (streaming) threads oversubscribe DRAM.
  std::vector<RateRequest> requests(12, {ReuseLevel::kLow, 0.0});
  const double bw = 10e9;
  const auto rates = compute_rates_capped(calib, requests, bw);
  double total = 0.0;
  for (const PhaseRate& r : rates) total += r.dram_bytes_per_sec;
  EXPECT_LE(total, bw * 1.001);
  EXPECT_GT(total, bw * 0.98);  // the cap binds, not over-throttles
}

TEST(PerfModel, NoCapWhenTrafficFits) {
  Calibration calib;
  std::vector<RateRequest> requests(2, {ReuseLevel::kHigh, 1.0});
  const auto capped = compute_rates_capped(calib, requests, 100e9);
  const PhaseRate solo = compute_rate(calib, ReuseLevel::kHigh, 1.0);
  EXPECT_DOUBLE_EQ(capped[0].flops_per_sec, solo.flops_per_sec);
}

TEST(PerfModel, CapHitsMemoryBoundThreadsHarder) {
  Calibration calib;
  std::vector<RateRequest> requests = {
      {ReuseLevel::kLow, 0.0},   // streaming, memory bound
      {ReuseLevel::kHigh, 1.0},  // resident, compute bound
  };
  // Add streaming threads until the cap binds.
  for (int i = 0; i < 10; ++i) requests.push_back({ReuseLevel::kLow, 0.0});
  const auto capped = compute_rates_capped(calib, requests, 8e9);
  const double stream_uncapped =
      compute_rate(calib, ReuseLevel::kLow, 0.0).flops_per_sec;
  const double compute_uncapped =
      compute_rate(calib, ReuseLevel::kHigh, 1.0).flops_per_sec;
  const double stream_loss = capped[0].flops_per_sec / stream_uncapped;
  const double compute_loss = capped[1].flops_per_sec / compute_uncapped;
  EXPECT_LT(stream_loss, 0.9);           // memory-bound thread throttled
  EXPECT_GT(compute_loss, stream_loss);  // compute-bound one less affected
}

TEST(PerfModel, EmptyRequestListOk) {
  Calibration calib;
  EXPECT_TRUE(compute_rates_capped(calib, {}, 1e9).empty());
}

// Property sweep over reuse levels and residency: rates and traffic always
// positive and finite.
class PerfSweep
    : public ::testing::TestWithParam<std::tuple<ReuseLevel, double>> {};

TEST_P(PerfSweep, RatesFiniteAndPositive) {
  Calibration calib;
  const auto [reuse, fraction] = GetParam();
  const PhaseRate r = compute_rate(calib, reuse, fraction);
  EXPECT_GT(r.flops_per_sec, 0.0);
  EXPECT_GE(r.dram_bytes_per_sec, 0.0);
  EXPECT_GE(r.residency_bytes_per_sec, 0.0);
  EXPECT_GE(r.streaming_bytes_per_sec, 0.0);
  EXPECT_LT(r.flops_per_sec, calib.core_flops * 1.0001);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PerfSweep,
    ::testing::Combine(::testing::Values(ReuseLevel::kLow, ReuseLevel::kMedium,
                                         ReuseLevel::kHigh),
                       ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0)));

}  // namespace
}  // namespace rda::sim
