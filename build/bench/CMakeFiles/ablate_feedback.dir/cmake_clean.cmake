file(REMOVE_RECURSE
  "CMakeFiles/ablate_feedback.dir/ablate_feedback.cpp.o"
  "CMakeFiles/ablate_feedback.dir/ablate_feedback.cpp.o.d"
  "ablate_feedback"
  "ablate_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
