// Resource waitlist (§3.1) and wake-order strategies.
//
// "Processes that are paused are placed on a resource waitlist so they may
//  be rescheduled later when another progress period completes and releases
//  sufficient resources."
//
// FIFO by default. The scan policy on release is configurable:
//   * work-conserving (default): walk the list in arrival order and admit
//     every entry that now fits (skipping ones that don't);
//   * head-only: stop at the first entry that does not fit — stronger
//     arrival-order fairness, weaker utilization (ablation bench);
//   * best-fit (WakeOrder::kBestFitDemand): demand-aware wake order — admit
//     the LARGEST fitting demand first, packing the freed capacity
//     (ablation bench `ablate_waitlist`).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/registry.hpp"

namespace rda::core {

class Waitlist {
 public:
  struct Entry {
    PeriodId period = kInvalidPeriod;
    sim::ThreadId thread = sim::kInvalidThread;
    sim::ProcessId process = sim::kInvalidProcess;
    double enqueue_time = 0.0;
    /// Primary-resource demand of the parked period; lets wake strategies
    /// order candidates without a registry lookup.
    double demand = 0.0;
    /// Starvation-watchdog bookkeeping: fruitless rescans survived since the
    /// last escalation, the highest degradation-ladder rung already applied
    /// (0 = none, 1 = clamp, 2 = force, 3 = reject), and when the watchdog
    /// last acted on (or first saw) this entry.
    std::uint32_t rounds = 0;
    std::uint8_t rung = 0;
    double last_escalation_time = 0.0;
    /// Global arrival sequence, assigned by the sharded waitlist so the
    /// cross-shard merged view can reconstruct true FIFO order.
    std::uint64_t seq = 0;
  };

  void push(Entry entry) { entries_.push_back(entry); }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  const std::deque<Entry>& entries() const { return entries_; }

  /// Mutable access for the watchdog's round/rung bookkeeping; the identity
  /// fields (period/thread/process) must not be modified through this.
  Entry& entry_at(std::size_t index) { return entries_[index]; }

  /// Removes and returns every entry `admit` accepts, in FIFO order. When
  /// `head_only`, scanning stops at the first rejection.
  std::vector<Entry> drain_admissible(
      const std::function<bool(const Entry&)>& admit, bool head_only);

  /// Removes and returns the entry at `index` (0 = head).
  Entry remove_at(std::size_t index);

  /// Removes all entries of one process (group admission for thread pools).
  std::vector<Entry> remove_process(sim::ProcessId process);

  /// Total pending entries of one process.
  std::size_t count_process(sim::ProcessId process) const;

 private:
  std::deque<Entry> entries_;
};

/// Wake order applied when released capacity is re-offered to the waitlist.
enum class WakeOrder {
  kFifo,           ///< arrival order (paper behaviour)
  kBestFitDemand,  ///< largest fitting demand first (demand-aware packing)
};

std::string to_string(WakeOrder order);

/// Strategy deciding WHICH parked entry is admitted next on a rescan. The
/// progress monitor calls select() repeatedly: each call returns the index
/// of one entry to admit now, or `npos` to stop. `fits` must be a
/// side-effect-free admissibility check (pool guard + predicate); the
/// monitor performs the actual load charge after selection.
class WakeStrategy {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  virtual ~WakeStrategy() = default;
  virtual std::size_t select(
      const std::deque<Waitlist::Entry>& entries,
      const std::function<bool(const Waitlist::Entry&)>& fits) const = 0;
  virtual std::string name() const = 0;
};

/// Arrival-order wake. `work_conserving` scans past non-fitting entries;
/// otherwise the scan stops when the head does not fit (strict FIFO).
class FifoWakeStrategy final : public WakeStrategy {
 public:
  explicit FifoWakeStrategy(bool work_conserving = true)
      : work_conserving_(work_conserving) {}
  std::size_t select(
      const std::deque<Waitlist::Entry>& entries,
      const std::function<bool(const Waitlist::Entry&)>& fits) const override;
  std::string name() const override;

 private:
  bool work_conserving_;
};

/// Demand-aware wake: of all fitting entries, admit the one with the
/// largest demand (ties: earliest arrival), maximizing how much of the
/// freed capacity is put back to work per wake.
class BestFitWakeStrategy final : public WakeStrategy {
 public:
  std::size_t select(
      const std::deque<Waitlist::Entry>& entries,
      const std::function<bool(const Waitlist::Entry&)>& fits) const override;
  std::string name() const override { return "best-fit"; }
};

std::unique_ptr<WakeStrategy> make_wake_strategy(WakeOrder order,
                                                 bool work_conserving);

}  // namespace rda::core
