file(REMOVE_RECURSE
  "librda_workload.a"
)
