#include "trace/trace_io.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "trace/error.hpp"
#include "util/check.hpp"

namespace rda::trace {

namespace {

constexpr char kMagic[8] = {'R', 'D', 'A', 'T', 'R', 'C', '0', '1'};
constexpr std::uint32_t kNoParent = 0xffffffffu;
constexpr std::size_t kRecordBytes = kTraceRecordBytes;
/// Writer flush / reader refill unit, in records (~2.25 MB of file bytes).
constexpr std::size_t kIoChunkRecords = 256 * 1024;

void write_bytes(std::FILE* f, const void* data, std::size_t n) {
  RDA_CHECK_MSG(std::fwrite(data, 1, n, f) == n, "trace file write failed");
}

template <typename T>
void write_pod(std::FILE* f, T value) {
  write_bytes(f, &value, sizeof(T));
}

/// Offset-tracking reader: every short read reports the exact file position
/// at which the data ran out, as a TraceError.
struct Reader {
  std::FILE* f = nullptr;
  const std::string& path;
  std::uint64_t offset = 0;

  void read(void* data, std::size_t n, const char* what) {
    const std::size_t got = std::fread(data, 1, n, f);
    offset += got;
    if (got != n) trace_error(path, offset, std::string("truncated ") + what);
  }

  template <typename T>
  T pod(const char* what) {
    T value{};
    read(&value, sizeof(T), what);
    return value;
  }
};

/// Streaming reader over the record section of a trace file.
class FileTraceSource final : public TraceSource {
 public:
  FileTraceSource(const std::string& path, long offset, std::uint64_t count)
      : path_(path),
        offset_(static_cast<std::uint64_t>(offset)),
        remaining_(count),
        buffer_(std::min<std::uint64_t>(count, kIoChunkRecords) *
                kRecordBytes) {
    file_ = std::fopen(path.c_str(), "rb");
    RDA_CHECK_MSG(file_ != nullptr, "cannot open trace file " << path);
    RDA_CHECK(std::fseek(file_, offset, SEEK_SET) == 0);
  }

  ~FileTraceSource() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  bool next(TraceRecord& out) override {
    if (remaining_ == 0) return false;
    if (buffer_pos_ >= buffer_len_) {
      // The buffer is allocated once in the constructor; refills only read
      // into it (a resize per refill would touch the allocator and memset
      // the tail on every chunk).
      const std::size_t want =
          std::min<std::uint64_t>(remaining_, kIoChunkRecords);
      const std::size_t got =
          std::fread(buffer_.data(), 1, want * kRecordBytes, file_);
      offset_ += got;
      if (got != want * kRecordBytes) {
        trace_error(path_, offset_,
                    "record section truncated mid-stream (header promised " +
                        std::to_string(remaining_) + " more records)");
      }
      buffer_len_ = want;
      buffer_pos_ = 0;
    }
    const unsigned char* p = buffer_.data() + buffer_pos_ * kRecordBytes;
    std::memcpy(&out.value, p, sizeof(std::uint64_t));
    out.kind = static_cast<RecordKind>(p[8]);
    ++buffer_pos_;
    --remaining_;
    return true;
  }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::uint64_t offset_ = 0;
  std::uint64_t remaining_ = 0;
  std::vector<unsigned char> buffer_;
  std::size_t buffer_len_ = 0;
  std::size_t buffer_pos_ = 0;
};

}  // namespace

TraceFileWriter::TraceFileWriter(const std::string& path,
                                 const LoopNest& nest) {
  file_ = std::fopen(path.c_str(), "wb");
  RDA_CHECK_MSG(file_ != nullptr, "cannot create trace file " << path);
  write_bytes(file_, kMagic, sizeof(kMagic));
  write_pod<std::uint32_t>(file_,
                           static_cast<std::uint32_t>(nest.size()));
  for (const LoopInfo& loop : nest.loops()) {
    RDA_CHECK_MSG(loop.name.size() <= 0xffff, "loop name too long");
    write_pod<std::uint16_t>(file_,
                             static_cast<std::uint16_t>(loop.name.size()));
    write_bytes(file_, loop.name.data(), loop.name.size());
    write_pod<std::uint64_t>(file_, loop.pc_begin);
    write_pod<std::uint64_t>(file_, loop.pc_end);
    write_pod<std::uint32_t>(
        file_, loop.parent == kNoLoop ? kNoParent : loop.parent);
  }
  count_offset_ = std::ftell(file_);
  write_pod<std::uint64_t>(file_, 0);  // patched in finalize()
  buffer_.reserve(kIoChunkRecords * kRecordBytes);
}

TraceFileWriter::~TraceFileWriter() { finalize(); }

void TraceFileWriter::flush_buffer() {
  if (buffer_.empty()) return;
  write_bytes(file_, buffer_.data(), buffer_.size());
  buffer_.clear();
}

void TraceFileWriter::write(const TraceRecord& record) {
  RDA_CHECK_MSG(!finalized_, "write after finalize");
  const std::size_t at = buffer_.size();
  buffer_.resize(at + kRecordBytes);
  std::memcpy(buffer_.data() + at, &record.value, sizeof(std::uint64_t));
  buffer_[at + 8] = static_cast<unsigned char>(record.kind);
  ++count_;
  if (buffer_.size() >= kIoChunkRecords * kRecordBytes) flush_buffer();
}

void TraceFileWriter::write_all(TraceSource& source) {
  TraceRecord record;
  while (source.next(record)) write(record);
}

void TraceFileWriter::finalize() {
  if (finalized_) return;
  finalized_ = true;
  flush_buffer();
  RDA_CHECK(std::fseek(file_, count_offset_, SEEK_SET) == 0);
  write_pod<std::uint64_t>(file_, count_);
  std::fclose(file_);
  file_ = nullptr;
}

TraceFile TraceFile::open(const std::string& path) {
  std::FILE* raw = std::fopen(path.c_str(), "rb");
  RDA_CHECK_MSG(raw != nullptr, "cannot open trace file " << path);
  // RAII close: the offset-tracked reads below throw TraceError on any
  // truncation, and the handle must not leak across that.
  const std::unique_ptr<std::FILE, int (*)(std::FILE*)> closer(raw,
                                                               &std::fclose);
  Reader r{raw, path, 0};

  char magic[8];
  r.read(magic, sizeof(magic), "magic");
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    trace_error(path, 0, "not an RDA trace file (bad magic)");
  }

  TraceFile out;
  out.path_ = path;
  const std::uint32_t loop_count = r.pod<std::uint32_t>("loop count");
  // Loops are stored parents-first (add order), so rebuilding in order is
  // safe — provided each parent index actually precedes its child.
  for (std::uint32_t i = 0; i < loop_count; ++i) {
    const std::uint16_t name_len = r.pod<std::uint16_t>("loop name length");
    std::string name(name_len, '\0');
    r.read(name.data(), name_len, "loop name");
    const std::uint64_t pc_begin = r.pod<std::uint64_t>("loop pc_begin");
    const std::uint64_t pc_end = r.pod<std::uint64_t>("loop pc_end");
    const std::uint32_t parent = r.pod<std::uint32_t>("loop parent");
    if (parent == kNoParent) {
      out.nest_.add_loop(std::move(name), pc_begin, pc_end);
    } else {
      if (parent >= i) {
        trace_error(path, r.offset,
                    "loop " + std::to_string(i) + " references parent " +
                        std::to_string(parent) + " that does not precede it");
      }
      out.nest_.add_nested(parent, std::move(name), pc_begin, pc_end);
    }
  }
  out.record_count_ = r.pod<std::uint64_t>("record count");
  out.records_offset_ = std::ftell(raw);

  // Up-front size validation: a truncated or lying header is reported here,
  // at open, instead of as a mid-stream failure deep inside a profiling run.
  const std::uint64_t offset = static_cast<std::uint64_t>(out.records_offset_);
  if (out.record_count_ > (UINT64_MAX - offset) / kRecordBytes) {
    trace_error(path, offset, "implausible record count " +
                                  std::to_string(out.record_count_));
  }
  RDA_CHECK(std::fseek(raw, 0, SEEK_END) == 0);
  const std::uint64_t file_size =
      static_cast<std::uint64_t>(std::ftell(raw));
  const std::uint64_t need = offset + out.record_count_ * kRecordBytes;
  if (file_size < need) {
    trace_error(path, file_size,
                "record section truncated: header promises " +
                    std::to_string(out.record_count_) + " records (" +
                    std::to_string(need) + " bytes) but the file ends early");
  }
  return out;
}

std::unique_ptr<TraceSource> TraceFile::records() const {
  return std::make_unique<FileTraceSource>(path_, records_offset_,
                                           record_count_);
}

}  // namespace rda::trace
