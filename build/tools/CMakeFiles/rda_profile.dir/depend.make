# Empty dependencies file for rda_profile.
# This may be replaced when dependencies are built.
