file(REMOVE_RECURSE
  "CMakeFiles/fig8_dram_energy.dir/fig8_dram_energy.cpp.o"
  "CMakeFiles/fig8_dram_energy.dir/fig8_dram_energy.cpp.o.d"
  "CMakeFiles/fig8_dram_energy.dir/fig_common.cpp.o"
  "CMakeFiles/fig8_dram_energy.dir/fig_common.cpp.o.d"
  "fig8_dram_energy"
  "fig8_dram_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_dram_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
