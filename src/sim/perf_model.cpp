#include "sim/perf_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace rda::sim {

namespace {

/// Rate under a queueing factor q applied to the miss stall.
PhaseRate rate_with_queueing(const Calibration& calib, ReuseLevel reuse,
                             double resident_fraction, double q) {
  const double f = std::clamp(resident_fraction, 0.0, 1.0);
  const double stream_mpf = calib.stream_misses_per_flop(reuse);
  const double reuse_mpf = calib.reuse_misses_per_flop(reuse) * (1.0 - f);
  const double mpf = stream_mpf + reuse_mpf;
  const double time_per_flop = calib.flop_time() + mpf * calib.miss_stall * q;

  PhaseRate rate;
  rate.flops_per_sec = 1.0 / time_per_flop;
  rate.dram_bytes_per_sec = rate.flops_per_sec * mpf * calib.line_bytes;
  rate.residency_bytes_per_sec =
      rate.flops_per_sec * reuse_mpf * calib.line_bytes * calib.fill_efficiency;
  rate.streaming_bytes_per_sec =
      rate.flops_per_sec * stream_mpf * calib.line_bytes;
  return rate;
}

double aggregate_traffic(const Calibration& calib,
                         const std::vector<RateRequest>& requests, double q) {
  double total = 0.0;
  for (const RateRequest& r : requests) {
    total += rate_with_queueing(calib, r.reuse, r.resident_fraction, q)
                 .dram_bytes_per_sec;
  }
  return total;
}

}  // namespace

PhaseRate compute_rate(const Calibration& calib, ReuseLevel reuse,
                       double resident_fraction) {
  return rate_with_queueing(calib, reuse, resident_fraction, 1.0);
}

std::vector<PhaseRate> compute_rates_capped(
    const Calibration& calib, const std::vector<RateRequest>& requests,
    double bandwidth) {
  RDA_CHECK(bandwidth > 0.0);
  double q = 1.0;
  if (aggregate_traffic(calib, requests, 1.0) > bandwidth) {
    // Aggregate traffic is strictly decreasing in q; bracket then bisect.
    double lo = 1.0, hi = 2.0;
    while (aggregate_traffic(calib, requests, hi) > bandwidth && hi < 1e6) {
      hi *= 2.0;
    }
    for (int iter = 0; iter < 60 && hi - lo > 1e-9 * hi; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (aggregate_traffic(calib, requests, mid) > bandwidth) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    q = hi;
  }
  std::vector<PhaseRate> rates;
  rates.reserve(requests.size());
  for (const RateRequest& r : requests) {
    rates.push_back(rate_with_queueing(calib, r.reuse, r.resident_fraction, q));
  }
  return rates;
}

}  // namespace rda::sim
