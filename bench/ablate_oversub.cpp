// Ablation: sweep the Compromise oversubscription factor x.
//
// The paper fixes x = 2 ("shown to be effective in attaining the best
// balance between energy efficiency and performance", §3.3) but never shows
// the sweep. This bench fills that gap on a high-reuse and a mixed workload:
// x = 1 is Strict, large x approaches the Linux default.
#include <cstring>
#include <iostream>
#include <vector>

#include "exp/harness.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rda;
  const bool quick = !(argc > 1 && std::strcmp(argv[1], "--full") == 0);
  std::cout << "=== Ablation: RDA:Compromise oversubscription factor x ===\n"
               "(paper fixes x=2; x=1 == Strict, x->inf == Linux default)\n\n";

  sim::EngineConfig engine;
  engine.machine = sim::MachineConfig::e5_2420();

  const auto all_specs = workload::table2_workloads();
  const std::vector<double> xs = {1.0, 1.25, 1.5, 2.0, 3.0, 4.0, 8.0};

  // Matrix: 2 workloads x (baseline + 7 oversubscription factors).
  std::vector<workload::WorkloadSpec> specs;
  for (const char* name : {"BLAS-3", "Ocean_cp"}) {
    specs.push_back(
        quick ? workload::scale_workload(
                    workload::find_workload(all_specs, name), 0.25, 2)
              : workload::find_workload(all_specs, name));
  }
  std::vector<exp::RunConfig> configs;
  exp::RunConfig base_cfg;
  base_cfg.engine = engine;
  base_cfg.policy = core::PolicyKind::kLinuxDefault;
  configs.push_back(base_cfg);
  for (const double x : xs) {
    exp::RunConfig cfg;
    cfg.engine = engine;
    cfg.policy = core::PolicyKind::kCompromise;
    cfg.oversubscription = x;
    configs.push_back(cfg);
  }
  const std::vector<exp::RunRow> rows =
      exp::run_matrix(specs, configs, exp::parse_jobs(argc, argv));

  for (std::size_t s = 0; s < specs.size(); ++s) {
    const exp::RunRow& baseline = rows[s * configs.size()];
    util::Table table({"x", "GFLOPS", "system J", "GFLOPS/W",
                       "speedup vs Linux", "energy vs Linux"});
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const exp::RunRow& row = rows[s * configs.size() + 1 + i];
      table.begin_row()
          .add_cell(xs[i], 2)
          .add_cell(row.gflops, 2)
          .add_cell(row.system_joules, 0)
          .add_cell(row.gflops_per_watt, 3)
          .add_cell(row.gflops / baseline.gflops, 2)
          .add_cell(row.system_joules / baseline.system_joules, 2);
    }
    std::cout << specs[s].name << " (Linux default: " << baseline.gflops
              << " GFLOPS, " << baseline.system_joules << " J)\n"
              << table.render() << "\n";
  }
  return 0;
}
