#include "trace/arena.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <thread>
#include <vector>

#include "trace/generators.hpp"
#include "trace/trace_io.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace rda::trace {
namespace {

using rda::util::KB;

std::string temp_trace_path(const char* tag) {
  return testing::TempDir() + "arena_test_" + tag + ".rdatrc";
}

std::vector<TraceRecord> write_sample_trace(const std::string& path,
                                            std::uint64_t accesses) {
  RegionSpec spec;
  spec.base = 0x1000;
  spec.size_bytes = KB(128);
  spec.pattern = Pattern::kHotCold;
  spec.jump_pc = 0x500;
  spec.jump_period = 32;
  RegionAccessSource source(spec, accesses, 42);
  const std::vector<TraceRecord> records = drain(source);

  LoopNest nest;
  nest.add_loop("outer", 0x400, 0x600);
  TraceFileWriter writer(path, nest);
  VectorSource replay(records);
  writer.write_all(replay);
  writer.finalize();
  return records;
}

TEST(TraceArena, RoundTripMatchesFileSource) {
  const std::string path = temp_trace_path("roundtrip");
  const std::vector<TraceRecord> expected = write_sample_trace(path, 20000);

  const TraceArena arena = TraceArena::load(path);
  EXPECT_EQ(arena.record_count(), expected.size());
  EXPECT_EQ(arena.nest().size(), 1u);

  auto view = arena.records();
  TraceRecord rec;
  for (const TraceRecord& want : expected) {
    ASSERT_TRUE(view->next(rec));
    EXPECT_EQ(rec.value, want.value);
    EXPECT_EQ(rec.kind, want.kind);
  }
  EXPECT_FALSE(view->next(rec));
  std::remove(path.c_str());
}

TEST(TraceArena, ViewsAreIndependentCursors) {
  const std::string path = temp_trace_path("views");
  const std::vector<TraceRecord> expected = write_sample_trace(path, 5000);

  const TraceArena arena = TraceArena::load(path);
  auto a = arena.records();
  auto b = arena.records();
  TraceRecord ra, rb;
  // Advance `a` far ahead; `b` must still start from the beginning.
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(a->next(ra));
  ASSERT_TRUE(b->next(rb));
  EXPECT_EQ(rb.value, expected[0].value);
  std::remove(path.c_str());
}

TEST(TraceArena, ViewOutlivesArena) {
  const std::string path = temp_trace_path("outlive");
  const std::vector<TraceRecord> expected = write_sample_trace(path, 100);

  std::unique_ptr<TraceSource> view;
  {
    const TraceArena arena = TraceArena::load(path);
    view = arena.records();
  }  // arena destroyed; the view keeps the buffer alive
  TraceRecord rec;
  std::size_t n = 0;
  while (view->next(rec)) {
    ASSERT_LT(n, expected.size());
    EXPECT_EQ(rec.value, expected[n].value);
    ++n;
  }
  EXPECT_EQ(n, expected.size());
  std::remove(path.c_str());
}

TEST(TraceArena, ConcurrentViewsSeeIdenticalStreams) {
  const std::string path = temp_trace_path("concurrent");
  const std::vector<TraceRecord> expected = write_sample_trace(path, 50000);

  const TraceArena arena = TraceArena::load(path);
  constexpr int kThreads = 4;
  std::vector<std::uint64_t> sums(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&arena, &sums, t] {
      auto view = arena.records();
      TraceRecord rec;
      std::uint64_t sum = 0;
      while (view->next(rec)) sum += rec.value;
      sums[static_cast<std::size_t>(t)] = sum;
    });
  }
  for (auto& t : threads) t.join();
  std::uint64_t want = 0;
  for (const TraceRecord& r : expected) want += r.value;
  for (const std::uint64_t got : sums) EXPECT_EQ(got, want);
  std::remove(path.c_str());
}

TEST(TraceArena, TruncatedRecordSectionIsRejected) {
  const std::string path = temp_trace_path("truncated");
  write_sample_trace(path, 1000);
  // Chop the tail off the record section; the header still promises the
  // full count, which load() must detect up front (a streaming source only
  // notices when it reaches the hole).
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(0, truncate(path.c_str(), size - 100));
  EXPECT_THROW(TraceArena::load(path), util::CheckFailure);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rda::trace
