#include "runtime/gate.hpp"

#include <atomic>

#include "util/check.hpp"

namespace rda::rt {

AdmissionGate::AdmissionGate(GateConfig config)
    : config_(config),
      policy_(core::make_policy(config.policy, config.oversubscription)),
      predicate_(*policy_, resources_),
      monitor_(predicate_, resources_, config.monitor),
      epoch_(std::chrono::steady_clock::now()) {
  resources_.set_capacity(ResourceKind::kLLC, config_.llc_capacity_bytes);
  if (config_.bandwidth_capacity > 0.0) {
    resources_.set_capacity(ResourceKind::kMemBandwidth,
                            config_.bandwidth_capacity);
  }
  // The kernel wake event: flag the thread and ping every sleeper.
  monitor_.set_waker([this](sim::ThreadId tid) {
    granted_.insert(static_cast<std::uint32_t>(tid));
    cv_.notify_all();
  });
  monitor_.set_trace_sink(config_.trace_sink);
}

std::uint32_t AdmissionGate::self_id() {
  // thread_local slot token: assigned once per OS thread, never recycled
  // within the process, shared across all gates (the token only has to
  // identify the thread, not the gate).
  static std::atomic<std::uint32_t> next_token{1};
  thread_local const std::uint32_t token =
      next_token.fetch_add(1, std::memory_order_relaxed);
  return token;
}

std::uint32_t AdmissionGate::group_of(std::uint32_t thread_id) const {
  const auto it = groups_.find(thread_id);
  // Default: every thread is its own singleton group, so pool semantics
  // never trigger unless join_group was called.
  return it == groups_.end() ? thread_id : it->second;
}

double AdmissionGate::now_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

core::PeriodId AdmissionGate::begin(ResourceKind resource, double demand,
                                    ReuseLevel reuse, std::string label) {
  std::unique_lock<std::mutex> lock(mu_);
  const std::uint32_t tid = self_id();

  core::PeriodRecord record;
  record.thread = tid;
  record.process = group_of(tid);
  record.set_single(resource, demand);
  record.reuse = reuse;
  record.label = std::move(label);

  const auto outcome = monitor_.begin_period(std::move(record), now_seconds());
  if (outcome.admitted) return outcome.id;

  ++waits_;
  const double wait_start = now_seconds();
  cv_.wait(lock, [&] { return granted_.count(tid) != 0; });
  granted_.erase(tid);
  total_wait_seconds_ += now_seconds() - wait_start;
  return outcome.id;
}

core::PeriodId AdmissionGate::begin_multi(
    std::vector<core::ResourceDemand> demands, ReuseLevel reuse,
    std::string label) {
  std::unique_lock<std::mutex> lock(mu_);
  const std::uint32_t tid = self_id();

  core::PeriodRecord record;
  record.thread = tid;
  record.process = group_of(tid);
  record.demands = std::move(demands);
  record.reuse = reuse;
  record.label = std::move(label);

  const auto outcome = monitor_.begin_period(std::move(record), now_seconds());
  if (outcome.admitted) return outcome.id;

  ++waits_;
  const double wait_start = now_seconds();
  cv_.wait(lock, [&] { return granted_.count(tid) != 0; });
  granted_.erase(tid);
  total_wait_seconds_ += now_seconds() - wait_start;
  return outcome.id;
}

std::optional<core::PeriodId> AdmissionGate::try_begin(ResourceKind resource,
                                                       double demand,
                                                       ReuseLevel reuse,
                                                       std::string label) {
  std::unique_lock<std::mutex> lock(mu_);
  const std::uint32_t tid = self_id();

  core::PeriodRecord record;
  record.thread = tid;
  record.process = group_of(tid);
  record.set_single(resource, demand);
  record.reuse = reuse;
  record.label = std::move(label);

  const auto outcome = monitor_.begin_period(std::move(record), now_seconds());
  if (outcome.admitted) return outcome.id;
  const bool cancelled = monitor_.cancel_waiting(outcome.id, now_seconds());
  RDA_CHECK(cancelled);
  return std::nullopt;
}

std::optional<core::PeriodId> AdmissionGate::begin_for(
    ResourceKind resource, double demand, ReuseLevel reuse,
    std::chrono::nanoseconds timeout, std::string label) {
  std::unique_lock<std::mutex> lock(mu_);
  const std::uint32_t tid = self_id();

  core::PeriodRecord record;
  record.thread = tid;
  record.process = group_of(tid);
  record.set_single(resource, demand);
  record.reuse = reuse;
  record.label = std::move(label);

  const auto outcome = monitor_.begin_period(std::move(record), now_seconds());
  if (outcome.admitted) return outcome.id;

  ++waits_;
  const double wait_start = now_seconds();
  const bool granted = cv_.wait_for(
      lock, timeout, [&] { return granted_.count(tid) != 0; });
  total_wait_seconds_ += now_seconds() - wait_start;
  if (granted) {
    granted_.erase(tid);
    return outcome.id;
  }
  const bool cancelled = monitor_.cancel_waiting(outcome.id, now_seconds());
  RDA_CHECK(cancelled);
  return std::nullopt;
}

void AdmissionGate::end(core::PeriodId id) {
  std::lock_guard<std::mutex> lock(mu_);
  monitor_.end_period(id, now_seconds());
}

void AdmissionGate::mark_pool(std::uint32_t group) {
  std::lock_guard<std::mutex> lock(mu_);
  monitor_.mark_pool(group);
}

void AdmissionGate::join_group(std::uint32_t group) {
  std::lock_guard<std::mutex> lock(mu_);
  groups_[self_id()] = group;
}

GateStats AdmissionGate::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  GateStats s;
  s.monitor = monitor_.stats();
  s.waits = waits_;
  s.total_wait_seconds = total_wait_seconds_;
  return s;
}

double AdmissionGate::usage(ResourceKind resource) const {
  std::lock_guard<std::mutex> lock(mu_);
  return resources_.usage(resource);
}

std::size_t AdmissionGate::waiting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return monitor_.waitlist().size();
}

}  // namespace rda::rt
