// Reproduces paper Table 1: the evaluation machine configuration, plus the
// calibration constants layered on top of it by the simulator.
#include <iostream>

#include "sim/calibration.hpp"
#include "sim/machine.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace rda;
  const sim::MachineConfig m = sim::MachineConfig::e5_2420();
  std::cout << "=== Table 1: machine configuration ===\n\n";

  util::Table table({"component", "value"});
  table.begin_row().add_cell("CPU").add_cell(m.name);
  table.begin_row().add_cell("Cores").add_cell(m.cores);
  table.begin_row().add_cell("Clock").add_cell(m.clock_hz / 1e9, 2);
  table.begin_row().add_cell("L1-Data").add_cell(
      std::to_string(m.l1_data_bytes / util::kKiB) + " KBytes");
  table.begin_row().add_cell("L1-Instruction").add_cell(
      std::to_string(m.l1_insn_bytes / util::kKiB) + " KBytes");
  table.begin_row().add_cell("L2-Private").add_cell(
      std::to_string(m.l2_private_bytes / util::kKiB) + " KBytes");
  table.begin_row().add_cell("L3-Shared").add_cell(
      std::to_string(m.llc_bytes / util::kKiB) + " KBytes");
  table.begin_row().add_cell("Main Memory").add_cell(
      std::to_string(m.dram_bytes / util::kGiB) + " GiB");
  table.begin_row().add_cell("DRAM bandwidth").add_cell(
      std::to_string(static_cast<int>(m.dram_bandwidth / 1e9)) + " GB/s");
  std::cout << table.render() << "\n";

  const sim::Calibration c;
  util::Table calib({"calibration constant", "value"});
  calib.begin_row().add_cell("core flops (resident)").add_cell(
      std::to_string(c.core_flops / 1e9) + " Gflop/s");
  calib.begin_row().add_cell("exposed miss stall").add_cell(
      std::to_string(util::to_ns(c.miss_stall)) + " ns");
  calib.begin_row().add_cell("timeslice").add_cell(
      std::to_string(util::to_ms(c.quantum)) + " ms");
  calib.begin_row().add_cell("context switch").add_cell(
      std::to_string(util::to_us(c.context_switch_cost)) + " us");
  calib.begin_row().add_cell("pp API call (slow path)").add_cell(
      std::to_string(util::to_us(c.api_call_cost)) + " us");
  calib.begin_row().add_cell("pp API call (fast path)").add_cell(
      std::to_string(util::to_ns(c.api_fast_path_cost)) + " ns");
  calib.begin_row().add_cell("core power active/idle").add_cell(
      std::to_string(c.core_active_power) + " / " +
      std::to_string(c.core_idle_power) + " W");
  calib.begin_row().add_cell("uncore / DRAM static").add_cell(
      std::to_string(c.uncore_power) + " / " +
      std::to_string(c.dram_static_power) + " W");
  std::cout << calib.render();
  return 0;
}
