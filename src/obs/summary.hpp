// Human-readable summary of a recorded admission trace: per-kind event
// counts and the wait-latency distribution, rendered with util::Table so it
// matches the bench/tool output style.
#pragma once

#include <span>
#include <string>

#include "obs/event.hpp"
#include "obs/histogram.hpp"

namespace rda::obs {

/// Per-kind counts + wait distribution as an aligned text block.
std::string summarize(std::span<const Event> events,
                      const WaitHistogram& waits);

}  // namespace rda::obs
