# Empty dependencies file for bandwidth_streams.
# This may be replaced when dependencies are built.
