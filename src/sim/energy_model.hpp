// RAPL-style energy accounting.
//
// The paper measures (1) overall system energy — CPU + cache + DRAM — and
// (2) DRAM-only energy, via Intel RAPL power metering. This meter integrates
// the same two planes from the calibration's power figures: the package
// plane (active/idle cores + uncore) and the DRAM plane (static + per-byte
// transfer energy).
#pragma once

#include <cstdint>

#include "sim/calibration.hpp"

namespace rda::sim {

class EnergyMeter {
 public:
  EnergyMeter(const Calibration& calib, int total_cores)
      : calib_(calib), total_cores_(total_cores) {}

  /// Accounts one interval: `active_cores` ran work (or scheduler overhead),
  /// the rest idled; `dram_bytes` moved to/from memory.
  void accumulate(double dt, int active_cores, double dram_bytes) {
    const int idle_cores = total_cores_ - active_cores;
    package_joules_ +=
        dt * (static_cast<double>(active_cores) * calib_.core_active_power +
              static_cast<double>(idle_cores) * calib_.core_idle_power +
              calib_.uncore_power);
    dram_joules_ += dt * calib_.dram_static_power +
                    dram_bytes * calib_.dram_energy_per_byte;
    dram_bytes_ += dram_bytes;
    elapsed_ += dt;
  }

  /// CPU + cache (uncore) energy — the RAPL package domain.
  double package_joules() const { return package_joules_; }
  /// DRAM-only energy — the RAPL DRAM domain (paper Fig. 8).
  double dram_joules() const { return dram_joules_; }
  /// CPU + cache + DRAM — the paper's "system" energy (Fig. 7).
  double system_joules() const { return package_joules_ + dram_joules_; }
  double dram_bytes() const { return dram_bytes_; }
  double elapsed() const { return elapsed_; }

 private:
  Calibration calib_;
  int total_cores_;
  double package_joules_ = 0.0;
  double dram_joules_ = 0.0;
  double dram_bytes_ = 0.0;
  double elapsed_ = 0.0;
};

}  // namespace rda::sim
