#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace rda::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-12);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(7);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_gaussian() * 3.0 + 1.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // copy
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(FitLine, ExactLine) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {3, 5, 7, 9, 11};  // y = 1 + 2x
  const LineFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit(10.0), 21.0, 1e-12);
}

TEST(FitLine, NoisyLineRecoversSlope) {
  Rng rng(11);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    const double x = static_cast<double>(i);
    xs.push_back(x);
    ys.push_back(4.0 - 0.5 * x + rng.next_gaussian() * 0.1);
  }
  const LineFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, -0.5, 0.01);
  EXPECT_NEAR(fit.intercept, 4.0, 0.2);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(FitLine, DegenerateXGivesMean) {
  const std::vector<double> xs = {2, 2, 2};
  const std::vector<double> ys = {1, 2, 3};
  const LineFit fit = fit_line(xs, ys);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

TEST(FitLine, RejectsBadInput) {
  const std::vector<double> one = {1.0};
  EXPECT_THROW(fit_line(one, one), std::invalid_argument);
  const std::vector<double> two = {1.0, 2.0};
  const std::vector<double> three = {1.0, 2.0, 3.0};
  EXPECT_THROW(fit_line(two, three), std::invalid_argument);
}

TEST(Percentile, InterpolatesAndClamps) {
  const std::vector<double> data = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(data, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(data, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(data, 50), 25.0);
  EXPECT_DOUBLE_EQ(percentile(data, -5), 10.0);   // clamped
  EXPECT_DOUBLE_EQ(percentile(data, 200), 40.0);  // clamped
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Means, ArithmeticAndGeometric) {
  const std::vector<double> data = {1.0, 4.0, 16.0};
  EXPECT_DOUBLE_EQ(mean_of(data), 7.0);
  EXPECT_NEAR(geometric_mean(data), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(geometric_mean({}), 0.0);
}

}  // namespace
}  // namespace rda::util
