# Empty compiler generated dependencies file for validate_cache_model.
# This may be replaced when dependencies are built.
