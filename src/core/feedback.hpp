// Counter-feedback demand correction (extension).
//
// The paper's related-work discussion proposes combining demand-aware
// scheduling with real-time hardware counters: "using real-time hardware
// counters to determine current resource usage, in combination with demand
// aware scheduling, would be able to schedule processes much more
// efficiently ... and is therefore a subject to explore in later work."
//
// This module implements that hybrid: each completed period's observed peak
// usage (the counter view) is compared with its declared demand, and future
// instances of the same period — identified by its label, i.e. its static
// code location, which the paper argues is the stable key — are charged a
// corrected demand. Over-declaring code stops wasting capacity;
// under-declaring code stops thrashing its neighbours.
//
// Vector demands (PR 8) made declarations multi-resource, so correction
// state is kept per (label, resource kind): a loop that over-declares its
// LLC working set but nails its DRAM bandwidth gets its LLC charge shrunk
// without its bandwidth charge moving, and vice versa. The kind-less
// overloads are the original LLC-only API and keep every existing call
// site and trace bit-identical.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/types.hpp"

namespace rda::core {

struct FeedbackOptions {
  bool enable = false;
  /// Per-observation decay of the correction state toward new evidence.
  /// The state tracks the MAXIMUM observed usage ratio with this decay:
  /// shrinking a demand is only safe once several consecutive observations
  /// confirm the period really uses less than declared (a contended period
  /// may simply have been unable to grow its occupancy).
  double decay = 0.90;
  /// Clamp on the correction factor.
  double min_correction = 0.25;
  double max_correction = 4.0;
  /// Observations required before a correction is applied (per kind).
  std::uint32_t min_samples = 2;
};

class DemandCorrector {
 public:
  explicit DemandCorrector(FeedbackOptions options = {});

  /// Multiplier to apply to the declared demand of a period with this
  /// label on this resource kind; 1.0 while unknown or under-sampled.
  double correction(const std::string& label, ResourceKind kind) const;
  /// LLC shorthand (the original single-resource API).
  double correction(const std::string& label) const {
    return correction(label, ResourceKind::kLLC);
  }

  /// Records one completed period on one resource kind: what it declared vs
  /// the peak usage the counters saw. `contended` should be true when the
  /// resource was saturated while the period ran (its peak is then a lower
  /// bound, not a measurement, and must not shrink the correction).
  void observe(const std::string& label, ResourceKind kind,
               double declared_demand, double observed_peak, bool contended);
  /// LLC shorthand (the original single-resource API).
  void observe(const std::string& label, double declared_demand,
               double observed_peak, bool contended) {
    observe(label, ResourceKind::kLLC, declared_demand, observed_peak,
            contended);
  }

  std::size_t tracked_labels() const { return states_.size(); }
  std::uint64_t observations() const { return observations_; }
  const FeedbackOptions& options() const { return options_; }

 private:
  struct State {
    double ratio = 1.0;  ///< decayed max of observed/declared
    std::uint32_t samples = 0;
  };

  FeedbackOptions options_;
  /// One independent correction state per resource kind under each label.
  std::unordered_map<std::string, std::array<State, kNumResourceKinds>>
      states_;
  std::uint64_t observations_ = 0;
};

}  // namespace rda::core
