file(REMOVE_RECURSE
  "CMakeFiles/rda_workload.dir/native_runner.cpp.o"
  "CMakeFiles/rda_workload.dir/native_runner.cpp.o.d"
  "CMakeFiles/rda_workload.dir/table2.cpp.o"
  "CMakeFiles/rda_workload.dir/table2.cpp.o.d"
  "CMakeFiles/rda_workload.dir/trace_models.cpp.o"
  "CMakeFiles/rda_workload.dir/trace_models.cpp.o.d"
  "librda_workload.a"
  "librda_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rda_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
