#!/usr/bin/env bash
# Tier-1 gate: full build + full test suite, then the concurrency-sensitive
# runtime gate tests again under ThreadSanitizer.
#
#   scripts/tier1.sh            # both stages
#   scripts/tier1.sh --no-tsan  # skip the sanitizer stage
set -euo pipefail
cd "$(dirname "$0")/.."

run_tsan=1
[[ "${1:-}" == "--no-tsan" ]] && run_tsan=0

echo "== tier-1: build + full test suite =="
cmake --preset default
cmake --build --preset default -j "$(nproc)"
ctest --preset default -j "$(nproc)"

if [[ "$run_tsan" == 1 ]]; then
  echo "== tier-1: runtime gate tests under ThreadSanitizer =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$(nproc)" --target runtime_test
  ( cd build-tsan && ctest -R 'AdmissionGate' --output-on-failure -j "$(nproc)" )
fi

echo "tier-1 OK"
