#include "workload/trace_models.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "util/units.hpp"

namespace rda::workload {

namespace {

using rda::util::MB;

constexpr std::uint64_t kLineBytes = 64;
/// Hot/cold mixture of a progress period's accesses: the working set is the
/// hot fraction of the touched footprint.
constexpr double kHotFraction = 0.625;
constexpr double kHotProbability = 0.97;
/// Window length per footprint line so hot lines clear the threshold and
/// cold lines stay below it (Poisson separation; see trace_models.hpp).
constexpr double kAccessesPerLine = 24.0;

std::uint64_t log_wss(double scale_mb, double knee, std::uint64_t n) {
  return static_cast<std::uint64_t>(
      static_cast<double>(MB(scale_mb)) *
      std::log1p(static_cast<double>(n) / knee));
}

/// Rounds a working set to its hot/cold footprint.
std::uint64_t footprint_of(std::uint64_t wss) {
  return static_cast<std::uint64_t>(static_cast<double>(wss) / kHotFraction);
}

/// One progress-period phase of the trace: hot/cold accesses over a region
/// sized so the hot subset is the ground-truth working set.
std::unique_ptr<trace::TraceSource> period_source(std::uint64_t base,
                                                  std::uint64_t wss,
                                                  std::uint64_t accesses,
                                                  std::uint64_t jump_pc,
                                                  std::uint64_t seed) {
  trace::RegionSpec spec;
  spec.base = base;
  spec.size_bytes = footprint_of(wss);
  spec.pattern = trace::Pattern::kHotCold;
  spec.hot_fraction = kHotFraction;
  spec.hot_probability = kHotProbability;
  spec.store_ratio = 0.3;
  spec.access_granularity = 8;
  spec.jump_pc = jump_pc;
  spec.jump_period = 48;
  return std::make_unique<trace::RegionAccessSource>(spec, accesses, seed);
}

/// Behaviour break between periods: one window of pure streaming (working
/// set ~0 under the hot threshold), so the detector sees a boundary.
std::unique_ptr<trace::TraceSource> transition_source(std::uint64_t base,
                                                      std::uint64_t accesses,
                                                      std::uint64_t seed) {
  trace::RegionSpec spec;
  spec.base = base;
  spec.size_bytes = MB(8);
  spec.pattern = trace::Pattern::kSequential;
  spec.store_ratio = 0.5;
  spec.access_granularity = 8;
  return std::make_unique<trace::RegionAccessSource>(spec, accesses, seed);
}

AppTraceModel make_two_period_trace(std::uint64_t wss1, std::uint64_t wss2,
                                    const char* loop1_outer,
                                    const char* loop1_inner,
                                    const char* loop2_outer,
                                    const char* loop2_inner,
                                    std::size_t windows_per_pp,
                                    std::uint64_t seed) {
  AppTraceModel model;

  // Window sized against the larger footprint so both periods' hot sets
  // clear the threshold.
  const std::uint64_t max_lines =
      footprint_of(std::max(wss1, wss2)) / kLineBytes;
  model.window_accesses = static_cast<std::uint64_t>(
      kAccessesPerLine * static_cast<double>(max_lines));
  model.hot_threshold = 6;

  // "Binary" layout: two top-level loop nests (the paper's boundary query
  // returns the outermost loop of each period — e.g. ocean's slave2 holds
  // several sibling periods).
  const trace::LoopId l1 =
      model.nest.add_loop(loop1_outer, 0x1000, 0x2000);
  model.nest.add_nested(l1, loop1_inner, 0x1100, 0x1c00);
  const trace::LoopId l2 =
      model.nest.add_loop(loop2_outer, 0x3000, 0x4000);
  model.nest.add_nested(l2, loop2_inner, 0x3100, 0x3c00);

  const std::uint64_t pp_accesses =
      model.window_accesses * static_cast<std::uint64_t>(windows_per_pp);
  const std::uint64_t gap_accesses = model.window_accesses;

  std::vector<std::unique_ptr<trace::TraceSource>> parts;
  parts.push_back(
      period_source(/*base=*/0x10000000, wss1, pp_accesses,
                    /*jump_pc=*/0x1400, seed + 1));
  parts.push_back(
      transition_source(/*base=*/0x40000000, gap_accesses, seed + 2));
  parts.push_back(
      period_source(/*base=*/0x20000000, wss2, pp_accesses,
                    /*jump_pc=*/0x3400, seed + 3));
  parts.push_back(
      transition_source(/*base=*/0x50000000, gap_accesses, seed + 4));
  model.source = std::make_unique<trace::ConcatSource>(std::move(parts));

  model.true_wss = {wss1, wss2};
  return model;
}

}  // namespace

std::vector<std::uint64_t> wnsq_input_sizes() {
  return {8000, 15625, 32768, 64000};  // §4.4: 1x, 2x, 4x, 8x molecules
}

std::vector<std::uint64_t> ocp_input_sizes() {
  return {514, 1026, 2050, 4098};  // §4.4: 1x, 2x, 4x, 8x cells
}

std::uint64_t wnsq_pp1_wss(std::uint64_t molecules) {
  // Slightly super-logarithmic (ln^2): still "the shape of a logarithmic
  // curve" over the Fig. 12 scales, but large inputs grow enough that six
  // 32768-molecule instances oversubscribe DRAM bandwidth — the Fig. 13
  // plateau.
  const double l = std::log1p(static_cast<double>(molecules) / 600.0);
  return static_cast<std::uint64_t>(static_cast<double>(MB(0.30)) * l * l);
}

std::uint64_t wnsq_pp2_wss(std::uint64_t molecules) {
  return log_wss(0.50, 800.0, molecules);
}

std::uint64_t ocp_pp1_wss(std::uint64_t cells) {
  return log_wss(1.40, 300.0, cells);
}

std::uint64_t ocp_pp2_wss(std::uint64_t cells) {
  return log_wss(0.90, 450.0, cells);
}

AppTraceModel make_wnsq_trace(std::uint64_t molecules,
                              std::size_t windows_per_pp, std::uint64_t seed) {
  return make_two_period_trace(
      wnsq_pp1_wss(molecules), wnsq_pp2_wss(molecules),
      "wnsq.interf(outer)", "wnsq.interf(inner)", "wnsq.poteng(outer)",
      "wnsq.poteng(inner)", windows_per_pp, seed);
}

AppTraceModel make_ocp_trace(std::uint64_t cells, std::size_t windows_per_pp,
                             std::uint64_t seed) {
  return make_two_period_trace(
      ocp_pp1_wss(cells), ocp_pp2_wss(cells), "ocp.relax(outer)",
      "ocp.relax(inner)", "ocp.slave2(outer)", "ocp.slave2(inner)",
      windows_per_pp, seed);
}

double wnsq_largest_pp_flops(std::uint64_t molecules) {
  // Pair-interaction work: ~n^2/2 pairs, ~30 flops each, plus a fixed
  // per-timestep floor so the smallest input is not dominated by the cache
  // warm-up transient.
  const double n = static_cast<double>(molecules);
  return 15.0 * n * n + 5e7;
}

sim::PhaseProgram wnsq_largest_pp_program(std::uint64_t molecules) {
  return sim::ProgramBuilder()
      .period("wnsq.PP1@" + std::to_string(molecules),
              wnsq_largest_pp_flops(molecules), wnsq_pp1_wss(molecules),
              ReuseLevel::kHigh)
      .build();
}

}  // namespace rda::workload
