// Adversarial arrival shapes and the ServiceFrontEnd's TenantLedger
// enforcement path (DESIGN §17): the overlay must leave honest tenants'
// sub-streams bit-identical, the ledger must engage only on liars, and
// every enforcement decision must stay byte-identical across drain shard
// counts — the ledger half of the K-invariance contract.
#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "obs/reconcile.hpp"
#include "obs/recorder.hpp"
#include "service/arrival.hpp"
#include "service/frontend.hpp"

namespace rda::service {
namespace {

constexpr double kMB = 1024.0 * 1024.0;

ArrivalConfig base_arrivals(std::uint64_t seed = 29) {
  ArrivalConfig a;
  a.shape = ArrivalShape::kPoisson;
  a.rate = 12000.0;
  a.seed = seed;
  a.tenants = 8;
  a.hot_tenant_share = 0.4;
  a.demand_mean_bytes = 2.0 * kMB;
  a.service_mean_seconds = 2.0e-3;
  return a;
}

ServiceConfig enforced_service() {
  ServiceConfig cfg;
  cfg.nodes = 4;
  cfg.node_llc_bytes = 15.0 * kMB;
  cfg.model_true_occupancy = true;
  cfg.enforce = true;
  return cfg;
}

// --- adversary overlay ------------------------------------------------------

TEST(Adversary, OverlayLeavesHonestTenantsBitIdentical) {
  ArrivalConfig honest = base_arrivals();
  ArrivalConfig attacked = base_arrivals();
  attacked.adversary.kind = AdversaryKind::kWssInflator;
  attacked.adversary.tenant = 1;
  attacked.adversary.factor = 8.0;

  ArrivalGenerator g1(honest);
  ArrivalGenerator g2(attacked);
  for (int i = 0; i < 5000; ++i) {
    const Arrival a = g1.next();
    const Arrival b = g2.next();
    ASSERT_EQ(a.time, b.time);
    ASSERT_EQ(a.tenant, b.tenant);
    ASSERT_EQ(a.service_seconds, b.service_seconds);
    if (a.tenant == 1) {
      // The inflator's declaration is scaled; its truth is the base draw.
      ASSERT_EQ(b.demand_bytes, a.demand_bytes * 8.0);
      ASSERT_EQ(b.true_demand_bytes, a.demand_bytes);
    } else {
      // Honest tenants must not be able to tell the adversary exists.
      ASSERT_EQ(b.demand_bytes, a.demand_bytes);
      ASSERT_EQ(b.true_demand_bytes, 0.0);
    }
  }
}

TEST(Adversary, UnderDeclarerKeepsItsDeclarationAndHidesItsTruth) {
  ArrivalConfig cfg = base_arrivals();
  cfg.adversary.kind = AdversaryKind::kUnderDeclarer;
  cfg.adversary.tenant = 1;
  cfg.adversary.factor = 8.0;
  ArrivalGenerator gen(cfg);
  int seen = 0;
  for (int i = 0; i < 2000 && seen < 100; ++i) {
    const Arrival a = gen.next();
    if (a.tenant != 1) continue;
    ++seen;
    // Declares the honest-looking draw, actually touches 8x as much.
    EXPECT_EQ(a.true_demand_bytes, a.demand_bytes * 8.0);
  }
  EXPECT_GE(seen, 100);
}

TEST(Adversary, ChurnSplitsServiceTimeAcrossPiecesAtOneInstant) {
  ArrivalConfig cfg = base_arrivals();
  cfg.adversary.kind = AdversaryKind::kChurn;
  cfg.adversary.tenant = 1;
  cfg.adversary.churn_pieces = 8;
  ArrivalGenerator gen(cfg);

  std::uint64_t last_seq = 0;
  bool first = true;
  for (int i = 0; i < 2000; ++i) {
    const Arrival a = gen.next();
    if (!first) {
      EXPECT_EQ(a.seq, last_seq + 1);
    }
    last_seq = a.seq;
    first = false;
    if (a.tenant != 1) continue;
    // Pieces 2..8 of each churned period share the head's timestamp and
    // demand; the head already carries the split service time, so a full
    // group is 8 arrivals with identical time.
    std::vector<Arrival> group{a};
    while (group.size() < 8) {
      const Arrival piece = gen.next();
      EXPECT_EQ(piece.seq, last_seq + 1);
      last_seq = piece.seq;
      ASSERT_EQ(piece.tenant, 1u);
      ASSERT_EQ(piece.time, a.time);
      ASSERT_EQ(piece.demand_bytes, a.demand_bytes);
      ASSERT_EQ(piece.service_seconds, a.service_seconds);
      group.push_back(piece);
    }
  }
}

TEST(ArrivalTrace, AdversaryTraceRoundTripsWithTruthColumn) {
  ArrivalConfig cfg = base_arrivals();
  cfg.adversary.kind = AdversaryKind::kUnderDeclarer;
  cfg.adversary.tenant = 1;
  ArrivalGenerator gen(cfg);
  const std::vector<Arrival> recorded = record_arrivals(gen, 500);

  const std::string path = testing::TempDir() + "adversary_trace.csv";
  write_arrival_trace_csv(path, recorded);
  TraceArrivals replay = TraceArrivals::from_csv(path);
  for (const Arrival& a : recorded) {
    const Arrival b = replay.next();
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.demand_bytes, b.demand_bytes);
    EXPECT_EQ(a.true_demand_bytes, b.true_demand_bytes);
  }
  std::remove(path.c_str());
}

TEST(ArrivalTrace, LegacyHeaderReplaysWithTruthfulDeclarations) {
  // Pre-adversary captures lack the true_demand column; they must still
  // load, with every declaration treated as truthful.
  const std::string path = testing::TempDir() + "legacy_trace.csv";
  {
    FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(
        "time,seq,tenant,demand_bytes,service_seconds,bw_bytes_per_sec,"
        "watts\n0.001,0,1,1048576,0.002,0,0\n0.002,1,2,2097152,0.001,0,0\n",
        f);
    std::fclose(f);
  }
  TraceArrivals replay = TraceArrivals::from_csv(path);
  const Arrival a = replay.next();
  EXPECT_EQ(a.tenant, 1u);
  EXPECT_EQ(a.true_demand_bytes, 0.0);
  std::remove(path.c_str());
}

// --- front-end enforcement --------------------------------------------------

TEST(Adversary, EnforcementIsInertOnAnAllHonestFleet) {
  ArrivalConfig arr = base_arrivals();

  ServiceConfig off = enforced_service();
  off.enforce = false;
  ArrivalGenerator g1(arr);
  ServiceFrontEnd s1(off);
  const ServiceReport plain = s1.run(g1, 8000);

  ArrivalGenerator g2(arr);
  ServiceFrontEnd s2(enforced_service());
  const ServiceReport enforced = s2.run(g2, 8000);

  // Honest declarations: no penalties, no quota denials, no clamps, and
  // the service outcome itself is byte-identical to enforcement off.
  EXPECT_EQ(enforced.stats.penalties, 0u);
  EXPECT_EQ(enforced.stats.quota_denied, 0u);
  EXPECT_EQ(enforced.stats.haircuts, 0u);
  EXPECT_EQ(enforced.stats.burst_clamps, 0u);
  EXPECT_GT(enforced.stats.audits, 0u);
  EXPECT_EQ(enforced.checksum, plain.checksum);
  EXPECT_EQ(enforced.stats.completed, plain.stats.completed);
  EXPECT_TRUE(enforced.credits_conserved);
}

TEST(Adversary, InflatorClimbsTheLadderAndVictimsRecover) {
  ArrivalConfig arr = base_arrivals();
  arr.adversary.kind = AdversaryKind::kWssInflator;
  arr.adversary.tenant = 1;
  arr.adversary.factor = 8.0;

  ServiceConfig off = enforced_service();
  off.enforce = false;
  ArrivalGenerator g1(arr);
  ServiceFrontEnd s1(off);
  const ServiceReport unenforced = s1.run(g1, 8000);

  ArrivalGenerator g2(arr);
  ServiceFrontEnd s2(enforced_service());
  const ServiceReport enforced = s2.run(g2, 8000);

  const auto honest_completed = [](const ServiceReport& r) {
    std::uint64_t sum = 0;
    for (const TenantSummary& row : r.tenants) {
      if (row.tenant != 1) sum += row.completed;
    }
    return sum;
  };
  EXPECT_GT(enforced.stats.penalties, 0u);
  EXPECT_GT(enforced.stats.haircuts, 0u);
  EXPECT_GT(honest_completed(enforced), honest_completed(unenforced));
  for (const TenantSummary& row : enforced.tenants) {
    if (row.tenant == 1) {
      EXPECT_GE(row.rung, 1);
      EXPECT_LT(row.honesty, 0.5);
    } else {
      EXPECT_EQ(row.rung, 0);
    }
  }
  EXPECT_TRUE(enforced.credits_conserved);
}

TEST(Adversary, LedgerStateIsByteIdenticalAcrossShardCounts) {
  ArrivalConfig arr = base_arrivals();
  arr.adversary.kind = AdversaryKind::kWssInflator;
  arr.adversary.tenant = 1;
  arr.adversary.factor = 8.0;

  std::vector<ServiceReport> reports;
  for (const int shards : {1, 4, 16}) {
    ServiceConfig cfg = enforced_service();
    cfg.drain_shards = shards;
    ArrivalGenerator gen(arr);
    ServiceFrontEnd service(cfg);
    reports.push_back(service.run(gen, 6000));
  }
  const ServiceReport& base = reports.front();
  ASSERT_GT(base.stats.penalties, 0u);
  for (const ServiceReport& r : reports) {
    // The service outcome AND the ledger's full internal state — audit
    // order, streaks, rungs, credit balances — must be K-invariant.
    EXPECT_EQ(r.checksum, base.checksum);
    EXPECT_EQ(r.ledger_fingerprint, base.ledger_fingerprint);
    EXPECT_EQ(r.stats.audits, base.stats.audits);
    EXPECT_EQ(r.stats.penalties, base.stats.penalties);
    EXPECT_EQ(r.stats.credits_granted, base.stats.credits_granted);
    EXPECT_EQ(r.stats.credits_spent, base.stats.credits_spent);
  }
}

TEST(Adversary, PerTenantReconcileRowsSumToTotals) {
  obs::EventRecorder recorder(1 << 20);
  ServiceConfig cfg = enforced_service();
  cfg.trace_sink = &recorder;
  ArrivalConfig arr = base_arrivals();
  arr.adversary.kind = AdversaryKind::kWssInflator;
  arr.adversary.tenant = 1;
  arr.adversary.factor = 8.0;
  ArrivalGenerator gen(arr);
  ServiceFrontEnd service(cfg);
  const ServiceReport report = service.run(gen, 6000);
  ASSERT_EQ(recorder.dropped(), 0u);

  obs::ServiceStatsCheck check;
  check.enqueued = report.stats.enqueued;
  check.drains = report.stats.drains;
  check.steals = report.stats.steals;
  check.stolen = report.stats.stolen;
  check.reroutes = report.stats.reroutes;
  check.mailboxed = report.stats.mailboxed;
  check.shed = report.stats.shed;
  check.still_queued = report.stats.still_queued;
  const auto events = recorder.events();
  const obs::ReconcileReport ledger = obs::reconcile_service(events, check);
  EXPECT_TRUE(ledger.ok) << ledger.message;

  // The per-tenant columns are cross-checked against the totals inside
  // reconcile_service; here pin that the adversary's sheds landed on the
  // adversary's row, not somewhere anonymous.
  ASSERT_FALSE(ledger.tenants.empty());
  std::uint64_t shed_total = 0;
  for (const obs::TenantLedgerRow& row : ledger.tenants) {
    shed_total += row.sheds;
    if (row.tenant == 1) {
      EXPECT_GT(row.sheds, 0u);
    }
  }
  EXPECT_EQ(shed_total, report.stats.shed);
}

}  // namespace
}  // namespace rda::service
