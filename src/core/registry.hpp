// Progress-period registry (§3.1).
//
// "The progress monitor stores all active progress period information in a
//  registry, so the resource usage footprint of each progress period can be
//  removed from our environment after the period completes."
//
// pp_begin returns a PeriodId that uniquely identifies the period (paper
// Fig. 4 line 6); pp_end passes it back. Ids are never reused within a
// registry's lifetime so a stale pp_end is detected, not misattributed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "sim/ids.hpp"

namespace rda::core {

/// One declared demand of a progress period.
struct ResourceDemand {
  ResourceKind resource = ResourceKind::kLLC;
  double amount = 0.0;  ///< bytes for kLLC, bytes/second for kMemBandwidth
};

/// Everything the scheduler knows about one active progress period. A
/// period may target several resources at once (§3.2's per-resource load
/// table; the conclusion's "configurable to allow multiple hardware
/// resources to be targeted") — admission requires every declared demand to
/// fit its resource.
struct PeriodRecord {
  PeriodId id = kInvalidPeriod;
  sim::ThreadId thread = sim::kInvalidThread;
  sim::ProcessId process = sim::kInvalidProcess;
  std::vector<ResourceDemand> demands;
  ReuseLevel reuse = ReuseLevel::kLow;
  double begin_time = 0.0;
  std::string label;
  /// Primary-resource demand as the caller DECLARED it, before
  /// counter-feedback correction and partition capping reshaped the charged
  /// amount; what observed hardware counters are compared against at
  /// release. 0 only for records built outside AdmissionCore.
  double declared_demand = 0.0;
  /// DRAM-bandwidth demand as DECLARED (before counter-feedback reshaped
  /// the charged amount); what observed bandwidth is compared against at
  /// release. 0 when the period declared none.
  double declared_bandwidth = 0.0;
  /// Lease epoch at begin (refreshed by heartbeat); sweep() reaps periods
  /// whose lease is older than the configured age.
  std::uint64_t lease_epoch = 0;
  /// Admitted by the watchdog's forced-oversubscription rung: its load is
  /// mirrored in the resource monitor's oversubscription tally and must be
  /// removed from both sides on release/reap.
  bool oversub = false;
  /// Currently admitted (load charged)? False while parked on a waitlist.
  /// Replaces the old monitor-side admitted set so the lock-free release
  /// path learns the period's fate from the record it removed.
  bool admitted = false;
  /// ResourceMonitor stripe this period's load was charged on; its pp_end
  /// must discharge the same stripe.
  std::uint32_t stripe = 0;

  /// Declares a single-resource period (the common, paper-default case).
  void set_single(ResourceKind resource, double amount) {
    demands = {{resource, amount}};
  }
  /// Adds one more targeted resource.
  void add_demand(ResourceKind resource, double amount) {
    demands.push_back({resource, amount});
  }
  /// Demand on one resource (0 when the period does not target it).
  double demand_for(ResourceKind resource) const {
    for (const ResourceDemand& d : demands) {
      if (d.resource == resource) return d.amount;
    }
    return 0.0;
  }
  /// The primary (first-declared) resource and demand — convenience for the
  /// single-resource call sites.
  ResourceKind primary_resource() const {
    return demands.empty() ? ResourceKind::kLLC : demands.front().resource;
  }
  double primary_demand() const {
    return demands.empty() ? 0.0 : demands.front().amount;
  }
};

class PeriodRegistry {
 public:
  /// Ids are assigned first_id, first_id+stride, first_id+2·stride, … —
  /// the sharded registry gives each shard a distinct residue class so ids
  /// stay globally unique without cross-shard coordination.
  explicit PeriodRegistry(PeriodId first_id = 1, PeriodId stride = 1)
      : next_id_(first_id), stride_(stride) {}

  /// Registers a new active period; assigns and returns its unique id.
  /// Validates before moving: if it throws (nested begin, negative demand)
  /// the caller's record is untouched and still owns its demands.
  PeriodId insert(PeriodRecord&& record);

  /// nullptr if the id is not active.
  const PeriodRecord* find(PeriodId id) const;

  /// Mutable lookup for in-place reshaping (watchdog demand clamp, lease
  /// refresh). The id and thread keys must not be modified through this.
  PeriodRecord* find_mutable(PeriodId id);

  /// Removes and returns the record; throws util::CheckFailure if the id is
  /// unknown (double pp_end or a forged id).
  PeriodRecord remove(PeriodId id);

  std::size_t active_count() const { return records_.size(); }

  /// Active period of a given thread, if any (a thread can be inside at
  /// most one period at a time — periods do not nest in the paper's model).
  std::optional<PeriodId> active_for_thread(sim::ThreadId thread) const;

  /// Snapshot for diagnostics.
  std::vector<PeriodRecord> snapshot() const;

 private:
  using RecordMap = std::unordered_map<PeriodId, PeriodRecord>;
  using ThreadMap = std::unordered_map<sim::ThreadId, PeriodId>;

  RecordMap records_;
  ThreadMap by_thread_;
  PeriodId next_id_ = 1;
  PeriodId stride_ = 1;
  /// Extracted-node stashes: begin/end on the calm path would otherwise pay
  /// two map-node mallocs and two frees per period. remove() parks the
  /// nodes here; insert() re-keys them. Bounded so an admission burst does
  /// not pin memory forever.
  std::vector<RecordMap::node_type> record_nodes_;
  std::vector<ThreadMap::node_type> thread_nodes_;
};

}  // namespace rda::core
