// Phase-program validation — the API-contract checks of §3.4.
//
// The paper's model requires (1) no blocking synchronization inside a
// progress period (a paused sibling could deadlock a barrier), and a group
// of periods works best when each working set individually fits the cache.
// Workload builders and tests run programs through these checks before
// handing them to the simulator.
#pragma once

#include <string>
#include <vector>

#include "sim/phase.hpp"

namespace rda::api {

struct ValidationIssue {
  enum class Severity { kError, kWarning };
  Severity severity = Severity::kError;
  std::size_t phase_index = 0;
  std::string message;
};

struct ValidationOptions {
  /// Warn when a single marked period's working set exceeds this capacity
  /// (§3.4 constraint 1: individually fit within the cache).
  std::uint64_t llc_capacity_bytes = 0;  ///< 0 disables the check
};

/// Structural checks. Errors: negative work, a *marked* period carrying a
/// barrier (blocking sync inside a period), zero-demand marked periods.
/// Warnings: marked working set exceeding the LLC capacity.
std::vector<ValidationIssue> validate_program(const sim::PhaseProgram& program,
                                              const ValidationOptions& options
                                              = {});

/// True when no kError issue is present.
bool program_ok(const std::vector<ValidationIssue>& issues);

}  // namespace rda::api
