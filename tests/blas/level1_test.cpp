#include "blas/level1.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace rda::blas {
namespace {

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.next_double(-10.0, 10.0);
  return v;
}

TEST(Daxpy, ComputesAlphaXPlusY) {
  std::vector<double> x = {1, 2, 3};
  std::vector<double> y = {10, 20, 30};
  daxpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
  EXPECT_DOUBLE_EQ(y[2], 36.0);
}

TEST(Daxpy, ZeroAlphaLeavesY) {
  std::vector<double> x = random_vector(100, 1);
  std::vector<double> y = random_vector(100, 2);
  const std::vector<double> y0 = y;
  daxpy(0.0, x, y);
  EXPECT_EQ(y, y0);
}

TEST(Daxpy, SizeMismatchRejected) {
  std::vector<double> x(3), y(4);
  EXPECT_THROW(daxpy(1.0, x, y), util::CheckFailure);
}

TEST(Dcopy, CopiesExactly) {
  std::vector<double> x = random_vector(257, 3);
  std::vector<double> y(257, 0.0);
  dcopy(x, y);
  EXPECT_EQ(x, y);
}

TEST(Dscal, ScalesInPlace) {
  std::vector<double> x = {1, -2, 4};
  dscal(-0.5, x);
  EXPECT_DOUBLE_EQ(x[0], -0.5);
  EXPECT_DOUBLE_EQ(x[1], 1.0);
  EXPECT_DOUBLE_EQ(x[2], -2.0);
}

TEST(Dscal, EmptyVectorOk) {
  std::vector<double> x;
  EXPECT_NO_THROW(dscal(3.0, x));
}

TEST(Dswap, ExchangesContents) {
  std::vector<double> x = random_vector(64, 4);
  std::vector<double> y = random_vector(64, 5);
  const std::vector<double> x0 = x, y0 = y;
  dswap(x, y);
  EXPECT_EQ(x, y0);
  EXPECT_EQ(y, x0);
}

TEST(Dswap, DoubleSwapIsIdentity) {
  std::vector<double> x = random_vector(32, 6);
  std::vector<double> y = random_vector(32, 7);
  const std::vector<double> x0 = x, y0 = y;
  dswap(x, y);
  dswap(x, y);
  EXPECT_EQ(x, x0);
  EXPECT_EQ(y, y0);
}

TEST(FlopCounts, Level1) {
  EXPECT_DOUBLE_EQ(daxpy_flops(1000), 2000.0);
  EXPECT_DOUBLE_EQ(dscal_flops(1000), 1000.0);
}

}  // namespace
}  // namespace rda::blas
