// Small platform helpers for the native runtime: CPU affinity pinning and
// LLC capacity detection (sysfs), with safe fallbacks for containers.
#pragma once

#include <cstdint>
#include <optional>

namespace rda::rt {

/// Pins the calling thread to one CPU. Returns false if unsupported or the
/// cpu index is out of range.
bool pin_to_cpu(int cpu);

/// Number of online CPUs (>=1).
int online_cpus();

/// Reads the last-level cache size from
/// /sys/devices/system/cpu/cpu0/cache/index<max>/size; nullopt when the
/// hierarchy is not exposed (common in containers).
std::optional<std::uint64_t> detect_llc_bytes();

}  // namespace rda::rt
