
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/feedback_test.cpp" "tests/CMakeFiles/core_test.dir/core/feedback_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/feedback_test.cpp.o.d"
  "/root/repo/tests/core/multi_resource_test.cpp" "tests/CMakeFiles/core_test.dir/core/multi_resource_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/multi_resource_test.cpp.o.d"
  "/root/repo/tests/core/partitioning_test.cpp" "tests/CMakeFiles/core_test.dir/core/partitioning_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/partitioning_test.cpp.o.d"
  "/root/repo/tests/core/policy_test.cpp" "tests/CMakeFiles/core_test.dir/core/policy_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/policy_test.cpp.o.d"
  "/root/repo/tests/core/progress_monitor_test.cpp" "tests/CMakeFiles/core_test.dir/core/progress_monitor_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/progress_monitor_test.cpp.o.d"
  "/root/repo/tests/core/rda_scheduler_test.cpp" "tests/CMakeFiles/core_test.dir/core/rda_scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/rda_scheduler_test.cpp.o.d"
  "/root/repo/tests/core/registry_test.cpp" "tests/CMakeFiles/core_test.dir/core/registry_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/registry_test.cpp.o.d"
  "/root/repo/tests/core/resource_monitor_test.cpp" "tests/CMakeFiles/core_test.dir/core/resource_monitor_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/resource_monitor_test.cpp.o.d"
  "/root/repo/tests/core/waitlist_test.cpp" "tests/CMakeFiles/core_test.dir/core/waitlist_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/waitlist_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/rda_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/rda_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rda_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/rda_api.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/rda_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rda_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rda_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/rda_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/rda_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rda_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/rda_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rda_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
