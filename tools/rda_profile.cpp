// rda_profile — run the §2.4 profiler on a trace file.
//
// Windows the trace, detects progress periods, maps them onto the loop nest
// stored in the file, and prints the pp_begin/pp_end annotations to insert.
//
//   rda_profile --trace wnsq_8000.rdatrc --window 786432 --threshold 6
//
// --reuse-curve additionally runs Mattson stack-distance analysis over the
// whole trace and prints the LRU miss-ratio curve plus the cache size at
// its knee — a principled value for the pp_begin demand.
//
// The trace is decoded from disk exactly once (TraceArena); --levels adds a
// multi-granularity window ladder, --jobs fans the independent passes out
// across threads (results are bit-identical for any job count), and
// --sample-rate switches the reuse curve to SHARDS-style spatial sampling.
#include <cstdio>
#include <string>
#include <vector>

#include "args.hpp"
#include "obs/chrome_trace.hpp"
#include "profiler/pipeline.hpp"
#include "profiler/report.hpp"
#include "profiler/reuse_distance.hpp"
#include "trace/arena.hpp"
#include "util/parallel.hpp"
#include "util/units.hpp"

namespace {

/// Exports the detected periods as Chrome trace slices on a window-index
/// timeline (1 window == 1 "second"), so the period structure the detector
/// found can be eyeballed in chrome://tracing / Perfetto.
void write_period_trace(const std::string& path,
                        const rda::prof::ProfileReport& report) {
  using rda::obs::Event;
  using rda::obs::EventKind;
  std::vector<Event> events;
  events.reserve(report.periods.size() * 2);
  for (std::size_t i = 0; i < report.periods.size(); ++i) {
    const rda::prof::MappedPeriod& mapped = report.periods[i];
    Event e;
    // One track per period: detected ranges may overlap, which would break
    // the B/E slice stack if they shared a thread row.
    e.thread = static_cast<rda::sim::ThreadId>(i);
    e.process = 0;
    e.period = static_cast<rda::core::PeriodId>(i + 1);
    e.demand = static_cast<double>(mapped.period.wss_bytes);
    const std::string label =
        i < report.annotations.size() && report.annotations[i].loop_name != "?"
            ? report.annotations[i].loop_name
            : "period " + std::to_string(i + 1);
    e.set_label(label);
    e.kind = EventKind::kBegin;
    e.time = static_cast<double>(mapped.period.first_window);
    events.push_back(e);
    e.kind = EventKind::kEnd;
    e.time = static_cast<double>(mapped.period.last_window + 1);
    events.push_back(e);
  }
  rda::obs::write_chrome_trace_file(path, events);
  std::printf("\nwrote %zu period slices to %s (timeline: window index)\n",
              report.periods.size(), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rda;
  const tools::Args args(argc, argv);
  const std::string path = args.get("trace");
  if (path.empty() || args.has("help")) {
    tools::usage(
        "usage: rda_profile --trace FILE [--window N] [--threshold K]\n"
        "                   [--min-windows M] [--similarity S]\n"
        "                   [--levels L] [--jobs J] [--sample-rate R]\n"
        "  --window      accesses per profiling window (default 1048576)\n"
        "  --threshold   touches before a line counts as working set "
        "(default 4)\n"
        "  --min-windows consecutive similar windows to seed a period "
        "(default 3)\n"
        "  --similarity  relative similarity band (default 0.25)\n"
        "  --levels      window-ladder depth below --window (default 1)\n"
        "  --ladder-ratio window shrink factor per level (default 4)\n"
        "  --jobs        worker threads for the passes; 0 = all cores\n"
        "                (default 1; any J gives bit-identical output)\n"
        "  --reuse-curve also print the LRU miss-ratio curve + WSS knee\n"
        "  --sample-rate spatial sampling rate for the reuse curve in\n"
        "                (0, 1]; 1 = exact Mattson (default 1)\n"
        "  --trace-out FILE  export detected periods as Chrome trace JSON\n"
        "                    (window-index timeline, for chrome://tracing)\n");
  }

  // Decode the file exactly once; every pass reads zero-copy arena views.
  const trace::TraceArena arena = trace::TraceArena::load(path);
  std::printf("%s: %llu records, %zu loops\n\n", path.c_str(),
              static_cast<unsigned long long>(arena.record_count()),
              arena.nest().size());

  prof::PipelineConfig pcfg;
  const std::uint64_t window =
      args.get_u64("window", prof::WindowConfig{}.window_accesses);
  const int levels = static_cast<int>(args.get_u64("levels", 1));
  if (levels <= 1) {
    pcfg.multi.windows = {window};
  } else {
    pcfg.multi.base_window = window;
    pcfg.multi.levels = levels;
    pcfg.multi.ladder_ratio =
        static_cast<int>(args.get_u64("ladder-ratio", 4));
  }
  pcfg.multi.hot_threshold = static_cast<std::uint32_t>(
      args.get_u64("threshold", pcfg.multi.hot_threshold));
  pcfg.multi.detector.min_windows =
      args.get_u64("min-windows", pcfg.multi.detector.min_windows);
  pcfg.multi.detector.similarity_threshold =
      args.get_double("similarity", pcfg.multi.detector.similarity_threshold);
  pcfg.reuse_curve = args.has("reuse-curve");
  pcfg.sample_rate = args.get_double("sample-rate", 1.0);
  pcfg.jobs = util::resolve_jobs(
      static_cast<int>(args.get_u64("jobs", 1)));

  const prof::ProfilePipeline pipeline(pcfg);
  const prof::PipelineResult result = pipeline.run(arena);

  // The coarsest level is what the serial single-window profiler reported.
  const prof::ProfileReport& report = result.level_reports.front();
  std::printf("%s", report.to_string().c_str());

  if (levels > 1) {
    std::printf("\nmerged across %zu granularities (coarsest wins):\n",
                pipeline.window_ladder().size());
    for (const prof::GranularPeriod& g : result.multi.periods) {
      std::printf("  accesses [%llu, %llu) @ window %llu, wss=%.2f MB\n",
                  static_cast<unsigned long long>(g.first_access),
                  static_cast<unsigned long long>(g.last_access),
                  static_cast<unsigned long long>(g.window_accesses),
                  util::bytes_to_mb(g.period.wss_bytes));
    }
  }

  if (result.reuse != nullptr) {
    const prof::ReuseDistanceAnalyzer& rd = *result.reuse;
    if (rd.sample_rate() < 1.0) {
      std::printf("\nLRU miss-ratio curve (sampled %.3g of lines: %llu of "
                  "%llu accesses, %llu cold est.):\n",
                  rd.sample_rate(),
                  static_cast<unsigned long long>(rd.sampled_accesses()),
                  static_cast<unsigned long long>(rd.total_accesses()),
                  static_cast<unsigned long long>(rd.cold_misses()));
    } else {
      std::printf("\nLRU miss-ratio curve (whole trace, %llu accesses, "
                  "%llu cold):\n",
                  static_cast<unsigned long long>(rd.total_accesses()),
                  static_cast<unsigned long long>(rd.cold_misses()));
    }
    for (double mb : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 15.0}) {
      std::printf("  %6.2f MB -> %5.1f%% misses\n", mb,
                  100.0 * rd.miss_ratio(util::MB(mb)));
    }
    std::printf("  knee (2%% slack): %.2f MB — a principled pp_begin "
                "demand\n",
                util::bytes_to_mb(rd.working_set_bytes(0.02)));
  }

  if (args.has("trace-out")) {
    write_period_trace(args.get("trace-out"), report);
  }

  if (report.periods.empty() && result.multi.periods.empty()) {
    std::printf("\nno periods detected — try a different --window (the "
                "trace generator prints a recommended value)\n");
    return 1;
  }
  return 0;
}
