// RdaScheduler — the paper's scheduling extension, packaged as a sim gate.
//
// A thin adapter over core::AdmissionCore: it translates sim phase
// boundaries (on_phase_begin / on_phase_end) into the core's transactional
// admit/release calls, the sim's ThreadWaker into the core's Waker, and the
// core's fast-path verdict into the calibrated API call cost the simulator
// charges (Fig. 11 overhead study). All policy, partitioning, feedback and
// waitlist logic lives in the core — shared verbatim with the native
// rt::AdmissionGate and the cluster layer's per-node gates.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "core/admission.hpp"
#include "obs/sink.hpp"
#include "sim/calibration.hpp"
#include "sim/gate.hpp"

namespace rda::core {

struct RdaOptions {
  PolicyKind policy = PolicyKind::kStrict;
  /// Oversubscription factor x for RDA:Compromise (paper uses 2).
  double oversubscription = 2.0;
  /// Enable the cached-decision fast path (Fig. 11 second series).
  bool fast_path = false;
  PartitionOptions partitioning{};
  /// Multi-resource extension: when > 0, DRAM bandwidth becomes a second
  /// gated resource with this capacity (bytes/second); periods declaring a
  /// bandwidth demand must fit BOTH resources to be admitted.
  double bandwidth_capacity = 0.0;
  /// Multi-resource extension: when > 0, a package power budget (watts)
  /// becomes a gated resource; phases declaring `watts` are throttled so
  /// the sum of admitted watts holds the cap (fig10's GFLOPS/W machinery
  /// provides the ground truth).
  double energy_capacity_watts = 0.0;
  /// Per-resource bound overrides + demand-vector combining policy; see
  /// core::AdmissionConfig.
  std::vector<PerResourcePolicy> resource_policies;
  CombinerOptions combiner{};
  /// Counter-feedback extension: correct declared demands from observed
  /// per-period hardware counters.
  FeedbackOptions feedback{};
  MonitorOptions monitor{};
  /// Tenant-truth enforcement tier (non-owning; nullptr = off). Shared
  /// across gates so a fleet audits each tenant once, fleet-wide.
  TenantLedger* tenant_ledger = nullptr;
  /// Admission-lifecycle event sink (non-owning; nullptr = tracing off).
  obs::TraceSink* trace_sink = nullptr;
  /// Fault injection (non-owning; nullptr = off). Forwarded to the core,
  /// which consults the counter-corruption hook on release.
  fault::FaultInjector* fault_injector = nullptr;
};

class RdaScheduler final : public sim::PhaseGate {
 public:
  /// `llc_capacity_bytes` seeds the resource monitor; `calib` provides the
  /// API call costs the simulator charges.
  RdaScheduler(double llc_capacity_bytes, const sim::Calibration& calib,
               RdaOptions options = {});

  /// Declares a process as a task-pool (§3.4 group pause semantics).
  void mark_pool(sim::ProcessId process) { core_.mark_pool(process); }

  /// Attaches/detaches the lifecycle-event sink at runtime.
  void set_trace_sink(obs::TraceSink* sink) { core_.set_trace_sink(sink); }

  // sim::PhaseGate
  sim::BeginResult on_phase_begin(sim::ThreadId thread,
                                  sim::ProcessId process,
                                  const sim::PhaseSpec& phase,
                                  double now) override;
  sim::EndResult on_phase_end(sim::ThreadId thread, sim::ProcessId process,
                              const sim::PhaseSpec& phase,
                              const sim::PhaseObservation& observed,
                              double now) override;
  void attach(sim::ThreadWaker& waker) override;
  void on_thread_exit(sim::ThreadId thread, double now) override;
  bool pending_admitted(sim::ThreadId thread) const override;
  bool on_stall(double now) override;

  /// The shared engine (e.g. to swap the wake strategy for ablations).
  AdmissionCore& core() { return core_; }
  const AdmissionCore& core() const { return core_; }

  MonitorStats monitor_stats() const { return core_.stats(); }
  std::uint64_t fast_path_hits() const { return core_.fast_path_hits(); }
  std::uint64_t partitioned_periods() const {
    return core_.partitioned_periods();
  }
  ResourceMonitor& resources() { return core_.resources(); }
  const ProgressMonitor& monitor() const { return core_.monitor(); }
  const SchedulingPolicy& policy() const { return core_.policy(); }
  const DemandCorrector& corrector() const { return core_.corrector(); }

 private:
  sim::Calibration calib_;
  AdmissionCore core_;
  sim::ThreadWaker* waker_ = nullptr;
  /// Threads running ungated after a watchdog rejection: their next phase
  /// end has no core period to release.
  std::unordered_set<sim::ThreadId> rejected_running_;
};

}  // namespace rda::core
