// CombiningPolicy contract (multi-resource admission): how per-resource
// verdicts fold into one decision, the all-or-nothing charge with exact
// rollback, forced charges flowing through overdraft, and the per-kind
// budget invariant Σusage + Σfree − overdraft == bound under fuzz and
// 16-thread churn.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/admission.hpp"
#include "core/policy.hpp"
#include "core/resource_monitor.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace rda::core {
namespace {

using util::MB;

constexpr double kLlcCap = 15.0 * 1024.0 * 1024.0;
constexpr double kBwCap = 30e9;
constexpr double kWattsCap = 20.0;

constexpr ResourceKind kKinds[] = {ResourceKind::kLLC,
                                   ResourceKind::kMemBandwidth,
                                   ResourceKind::kEnergyBudget};

struct CombinerFixture {
  CombinerFixture() : strict(std::make_unique<StrictPolicy>()) {
    resources.set_capacity(ResourceKind::kLLC, kLlcCap);
    resources.set_capacity(ResourceKind::kMemBandwidth, kBwCap);
    resources.set_capacity(ResourceKind::kEnergyBudget, kWattsCap);
    policies.fill(strict.get());
  }

  /// The per-kind budget conservation law, checked for every kind.
  void expect_invariant() const {
    for (const ResourceKind kind : kKinds) {
      const double bound = resources.admission_bound(kind);
      const double lhs = resources.usage(kind) + resources.total_free(kind) -
                         resources.overdraft(kind);
      EXPECT_NEAR(lhs, bound, 1e-3 * std::max(1.0, bound))
          << to_string(kind);
    }
  }

  void expect_all_zero_usage() const {
    for (const ResourceKind kind : kKinds) {
      EXPECT_NEAR(resources.usage(kind), 0.0, 1e-6) << to_string(kind);
      EXPECT_NEAR(resources.overdraft(kind), 0.0, 1e-6) << to_string(kind);
    }
  }

  ResourceMonitor resources;
  std::unique_ptr<SchedulingPolicy> strict;
  PolicyTable policies{};
};

TEST(Combiner, AllMustFitRejectsWhenAnyResourceOverflows) {
  CombinerFixture fx;
  const CombiningPolicy& combiner = default_combiner();
  // Watts over its cap; the LLC component fits easily.
  const std::vector<ResourceDemand> demands = {
      {ResourceKind::kLLC, static_cast<double>(MB(1))},
      {ResourceKind::kEnergyBudget, kWattsCap + 5.0}};
  EXPECT_FALSE(combiner.would_admit(demands, fx.resources, fx.policies));
  EXPECT_FALSE(combiner.try_schedule(demands, 0, fx.resources, fx.policies));
  // Atomicity: the fitting LLC component must NOT have been charged.
  fx.expect_all_zero_usage();
  fx.expect_invariant();
}

TEST(Combiner, AllMustFitChargesAndReleasesEveryKind) {
  CombinerFixture fx;
  const CombiningPolicy& combiner = default_combiner();
  const std::vector<ResourceDemand> demands = {
      {ResourceKind::kLLC, static_cast<double>(MB(4))},
      {ResourceKind::kMemBandwidth, 10e9},
      {ResourceKind::kEnergyBudget, 8.0}};
  ASSERT_TRUE(combiner.would_admit(demands, fx.resources, fx.policies));
  ASSERT_TRUE(combiner.try_schedule(demands, 3, fx.resources, fx.policies));
  EXPECT_NEAR(fx.resources.usage(ResourceKind::kLLC),
              static_cast<double>(MB(4)), 1.0);
  EXPECT_NEAR(fx.resources.usage(ResourceKind::kMemBandwidth), 10e9, 1.0);
  EXPECT_NEAR(fx.resources.usage(ResourceKind::kEnergyBudget), 8.0, 1e-9);
  fx.expect_invariant();
  for (const ResourceDemand& d : demands) {
    fx.resources.decrement_load(d.resource, d.amount, 3);
  }
  fx.expect_all_zero_usage();
  fx.expect_invariant();
}

TEST(Combiner, WeightedSumCompensatesAcrossResources) {
  CombinerFixture fx;
  CombinerOptions options;
  options.kind = CombinerKind::kWeightedSum;
  options.weighted_threshold = 1.0;
  const auto combiner = make_combiner(options);

  // LLC would overflow its own strict bound (18 MB on 15 MB), but the idle
  // watts row pulls the weighted average under the threshold: admitted, with
  // the LLC shortfall booked as overdraft — never a negative free pool.
  const std::vector<ResourceDemand> demands = {
      {ResourceKind::kLLC, 18.0 * 1024.0 * 1024.0},
      {ResourceKind::kEnergyBudget, 1.0}};
  ASSERT_TRUE(combiner->would_admit(demands, fx.resources, fx.policies));
  ASSERT_TRUE(combiner->try_schedule(demands, 0, fx.resources, fx.policies));
  EXPECT_GT(fx.resources.overdraft(ResourceKind::kLLC), 0.0);
  fx.expect_invariant();

  // A second heavy LLC demand pushes the weighted average past 1: denied,
  // and the monitor is exactly as it was (no partial charge).
  const double usage_before = fx.resources.usage(ResourceKind::kLLC);
  const std::vector<ResourceDemand> heavy = {
      {ResourceKind::kLLC, 14.0 * 1024.0 * 1024.0},
      {ResourceKind::kEnergyBudget, 1.0}};
  EXPECT_FALSE(combiner->would_admit(heavy, fx.resources, fx.policies));
  EXPECT_FALSE(combiner->try_schedule(heavy, 0, fx.resources, fx.policies));
  EXPECT_DOUBLE_EQ(fx.resources.usage(ResourceKind::kLLC), usage_before);

  // Releasing pays the overdraft down to zero on every kind.
  for (const ResourceDemand& d : demands) {
    fx.resources.decrement_load(d.resource, d.amount, 0);
  }
  fx.expect_all_zero_usage();
  fx.expect_invariant();
}

TEST(Combiner, PriorityOrderedGatesOnTheFrontDemand) {
  CombinerFixture fx;
  CombinerOptions options;
  options.kind = CombinerKind::kPriorityOrdered;
  const auto combiner = make_combiner(options);

  // Front (LLC) fits -> admitted even though the trailing watts demand
  // overflows its row; the overflow rides on overdraft.
  const std::vector<ResourceDemand> demands = {
      {ResourceKind::kLLC, static_cast<double>(MB(4))},
      {ResourceKind::kEnergyBudget, kWattsCap + 10.0}};
  ASSERT_TRUE(combiner->would_admit(demands, fx.resources, fx.policies));
  ASSERT_TRUE(combiner->try_schedule(demands, 0, fx.resources, fx.policies));
  EXPECT_GT(fx.resources.overdraft(ResourceKind::kEnergyBudget), 0.0);
  fx.expect_invariant();
  for (const ResourceDemand& d : demands) {
    fx.resources.decrement_load(d.resource, d.amount, 0);
  }
  fx.expect_all_zero_usage();

  // Front does NOT fit -> denied outright, trailing demands never charged.
  const std::vector<ResourceDemand> blocked = {
      {ResourceKind::kLLC, 20.0 * 1024.0 * 1024.0},
      {ResourceKind::kEnergyBudget, 1.0}};
  EXPECT_FALSE(combiner->would_admit(blocked, fx.resources, fx.policies));
  EXPECT_FALSE(combiner->try_schedule(blocked, 0, fx.resources, fx.policies));
  fx.expect_all_zero_usage();
  fx.expect_invariant();
}

TEST(Combiner, WouldAdmitImpliesTryScheduleWhenSerialized) {
  // The slow-lane rescan admits a waiter iff would_admit passes, then calls
  // try_schedule — a would_admit that passes where try_schedule fails would
  // wake a thread into a denial. Fuzz the implication for every combiner.
  for (const CombinerKind kind :
       {CombinerKind::kAllMustFit, CombinerKind::kWeightedSum,
        CombinerKind::kPriorityOrdered}) {
    CombinerFixture fx;
    CombinerOptions options;
    options.kind = kind;
    const auto combiner = make_combiner(options);
    util::Rng rng(42 + static_cast<std::uint64_t>(kind));

    struct Held {
      std::vector<ResourceDemand> demands;
      std::uint32_t stripe;
    };
    std::vector<Held> held;
    for (int step = 0; step < 2000; ++step) {
      if (!held.empty() && rng.next_bool(0.45)) {
        const std::size_t pick = rng.next_below(held.size());
        for (const ResourceDemand& d : held[pick].demands) {
          fx.resources.decrement_load(d.resource, d.amount, held[pick].stripe);
        }
        held.erase(held.begin() + static_cast<std::ptrdiff_t>(pick));
        continue;
      }
      Held h;
      h.stripe = static_cast<std::uint32_t>(rng.next_below(16));
      h.demands.push_back(
          {ResourceKind::kLLC, rng.next_double(0.0, 0.4 * kLlcCap)});
      if (rng.next_bool(0.7)) {
        h.demands.push_back(
            {ResourceKind::kMemBandwidth, rng.next_double(0.0, 0.4 * kBwCap)});
      }
      if (rng.next_bool(0.7)) {
        h.demands.push_back({ResourceKind::kEnergyBudget,
                             rng.next_double(0.0, 0.4 * kWattsCap)});
      }
      const bool would =
          combiner->would_admit(h.demands, fx.resources, fx.policies);
      const bool did = combiner->try_schedule(h.demands, h.stripe,
                                              fx.resources, fx.policies);
      EXPECT_TRUE(!would || did)
          << to_string(kind) << ": would_admit passed but try_schedule failed"
          << " at step " << step;
      if (did) held.push_back(std::move(h));
    }
    for (const Held& h : held) {
      for (const ResourceDemand& d : h.demands) {
        fx.resources.decrement_load(d.resource, d.amount, h.stripe);
      }
    }
    fx.expect_all_zero_usage();
    fx.expect_invariant();
  }
}

TEST(Combiner, PerKindInvariantFuzz) {
  // Random acquire / forced-charge / release traffic across all three kinds
  // and all 16 stripes; the per-kind conservation law must hold at every
  // checkpoint, not just at quiescence.
  CombinerFixture fx;
  util::Rng rng(7);
  struct Charge {
    ResourceKind kind;
    double amount;
    std::uint32_t stripe;
  };
  std::vector<Charge> charges;
  for (int step = 0; step < 5000; ++step) {
    const double roll = rng.next_double();
    if (roll < 0.4 || charges.empty()) {
      Charge c;
      c.kind = kKinds[rng.next_below(3)];
      c.amount =
          rng.next_double(0.0, 0.3 * fx.resources.capacity(c.kind));
      c.stripe = static_cast<std::uint32_t>(rng.next_below(16));
      if (fx.resources.try_acquire(c.kind, c.amount, c.stripe)) {
        charges.push_back(c);
      }
    } else if (roll < 0.55) {
      // Forced charge (the watchdog/pool path): may overdraft.
      Charge c;
      c.kind = kKinds[rng.next_below(3)];
      c.amount =
          rng.next_double(0.0, 0.5 * fx.resources.capacity(c.kind));
      c.stripe = static_cast<std::uint32_t>(rng.next_below(16));
      fx.resources.increment_load(c.kind, c.amount, c.stripe);
      charges.push_back(c);
    } else {
      const std::size_t pick = rng.next_below(charges.size());
      fx.resources.decrement_load(charges[pick].kind, charges[pick].amount,
                                  charges[pick].stripe);
      charges.erase(charges.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    if (step % 100 == 0) fx.expect_invariant();
  }
  for (const Charge& c : charges) {
    fx.resources.decrement_load(c.kind, c.amount, c.stripe);
  }
  fx.expect_all_zero_usage();
  fx.expect_invariant();
}

// Suite name deliberately starts with "AdmissionCore" so the tier-1 TSan
// stage's filter picks this race test up.
TEST(AdmissionCoreMultiKindRollback, FailedAcquireRollsBackExactlyUnderChurn) {
  // 16 threads hammer all-or-nothing multi-kind acquires sized so that the
  // energy row (4 x 5 W fits, 16 x 5 W does not) forces constant failures
  // mid-claim: a failed acquire must roll back its partial LLC/bandwidth
  // claims exactly, or the final ledger drifts.
  CombinerFixture fx;
  const CombiningPolicy& combiner = default_combiner();
  constexpr int kThreads = 16;
  constexpr int kIters = 2000;
  std::atomic<std::uint64_t> admitted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fx, &combiner, &admitted, t] {
      const auto stripe = static_cast<std::uint32_t>(t);
      const std::vector<ResourceDemand> demands = {
          {ResourceKind::kLLC, static_cast<double>(MB(2))},
          {ResourceKind::kMemBandwidth, 5e9},
          {ResourceKind::kEnergyBudget, 5.0}};
      for (int i = 0; i < kIters; ++i) {
        if (combiner.try_schedule(demands, stripe, fx.resources,
                                  fx.policies)) {
          admitted.fetch_add(1, std::memory_order_relaxed);
          for (const ResourceDemand& d : demands) {
            fx.resources.decrement_load(d.resource, d.amount, stripe);
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_GT(admitted.load(), 0u);
  fx.expect_all_zero_usage();
  fx.expect_invariant();
  for (const ResourceKind kind : kKinds) {
    EXPECT_NEAR(fx.resources.total_free(kind),
                fx.resources.admission_bound(kind),
                1e-3 * std::max(1.0, fx.resources.admission_bound(kind)))
        << to_string(kind);
  }
}

TEST(AdmissionCoreCombinerConfig, PerResourcePolicyOverridesApply) {
  AdmissionConfig config;
  config.llc_capacity_bytes = kLlcCap;
  config.bandwidth_capacity = kBwCap;
  config.energy_capacity_watts = kWattsCap;
  config.policy = PolicyKind::kStrict;
  // LLC runs Compromise(x=2) while bandwidth and watts stay Strict.
  config.resource_policies.push_back(
      {ResourceKind::kLLC, PolicyKind::kCompromise, 2.0});
  AdmissionCore core(config);

  EXPECT_NEAR(core.resources().admission_bound(ResourceKind::kLLC),
              2.0 * kLlcCap, 1.0);
  EXPECT_NEAR(core.resources().admission_bound(ResourceKind::kMemBandwidth),
              kBwCap, 1.0);
  EXPECT_NEAR(core.resources().admission_bound(ResourceKind::kEnergyBudget),
              kWattsCap, 1e-9);
  EXPECT_EQ(core.policy(ResourceKind::kLLC).name(), "RDA:Compromise(x=2)");
  EXPECT_EQ(core.policy(ResourceKind::kEnergyBudget).name(), "RDA:Strict");

  // 24 MB exceeds the raw LLC capacity but fits the doubled Compromise
  // bound. (Admitted first so the monitor is non-empty below — an empty
  // monitor would force-admit anything via the free-resource liveness
  // override.)
  AdmitRequest fits;
  fits.thread = 2;
  fits.process = 2;
  fits.demands = {{ResourceKind::kLLC, 24.0 * 1024.0 * 1024.0},
                  {ResourceKind::kEnergyBudget, 10.0}};
  AdmitTicket ticket = core.admit(fits, 0.0);
  ASSERT_TRUE(ticket.admitted);

  // A tiny LLC demand that breaks only the Strict watts row: denied — the
  // Compromise override loosened the LLC, not the energy budget.
  AdmitRequest over;
  over.thread = 1;
  over.process = 1;
  over.demands = {{ResourceKind::kLLC, 1.0 * 1024.0 * 1024.0},
                  {ResourceKind::kEnergyBudget, 15.0}};
  AdmitTicket denied = core.admit(over, 0.0);
  EXPECT_FALSE(denied.admitted);
  EXPECT_EQ(core.try_withdraw(denied.id, 0.0), WithdrawResult::kCancelled);

  core.release(ticket.id, {}, 1.0);
  EXPECT_TRUE(core.audit().ok);
}

TEST(AdmissionCoreCombinerConfig, WeightedSumCoreRoundTrip) {
  AdmissionConfig config;
  config.llc_capacity_bytes = kLlcCap;
  config.energy_capacity_watts = kWattsCap;
  config.combiner.kind = CombinerKind::kWeightedSum;
  config.combiner.weighted_threshold = 1.0;
  AdmissionCore core(config);

  // Over the LLC bound alone, admitted by cross-resource compensation.
  AdmitRequest request;
  request.thread = 1;
  request.process = 1;
  request.demands = {{ResourceKind::kLLC, 18.0 * 1024.0 * 1024.0},
                     {ResourceKind::kEnergyBudget, 1.0}};
  AdmitTicket ticket = core.admit(request, 0.0);
  ASSERT_TRUE(ticket.admitted);
  EXPECT_GT(core.resources().overdraft(ResourceKind::kLLC), 0.0);
  core.release(ticket.id, {}, 1.0);
  EXPECT_NEAR(core.resources().overdraft(ResourceKind::kLLC), 0.0, 1e-6);
  EXPECT_NEAR(core.resources().usage(ResourceKind::kLLC), 0.0, 1e-6);
  EXPECT_TRUE(core.audit().ok);
}

}  // namespace
}  // namespace rda::core
