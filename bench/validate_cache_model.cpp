// Validation: the engine's fluid occupancy/miss model vs a real
// set-associative LRU cache replaying actual address traces.
//
// The fluid model predicts, for a phase with resident fraction f and reuse
// level r, a miss rate of stream(r) + reuse(r)·(1−f) per flop. Here we
// measure the ground truth: hot/cold access patterns of growing working
// sets run through a 20-way LRU cache of the paper's LLC geometry, alone
// and against a co-running polluter. The claim to validate is the SHAPE the
// scheduler's benefit rests on: miss ratio is low while the working set
// fits, rises steeply once it does not, and a co-runner's pollution moves
// the crossover to smaller working sets.
//
// A third pair of columns replays the same traces through the set-sampled
// cache (1 in 16 sets simulated, counts scaled): its miss ratios must stay
// within 2% absolute of the full model for sampling to be a safe speedup.
// All (working set, polluter) cells are independent and honor --jobs.
#include <cmath>
#include <cstdio>
#include <vector>

#include "exp/harness.hpp"
#include "sim/assoc_cache.hpp"
#include "trace/generators.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace rda;
using rda::util::MB;

double measured_miss_ratio(double ws_mb, bool with_polluter,
                           std::uint32_t set_sample) {
  sim::AssocCacheConfig cfg;
  cfg.capacity_bytes = MB(15);
  cfg.ways = 20;
  cfg.set_sample = set_sample;
  sim::SetAssociativeCache cache(cfg);

  // Accesses scale with the working set (40 touches per line) so the cold
  // floor is a flat 1/40 = 2.5% at every size; everything above that floor
  // is capacity/conflict misses.
  const std::uint64_t lines = MB(ws_mb) / 64;
  const std::uint64_t accesses = 40 * lines;
  trace::RegionSpec spec;
  spec.base = 0;
  spec.size_bytes = MB(ws_mb);
  spec.pattern = trace::Pattern::kRandomUniform;
  spec.access_granularity = 64;
  trace::RegionAccessSource subject(spec, accesses, 11);

  trace::RegionSpec pol;
  pol.base = 1ull << 40;
  pol.size_bytes = MB(12);
  pol.pattern = trace::Pattern::kRandomUniform;
  pol.access_granularity = 64;
  trace::RegionAccessSource polluter(pol, accesses, 12);

  trace::TraceRecord a, b;
  bool more_subject = true, more_polluter = with_polluter;
  // Interleave accesses 1:1, like two co-scheduled threads sharing the LLC.
  while (more_subject || more_polluter) {
    if (more_subject && (more_subject = subject.next(a))) {
      cache.access(a.value, 1);
    }
    if (more_polluter && (more_polluter = polluter.next(b))) {
      cache.access(b.value, 2);
    }
  }
  return cache.owner_stats(1).miss_ratio();
}

}  // namespace

int main(int argc, char** argv) {
  constexpr std::uint32_t kSample = 16;
  std::printf("=== Validation: fluid occupancy model vs set-associative LRU "
              "===\n(paper LLC geometry: 15 MB, 20-way; subject thread's "
              "miss ratio; sampled = 1/%u sets)\n\n",
              kSample);

  // 8 working sets x {alone, polluted} x {full, sampled} = 32 cells.
  const std::vector<double> sizes = {1.0, 2.0, 4.0, 8.0,
                                     12.0, 15.0, 20.0, 30.0};
  std::vector<double> ratios(sizes.size() * 4);
  exp::run_cells(ratios.size(), exp::parse_jobs(argc, argv),
                 [&](std::size_t cell) {
                   const double ws = sizes[cell / 4];
                   const bool polluted = (cell / 2) % 2 == 1;
                   const std::uint32_t sample = cell % 2 == 0 ? 1 : kSample;
                   ratios[cell] = measured_miss_ratio(ws, polluted, sample);
                 });

  double max_err = 0.0;
  util::Table table({"working set [MB]", "alone", "vs 12 MB polluter",
                     "pollution penalty", "alone (sampled)",
                     "polluted (sampled)", "max |err|"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const double alone = ratios[4 * i + 0];
    const double alone_sampled = ratios[4 * i + 1];
    const double contended = ratios[4 * i + 2];
    const double contended_sampled = ratios[4 * i + 3];
    const double err = std::max(std::fabs(alone_sampled - alone),
                                std::fabs(contended_sampled - contended));
    max_err = std::max(max_err, err);
    table.begin_row()
        .add_cell(sizes[i], 1)
        .add_cell(alone, 3)
        .add_cell(contended, 3)
        .add_cell(contended - alone, 3)
        .add_cell(alone_sampled, 3)
        .add_cell(contended_sampled, 3)
        .add_cell(err, 4);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "shape checks (the premises of the fluid model and of RDA itself):\n"
      "  * alone: miss ratio stays near the 2.5%% cold floor while the set\n"
      "    fits the 15 MB cache,\n"
      "    then climbs steeply — residency is what performance rides on;\n"
      "  * with a polluter: the climb starts far earlier — exactly the\n"
      "    interference Algorithm 1 refuses to co-schedule;\n"
      "  * the penalty column is the (1 - resident_fraction) term the\n"
      "    fluid model charges, observed on a real LRU cache.\n");
  std::printf("set sampling: max |miss-ratio error| %.4f (budget 0.02)\n",
              max_err);
  return max_err <= 0.02 ? 0 : 1;
}
