// Event/stats reconciliation.
//
// Replays a recorded event stream through the period-lifecycle state
// machine and cross-checks the per-kind event counts against the monitor's
// aggregate MonitorStats. The two are maintained at the same sites in
// ProgressMonitor, so any disagreement means events were lost (ring
// wrap-around), double-emitted, or a lifecycle transition fired from an
// illegal state — exactly the class of bug (nested begins, stranded
// cancels) this layer exists to surface.
//
// Checked invariants:
//   * count(kind) == the matching MonitorStats field, for every kind;
//   * begins == immediate admissions + blocks + begin-path force-admits;
//   * per period: begin first and only once; admit/block only while
//     pending; wake/cancel only while blocked; end only while admitted.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/progress_monitor.hpp"
#include "obs/event.hpp"
#include "obs/histogram.hpp"
#include "obs/summary.hpp"

namespace rda::obs {

/// One tenant's slice of the service ledger (reconcile_service): how many
/// of the stream's core begins, core ends, and queue sheds carried this
/// tenant id (Event::process). Rows are sorted by tenant and must sum to
/// the stream totals — a begin or shed attributed to no tenant row means
/// identity was lost somewhere between arrival and the core.
struct TenantLedgerRow {
  std::uint64_t tenant = 0;
  std::uint64_t begins = 0;
  std::uint64_t ends = 0;
  std::uint64_t sheds = 0;
};

struct ReconcileReport {
  bool ok = true;
  /// Empty when ok; otherwise newline-joined mismatch descriptions.
  std::string message;

  std::uint64_t begin_forced = 0;    ///< force-admits on the begin path
  std::uint64_t still_blocked = 0;   ///< periods blocked at capture end
  std::uint64_t still_admitted = 0;  ///< periods admitted but not yet ended

  /// Per-tenant begins/ends/sheds (populated by reconcile_service only;
  /// sorted by tenant id, rows sum to the stream totals).
  std::vector<TenantLedgerRow> tenants;
};

/// Requires a complete capture (EventRing::dropped() == 0) — a lossy ring
/// cannot reconcile and the counts will (correctly) disagree.
ReconcileReport reconcile(std::span<const Event> events,
                          const core::MonitorStats& stats);

/// The gate-side wait counters to reconcile against the event stream.
/// Plain numbers rather than rt::GateStats — obs must not depend on the
/// runtime layer (the runtime already depends on obs for its trace sink).
struct WaitStatsCheck {
  std::uint64_t waits = 0;  ///< rt::GateStats::waits (one per LOGICAL wait)
  /// rt::GateStats::no_sleep_blocks — periods that visited the waitlist but
  /// were admitted on the in-core second look before their caller slept.
  std::uint64_t no_sleep_blocks = 0;
  double total_wait_seconds = 0.0;  ///< rt::GateStats::total_wait_seconds
  /// Per-wait tolerance between the gate's wall-clock wait accounting and
  /// the event-timestamp-derived total. The gate times mutex reacquisition
  /// and scheduler latency that the monitor's block→wake interval cannot
  /// see, so the two legitimately differ by OS-noise amounts.
  double slack_seconds = 0.05;
};

/// The service front end's queue counters to reconcile against the event
/// stream. Plain numbers for the same layering reason as WaitStatsCheck.
struct ServiceStatsCheck {
  std::uint64_t enqueued = 0;      ///< submissions accepted into the queue
  std::uint64_t drains = 0;        ///< batch-drain passes
  std::uint64_t steals = 0;        ///< whole-tenant-batch steals
  std::uint64_t stolen = 0;        ///< submissions inside stolen batches
  std::uint64_t reroutes = 0;      ///< submissions re-queued by a node death
  std::uint64_t mailboxed = 0;     ///< requeues posted to shard mailboxes
  std::uint64_t shed = 0;          ///< submissions shed by the overload ladder
  std::uint64_t still_queued = 0;  ///< left in the queue at capture end
};

/// Extends the fault-matrix ledger invariant
///   begins == ends + cancels + reclaims + rejections
/// down to the service queue:
///   * count(kind) == the matching ServiceStatsCheck field, for enqueue /
///     batch-drain / steal / shed;
///   * Σ batch-drain sizes (the kBatchDrain event's demand payload)
///     == enqueued - still_queued — the queue loses nothing: every accepted
///     submission is either drained in some batch or still waiting;
///   * drained == begins + sheds — every drained submission either entered
///     the core (exactly one kBegin) or was shed by the overload ladder;
///   * Σ steal sizes (the kSteal event's demand payload) == stolen, and
///     count(kMailbox) == mailboxed == stolen + reroutes — every displaced
///     submission (steal or node-death reroute) took exactly one mailbox
///     hop to its drain shard, and none was invented or dropped in transit.
/// A node dying mid-drain and rejoining must not break any of these: a lost
/// submission shows up as a drain/begin gap, a double-admit as excess begins.
/// Also fills ReconcileReport::tenants with per-tenant begins/ends/sheds
/// rows (keyed by Event::process) and fails unless they sum to the totals.
ReconcileReport reconcile_service(std::span<const Event> events,
                                  const ServiceStatsCheck& service);

/// Cross-checks the wait-latency histogram and the native gate's wait
/// counters against the event stream:
///   * histogram count == block intervals closed by a wake/force/cancel;
///   * histogram total == sum of those event-timestamp intervals (same
///     inputs, so they must agree to rounding);
///   * gate waits <= blocks (a try_begin blocks and withdraws without ever
///     sleeping, so the gate may count fewer sleeps than the monitor
///     counts blocks — never more). A hardened gate that counted every
///     retry SLICE as a wait would trip this on the first multi-slice
///     sleep — the check that pins "one logical wait per admission";
///   * gate waits + no_sleep_blocks + cancel-resolved blocks >= blocks
///     (every block is either slept on, admitted on the second look, or
///     withdrawn — an unaccounted block means lost wait accounting);
///   * |gate total_wait_seconds - event-derived total| within slack.
ReconcileReport reconcile_waits(std::span<const Event> events,
                                const WaitHistogram& histogram,
                                const WaitStatsCheck& gate);

/// Per-resource budget-ledger check over a monitor snapshot (one row per
/// configured kind, from core::AdmissionCore::resource_rows()):
///   * stripe invariant: usage + free − overdraft == bound, for EVERY kind
///     with a finite bound — a corrupted counter on any row (LLC, bandwidth,
///     energy) breaks its own kind's equation, not some aggregate;
///   * overdraft and the oversubscription tally are never negative;
///   * at quiescence (`expect_quiescent`): usage, overdraft, and the
///     oversubscription tally have all returned to zero — forced admissions
///     were fully repaid on every resource, not just the LLC.
ReconcileReport reconcile_resources(std::span<const ResourceRow> resources,
                                    bool expect_quiescent);

}  // namespace rda::obs
