# Empty dependencies file for rda_util.
# This may be replaced when dependencies are built.
