#include "profiler/pipeline.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "profiler/multi_granularity.hpp"
#include "trace/generators.hpp"
#include "trace/trace_io.hpp"
#include "util/units.hpp"

namespace rda::prof {
namespace {

using rda::util::KB;
using rda::util::MB;

/// Writes a three-phase trace (A big, B small, A2 big) with loop back-edges
/// to a temp file and returns its path.
std::string write_phased_trace(const char* tag) {
  using namespace rda::trace;
  const std::string path =
      testing::TempDir() + "pipeline_test_" + tag + ".rdatrc";
  auto phase = [](std::uint64_t base, std::uint64_t bytes,
                  std::uint64_t accesses, std::uint64_t jump_pc,
                  std::uint64_t seed) {
    RegionSpec spec;
    spec.base = base;
    spec.size_bytes = bytes;
    spec.pattern = Pattern::kHotCold;
    spec.hot_fraction = 0.625;
    spec.hot_probability = 0.97;
    spec.access_granularity = 8;
    spec.jump_pc = jump_pc;
    spec.jump_period = 64;
    return std::make_unique<RegionAccessSource>(spec, accesses, seed);
  };
  std::vector<std::unique_ptr<TraceSource>> parts;
  const std::uint64_t coarse = 1u << 16;
  parts.push_back(phase(0x10000000, MB(2), coarse * 4, 0x1050, 1));
  parts.push_back(phase(0x40000000, KB(256), coarse, 0x2050, 2));
  parts.push_back(phase(0x20000000, MB(2), coarse * 4, 0x1050, 3));

  LoopNest nest;
  nest.add_loop("outer.A", 0x1000, 0x1100);
  nest.add_loop("inner.B", 0x2000, 0x2100);
  TraceFileWriter writer(path, nest);
  ConcatSource all(std::move(parts));
  writer.write_all(all);
  writer.finalize();
  return path;
}

PipelineConfig phased_config() {
  PipelineConfig cfg;
  cfg.multi.windows = {1u << 16, 1u << 14};
  cfg.multi.hot_threshold = 4;
  cfg.multi.detector.min_windows = 3;
  cfg.reuse_curve = true;
  return cfg;
}

TEST(ProfilePipeline, MatchesSerialProfilerAtEveryLevel) {
  const std::string path = write_phased_trace("serialparity");
  const trace::TraceArena arena = trace::TraceArena::load(path);
  const trace::TraceFile file = trace::TraceFile::open(path);

  PipelineConfig cfg = phased_config();
  cfg.reuse_curve = false;
  const PipelineResult result = ProfilePipeline(cfg).run(arena);

  // Level reports must be byte-identical to the serial single-window
  // profiler streaming from disk.
  ASSERT_EQ(result.level_reports.size(), cfg.multi.windows.size());
  for (std::size_t i = 0; i < cfg.multi.windows.size(); ++i) {
    WindowConfig wcfg;
    wcfg.window_accesses = cfg.multi.windows[i];
    wcfg.hot_threshold = cfg.multi.hot_threshold;
    auto source = file.records();
    const ProfileReport serial =
        Profiler(wcfg, cfg.multi.detector).profile(*source, file.nest());
    EXPECT_EQ(serial.to_string(), result.level_reports[i].to_string());
  }

  // And the merged periods must match the serial multi-granularity sweep.
  MultiGranularityConfig mcfg = cfg.multi;
  const MultiGranularityReport serial_multi =
      MultiGranularityProfiler(mcfg).profile([&] { return file.records(); });
  ASSERT_EQ(serial_multi.periods.size(), result.multi.periods.size());
  for (std::size_t i = 0; i < serial_multi.periods.size(); ++i) {
    EXPECT_EQ(serial_multi.periods[i].first_access,
              result.multi.periods[i].first_access);
    EXPECT_EQ(serial_multi.periods[i].last_access,
              result.multi.periods[i].last_access);
    EXPECT_EQ(serial_multi.periods[i].window_accesses,
              result.multi.periods[i].window_accesses);
  }
  std::remove(path.c_str());
}

TEST(ProfilePipeline, JobCountDoesNotChangeResults) {
  const std::string path = write_phased_trace("determinism");
  const trace::TraceArena arena = trace::TraceArena::load(path);

  PipelineConfig cfg = phased_config();
  cfg.sample_rate = 0.5;  // sampling must be deterministic too
  cfg.jobs = 1;
  const PipelineResult one = ProfilePipeline(cfg).run(arena);
  cfg.jobs = 4;
  const PipelineResult four = ProfilePipeline(cfg).run(arena);

  ASSERT_EQ(one.level_reports.size(), four.level_reports.size());
  for (std::size_t i = 0; i < one.level_reports.size(); ++i) {
    EXPECT_EQ(one.level_reports[i].to_string(),
              four.level_reports[i].to_string());
  }
  ASSERT_EQ(one.multi.periods.size(), four.multi.periods.size());
  for (std::size_t i = 0; i < one.multi.periods.size(); ++i) {
    EXPECT_EQ(one.multi.periods[i].first_access,
              four.multi.periods[i].first_access);
    EXPECT_EQ(one.multi.periods[i].last_access,
              four.multi.periods[i].last_access);
  }
  ASSERT_NE(one.reuse, nullptr);
  ASSERT_NE(four.reuse, nullptr);
  EXPECT_EQ(one.reuse->histogram(), four.reuse->histogram());
  EXPECT_EQ(one.reuse->total_accesses(), four.reuse->total_accesses());
  EXPECT_EQ(one.reuse->sampled_accesses(), four.reuse->sampled_accesses());
  EXPECT_EQ(one.reuse->cold_misses(), four.reuse->cold_misses());
  std::remove(path.c_str());
}

TEST(ProfilePipeline, SampledReuseCurveTracksExact) {
  const std::string path = write_phased_trace("sampling");
  const trace::TraceArena arena = trace::TraceArena::load(path);

  PipelineConfig cfg = phased_config();
  const PipelineResult exact = ProfilePipeline(cfg).run(arena);
  cfg.sample_rate = 0.1;
  const PipelineResult sampled = ProfilePipeline(cfg).run(arena);

  ASSERT_NE(exact.reuse, nullptr);
  ASSERT_NE(sampled.reuse, nullptr);
  // Spatial sampling keeps the miss-ratio curve and its knee close to the
  // exact analysis. 15% is generous for a ~330k-access trace at R=0.1; the
  // 50M-record benchmark gate demands (and gets) < 10%.
  const double exact_wss =
      static_cast<double>(exact.reuse->working_set_bytes());
  const double sampled_wss =
      static_cast<double>(sampled.reuse->working_set_bytes());
  ASSERT_GT(exact_wss, 0.0);
  EXPECT_NEAR(sampled_wss / exact_wss, 1.0, 0.15);

  for (const double mb : {0.25, 0.5, 1.0, 2.0}) {
    EXPECT_NEAR(sampled.reuse->miss_ratio(MB(mb)),
                exact.reuse->miss_ratio(MB(mb)), 0.05)
        << "at cache size " << mb << " MB";
  }
  // The sampled pass must only have touched ~a tenth of the accesses.
  EXPECT_LT(sampled.reuse->sampled_accesses(),
            exact.reuse->sampled_accesses() / 5);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rda::prof
