#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/units.hpp"

namespace rda::cluster {
namespace {

using rda::util::MB;

ClusterConfig two_nodes() {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.node.machine = sim::MachineConfig::e5_2420();
  cfg.use_gate = true;
  cfg.gate.policy = core::PolicyKind::kStrict;
  return cfg;
}

std::vector<sim::PhaseProgram> one_thread_process(double wss_mb,
                                                  double flops = 1e9) {
  std::vector<sim::PhaseProgram> programs;
  programs.push_back(sim::ProgramBuilder()
                         .period("pp", flops, MB(wss_mb), ReuseLevel::kHigh)
                         .build());
  return programs;
}

TEST(Cluster, DemandEstimateSumsThreadPeaks) {
  std::vector<sim::PhaseProgram> programs;
  programs.push_back(sim::ProgramBuilder()
                         .period("a", 1e9, MB(2), ReuseLevel::kHigh)
                         .period("b", 1e9, MB(5), ReuseLevel::kHigh)
                         .build());
  programs.push_back(sim::ProgramBuilder()
                         .period("c", 1e9, MB(3), ReuseLevel::kHigh)
                         .plain("glue", 1e8, MB(9), ReuseLevel::kLow)
                         .build());
  // max(2,5) + 3; the unmarked 9 MB phase declares nothing.
  EXPECT_NEAR(ClusterScheduler::process_demand_estimate(programs),
              static_cast<double>(MB(8)), 1.0);
}

TEST(Cluster, DemandEstimateUsesDeclaredNotTrue) {
  std::vector<sim::PhaseProgram> programs;
  programs.push_back(sim::ProgramBuilder()
                         .period("pp", 1e9, MB(2), ReuseLevel::kHigh)
                         .declared(MB(10))
                         .build());
  EXPECT_NEAR(ClusterScheduler::process_demand_estimate(programs),
              static_cast<double>(MB(10)), 1.0);
}

TEST(Cluster, RoundRobinAlternates) {
  ClusterScheduler sched(two_nodes(), PlacementPolicy::kRoundRobin);
  EXPECT_EQ(sched.add_process(one_thread_process(1)), 0);
  EXPECT_EQ(sched.add_process(one_thread_process(1)), 1);
  EXPECT_EQ(sched.add_process(one_thread_process(1)), 0);
}

TEST(Cluster, LeastLoadBalancesDeclaredDemand) {
  ClusterScheduler sched(two_nodes(), PlacementPolicy::kLeastDeclaredLoad);
  EXPECT_EQ(sched.add_process(one_thread_process(10)), 0);
  // Node 0 now carries 10 MB: the next two go to node 1 until it catches up.
  EXPECT_EQ(sched.add_process(one_thread_process(4)), 1);
  EXPECT_EQ(sched.add_process(one_thread_process(4)), 1);
  EXPECT_EQ(sched.add_process(one_thread_process(4)), 1);
  EXPECT_EQ(sched.add_process(one_thread_process(4)), 0);
}

TEST(Cluster, FirstFitPacksUpToCapacity) {
  ClusterScheduler sched(two_nodes(), PlacementPolicy::kFirstFitCapacity);
  // 15 MB LLC per node: 6+6 fits node 0; the third 6 MB spills to node 1.
  EXPECT_EQ(sched.add_process(one_thread_process(6)), 0);
  EXPECT_EQ(sched.add_process(one_thread_process(6)), 0);
  EXPECT_EQ(sched.add_process(one_thread_process(6)), 1);
  EXPECT_EQ(sched.add_process(one_thread_process(6)), 1);
  // Everything full: falls back to least-loaded rather than failing.
  EXPECT_EQ(sched.add_process(one_thread_process(6)), 0);
}

TEST(Cluster, RunConservesWorkAcrossNodes) {
  ClusterScheduler sched(two_nodes(), PlacementPolicy::kLeastDeclaredLoad);
  const int procs = 6;
  for (int i = 0; i < procs; ++i) {
    sched.add_process(one_thread_process(4, 5e8));
  }
  const ClusterResult result = sched.run();
  EXPECT_NEAR(result.total_flops(), procs * 5e8, 10.0);
  EXPECT_GT(result.makespan(), 0.0);
  EXPECT_GT(result.system_joules(), 0.0);
  ASSERT_EQ(result.processes_per_node.size(), 2u);
  EXPECT_EQ(result.processes_per_node[0] + result.processes_per_node[1],
            procs);
}

TEST(Cluster, TwoNodesBeatOneOnOversubscribedWork) {
  auto make = [&](int nodes) {
    ClusterConfig cfg = two_nodes();
    cfg.nodes = nodes;
    ClusterScheduler sched(cfg, PlacementPolicy::kLeastDeclaredLoad);
    for (int i = 0; i < 8; ++i) {
      sched.add_process(one_thread_process(6, 4e9));
    }
    return sched.run();
  };
  const ClusterResult one = make(1);
  const ClusterResult two = make(2);
  EXPECT_LT(two.makespan(), one.makespan());
  EXPECT_NEAR(one.total_flops(), two.total_flops(), 1.0);
}

TEST(Cluster, IdleNodeStillBurnsStaticPower) {
  ClusterConfig cfg = two_nodes();
  ClusterScheduler sched(cfg, PlacementPolicy::kFirstFitCapacity);
  sched.add_process(one_thread_process(2, 2e9));  // everything fits node 0
  const ClusterResult result = sched.run();
  ASSERT_EQ(result.nodes.size(), 2u);
  EXPECT_GT(result.nodes[1].package_joules, 0.0);  // idle node billed
  EXPECT_EQ(result.nodes[1].total_flops, 0.0);
}

TEST(Cluster, SingleShotRun) {
  ClusterScheduler sched(two_nodes(), PlacementPolicy::kRoundRobin);
  sched.add_process(one_thread_process(1, 1e7));
  sched.run();
  EXPECT_THROW(sched.run(), util::CheckFailure);
  EXPECT_THROW(sched.add_process(one_thread_process(1)),
               util::CheckFailure);
}

}  // namespace
}  // namespace rda::cluster
