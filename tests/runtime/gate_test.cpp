#include "runtime/gate.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/units.hpp"

namespace rda::rt {
namespace {

using namespace std::chrono_literals;
using rda::util::MB;

GateConfig strict_config(double capacity_mb = 15.0) {
  GateConfig cfg;
  cfg.llc_capacity_bytes = static_cast<double>(MB(capacity_mb));
  cfg.policy = core::PolicyKind::kStrict;
  return cfg;
}

TEST(AdmissionGate, ImmediateAdmissionWhenFits) {
  AdmissionGate gate(strict_config());
  const auto id = gate.begin(ResourceKind::kLLC,
                             static_cast<double>(MB(6)), ReuseLevel::kHigh);
  EXPECT_NE(id, core::kInvalidPeriod);
  EXPECT_NEAR(gate.usage(ResourceKind::kLLC), static_cast<double>(MB(6)),
              1.0);
  gate.end(id);
  EXPECT_NEAR(gate.usage(ResourceKind::kLLC), 0.0, 1e-6);
}

/// Holds a period on a helper thread (one thread = one active period).
class HeldPeriod {
 public:
  HeldPeriod(AdmissionGate& gate, double demand_bytes)
      : thread_([this, &gate, demand_bytes] {
          const auto id = gate.begin(ResourceKind::kLLC, demand_bytes,
                                     ReuseLevel::kHigh);
          held_.set_value();
          release_.get_future().wait();
          gate.end(id);
        }) {
    held_.get_future().wait();
  }

  void release() { release_.set_value(); }
  ~HeldPeriod() { thread_.join(); }

 private:
  std::promise<void> held_;
  std::promise<void> release_;
  std::thread thread_;
};

TEST(AdmissionGate, TryBeginFailsInsteadOfBlocking) {
  AdmissionGate gate(strict_config());
  HeldPeriod big(gate, static_cast<double>(MB(12)));
  const auto denied = gate.try_begin(
      ResourceKind::kLLC, static_cast<double>(MB(8)), ReuseLevel::kHigh);
  EXPECT_FALSE(denied.has_value());
  EXPECT_EQ(gate.waiting(), 0u);  // withdrawn, not queued
  big.release();
}

TEST(AdmissionGate, BeginForTimesOut) {
  AdmissionGate gate(strict_config());
  HeldPeriod big(gate, static_cast<double>(MB(12)));
  const auto start = std::chrono::steady_clock::now();
  const auto denied =
      gate.begin_for(ResourceKind::kLLC, static_cast<double>(MB(8)),
                     ReuseLevel::kHigh, 50ms);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(denied.has_value());
  EXPECT_GE(elapsed, 40ms);
  EXPECT_EQ(gate.waiting(), 0u);
  big.release();
}

TEST(AdmissionGate, BeginForSucceedsWhenReleasedInTime) {
  AdmissionGate gate(strict_config());
  auto big = std::make_unique<HeldPeriod>(gate, static_cast<double>(MB(12)));
  std::thread releaser([&] {
    std::this_thread::sleep_for(20ms);
    big->release();
  });
  const auto id =
      gate.begin_for(ResourceKind::kLLC, static_cast<double>(MB(8)),
                     ReuseLevel::kHigh, 2s);
  EXPECT_TRUE(id.has_value());
  if (id) gate.end(*id);
  releaser.join();
}

TEST(AdmissionGate, BlockedThreadResumesOnRelease) {
  AdmissionGate gate(strict_config());
  const auto big = gate.begin(ResourceKind::kLLC,
                              static_cast<double>(MB(12)), ReuseLevel::kHigh);
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    const auto id = gate.begin(ResourceKind::kLLC,
                               static_cast<double>(MB(8)), ReuseLevel::kHigh);
    admitted = true;
    gate.end(id);
  });
  // Give the waiter time to park.
  while (gate.waiting() == 0) std::this_thread::sleep_for(1ms);
  EXPECT_FALSE(admitted.load());
  gate.end(big);
  waiter.join();
  EXPECT_TRUE(admitted.load());
  const GateStats stats = gate.stats();
  EXPECT_EQ(stats.waits, 1u);
  EXPECT_GT(stats.total_wait_seconds, 0.0);
}

TEST(AdmissionGate, ManyThreadsNeverOverSubscribeStrict) {
  const double capacity = static_cast<double>(MB(15));
  AdmissionGate gate(strict_config());
  std::atomic<double> max_seen{0.0};
  std::atomic<int> inside{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 16; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 20; ++round) {
        const double demand = static_cast<double>(MB(2 + (t + round) % 5));
        const auto id =
            gate.begin(ResourceKind::kLLC, demand, ReuseLevel::kHigh);
        inside.fetch_add(1);
        const double usage = gate.usage(ResourceKind::kLLC);
        double prev = max_seen.load();
        while (usage > prev && !max_seen.compare_exchange_weak(prev, usage)) {
        }
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        inside.fetch_sub(1);
        gate.end(id);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(inside.load(), 0);
  // Strict invariant: admitted demand never exceeded capacity.
  EXPECT_LE(max_seen.load(), capacity + 1.0);
  const GateStats stats = gate.stats();
  EXPECT_EQ(stats.monitor.begins, 16u * 20u);
  EXPECT_EQ(stats.monitor.ends, 16u * 20u);
}

TEST(AdmissionGate, CompromiseAllowsTwoX) {
  GateConfig cfg = strict_config();
  cfg.policy = core::PolicyKind::kCompromise;
  cfg.oversubscription = 2.0;
  AdmissionGate gate(cfg);
  HeldPeriod a(gate, static_cast<double>(MB(14)));
  HeldPeriod b(gate, static_cast<double>(MB(14)));
  EXPECT_NEAR(gate.usage(ResourceKind::kLLC), static_cast<double>(MB(28)),
              1.0);
  a.release();
  b.release();
}

TEST(AdmissionGate, OversizedDemandRunsSolo) {
  AdmissionGate gate(strict_config());
  // 20 MB > 15 MB capacity: liveness override admits it when alone.
  const auto id = gate.begin(ResourceKind::kLLC,
                             static_cast<double>(MB(20)), ReuseLevel::kHigh);
  EXPECT_NE(id, core::kInvalidPeriod);
  gate.end(id);
  EXPECT_EQ(gate.stats().monitor.forced_admissions, 1u);
}

TEST(AdmissionGate, PoolGroupBlocksAndResumesTogether) {
  AdmissionGate gate(strict_config());
  gate.mark_pool(100);
  const auto big = gate.begin(ResourceKind::kLLC,
                              static_cast<double>(MB(12)), ReuseLevel::kHigh);
  std::atomic<int> admitted{0};
  std::vector<std::thread> members;
  for (int i = 0; i < 3; ++i) {
    members.emplace_back([&] {
      gate.join_group(100);
      const auto id = gate.begin(ResourceKind::kLLC,
                                 static_cast<double>(MB(4)),
                                 ReuseLevel::kHigh);
      admitted.fetch_add(1);
      gate.end(id);
    });
  }
  // Wait until all three members are parked (pool disabled by the first
  // denial; the rest follow).
  while (gate.waiting() < 3) std::this_thread::sleep_for(1ms);
  EXPECT_EQ(admitted.load(), 0);
  gate.end(big);  // 12 MB group now fits
  for (auto& m : members) m.join();
  EXPECT_EQ(admitted.load(), 3);
  EXPECT_GE(gate.stats().monitor.pool_group_admissions, 1u);
}

// Regression: a pool member whose begin_for timed out used to leave the
// pool disabled forever (the §3.4 pause was only lifted by a rescan, and
// cancel_waiting never ran one) — every later member request starved even
// when it trivially fit. The withdraw must re-enable a pool with no waiting
// members.
TEST(AdmissionGate, PoolNotStrandedAfterMemberTimeout) {
  AdmissionGate gate(strict_config());
  gate.mark_pool(200);
  HeldPeriod big(gate, static_cast<double>(MB(12)));
  // Member 1: denied (12 + 8 > 15), pool disabled, gives up after 50ms.
  std::thread member1([&] {
    gate.join_group(200);
    const auto denied =
        gate.begin_for(ResourceKind::kLLC, static_cast<double>(MB(8)),
                       ReuseLevel::kHigh, 50ms);
    EXPECT_FALSE(denied.has_value());
  });
  member1.join();
  EXPECT_EQ(gate.stats().monitor.cancels, 1u);
  // Member 2 fits easily (12 + 2 < 15). Pre-fix the pool was still
  // disabled and this parked until `big` ended — far beyond the timeout.
  std::thread member2([&] {
    gate.join_group(200);
    const auto id =
        gate.begin_for(ResourceKind::kLLC, static_cast<double>(MB(2)),
                       ReuseLevel::kHigh, 2s);
    ASSERT_TRUE(id.has_value());
    gate.end(*id);
  });
  member2.join();
  big.release();
}

// Regression: self_id() used to key a map on std::this_thread::get_id(),
// which the OS recycles after a join — a brand-new thread could inherit a
// dead thread's pool membership (and stale wake grants). The id is now a
// process-lifetime token that is never reused.
TEST(AdmissionGate, RecycledOsThreadIdDoesNotInheritGroup) {
  AdmissionGate gate(strict_config());
  gate.mark_pool(300);
  // Disable pool 300: a member is denied behind a 12 MB blocker.
  HeldPeriod big(gate, static_cast<double>(MB(12)));
  std::thread member([&] {
    gate.join_group(300);
    const auto id =
        gate.begin_for(ResourceKind::kLLC, static_cast<double>(MB(8)),
                       ReuseLevel::kHigh, 10s);
    if (id) gate.end(*id);
  });
  while (gate.waiting() == 0) std::this_thread::sleep_for(1ms);
  ASSERT_TRUE(gate.stats().monitor.pool_disables > 0);
  // A pool member joins and dies while its pool is paused; the OS is now
  // free to hand its thread id to the very next spawn.
  std::thread::id dead_os_id;
  std::thread joiner([&] {
    dead_os_id = std::this_thread::get_id();
    gate.join_group(300);
  });
  joiner.join();
  // Spawn until the OS hands the dead thread's id back (on glibc the very
  // next thread usually gets it). The recycled thread never called
  // join_group, so it must NOT be treated as a member of the paused pool:
  // its 2 MB request fits (12 + 2 < 15) and must be admitted immediately.
  bool reused = false;
  for (int attempt = 0; attempt < 64 && !reused; ++attempt) {
    std::thread probe([&] {
      if (std::this_thread::get_id() != dead_os_id) return;
      reused = true;
      const auto id =
          gate.try_begin(ResourceKind::kLLC, static_cast<double>(MB(2)),
                         ReuseLevel::kHigh);
      EXPECT_TRUE(id.has_value())
          << "recycled OS thread id inherited pool membership";
      if (id) gate.end(*id);
    });
    probe.join();
  }
  // If the OS never reused the id we could not provoke the bug — fine.
  big.release();
  member.join();
}

// After a timeout-withdrawn request, the same caller re-enters at the tail
// of the FIFO waitlist — it does not retain its old position.
TEST(AdmissionGate, PostCancelReadmissionIsFifo) {
  AdmissionGate gate(strict_config());
  auto big = std::make_unique<HeldPeriod>(gate, static_cast<double>(MB(12)));
  std::mutex order_mu;
  std::vector<int> admission_order;
  std::promise<void> y_parked;
  std::shared_future<void> y_parked_future = y_parked.get_future().share();
  // X parks and times out: its waitlist slot is withdrawn.
  std::thread x([&] {
    const auto denied =
        gate.begin_for(ResourceKind::kLLC, static_cast<double>(MB(8)),
                       ReuseLevel::kHigh, 50ms);
    EXPECT_FALSE(denied.has_value());
    // Re-request only after Y is queued: X now sits behind Y.
    y_parked_future.wait();
    const auto id = gate.begin(ResourceKind::kLLC,
                               static_cast<double>(MB(8)), ReuseLevel::kHigh);
    {
      std::lock_guard<std::mutex> lock(order_mu);
      admission_order.push_back(1);
    }
    gate.end(id);
  });
  // Wait for X's first request to time out and withdraw.
  while (gate.stats().monitor.cancels == 0) std::this_thread::sleep_for(1ms);
  std::thread y([&] {
    const auto id = gate.begin(ResourceKind::kLLC,
                               static_cast<double>(MB(8)), ReuseLevel::kHigh);
    {
      std::lock_guard<std::mutex> lock(order_mu);
      admission_order.push_back(0);
    }
    gate.end(id);
  });
  while (gate.waiting() < 1) std::this_thread::sleep_for(1ms);
  y_parked.set_value();
  // X re-queues behind Y (both 8 MB; only one fits at a time).
  while (gate.waiting() < 2) std::this_thread::sleep_for(1ms);
  big->release();
  x.join();
  y.join();
  ASSERT_EQ(admission_order.size(), 2u);
  EXPECT_EQ(admission_order[0], 0);  // Y first: FIFO from requeue time
  EXPECT_EQ(admission_order[1], 1);
}

// Regression (timed-begin race): a begin_for timeout that collides with a
// concurrent wake must either consume the grant (returning the id) or
// withdraw cleanly — never both, never neither. Pre-AdmissionCore each
// outcome path lived in a different adapter and a lost grant stranded the
// charged capacity forever. Hammer the collision window and verify no
// capacity leaks and no period is double-resolved.
TEST(AdmissionGate, TimedBeginRaceConsumesOrReleasesGrant) {
  AdmissionGate gate(strict_config());
  std::atomic<bool> stop{false};
  // Occupant: holds 12 MB briefly, releases, repeats — every release fires
  // a wake that may collide with the timed waiter's expiry.
  std::thread occupant([&] {
    while (!stop.load()) {
      const auto id = gate.begin(ResourceKind::kLLC,
                                 static_cast<double>(MB(12)),
                                 ReuseLevel::kHigh);
      std::this_thread::sleep_for(200us);
      gate.end(id);
      std::this_thread::sleep_for(50us);
    }
  });
  int granted = 0;
  int timed_out = 0;
  for (int round = 0; round < 400; ++round) {
    const auto id =
        gate.begin_for(ResourceKind::kLLC, static_cast<double>(MB(8)),
                       ReuseLevel::kHigh, 200us, "race");
    if (id.has_value()) {
      ++granted;
      gate.end(*id);
    } else {
      ++timed_out;
    }
  }
  stop = true;
  occupant.join();
  // Every begin resolved exactly once: ended (granted paths) or cancelled
  // (timeout paths). A consumed-and-cancelled or lost grant breaks these.
  EXPECT_EQ(gate.waiting(), 0u);
  EXPECT_NEAR(gate.usage(ResourceKind::kLLC), 0.0, 1e-6);
  const GateStats s = gate.stats();
  EXPECT_EQ(s.monitor.begins, s.monitor.ends + s.monitor.cancels);
  EXPECT_EQ(granted + timed_out, 400);
}

TEST(AdmissionGate, FastPathCountsRepeatedIdenticalBegins) {
  GateConfig cfg = strict_config();
  cfg.fast_path = true;
  AdmissionGate gate(cfg);
  for (int i = 0; i < 8; ++i) {
    const auto id = gate.begin(ResourceKind::kLLC,
                               static_cast<double>(MB(4)), ReuseLevel::kHigh,
                               "steady");
    gate.end(id);
  }
  // The first begin misses; every later identical, undisturbed one hits.
  EXPECT_EQ(gate.stats().fast_path_hits, 7u);
}

TEST(AdmissionGate, PartitioningAdmitsStreamingPeriodAlongsideNormal) {
  GateConfig cfg = strict_config();  // 15 MB LLC
  cfg.partitioning.enable = true;
  cfg.partitioning.streaming_fraction = 0.10;
  AdmissionGate gate(cfg);
  HeldPeriod normal(gate, static_cast<double>(MB(8)));
  // 64 MB > LLC: §6 confines it to 1.5 MB, so it co-runs with the 8 MB
  // period instead of parking behind it (which try_begin would reject).
  const auto streaming = gate.try_begin(
      ResourceKind::kLLC, static_cast<double>(MB(64)), ReuseLevel::kLow);
  ASSERT_TRUE(streaming.has_value());
  EXPECT_NEAR(gate.usage(ResourceKind::kLLC),
              static_cast<double>(MB(8)) + static_cast<double>(MB(1.5)),
              1.0);
  gate.end(*streaming);
  EXPECT_EQ(gate.stats().partitioned_periods, 1u);
  normal.release();
}

TEST(AdmissionGate, FeedbackCorrectionLearnsFromObservedCounters) {
  GateConfig cfg = strict_config();
  cfg.feedback.enable = true;
  cfg.feedback.min_samples = 1;
  AdmissionGate gate(cfg);
  // Declares 4 MB; the counters keep reporting 8 MB peak occupancy.
  for (int i = 0; i < 4; ++i) {
    const auto id = gate.begin(ResourceKind::kLLC,
                               static_cast<double>(MB(4)), ReuseLevel::kHigh,
                               "hot");
    core::ReleaseObservation observed;
    observed.peak_occupancy = static_cast<double>(MB(8));
    observed.has_counters = true;
    gate.end(id, observed);
  }
  // The corrected charge is what the next admission debits.
  const auto id = gate.begin(ResourceKind::kLLC, static_cast<double>(MB(4)),
                             ReuseLevel::kHigh, "hot");
  EXPECT_GT(gate.usage(ResourceKind::kLLC), static_cast<double>(MB(6)));
  gate.end(id);
}

TEST(AdmissionGate, StatsSnapshotConsistent) {
  AdmissionGate gate(strict_config());
  const auto id = gate.begin(ResourceKind::kLLC, 1000.0, ReuseLevel::kLow);
  GateStats s = gate.stats();
  EXPECT_EQ(s.monitor.begins, 1u);
  EXPECT_EQ(s.monitor.immediate_admissions, 1u);
  gate.end(id);
  s = gate.stats();
  EXPECT_EQ(s.monitor.ends, 1u);
}

}  // namespace
}  // namespace rda::rt
