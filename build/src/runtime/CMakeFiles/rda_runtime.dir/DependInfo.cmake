
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/affinity.cpp" "src/runtime/CMakeFiles/rda_runtime.dir/affinity.cpp.o" "gcc" "src/runtime/CMakeFiles/rda_runtime.dir/affinity.cpp.o.d"
  "/root/repo/src/runtime/gate.cpp" "src/runtime/CMakeFiles/rda_runtime.dir/gate.cpp.o" "gcc" "src/runtime/CMakeFiles/rda_runtime.dir/gate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rda_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rda_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rda_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
