#include "profiler/window.hpp"

#include <gtest/gtest.h>

#include "trace/generators.hpp"
#include "util/units.hpp"

namespace rda::prof {
namespace {

using rda::trace::RecordKind;
using rda::trace::TraceRecord;
using rda::trace::VectorSource;
using rda::util::KB;

TEST(WindowAnalyzer, FootprintCountsUniqueLines) {
  // 8 accesses to 2 distinct lines (0 and 64).
  std::vector<TraceRecord> records;
  for (int i = 0; i < 4; ++i) {
    records.push_back({0, RecordKind::kLoad});
    records.push_back({64, RecordKind::kStore});
  }
  VectorSource src(std::move(records));
  WindowConfig cfg;
  cfg.window_accesses = 8;
  cfg.granularity = 64;
  cfg.hot_threshold = 4;
  const auto windows = WindowAnalyzer(cfg).analyze(src);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].footprint_bytes, 2u * 64u);
  EXPECT_EQ(windows[0].loads, 4u);
  EXPECT_EQ(windows[0].stores, 4u);
  EXPECT_DOUBLE_EQ(windows[0].reuse_ratio, 4.0);  // 8 accesses / 2 lines
  // Both lines touched 4 times -> both hot.
  EXPECT_EQ(windows[0].wss_bytes, 2u * 64u);
}

TEST(WindowAnalyzer, HotThresholdFiltersWorkingSet) {
  // Line 0 touched 5 times, line 64 once.
  std::vector<TraceRecord> records;
  for (int i = 0; i < 5; ++i) records.push_back({0, RecordKind::kLoad});
  records.push_back({64, RecordKind::kLoad});
  VectorSource src(std::move(records));
  WindowConfig cfg;
  cfg.window_accesses = 6;
  cfg.hot_threshold = 4;
  const auto windows = WindowAnalyzer(cfg).analyze(src);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].footprint_bytes, 2u * 64u);
  EXPECT_EQ(windows[0].wss_bytes, 1u * 64u);  // only the reused line
}

TEST(WindowAnalyzer, ResetsBetweenWindows) {
  // Window 1 touches line 0; window 2 touches line 640.
  std::vector<TraceRecord> records;
  for (int i = 0; i < 4; ++i) records.push_back({0, RecordKind::kLoad});
  for (int i = 0; i < 4; ++i) records.push_back({640, RecordKind::kLoad});
  VectorSource src(std::move(records));
  WindowConfig cfg;
  cfg.window_accesses = 4;
  cfg.hot_threshold = 2;
  const auto windows = WindowAnalyzer(cfg).analyze(src);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].footprint_bytes, 64u);
  EXPECT_EQ(windows[1].footprint_bytes, 64u);
  EXPECT_EQ(windows[0].index, 0u);
  EXPECT_EQ(windows[1].index, 1u);
}

TEST(WindowAnalyzer, ShortTrailingWindowDropped) {
  std::vector<TraceRecord> records;
  for (int i = 0; i < 9; ++i) records.push_back({0, RecordKind::kLoad});
  VectorSource src(std::move(records));
  WindowConfig cfg;
  cfg.window_accesses = 8;
  const auto windows = WindowAnalyzer(cfg).analyze(src);
  // 1 access remains after the first window: < half, dropped.
  EXPECT_EQ(windows.size(), 1u);
}

TEST(WindowAnalyzer, LongTrailingWindowKept) {
  std::vector<TraceRecord> records;
  for (int i = 0; i < 13; ++i) records.push_back({0, RecordKind::kLoad});
  VectorSource src(std::move(records));
  WindowConfig cfg;
  cfg.window_accesses = 8;
  const auto windows = WindowAnalyzer(cfg).analyze(src);
  // 5 accesses remain: >= half, kept.
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[1].accesses, 5u);
}

TEST(WindowAnalyzer, JumpsDoNotCountAsAccesses) {
  std::vector<TraceRecord> records;
  for (int i = 0; i < 4; ++i) {
    records.push_back({0, RecordKind::kLoad});
    records.push_back({0xCAFE, RecordKind::kJump});
  }
  VectorSource src(std::move(records));
  WindowConfig cfg;
  cfg.window_accesses = 4;
  const auto windows = WindowAnalyzer(cfg).analyze(src);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].accesses, 4u);
  // The 4th jump trails the window's last access and lands in the (dropped)
  // successor window, mirroring instruction-granularity window boundaries.
  EXPECT_EQ(windows[0].jump_counts.at(0xCAFE), 3u);
}

TEST(WindowStats, DominantJumpPcPicksMostFrequent) {
  WindowStats w;
  w.jump_counts[0x10] = 3;
  w.jump_counts[0x20] = 7;
  w.jump_counts[0x30] = 7;  // tie broken toward the lower PC
  EXPECT_EQ(w.dominant_jump_pc(), 0x20u);
  WindowStats empty;
  EXPECT_EQ(empty.dominant_jump_pc(), 0u);
}

TEST(WindowAnalyzer, GranularityQuantizesAddresses) {
  // Two addresses within one 64B line are one footprint line.
  std::vector<TraceRecord> records = {{0, RecordKind::kLoad},
                                      {32, RecordKind::kLoad},
                                      {63, RecordKind::kLoad},
                                      {64, RecordKind::kLoad}};
  VectorSource src(std::move(records));
  WindowConfig cfg;
  cfg.window_accesses = 4;
  const auto windows = WindowAnalyzer(cfg).analyze(src);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].footprint_bytes, 2u * 64u);
}

TEST(WindowAnalyzer, HotColdTraceMeasuresHotSubset) {
  // End-to-end check used by the Fig. 12 machinery: the measured working
  // set of a hot/cold stream approximates the hot region size.
  trace::RegionSpec spec;
  spec.base = 0;
  spec.size_bytes = KB(256);
  spec.pattern = trace::Pattern::kHotCold;
  spec.hot_fraction = 0.25;
  spec.hot_probability = 0.97;
  spec.access_granularity = 8;
  const std::uint64_t lines = KB(256) / 64;
  const std::uint64_t window = lines * 24;
  trace::RegionAccessSource src(spec, window, 99);
  WindowConfig cfg;
  cfg.window_accesses = window;
  cfg.hot_threshold = 6;
  const auto windows = WindowAnalyzer(cfg).analyze(src);
  ASSERT_EQ(windows.size(), 1u);
  const double expected = 0.25 * static_cast<double>(KB(256));
  EXPECT_NEAR(static_cast<double>(windows[0].wss_bytes), expected,
              0.15 * expected);
}

}  // namespace
}  // namespace rda::prof
