#include "cluster/cluster.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rda::cluster {

std::string to_string(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kRoundRobin: return "round-robin";
    case PlacementPolicy::kLeastDeclaredLoad: return "least-declared-load";
    case PlacementPolicy::kFirstFitCapacity: return "first-fit-capacity";
    case PlacementPolicy::kLocalityAware: return "locality-aware";
  }
  return "?";
}

ClusterScheduler::ClusterScheduler(ClusterConfig config,
                                   PlacementPolicy policy)
    : config_(config), policy_(policy) {
  RDA_CHECK(config_.nodes >= 1);
  // One fleet-wide ledger: every node gate audits into it, so a tenant's
  // honesty follows it across nodes instead of resetting on each spill.
  config_.gate.tenant_ledger = config_.tenant_ledger != nullptr
                                   ? config_.tenant_ledger
                                   : config_.gate.tenant_ledger;
  for (int n = 0; n < config_.nodes; ++n) {
    engines_.push_back(std::make_unique<sim::Engine>(config_.node));
    if (config_.use_gate) {
      gates_.push_back(std::make_unique<core::RdaScheduler>(
          static_cast<double>(config_.node.machine.llc_bytes),
          config_.node.calib, config_.gate));
      engines_.back()->set_gate(gates_.back().get());
    } else {
      gates_.push_back(nullptr);
    }
  }
  node_demand_.assign(static_cast<std::size_t>(config_.nodes), 0.0);
  node_demand_vec_.assign(static_cast<std::size_t>(config_.nodes),
                          DemandVector{});
  node_processes_.assign(static_cast<std::size_t>(config_.nodes), 0);
  node_pending_.resize(static_cast<std::size_t>(config_.nodes));
  node_down_.assign(static_cast<std::size_t>(config_.nodes), false);
  route_failures_.assign(static_cast<std::size_t>(config_.nodes), 0);
}

void ClusterScheduler::trace_node(obs::EventKind kind, int node,
                                  double demand) const {
  if (config_.trace_sink == nullptr) return;
  obs::Event e;
  e.time = 0.0;  // placement precedes simulated time
  e.kind = kind;
  e.process = static_cast<sim::ProcessId>(node);
  e.demand = demand;
  e.set_label("node");
  config_.trace_sink->record(e);
}

void ClusterScheduler::mark_up(int node) {
  const std::size_t n = static_cast<std::size_t>(node);
  if (!node_down_[n]) return;
  node_down_[n] = false;
  route_failures_[n] = 0;
  trace_node(obs::EventKind::kNodeUp, node);
}

void ClusterScheduler::mark_down(int node) {
  const std::size_t idx = static_cast<std::size_t>(node);
  if (node_down_[idx]) return;
  node_down_[idx] = true;
  trace_node(obs::EventKind::kNodeDown, node);
  // Tenants homed here lost their working set with the node; their next
  // placement re-homes them (and the re-route below does it immediately for
  // tenants with pending work — the first re-routed member picks the new
  // home, the rest follow it, keeping the batch whole).
  for (auto& [tenant, home] : tenant_homes_) {
    if (home.node == node) {
      home.node = -1;
      home.footprint = 0.0;
    }
  }
  // Drain the node's pending submissions and re-route them to healthy
  // nodes (placement is deferred to run(), so nothing has materialized yet).
  std::vector<Submission> drained = std::move(node_pending_[idx]);
  node_pending_[idx].clear();
  node_demand_[idx] = 0.0;
  node_demand_vec_[idx] = DemandVector{};
  node_processes_[idx] -= static_cast<int>(drained.size());
  for (Submission& s : drained) {
    int target = pick_node(s.demand_vec, s.tenant);
    if (target < 0) {
      // Every node is down: resurrect the least-failed one rather than
      // dropping work on the floor.
      int best = 0;
      for (int n = 1; n < config_.nodes; ++n) {
        if (route_failures_[n] < route_failures_[best]) best = n;
      }
      mark_up(best);
      target = best;
    }
    const std::size_t t = static_cast<std::size_t>(target);
    charge_node(target, s, +1.0);
    ++node_processes_[t];
    ++reroutes_;
    note_placement(s.tenant, target, s.demand);
    node_pending_[t].push_back(std::move(s));
  }
}

void ClusterScheduler::probe_recoveries() {
  for (int n = 0; n < config_.nodes; ++n) {
    if (!node_down_[static_cast<std::size_t>(n)]) continue;
    const fault::FaultSpec* fired = config_.fault_injector->consult(
        fault::Hook::kNodeRoute, sim::kInvalidThread, n);
    if (fired != nullptr &&
        fired->kind == fault::FaultKind::kNodeRecover) {
      mark_up(n);
    }
  }
}

double ClusterScheduler::process_demand_estimate(
    const std::vector<sim::PhaseProgram>& thread_programs) {
  return process_demand_vector(
      thread_programs)[static_cast<std::size_t>(ResourceKind::kLLC)];
}

DemandVector ClusterScheduler::process_demand_vector(
    const std::vector<sim::PhaseProgram>& thread_programs) {
  // Per thread: its largest declared marked demand on each resource.
  // Process: their sum — the worst-case simultaneous footprint the node's
  // gate may see on any one resource.
  DemandVector total{};
  for (const sim::PhaseProgram& program : thread_programs) {
    DemandVector peak{};
    for (const sim::PhaseSpec& phase : program.phases) {
      if (!phase.marked) continue;
      auto& llc = peak[static_cast<std::size_t>(ResourceKind::kLLC)];
      llc = std::max(llc, static_cast<double>(phase.declared_wss()));
      auto& bw = peak[static_cast<std::size_t>(ResourceKind::kMemBandwidth)];
      bw = std::max(bw, phase.bw_bytes_per_sec);
      auto& w = peak[static_cast<std::size_t>(ResourceKind::kEnergyBudget)];
      w = std::max(w, phase.watts);
    }
    for (std::size_t k = 0; k < kNumResourceKinds; ++k) total[k] += peak[k];
  }
  return total;
}

double ClusterScheduler::node_capacity(int node) const {
  return node_capacity(node, ResourceKind::kLLC);
}

double ClusterScheduler::node_capacity(int node, ResourceKind kind) const {
  // The capacity the node's own admission core decides against — the same
  // number its predicate will enforce at runtime. Gateless nodes fall back
  // to the raw machine figures; a kind the node does not constrain reports
  // zero (and is skipped by fits()).
  const core::AdmissionCore* core = node_core(node);
  if (core != nullptr) return core->resources().capacity(kind);
  switch (kind) {
    case ResourceKind::kLLC:
      return static_cast<double>(config_.node.machine.llc_bytes);
    case ResourceKind::kMemBandwidth:
      return config_.node.machine.dram_bandwidth;
    default:
      return 0.0;
  }
}

bool ClusterScheduler::fits(int node, const DemandVector& demand) const {
  for (std::size_t k = 0; k < kNumResourceKinds; ++k) {
    if (demand[k] <= 0.0) continue;
    const double cap = node_capacity(node, static_cast<ResourceKind>(k));
    if (cap <= 0.0) continue;  // unconstrained on this node
    if (node_demand_vec_[static_cast<std::size_t>(node)][k] + demand[k] >
        cap) {
      return false;
    }
  }
  return true;
}

void ClusterScheduler::charge_node(int node, const Submission& s,
                                   double sign) {
  const std::size_t n = static_cast<std::size_t>(node);
  node_demand_[n] += sign * s.demand;
  for (std::size_t k = 0; k < kNumResourceKinds; ++k) {
    node_demand_vec_[n][k] += sign * s.demand_vec[k];
  }
}

void ClusterScheduler::note_placement(TenantId tenant, int node,
                                      double demand) {
  if (tenant == kNoTenant) return;
  TenantHome& home = tenant_homes_[tenant];
  if (home.node != node) {
    // Spill or first placement: the working set starts rebuilding on the
    // new node, so that IS the home now.
    home.node = node;
    home.footprint = 0.0;
  }
  home.footprint += demand;
}

int ClusterScheduler::tenant_home(TenantId tenant) const {
  const auto it = tenant_homes_.find(tenant);
  if (it == tenant_homes_.end()) return -1;
  const int node = it->second.node;
  if (node < 0 || node_down_[static_cast<std::size_t>(node)]) return -1;
  return node;
}

int ClusterScheduler::pick_node(const DemandVector& demand,
                                TenantId tenant) const {
  const auto up = [&](int n) { return !node_down_[static_cast<std::size_t>(n)]; };
  // Least-loaded healthy node: shared fallback of two policies.
  const auto least_loaded = [&]() {
    int best = -1;
    for (int n = 0; n < config_.nodes; ++n) {
      if (!up(n)) continue;
      if (best < 0 || node_demand_[n] < node_demand_[best]) best = n;
    }
    return best;
  };
  switch (policy_) {
    case PlacementPolicy::kRoundRobin: {
      for (int step = 0; step < config_.nodes; ++step) {
        const int n = (next_round_robin_ + step) % config_.nodes;
        if (up(n)) return n;
      }
      return -1;
    }
    case PlacementPolicy::kLeastDeclaredLoad:
      return least_loaded();
    case PlacementPolicy::kFirstFitCapacity: {
      for (int n = 0; n < config_.nodes; ++n) {
        if (!up(n)) continue;
        if (fits(n, demand)) return n;
      }
      // Nothing fits: fall back to the least-loaded healthy node.
      return least_loaded();
    }
    case PlacementPolicy::kLocalityAware: {
      // Stay on the node already holding the tenant's working set while the
      // node's total placed demand still fits EVERY resource it constrains;
      // a tenant that outgrows the node on any one resource (LLC, DRAM
      // bandwidth, watts) spills to the least-loaded one (and re-homes
      // there — the working set rebuilds where the periods now run).
      const int home = tenant_home(tenant);
      if (home >= 0 && fits(home, demand)) return home;
      return least_loaded();
    }
  }
  return -1;
}

std::size_t ClusterScheduler::steal_rebalance() {
  RDA_CHECK_MSG(!ran_, "steal_rebalance after run()");
  std::size_t moved_total = 0;
  // Each pass moves one whole tenant batch onto one idle node; repeat until
  // no healthy node idles or no donor can spare a batch. Terminates: every
  // move makes one idle node non-idle and never empties a donor.
  while (true) {
    int thief = -1;
    for (int n = 0; n < config_.nodes; ++n) {
      if (node_down_[static_cast<std::size_t>(n)]) continue;
      if (node_pending_[static_cast<std::size_t>(n)].empty()) {
        thief = n;
        break;
      }
    }
    if (thief < 0) break;

    // Donor: the most-loaded healthy node holding at least two distinct
    // tenant batches (stealing its only batch would just move the idleness).
    // Victim batch: the donor's smallest tenant footprint — cheapest working
    // set to re-warm on the thief's cold LLC. Anonymous submissions
    // (kNoTenant) have no shared working set and count as one batch.
    int donor = -1;
    for (int n = 0; n < config_.nodes; ++n) {
      if (n == thief || node_down_[static_cast<std::size_t>(n)]) continue;
      std::unordered_map<TenantId, double> batches;
      for (const Submission& s : node_pending_[static_cast<std::size_t>(n)]) {
        batches[s.tenant] += s.demand;
      }
      if (batches.size() < 2) continue;
      if (donor < 0 || node_demand_[n] > node_demand_[donor]) donor = n;
    }
    if (donor < 0) break;

    std::unordered_map<TenantId, double> batches;
    for (const Submission& s : node_pending_[static_cast<std::size_t>(donor)]) {
      batches[s.tenant] += s.demand;
    }
    TenantId victim = kNoTenant;
    bool have_victim = false;
    for (const auto& [tenant, footprint] : batches) {
      if (!have_victim || footprint < batches[victim] ||
          (footprint == batches[victim] && tenant < victim)) {
        victim = tenant;
        have_victim = true;
      }
    }

    // Move the whole batch, preserving submission order.
    std::vector<Submission>& donor_pending =
        node_pending_[static_cast<std::size_t>(donor)];
    std::vector<Submission> kept;
    std::size_t moved = 0;
    for (Submission& s : donor_pending) {
      if (s.tenant != victim) {
        kept.push_back(std::move(s));
        continue;
      }
      charge_node(donor, s, -1.0);
      charge_node(thief, s, +1.0);
      --node_processes_[donor];
      ++node_processes_[thief];
      note_placement(s.tenant, thief, s.demand);
      node_pending_[static_cast<std::size_t>(thief)].push_back(std::move(s));
      ++moved;
    }
    donor_pending = std::move(kept);
    ++steals_;
    moved_total += moved;
    trace_node(obs::EventKind::kSteal, thief, static_cast<double>(moved));
  }
  return moved_total;
}

const core::AdmissionCore* ClusterScheduler::node_core(int node) const {
  RDA_CHECK(node >= 0 && node < config_.nodes);
  const core::RdaScheduler* gate = gates_[static_cast<std::size_t>(node)].get();
  return gate != nullptr ? &gate->core() : nullptr;
}

int ClusterScheduler::add_process(
    std::vector<sim::PhaseProgram> thread_programs, bool task_pool,
    TenantId tenant) {
  RDA_CHECK_MSG(!ran_, "cannot add processes after run()");
  RDA_CHECK(!thread_programs.empty());
  DemandVector demand_vec = process_demand_vector(thread_programs);
  if (config_.tenant_ledger != nullptr && tenant != kNoTenant) {
    // Place by the ledger's learned truth, not the tenant's claim: audited
    // inflators shrink toward their measured footprint (freeing headroom for
    // honest tenants), audited under-declarers grow toward theirs (so the
    // fit check stops packing them onto nodes they will thrash).
    demand_vec[static_cast<std::size_t>(ResourceKind::kLLC)] *=
        config_.tenant_ledger->demand_correction(tenant);
  }
  const double demand =
      demand_vec[static_cast<std::size_t>(ResourceKind::kLLC)];

  int node = -1;
  // Bounded retry: each failed attempt either consumes an armed fault or
  // marks a node down, so the loop terminates long before the bound.
  const int max_attempts = 1 + 8 * config_.nodes;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (config_.fault_injector != nullptr) probe_recoveries();
    node = pick_node(demand_vec, tenant);
    if (node < 0) {
      // Every node down: rejoin the least-failed one — submission must
      // never wedge on an all-down fleet.
      int best = 0;
      for (int n = 1; n < config_.nodes; ++n) {
        if (route_failures_[n] < route_failures_[best]) best = n;
      }
      mark_up(best);
      node = best;
    }
    if (config_.fault_injector == nullptr) break;
    const fault::FaultSpec* fired = config_.fault_injector->consult(
        fault::Hook::kNodeRoute, sim::kInvalidThread, node);
    if (fired == nullptr || fired->kind != fault::FaultKind::kNodeFail) break;
    ++total_route_failures_;
    const std::size_t idx = static_cast<std::size_t>(node);
    if (++route_failures_[idx] >= config_.node_fail_threshold) {
      mark_down(node);
    }
    node = -1;  // bounce: retry placement
  }
  RDA_CHECK_MSG(node >= 0, "cluster routing retries exhausted");
  next_round_robin_ = (node + 1) % config_.nodes;

  Submission s;
  s.programs = std::move(thread_programs);
  s.task_pool = task_pool;
  s.demand = demand;
  s.demand_vec = demand_vec;
  s.tenant = tenant;
  charge_node(node, s, +1.0);
  ++node_processes_[node];
  note_placement(tenant, node, demand);
  node_pending_[static_cast<std::size_t>(node)].push_back(std::move(s));
  return node;
}

ClusterResult ClusterScheduler::run() {
  RDA_CHECK_MSG(!ran_, "ClusterScheduler::run is single-shot");
  // Locality-aware placement trades balance for warm caches; the steal pass
  // claws the balance back where it is free (a node that would sit idle).
  if (policy_ == PlacementPolicy::kLocalityAware) steal_rebalance();
  ran_ = true;
  // Materialize the surviving placement: threads enter the engines only now,
  // so a node failure during submission re-routed whole processes cleanly.
  for (int n = 0; n < config_.nodes; ++n) {
    sim::Engine& engine = *engines_[n];
    for (Submission& s : node_pending_[static_cast<std::size_t>(n)]) {
      const sim::ProcessId pid = engine.create_process();
      if (s.task_pool && gates_[n]) gates_[n]->mark_pool(pid);
      for (sim::PhaseProgram& program : s.programs) {
        engine.add_thread(pid, std::move(program));
      }
    }
    node_pending_[static_cast<std::size_t>(n)].clear();
  }
  ClusterResult result;
  result.processes_per_node = node_processes_;
  result.node_failures = total_route_failures_;
  result.reroutes = reroutes_;
  result.steals = steals_;
  for (int n = 0; n < config_.nodes; ++n) {
    if (engines_[n]->thread_count() == 0) {
      // Idle node: contributes only static power for the cluster makespan;
      // represent it with an empty result.
      result.nodes.push_back(sim::SimResult{});
      continue;
    }
    result.nodes.push_back(engines_[n]->run());
  }
  for (int n = 0; n < config_.nodes; ++n) {
    const core::AdmissionCore* core = node_core(n);
    if (core != nullptr) result.admission += core->stats();
  }
  // Nodes that finish early (or never ran) still burn idle + uncore +
  // DRAM-static power until the slowest node completes — the cluster is a
  // single billing domain.
  const double span = result.makespan();
  const sim::Calibration& calib = config_.node.calib;
  const double idle_power =
      config_.node.machine.cores * calib.core_idle_power +
      calib.uncore_power;
  for (sim::SimResult& node : result.nodes) {
    const double idle_tail = span - node.makespan;
    if (idle_tail > 0.0) {
      node.package_joules += idle_tail * idle_power;
      node.dram_joules += idle_tail * calib.dram_static_power;
    }
  }
  return result;
}

double ClusterResult::makespan() const {
  double span = 0.0;
  for (const sim::SimResult& node : nodes) {
    span = std::max(span, node.makespan);
  }
  return span;
}

double ClusterResult::total_flops() const {
  double flops = 0.0;
  for (const sim::SimResult& node : nodes) flops += node.total_flops;
  return flops;
}

double ClusterResult::system_joules() const {
  double joules = 0.0;
  for (const sim::SimResult& node : nodes) joules += node.system_joules();
  return joules;
}

double ClusterResult::gflops() const {
  const double span = makespan();
  return span > 0.0 ? total_flops() / span / 1e9 : 0.0;
}

double ClusterResult::gflops_per_watt() const {
  const double joules = system_joules();
  return joules > 0.0 ? total_flops() / joules / 1e9 : 0.0;
}

}  // namespace rda::cluster
