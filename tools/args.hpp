// Minimal command-line parsing shared by the rda_* tools.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <unordered_map>
#include <vector>

namespace rda::tools {

/// "--key value" style arguments plus bare flags ("--quick").
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string token = argv[i];
      if (token.rfind("--", 0) != 0) {
        positional_.push_back(std::move(token));
        continue;
      }
      token = token.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[token] = argv[++i];
      } else {
        values_[token] = "";
      }
    }
  }

  bool has(const std::string& key) const { return values_.count(key) != 0; }

  std::string get(const std::string& key,
                  const std::string& fallback = "") const {
    const auto it = values_.find(key);
    return it == values_.end() || it->second.empty() ? fallback : it->second;
  }

  double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() || it->second.empty()
               ? fallback
               : std::strtod(it->second.c_str(), nullptr);
  }

  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() || it->second.empty()
               ? fallback
               : std::strtoull(it->second.c_str(), nullptr, 10);
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::unordered_map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

[[noreturn]] inline void usage(const std::string& text) {
  std::cerr << text;
  std::exit(2);
}

}  // namespace rda::tools
