#include "profiler/reuse_distance.hpp"

#include <gtest/gtest.h>

#include "trace/generators.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace rda::prof {
namespace {

using rda::util::KB;

TEST(ReuseDistance, EmptyAnalyzer) {
  ReuseDistanceAnalyzer rd;
  EXPECT_EQ(rd.total_accesses(), 0u);
  EXPECT_EQ(rd.cold_misses(), 0u);
  EXPECT_DOUBLE_EQ(rd.miss_ratio(KB(64)), 0.0);
  EXPECT_EQ(rd.working_set_bytes(), 0u);
}

TEST(ReuseDistance, ImmediateReuseIsDistanceZero) {
  ReuseDistanceAnalyzer rd(64);
  rd.access(0x100);
  rd.access(0x100);
  rd.access(0x120);  // same 64B line
  EXPECT_EQ(rd.total_accesses(), 3u);
  EXPECT_EQ(rd.cold_misses(), 1u);
  ASSERT_GE(rd.histogram().size(), 1u);
  EXPECT_EQ(rd.histogram()[0], 2u);  // two distance-0 reuses
}

TEST(ReuseDistance, ClassicStackDistances) {
  // Access pattern A B C A: A's reuse distance is 2 (B and C in between).
  ReuseDistanceAnalyzer rd(64);
  rd.access(0 * 64);
  rd.access(1 * 64);
  rd.access(2 * 64);
  rd.access(0 * 64);
  ASSERT_GE(rd.histogram().size(), 3u);
  EXPECT_EQ(rd.histogram()[2], 1u);
  // A B B A: distance of the second A is 1 (only B between, counted once).
  ReuseDistanceAnalyzer rd2(64);
  rd2.access(0 * 64);
  rd2.access(1 * 64);
  rd2.access(1 * 64);
  rd2.access(0 * 64);
  ASSERT_GE(rd2.histogram().size(), 2u);
  EXPECT_EQ(rd2.histogram()[1], 1u);
}

TEST(ReuseDistance, CyclicSweepDistanceEqualsFootprint) {
  // Sweeping N lines cyclically gives every reuse distance N-1.
  const std::uint64_t n = 100;
  ReuseDistanceAnalyzer rd(64);
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t i = 0; i < n; ++i) rd.access(i * 64);
  }
  EXPECT_EQ(rd.cold_misses(), n);
  ASSERT_GE(rd.histogram().size(), n);
  EXPECT_EQ(rd.histogram()[n - 1], 2 * n);  // two reuse passes
  // LRU cache of n lines: everything after warm-up hits.
  EXPECT_EQ(rd.hits_with_cache_lines(n), 2 * n);
  // Cache one line smaller: cyclic sweep thrashes, zero hits.
  EXPECT_EQ(rd.hits_with_cache_lines(n - 1), 0u);
}

TEST(ReuseDistance, MissRatioMonotoneInCacheSize) {
  util::Rng rng(3);
  ReuseDistanceAnalyzer rd(64);
  for (int i = 0; i < 50000; ++i) {
    rd.access(rng.next_below(KB(256)));
  }
  double prev = 1.1;
  for (std::uint64_t kb = 4; kb <= 512; kb *= 2) {
    const double mr = rd.miss_ratio(KB(kb));
    EXPECT_LE(mr, prev + 1e-12);
    prev = mr;
  }
}

TEST(ReuseDistance, WorkingSetOfUniformRandomIsRegionSize) {
  // Uniform random over 64 KB: miss ratio stays high until the cache holds
  // the whole region, so the knee is ~the region size.
  util::Rng rng(4);
  ReuseDistanceAnalyzer rd(64);
  for (int i = 0; i < 200000; ++i) {
    rd.access(rng.next_below(KB(64)));
  }
  const std::uint64_t ws = rd.working_set_bytes(0.02);
  EXPECT_GE(ws, KB(48));
  EXPECT_LE(ws, KB(72));
}

TEST(ReuseDistance, HotColdWorkingSetIsHotSubset) {
  // 95% of accesses in an 8 KB hot subset of a 64 KB region: the 5%-slack
  // working set is close to the hot subset, far below the footprint.
  trace::RegionSpec spec;
  spec.base = 0;
  spec.size_bytes = KB(64);
  spec.pattern = trace::Pattern::kHotCold;
  spec.hot_fraction = 0.125;
  spec.hot_probability = 0.95;
  spec.access_granularity = 64;
  trace::RegionAccessSource src(spec, 200000, 5);
  ReuseDistanceAnalyzer rd(64);
  rd.consume(src);
  const std::uint64_t ws = rd.working_set_bytes(0.06);
  EXPECT_LE(ws, KB(16));
  EXPECT_GE(ws, KB(4));
}

TEST(ReuseDistance, CompactionPreservesDistances) {
  // Long trace over a small footprint forces many compactions; distances
  // must match the no-compaction ground truth (cyclic sweep of 8 lines).
  ReuseDistanceAnalyzer rd(64);
  const std::uint64_t n = 8;
  const int passes = 100000;  // clock >> unique -> repeated renumbering
  for (int pass = 0; pass < passes; ++pass) {
    for (std::uint64_t i = 0; i < n; ++i) rd.access(i * 64);
  }
  ASSERT_GE(rd.histogram().size(), n);
  EXPECT_EQ(rd.histogram()[n - 1],
            static_cast<std::uint64_t>(passes - 1) * n);
  EXPECT_EQ(rd.cold_misses(), n);
}

TEST(ReuseDistance, FullSampleRateIsExactMode) {
  // sample_rate = 1.0 must take the exact path: identical histograms and
  // no scaling anywhere.
  ReuseDistanceAnalyzer exact(64, 1u << 22);
  ReuseDistanceAnalyzer full(64, 1u << 22, 1.0);
  util::Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t a = rng.next_below(KB(128));
    exact.access(a);
    full.access(a);
  }
  EXPECT_EQ(exact.histogram(), full.histogram());
  EXPECT_EQ(exact.cold_misses(), full.cold_misses());
  EXPECT_EQ(exact.sampled_accesses(), exact.total_accesses());
}

TEST(ReuseDistance, SampledCurveApproximatesExact) {
  // Cyclic sweep over 4096 lines: exact mode puts every reuse at distance
  // 4095; sampled mode must place the scaled distances near there and
  // reproduce the same cliff in the miss-ratio curve.
  const std::uint64_t n = 4096;
  ReuseDistanceAnalyzer exact(64);
  ReuseDistanceAnalyzer sampled(64, 1u << 22, 0.25);
  for (int pass = 0; pass < 4; ++pass) {
    for (std::uint64_t i = 0; i < n; ++i) {
      exact.access(i * 64);
      sampled.access(i * 64);
    }
  }
  // Unique-line estimate is unbiased: 4096 scaled from ~1024 tracked.
  EXPECT_NEAR(static_cast<double>(sampled.unique_lines()),
              static_cast<double>(n), 0.15 * static_cast<double>(n));
  // Both see ~zero hits below the footprint and ~all hits above it.
  EXPECT_NEAR(sampled.miss_ratio(64 * n / 2), exact.miss_ratio(64 * n / 2),
              0.1);
  EXPECT_NEAR(sampled.miss_ratio(64 * n * 2), exact.miss_ratio(64 * n * 2),
              0.1);
  const double exact_ws = static_cast<double>(exact.working_set_bytes());
  const double sampled_ws = static_cast<double>(sampled.working_set_bytes());
  EXPECT_NEAR(sampled_ws / exact_ws, 1.0, 0.15);
}

TEST(ReuseDistance, SampledModeOnlyTracksSampledLines) {
  ReuseDistanceAnalyzer sampled(64, 1u << 22, 0.1);
  util::Rng rng(11);
  for (int i = 0; i < 100000; ++i) {
    sampled.access(rng.next_below(KB(512)));
  }
  EXPECT_EQ(sampled.total_accesses(), 100000u);
  // ~10% of lines pass the spatial filter, so ~10% of accesses do too.
  EXPECT_NEAR(static_cast<double>(sampled.sampled_accesses()), 10000.0,
              3000.0);
  EXPECT_GT(sampled.sampled_accesses(), 0u);
}

TEST(ReuseDistance, AgreesWithAssociativeCacheOnFittingSet) {
  // Cross-validation: for a working set that fits, the reuse-distance hit
  // count equals a fully-warm LRU cache's (modulo associativity conflicts,
  // so compare against the fully-associative bound).
  const std::uint64_t lines = 256;
  ReuseDistanceAnalyzer rd(64);
  for (int pass = 0; pass < 5; ++pass) {
    for (std::uint64_t i = 0; i < lines; ++i) rd.access(i * 64);
  }
  EXPECT_EQ(rd.hits_with_cache_lines(lines), 4 * lines);
}

}  // namespace
}  // namespace rda::prof
