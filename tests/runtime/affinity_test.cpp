#include "runtime/affinity.hpp"

#include <gtest/gtest.h>

namespace rda::rt {
namespace {

TEST(Affinity, OnlineCpusAtLeastOne) { EXPECT_GE(online_cpus(), 1); }

TEST(Affinity, PinToFirstCpuUsuallyWorks) {
  // CPU 0 exists on every Linux box; in constrained containers the call may
  // still fail, which must be reported as false, not crash.
  const bool ok = pin_to_cpu(0);
  (void)ok;
  SUCCEED();
}

TEST(Affinity, NegativeCpuRejected) { EXPECT_FALSE(pin_to_cpu(-1)); }

TEST(Affinity, DetectLlcDoesNotCrash) {
  const auto llc = detect_llc_bytes();
  if (llc.has_value()) {
    // Any real LLC is between 256 KB and 1 GB.
    EXPECT_GE(*llc, 256u * 1024u);
    EXPECT_LE(*llc, 1024ull * 1024ull * 1024ull);
  }
}

}  // namespace
}  // namespace rda::rt
