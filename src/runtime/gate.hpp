// Native userspace admission gate.
//
// This is the paper's scheduling extension realized for real threads without
// a kernel patch: a thin adapter over core::AdmissionCore. pp_begin runs the
// same transactional admit pipeline as the simulator gate (shared verbatim —
// registry, predicate, waitlist, fast path, partitioning, feedback all live
// in the core); a denied caller blocks on a condition variable (standing in
// for the kernel wait queue + wake events of §3) until a completing period
// releases enough capacity. The gate's one mutex provides the external
// synchronization the core's threading contract requires; the core's Waker
// runs under that mutex and only flags the thread + pings the sleepers.
//
// Threads that never call the API are simply never throttled — exactly the
// paper's behaviour for un-instrumented processes ("our system ignores
// processes that have not provided progress period information").
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"
#include "core/admission.hpp"
#include "obs/sink.hpp"

namespace rda::rt {

struct GateConfig {
  /// LLC capacity the admission decisions are made against.
  double llc_capacity_bytes = 15360.0 * 1024.0;  // paper Table 1 default
  /// Multi-resource extension: when > 0, DRAM bandwidth (bytes/second)
  /// becomes a second gated resource (used via begin_multi).
  double bandwidth_capacity = 0.0;
  core::PolicyKind policy = core::PolicyKind::kStrict;
  double oversubscription = 2.0;
  /// Enable the cached-decision fast path (Fig. 11): a repeat begin with an
  /// unchanged demand against an unchanged load table skips nothing
  /// semantically (the decision is still replayed) but is counted, letting
  /// deployments measure how often a real kernel entry could be elided.
  bool fast_path = false;
  /// §6 streaming partitioning for larger-than-LLC working sets.
  core::PartitionOptions partitioning{};
  /// Counter-feedback demand correction (fed via end(id, observation)).
  core::FeedbackOptions feedback{};
  core::MonitorOptions monitor{};
  /// Admission-lifecycle event sink (non-owning; nullptr = tracing off).
  /// Events are stamped with gate-epoch seconds.
  obs::TraceSink* trace_sink = nullptr;
};

struct GateStats {
  core::MonitorStats monitor;
  std::uint64_t waits = 0;          ///< begins that had to block
  double total_wait_seconds = 0.0;  ///< cumulative blocked time
  std::uint64_t fast_path_hits = 0;
  std::uint64_t partitioned_periods = 0;
};

class AdmissionGate {
 public:
  explicit AdmissionGate(GateConfig config = {});

  AdmissionGate(const AdmissionGate&) = delete;
  AdmissionGate& operator=(const AdmissionGate&) = delete;

  /// pp_begin: blocks until the demand is admitted. Returns the period id
  /// to pass to end().
  core::PeriodId begin(ResourceKind resource, double demand, ReuseLevel reuse,
                       std::string label = {});

  /// Multi-resource pp_begin: blocks until EVERY declared demand is
  /// admitted atomically (e.g. LLC bytes + DRAM bandwidth).
  core::PeriodId begin_multi(std::vector<core::ResourceDemand> demands,
                             ReuseLevel reuse, std::string label = {});

  /// Non-blocking begin: admitted immediately or not at all (the request is
  /// withdrawn, not waitlisted).
  std::optional<core::PeriodId> try_begin(ResourceKind resource,
                                          double demand, ReuseLevel reuse,
                                          std::string label = {});

  /// Bounded-wait begin: gives up (withdrawing the request) after `timeout`.
  /// If the wake races the timeout, the grant is consumed and the id
  /// returned — capacity is never charged to a caller that walked away.
  std::optional<core::PeriodId> begin_for(ResourceKind resource,
                                          double demand, ReuseLevel reuse,
                                          std::chrono::nanoseconds timeout,
                                          std::string label = {});

  /// pp_end.
  void end(core::PeriodId id);

  /// pp_end with observed hardware counters, feeding the demand corrector
  /// (GateConfig::feedback) exactly like the simulator's phase observation.
  void end(core::PeriodId id, const core::ReleaseObservation& observed);

  /// Declares a group of callers (identified by `group`) a task pool
  /// (§3.4): one denied member pauses the group until all fit.
  void mark_pool(std::uint32_t group);

  /// Associates the calling thread with a pool group (default: each thread
  /// is its own singleton group).
  void join_group(std::uint32_t group);

  GateStats stats() const;
  double usage(ResourceKind resource) const;
  std::size_t waiting() const;

 private:
  enum class WaitMode { kBlocking, kTry, kTimed };

  std::optional<core::PeriodId> begin_impl(
      std::vector<core::ResourceDemand> demands, ReuseLevel reuse,
      std::string label, WaitMode mode, std::chrono::nanoseconds timeout);

  /// Stable small id for the calling thread: a process-lifetime token that
  /// is never reused, unlike std::this_thread::get_id() (which the OS
  /// recycles after thread exit, letting a new thread inherit a dead
  /// thread's group membership and stale granted_ flag).
  static std::uint32_t self_id();
  std::uint32_t group_of(std::uint32_t thread_id) const;
  double now_seconds() const;

  GateConfig config_;
  core::AdmissionCore core_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_set<std::uint32_t> granted_;  ///< woken thread ids
  std::unordered_map<std::uint32_t, std::uint32_t> groups_;
  std::uint64_t waits_ = 0;
  double total_wait_seconds_ = 0.0;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace rda::rt
