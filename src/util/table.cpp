#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <sstream>
#include <iomanip>

namespace rda::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::begin_row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add_cell(std::string text) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().push_back(std::move(text));
  return *this;
}

Table& Table::add_cell(const char* text) { return add_cell(std::string(text)); }

Table& Table::add_cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return add_cell(os.str());
}

Table& Table::add_cell(std::uint64_t value) {
  return add_cell(std::to_string(value));
}

Table& Table::add_cell(int value) { return add_cell(std::to_string(value)); }

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[c])) << text;
      if (c + 1 < widths.size()) os << "  ";
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << render(); }

}  // namespace rda::util
