file(REMOVE_RECURSE
  "librda_trace.a"
)
