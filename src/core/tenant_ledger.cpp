#include "core/tenant_ledger.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/check.hpp"

namespace rda::core {

TenantLedger::TenantLedger(TenantLedgerOptions options)
    : options_(options) {
  RDA_CHECK(options_.tolerance > 0.0);
  RDA_CHECK(options_.honesty_decay > 0.0 && options_.honesty_decay < 1.0);
  RDA_CHECK(options_.ratio_decay > 0.0 && options_.ratio_decay <= 1.0);
  RDA_CHECK(options_.escalate_after >= 1);
  RDA_CHECK(options_.recover_after >= 1);
  RDA_CHECK(options_.correction_min > 0.0);
  RDA_CHECK(options_.correction_max >= options_.correction_min);
  RDA_CHECK(options_.credit_unit_bytes > 0.0);
  RDA_CHECK(options_.surcharge >= 1.0);
}

void TenantLedger::trace(obs::EventKind kind, double now,
                         std::uint64_t tenant, double demand) const {
  if (options_.trace_sink == nullptr) return;
  obs::Event e;
  e.time = now;
  e.kind = kind;
  e.process = static_cast<sim::ProcessId>(tenant);
  e.demand = demand;
  options_.trace_sink->record(e);
}

TenantVerdict TenantLedger::audit(std::uint64_t tenant, double declared,
                                  double observed, bool contended,
                                  double now) {
  std::lock_guard<std::mutex> lock(mu_);
  return audit_locked(tenant, declared, observed, contended, now);
}

TenantVerdict TenantLedger::audit_locked(std::uint64_t tenant,
                                         double declared, double observed,
                                         bool contended, double now) {
  TenantVerdict verdict;
  if (tenant == 0 || declared <= 0.0) {
    verdict.counted = false;
    return verdict;  // anonymous or unpriced work is not auditable
  }
  ++audits_;
  TenantState& state = tenants_[tenant];
  ++state.audit_count;

  const double ratio = std::max(observed, 0.0) / declared;
  const double band = std::log1p(options_.tolerance);
  // ratio == 0 means the counters saw nothing resident — treat as maximal
  // inflation rather than feeding log(0) through the band test.
  const bool honest =
      ratio > 0.0 && std::abs(std::log(ratio)) <= band;

  if (contended && ratio < 1.0) {
    // Contended lower bound: the period may have been unable to grow its
    // occupancy, so an apparent over-declaration proves nothing. Record the
    // audit (the ratio may still GROW toward 1) but touch no streak and no
    // score — this is the recoverability guarantee for honest-but-contended
    // tenants.
    state.ratio = std::max(state.ratio, ratio);
    verdict.counted = false;
    verdict.rung = state.rung;
    return verdict;
  }

  // Decayed running max, exactly the DemandCorrector shape: the haircut
  // relaxes only under repeated consistent evidence.
  state.ratio = std::max(ratio, state.ratio * options_.ratio_decay);
  state.honesty = options_.honesty_decay * state.honesty +
                  (1.0 - options_.honesty_decay) * (honest ? 1.0 : 0.0);
  verdict.honest = honest;

  if (honest) {
    state.honest_streak += 1;
    state.divergent_streak = 0;
    // Karma donation: honest unused reservation becomes credits. Truncation
    // (floor + cap) happens at grant time so conservation stays exact.
    if (declared > observed) {
      const double unused = declared - observed;
      auto units = static_cast<std::uint64_t>(
          unused / options_.credit_unit_bytes);
      const std::uint64_t room =
          state.credits >= options_.credit_cap
              ? 0
              : options_.credit_cap - state.credits;
      units = std::min(units, room);
      if (units > 0) {
        state.credits += units;
        state.granted += units;
        total_granted_ += units;
        verdict.credits_granted = units;
        trace(obs::EventKind::kCreditGrant, now, tenant,
              static_cast<double>(units));
      }
    }
    if (state.rung > 0 && state.honest_streak >= options_.recover_after) {
      state.honest_streak = 0;
      --state.rung;
      verdict.rung_changed = true;
      trace(obs::EventKind::kPenalty, now, tenant,
            static_cast<double>(state.rung));
    }
  } else {
    state.divergent_streak += 1;
    state.honest_streak = 0;
    if (state.audit_count >= options_.min_audits && state.rung < 4 &&
        state.divergent_streak >= options_.escalate_after) {
      state.divergent_streak = 0;
      ++state.rung;
      ++penalties_;
      verdict.rung_changed = true;
      trace(obs::EventKind::kPenalty, now, tenant,
            static_cast<double>(state.rung));
    }
  }
  verdict.rung = state.rung;
  return verdict;
}

void TenantLedger::apply(std::span<const AuditRecord> records) {
  if (records.empty()) return;
  std::vector<const AuditRecord*> ordered;
  ordered.reserve(records.size());
  for (const AuditRecord& r : records) ordered.push_back(&r);
  std::sort(ordered.begin(), ordered.end(),
            [](const AuditRecord* a, const AuditRecord* b) {
              return a->audit_seq < b->audit_seq;
            });
  std::lock_guard<std::mutex> lock(mu_);
  for (const AuditRecord* r : ordered) {
    audit_locked(r->tenant, r->declared, r->observed, r->contended, r->time);
  }
}

int TenantLedger::rung(std::uint64_t tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.rung;
}

double TenantLedger::demand_correction(std::uint64_t tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second.rung < 1) return 1.0;
  return std::clamp(it->second.ratio, options_.correction_min,
                    options_.correction_max);
}

double TenantLedger::honesty(std::uint64_t tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 1.0 : it->second.honesty;
}

double TenantLedger::credit_price(std::uint64_t tenant) const {
  return rung(tenant) >= 2 ? options_.surcharge : 1.0;
}

bool TenantLedger::within_quota(std::uint64_t tenant,
                                std::uint64_t open) const {
  if (rung(tenant) < 4) return true;
  return open < options_.quota_outstanding;
}

std::uint64_t TenantLedger::spend(std::uint64_t tenant, std::uint64_t want,
                                  double now) {
  if (want == 0) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return 0;
  const std::uint64_t paid = std::min(want, it->second.credits);
  if (paid == 0) return 0;
  it->second.credits -= paid;
  it->second.spent += paid;
  total_spent_ += paid;
  trace(obs::EventKind::kCreditSpend, now, tenant,
        static_cast<double>(paid));
  return paid;
}

std::uint64_t TenantLedger::credits_balance(std::uint64_t tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.credits;
}

std::uint64_t TenantLedger::total_granted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_granted_;
}

std::uint64_t TenantLedger::total_spent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_spent_;
}

std::uint64_t TenantLedger::total_outstanding() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t sum = 0;
  for (const auto& [tenant, state] : tenants_) sum += state.credits;
  return sum;
}

bool TenantLedger::credits_conserved() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t outstanding = 0;
  std::uint64_t granted = 0;
  std::uint64_t spent = 0;
  for (const auto& [tenant, state] : tenants_) {
    outstanding += state.credits;
    granted += state.granted;
    spent += state.spent;
    // Per-tenant conservation implies the global identity; check both so a
    // compensating pair of corruptions cannot cancel out.
    if (state.granted != state.spent + state.credits) return false;
  }
  return granted == total_granted_ && spent == total_spent_ &&
         total_granted_ == total_spent_ + outstanding;
}

std::uint64_t TenantLedger::audits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return audits_;
}

std::uint64_t TenantLedger::penalties() const {
  std::lock_guard<std::mutex> lock(mu_);
  return penalties_;
}

std::uint64_t TenantLedger::fingerprint() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  const auto mix = [&h](std::uint64_t x) {
    h ^= x + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  const auto mix_double = [&](double d) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  for (const auto& [tenant, state] : tenants_) {
    mix(tenant);
    mix_double(state.honesty);
    mix_double(state.ratio);
    mix(state.audit_count);
    mix(state.divergent_streak);
    mix(state.honest_streak);
    mix(static_cast<std::uint64_t>(state.rung));
    mix(state.credits);
    mix(state.granted);
    mix(state.spent);
  }
  mix(audits_);
  mix(penalties_);
  mix(total_granted_);
  mix(total_spent_);
  return h;
}

}  // namespace rda::core
