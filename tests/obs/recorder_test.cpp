#include "obs/recorder.hpp"

#include <gtest/gtest.h>

namespace rda::obs {
namespace {

Event make_event(EventKind kind, core::PeriodId period, double time) {
  Event e;
  e.kind = kind;
  e.period = period;
  e.time = time;
  return e;
}

TEST(EventRecorder, CountsPerKind) {
  EventRecorder rec;
  rec.record(make_event(EventKind::kBegin, 1, 0.0));
  rec.record(make_event(EventKind::kAdmit, 1, 0.0));
  rec.record(make_event(EventKind::kBegin, 2, 1.0));
  rec.record(make_event(EventKind::kBlock, 2, 1.0));
  EXPECT_EQ(rec.count(EventKind::kBegin), 2u);
  EXPECT_EQ(rec.count(EventKind::kAdmit), 1u);
  EXPECT_EQ(rec.count(EventKind::kBlock), 1u);
  EXPECT_EQ(rec.count(EventKind::kEnd), 0u);
  EXPECT_EQ(rec.total_recorded(), 4u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.events().size(), 4u);
}

TEST(EventRecorder, WakeClosesWaitInterval) {
  EventRecorder rec;
  rec.record(make_event(EventKind::kBlock, 7, 1.0));
  rec.record(make_event(EventKind::kWake, 7, 1.5));
  const WaitHistogram waits = rec.wait_histogram();
  ASSERT_EQ(waits.count(), 1u);
  EXPECT_NEAR(waits.max(), 0.5, 1e-9);
}

TEST(EventRecorder, CancelCountsAbortedWaitAsLatency) {
  EventRecorder rec;
  rec.record(make_event(EventKind::kBlock, 3, 2.0));
  rec.record(make_event(EventKind::kCancel, 3, 2.25));
  const WaitHistogram waits = rec.wait_histogram();
  ASSERT_EQ(waits.count(), 1u);
  EXPECT_NEAR(waits.max(), 0.25, 1e-9);
}

TEST(EventRecorder, BeginPathForceAdmitHasNoWaitInterval) {
  EventRecorder rec;
  // Forced on the begin path: never blocked, so nothing to time.
  rec.record(make_event(EventKind::kBegin, 9, 0.0));
  rec.record(make_event(EventKind::kForceAdmit, 9, 0.0));
  EXPECT_EQ(rec.wait_histogram().count(), 0u);
  // Forced from the waitlist: the open block interval is closed.
  rec.record(make_event(EventKind::kBlock, 10, 1.0));
  rec.record(make_event(EventKind::kForceAdmit, 10, 1.125));
  const WaitHistogram waits = rec.wait_histogram();
  ASSERT_EQ(waits.count(), 1u);
  EXPECT_NEAR(waits.max(), 0.125, 1e-9);
}

TEST(EventRecorder, RingOverflowReportsDropped) {
  EventRecorder rec(4);
  for (core::PeriodId id = 1; id <= 10; ++id) {
    rec.record(make_event(EventKind::kBegin, id, 0.0));
  }
  EXPECT_EQ(rec.total_recorded(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
  EXPECT_EQ(rec.events().size(), 4u);
  // Counters are not subject to ring capacity.
  EXPECT_EQ(rec.count(EventKind::kBegin), 10u);
}

}  // namespace
}  // namespace rda::obs
