// Ablation: waitlist scan policy, wake order, and the §3.4 thread-pool
// guard.
//
//   * work-conserving scan (default): admit every fitting waitlist entry,
//   * head-only scan: strict FIFO — stop at the first entry that does not
//     fit (stronger arrival-order fairness, weaker utilization),
//   * wake order (AdmissionCore WakeStrategy): FIFO arrival order vs
//     demand-aware best-fit — wake the largest waiter that fits first,
//   * pool guard on/off for the task-pool workload (Raytrace).
#include <cstring>
#include <iostream>

#include "exp/harness.hpp"
#include "util/table.hpp"

namespace {

using namespace rda;

exp::RunRow run_with(const workload::WorkloadSpec& spec,
                     bool work_conserving, bool pool_guard,
                     core::WakeOrder wake_order = core::WakeOrder::kFifo) {
  sim::EngineConfig engine;
  engine.machine = sim::MachineConfig::e5_2420();
  sim::Engine sim_engine(engine);

  core::RdaOptions options;
  options.policy = core::PolicyKind::kStrict;
  options.monitor.work_conserving = work_conserving;
  options.monitor.pool_guard = pool_guard;
  options.monitor.wake_order = wake_order;
  core::RdaScheduler gate(static_cast<double>(engine.machine.llc_bytes),
                          engine.calib, options);
  sim_engine.set_gate(&gate);
  workload::populate_engine(sim_engine, spec, [&](sim::ProcessId pid) {
    gate.mark_pool(pid);
  });
  const sim::SimResult result = sim_engine.run();

  exp::RunRow row;
  row.workload = spec.name;
  row.system_joules = result.system_joules();
  row.dram_joules = result.dram_joules;
  row.gflops = result.gflops();
  row.gflops_per_watt = result.gflops_per_watt();
  row.makespan = result.makespan;
  row.gate_blocks = result.gate_blocks;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = !(argc > 1 && std::strcmp(argv[1], "--full") == 0);
  std::cout << "=== Ablation: waitlist scan policy, wake order, "
               "thread-pool guard ===\n\n";

  const auto specs = workload::table2_workloads();
  auto pick = [&](const char* name) {
    const auto& spec = workload::find_workload(specs, name);
    return quick ? workload::scale_workload(spec, 0.25, 2) : spec;
  };

  {
    const auto spec = pick("BLAS-3");
    util::Table table({"scan policy", "GFLOPS", "system J", "gate blocks",
                       "makespan [s]"});
    for (const bool wc : {true, false}) {
      const exp::RunRow row = run_with(spec, wc, true);
      table.begin_row()
          .add_cell(wc ? "work-conserving" : "head-only FIFO")
          .add_cell(row.gflops, 2)
          .add_cell(row.system_joules, 0)
          .add_cell(row.gate_blocks)
          .add_cell(row.makespan, 1);
    }
    std::cout << "BLAS-3 (heterogeneous demands -> scan policy matters)\n"
              << table.render() << "\n";
  }

  {
    const auto spec = pick("BLAS-3");
    util::Table table({"wake order", "GFLOPS", "system J", "gate blocks",
                       "makespan [s]"});
    for (const core::WakeOrder order :
         {core::WakeOrder::kFifo, core::WakeOrder::kBestFitDemand}) {
      const exp::RunRow row = run_with(spec, true, true, order);
      table.begin_row()
          .add_cell(std::string(core::to_string(order)))
          .add_cell(row.gflops, 2)
          .add_cell(row.system_joules, 0)
          .add_cell(row.gate_blocks)
          .add_cell(row.makespan, 1);
    }
    std::cout << "BLAS-3 (wake order: who gets freed capacity first)\n"
              << table.render() << "\n";
  }

  {
    const auto spec = pick("Raytrace");
    util::Table table({"pool guard", "GFLOPS", "system J", "gate blocks",
                       "makespan [s]"});
    for (const bool guard : {true, false}) {
      const exp::RunRow row = run_with(spec, true, guard);
      table.begin_row()
          .add_cell(guard ? "on (§3.4 group pause)" : "off (individual)")
          .add_cell(row.gflops, 2)
          .add_cell(row.system_joules, 0)
          .add_cell(row.gate_blocks)
          .add_cell(row.makespan, 1);
    }
    std::cout << "Raytrace (task pool)\n" << table.render();
  }
  return 0;
}
