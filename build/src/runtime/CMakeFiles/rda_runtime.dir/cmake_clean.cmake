file(REMOVE_RECURSE
  "CMakeFiles/rda_runtime.dir/affinity.cpp.o"
  "CMakeFiles/rda_runtime.dir/affinity.cpp.o.d"
  "CMakeFiles/rda_runtime.dir/gate.cpp.o"
  "CMakeFiles/rda_runtime.dir/gate.cpp.o.d"
  "librda_runtime.a"
  "librda_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rda_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
