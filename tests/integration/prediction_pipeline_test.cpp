// The Fig. 12 protocol end-to-end: profile an application at 1x/2x/4x
// inputs, fit the logarithmic regression to the MEASURED working sets, and
// predict the 8x measurement. The paper reports 80-95% accuracy; we require
// >= 75% for every modelled period (measurement noise included).
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "predict/regression.hpp"
#include "profiler/report.hpp"
#include "workload/trace_models.hpp"

namespace rda {
namespace {

std::vector<double> measured_wss(
    const std::function<workload::AppTraceModel(std::uint64_t)>& make_model,
    const std::vector<std::uint64_t>& inputs, std::size_t period_index) {
  std::vector<double> out;
  for (const std::uint64_t n : inputs) {
    const auto model = make_model(n);
    prof::WindowConfig wcfg;
    wcfg.window_accesses = model.window_accesses;
    wcfg.hot_threshold = model.hot_threshold;
    const auto report =
        prof::Profiler(wcfg, {}).profile(*model.source, model.nest);
    if (report.periods.size() <= period_index) {
      ADD_FAILURE() << "period " << period_index << " not detected at n="
                    << n;
      out.push_back(0.0);
      continue;
    }
    out.push_back(
        static_cast<double>(report.periods[period_index].period.wss_bytes));
  }
  return out;
}

void check_prediction(
    const std::function<workload::AppTraceModel(std::uint64_t)>& make_model,
    const std::vector<std::uint64_t>& inputs, std::size_t period_index,
    double min_accuracy) {
  const std::vector<double> wss = measured_wss(make_model, inputs,
                                               period_index);
  ASSERT_EQ(wss.size(), 4u);
  const std::vector<double> train_x = {static_cast<double>(inputs[0]),
                                       static_cast<double>(inputs[1]),
                                       static_cast<double>(inputs[2])};
  const std::vector<double> train_y = {wss[0], wss[1], wss[2]};
  const predict::WssPredictor predictor(train_x, train_y);
  const double predicted = predictor.predict(static_cast<double>(inputs[3]));
  const double accuracy = predict::prediction_accuracy(predicted, wss[3]);
  EXPECT_GE(accuracy, min_accuracy)
      << "period " << period_index << ": predicted " << predicted
      << " vs measured " << wss[3];
  // The observed growth is logarithmic; the model choice should agree.
  EXPECT_EQ(predictor.family(), predict::FitFamily::kLogarithmic);
}

TEST(PredictionPipeline, WnsqPp1) {
  check_prediction(
      [](std::uint64_t n) { return workload::make_wnsq_trace(n, 5, 301); },
      workload::wnsq_input_sizes(), 0, 0.75);
}

TEST(PredictionPipeline, WnsqPp2) {
  check_prediction(
      [](std::uint64_t n) { return workload::make_wnsq_trace(n, 5, 302); },
      workload::wnsq_input_sizes(), 1, 0.75);
}

TEST(PredictionPipeline, OcpPp1) {
  check_prediction(
      [](std::uint64_t n) { return workload::make_ocp_trace(n, 5, 303); },
      workload::ocp_input_sizes(), 0, 0.75);
}

TEST(PredictionPipeline, OcpPp2) {
  check_prediction(
      [](std::uint64_t n) { return workload::make_ocp_trace(n, 5, 304); },
      workload::ocp_input_sizes(), 1, 0.75);
}

}  // namespace
}  // namespace rda
