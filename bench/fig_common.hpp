// Shared machinery for the Fig. 7-10 reproduction binaries: run the eight
// Table-2 workloads under {Linux default, RDA:Strict, RDA:Compromise} on the
// paper's machine and hand each figure binary the comparison rows.
//
// A --quick flag divides the workload sizes so a full figure regenerates in
// roughly a second (admission decisions preserved; see
// workload::scale_workload).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "exp/harness.hpp"

namespace rda::bench {

struct FigureData {
  std::vector<workload::WorkloadSpec> specs;
  std::vector<exp::PolicyComparison> comparisons;  // index-aligned with specs
};

/// Runs all eight workloads under the three policies, fanning the 24
/// (workload, policy) cells across `jobs` threads. `quick` shrinks the
/// workloads (x1/4 processes, x1/8 flops). Output is identical for any
/// `jobs` value.
FigureData run_all_workloads(bool quick, int jobs = 1);

/// True if argv contains --quick.
bool quick_requested(int argc, char** argv);

/// The resolved `--jobs N` request (1 when absent).
int jobs_requested(int argc, char** argv);

/// True if argv contains --csv (machine-readable output for plotting).
bool csv_requested(int argc, char** argv);

/// Standard three-column (policy) table for one metric. With `csv`, emits
/// "workload,linux_default,rda_strict,rda_compromise" rows instead — ready
/// for gnuplot/pandas.
void print_metric_table(
    const FigureData& data, const std::string& metric_name, int precision,
    const std::function<double(const exp::RunRow&)>& metric,
    bool csv = false);

}  // namespace rda::bench
