file(REMOVE_RECURSE
  "CMakeFiles/profile_and_predict.dir/profile_and_predict.cpp.o"
  "CMakeFiles/profile_and_predict.dir/profile_and_predict.cpp.o.d"
  "profile_and_predict"
  "profile_and_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_and_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
