// write_file_atomic tests: content fidelity, overwrite semantics, no stray
// temp files, and failure behavior on an unwritable target directory.
#include "util/atomic_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "util/check.hpp"

namespace rda::util {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(AtomicFile, WritesNewFileVerbatim) {
  const std::string path = temp_path("atomic_new.txt");
  const std::string content("line one\nline two\0with a nul byte", 33);
  write_file_atomic(path, content);
  EXPECT_EQ(slurp(path), content);
  std::filesystem::remove(path);
}

TEST(AtomicFile, OverwritesExistingFileCompletely) {
  const std::string path = temp_path("atomic_overwrite.txt");
  write_file_atomic(path, "the first version, which is longer");
  write_file_atomic(path, "v2");
  // No remnant of the longer first version may survive the rename.
  EXPECT_EQ(slurp(path), "v2");
  std::filesystem::remove(path);
}

TEST(AtomicFile, EmptyContentProducesEmptyFile) {
  const std::string path = temp_path("atomic_empty.txt");
  write_file_atomic(path, "");
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_EQ(std::filesystem::file_size(path), 0u);
  std::filesystem::remove(path);
}

TEST(AtomicFile, LeavesNoTempFilesBehind) {
  const std::string dir = temp_path("atomic_dir");
  std::filesystem::create_directory(dir);
  write_file_atomic(dir + "/out.json", "{}");
  std::size_t entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ++entries;
    EXPECT_EQ(entry.path().filename().string(), "out.json");
  }
  EXPECT_EQ(entries, 1u);
  std::filesystem::remove_all(dir);
}

TEST(AtomicFile, ThrowsWhenTargetDirectoryMissing) {
  EXPECT_THROW(
      write_file_atomic("/nonexistent-rda-dir/sub/out.txt", "content"),
      util::CheckFailure);
}

}  // namespace
}  // namespace rda::util
