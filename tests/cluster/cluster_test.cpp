#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include "fault/fault.hpp"
#include "obs/recorder.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace rda::cluster {
namespace {

using rda::util::MB;

ClusterConfig two_nodes() {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.node.machine = sim::MachineConfig::e5_2420();
  cfg.use_gate = true;
  cfg.gate.policy = core::PolicyKind::kStrict;
  return cfg;
}

std::vector<sim::PhaseProgram> one_thread_process(double wss_mb,
                                                  double flops = 1e9) {
  std::vector<sim::PhaseProgram> programs;
  programs.push_back(sim::ProgramBuilder()
                         .period("pp", flops, MB(wss_mb), ReuseLevel::kHigh)
                         .build());
  return programs;
}

TEST(Cluster, DemandEstimateSumsThreadPeaks) {
  std::vector<sim::PhaseProgram> programs;
  programs.push_back(sim::ProgramBuilder()
                         .period("a", 1e9, MB(2), ReuseLevel::kHigh)
                         .period("b", 1e9, MB(5), ReuseLevel::kHigh)
                         .build());
  programs.push_back(sim::ProgramBuilder()
                         .period("c", 1e9, MB(3), ReuseLevel::kHigh)
                         .plain("glue", 1e8, MB(9), ReuseLevel::kLow)
                         .build());
  // max(2,5) + 3; the unmarked 9 MB phase declares nothing.
  EXPECT_NEAR(ClusterScheduler::process_demand_estimate(programs),
              static_cast<double>(MB(8)), 1.0);
}

TEST(Cluster, DemandEstimateUsesDeclaredNotTrue) {
  std::vector<sim::PhaseProgram> programs;
  programs.push_back(sim::ProgramBuilder()
                         .period("pp", 1e9, MB(2), ReuseLevel::kHigh)
                         .declared(MB(10))
                         .build());
  EXPECT_NEAR(ClusterScheduler::process_demand_estimate(programs),
              static_cast<double>(MB(10)), 1.0);
}

TEST(Cluster, DemandVectorAggregatesEveryKind) {
  std::vector<sim::PhaseProgram> programs;
  programs.push_back(sim::ProgramBuilder()
                         .period_bw("a", 1e9, MB(2), ReuseLevel::kHigh, 5e9)
                         .watts(4.0)
                         .period("b", 1e9, MB(5), ReuseLevel::kHigh)
                         .build());
  programs.push_back(sim::ProgramBuilder()
                         .period_bw("c", 1e9, MB(3), ReuseLevel::kLow, 7e9)
                         .build());
  const DemandVector vec = ClusterScheduler::process_demand_vector(programs);
  // Per thread the per-kind peak; per process the sum over threads.
  EXPECT_NEAR(vec[static_cast<std::size_t>(ResourceKind::kLLC)],
              static_cast<double>(MB(8)), 1.0);
  EXPECT_NEAR(vec[static_cast<std::size_t>(ResourceKind::kMemBandwidth)],
              12e9, 1.0);
  EXPECT_NEAR(vec[static_cast<std::size_t>(ResourceKind::kEnergyBudget)],
              4.0, 1e-9);
}

TEST(Cluster, FirstFitSpillsOnBandwidthNotJustLlc) {
  // Streams with tiny working sets but 12 GB/s appetites against 30 GB/s
  // nodes: LLC-only placement would pack all three onto node 0; the vector
  // fit check must spill the third on its bandwidth component.
  ClusterConfig cfg = two_nodes();
  cfg.gate.bandwidth_capacity = cfg.node.machine.dram_bandwidth;
  ClusterScheduler sched(cfg, PlacementPolicy::kFirstFitCapacity);
  auto stream = [] {
    std::vector<sim::PhaseProgram> programs;
    programs.push_back(
        sim::ProgramBuilder()
            .period_bw("s", 1e9, MB(1), ReuseLevel::kLow, 12e9)
            .build());
    return programs;
  };
  EXPECT_EQ(sched.add_process(stream()), 0);
  EXPECT_EQ(sched.add_process(stream()), 0);  // 24 GB/s on node 0
  EXPECT_EQ(sched.add_process(stream()), 1);  // 36 > 30: bandwidth spill
}

TEST(Cluster, RoundRobinAlternates) {
  ClusterScheduler sched(two_nodes(), PlacementPolicy::kRoundRobin);
  EXPECT_EQ(sched.add_process(one_thread_process(1)), 0);
  EXPECT_EQ(sched.add_process(one_thread_process(1)), 1);
  EXPECT_EQ(sched.add_process(one_thread_process(1)), 0);
}

TEST(Cluster, LeastLoadBalancesDeclaredDemand) {
  ClusterScheduler sched(two_nodes(), PlacementPolicy::kLeastDeclaredLoad);
  EXPECT_EQ(sched.add_process(one_thread_process(10)), 0);
  // Node 0 now carries 10 MB: the next two go to node 1 until it catches up.
  EXPECT_EQ(sched.add_process(one_thread_process(4)), 1);
  EXPECT_EQ(sched.add_process(one_thread_process(4)), 1);
  EXPECT_EQ(sched.add_process(one_thread_process(4)), 1);
  EXPECT_EQ(sched.add_process(one_thread_process(4)), 0);
}

TEST(Cluster, FirstFitPacksUpToCapacity) {
  ClusterScheduler sched(two_nodes(), PlacementPolicy::kFirstFitCapacity);
  // 15 MB LLC per node: 6+6 fits node 0; the third 6 MB spills to node 1.
  EXPECT_EQ(sched.add_process(one_thread_process(6)), 0);
  EXPECT_EQ(sched.add_process(one_thread_process(6)), 0);
  EXPECT_EQ(sched.add_process(one_thread_process(6)), 1);
  EXPECT_EQ(sched.add_process(one_thread_process(6)), 1);
  // Everything full: falls back to least-loaded rather than failing.
  EXPECT_EQ(sched.add_process(one_thread_process(6)), 0);
}

TEST(Cluster, RunConservesWorkAcrossNodes) {
  ClusterScheduler sched(two_nodes(), PlacementPolicy::kLeastDeclaredLoad);
  const int procs = 6;
  for (int i = 0; i < procs; ++i) {
    sched.add_process(one_thread_process(4, 5e8));
  }
  const ClusterResult result = sched.run();
  EXPECT_NEAR(result.total_flops(), procs * 5e8, 10.0);
  EXPECT_GT(result.makespan(), 0.0);
  EXPECT_GT(result.system_joules(), 0.0);
  ASSERT_EQ(result.processes_per_node.size(), 2u);
  EXPECT_EQ(result.processes_per_node[0] + result.processes_per_node[1],
            procs);
}

TEST(Cluster, TwoNodesBeatOneOnOversubscribedWork) {
  auto make = [&](int nodes) {
    ClusterConfig cfg = two_nodes();
    cfg.nodes = nodes;
    ClusterScheduler sched(cfg, PlacementPolicy::kLeastDeclaredLoad);
    for (int i = 0; i < 8; ++i) {
      sched.add_process(one_thread_process(6, 4e9));
    }
    return sched.run();
  };
  const ClusterResult one = make(1);
  const ClusterResult two = make(2);
  EXPECT_LT(two.makespan(), one.makespan());
  EXPECT_NEAR(one.total_flops(), two.total_flops(), 1.0);
}

TEST(Cluster, IdleNodeStillBurnsStaticPower) {
  ClusterConfig cfg = two_nodes();
  ClusterScheduler sched(cfg, PlacementPolicy::kFirstFitCapacity);
  sched.add_process(one_thread_process(2, 2e9));  // everything fits node 0
  const ClusterResult result = sched.run();
  ASSERT_EQ(result.nodes.size(), 2u);
  EXPECT_GT(result.nodes[1].package_joules, 0.0);  // idle node billed
  EXPECT_EQ(result.nodes[1].total_flops, 0.0);
}

TEST(Cluster, SingleShotRun) {
  ClusterScheduler sched(two_nodes(), PlacementPolicy::kRoundRobin);
  sched.add_process(one_thread_process(1, 1e7));
  sched.run();
  EXPECT_THROW(sched.run(), util::CheckFailure);
  EXPECT_THROW(sched.add_process(one_thread_process(1)),
               util::CheckFailure);
}

TEST(ClusterFault, RepeatedRouteFailuresMarkNodeDownAndReroutePending) {
  // The second placement attempt on node 0 bounces; with threshold 1 the
  // node goes down, its already-pending process is drained onto node 1,
  // and the bounced submission retries onto a healthy node.
  fault::FaultPlan plan;
  fault::FaultSpec fail;
  fail.kind = fault::FaultKind::kNodeFail;
  fail.hook = fault::Hook::kNodeRoute;
  fail.node = 0;
  fail.at_count = 2;  // first consult (process A's placement) succeeds
  plan.add(fail);
  fault::FaultInjector injector(std::move(plan));
  obs::EventRecorder recorder(1 << 10);

  ClusterConfig cfg = two_nodes();
  cfg.fault_injector = &injector;
  cfg.node_fail_threshold = 1;
  cfg.trace_sink = &recorder;
  ClusterScheduler sched(cfg, PlacementPolicy::kRoundRobin);

  EXPECT_EQ(sched.add_process(one_thread_process(1)), 0);
  EXPECT_EQ(sched.add_process(one_thread_process(1)), 1);
  // Routed to node 0, bounced, node 0 marked down, retried onto node 1.
  EXPECT_EQ(sched.add_process(one_thread_process(1)), 1);
  EXPECT_TRUE(sched.node_down(0));
  EXPECT_EQ(recorder.count(obs::EventKind::kNodeDown), 1u);

  const ClusterResult result = sched.run();
  EXPECT_EQ(result.node_failures, 1u);
  EXPECT_EQ(result.reroutes, 1u);  // process A drained off the dead node
  EXPECT_EQ(result.processes_per_node[0], 0);
  EXPECT_EQ(result.processes_per_node[1], 3);
  EXPECT_NEAR(result.total_flops(), 3e9, 1e6);
}

TEST(ClusterFault, DownNodeRejoinsOnRecoveryProbe) {
  // Node 0 dies on the very first placement; the recovery probe run at the
  // next submission fires kNodeRecover, so node 0 rejoins the placement
  // set and round-robin resumes using it.
  fault::FaultPlan plan;
  fault::FaultSpec fail;
  fail.kind = fault::FaultKind::kNodeFail;
  fail.hook = fault::Hook::kNodeRoute;
  fail.node = 0;
  fail.at_count = 1;
  plan.add(fail);
  fault::FaultSpec recover;
  recover.kind = fault::FaultKind::kNodeRecover;
  recover.hook = fault::Hook::kNodeRoute;
  recover.node = 0;
  // Consult 2 is the down-node probe during process A's retry; consult 3
  // is the probe at process B's submission — recover there.
  recover.at_count = 3;
  plan.add(recover);
  fault::FaultInjector injector(std::move(plan));
  obs::EventRecorder recorder(1 << 10);

  ClusterConfig cfg = two_nodes();
  cfg.fault_injector = &injector;
  cfg.node_fail_threshold = 1;
  cfg.trace_sink = &recorder;
  ClusterScheduler sched(cfg, PlacementPolicy::kRoundRobin);

  EXPECT_EQ(sched.add_process(one_thread_process(1)), 1);
  EXPECT_TRUE(sched.node_down(0));
  EXPECT_EQ(sched.add_process(one_thread_process(1)), 0);
  EXPECT_FALSE(sched.node_down(0));
  EXPECT_EQ(recorder.count(obs::EventKind::kNodeDown), 1u);
  EXPECT_EQ(recorder.count(obs::EventKind::kNodeUp), 1u);

  const ClusterResult result = sched.run();
  EXPECT_EQ(result.node_failures, 1u);
  EXPECT_EQ(result.processes_per_node[0], 1);
  EXPECT_EQ(result.processes_per_node[1], 1);
}

// --- Locality-aware placement + tenant-batch work stealing -------------------

TEST(ClusterLocality, TenantStaysOnItsHomeNode) {
  ClusterScheduler sched(two_nodes(), PlacementPolicy::kLocalityAware);
  // Tenant 7's first process homes it on node 0; later submissions follow
  // even when plain load balancing would alternate.
  EXPECT_EQ(sched.add_process(one_thread_process(3), false, 7), 0);
  EXPECT_EQ(sched.tenant_home(7), 0);
  EXPECT_EQ(sched.add_process(one_thread_process(3), false, 8), 1);
  EXPECT_EQ(sched.add_process(one_thread_process(3), false, 7), 0);
  EXPECT_EQ(sched.add_process(one_thread_process(3), false, 7), 0);
  EXPECT_EQ(sched.tenant_home(7), 0);
  EXPECT_EQ(sched.tenant_home(8), 1);
}

TEST(ClusterLocality, TenantSpillsWhenHomeOutgrowsCapacity) {
  ClusterScheduler sched(two_nodes(), PlacementPolicy::kLocalityAware);
  // 15 MB LLC per node: three 6 MB processes cannot all stay home. The
  // third spills to the least-loaded node and RE-HOMES the tenant there.
  EXPECT_EQ(sched.add_process(one_thread_process(6), false, 7), 0);
  EXPECT_EQ(sched.add_process(one_thread_process(6), false, 7), 0);
  EXPECT_EQ(sched.add_process(one_thread_process(6), false, 7), 1);
  EXPECT_EQ(sched.tenant_home(7), 1);
}

TEST(ClusterLocality, AnonymousSubmissionsBalanceLikeLeastLoad) {
  ClusterScheduler sched(two_nodes(), PlacementPolicy::kLocalityAware);
  EXPECT_EQ(sched.add_process(one_thread_process(10)), 0);
  EXPECT_EQ(sched.add_process(one_thread_process(4)), 1);
  EXPECT_EQ(sched.add_process(one_thread_process(4)), 1);
}

TEST(ClusterLocality, IdleNodeStealsWholeTenantBatch) {
  // A node that died and rejoined is the canonical idle node: its work was
  // drained to the survivor, which now holds two tenant batches. The steal
  // pass must move ONE whole batch back, never split one.
  fault::FaultPlan plan;
  // Consults on node 1, in order: tenant 8's two clean placements (1-2),
  // then its third submission bounces three times (3-5, default threshold
  // 3 → node down + drain), then the recovery probe rejoins it (6).
  for (int i = 3; i <= 5; ++i) {
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::kNodeFail;
    spec.hook = fault::Hook::kNodeRoute;
    spec.at_count = static_cast<std::uint64_t>(i);
    spec.node = 1;
    plan.add(spec);
  }
  fault::FaultSpec recover;
  recover.kind = fault::FaultKind::kNodeRecover;
  recover.hook = fault::Hook::kNodeRoute;
  recover.at_count = 6;
  recover.node = 1;
  plan.add(recover);
  fault::FaultInjector injector(plan);

  obs::EventRecorder recorder(1 << 10);
  ClusterConfig cfg = two_nodes();
  cfg.fault_injector = &injector;
  cfg.trace_sink = &recorder;
  ClusterScheduler sched(cfg, PlacementPolicy::kLocalityAware);

  EXPECT_EQ(sched.add_process(one_thread_process(1), false, 7), 0);
  EXPECT_EQ(sched.add_process(one_thread_process(1), false, 7), 0);
  EXPECT_EQ(sched.add_process(one_thread_process(1), false, 8), 1);
  EXPECT_EQ(sched.add_process(one_thread_process(1), false, 8), 1);
  // Node 1 dies mid-placement (its pending pair drains to node 0), rejoins
  // via the recovery probe, and the bounced submission lands on node 0 with
  // the rest of tenant 8's batch.
  EXPECT_EQ(sched.add_process(one_thread_process(1), false, 8), 0);
  EXPECT_FALSE(sched.node_down(1));
  EXPECT_EQ(sched.tenant_home(8), 0);

  // Node 1 is up and idle; node 0 holds both tenants. The steal moves the
  // smaller whole batch — tenant 7, two submissions — to the idle node.
  const std::size_t moved = sched.steal_rebalance();
  EXPECT_EQ(moved, 2u);
  EXPECT_EQ(sched.tenant_home(7), 1);
  EXPECT_EQ(sched.tenant_home(8), 0);
  EXPECT_EQ(recorder.count(obs::EventKind::kSteal), 1u);

  const ClusterResult result = sched.run();
  EXPECT_EQ(result.steals, 1u);
  EXPECT_EQ(result.processes_per_node[0], 3);
  EXPECT_EQ(result.processes_per_node[1], 2);
}

TEST(ClusterLocality, StealRefusesToShearALoneTenant) {
  ClusterScheduler sched(two_nodes(), PlacementPolicy::kLocalityAware);
  // One tenant, two processes: stealing one would split its working set
  // across both LLCs, so the idle node must stay idle.
  sched.add_process(one_thread_process(2), false, 7);
  sched.add_process(one_thread_process(2), false, 7);
  EXPECT_EQ(sched.steal_rebalance(), 0u);
  EXPECT_EQ(sched.tenant_home(7), 0);
}

TEST(ClusterLocality, NodeDeathRehomesTenantsKeepingBatchesWhole) {
  fault::FaultPlan plan;
  // The first two consults on node 0 are tenant 7's clean placements; the
  // next three (the third submission's routing retries) all bounce, which
  // crosses the default down threshold of 3.
  for (int i = 3; i <= 5; ++i) {
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::kNodeFail;
    spec.hook = fault::Hook::kNodeRoute;
    spec.at_count = static_cast<std::uint64_t>(i);
    spec.node = 0;
    plan.add(spec);
  }
  fault::FaultInjector injector(plan);
  ClusterConfig cfg = two_nodes();
  cfg.fault_injector = &injector;
  ClusterScheduler sched(cfg, PlacementPolicy::kLocalityAware);

  EXPECT_EQ(sched.add_process(one_thread_process(2), false, 7), 0);
  EXPECT_EQ(sched.add_process(one_thread_process(2), false, 7), 0);
  // The next placement bounces off node 0 three times, kills it, and the
  // drain re-routes tenant 7's whole batch to node 1 — which re-homes it.
  EXPECT_EQ(sched.add_process(one_thread_process(2), false, 7), 1);
  EXPECT_TRUE(sched.node_down(0));
  EXPECT_EQ(sched.tenant_home(7), 1);

  const ClusterResult result = sched.run();
  EXPECT_EQ(result.reroutes, 2u);
  EXPECT_EQ(result.processes_per_node[0], 0);
  EXPECT_EQ(result.processes_per_node[1], 3);
}

// The fleet-wide TenantLedger (DESIGN §17) plugs into placement: a haircut
// tenant's declared LLC demand is rescaled by its audited usage ratio
// before the node is chosen, so an inflator stops hoarding placement
// capacity it never touches.
TEST(Cluster, TenantLedgerHaircutScalesPlacementDemand) {
  core::TenantLedger ledger;
  // Tenant 5 declares 4x what it uses, repeatedly and uncontended; enough
  // audits for the decayed-max ratio to converge to the true 0.25.
  for (int i = 0; i < 20; ++i) {
    ledger.audit(5, 100.0, 25.0, false, static_cast<double>(i));
  }
  ASSERT_GE(ledger.rung(5), 1);
  ASSERT_DOUBLE_EQ(ledger.demand_correction(5), 0.25);

  ClusterConfig cfg = two_nodes();
  cfg.tenant_ledger = &ledger;
  ClusterScheduler sched(cfg, PlacementPolicy::kLeastDeclaredLoad);
  sched.add_process(one_thread_process(12), false, 5);
  double placed = 0.0;
  for (const double d : sched.placed_demand()) placed += d;
  EXPECT_NEAR(placed, static_cast<double>(MB(3)), 1.0);

  // An honest (unknown) tenant's declaration is taken at face value.
  ClusterScheduler honest(cfg, PlacementPolicy::kLeastDeclaredLoad);
  honest.add_process(one_thread_process(12), false, 6);
  double honest_placed = 0.0;
  for (const double d : honest.placed_demand()) honest_placed += d;
  EXPECT_NEAR(honest_placed, static_cast<double>(MB(12)), 1.0);
}

}  // namespace
}  // namespace rda::cluster
