// Scheduling predicate (§3.3, Algorithm 1).
//
//   function TrySchedule(pp, resource)
//     remaining <- resource.capacity - resource.usage
//     outcome   <- remaining - pp.demand
//     runnable  <- apply_policy(outcome, resource)
//     if runnable then increment_load(pp.demand); schedule(get_process(pp))
//     else waitlist(pp)
//
// This class is the pure decision + load update; queueing the loser is the
// progress monitor's job.
#pragma once

#include "core/policy.hpp"
#include "core/registry.hpp"
#include "core/resource_monitor.hpp"

namespace rda::core {

class SchedulingPredicate {
 public:
  /// Non-owning references; both must outlive the predicate.
  SchedulingPredicate(const SchedulingPolicy& policy,
                      ResourceMonitor& resources)
      : policy_(&policy), resources_(&resources) {}

  /// Algorithm 1, generalized to multi-resource periods: every declared
  /// demand must pass apply_policy on its resource. On true, all demands
  /// have been added to the load table atomically.
  ///
  /// apply_policy(remaining − demand) ⟺ usage + demand ≤ admission_bound
  /// for every shipped policy (Strict: bound = capacity; Compromise:
  /// x·capacity; AlwaysAdmit: +inf), so the check-then-increment is
  /// expressed as an atomic budget acquisition on the period's stripe —
  /// the same code path whether the caller holds the slow-lane lock or is
  /// racing through the lock-free lane.
  bool try_schedule(const PeriodRecord& pp) {
    for (std::size_t i = 0; i < pp.demands.size(); ++i) {
      const ResourceDemand& d = pp.demands[i];
      if (!resources_->try_acquire(d.resource, d.amount, pp.stripe)) {
        for (std::size_t j = 0; j < i; ++j) {
          resources_->decrement_load(pp.demands[j].resource,
                                     pp.demands[j].amount, pp.stripe);
        }
        return false;
      }
    }
    return true;
  }

  /// Decision only, no load change — used for group (thread-pool) checks.
  bool would_admit(ResourceKind resource, double demand) const {
    const ResourceState& res = resources_->state(resource);
    return policy_->allow(res.remaining() - demand, res);
  }

  /// Multi-resource decision only: the exact check try_schedule performs,
  /// without the load charge — used by wake strategies to enumerate fitting
  /// waitlist candidates before committing to one.
  bool would_admit(const PeriodRecord& pp) const {
    for (const ResourceDemand& d : pp.demands) {
      const ResourceState& res = resources_->state(d.resource);
      if (!policy_->allow(res.remaining() - d.amount, res)) return false;
    }
    return true;
  }

  const SchedulingPolicy& policy() const { return *policy_; }

 private:
  const SchedulingPolicy* policy_;
  ResourceMonitor* resources_;
};

}  // namespace rda::core
