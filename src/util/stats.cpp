#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rda::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

LineFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("fit_line: mismatched sample counts");
  }
  if (xs.size() < 2) {
    throw std::invalid_argument("fit_line: need at least two samples");
  }
  const double n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  LineFit fit;
  if (denom == 0.0) {
    // All x identical: horizontal line through the mean.
    fit.slope = 0.0;
    fit.intercept = sy / n;
  } else {
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;
  }
  // R^2 = 1 - SS_res / SS_tot.
  const double ybar = sy / n;
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = fit(xs[i]);
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - ybar) * (ys[i] - ybar);
  }
  fit.r_squared = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

double percentile(std::span<const double> data, double p) {
  if (data.empty()) return 0.0;
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double mean_of(std::span<const double> data) {
  if (data.empty()) return 0.0;
  double s = 0.0;
  for (double d : data) s += d;
  return s / static_cast<double>(data.size());
}

double geometric_mean(std::span<const double> data) {
  if (data.empty()) return 0.0;
  double log_sum = 0.0;
  for (double d : data) log_sum += std::log(d);
  return std::exp(log_sum / static_cast<double>(data.size()));
}

}  // namespace rda::util
