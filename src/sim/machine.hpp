// Simulated machine description (paper Table 1).
//
// The evaluation machine is an Intel Xeon E5-2420 (1.90 GHz) that the paper
// reports as 12 cores, with 32 KB L1-D / 32 KB L1-I, 256 KB private L2,
// 15360 KB shared L3, 16 GiB DRAM, CentOS 6.6 / Linux 4.6.0. We model the
// resources the scheduler reasons about: core count, shared-LLC capacity,
// and DRAM bandwidth.
#pragma once

#include <cstdint>
#include <string>

#include "util/units.hpp"

namespace rda::sim {

struct MachineConfig {
  std::string name = "generic";
  int cores = 4;
  std::uint64_t l1_data_bytes = util::KB(32);
  std::uint64_t l1_insn_bytes = util::KB(32);
  std::uint64_t l2_private_bytes = util::KB(256);
  std::uint64_t llc_bytes = util::MB(8);
  std::uint64_t dram_bytes = util::GB(8);
  /// Aggregate sustainable DRAM bandwidth (bytes/second).
  double dram_bandwidth = 20e9;
  /// Core clock (Hz); informs the peak flop rate in the calibration.
  double clock_hz = 2.0e9;

  /// The paper's evaluation machine, Table 1 verbatim.
  static MachineConfig e5_2420() {
    MachineConfig m;
    m.name = "Intel Xeon E5-2420 (paper Table 1)";
    m.cores = 12;
    m.l1_data_bytes = util::KB(32);
    m.l1_insn_bytes = util::KB(32);
    m.l2_private_bytes = util::KB(256);
    m.llc_bytes = util::KB(15360);  // 15 MB shared L3
    m.dram_bytes = util::GB(16);
    m.dram_bandwidth = 30e9;  // 3x DDR3-1333 channels ~= 32 GB/s peak
    m.clock_hz = 1.9e9;
    return m;
  }
};

}  // namespace rda::sim
