file(REMOVE_RECURSE
  "CMakeFiles/colocated_kernels.dir/colocated_kernels.cpp.o"
  "CMakeFiles/colocated_kernels.dir/colocated_kernels.cpp.o.d"
  "colocated_kernels"
  "colocated_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colocated_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
