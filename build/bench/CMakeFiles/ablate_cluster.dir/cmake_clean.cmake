file(REMOVE_RECURSE
  "CMakeFiles/ablate_cluster.dir/ablate_cluster.cpp.o"
  "CMakeFiles/ablate_cluster.dir/ablate_cluster.cpp.o.d"
  "ablate_cluster"
  "ablate_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
