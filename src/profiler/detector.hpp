// Progress-period detection over window statistics (§2.4).
//
// The paper's algorithm: decompose the execution into consecutive windows
// p0..pn; for each group of y/x consecutive windows, if their statistics are
// "sufficiently similar based on a predetermined threshold" the group begins
// a significant repetition; extend it window by window until one differs,
// and report [start, end-1] as a progress period. Scanning then resumes
// after an accepted period, or one window later after a rejection.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "profiler/window.hpp"

namespace rda::prof {

/// Similarity/extension parameters for the detector.
struct DetectorConfig {
  /// y/x in the paper: consecutive similar windows needed to *start* a
  /// period.
  std::size_t min_windows = 3;
  /// Two windows are similar when both their WSS and reuse ratio differ by
  /// at most this relative fraction from the period's running mean.
  double similarity_threshold = 0.25;
  /// Ignore windows whose working set is below this floor (startup noise).
  std::uint64_t min_wss_bytes = 0;
  /// Categorization thresholds for the reported reuse level.
  ReuseThresholds reuse_thresholds{};
};

/// One detected progress period: a run of behaviourally-uniform windows.
struct DetectedPeriod {
  std::size_t first_window = 0;  ///< inclusive
  std::size_t last_window = 0;   ///< inclusive
  std::uint64_t wss_bytes = 0;   ///< mean WSS over the run (paper: "averaging
                                 ///  the metrics from all windows")
  std::uint64_t footprint_bytes = 0;  ///< mean footprint
  double reuse_ratio = 0.0;           ///< mean reuse ratio
  ReuseLevel reuse_level = ReuseLevel::kLow;
  /// Most frequent retired-JMP PC across the run; input to the loop mapper.
  std::uint64_t dominant_jump_pc = 0;

  std::size_t window_count() const { return last_window - first_window + 1; }
};

/// Implements the §2.4 repetition scan.
class PeriodDetector {
 public:
  explicit PeriodDetector(DetectorConfig config = {});

  std::vector<DetectedPeriod> detect(
      const std::vector<WindowStats>& windows) const;

  /// Exposed for unit tests: relative-similarity predicate between one
  /// window and period running means.
  bool similar(const WindowStats& w, double mean_wss,
               double mean_reuse) const;

  const DetectorConfig& config() const { return config_; }

 private:
  DetectedPeriod summarize(const std::vector<WindowStats>& windows,
                           std::size_t first, std::size_t last) const;

  DetectorConfig config_;
};

}  // namespace rda::prof
