#include "core/rda_scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "obs/recorder.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace rda::core {
namespace {

using rda::util::MB;

sim::PhaseSpec phase(double mb, ReuseLevel reuse = ReuseLevel::kHigh) {
  sim::PhaseSpec p;
  p.flops = 1e9;
  p.wss_bytes = MB(mb);
  p.reuse = reuse;
  p.marked = true;
  p.label = "pp";
  return p;
}

class RecordingWaker : public sim::ThreadWaker {
 public:
  void wake(sim::ThreadId thread) override { woken.push_back(thread); }
  std::vector<sim::ThreadId> woken;
};

RdaScheduler make_sched(PolicyKind kind, bool fast_path = false) {
  RdaOptions options;
  options.policy = kind;
  options.fast_path = fast_path;
  return RdaScheduler(static_cast<double>(MB(15)), sim::Calibration{},
                      options);
}

TEST(RdaScheduler, AdmitsAndTracksLoad) {
  RdaScheduler sched = make_sched(PolicyKind::kStrict);
  RecordingWaker waker;
  sched.attach(waker);
  const auto r1 = sched.on_phase_begin(1, 1, phase(6), 0.0);
  EXPECT_TRUE(r1.admit);
  EXPECT_NEAR(sched.resources().usage(ResourceKind::kLLC),
              static_cast<double>(MB(6)), 1.0);
  sched.on_phase_end(1, 1, phase(6), sim::PhaseObservation{}, 1.0);
  EXPECT_NEAR(sched.resources().usage(ResourceKind::kLLC), 0.0, 1e-6);
}

TEST(RdaScheduler, DeniesOverCapacityAndWakesOnEnd) {
  RdaScheduler sched = make_sched(PolicyKind::kStrict);
  RecordingWaker waker;
  sched.attach(waker);
  EXPECT_TRUE(sched.on_phase_begin(1, 1, phase(10), 0.0).admit);
  EXPECT_FALSE(sched.on_phase_begin(2, 2, phase(10), 0.1).admit);
  EXPECT_TRUE(waker.woken.empty());
  sched.on_phase_end(1, 1, phase(10), sim::PhaseObservation{}, 1.0);
  ASSERT_EQ(waker.woken.size(), 1u);
  EXPECT_EQ(waker.woken[0], 2u);
  // The woken thread's period is already admitted and holds load.
  EXPECT_NEAR(sched.resources().usage(ResourceKind::kLLC),
              static_cast<double>(MB(10)), 1.0);
  sched.on_phase_end(2, 2, phase(10), sim::PhaseObservation{}, 2.0);
  EXPECT_NEAR(sched.resources().usage(ResourceKind::kLLC), 0.0, 1e-6);
}

TEST(RdaScheduler, SlowPathCostByDefault) {
  RdaScheduler sched = make_sched(PolicyKind::kStrict, /*fast_path=*/false);
  RecordingWaker waker;
  sched.attach(waker);
  const sim::Calibration calib;
  for (int i = 0; i < 3; ++i) {
    const auto begin = sched.on_phase_begin(1, 1, phase(2), 0.0);
    EXPECT_DOUBLE_EQ(begin.call_cost, calib.api_call_cost) << i;
    const auto end = sched.on_phase_end(1, 1, phase(2), sim::PhaseObservation{}, 0.0);
    EXPECT_DOUBLE_EQ(end.call_cost, calib.api_call_cost) << i;
  }
  EXPECT_EQ(sched.fast_path_hits(), 0u);
}

TEST(RdaScheduler, FastPathAfterIdenticalRepeat) {
  RdaScheduler sched = make_sched(PolicyKind::kStrict, /*fast_path=*/true);
  RecordingWaker waker;
  sched.attach(waker);
  const sim::Calibration calib;
  // First begin: no cache -> slow path.
  const auto first = sched.on_phase_begin(1, 1, phase(2), 0.0);
  EXPECT_DOUBLE_EQ(first.call_cost, calib.api_call_cost);
  sched.on_phase_end(1, 1, phase(2), sim::PhaseObservation{}, 0.0);
  // Identical repeat with no interleaving load change: fast path.
  const auto second = sched.on_phase_begin(1, 1, phase(2), 0.0);
  EXPECT_TRUE(second.admit);
  EXPECT_DOUBLE_EQ(second.call_cost, calib.api_fast_path_cost);
  EXPECT_EQ(sched.fast_path_hits(), 1u);
}

TEST(RdaScheduler, FastPathInvalidatedByOtherThreads) {
  RdaScheduler sched = make_sched(PolicyKind::kStrict, /*fast_path=*/true);
  RecordingWaker waker;
  sched.attach(waker);
  const sim::Calibration calib;
  sched.on_phase_begin(1, 1, phase(2), 0.0);
  sched.on_phase_end(1, 1, phase(2), sim::PhaseObservation{}, 0.0);
  // Thread 2 changes the load table between thread 1's calls.
  sched.on_phase_begin(2, 2, phase(3), 0.0);
  const auto repeat = sched.on_phase_begin(1, 1, phase(2), 0.0);
  EXPECT_DOUBLE_EQ(repeat.call_cost, calib.api_call_cost);  // slow again
  EXPECT_EQ(sched.fast_path_hits(), 0u);
}

TEST(RdaScheduler, FastPathInvalidatedByDemandChange) {
  RdaScheduler sched = make_sched(PolicyKind::kStrict, /*fast_path=*/true);
  RecordingWaker waker;
  sched.attach(waker);
  const sim::Calibration calib;
  sched.on_phase_begin(1, 1, phase(2), 0.0);
  sched.on_phase_end(1, 1, phase(2), sim::PhaseObservation{}, 0.0);
  const auto different = sched.on_phase_begin(1, 1, phase(4), 0.0);
  EXPECT_DOUBLE_EQ(different.call_cost, calib.api_call_cost);
}

TEST(RdaScheduler, FastPathBlockedWhileWaitersQueued) {
  RdaScheduler sched = make_sched(PolicyKind::kCompromise, /*fast_path=*/true);
  RecordingWaker waker;
  sched.attach(waker);
  const sim::Calibration calib;
  // Fill past 2x capacity so a waiter exists.
  EXPECT_TRUE(sched.on_phase_begin(1, 1, phase(14), 0.0).admit);
  EXPECT_TRUE(sched.on_phase_begin(2, 2, phase(14), 0.0).admit);
  EXPECT_FALSE(sched.on_phase_begin(3, 3, phase(14), 0.0).admit);
  // Thread 1 cycles; with a waiter queued, no fast path (fairness).
  sched.on_phase_end(1, 1, phase(14), sim::PhaseObservation{}, 0.0);
  // End wakes thread 3; thread 1 begins again — table changed anyway.
  const auto again = sched.on_phase_begin(1, 1, phase(14), 0.0);
  EXPECT_DOUBLE_EQ(again.call_cost, calib.api_call_cost);
}

TEST(RdaScheduler, CompromiseAdmitsUpToTwoX) {
  RdaScheduler sched = make_sched(PolicyKind::kCompromise);
  RecordingWaker waker;
  sched.attach(waker);
  EXPECT_TRUE(sched.on_phase_begin(1, 1, phase(14), 0.0).admit);
  EXPECT_TRUE(sched.on_phase_begin(2, 2, phase(14), 0.0).admit);
  EXPECT_FALSE(sched.on_phase_begin(3, 3, phase(14), 0.0).admit);
}

TEST(RdaScheduler, PoolMarkPropagates) {
  RdaScheduler sched = make_sched(PolicyKind::kStrict);
  RecordingWaker waker;
  sched.attach(waker);
  sched.mark_pool(7);
  EXPECT_TRUE(sched.on_phase_begin(1, 1, phase(12), 0.0).admit);
  EXPECT_FALSE(sched.on_phase_begin(10, 7, phase(5), 0.0).admit);
  EXPECT_TRUE(sched.monitor().pool_disabled(7));
}

// Regression: a nested pp_begin from a thread with a still-active period
// used to reach ProgressMonitor::begin_period, which bumped stats.begins
// and emitted a kBegin trace event before the registry finally rejected
// the insert — skewing the stats/trace reconciliation invariant and
// overwriting active_period_[thread] on builds without registry checks.
// Periods do not nest (§2.3); the scheduler must reject this at the API
// boundary, before any stats or trace mutation.
TEST(RdaScheduler, NestedBeginFromSameThreadRejected) {
  RdaScheduler sched = make_sched(PolicyKind::kStrict);
  obs::EventRecorder recorder(64);
  sched.set_trace_sink(&recorder);
  RecordingWaker waker;
  sched.attach(waker);
  EXPECT_TRUE(sched.on_phase_begin(1, 1, phase(2), 0.0).admit);
  EXPECT_THROW(sched.on_phase_begin(1, 1, phase(2), 0.1),
               util::CheckFailure);
  // The doomed begin must not have been counted or traced: otherwise the
  // begins == admissions + blocks invariant is broken for the capture.
  EXPECT_EQ(sched.monitor_stats().begins, 1u);
  EXPECT_EQ(recorder.count(obs::EventKind::kBegin), 1u);
  // The original period is intact and can still be ended cleanly.
  sched.on_phase_end(1, 1, phase(2), sim::PhaseObservation{}, 1.0);
  EXPECT_NEAR(sched.resources().usage(ResourceKind::kLLC), 0.0, 1e-6);
}

TEST(RdaScheduler, EndWithoutBeginRejected) {
  RdaScheduler sched = make_sched(PolicyKind::kStrict);
  RecordingWaker waker;
  sched.attach(waker);
  EXPECT_THROW(sched.on_phase_end(5, 5, phase(1), sim::PhaseObservation{}, 0.0), util::CheckFailure);
}

TEST(RdaScheduler, MonitorStatsExposed) {
  RdaScheduler sched = make_sched(PolicyKind::kStrict);
  RecordingWaker waker;
  sched.attach(waker);
  sched.on_phase_begin(1, 1, phase(10), 0.0);
  sched.on_phase_begin(2, 2, phase(10), 0.0);
  const MonitorStats& s = sched.monitor_stats();
  EXPECT_EQ(s.begins, 2u);
  EXPECT_EQ(s.immediate_admissions, 1u);
  EXPECT_EQ(s.blocks, 1u);
}

}  // namespace
}  // namespace rda::core
