# Empty dependencies file for rda_runtime.
# This may be replaced when dependencies are built.
