#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rda::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"workload", "policy", "joules"});
  t.begin_row().add_cell("BLAS-3").add_cell("strict").add_cell(123.456, 1);
  t.begin_row().add_cell("Raytrace").add_cell("compromise").add_cell(7.0, 2);
  const std::string out = t.render();
  EXPECT_NE(out.find("workload"), std::string::npos);
  EXPECT_NE(out.find("BLAS-3"), std::string::npos);
  EXPECT_NE(out.find("123.5"), std::string::npos);
  EXPECT_NE(out.find("7.00"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, ColumnsAligned) {
  Table t({"a", "bbbb"});
  t.begin_row().add_cell("xxxxxxx").add_cell("y");
  const std::string out = t.render();
  std::istringstream lines(out);
  std::string header, underline, row;
  std::getline(lines, header);
  std::getline(lines, underline);
  std::getline(lines, row);
  // Second column starts at the same offset in header and row.
  EXPECT_EQ(header.find("bbbb"), row.find("y"));
  EXPECT_EQ(underline.size(), row.size());
}

TEST(Table, NumericCellTypes) {
  Table t({"u64", "int", "double"});
  t.begin_row()
      .add_cell(std::uint64_t{18446744073709551615ull})
      .add_cell(-3)
      .add_cell(0.5, 3);
  const std::string out = t.render();
  EXPECT_NE(out.find("18446744073709551615"), std::string::npos);
  EXPECT_NE(out.find("-3"), std::string::npos);
  EXPECT_NE(out.find("0.500"), std::string::npos);
}

TEST(Table, CellWithoutBeginRowStartsOne) {
  Table t({"only"});
  t.add_cell("value");
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Table, PrintWritesToStream) {
  Table t({"h"});
  t.begin_row().add_cell("v");
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str(), t.render());
}

}  // namespace
}  // namespace rda::util
