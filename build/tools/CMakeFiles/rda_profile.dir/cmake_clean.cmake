file(REMOVE_RECURSE
  "CMakeFiles/rda_profile.dir/rda_profile.cpp.o"
  "CMakeFiles/rda_profile.dir/rda_profile.cpp.o.d"
  "rda_profile"
  "rda_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rda_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
