#include "profiler/window.hpp"

#include <algorithm>
#include <vector>

#include "util/check.hpp"

namespace rda::prof {

namespace {

/// Open-addressing line → touch-count table. The per-access increment is the
/// hottest operation in the whole profiler (every memory record of every
/// ladder pass goes through it); linear probing over flat arrays beats
/// std::unordered_map by avoiding per-node allocation and pointer chasing.
/// Counting is order-independent, so swapping the container cannot change
/// any window statistic.
class LineCountTable {
 public:
  LineCountTable() { rehash(1u << 12); }

  void increment(std::uint64_t line) {
    if ((size_ + 1) * 10 >= capacity() * 7) rehash(capacity() * 2);
    const std::uint64_t key = line + 1;  // 0 marks an empty slot
    std::size_t slot = hash(line) & mask_;
    while (true) {
      if (keys_[slot] == key) {
        ++counts_[slot];
        return;
      }
      if (keys_[slot] == 0) {
        keys_[slot] = key;
        counts_[slot] = 1;
        ++size_;
        return;
      }
      slot = (slot + 1) & mask_;
    }
  }

  std::size_t unique() const { return size_; }

  /// Count of lines touched at least `threshold` times.
  std::uint64_t count_at_least(std::uint32_t threshold) const {
    std::uint64_t hot = 0;
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != 0 && counts_[i] >= threshold) ++hot;
    }
    return hot;
  }

  /// Keeps capacity (the next window usually has a similar footprint).
  void clear() {
    std::fill(keys_.begin(), keys_.end(), 0);
    size_ = 0;
  }

 private:
  static std::uint64_t hash(std::uint64_t x) {
    // splitmix64 finalizer — decorrelates the low bits from strides.
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  std::size_t capacity() const { return keys_.size(); }

  void rehash(std::size_t new_capacity) {
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<std::uint32_t> old_counts = std::move(counts_);
    keys_.assign(new_capacity, 0);
    counts_.assign(new_capacity, 0);
    mask_ = new_capacity - 1;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == 0) continue;
      std::size_t slot = hash(old_keys[i] - 1) & mask_;
      while (keys_[slot] != 0) slot = (slot + 1) & mask_;
      keys_[slot] = old_keys[i];
      counts_[slot] = old_counts[i];
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<std::uint32_t> counts_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace

std::uint64_t WindowStats::dominant_jump_pc() const {
  std::uint64_t best_pc = 0;
  std::uint64_t best_count = 0;
  for (const auto& [pc, count] : jump_counts) {
    if (count > best_count || (count == best_count && pc < best_pc)) {
      best_pc = pc;
      best_count = count;
    }
  }
  return best_pc;
}

WindowAnalyzer::WindowAnalyzer(WindowConfig config) : config_(config) {
  RDA_CHECK(config_.window_accesses > 0);
  RDA_CHECK(config_.granularity > 0);
  RDA_CHECK(config_.hot_threshold >= 1);
}

std::vector<WindowStats> WindowAnalyzer::analyze(
    trace::TraceSource& source) const {
  std::vector<WindowStats> windows;
  // The paper resets its address-count array at the start of each window; a
  // flat hash table keyed by line address plays that role here.
  LineCountTable line_counts;
  WindowStats current;
  current.index = 0;

  auto finalize = [&](WindowStats& w) {
    const std::uint64_t unique = line_counts.unique();
    w.footprint_bytes = unique * config_.granularity;
    w.wss_bytes =
        line_counts.count_at_least(config_.hot_threshold) *
        config_.granularity;
    w.reuse_ratio =
        unique == 0 ? 0.0
                    : static_cast<double>(w.accesses) /
                          static_cast<double>(unique);
  };

  trace::TraceRecord rec;
  while (source.next(rec)) {
    if (rec.kind == trace::RecordKind::kJump) {
      ++current.jump_counts[rec.value];
      continue;
    }
    const std::uint64_t line = rec.value / config_.granularity;
    line_counts.increment(line);
    ++current.accesses;
    if (rec.kind == trace::RecordKind::kStore) {
      ++current.stores;
    } else {
      ++current.loads;
    }
    if (current.accesses >= config_.window_accesses) {
      finalize(current);
      windows.push_back(std::move(current));
      current = WindowStats{};
      current.index = windows.size();
      line_counts.clear();
    }
  }
  // Keep a trailing window only if it is long enough to be comparable.
  if (current.accesses * 2 >= config_.window_accesses) {
    finalize(current);
    windows.push_back(std::move(current));
  }
  return windows;
}

}  // namespace rda::prof
