// Multi-node extension (§5: "Our work is currently developed at the
// single-node level but can be extended to multiple nodes as part of our
// future work").
//
// A cluster is N identical nodes, each with its own LLC, DRAM, and RDA
// gate. Processes are placed on a node at submission time using their
// DECLARED demands — the same information the single-node predicate uses —
// then each node runs independently (processes never migrate across nodes,
// matching the paper's process-level granularity).
//
// Placement policies:
//   * round-robin            — demand-blind (the baseline a batch system does),
//   * least-declared-load    — balance the sum of declared working sets,
//   * first-fit-capacity     — pack nodes up to their LLC capacity before
//                              spilling (bin-packing by declared demand),
//   * locality-aware         — per-tenant footprint map: a tenant's processes
//                              stay on the node already holding its LLC
//                              working set (warm cache) until the footprint
//                              outgrows the node, balanced by whole-tenant
//                              batch stealing when a node would otherwise
//                              idle (stealing single processes would shear a
//                              tenant's working set across LLCs).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/rda_scheduler.hpp"
#include "fault/fault.hpp"
#include "sim/engine.hpp"

namespace rda::cluster {

/// Per-resource placed/declared demand, indexed by ResourceKind. Placement
/// fit checks compare every declared component against the node's capacity
/// for that resource — a bandwidth-heavy process can be turned away from a
/// node whose LLC still has room, and vice versa.
using DemandVector = std::array<double, kNumResourceKinds>;

enum class PlacementPolicy {
  kRoundRobin,
  kLeastDeclaredLoad,
  kFirstFitCapacity,
  kLocalityAware,
};

std::string to_string(PlacementPolicy policy);

/// Tenant identity for locality-aware placement. 0 = anonymous (no
/// affinity); anonymous processes place like kLeastDeclaredLoad.
using TenantId = std::uint64_t;
inline constexpr TenantId kNoTenant = 0;

struct ClusterConfig {
  int nodes = 2;
  /// Every node is one instance of this machine.
  sim::EngineConfig node{};
  /// Per-node RDA gate options; `use_gate` false = Linux default everywhere.
  bool use_gate = true;
  core::RdaOptions gate{};
  /// Fault injection for the routing layer (non-owning; nullptr = off):
  /// kNodeRoute consults fire kNodeFail (a placement attempt bounces) and
  /// kNodeRecover (a down node rejoins). Node gates take their own injector
  /// through `gate.fault_injector`.
  fault::FaultInjector* fault_injector = nullptr;
  /// Routing failures before a node is marked down and its pending
  /// submissions are drained and re-routed to healthy nodes.
  int node_fail_threshold = 3;
  /// Node-health event sink (kNodeDown / kNodeUp; non-owning, nullptr off).
  obs::TraceSink* trace_sink = nullptr;
  /// Fleet-wide tenant-truth ledger (non-owning; nullptr = off). Forwarded
  /// into every node gate so audits from all nodes feed one honesty score,
  /// and consulted at placement: a tenant's declared LLC demand is scaled by
  /// its learned correction before choosing a node, so a chronic inflator
  /// stops reserving whole nodes it will never fill.
  core::TenantLedger* tenant_ledger = nullptr;
};

struct ClusterResult {
  std::vector<sim::SimResult> nodes;
  std::vector<int> processes_per_node;
  /// Fleet-wide admission totals: the per-node AdmissionCore stats summed
  /// (all zero when the cluster runs without gates).
  core::MonitorStats admission;
  // Node-health bookkeeping (all zero without a routing fault injector).
  std::uint64_t node_failures = 0;  ///< routing attempts that bounced
  std::uint64_t reroutes = 0;       ///< submissions drained off a down node
  std::uint64_t steals = 0;         ///< tenant batches stolen by idle nodes

  /// Cluster makespan = slowest node (all nodes start together).
  double makespan() const;
  double total_flops() const;
  /// Sum of node energies (each node pays its own idle power for the whole
  /// cluster makespan — an idle node still burns static power).
  double system_joules() const;
  double gflops() const;
  double gflops_per_watt() const;
};

/// Places processes and runs all nodes to completion.
class ClusterScheduler {
 public:
  ClusterScheduler(ClusterConfig config, PlacementPolicy policy);

  /// Submits one process (its per-thread phase programs). Placement happens
  /// immediately, based on the process's declared peak demand. Returns the
  /// node index chosen. Tenanted submissions (tenant != kNoTenant) carry
  /// locality: under kLocalityAware they land on the tenant's home node —
  /// the one already holding its LLC working set — until it outgrows the
  /// node's capacity.
  int add_process(std::vector<sim::PhaseProgram> thread_programs,
                  bool task_pool = false, TenantId tenant = kNoTenant);

  /// Declared-demand estimate used for placement: the max over time of the
  /// sum of each thread's declared working set (threads of a process run
  /// their programs in lockstep at worst).
  static double process_demand_estimate(
      const std::vector<sim::PhaseProgram>& thread_programs);

  /// Per-resource version of the estimate: each thread's peak declared
  /// demand per resource kind (LLC working set, DRAM bandwidth, watts),
  /// summed across threads.
  static DemandVector process_demand_vector(
      const std::vector<sim::PhaseProgram>& thread_programs);

  ClusterResult run();

  const std::vector<double>& placed_demand() const { return node_demand_; }
  bool node_down(int node) const {
    return node_down_[static_cast<std::size_t>(node)];
  }

  /// Current home node of a tenant (-1 = unknown or home died). The home
  /// follows the tenant's latest placement: after a spill or steal the
  /// working set starts rebuilding on the new node, so that IS the home.
  int tenant_home(TenantId tenant) const;

  /// Idle-node work stealing: while a healthy node has nothing pending and
  /// some other node holds more than one tenant batch, the idle node steals
  /// the donor's smallest WHOLE tenant batch (never single processes — a
  /// split batch would shear the tenant's working set across two LLCs).
  /// run() performs this rebalance automatically under kLocalityAware;
  /// exposed for tests and for callers that want a steal pass mid-stream.
  /// Returns the number of submissions moved.
  std::size_t steal_rebalance();

  /// The admission engine of one node's gate (nullptr when `use_gate` is
  /// off). Placement and fleet-wide stats route through these cores.
  const core::AdmissionCore* node_core(int node) const;

 private:
  /// One placed process, held until run() so a node failure can still
  /// re-route it (threads are materialized into engines only at run time).
  struct Submission {
    std::vector<sim::PhaseProgram> programs;
    bool task_pool = false;
    double demand = 0.0;       ///< LLC component (ordering heuristics)
    DemandVector demand_vec{}; ///< per-resource (fit checks)
    TenantId tenant = kNoTenant;
  };

  /// Healthy-node placement under the active policy; -1 when none is up.
  /// Fit-based policies require EVERY declared resource component to fit
  /// the node; load-ordering heuristics compare the LLC component.
  int pick_node(const DemandVector& demand, TenantId tenant = kNoTenant) const;
  /// True when every nonzero component of `demand` fits node `n`'s
  /// remaining per-resource placement headroom (kinds the node does not
  /// constrain are ignored).
  bool fits(int node, const DemandVector& demand) const;
  /// Gives each down node a deterministic consult so a targeted
  /// kNodeRecover spec can fire; recovered nodes rejoin the placement set.
  void probe_recoveries();
  void mark_down(int node);
  void mark_up(int node);
  void trace_node(obs::EventKind kind, int node, double demand = 0.0) const;
  double node_capacity(int node) const;
  double node_capacity(int node, ResourceKind kind) const;
  /// Records a placement in the tenant footprint map (no-op for kNoTenant).
  void note_placement(TenantId tenant, int node, double demand);
  void charge_node(int node, const Submission& s, double sign);

  ClusterConfig config_;
  PlacementPolicy policy_;
  std::vector<std::unique_ptr<sim::Engine>> engines_;
  std::vector<std::unique_ptr<core::RdaScheduler>> gates_;
  std::vector<double> node_demand_;  ///< placed declared LLC demand per node
  std::vector<DemandVector> node_demand_vec_;  ///< per-resource placed demand
  std::vector<int> node_processes_;
  std::vector<std::vector<Submission>> node_pending_;
  std::vector<bool> node_down_;
  std::vector<int> route_failures_;
  std::uint64_t total_route_failures_ = 0;
  std::uint64_t reroutes_ = 0;
  std::uint64_t steals_ = 0;
  int next_round_robin_ = 0;
  bool ran_ = false;

  /// Per-tenant LLC footprint map: where the tenant's working set lives and
  /// how much of it is placed there. node -1 = the home died.
  struct TenantHome {
    int node = -1;
    double footprint = 0.0;
  };
  std::unordered_map<TenantId, TenantHome> tenant_homes_;
};

}  // namespace rda::cluster
