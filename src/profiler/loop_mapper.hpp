// Mapping detected periods back to source structure (§2.4).
//
// "To correlate the detected runtime information with the source code of an
//  application, we sample the linear memory addresses of the JMP
//  instructions retired within each window, and use Dyninst ParseAPI to
//  locate these JMPs within the loop nest structure of the binary. The
//  outermost loop that contains the identified progress period is then used
//  as the beginning and ending of the period."
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "profiler/detector.hpp"
#include "trace/loop_nest.hpp"

namespace rda::prof {

/// A detected period anchored to a loop in the program structure.
struct MappedPeriod {
  DetectedPeriod period;
  /// Innermost loop the dominant JMP belongs to (where the behaviour lives).
  std::optional<trace::LoopId> innermost_loop;
  /// Outermost enclosing loop — the paper's chosen insertion point for the
  /// pp_begin/pp_end calls (minimizes tracking overhead, §4.3).
  std::optional<trace::LoopId> boundary_loop;
};

/// Resolves each detected period's dominant JMP PC against a loop nest.
class LoopMapper {
 public:
  explicit LoopMapper(const trace::LoopNest& nest) : nest_(&nest) {}

  MappedPeriod map(const DetectedPeriod& period) const;
  std::vector<MappedPeriod> map_all(
      const std::vector<DetectedPeriod>& periods) const;

 private:
  const trace::LoopNest* nest_;
};

}  // namespace rda::prof
