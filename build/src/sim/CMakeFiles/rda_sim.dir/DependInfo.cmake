
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/assoc_cache.cpp" "src/sim/CMakeFiles/rda_sim.dir/assoc_cache.cpp.o" "gcc" "src/sim/CMakeFiles/rda_sim.dir/assoc_cache.cpp.o.d"
  "/root/repo/src/sim/cache_model.cpp" "src/sim/CMakeFiles/rda_sim.dir/cache_model.cpp.o" "gcc" "src/sim/CMakeFiles/rda_sim.dir/cache_model.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/rda_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/rda_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/perf_model.cpp" "src/sim/CMakeFiles/rda_sim.dir/perf_model.cpp.o" "gcc" "src/sim/CMakeFiles/rda_sim.dir/perf_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rda_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
