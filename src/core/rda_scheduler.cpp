#include "core/rda_scheduler.hpp"

#include "util/check.hpp"

namespace rda::core {

RdaScheduler::RdaScheduler(double llc_capacity_bytes,
                           const sim::Calibration& calib, RdaOptions options)
    : calib_(calib),
      options_(options),
      policy_(make_policy(options.policy, options.oversubscription)),
      predicate_(*policy_, resources_),
      monitor_(predicate_, resources_, options.monitor),
      corrector_(options.feedback) {
  resources_.set_capacity(ResourceKind::kLLC, llc_capacity_bytes);
  if (options_.bandwidth_capacity > 0.0) {
    resources_.set_capacity(ResourceKind::kMemBandwidth,
                            options_.bandwidth_capacity);
  }
  monitor_.set_trace_sink(options_.trace_sink);
}

void RdaScheduler::mark_pool(sim::ProcessId process) {
  monitor_.mark_pool(process);
}

void RdaScheduler::set_trace_sink(obs::TraceSink* sink) {
  monitor_.set_trace_sink(sink);
}

void RdaScheduler::attach(sim::ThreadWaker& waker) {
  monitor_.set_waker([&waker](sim::ThreadId tid) { waker.wake(tid); });
}

bool RdaScheduler::fast_path_usable(sim::ThreadId thread,
                                    sim::ProcessId process, double demand,
                                    double bw_demand) const {
  if (!options_.fast_path) return false;
  const auto it = cache_.find(thread);
  if (it == cache_.end() || !it->second.valid) return false;
  if (it->second.demand != demand) return false;
  if (it->second.bw_demand != bw_demand) return false;
  // Nobody else touched the load table since this thread's own last call,
  // the previous identical request was admitted, and nobody is queued ahead
  // — so replaying the predicate gives the identical "admit".
  if (it->second.version != resources_.version()) return false;
  if (!monitor_.waitlist().empty()) return false;
  if (monitor_.pool_disabled(process)) return false;
  return true;
}

sim::BeginResult RdaScheduler::on_phase_begin(sim::ThreadId thread,
                                              sim::ProcessId process,
                                              const sim::PhaseSpec& phase,
                                              double now) {
  double demand = static_cast<double>(phase.declared_wss());
  // Counter-feedback: charge the corrected demand learned from previous
  // instances of this period (keyed by its static code location).
  demand *= corrector_.correction(phase.label);
  double cap = 0.0;
  if (options_.partitioning.enable &&
      demand > resources_.capacity(ResourceKind::kLLC)) {
    // §6: a larger-than-LLC working set streams from DRAM regardless —
    // confine it to a small partition and charge only that.
    cap = options_.partitioning.streaming_fraction *
          resources_.capacity(ResourceKind::kLLC);
    demand = cap;
    ++partitioned_periods_;
  }
  const double bw_demand = options_.bandwidth_capacity > 0.0
                               ? phase.bw_bytes_per_sec
                               : 0.0;
  const bool fast = fast_path_usable(thread, process, demand, bw_demand);
  if (fast) ++fast_path_hits_;

  // Periods do not nest (§2.3): a second begin from the same thread would
  // silently overwrite active_period_[thread] and leak the first period's
  // charged load forever (it could never be ended).
  const auto active_it = active_period_.find(thread);
  RDA_CHECK_MSG(active_it == active_period_.end(),
                "nested pp_begin from thread "
                    << thread << ": period " << active_it->second
                    << " is still active");

  PeriodRecord record;
  record.thread = thread;
  record.process = process;
  record.set_single(ResourceKind::kLLC, demand);
  if (bw_demand > 0.0) {
    record.add_demand(ResourceKind::kMemBandwidth, bw_demand);
  }
  record.reuse = phase.reuse;
  record.label = phase.label;
  const ProgressMonitor::BeginOutcome outcome =
      monitor_.begin_period(std::move(record), now);

  RDA_CHECK_MSG(!fast || outcome.admitted,
                "fast path replay diverged from the cached admit decision");

  active_period_[thread] = outcome.id;

  ThreadCache& cache = cache_[thread];
  cache.valid = outcome.admitted && !outcome.forced;
  cache.demand = demand;
  cache.bw_demand = bw_demand;
  cache.version = resources_.version();

  sim::BeginResult result;
  result.admit = outcome.admitted;
  result.call_cost = fast ? calib_.api_fast_path_cost : calib_.api_call_cost;
  result.occupancy_cap = cap;
  return result;
}

sim::EndResult RdaScheduler::on_phase_end(sim::ThreadId thread,
                                          sim::ProcessId process,
                                          const sim::PhaseSpec& phase,
                                          const sim::PhaseObservation& observed,
                                          double now) {
  (void)process;
  corrector_.observe(phase.label, static_cast<double>(phase.declared_wss()),
                     observed.peak_occupancy, observed.cache_contended);
  const auto it = active_period_.find(thread);
  RDA_CHECK_MSG(it != active_period_.end(),
                "phase end from thread " << thread
                                         << " with no active period");
  // The end is fast-pathable when no waiter can be affected: with an empty
  // waitlist the decrement wakes nobody, so the kernel entry is skippable.
  const bool fast = options_.fast_path && monitor_.waitlist().empty();
  // Replay validity: the cached admit decision survives this end only if
  // nobody else touched the load table between our begin and now (then our
  // increment+decrement cancel and the table returns to the decision's
  // state).
  ThreadCache& cache = cache_[thread];
  const bool undisturbed = resources_.version() == cache.version;
  monitor_.end_period(it->second, now);
  active_period_.erase(it);

  if (fast && undisturbed && cache.valid) {
    cache.version = resources_.version();
  } else {
    cache.valid = false;
  }

  sim::EndResult result;
  result.call_cost = fast ? calib_.api_fast_path_cost : calib_.api_call_cost;
  return result;
}

}  // namespace rda::core
