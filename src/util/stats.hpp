// Streaming statistics and small least-squares fits.
//
// Used by the experiment harness (mean/stddev over repeated measurements —
// the paper repeats each measurement four times and reports a 2% average
// standard deviation) and by the prediction module (Fig. 12 logarithmic
// regression is built on the linear fit below).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rda::util {

/// Welford running mean/variance. Numerically stable for long streams.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Result of an ordinary least-squares line fit y = intercept + slope * x.
struct LineFit {
  double intercept = 0.0;
  double slope = 0.0;
  /// Coefficient of determination in [0, 1]; 1 when the fit is exact.
  double r_squared = 0.0;

  double operator()(double x) const { return intercept + slope * x; }
};

/// OLS fit over paired samples. Requires xs.size() == ys.size() >= 2.
LineFit fit_line(std::span<const double> xs, std::span<const double> ys);

/// Exact percentile (linear interpolation) over a copy of the data.
/// p in [0,100]. Empty input returns 0.
double percentile(std::span<const double> data, double p);

/// Arithmetic mean of a span; 0 when empty.
double mean_of(std::span<const double> data);

/// Geometric mean of strictly positive values; 0 when empty.
double geometric_mean(std::span<const double> data);

}  // namespace rda::util
