// Binary trace file format.
//
// Lets traces be captured once (rda_trace_gen) and profiled repeatedly
// (rda_profile) — the same decoupling PIN users get from logging a trace to
// disk. The format carries both the record stream and the loop-nest side
// table (the ParseAPI view), so a trace file is self-contained.
//
// Layout (little-endian):
//   magic   "RDATRC01" (8 bytes)
//   u32     loop count
//   per loop: u16 name length, name bytes, u64 pc_begin, u64 pc_end,
//             u32 parent (0xffffffff = top level)
//   u64     record count
//   per record: u64 value, u8 kind
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include <vector>

#include "trace/loop_nest.hpp"
#include "trace/record.hpp"

namespace rda::trace {

/// On-disk size of one record: u64 value + u8 kind.
inline constexpr std::size_t kTraceRecordBytes = 9;

/// Streams a trace (and its loop nest) into a file. Records accumulate in a
/// large write buffer (one fwrite per ~2 MB, not per record); the header's
/// record count is patched on finalize()/destruction.
class TraceFileWriter {
 public:
  TraceFileWriter(const std::string& path, const LoopNest& nest);
  ~TraceFileWriter();

  TraceFileWriter(const TraceFileWriter&) = delete;
  TraceFileWriter& operator=(const TraceFileWriter&) = delete;

  void write(const TraceRecord& record);
  /// Drains an entire source into the file.
  void write_all(TraceSource& source);

  /// Flushes, patches the record count, closes. Idempotent.
  void finalize();

  std::uint64_t records_written() const { return count_; }

 private:
  void flush_buffer();

  std::FILE* file_ = nullptr;
  long count_offset_ = 0;
  std::uint64_t count_ = 0;
  bool finalized_ = false;
  std::vector<unsigned char> buffer_;
};

/// An opened trace file: the loop nest plus a streaming record source.
class TraceFile {
 public:
  /// Throws util::CheckFailure on malformed input.
  static TraceFile open(const std::string& path);

  const LoopNest& nest() const { return nest_; }
  std::uint64_t record_count() const { return record_count_; }

  /// One-shot streaming source over the records (fresh file handle each
  /// call, so multiple passes are possible).
  std::unique_ptr<TraceSource> records() const;

  /// Byte offset of the record section (TraceArena maps from here).
  long records_offset() const { return records_offset_; }

 private:
  std::string path_;
  LoopNest nest_;
  std::uint64_t record_count_ = 0;
  long records_offset_ = 0;
};

}  // namespace rda::trace
