// Per-thread execution-rate model.
//
// A thread in a phase retires flops at a rate set by how much of its working
// set is LLC-resident: misses add an exposed stall per line. A global DRAM
// bandwidth cap inflates everyone's effective stall when aggregate traffic
// oversubscribes memory (queueing), which produces the memory-bound plateau
// the paper observes in Fig. 13.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "sim/calibration.hpp"

namespace rda::sim {

/// Instantaneous rates of one running thread.
struct PhaseRate {
  double flops_per_sec = 0.0;
  double dram_bytes_per_sec = 0.0;       ///< all miss traffic
  double residency_bytes_per_sec = 0.0;  ///< reuse fills (grow occupancy)
  double streaming_bytes_per_sec = 0.0;  ///< pass-through traffic
};

/// Inputs for one running thread when solving the shared-bandwidth cap.
struct RateRequest {
  ReuseLevel reuse = ReuseLevel::kLow;
  double resident_fraction = 1.0;  ///< LLC occupancy / wss, in [0,1]
};

/// Uncontended rate (no bandwidth queueing).
PhaseRate compute_rate(const Calibration& calib, ReuseLevel reuse,
                       double resident_fraction);

/// Rates for a co-running set under the machine's DRAM bandwidth cap.
/// When aggregate traffic exceeds `bandwidth`, a common queueing factor q>=1
/// inflates every miss stall until traffic fits; q is found by bisection
/// (the aggregate is strictly decreasing in q). Compute-bound threads are
/// barely affected; memory-bound threads absorb the queueing.
std::vector<PhaseRate> compute_rates_capped(
    const Calibration& calib, const std::vector<RateRequest>& requests,
    double bandwidth);

/// Allocation-free form of compute_rates_capped for the simulator's inner
/// loop: per-thread miss terms are derived once per call (not once per
/// bisection probe) and both the term scratch and `out` keep their capacity
/// across calls. Bit-identical to the vector-returning function.
class RateSolver {
 public:
  void solve(const Calibration& calib,
             const std::vector<RateRequest>& requests, double bandwidth,
             std::vector<PhaseRate>& out);

 private:
  struct Term {
    double mpf = 0.0;         ///< total misses per flop
    double miss_seconds = 0.0;  ///< mpf * miss_stall (stall share at q=1)
  };

  double aggregate_traffic(const Calibration& calib, double q) const;

  std::vector<Term> terms_;
};

}  // namespace rda::sim
