// Microbenchmarks of the BLAS kernels: attained GFLOPS per level. These are
// the real compute bodies behind the Table-2 workloads and the native
// Fig. 11 measurement.
#include <benchmark/benchmark.h>

#include <vector>

#include "blas/level1.hpp"
#include "blas/level2.hpp"
#include "blas/level3.hpp"
#include "util/rng.hpp"

namespace {

using namespace rda;

std::vector<double> random_vec(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.next_double(-1.0, 1.0);
  return v;
}

void BM_Daxpy(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto x = random_vec(n, 1);
  auto y = random_vec(n, 2);
  for (auto _ : state) {
    blas::daxpy(1.0001, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      blas::daxpy_flops(n) * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Daxpy)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_DgemvN(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = random_vec(n * n, 3);
  const auto x = random_vec(n, 4);
  auto y = random_vec(n, 5);
  for (auto _ : state) {
    blas::dgemv_n(n, n, 1.0, a, x, 0.5, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      blas::dgemv_flops(n, n) * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DgemvN)->Arg(256)->Arg(1024);

void BM_DgemmBlocked(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = random_vec(n * n, 6);
  const auto b = random_vec(n * n, 7);
  std::vector<double> c(n * n, 0.0);
  for (auto _ : state) {
    blas::dgemm(n, n, n, 1.0, a, b, 0.0, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      blas::dgemm_flops(n, n, n) * static_cast<double>(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DgemmBlocked)->Arg(128)->Arg(256)->Arg(512);

void BM_DgemmNaive(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a = random_vec(n * n, 8);
  const auto b = random_vec(n * n, 9);
  std::vector<double> c(n * n, 0.0);
  for (auto _ : state) {
    blas::dgemm_naive(n, n, n, 1.0, a, b, 0.0, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      blas::dgemm_flops(n, n, n) * static_cast<double>(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DgemmNaive)->Arg(128)->Arg(256);

void BM_DtrsmRu(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(10);
  std::vector<double> u(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) u[i * n + j] = rng.next_double();
    u[i * n + i] = rng.next_double(1.0, 2.0);
  }
  auto b = random_vec(n * n, 11);
  for (auto _ : state) {
    blas::dtrsm_ru(n, n, u, b);
    benchmark::DoNotOptimize(b.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      blas::dtrsm_flops(n, n) * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DtrsmRu)->Arg(128)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
