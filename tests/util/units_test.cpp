#include "util/units.hpp"

#include <gtest/gtest.h>

namespace rda::util {
namespace {

TEST(Units, ByteConversions) {
  EXPECT_EQ(KB(1), 1024u);
  EXPECT_EQ(MB(1), 1024u * 1024u);
  EXPECT_EQ(GB(1), 1024ull * 1024ull * 1024ull);
  // The paper's Fig. 4 literal: MB(6.3) for the dgemm working set.
  EXPECT_EQ(MB(6.3), static_cast<std::uint64_t>(6.3 * 1024 * 1024));
  EXPECT_EQ(KB(15360), MB(15));  // Table 1: 15360 KB L3 == 15 MB
}

TEST(Units, RoundTripMb) {
  EXPECT_DOUBLE_EQ(bytes_to_mb(MB(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(bytes_to_mb(0), 0.0);
}

TEST(Units, TimeHelpers) {
  EXPECT_DOUBLE_EQ(ns(1), 1e-9);
  EXPECT_DOUBLE_EQ(us(1), 1e-6);
  EXPECT_DOUBLE_EQ(ms(6), 6e-3);
  EXPECT_DOUBLE_EQ(seconds(2.5), 2.5);
  EXPECT_DOUBLE_EQ(to_ms(ms(6)), 6.0);
  EXPECT_DOUBLE_EQ(to_us(us(9)), 9.0);
  EXPECT_DOUBLE_EQ(to_ns(ns(55)), 55.0);
}

}  // namespace
}  // namespace rda::util
