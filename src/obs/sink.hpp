// TraceSink — the zero-cost-when-disabled hook the schedulers emit into.
//
// Producers (ProgressMonitor, sim::Engine, rt::AdmissionGate) hold a raw
// `TraceSink*` that defaults to nullptr; every emission site is a single
// branch (`if (sink_) sink_->record(...)`), so a run without tracing pays
// one predictable-not-taken test per transition and nothing else. Concrete
// sinks (EventRecorder) must tolerate concurrent record() calls — the
// native gate serializes under its own mutex, but the sink contract does
// not rely on that.
#pragma once

#include "obs/event.hpp"

namespace rda::obs {

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Records one lifecycle event. Must be cheap and non-blocking; called on
  /// the admission hot path.
  virtual void record(const Event& event) = 0;
};

}  // namespace rda::obs
