// Crash-safe file output: write to a same-directory temp file, then rename.
//
// The exporters (Chrome trace, BENCH_*.json, fault-matrix CSV) feed
// downstream tooling that parses whatever sits at the target path. A process
// killed mid-write must never leave a half-written artifact there — rename(2)
// within one directory is atomic, so readers observe either the previous
// complete file or the new complete file, nothing in between.
#pragma once

#include <string>
#include <string_view>

namespace rda::util {

/// Writes `content` to `path` atomically (temp file + rename). Throws
/// util::CheckFailure when the temp file cannot be written or the rename
/// fails; the temp file is removed on failure.
void write_file_atomic(const std::string& path, std::string_view content);

}  // namespace rda::util
