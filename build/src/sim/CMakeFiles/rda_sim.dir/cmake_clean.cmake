file(REMOVE_RECURSE
  "CMakeFiles/rda_sim.dir/assoc_cache.cpp.o"
  "CMakeFiles/rda_sim.dir/assoc_cache.cpp.o.d"
  "CMakeFiles/rda_sim.dir/cache_model.cpp.o"
  "CMakeFiles/rda_sim.dir/cache_model.cpp.o.d"
  "CMakeFiles/rda_sim.dir/engine.cpp.o"
  "CMakeFiles/rda_sim.dir/engine.cpp.o.d"
  "CMakeFiles/rda_sim.dir/perf_model.cpp.o"
  "CMakeFiles/rda_sim.dir/perf_model.cpp.o.d"
  "librda_sim.a"
  "librda_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rda_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
