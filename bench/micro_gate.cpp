// Microbenchmarks of the native userspace admission gate: the cost the
// pp_begin/pp_end API adds around a real progress period.
#include <benchmark/benchmark.h>

#include <future>
#include <thread>
#include <vector>

#include "runtime/gate.hpp"
#include "util/units.hpp"

namespace {

using namespace rda;
using rda::util::MB;

rt::GateConfig config(core::PolicyKind policy) {
  rt::GateConfig cfg;
  cfg.llc_capacity_bytes = static_cast<double>(MB(15));
  cfg.policy = policy;
  return cfg;
}

/// Uncontended begin/end round trip (always admitted).
void BM_GateBeginEnd_Uncontended(benchmark::State& state) {
  rt::AdmissionGate gate(config(core::PolicyKind::kStrict));
  for (auto _ : state) {
    const auto id = gate.begin(ResourceKind::kLLC,
                               static_cast<double>(MB(1)), ReuseLevel::kHigh);
    gate.end(id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GateBeginEnd_Uncontended);

/// try_begin when the request never fits (pure predicate + withdrawal).
void BM_GateTryBegin_Denied(benchmark::State& state) {
  rt::AdmissionGate gate(config(core::PolicyKind::kStrict));
  // Occupy most of the cache from this thread via a held period... a second
  // thread must hold it (one active period per thread).
  std::promise<void> hold, release;
  std::thread holder([&] {
    const auto id = gate.begin(ResourceKind::kLLC,
                               static_cast<double>(MB(12)),
                               ReuseLevel::kHigh);
    hold.set_value();
    release.get_future().wait();
    gate.end(id);
  });
  hold.get_future().wait();
  for (auto _ : state) {
    auto denied = gate.try_begin(ResourceKind::kLLC,
                                 static_cast<double>(MB(8)),
                                 ReuseLevel::kHigh);
    benchmark::DoNotOptimize(denied);
  }
  release.set_value();
  holder.join();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GateTryBegin_Denied);

/// Contended round trips from several threads (within capacity).
void BM_GateBeginEnd_Threads(benchmark::State& state) {
  static rt::AdmissionGate gate(config(core::PolicyKind::kCompromise));
  for (auto _ : state) {
    const auto id = gate.begin(ResourceKind::kLLC,
                               static_cast<double>(MB(1)),
                               ReuseLevel::kHigh);
    gate.end(id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GateBeginEnd_Threads)->Threads(2)->Threads(4);

}  // namespace

BENCHMARK_MAIN();
