// Extension bench: multi-node demand-aware placement (§5's multi-node
// future work).
//
// A heterogeneous mix of processes — large high-reuse working sets and
// small streaming ones — is placed across 2 and 4 nodes by three policies.
// Demand-blind round-robin can stack several large working sets on one
// node's LLC while another node idles its cache; declared-demand placement
// avoids that before the per-node RDA gates even get involved.
#include <cstdio>
#include <vector>

#include "cluster/cluster.hpp"
#include "exp/harness.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace rda;
using rda::util::MB;

void submit_mix(cluster::ClusterScheduler& sched, int nodes) {
  // Periodic submission: each "job row" is one big high-reuse process
  // (7 MB) followed by nodes-1 small streamers (0.5 MB). Such periodic
  // patterns are common (cron fan-outs, batch arrays) and resonate with
  // demand-blind round-robin: every big process lands on the SAME node.
  for (int i = 0; i < 8; ++i) {
    std::vector<sim::PhaseProgram> p;
    p.push_back(sim::ProgramBuilder()
                    .period("big", 6e9, MB(7), ReuseLevel::kHigh)
                    .build());
    sched.add_process(std::move(p));
    for (int s2 = 0; s2 < nodes - 1; ++s2) {
      std::vector<sim::PhaseProgram> q;
      q.push_back(sim::ProgramBuilder()
                      .period("small", 2e8, MB(0.5), ReuseLevel::kLow)
                      .build());
      sched.add_process(std::move(q));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Extension: multi-node demand-aware placement ===\n");
  std::printf("(8 x 7 MB high-reuse + 24 x 0.5 MB streaming processes; "
              "per-node RDA:Strict gates)\n\n");

  // 2 node counts x 3 placement policies = 6 independent cluster runs.
  const std::vector<int> node_counts = {2, 4};
  const std::vector<cluster::PlacementPolicy> policies = {
      cluster::PlacementPolicy::kRoundRobin,
      cluster::PlacementPolicy::kLeastDeclaredLoad,
      cluster::PlacementPolicy::kFirstFitCapacity};
  std::vector<cluster::ClusterResult> results(node_counts.size() *
                                              policies.size());
  exp::run_cells(results.size(), exp::parse_jobs(argc, argv),
                 [&](std::size_t cell) {
                   const int nodes = node_counts[cell / policies.size()];
                   cluster::ClusterConfig cfg;
                   cfg.nodes = nodes;
                   cfg.node.machine = sim::MachineConfig::e5_2420();
                   cfg.use_gate = true;
                   cfg.gate.policy = core::PolicyKind::kStrict;
                   cluster::ClusterScheduler sched(
                       cfg, policies[cell % policies.size()]);
                   submit_mix(sched, nodes);
                   results[cell] = sched.run();
                 });

  for (std::size_t nc = 0; nc < node_counts.size(); ++nc) {
    util::Table table({"placement", "makespan [s]", "GFLOPS", "system J",
                       "procs/node"});
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const cluster::ClusterResult& result =
          results[nc * policies.size() + p];
      std::string spread;
      for (std::size_t n = 0; n < result.processes_per_node.size(); ++n) {
        spread += std::to_string(result.processes_per_node[n]);
        if (n + 1 < result.processes_per_node.size()) spread += "/";
      }
      table.begin_row()
          .add_cell(cluster::to_string(policies[p]))
          .add_cell(result.makespan(), 2)
          .add_cell(result.gflops(), 2)
          .add_cell(result.system_joules(), 0)
          .add_cell(spread);
    }
    std::printf("%d nodes\n%s\n", node_counts[nc], table.render().c_str());
  }
  std::printf("(declared-demand placement balances CACHE pressure, not just "
              "process counts — the same information pp_begin already "
              "carries)\n");
  return 0;
}
