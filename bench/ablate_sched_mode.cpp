// Ablation: baseline scheduler structure — one global runqueue (perfectly
// balanced, the default) vs per-core runqueues with idle stealing (closer
// to real CFS). The paper's results should not depend on this modelling
// choice; this bench verifies that and quantifies migration traffic.
#include <cstdio>

#include "exp/harness.hpp"
#include "util/table.hpp"

namespace {

using namespace rda;

exp::RunRow run(const workload::WorkloadSpec& spec, sim::SchedulerMode mode,
                core::PolicyKind policy) {
  exp::RunConfig cfg;
  cfg.engine.machine = sim::MachineConfig::e5_2420();
  cfg.engine.scheduler = mode;
  cfg.policy = policy;
  return exp::run_workload(spec, cfg);
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = argc > 1 && std::string(argv[1]) == "--full";
  std::printf("=== Ablation: global runqueue vs per-core runqueues ===\n\n");

  const auto specs = workload::table2_workloads();
  for (const char* name : {"BLAS-3", "Water_nsq"}) {
    const workload::WorkloadSpec spec =
        full ? workload::find_workload(specs, name)
             : workload::scale_workload(workload::find_workload(specs, name),
                                        0.25, 2);
    util::Table table({"scheduler", "policy", "GFLOPS", "system J",
                       "ctx switches", "migrations"});
    for (const auto mode : {sim::SchedulerMode::kGlobalQueue,
                            sim::SchedulerMode::kPerCoreQueues}) {
      for (const auto policy : {core::PolicyKind::kLinuxDefault,
                                core::PolicyKind::kStrict}) {
        const exp::RunRow row = run(spec, mode, policy);
        table.begin_row()
            .add_cell(mode == sim::SchedulerMode::kGlobalQueue
                          ? "global queue"
                          : "per-core + stealing")
            .add_cell(row.policy)
            .add_cell(row.gflops, 2)
            .add_cell(row.system_joules, 0)
            .add_cell(row.context_switches)
            .add_cell(row.migrations);
      }
    }
    std::printf("%s\n%s\n", spec.name.c_str(), table.render().c_str());
  }
  std::printf("(the RDA benefit is robust to the baseline scheduler's queue "
              "structure — the interference it removes is in the cache, not "
              "the runqueue)\n");
  return 0;
}
