# Empty dependencies file for ablate_sched_mode.
# This may be replaced when dependencies are built.
