# Empty compiler generated dependencies file for fig13_interference.
# This may be replaced when dependencies are built.
