// The user-level progress-period API (§2.3), paper-shaped.
//
// Applications communicate their just-in-time resource demands through two
// calls (paper Fig. 4):
//
//   double pp_id = pp_begin(RESOURCE_LLC, MB(6.3), REUSE_HIGH);
//   DGEMM(n, A, B, C);
//   pp_end(pp_id);
//
// Multi-resource periods declare a demand VECTOR instead (LLC bytes + DRAM
// bandwidth + watts under a RAPL-style cap):
//
//   const rda::core::ResourceDemand demands[] = {
//       {RESOURCE_LLC, MB(6.3)},
//       {RESOURCE_MEM_BW, 2.0e9},
//       {RESOURCE_ENERGY, 11.0},
//   };
//   double pp_id = pp_begin(demands, REUSE_HIGH);
//
// These free functions bind to one process-wide native AdmissionGate. Call
// pp_configure() once at startup (or accept the Table 1 defaults); every
// thread of the process then uses pp_begin/pp_end around its periods.
// PeriodScope is the RAII form.
#pragma once

#include <cstdint>
#include <span>

#include "common/types.hpp"
#include "runtime/gate.hpp"
#include "util/units.hpp"

namespace rda::api {

/// Installs/replaces the process-wide gate configuration. Not thread-safe
/// against concurrent pp_begin calls — configure before spawning workers.
void pp_configure(const rt::GateConfig& config);

/// The process-wide gate (created on first use with default config).
rt::AdmissionGate& pp_gate();

/// Begins a multi-resource progress period: every declared {resource,
/// amount} pair is admitted atomically (all-or-nothing) under the gate's
/// combining policy. Blocks until admitted. Returns the unique period id.
core::PeriodId pp_begin(std::span<const core::ResourceDemand> demands,
                        ReuseLevel reuse);

/// Single-resource form (the paper's Fig. 4 signature) — forwards to the
/// span overload with a one-element vector.
core::PeriodId pp_begin(ResourceKind resource, std::uint64_t demand_bytes,
                        ReuseLevel reuse);

/// Ends the period identified by `id`.
void pp_end(core::PeriodId id);

/// RAII progress period: begins on construction, ends on destruction.
class PeriodScope {
 public:
  PeriodScope(ResourceKind resource, std::uint64_t demand_bytes,
              ReuseLevel reuse)
      : id_(pp_begin(resource, demand_bytes, reuse)) {}
  PeriodScope(std::span<const core::ResourceDemand> demands, ReuseLevel reuse)
      : id_(pp_begin(demands, reuse)) {}
  ~PeriodScope() { pp_end(id_); }
  PeriodScope(const PeriodScope&) = delete;
  PeriodScope& operator=(const PeriodScope&) = delete;
  core::PeriodId id() const { return id_; }

 private:
  core::PeriodId id_;
};

}  // namespace rda::api
