#include "api/pp.hpp"

#include <memory>
#include <mutex>

namespace rda::api {

namespace {

std::unique_ptr<rt::AdmissionGate>& gate_slot() {
  static std::unique_ptr<rt::AdmissionGate> gate;
  return gate;
}

std::once_flag& gate_once() {
  static std::once_flag flag;
  return flag;
}

}  // namespace

void pp_configure(const rt::GateConfig& config) {
  gate_slot() = std::make_unique<rt::AdmissionGate>(config);
}

rt::AdmissionGate& pp_gate() {
  std::call_once(gate_once(), [] {
    if (!gate_slot()) gate_slot() = std::make_unique<rt::AdmissionGate>();
  });
  return *gate_slot();
}

core::PeriodId pp_begin(ResourceKind resource, std::uint64_t demand_bytes,
                        ReuseLevel reuse) {
  return pp_gate().begin(resource, static_cast<double>(demand_bytes), reuse);
}

void pp_end(core::PeriodId id) { pp_gate().end(id); }

}  // namespace rda::api
