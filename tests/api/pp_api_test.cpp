#include "api/pp.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace rda::api {
namespace {

using rda::util::MB;

// The process-wide gate is shared across tests in this binary; configure it
// once with a known capacity.
class PpApiTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rt::GateConfig cfg;
    cfg.llc_capacity_bytes = static_cast<double>(MB(15));
    cfg.policy = core::PolicyKind::kStrict;
    pp_configure(cfg);
  }
};

TEST_F(PpApiTest, PaperFigure4Shape) {
  // double pp_id = pp_begin(RESOURCE_LLC, MB(6.3), REUSE_HIGH);
  const auto pp_id = pp_begin(RESOURCE_LLC, MB(6.3), REUSE_HIGH);
  EXPECT_NE(pp_id, core::kInvalidPeriod);
  // ... DGEMM(n, A, B, C) would run here ...
  pp_end(pp_id);
}

TEST_F(PpApiTest, SequentialPeriodsGetFreshIds) {
  const auto a = pp_begin(RESOURCE_LLC, MB(1), REUSE_LOW);
  pp_end(a);
  const auto b = pp_begin(RESOURCE_LLC, MB(1), REUSE_LOW);
  pp_end(b);
  EXPECT_NE(a, b);
}

TEST_F(PpApiTest, PeriodScopeIsRaii) {
  {
    PeriodScope scope(RESOURCE_LLC, MB(2), REUSE_MED);
    EXPECT_NE(scope.id(), core::kInvalidPeriod);
    EXPECT_GT(pp_gate().usage(RESOURCE_LLC), 0.0);
  }
  EXPECT_NEAR(pp_gate().usage(RESOURCE_LLC), 0.0, 1e-6);
}

TEST_F(PpApiTest, ConcurrentThreadsSerializeOverCapacity) {
  // Two 10 MB periods cannot overlap under strict/15 MB: the API must
  // serialize them rather than deadlock or oversubscribe.
  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  auto worker = [&] {
    const auto id = pp_begin(RESOURCE_LLC, MB(10), REUSE_HIGH);
    const int now = concurrent.fetch_add(1) + 1;
    int prev = max_concurrent.load();
    while (now > prev && !max_concurrent.compare_exchange_weak(prev, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    concurrent.fetch_sub(1);
    pp_end(id);
  };
  std::thread t1(worker), t2(worker);
  t1.join();
  t2.join();
  EXPECT_EQ(max_concurrent.load(), 1);
}

TEST_F(PpApiTest, MultiResourceSpanShapeFromTheHeaderComment) {
  // The exact calling shape the pp.hpp comment promises: a C array of
  // {resource, amount} pairs passed straight to the span overload.
  rt::GateConfig cfg;
  cfg.llc_capacity_bytes = static_cast<double>(MB(15));
  cfg.bandwidth_capacity = 30e9;
  cfg.energy_capacity_watts = 20.0;
  cfg.policy = core::PolicyKind::kStrict;
  pp_configure(cfg);

  const core::ResourceDemand demands[] = {
      {RESOURCE_LLC, static_cast<double>(MB(6.3))},
      {RESOURCE_MEM_BW, 2.0e9},
      {RESOURCE_ENERGY, 11.0},
  };
  const auto pp_id = pp_begin(demands, REUSE_HIGH);
  EXPECT_NE(pp_id, core::kInvalidPeriod);
  // Every declared kind is charged while the period is open...
  EXPECT_GT(pp_gate().usage(RESOURCE_LLC), 0.0);
  EXPECT_GT(pp_gate().usage(RESOURCE_MEM_BW), 0.0);
  EXPECT_GT(pp_gate().usage(RESOURCE_ENERGY), 0.0);
  pp_end(pp_id);
  // ...and every kind drains at pp_end (all-or-nothing release).
  EXPECT_NEAR(pp_gate().usage(RESOURCE_LLC), 0.0, 1e-6);
  EXPECT_NEAR(pp_gate().usage(RESOURCE_MEM_BW), 0.0, 1e-6);
  EXPECT_NEAR(pp_gate().usage(RESOURCE_ENERGY), 0.0, 1e-6);

  // RAII form over the same span.
  {
    PeriodScope scope(demands, REUSE_HIGH);
    EXPECT_NE(scope.id(), core::kInvalidPeriod);
    EXPECT_GT(pp_gate().usage(RESOURCE_ENERGY), 0.0);
  }
  EXPECT_NEAR(pp_gate().usage(RESOURCE_ENERGY), 0.0, 1e-6);

  // Restore the suite-wide LLC-only configuration for later tests.
  SetUpTestSuite();
}

TEST_F(PpApiTest, ScalarBeginForwardsToTheVectorPath) {
  // The Fig. 4 scalar signature is now a one-element vector: admitting a
  // scalar period must not touch the unconfigured bandwidth/energy rows.
  const auto pp_id = pp_begin(RESOURCE_LLC, MB(3), REUSE_MED);
  EXPECT_NE(pp_id, core::kInvalidPeriod);
  EXPECT_GT(pp_gate().usage(RESOURCE_LLC), 0.0);
  EXPECT_NEAR(pp_gate().usage(RESOURCE_MEM_BW), 0.0, 1e-6);
  EXPECT_NEAR(pp_gate().usage(RESOURCE_ENERGY), 0.0, 1e-6);
  pp_end(pp_id);
}

}  // namespace
}  // namespace rda::api
