// Extension bench (§6 future work): cache partitioning for streaming and
// un-instrumented applications.
//
// Scenario A — streaming hog: BLAS-3-like fitters co-run with streaming
// periods whose working sets exceed the LLC. Without partitioning, RDA
// either serializes behind the forced oversized period or lets it pollute;
// with partitioning the hog is confined to 10% of the cache.
//
// Scenario B — un-instrumented neighbours: annotated fitters co-run with
// legacy processes that never call the API. The unannotated-cap confines
// the legacy processes' occupancy.
#include <cstdio>

#include "core/rda_scheduler.hpp"
#include "exp/harness.hpp"
#include "sim/engine.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace rda;
using rda::util::MB;

struct Outcome {
  double gflops = 0.0;
  double system_joules = 0.0;
  double fitter_finish = 0.0;
};

Outcome run_hog_scenario(bool partition) {
  sim::EngineConfig cfg;
  cfg.machine = sim::MachineConfig::e5_2420();
  sim::Engine engine(cfg);
  core::RdaOptions options;
  options.policy = core::PolicyKind::kStrict;
  options.partitioning.enable = partition;
  options.partitioning.streaming_fraction = 0.10;
  core::RdaScheduler gate(static_cast<double>(cfg.machine.llc_bytes),
                          cfg.calib, options);
  engine.set_gate(&gate);

  // Four streaming hogs (40 MB each) + eight fitters (3 MB, high reuse).
  for (int i = 0; i < 4; ++i) {
    const sim::ProcessId pid = engine.create_process();
    engine.add_thread(pid, sim::ProgramBuilder()
                               .period("stream", 6e9, MB(40),
                                       ReuseLevel::kLow)
                               .build());
  }
  double last_fitter = 0.0;
  for (int i = 0; i < 8; ++i) {
    const sim::ProcessId pid = engine.create_process();
    engine.add_thread(pid, sim::ProgramBuilder()
                               .period("fit", 8e9, MB(3), ReuseLevel::kHigh)
                               .build());
  }
  const sim::SimResult result = engine.run();
  for (std::size_t t = 4; t < result.threads.size(); ++t) {
    last_fitter = std::max(last_fitter, result.threads[t].finish_time);
  }
  Outcome o;
  o.gflops = result.gflops();
  o.system_joules = result.system_joules();
  o.fitter_finish = last_fitter;
  return o;
}

Outcome run_legacy_scenario(double unannotated_cap_mb) {
  sim::EngineConfig cfg;
  cfg.machine = sim::MachineConfig::e5_2420();
  cfg.unannotated_cap_bytes = static_cast<double>(MB(unannotated_cap_mb));
  sim::Engine engine(cfg);
  core::RdaOptions options;
  options.policy = core::PolicyKind::kStrict;
  core::RdaScheduler gate(static_cast<double>(cfg.machine.llc_bytes),
                          cfg.calib, options);
  engine.set_gate(&gate);

  // Six legacy processes (no annotations, 6 MB hot sets) and six annotated
  // fitters.
  for (int i = 0; i < 6; ++i) {
    const sim::ProcessId pid = engine.create_process();
    engine.add_thread(pid, sim::ProgramBuilder()
                               .plain("legacy", 6e9, MB(6), ReuseLevel::kHigh)
                               .build());
  }
  double last_fitter = 0.0;
  for (int i = 0; i < 6; ++i) {
    const sim::ProcessId pid = engine.create_process();
    engine.add_thread(pid, sim::ProgramBuilder()
                               .period("fit", 6e9, MB(2.2), ReuseLevel::kHigh)
                               .build());
  }
  const sim::SimResult result = engine.run();
  for (std::size_t t = 6; t < result.threads.size(); ++t) {
    last_fitter = std::max(last_fitter, result.threads[t].finish_time);
  }
  Outcome o;
  o.gflops = result.gflops();
  o.system_joules = result.system_joules();
  o.fitter_finish = last_fitter;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Extension: cache partitioning (paper §6 future work) "
              "===\n\n");

  // 2 hog-scenario cells + 4 legacy-scenario cells, all independent.
  const std::vector<double> caps = {0.0, 6.0, 3.0, 1.5};
  std::vector<Outcome> hog(2);
  std::vector<Outcome> legacy(caps.size());
  exp::run_cells(hog.size() + legacy.size(), exp::parse_jobs(argc, argv),
                 [&](std::size_t cell) {
                   if (cell < hog.size()) {
                     hog[cell] = run_hog_scenario(cell == 1);
                   } else {
                     const std::size_t c = cell - hog.size();
                     legacy[c] = run_legacy_scenario(caps[c]);
                   }
                 });

  {
    util::Table table({"partitioning", "aggregate GFLOPS", "system J",
                       "fitters done by [s]"});
    for (const bool partition : {false, true}) {
      const Outcome& o = hog[partition ? 1 : 0];
      table.begin_row()
          .add_cell(partition ? "on (hogs -> 10% partition)" : "off")
          .add_cell(o.gflops, 2)
          .add_cell(o.system_joules, 0)
          .add_cell(o.fitter_finish, 2);
    }
    std::printf("scenario A: streaming hogs (40 MB WSS) + high-reuse "
                "fitters\n%s\n",
                table.render().c_str());
  }

  {
    util::Table table({"unannotated cap [MB]", "aggregate GFLOPS",
                       "system J", "fitters done by [s]"});
    for (std::size_t c = 0; c < caps.size(); ++c) {
      const Outcome& o = legacy[c];
      table.begin_row()
          .add_cell(caps[c] == 0.0 ? std::string("off")
                                   : std::to_string(caps[c]))
          .add_cell(o.gflops, 2)
          .add_cell(o.system_joules, 0)
          .add_cell(o.fitter_finish, 2);
    }
    std::printf("scenario B: un-instrumented neighbours vs annotated "
                "fitters\n%s",
                table.render().c_str());
  }
  return 0;
}
