// Microbenchmarks of the simulator itself: how fast a Table-2-scale run
// executes, and how the gate path affects engine throughput.
#include <benchmark/benchmark.h>

#include "core/rda_scheduler.hpp"
#include "sim/engine.hpp"
#include "util/units.hpp"

namespace {

using namespace rda;
using rda::util::MB;

sim::PhaseProgram make_program(int phases, double flops_per_phase) {
  sim::ProgramBuilder b;
  for (int i = 0; i < phases; ++i) {
    b.period("p", flops_per_phase, MB(2), ReuseLevel::kHigh);
  }
  return b.build();
}

void BM_EngineBaseline(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EngineConfig cfg;
    cfg.machine = sim::MachineConfig::e5_2420();
    sim::Engine engine(cfg);
    for (int t = 0; t < threads; ++t) {
      const sim::ProcessId pid = engine.create_process();
      engine.add_thread(pid, make_program(4, 5e7));
    }
    const sim::SimResult result = engine.run();
    benchmark::DoNotOptimize(result.system_joules());
    state.counters["sim_seconds"] = result.makespan;
  }
}
BENCHMARK(BM_EngineBaseline)->Arg(12)->Arg(48)->Arg(96)
    ->Unit(benchmark::kMillisecond);

void BM_EngineWithGate(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EngineConfig cfg;
    cfg.machine = sim::MachineConfig::e5_2420();
    sim::Engine engine(cfg);
    core::RdaOptions options;
    options.policy = core::PolicyKind::kStrict;
    core::RdaScheduler gate(static_cast<double>(cfg.machine.llc_bytes),
                            cfg.calib, options);
    engine.set_gate(&gate);
    for (int t = 0; t < threads; ++t) {
      const sim::ProcessId pid = engine.create_process();
      engine.add_thread(pid, make_program(4, 5e7));
    }
    const sim::SimResult result = engine.run();
    benchmark::DoNotOptimize(result.system_joules());
  }
}
BENCHMARK(BM_EngineWithGate)->Arg(12)->Arg(48)->Arg(96)
    ->Unit(benchmark::kMillisecond);

void BM_EnginePhaseChurn(benchmark::State& state) {
  // Many tiny marked phases: stresses the phase-boundary state machine
  // (the Fig. 11 inner-loop regime).
  const int phases = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EngineConfig cfg;
    cfg.machine = sim::MachineConfig::e5_2420();
    sim::Engine engine(cfg);
    core::RdaOptions options;
    options.policy = core::PolicyKind::kStrict;
    options.fast_path = true;
    core::RdaScheduler gate(static_cast<double>(cfg.machine.llc_bytes),
                            cfg.calib, options);
    engine.set_gate(&gate);
    const sim::ProcessId pid = engine.create_process();
    engine.add_thread(pid, make_program(phases, 1e5));
    const sim::SimResult result = engine.run();
    benchmark::DoNotOptimize(result.makespan);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EnginePhaseChurn)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
