#include "core/progress_monitor.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"
#include "util/units.hpp"

namespace rda::core {
namespace {

using rda::util::MB;

/// Fixture wiring monitor + strict/compromise policy + a wake recorder.
class MonitorFixture {
 public:
  explicit MonitorFixture(PolicyKind kind, MonitorOptions options = {})
      : policy_(make_policy(kind, 2.0)),
        predicate_(*policy_, resources_),
        monitor_(predicate_, resources_, options) {
    resources_.set_capacity(ResourceKind::kLLC, static_cast<double>(MB(15)));
    resources_.set_admission_bound(
        ResourceKind::kLLC,
        policy_->admission_bound(static_cast<double>(MB(15))));
    monitor_.set_waker([this](sim::ThreadId tid) { woken_.push_back(tid); });
  }

  ProgressMonitor::BeginOutcome begin(sim::ThreadId thread,
                                      sim::ProcessId process, double mb) {
    PeriodRecord r;
    r.thread = thread;
    r.process = process;
    r.set_single(ResourceKind::kLLC, static_cast<double>(MB(mb)));
    r.reuse = ReuseLevel::kHigh;
    return monitor_.begin_period(std::move(r), now_ += 1.0);
  }

  void end(PeriodId id) { monitor_.end_period(id, now_ += 1.0); }

  double usage() const { return resources_.usage(ResourceKind::kLLC); }

  ResourceMonitor resources_;
  std::unique_ptr<SchedulingPolicy> policy_;
  SchedulingPredicate predicate_;
  ProgressMonitor monitor_;
  std::vector<sim::ThreadId> woken_;
  double now_ = 0.0;
};

TEST(ProgressMonitor, AdmitsWhileCapacityLasts) {
  MonitorFixture fx(PolicyKind::kStrict);
  EXPECT_TRUE(fx.begin(1, 1, 6.0).admitted);
  EXPECT_TRUE(fx.begin(2, 2, 6.0).admitted);
  EXPECT_NEAR(fx.usage(), static_cast<double>(MB(12)), 1.0);
  // Third 6 MB request exceeds 15 MB: parked.
  const auto third = fx.begin(3, 3, 6.0);
  EXPECT_FALSE(third.admitted);
  EXPECT_EQ(fx.monitor_.waitlist().size(), 1u);
  EXPECT_NEAR(fx.usage(), static_cast<double>(MB(12)), 1.0);  // unchanged
}

TEST(ProgressMonitor, EndReleasesAndWakesFifo) {
  MonitorFixture fx(PolicyKind::kStrict);
  const auto a = fx.begin(1, 1, 8.0);
  const auto b = fx.begin(2, 2, 8.0);  // parked
  const auto c = fx.begin(3, 3, 8.0);  // parked
  ASSERT_TRUE(a.admitted);
  ASSERT_FALSE(b.admitted);
  ASSERT_FALSE(c.admitted);
  fx.end(a.id);
  // Only one 8 MB fits; FIFO means thread 2 first.
  ASSERT_EQ(fx.woken_.size(), 1u);
  EXPECT_EQ(fx.woken_[0], 2u);
  EXPECT_EQ(fx.monitor_.waitlist().size(), 1u);
  fx.end(b.id);
  ASSERT_EQ(fx.woken_.size(), 2u);
  EXPECT_EQ(fx.woken_[1], 3u);
}

TEST(ProgressMonitor, WorkConservingScanSkipsBigHead) {
  MonitorFixture fx(PolicyKind::kStrict);
  const auto a = fx.begin(1, 1, 10.0);
  const auto big = fx.begin(2, 2, 14.0);  // parked (needs 14)
  const auto small = fx.begin(3, 3, 6.0); // parked (only 5 left)
  ASSERT_TRUE(a.admitted);
  ASSERT_FALSE(big.admitted);
  ASSERT_FALSE(small.admitted);
  fx.end(a.id);
  // 15 MB free: big (14) fits and is taken first; small (6) no longer fits.
  ASSERT_EQ(fx.woken_.size(), 1u);
  EXPECT_EQ(fx.woken_[0], 2u);
  fx.end(big.id);
  ASSERT_EQ(fx.woken_.size(), 2u);
  EXPECT_EQ(fx.woken_[1], 3u);
}

TEST(ProgressMonitor, HeadOnlyScanPreservesArrivalOrder) {
  MonitorOptions options;
  options.work_conserving = false;
  MonitorFixture fx(PolicyKind::kStrict, options);
  const auto a = fx.begin(1, 1, 10.0);
  fx.begin(2, 2, 14.0);                    // parked head
  const auto small = fx.begin(3, 3, 6.0);  // parked behind the head
  (void)small;
  ASSERT_TRUE(a.admitted);
  EXPECT_EQ(fx.monitor_.waitlist().size(), 2u);
  fx.end(a.id);
  // Head-only: the 14 MB head is admitted, then scanning stops; the 6 MB
  // entry stays queued (it would not fit anyway, but head-only would not
  // even look).
  ASSERT_EQ(fx.woken_.size(), 1u);
  EXPECT_EQ(fx.woken_[0], 2u);
  EXPECT_EQ(fx.monitor_.waitlist().size(), 1u);
}

TEST(ProgressMonitor, CompromiseAllowsOversubscription) {
  MonitorFixture fx(PolicyKind::kCompromise);
  // 2x15 = 30 MB allowed.
  EXPECT_TRUE(fx.begin(1, 1, 12.0).admitted);
  EXPECT_TRUE(fx.begin(2, 2, 12.0).admitted);
  EXPECT_TRUE(fx.begin(3, 3, 6.0).admitted);  // exactly 30
  EXPECT_FALSE(fx.begin(4, 4, 1.0).admitted);
}

TEST(ProgressMonitor, OversizedDemandForcedWhenAlone) {
  MonitorFixture fx(PolicyKind::kStrict);
  // 20 MB > capacity, but nothing else is running: liveness override.
  const auto outcome = fx.begin(1, 1, 20.0);
  EXPECT_TRUE(outcome.admitted);
  EXPECT_TRUE(outcome.forced);
  EXPECT_EQ(fx.monitor_.stats().forced_admissions, 1u);
}

TEST(ProgressMonitor, OversizedDemandWaitsThenForced) {
  MonitorFixture fx(PolicyKind::kStrict);
  const auto small = fx.begin(1, 1, 4.0);
  const auto big = fx.begin(2, 2, 20.0);  // cannot ever fit normally
  ASSERT_TRUE(small.admitted);
  ASSERT_FALSE(big.admitted);
  fx.end(small.id);
  // Resource empty -> head force-admitted.
  ASSERT_EQ(fx.woken_.size(), 1u);
  EXPECT_EQ(fx.woken_[0], 2u);
  fx.end(big.id);
  EXPECT_NEAR(fx.usage(), 0.0, 1e-6);
}

TEST(ProgressMonitor, EndOfWaitlistedPeriodRejected) {
  MonitorFixture fx(PolicyKind::kStrict);
  const auto a = fx.begin(1, 1, 10.0);
  const auto parked = fx.begin(2, 2, 10.0);
  ASSERT_TRUE(a.admitted);
  ASSERT_FALSE(parked.admitted);
  // Ending a period that never ran is a caller bug.
  EXPECT_THROW(fx.end(parked.id), util::CheckFailure);
}

TEST(ProgressMonitor, CancelWaitingWithdrawsRequest) {
  MonitorFixture fx(PolicyKind::kStrict);
  const auto a = fx.begin(1, 1, 10.0);
  const auto parked = fx.begin(2, 2, 10.0);
  EXPECT_TRUE(fx.monitor_.cancel_waiting(parked.id, 1.0));
  EXPECT_EQ(fx.monitor_.waitlist().size(), 0u);
  EXPECT_EQ(fx.monitor_.stats().cancels, 1u);
  // Cancelling an admitted or unknown period fails.
  EXPECT_FALSE(fx.monitor_.cancel_waiting(a.id, 1.0));
  EXPECT_FALSE(fx.monitor_.cancel_waiting(9999, 1.0));
  EXPECT_EQ(fx.monitor_.stats().cancels, 1u);
  fx.end(a.id);
  EXPECT_TRUE(fx.woken_.empty());  // nobody left to wake
}

// Regression: a timed-out / withdrawn waiter used to leave its pool
// disabled (§3.4) with nobody left to re-enable it — every later member
// request parked forever unless some unrelated end_period happened to run
// a rescan. cancel_waiting must rescan, which clears a pool whose last
// waiting member just left.
TEST(ProgressMonitor, CancelReenablesStrandedPool) {
  MonitorOptions options;
  options.pool_guard = true;
  MonitorFixture fx(PolicyKind::kStrict, options);
  fx.monitor_.mark_pool(7);
  const auto solo = fx.begin(1, 1, 12.0);
  ASSERT_TRUE(solo.admitted);
  // Pool member denied (12 + 5 > 15): pool disabled, member parked.
  const auto m1 = fx.begin(10, 7, 5.0);
  ASSERT_FALSE(m1.admitted);
  ASSERT_TRUE(fx.monitor_.pool_disabled(7));
  // The member gives up (begin_for timeout). No pool member waits anymore,
  // so the pool must come back out of the §3.4 pause.
  ASSERT_TRUE(fx.monitor_.cancel_waiting(m1.id, fx.now_));
  EXPECT_FALSE(fx.monitor_.pool_disabled(7));
  // A fitting member request (12 + 2 < 15) is admitted immediately again.
  const auto m2 = fx.begin(11, 7, 2.0);
  EXPECT_TRUE(m2.admitted);
}

// Regression companion: cancelling one member of a paused pool shrinks the
// group's demand sum — the remaining members may now fit as a group, so
// cancel_waiting must rescan instead of leaving them parked until some
// unrelated end_period.
TEST(ProgressMonitor, CancelShrinksPoolGroupAndAdmitsRest) {
  MonitorOptions options;
  options.pool_guard = true;
  MonitorFixture fx(PolicyKind::kStrict, options);
  fx.monitor_.mark_pool(7);
  const auto solo = fx.begin(1, 1, 10.0);
  ASSERT_TRUE(solo.admitted);
  // m1 denied (10 + 8 > 15): pool disabled; m2 parks behind the pause.
  const auto m1 = fx.begin(10, 7, 8.0);
  const auto m2 = fx.begin(11, 7, 4.0);
  ASSERT_FALSE(m1.admitted);
  ASSERT_FALSE(m2.admitted);
  ASSERT_TRUE(fx.monitor_.pool_disabled(7));
  // m1 gives up. The remaining group sum (4 MB) fits next to the solo
  // 10 MB, so the rescan admits the rest of the pool right now.
  ASSERT_TRUE(fx.monitor_.cancel_waiting(m1.id, fx.now_));
  EXPECT_FALSE(fx.monitor_.pool_disabled(7));
  ASSERT_EQ(fx.woken_.size(), 1u);
  EXPECT_EQ(fx.woken_[0], 11u);
  fx.end(solo.id);
  fx.end(m2.id);
  EXPECT_NEAR(fx.usage(), 0.0, 1e-6);
}

TEST(ProgressMonitor, PoolDisabledOnFirstDenial) {
  MonitorOptions options;
  options.pool_guard = true;
  MonitorFixture fx(PolicyKind::kStrict, options);
  fx.monitor_.mark_pool(7);
  const auto solo = fx.begin(1, 1, 12.0);
  ASSERT_TRUE(solo.admitted);
  // Pool member denied -> pool disabled.
  const auto m1 = fx.begin(10, 7, 5.0);
  EXPECT_FALSE(m1.admitted);
  EXPECT_TRUE(fx.monitor_.pool_disabled(7));
  EXPECT_EQ(fx.monitor_.stats().pool_disables, 1u);
  // Another member would individually fit (3 < 15-12) but the pool is
  // disabled: parked too (§3.4 "disables the whole thread pool").
  const auto m2 = fx.begin(11, 7, 2.9);
  EXPECT_FALSE(m2.admitted);
  // Release: 5 + 2.9 fits into 15 -> whole group admitted together.
  fx.end(solo.id);
  EXPECT_FALSE(fx.monitor_.pool_disabled(7));
  ASSERT_EQ(fx.woken_.size(), 2u);
  EXPECT_EQ(fx.monitor_.stats().pool_group_admissions, 1u);
}

TEST(ProgressMonitor, PoolWaitsUntilWholeGroupFits) {
  MonitorOptions options;
  options.pool_guard = true;
  MonitorFixture fx(PolicyKind::kStrict, options);
  fx.monitor_.mark_pool(7);
  const auto a = fx.begin(1, 1, 8.0);
  const auto b = fx.begin(2, 2, 6.0);
  // Two pool members of 6 MB each: group needs 12.
  const auto m1 = fx.begin(10, 7, 6.0);
  const auto m2 = fx.begin(11, 7, 6.0);
  (void)m1;
  (void)m2;
  ASSERT_TRUE(a.admitted);
  ASSERT_TRUE(b.admitted);
  // Ending b leaves 8 used, 7 free: group (12) still does not fit.
  fx.end(b.id);
  EXPECT_TRUE(fx.monitor_.pool_disabled(7));
  EXPECT_TRUE(fx.woken_.empty());
  // Ending a frees everything: group fits now.
  fx.end(a.id);
  EXPECT_FALSE(fx.monitor_.pool_disabled(7));
  EXPECT_EQ(fx.woken_.size(), 2u);
}

TEST(ProgressMonitor, PoolGuardOffTreatsMembersIndividually) {
  MonitorOptions options;
  options.pool_guard = false;
  MonitorFixture fx(PolicyKind::kStrict, options);
  fx.monitor_.mark_pool(7);
  const auto solo = fx.begin(1, 1, 12.0);
  ASSERT_TRUE(solo.admitted);
  EXPECT_FALSE(fx.begin(10, 7, 5.0).admitted);
  // With the guard off, a fitting member is admitted individually.
  EXPECT_TRUE(fx.begin(11, 7, 2.0).admitted);
  EXPECT_FALSE(fx.monitor_.pool_disabled(7));
}

TEST(ProgressMonitor, StatsTrackLifecycle) {
  MonitorFixture fx(PolicyKind::kStrict);
  const auto a = fx.begin(1, 1, 10.0);
  const auto b = fx.begin(2, 2, 10.0);
  fx.end(a.id);
  fx.end(b.id);
  const MonitorStats& s = fx.monitor_.stats();
  EXPECT_EQ(s.begins, 2u);
  EXPECT_EQ(s.ends, 2u);
  EXPECT_EQ(s.immediate_admissions, 1u);
  EXPECT_EQ(s.blocks, 1u);
  EXPECT_EQ(s.wakes, 1u);
}

TEST(ProgressMonitor, CascadingAdmissionsOnOneRelease) {
  MonitorFixture fx(PolicyKind::kStrict);
  const auto big = fx.begin(1, 1, 14.0);
  const auto s1 = fx.begin(2, 2, 5.0);
  const auto s2 = fx.begin(3, 3, 5.0);
  const auto s3 = fx.begin(4, 4, 4.0);
  (void)s1;
  (void)s2;
  (void)s3;
  fx.end(big.id);
  // All three small periods (14 MB total) fit after the big one leaves.
  EXPECT_EQ(fx.woken_.size(), 3u);
}

}  // namespace
}  // namespace rda::core
