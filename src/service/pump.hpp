// ServicePump — the wall-clock half of the front end: real producer
// threads push admission work at a fleet of AdmissionCores through the
// sharded MPSC queues, and the measurement compares the submission
// disciplines at equal offered load:
//
//   * per-call:  every producer calls admit()/release() itself — each op
//                pays its own slow-lane mutex acquisition and rescan;
//   * batched:   producers only push; `shards` drain threads each own a
//                disjoint set of queues AND nodes (drainer s owns the
//                nodes with n % shards == s) and issue
//                admit_batch()/release_batch() per node, amortizing the
//                slow-lane lock, the waitlist rescan, and the wake
//                delivery across the whole batch. Because ops are routed
//                to a shard's queue AT PUSH TIME by their node, no drainer
//                ever touches another drainer's queue tail or cores — the
//                wall-clock realization of the DESIGN §16 sharded drain.
//
// The pump pins the core in the slow-lane regime on purpose: `squatters`
// parked waiters (demands that can never co-fit) keep the waitlist
// non-empty, which is exactly the backlogged-service state the batching
// optimization targets — a calm core would serve both disciplines from the
// lock-free lane and there would be nothing to amortize.
#pragma once

#include <cstdint>

#include "core/admission.hpp"

namespace rda::service {

struct PumpConfig {
  int producers = 4;
  std::uint64_t ops_per_producer = 100000;
  /// false = per-call discipline (the baseline the bench compares against).
  bool batched = true;
  /// Admission cores (nodes); op → node is id % nodes. Every node gets its
  /// own squatters so EVERY core sits in the slow-lane regime.
  int nodes = 1;
  /// Drain threads (batched mode only): drainer s owns queue s and the
  /// nodes with n % shards == s. Extra shards beyond the node count own
  /// nothing and exit immediately.
  int shards = 1;
  std::size_t batch_max = 1024;
  std::size_t queue_capacity = 1 << 16;
  double llc_capacity_bytes = 15360.0 * 1024.0;
  /// Per-op demand as a fraction of capacity (small: every op admits).
  double demand_fraction = 1.0e-4;
  /// Parked waiters that hold the core in the slow lane. 0 = calm core.
  int squatters = 2;
};

struct PumpResult {
  std::uint64_t ops = 0;      ///< admit+release pairs completed
  double seconds = 0.0;       ///< wall-clock time of the working phase
  double mops = 0.0;          ///< ops / seconds / 1e6
};

/// Runs one pump measurement. Spawns `producers` threads (+`shards`
/// drainers when batched) and blocks until every op is admitted AND
/// released on its node.
PumpResult run_pump(const PumpConfig& config);

}  // namespace rda::service
