// Machine-drift calibration shared by the self-timing bench binaries
// (micro_gate, service_load). The container's effective CPU speed drifts
// between runs (micro_sim_engine measured the same committed code at 1367.3
// and later 1801.2 ns/step — a 1.32x swing with zero code change), so an
// absolute-ns regression gate flags machine weather as regression. The
// kernel below exercises the same primitives as the admission hot path
// (uncontended mutex, atomic RMW, unordered_map insert/erase, small vector
// alloc); its measured cost today divided by kCalibBaselineNs estimates the
// drift, and gates compare against the drift-scaled baseline.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace rda::bench {

/// Calibration-kernel cost on the machine state that produced micro_gate's
/// 189 ns pre-refactor baseline. Anchor derivation: 42.2 ns measured
/// alongside a 1801.2/1367.3 = 1.317x sim-engine drift => 42.2 / 1.317.
constexpr double kCalibBaselineNs = 32.0;

inline double ns_since(std::chrono::steady_clock::time_point start,
                       std::uint64_t iters) {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now() - start)
             .count() /
         static_cast<double>(iters);
}

/// Fixed CPU-bound reference kernel; see kCalibBaselineNs. Must never be
/// edited without re-anchoring that constant.
inline double bench_calibration() {
  constexpr std::uint64_t kIters = 200'000;
  std::mutex mu;
  std::atomic<std::uint64_t> counter{0};
  std::unordered_map<std::uint64_t, std::uint64_t> map;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kIters; ++i) {
    {
      std::lock_guard<std::mutex> lock(mu);
      counter.fetch_add(1);
    }
    map.emplace(i, counter.load());
    map.erase(i);
    std::vector<double> v(1, 1.0);
    counter.fetch_add(static_cast<std::uint64_t>(v[0]));
  }
  return ns_since(t0, kIters);
}

}  // namespace rda::bench
