#include "core/resource_monitor.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/units.hpp"

namespace rda::core {
namespace {

using rda::util::MB;

TEST(ResourceMonitor, CapacityAndRemaining) {
  ResourceMonitor m;
  m.set_capacity(ResourceKind::kLLC, MB(15));
  EXPECT_DOUBLE_EQ(m.capacity(ResourceKind::kLLC),
                   static_cast<double>(MB(15)));
  EXPECT_DOUBLE_EQ(m.usage(ResourceKind::kLLC), 0.0);
  EXPECT_DOUBLE_EQ(m.remaining(ResourceKind::kLLC),
                   static_cast<double>(MB(15)));
}

TEST(ResourceMonitor, IncrementDecrementRoundTrip) {
  ResourceMonitor m;
  m.set_capacity(ResourceKind::kLLC, MB(15));
  m.increment_load(ResourceKind::kLLC, MB(6.3));
  EXPECT_DOUBLE_EQ(m.usage(ResourceKind::kLLC), static_cast<double>(MB(6.3)));
  m.increment_load(ResourceKind::kLLC, MB(2));
  m.decrement_load(ResourceKind::kLLC, MB(6.3));
  EXPECT_NEAR(m.usage(ResourceKind::kLLC), static_cast<double>(MB(2)), 1e-6);
  m.decrement_load(ResourceKind::kLLC, MB(2));
  EXPECT_NEAR(m.usage(ResourceKind::kLLC), 0.0, 1e-6);
}

TEST(ResourceMonitor, UsageMayExceedCapacity) {
  // Oversubscription is a policy question, not the monitor's: Compromise
  // deliberately lets usage exceed capacity.
  ResourceMonitor m;
  m.set_capacity(ResourceKind::kLLC, MB(15));
  m.increment_load(ResourceKind::kLLC, MB(20));
  EXPECT_GT(m.usage(ResourceKind::kLLC), m.capacity(ResourceKind::kLLC));
  EXPECT_LT(m.remaining(ResourceKind::kLLC), 0.0);
}

TEST(ResourceMonitor, UnderflowDetected) {
  ResourceMonitor m;
  m.set_capacity(ResourceKind::kLLC, MB(15));
  m.increment_load(ResourceKind::kLLC, MB(1));
  EXPECT_THROW(m.decrement_load(ResourceKind::kLLC, MB(2)),
               util::CheckFailure);
}

TEST(ResourceMonitor, NegativeDemandRejected) {
  ResourceMonitor m;
  m.set_capacity(ResourceKind::kLLC, MB(15));
  EXPECT_THROW(m.increment_load(ResourceKind::kLLC, -1.0),
               util::CheckFailure);
  EXPECT_THROW(m.decrement_load(ResourceKind::kLLC, -1.0),
               util::CheckFailure);
}

TEST(ResourceMonitor, ResourcesAreIndependent) {
  ResourceMonitor m;
  m.set_capacity(ResourceKind::kLLC, MB(15));
  m.set_capacity(ResourceKind::kMemBandwidth, 30e9);
  m.increment_load(ResourceKind::kLLC, MB(3));
  EXPECT_DOUBLE_EQ(m.usage(ResourceKind::kMemBandwidth), 0.0);
  m.increment_load(ResourceKind::kMemBandwidth, 10e9);
  EXPECT_DOUBLE_EQ(m.usage(ResourceKind::kLLC), static_cast<double>(MB(3)));
}

TEST(ResourceMonitor, VersionBumpsOnEveryChange) {
  ResourceMonitor m;
  const std::uint64_t v0 = m.version();
  m.set_capacity(ResourceKind::kLLC, MB(15));
  const std::uint64_t v1 = m.version();
  EXPECT_GT(v1, v0);
  m.increment_load(ResourceKind::kLLC, 100.0);
  const std::uint64_t v2 = m.version();
  EXPECT_GT(v2, v1);
  m.decrement_load(ResourceKind::kLLC, 100.0);
  EXPECT_GT(m.version(), v2);
}

TEST(ResourceMonitor, ZeroCapacityRejected) {
  ResourceMonitor m;
  EXPECT_THROW(m.set_capacity(ResourceKind::kLLC, 0.0), util::CheckFailure);
  EXPECT_THROW(m.set_capacity(ResourceKind::kLLC, -5.0), util::CheckFailure);
}

}  // namespace
}  // namespace rda::core
