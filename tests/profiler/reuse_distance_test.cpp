#include "profiler/reuse_distance.hpp"

#include <gtest/gtest.h>

#include "trace/generators.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace rda::prof {
namespace {

using rda::util::KB;

TEST(ReuseDistance, EmptyAnalyzer) {
  ReuseDistanceAnalyzer rd;
  EXPECT_EQ(rd.total_accesses(), 0u);
  EXPECT_EQ(rd.cold_misses(), 0u);
  EXPECT_DOUBLE_EQ(rd.miss_ratio(KB(64)), 0.0);
  EXPECT_EQ(rd.working_set_bytes(), 0u);
}

TEST(ReuseDistance, ImmediateReuseIsDistanceZero) {
  ReuseDistanceAnalyzer rd(64);
  rd.access(0x100);
  rd.access(0x100);
  rd.access(0x120);  // same 64B line
  EXPECT_EQ(rd.total_accesses(), 3u);
  EXPECT_EQ(rd.cold_misses(), 1u);
  ASSERT_GE(rd.histogram().size(), 1u);
  EXPECT_EQ(rd.histogram()[0], 2u);  // two distance-0 reuses
}

TEST(ReuseDistance, ClassicStackDistances) {
  // Access pattern A B C A: A's reuse distance is 2 (B and C in between).
  ReuseDistanceAnalyzer rd(64);
  rd.access(0 * 64);
  rd.access(1 * 64);
  rd.access(2 * 64);
  rd.access(0 * 64);
  ASSERT_GE(rd.histogram().size(), 3u);
  EXPECT_EQ(rd.histogram()[2], 1u);
  // A B B A: distance of the second A is 1 (only B between, counted once).
  ReuseDistanceAnalyzer rd2(64);
  rd2.access(0 * 64);
  rd2.access(1 * 64);
  rd2.access(1 * 64);
  rd2.access(0 * 64);
  ASSERT_GE(rd2.histogram().size(), 2u);
  EXPECT_EQ(rd2.histogram()[1], 1u);
}

TEST(ReuseDistance, CyclicSweepDistanceEqualsFootprint) {
  // Sweeping N lines cyclically gives every reuse distance N-1.
  const std::uint64_t n = 100;
  ReuseDistanceAnalyzer rd(64);
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t i = 0; i < n; ++i) rd.access(i * 64);
  }
  EXPECT_EQ(rd.cold_misses(), n);
  ASSERT_GE(rd.histogram().size(), n);
  EXPECT_EQ(rd.histogram()[n - 1], 2 * n);  // two reuse passes
  // LRU cache of n lines: everything after warm-up hits.
  EXPECT_EQ(rd.hits_with_cache_lines(n), 2 * n);
  // Cache one line smaller: cyclic sweep thrashes, zero hits.
  EXPECT_EQ(rd.hits_with_cache_lines(n - 1), 0u);
}

TEST(ReuseDistance, MissRatioMonotoneInCacheSize) {
  util::Rng rng(3);
  ReuseDistanceAnalyzer rd(64);
  for (int i = 0; i < 50000; ++i) {
    rd.access(rng.next_below(KB(256)));
  }
  double prev = 1.1;
  for (std::uint64_t kb = 4; kb <= 512; kb *= 2) {
    const double mr = rd.miss_ratio(KB(kb));
    EXPECT_LE(mr, prev + 1e-12);
    prev = mr;
  }
}

TEST(ReuseDistance, WorkingSetOfUniformRandomIsRegionSize) {
  // Uniform random over 64 KB: miss ratio stays high until the cache holds
  // the whole region, so the knee is ~the region size.
  util::Rng rng(4);
  ReuseDistanceAnalyzer rd(64);
  for (int i = 0; i < 200000; ++i) {
    rd.access(rng.next_below(KB(64)));
  }
  const std::uint64_t ws = rd.working_set_bytes(0.02);
  EXPECT_GE(ws, KB(48));
  EXPECT_LE(ws, KB(72));
}

TEST(ReuseDistance, HotColdWorkingSetIsHotSubset) {
  // 95% of accesses in an 8 KB hot subset of a 64 KB region: the 5%-slack
  // working set is close to the hot subset, far below the footprint.
  trace::RegionSpec spec;
  spec.base = 0;
  spec.size_bytes = KB(64);
  spec.pattern = trace::Pattern::kHotCold;
  spec.hot_fraction = 0.125;
  spec.hot_probability = 0.95;
  spec.access_granularity = 64;
  trace::RegionAccessSource src(spec, 200000, 5);
  ReuseDistanceAnalyzer rd(64);
  rd.consume(src);
  const std::uint64_t ws = rd.working_set_bytes(0.06);
  EXPECT_LE(ws, KB(16));
  EXPECT_GE(ws, KB(4));
}

TEST(ReuseDistance, CompactionPreservesDistances) {
  // Long trace over a small footprint forces many compactions; distances
  // must match the no-compaction ground truth (cyclic sweep of 8 lines).
  ReuseDistanceAnalyzer rd(64);
  const std::uint64_t n = 8;
  const int passes = 100000;  // clock >> unique -> repeated renumbering
  for (int pass = 0; pass < passes; ++pass) {
    for (std::uint64_t i = 0; i < n; ++i) rd.access(i * 64);
  }
  ASSERT_GE(rd.histogram().size(), n);
  EXPECT_EQ(rd.histogram()[n - 1],
            static_cast<std::uint64_t>(passes - 1) * n);
  EXPECT_EQ(rd.cold_misses(), n);
}

TEST(ReuseDistance, AgreesWithAssociativeCacheOnFittingSet) {
  // Cross-validation: for a working set that fits, the reuse-distance hit
  // count equals a fully-warm LRU cache's (modulo associativity conflicts,
  // so compare against the fully-associative bound).
  const std::uint64_t lines = 256;
  ReuseDistanceAnalyzer rd(64);
  for (int pass = 0; pass < 5; ++pass) {
    for (std::uint64_t i = 0; i < lines; ++i) rd.access(i * 64);
  }
  EXPECT_EQ(rd.hits_with_cache_lines(lines), 4 * lines);
}

}  // namespace
}  // namespace rda::prof
