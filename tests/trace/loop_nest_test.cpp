#include "trace/loop_nest.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace rda::trace {
namespace {

LoopNest make_gemm_nest(LoopId* i, LoopId* j, LoopId* k) {
  // dgemm's classic three-deep nest (the paper's Fig. 11 subject).
  LoopNest nest;
  *i = nest.add_loop("dgemm.i", 0x1000, 0x2000);
  *j = nest.add_nested(*i, "dgemm.j", 0x1100, 0x1e00);
  *k = nest.add_nested(*j, "dgemm.k", 0x1200, 0x1c00);
  return nest;
}

TEST(LoopNest, InnermostQueryPicksDeepest) {
  LoopId i, j, k;
  const LoopNest nest = make_gemm_nest(&i, &j, &k);
  EXPECT_EQ(nest.innermost_containing(0x1500), k);
  EXPECT_EQ(nest.innermost_containing(0x1d00), j);  // in j, outside k
  EXPECT_EQ(nest.innermost_containing(0x1f00), i);  // in i only
  EXPECT_FALSE(nest.innermost_containing(0x5000).has_value());
}

TEST(LoopNest, OutermostQueryPicksTopLevel) {
  LoopId i, j, k;
  const LoopNest nest = make_gemm_nest(&i, &j, &k);
  EXPECT_EQ(nest.outermost_containing(0x1500), i);
  EXPECT_FALSE(nest.outermost_containing(0x0).has_value());
}

TEST(LoopNest, OutermostAncestorWalksUp) {
  LoopId i, j, k;
  const LoopNest nest = make_gemm_nest(&i, &j, &k);
  EXPECT_EQ(nest.outermost_ancestor(k), i);
  EXPECT_EQ(nest.outermost_ancestor(j), i);
  EXPECT_EQ(nest.outermost_ancestor(i), i);
}

TEST(LoopNest, DepthsAssigned) {
  LoopId i, j, k;
  const LoopNest nest = make_gemm_nest(&i, &j, &k);
  EXPECT_EQ(nest.loop(i).depth, 0);
  EXPECT_EQ(nest.loop(j).depth, 1);
  EXPECT_EQ(nest.loop(k).depth, 2);
  EXPECT_EQ(nest.loop(j).parent, i);
}

TEST(LoopNest, SiblingTopLevelLoops) {
  LoopNest nest;
  const LoopId a = nest.add_loop("phase1", 0x100, 0x200);
  const LoopId b = nest.add_loop("phase2", 0x300, 0x400);
  EXPECT_EQ(nest.outermost_containing(0x150), a);
  EXPECT_EQ(nest.outermost_containing(0x350), b);
  EXPECT_EQ(nest.size(), 2u);
}

TEST(LoopNest, RejectsEscapingNestedRange) {
  LoopNest nest;
  const LoopId outer = nest.add_loop("outer", 0x100, 0x200);
  EXPECT_THROW(nest.add_nested(outer, "bad", 0x150, 0x250),
               util::CheckFailure);
}

TEST(LoopNest, RejectsEmptyRange) {
  LoopNest nest;
  EXPECT_THROW(nest.add_loop("empty", 0x100, 0x100), util::CheckFailure);
}

TEST(LoopNest, BoundariesAreHalfOpen) {
  LoopNest nest;
  const LoopId a = nest.add_loop("a", 0x100, 0x200);
  EXPECT_EQ(nest.innermost_containing(0x100), a);   // inclusive start
  EXPECT_FALSE(nest.innermost_containing(0x200));   // exclusive end
}

}  // namespace
}  // namespace rda::trace
