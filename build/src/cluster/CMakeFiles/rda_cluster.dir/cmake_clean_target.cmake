file(REMOVE_RECURSE
  "librda_cluster.a"
)
