#include "runtime/affinity.hpp"

#include <fstream>
#include <string>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace rda::rt {

bool pin_to_cpu(int cpu) {
#if defined(__linux__)
  if (cpu < 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

int online_cpus() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

std::optional<std::uint64_t> detect_llc_bytes() {
#if defined(__linux__)
  // The highest cache index on cpu0 is the LLC.
  for (int index = 4; index >= 0; --index) {
    const std::string path = "/sys/devices/system/cpu/cpu0/cache/index" +
                             std::to_string(index) + "/size";
    std::ifstream in(path);
    if (!in) continue;
    std::string text;
    in >> text;
    if (text.empty()) continue;
    char suffix = text.back();
    std::uint64_t multiplier = 1;
    if (suffix == 'K' || suffix == 'k') {
      multiplier = 1024;
      text.pop_back();
    } else if (suffix == 'M' || suffix == 'm') {
      multiplier = 1024 * 1024;
      text.pop_back();
    }
    try {
      return std::stoull(text) * multiplier;
    } catch (...) {
      continue;
    }
  }
#endif
  return std::nullopt;
}

}  // namespace rda::rt
