# Empty compiler generated dependencies file for rda_blas.
# This may be replaced when dependencies are built.
