// Experiment harness: runs a Table-2 workload under a scheduling policy and
// reports the paper's four metrics (Figs. 7–10). Shared by every bench
// binary and the integration tests.
//
// Experiment cells — one (workload, config) simulation each — are completely
// independent: every cell builds its own Engine and RdaScheduler, so a
// matrix of cells can fan out across the util::parallel_run pool. Results
// land in pre-allocated slots consumed in cell-index order, which makes the
// output bit-identical for any --jobs value (see DESIGN.md §11).
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "core/rda_scheduler.hpp"
#include "sim/engine.hpp"
#include "util/parallel.hpp"
#include "workload/table2.hpp"

namespace rda::exp {

struct RunConfig {
  sim::EngineConfig engine{};
  core::PolicyKind policy = core::PolicyKind::kLinuxDefault;
  double oversubscription = 2.0;  ///< paper's x for RDA:Compromise
  bool fast_path = false;
  /// Full scheduler-options override for ablations: when set, the three
  /// fields above are ignored and these options are used verbatim (a gate is
  /// still only attached when options.policy != kLinuxDefault).
  std::optional<core::RdaOptions> rda_options;
};

/// One row of a Fig. 7–10 style table.
struct RunRow {
  std::string workload;
  std::string policy;
  double system_joules = 0.0;
  double dram_joules = 0.0;
  double gflops = 0.0;
  double gflops_per_watt = 0.0;
  double makespan = 0.0;
  double total_flops = 0.0;
  std::uint64_t gate_blocks = 0;
  std::uint64_t context_switches = 0;
  std::uint64_t migrations = 0;
  /// Non-empty: this cell's simulation threw instead of producing metrics
  /// (the message is the exception text). The metric fields stay zeroed.
  std::string error;

  bool failed() const { return !error.empty(); }
};

/// Rows whose cell failed (fault isolation in run_matrix).
std::size_t failed_cells(const std::vector<RunRow>& rows);

/// Simulates `spec` under `config` and collects the metrics row.
RunRow run_workload(const workload::WorkloadSpec& spec,
                    const RunConfig& config);

/// Parses a `--jobs N` flag out of argv (N == 0 or negative means one job
/// per hardware thread). Returns 1 when the flag is absent — experiment
/// binaries stay serial unless parallelism is requested.
int parse_jobs(int argc, char** argv);

/// `--key value` flag parsers shared by the bench/tool binaries (every
/// binary used to hand-roll the same argv scan). The last occurrence wins;
/// `fallback` is returned when the flag is absent or has no value.
std::uint64_t parse_u64_flag(int argc, char** argv, const std::string& key,
                             std::uint64_t fallback);
double parse_double_flag(int argc, char** argv, const std::string& key,
                         double fallback);
std::string parse_string_flag(int argc, char** argv, const std::string& key,
                              const std::string& fallback);
/// True when the bare flag (no value) appears anywhere in argv.
bool has_flag(int argc, char** argv, const std::string& key);

/// Runs `fn(0) .. fn(count - 1)` on up to `jobs` threads. Each invocation
/// must touch only its own state/result slot; the caller reads results in
/// index order afterwards, so output is independent of `jobs`.
template <typename Fn>
void run_cells(std::size_t count, int jobs, Fn&& fn) {
  std::vector<std::function<void()>> tasks;
  tasks.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    tasks.push_back([i, &fn] { fn(i); });
  }
  util::parallel_run(tasks, jobs);
}

/// Cross product of workloads x configs, one simulation per cell, fanned
/// across `jobs` threads. Rows come back row-major (all configs of spec 0,
/// then spec 1, ...) and are bit-identical for any `jobs` value.
///
/// Fault-isolating: a cell whose simulation throws records the exception
/// text in its pre-allocated row's `error` field (workload/policy still
/// filled) and the rest of the matrix completes normally. RDA_CHECK
/// messages are deterministic, so error rows keep the jobs-parity property.
std::vector<RunRow> run_matrix(const std::vector<workload::WorkloadSpec>& specs,
                               const std::vector<RunConfig>& configs,
                               int jobs = 1);

/// The paper's three-way comparison for one workload.
struct PolicyComparison {
  RunRow baseline;    ///< Linux default
  RunRow strict;      ///< RDA:Strict
  RunRow compromise;  ///< RDA:Compromise(x=2)

  /// Best RDA configuration by a metric (the paper quotes per-workload
  /// bests for its headline numbers).
  const RunRow& best_rda_by_energy() const;
  const RunRow& best_rda_by_gflops() const;

  double speedup(const RunRow& rda) const {
    return baseline.gflops > 0.0 ? rda.gflops / baseline.gflops : 0.0;
  }
  /// Fractional system-energy decrease vs the Linux baseline (0.48 = −48%).
  double energy_drop(const RunRow& rda) const {
    return baseline.system_joules > 0.0
               ? 1.0 - rda.system_joules / baseline.system_joules
               : 0.0;
  }
  double efficiency_gain(const RunRow& rda) const {
    return baseline.gflops_per_watt > 0.0
               ? rda.gflops_per_watt / baseline.gflops_per_watt
               : 0.0;
  }
};

/// Runs one workload under all three policies on identical engine config;
/// `jobs > 1` fans the three runs out in parallel.
PolicyComparison compare_policies(const workload::WorkloadSpec& spec,
                                  const sim::EngineConfig& engine_config,
                                  int jobs = 1);

/// compare_policies over a whole workload list: all specs x 3 policies fan
/// out as one flat cell matrix. Result order matches `specs`.
std::vector<PolicyComparison> compare_policies_all(
    const std::vector<workload::WorkloadSpec>& specs,
    const sim::EngineConfig& engine_config, int jobs = 1);

/// The paper's §4.2 headline aggregation over all workloads, taking each
/// workload's best RDA configuration.
struct Headline {
  double max_energy_drop = 0.0;  ///< paper: 48% (water_nsquared, Strict)
  double avg_energy_drop = 0.0;  ///< paper: 12%
  double max_speedup = 0.0;      ///< paper: 1.88x (Raytrace)
  double avg_speedup = 0.0;      ///< paper: 1.16x
};

Headline summarize(const std::vector<PolicyComparison>& comparisons);

}  // namespace rda::exp
