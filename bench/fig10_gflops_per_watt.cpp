// Reproduces paper Figure 10: GFLOPS per Watt of the whole system (total
// flops divided by total system energy) per workload and policy.
#include <iostream>

#include "fig_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rda;
  std::cout << "=== Figure 10: GFLOPS per Watt (system) ===\n"
            << "(higher is better; paper Fig. 10)\n\n";
  const bench::FigureData data =
      bench::run_all_workloads(bench::quick_requested(argc, argv),
                               bench::jobs_requested(argc, argv));
  const bool csv = bench::csv_requested(argc, argv);

  bench::print_metric_table(data, "GFLOPS/W", 3, [](const exp::RunRow& row) {
    return row.gflops_per_watt;
  }, csv);
  if (csv) return 0;

  util::Table gains({"workload", "best RDA policy", "efficiency gain"});
  for (std::size_t i = 0; i < data.comparisons.size(); ++i) {
    const exp::PolicyComparison& cmp = data.comparisons[i];
    const exp::RunRow& strict = cmp.strict;
    const exp::RunRow& comp = cmp.compromise;
    const exp::RunRow& best =
        cmp.efficiency_gain(strict) >= cmp.efficiency_gain(comp) ? strict
                                                                 : comp;
    gains.begin_row()
        .add_cell(data.specs[i].name)
        .add_cell(best.policy)
        .add_cell(cmp.efficiency_gain(best), 2);
  }
  std::cout << gains.render()
            << "\n(paper: max efficiency gain 2.05x on Raytrace/Compromise; "
               "strict best for Water_nsq 1.68x and Ocean_cp 1.36x)\n";
  return 0;
}
