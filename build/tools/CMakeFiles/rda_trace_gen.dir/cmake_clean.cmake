file(REMOVE_RECURSE
  "CMakeFiles/rda_trace_gen.dir/rda_trace_gen.cpp.o"
  "CMakeFiles/rda_trace_gen.dir/rda_trace_gen.cpp.o.d"
  "rda_trace_gen"
  "rda_trace_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rda_trace_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
