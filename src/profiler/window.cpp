#include "profiler/window.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rda::prof {

std::uint64_t WindowStats::dominant_jump_pc() const {
  std::uint64_t best_pc = 0;
  std::uint64_t best_count = 0;
  for (const auto& [pc, count] : jump_counts) {
    if (count > best_count || (count == best_count && pc < best_pc)) {
      best_pc = pc;
      best_count = count;
    }
  }
  return best_pc;
}

WindowAnalyzer::WindowAnalyzer(WindowConfig config) : config_(config) {
  RDA_CHECK(config_.window_accesses > 0);
  RDA_CHECK(config_.granularity > 0);
  RDA_CHECK(config_.hot_threshold >= 1);
}

std::vector<WindowStats> WindowAnalyzer::analyze(
    trace::TraceSource& source) const {
  std::vector<WindowStats> windows;
  // The paper resets its address-count array at the start of each window; a
  // hash map keyed by line address plays that role here.
  std::unordered_map<std::uint64_t, std::uint32_t> line_counts;
  WindowStats current;
  current.index = 0;

  auto finalize = [&](WindowStats& w) {
    const std::uint64_t unique = line_counts.size();
    w.footprint_bytes = unique * config_.granularity;
    std::uint64_t hot = 0;
    for (const auto& [line, count] : line_counts) {
      (void)line;
      if (count >= config_.hot_threshold) ++hot;
    }
    w.wss_bytes = hot * config_.granularity;
    w.reuse_ratio =
        unique == 0 ? 0.0
                    : static_cast<double>(w.accesses) /
                          static_cast<double>(unique);
  };

  trace::TraceRecord rec;
  while (source.next(rec)) {
    if (rec.kind == trace::RecordKind::kJump) {
      ++current.jump_counts[rec.value];
      continue;
    }
    const std::uint64_t line = rec.value / config_.granularity;
    ++line_counts[line];
    ++current.accesses;
    if (rec.kind == trace::RecordKind::kStore) {
      ++current.stores;
    } else {
      ++current.loads;
    }
    if (current.accesses >= config_.window_accesses) {
      finalize(current);
      windows.push_back(std::move(current));
      current = WindowStats{};
      current.index = windows.size();
      line_counts.clear();
    }
  }
  // Keep a trailing window only if it is long enough to be comparable.
  if (current.accesses * 2 >= config_.window_accesses) {
    finalize(current);
    windows.push_back(std::move(current));
  }
  return windows;
}

}  // namespace rda::prof
