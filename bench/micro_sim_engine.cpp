// micro_sim_engine — self-timed simulator hot-path benchmark, the engine
// counterpart of micro_gate. Emits BENCH_sim.json and gates regressions.
//
//   micro_sim_engine [--reps N] [--jobs J] [--out BENCH_sim.json]
//
// Measures, each as the minimum over reps (one stray scheduler tick poisons
// an average, the best rep reflects the sustained cost):
//   * heavy   — 48 threads x 16 phases x 200 MFLOP high-reuse periods, no
//     gate: the pure integration loop (ready queues, rate solver, fluid
//     cache model). Also reported as ns per integration step.
//   * gated   — the same workload under RDA:Strict (admission on the path).
//   * churn   — one thread, 60k tiny marked phases under Strict+fast-path:
//     the phase-boundary state machine (Fig. 11 inner-loop regime).
//   * matrix  — the 8 quick Table-2 workloads under Strict through
//     exp::run_matrix at --jobs 1 and --jobs J, with a byte-identical
//     comparison of every result field across the two runs.
//   * sampling — set-sampled (K=16) vs full SetAssociativeCache miss ratios
//     on the validate_cache_model trace family; max absolute error.
//
// The kPre* constants are this machine's numbers at commit 9be06f0, before
// the flat-heap/dense-bookkeeping overhaul; kExpected* are the post-overhaul
// numbers the regression gate (10%) compares against. The parallel-speedup
// gate only engages when the host has enough cores to make the target
// physically meaningful.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "calib.hpp"
#include "core/rda_scheduler.hpp"
#include "exp/harness.hpp"
#include "sim/assoc_cache.hpp"
#include "sim/engine.hpp"
#include "trace/generators.hpp"
#include "util/atomic_file.hpp"
#include "util/units.hpp"
#include "workload/table2.hpp"

namespace {

using namespace rda;
using rda::util::MB;

// Pre-overhaul (commit 9be06f0) seconds per run on this machine.
constexpr double kPreHeavySeconds = 0.0328;
constexpr double kPreGatedSeconds = 0.0043;
constexpr double kPreChurnSeconds = 0.0345;
constexpr double kPreMatrixSeconds = 0.129;

// Post-overhaul expectations the 10% regression gate compares against —
// recorded from the slowest of several post-overhaul runs on this machine
// (the container is shared; best-case runs come in ~20% under these).
constexpr double kExpectedHeavySeconds = 0.028;
constexpr double kExpectedChurnSeconds = 0.030;
constexpr double kExpectedMatrixSeconds = 0.105;

sim::PhaseProgram make_program(int phases, double flops_per_phase) {
  sim::ProgramBuilder b;
  for (int i = 0; i < phases; ++i) {
    b.period("p", flops_per_phase, MB(2), ReuseLevel::kHigh);
  }
  return b.build();
}

struct EngineRun {
  double seconds = 0.0;
  std::uint64_t sim_steps = 0;
};

EngineRun run_engine(int threads, int phases, double flops_per_phase,
                     bool gate_on, bool fast_path) {
  sim::EngineConfig cfg;
  cfg.machine = sim::MachineConfig::e5_2420();
  sim::Engine engine(cfg);
  std::unique_ptr<core::RdaScheduler> gate;
  if (gate_on) {
    core::RdaOptions options;
    options.policy = core::PolicyKind::kStrict;
    options.fast_path = fast_path;
    gate = std::make_unique<core::RdaScheduler>(
        static_cast<double>(cfg.machine.llc_bytes), cfg.calib, options);
    engine.set_gate(gate.get());
  }
  for (int t = 0; t < threads; ++t) {
    const sim::ProcessId pid = engine.create_process();
    engine.add_thread(pid, make_program(phases, flops_per_phase));
  }
  const auto t0 = std::chrono::steady_clock::now();
  const sim::SimResult result = engine.run();
  EngineRun r;
  r.seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  r.sim_steps = result.sim_steps;
  return r;
}

/// Minimum wall seconds (and the step count) over `reps` runs of `fn`.
template <typename Fn>
EngineRun best_of(int reps, Fn&& fn) {
  EngineRun best;
  best.seconds = 1e18;
  for (int i = 0; i < reps; ++i) {
    const EngineRun r = fn();
    if (r.seconds < best.seconds) best = r;
  }
  return best;
}

/// Full-precision serialization of every RunRow field; two matrix runs are
/// "identical" only if these strings match byte for byte.
std::string serialize(const std::vector<exp::RunRow>& rows) {
  std::string out;
  char buf[512];
  for (const exp::RunRow& r : rows) {
    std::snprintf(buf, sizeof(buf),
                  "%s|%s|%.17g|%.17g|%.17g|%.17g|%.17g|%.17g|%llu|%llu|%llu\n",
                  r.workload.c_str(), r.policy.c_str(), r.system_joules,
                  r.dram_joules, r.gflops, r.gflops_per_watt, r.makespan,
                  r.total_flops,
                  static_cast<unsigned long long>(r.gate_blocks),
                  static_cast<unsigned long long>(r.context_switches),
                  static_cast<unsigned long long>(r.migrations));
    out += buf;
  }
  return out;
}

/// The 8-cell quick fig9-style sweep: every Table-2 workload under Strict.
std::vector<exp::RunRow> run_sweep(int jobs) {
  std::vector<workload::WorkloadSpec> specs;
  for (const workload::WorkloadSpec& spec : workload::table2_workloads()) {
    specs.push_back(workload::scale_workload(spec, 0.125, 4));
  }
  exp::RunConfig cfg;
  cfg.engine.machine = sim::MachineConfig::e5_2420();
  cfg.policy = core::PolicyKind::kStrict;
  return exp::run_matrix(specs, {cfg}, jobs);
}

/// validate_cache_model's trace family: hot random working set, optionally
/// interleaved 1:1 with a 12 MB polluter, through the paper's LLC geometry.
double lru_miss_ratio(double ws_mb, bool with_polluter,
                      std::uint32_t set_sample) {
  sim::AssocCacheConfig cfg;
  cfg.capacity_bytes = MB(15);
  cfg.ways = 20;
  cfg.set_sample = set_sample;
  sim::SetAssociativeCache cache(cfg);

  const std::uint64_t lines = MB(ws_mb) / 64;
  const std::uint64_t accesses = 40 * lines;
  trace::RegionSpec spec;
  spec.base = 0;
  spec.size_bytes = MB(ws_mb);
  spec.pattern = trace::Pattern::kRandomUniform;
  spec.access_granularity = 64;
  trace::RegionAccessSource subject(spec, accesses, 11);

  trace::RegionSpec pol;
  pol.base = 1ull << 40;
  pol.size_bytes = MB(12);
  pol.pattern = trace::Pattern::kRandomUniform;
  pol.access_granularity = 64;
  trace::RegionAccessSource polluter(pol, accesses, 12);

  trace::TraceRecord a, b;
  bool more_subject = true, more_polluter = with_polluter;
  while (more_subject || more_polluter) {
    if (more_subject && (more_subject = subject.next(a))) {
      cache.access(a.value, 1);
    }
    if (more_polluter && (more_polluter = polluter.next(b))) {
      cache.access(b.value, 2);
    }
  }
  return cache.owner_stats(1).miss_ratio();
}

}  // namespace

int main(int argc, char** argv) {
  auto arg_u64 = [&](const std::string& key,
                     std::uint64_t fallback) -> std::uint64_t {
    for (int i = 1; i + 1 < argc; ++i) {
      if (key == argv[i]) return std::strtoull(argv[i + 1], nullptr, 10);
    }
    return fallback;
  };
  auto arg_str = [&](const std::string& key, std::string fallback) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (key == argv[i]) return std::string(argv[i + 1]);
    }
    return fallback;
  };

  const int reps = static_cast<int>(arg_u64("--reps", 5));
  const int host_cores =
      static_cast<int>(std::thread::hardware_concurrency());
  const int jobs = static_cast<int>(
      arg_u64("--jobs", static_cast<std::uint64_t>(
                            std::min(8, std::max(1, host_cores)))));
  const std::string out_path = arg_str("--out", "BENCH_sim.json");

  // Engine scenarios.
  const EngineRun heavy = best_of(
      reps, [] { return run_engine(48, 16, 2e8, false, false); });
  const EngineRun gated = best_of(
      reps, [] { return run_engine(48, 16, 2e8, true, false); });
  const EngineRun churn = best_of(
      reps, [] { return run_engine(1, 60000, 1e5, true, true); });
  const double heavy_ns_per_step =
      heavy.sim_steps > 0
          ? heavy.seconds * 1e9 / static_cast<double>(heavy.sim_steps)
          : 0.0;

  // Matrix sweep: --jobs 1 vs --jobs J, byte-identical outputs required.
  double matrix_j1 = 1e18, matrix_jn = 1e18;
  std::string rows_j1, rows_jn;
  for (int i = 0; i < std::max(reps / 2, 2); ++i) {
    auto t0 = std::chrono::steady_clock::now();
    const std::vector<exp::RunRow> r1 = run_sweep(1);
    matrix_j1 = std::min(
        matrix_j1, std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
    t0 = std::chrono::steady_clock::now();
    const std::vector<exp::RunRow> rn = run_sweep(jobs);
    matrix_jn = std::min(
        matrix_jn, std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
    rows_j1 = serialize(r1);
    rows_jn = serialize(rn);
  }
  const bool matrix_identical = rows_j1 == rows_jn;
  const double matrix_speedup = matrix_jn > 0.0 ? matrix_j1 / matrix_jn : 0.0;

  // Set sampling accuracy (K=16) on the validation trace family.
  constexpr std::uint32_t kSample = 16;
  double sampled_max_err = 0.0;
  for (const double ws : {4.0, 12.0, 20.0}) {
    for (const bool polluted : {false, true}) {
      const double full = lru_miss_ratio(ws, polluted, 1);
      const double sampled = lru_miss_ratio(ws, polluted, kSample);
      sampled_max_err =
          std::max(sampled_max_err, std::abs(sampled - full));
    }
  }

  // The expectations were recorded on this container at its anchor speed;
  // the shared calibration kernel (see bench/calib.hpp) tracks how much
  // slower the machine itself is running today, and only slowdowns are
  // corrected — a faster host just passes with more headroom.
  double calib_ns = 1e18;
  for (int i = 0; i < 3; ++i) {
    calib_ns = std::min(calib_ns, rda::bench::bench_calibration());
  }
  const double machine_factor =
      std::max(1.0, calib_ns / rda::bench::kCalibBaselineNs);
  const double heavy_vs_expected =
      heavy.seconds / kExpectedHeavySeconds / machine_factor;
  const double churn_vs_expected =
      churn.seconds / kExpectedChurnSeconds / machine_factor;
  const double matrix_vs_expected =
      matrix_j1 / kExpectedMatrixSeconds / machine_factor;

  std::printf("heavy (48x16x200MFLOP):  %.4f s  (%.0f ns/step, pre-overhaul "
              "%.4f s, %.2fx faster)\n",
              heavy.seconds, heavy_ns_per_step, kPreHeavySeconds,
              kPreHeavySeconds / heavy.seconds);
  std::printf("gated (RDA:Strict):      %.4f s  (pre-overhaul %.4f s, %.2fx "
              "faster)\n",
              gated.seconds, kPreGatedSeconds,
              kPreGatedSeconds / gated.seconds);
  std::printf("churn (60k tiny phases): %.4f s  (pre-overhaul %.4f s, %.2fx "
              "faster)\n",
              churn.seconds, kPreChurnSeconds,
              kPreChurnSeconds / churn.seconds);
  std::printf("matrix jobs=1:           %.4f s  (pre-overhaul %.4f s, %.2fx "
              "faster)\n",
              matrix_j1, kPreMatrixSeconds, kPreMatrixSeconds / matrix_j1);
  std::printf("matrix jobs=%d:           %.4f s  (%.2fx vs jobs=1, %d host "
              "cores, outputs %s)\n",
              jobs, matrix_jn, matrix_speedup, host_cores,
              matrix_identical ? "identical" : "DIFFER");
  std::printf("set sampling (K=%u):     max |miss-ratio err| %.4f\n", kSample,
              sampled_max_err);
  std::printf("calibration kernel:      %.1f ns (anchor %.0f ns, machine "
              "%.2fx)\n",
              calib_ns, rda::bench::kCalibBaselineNs, machine_factor);

  char json[1536];
  std::snprintf(
        json, sizeof(json),
        "{\n"
        "  \"reps\": %d,\n"
        "  \"host_cores\": %d,\n"
        "  \"jobs\": %d,\n"
        "  \"heavy_seconds\": %.5f,\n"
        "  \"heavy_ns_per_step\": %.1f,\n"
        "  \"heavy_sim_steps\": %llu,\n"
        "  \"gated_seconds\": %.5f,\n"
        "  \"churn_seconds\": %.5f,\n"
        "  \"matrix_jobs1_seconds\": %.5f,\n"
        "  \"matrix_jobsN_seconds\": %.5f,\n"
        "  \"matrix_speedup\": %.3f,\n"
        "  \"matrix_identical\": %s,\n"
        "  \"sampled_sets_k\": %u,\n"
        "  \"sampled_max_abs_miss_err\": %.5f,\n"
        "  \"pre_overhaul_heavy_seconds\": %.4f,\n"
        "  \"pre_overhaul_gated_seconds\": %.4f,\n"
        "  \"pre_overhaul_churn_seconds\": %.4f,\n"
        "  \"pre_overhaul_matrix_seconds\": %.4f,\n"
        "  \"heavy_speedup_vs_pre\": %.3f,\n"
        "  \"matrix_speedup_vs_pre\": %.3f,\n"
        "  \"calib_ns\": %.2f,\n"
        "  \"machine_factor\": %.4f,\n"
        "  \"heavy_vs_expected\": %.4f,\n"
        "  \"churn_vs_expected\": %.4f,\n"
        "  \"matrix_vs_expected\": %.4f\n"
        "}\n",
        reps, host_cores, jobs, heavy.seconds, heavy_ns_per_step,
        static_cast<unsigned long long>(heavy.sim_steps), gated.seconds,
        churn.seconds, matrix_j1, matrix_jn, matrix_speedup,
        matrix_identical ? "true" : "false", kSample, sampled_max_err,
        kPreHeavySeconds, kPreGatedSeconds, kPreChurnSeconds,
        kPreMatrixSeconds, kPreHeavySeconds / heavy.seconds,
        kPreMatrixSeconds / matrix_j1, calib_ns, machine_factor,
        heavy_vs_expected, churn_vs_expected, matrix_vs_expected);
  try {
    rda::util::write_file_atomic(out_path, json);
    std::printf("wrote %s\n", out_path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "warning: %s\n", e.what());
  }

  bool ok = true;
  if (!matrix_identical) {
    std::fprintf(stderr, "FAIL: matrix output differs between jobs=1 and "
                         "jobs=%d\n", jobs);
    ok = false;
  }
  if (sampled_max_err > 0.02) {
    std::fprintf(stderr, "FAIL: sampled miss-ratio error %.4f > 0.02\n",
                 sampled_max_err);
    ok = false;
  }
  if (heavy_vs_expected > 1.10 || churn_vs_expected > 1.10 ||
      matrix_vs_expected > 1.10) {
    std::fprintf(stderr,
                 "FAIL: hot-path regression >10%% vs recorded expectation "
                 "(heavy %.2fx, churn %.2fx, matrix %.2fx, "
                 "machine-adjusted)\n",
                 heavy_vs_expected, churn_vs_expected, matrix_vs_expected);
    ok = false;
  }
  // The parallel target (>=3x at 8 jobs) needs cores to scale onto; only
  // gate it where the hardware can express it.
  if (host_cores >= 8 && jobs >= 8 && matrix_speedup < 3.0) {
    std::fprintf(stderr, "FAIL: matrix speedup %.2fx < 3x at %d jobs on %d "
                         "cores\n", matrix_speedup, jobs, host_cores);
    ok = false;
  }
  return ok ? 0 : 1;
}
