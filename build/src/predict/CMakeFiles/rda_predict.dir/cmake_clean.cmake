file(REMOVE_RECURSE
  "CMakeFiles/rda_predict.dir/regression.cpp.o"
  "CMakeFiles/rda_predict.dir/regression.cpp.o.d"
  "librda_predict.a"
  "librda_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rda_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
