#include "workload/table2.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/units.hpp"

namespace rda::workload {
namespace {

using rda::util::MB;

TEST(Table2, AllEightWorkloadsPresent) {
  const auto specs = table2_workloads();
  ASSERT_EQ(specs.size(), 8u);
  const std::set<std::string> names = {
      specs[0].name, specs[1].name, specs[2].name, specs[3].name,
      specs[4].name, specs[5].name, specs[6].name, specs[7].name};
  for (const char* expected :
       {"BLAS-1", "BLAS-2", "BLAS-3", "Water_sp", "Water_nsq", "Ocean_cp",
        "Raytrace", "Volrend"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
}

TEST(Table2, ProcessAndThreadCountsMatchPaper) {
  const auto specs = table2_workloads();
  auto check = [&](const std::string& name, int procs, int threads) {
    const WorkloadSpec& s = find_workload(specs, name);
    EXPECT_EQ(s.processes, procs) << name;
    EXPECT_EQ(s.threads_per_process, threads) << name;
  };
  check("BLAS-1", 96, 1);
  check("BLAS-2", 96, 1);
  check("BLAS-3", 96, 1);
  check("Water_sp", 12, 2);
  check("Water_nsq", 12, 2);
  check("Ocean_cp", 48, 2);
  check("Raytrace", 48, 4);
  check("Volrend", 48, 4);
}

TEST(Table2, BlasKernelsCycleThroughFour) {
  const auto specs = table2_workloads();
  const WorkloadSpec& blas3 = find_workload(specs, "BLAS-3");
  std::set<std::string> labels;
  for (int p = 0; p < 8; ++p) {
    const auto program = blas3.program(p, 0);
    ASSERT_EQ(program.phases.size(), 1u);
    labels.insert(program.phases[0].label);
  }
  EXPECT_EQ(labels.size(), 4u);  // dgemm, dsyrk, dtrmm(ru), dtrsm(ru)
  EXPECT_TRUE(labels.count("dgemm"));
}

TEST(Table2, Blas3WorkingSetsMatchPaper) {
  const auto specs = table2_workloads();
  const WorkloadSpec& blas3 = find_workload(specs, "BLAS-3");
  const double expected[4] = {1.6, 2.4, 2.4, 3.2};
  for (int p = 0; p < 4; ++p) {
    const auto program = blas3.program(p, 0);
    EXPECT_NEAR(static_cast<double>(program.phases[0].wss_bytes),
                static_cast<double>(MB(expected[p])), 1e3)
        << p;
    EXPECT_EQ(program.phases[0].reuse, ReuseLevel::kHigh);
    EXPECT_TRUE(program.phases[0].marked);
  }
}

TEST(Table2, WaterNsqHasThreeHighReusePeriods) {
  const auto specs = table2_workloads();
  const WorkloadSpec& wnsq = find_workload(specs, "Water_nsq");
  const auto program = wnsq.program(0, 0);
  std::size_t marked = 0;
  for (const auto& phase : program.phases) {
    if (phase.marked) {
      ++marked;
      EXPECT_EQ(phase.reuse, ReuseLevel::kHigh);
    } else {
      // Glue phases carry the synchronization and stay unmarked (§3.4).
      EXPECT_TRUE(phase.barrier_after);
      EXPECT_TRUE(phase.contains_blocking_sync);
    }
  }
  // 3 periods per timestep x 2 timesteps.
  EXPECT_EQ(marked, 6u);
}

TEST(Table2, OnlyRaytraceIsTaskPool) {
  for (const auto& spec : table2_workloads()) {
    EXPECT_EQ(spec.task_pool, spec.name == "Raytrace") << spec.name;
  }
}

TEST(Table2, LowReuseWorkloadsDeclaredLow) {
  const auto specs = table2_workloads();
  for (const char* name : {"BLAS-1", "Water_sp"}) {
    const auto program = find_workload(specs, name).program(0, 0);
    for (const auto& phase : program.phases) {
      if (phase.marked) EXPECT_EQ(phase.reuse, ReuseLevel::kLow) << name;
    }
  }
}

TEST(Table2, FindWorkloadThrowsOnUnknown) {
  const auto specs = table2_workloads();
  EXPECT_THROW(find_workload(specs, "NoSuch"), std::invalid_argument);
}

TEST(Table2, PopulateEngineCreatesAllThreads) {
  const auto specs = table2_workloads();
  const WorkloadSpec& wnsq = find_workload(specs, "Water_nsq");
  sim::EngineConfig cfg;
  cfg.machine = sim::MachineConfig::e5_2420();
  sim::Engine engine(cfg);
  int pools = 0;
  populate_engine(engine, wnsq, [&](sim::ProcessId) { ++pools; });
  EXPECT_EQ(engine.thread_count(), 24u);  // 12 procs x 2 threads
  EXPECT_EQ(pools, 0);                    // not a pool workload
}

}  // namespace
}  // namespace rda::workload
