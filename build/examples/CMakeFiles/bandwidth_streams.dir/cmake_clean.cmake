file(REMOVE_RECURSE
  "CMakeFiles/bandwidth_streams.dir/bandwidth_streams.cpp.o"
  "CMakeFiles/bandwidth_streams.dir/bandwidth_streams.cpp.o.d"
  "bandwidth_streams"
  "bandwidth_streams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandwidth_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
