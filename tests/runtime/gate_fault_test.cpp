// Native-gate fault and recovery tests: lost/delayed wake recovery through
// the sliced hardened wait, the watchdog rejection surfacing as
// AdmissionRejected, thread-exit reclamation proven via the obs event
// ledger, and the timed-wait race matrix (grant-before-timeout, timeout,
// reap-during-wait).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>

#include "fault/fault.hpp"
#include "obs/reconcile.hpp"
#include "obs/recorder.hpp"
#include "runtime/gate.hpp"

namespace rda::rt {
namespace {

using namespace std::chrono_literals;

constexpr double kCapacity = 1000.0;

GateConfig small_gate() {
  GateConfig config;
  config.llc_capacity_bytes = kCapacity;
  config.policy = core::PolicyKind::kStrict;
  return config;
}

/// Spin-polls `pred` with a generous failure backstop so a hung scenario
/// fails the test instead of wedging the suite.
template <typename Pred>
::testing::AssertionResult await(Pred pred, const char* what) {
  const auto deadline = std::chrono::steady_clock::now() + 30s;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) {
      return ::testing::AssertionFailure() << "timed out waiting for " << what;
    }
    std::this_thread::sleep_for(100us);
  }
  return ::testing::AssertionSuccess();
}

/// std::thread wrapper that captures the body's exception text.
struct Worker {
  std::thread thread;
  std::string error;

  template <typename Fn>
  explicit Worker(Fn body) {
    thread = std::thread([this, body = std::move(body)]() mutable {
      try {
        body();
      } catch (const std::exception& e) {
        error = e.what();
      }
    });
  }
  void join() { thread.join(); }
};

TEST(FaultGate, LostWakeIsRecoveredBySlicedWait) {
  fault::FaultPlan plan;
  fault::FaultSpec lost;
  lost.kind = fault::FaultKind::kLostWake;
  lost.hook = fault::Hook::kWake;
  plan.add(lost);
  fault::FaultInjector injector(std::move(plan));
  obs::EventRecorder recorder;

  GateConfig config = small_gate();
  config.fault_injector = &injector;
  config.trace_sink = &recorder;
  AdmissionGate gate(config);

  const core::PeriodId held = gate.begin(ResourceKind::kLLC, 600.0,
                                         ReuseLevel::kHigh, "holder");
  Worker waiter([&] {
    const core::PeriodId id = gate.begin(ResourceKind::kLLC, 600.0,
                                         ReuseLevel::kHigh, "waiter");
    gate.end(id);
  });
  ASSERT_TRUE(await([&] { return gate.waiting() == 1; }, "waiter parked"));
  gate.end(held);  // grant fires, notification is dropped by the fault
  waiter.join();
  EXPECT_EQ(waiter.error, "");

  const GateStats stats = gate.stats();
  EXPECT_EQ(stats.lost_wakes, 1u);
  EXPECT_EQ(stats.recovered_wakes, 1u);
  EXPECT_EQ(stats.waits, 1u);
  EXPECT_EQ(stats.monitor.begins, 2u);
  EXPECT_EQ(stats.monitor.ends, 2u);
  EXPECT_EQ(gate.usage(ResourceKind::kLLC), 0.0);

  // Event-ledger check: the dropped notification must not desync the wait
  // accounting — the histogram and the gate's wait counters still reconcile.
  ASSERT_EQ(recorder.dropped(), 0u);
  obs::WaitStatsCheck check;
  check.waits = stats.waits;
  check.no_sleep_blocks = stats.no_sleep_blocks;
  check.total_wait_seconds = stats.total_wait_seconds;
  const obs::ReconcileReport report = obs::reconcile_waits(
      recorder.events(), recorder.wait_histogram(), check);
  EXPECT_TRUE(report.ok) << report.message;
}

TEST(FaultGate, DelayedWakeIsStillDelivered) {
  fault::FaultPlan plan;
  fault::FaultSpec delayed;
  delayed.kind = fault::FaultKind::kDelayedWake;
  delayed.hook = fault::Hook::kWake;
  delayed.delay_seconds = 0.005;
  plan.add(delayed);
  fault::FaultInjector injector(std::move(plan));

  GateConfig config = small_gate();
  config.fault_injector = &injector;
  AdmissionGate gate(config);

  const core::PeriodId held =
      gate.begin(ResourceKind::kLLC, 600.0, ReuseLevel::kHigh);
  Worker waiter([&] {
    const core::PeriodId id =
        gate.begin(ResourceKind::kLLC, 600.0, ReuseLevel::kHigh);
    gate.end(id);
  });
  ASSERT_TRUE(await([&] { return gate.waiting() == 1; }, "waiter parked"));
  gate.end(held);
  waiter.join();
  EXPECT_EQ(waiter.error, "");

  const GateStats stats = gate.stats();
  EXPECT_EQ(stats.lost_wakes, 0u);
  EXPECT_EQ(stats.monitor.wakes, 1u);
  EXPECT_EQ(stats.monitor.ends, 2u);
  EXPECT_EQ(gate.usage(ResourceKind::kLLC), 0.0);
}

TEST(FaultGate, WatchdogRejectionThrowsAdmissionRejected) {
  GateConfig config = small_gate();
  config.monitor.watchdog.enable = true;
  config.monitor.watchdog.max_wake_rounds = 1;
  config.monitor.watchdog.clamp = false;
  config.monitor.watchdog.force_admit = false;
  config.monitor.watchdog.reject = true;
  AdmissionGate gate(config);

  std::atomic<bool> held{false};
  std::atomic<bool> release{false};
  Worker holder([&] {
    const core::PeriodId id =
        gate.begin(ResourceKind::kLLC, 600.0, ReuseLevel::kHigh);
    held = true;
    while (!release) std::this_thread::sleep_for(100us);
    gate.end(id);
  });
  ASSERT_TRUE(await([&] { return held.load(); }, "holder admitted"));

  std::atomic<bool> rejected{false};
  Worker starved([&] {
    try {
      gate.begin(ResourceKind::kLLC, 600.0, ReuseLevel::kHigh, "starved");
      ADD_FAILURE() << "starved begin unexpectedly admitted";
    } catch (const AdmissionRejected& e) {
      EXPECT_NE(std::string(e.what()).find("rejected"), std::string::npos);
      rejected = true;
    }
  });
  ASSERT_TRUE(await([&] { return gate.waiting() == 1; }, "starved parked"));

  // One pulse ages the parked entry past max_wake_rounds; with rungs 1+2
  // disabled the escalation goes straight to the rejection rung.
  const core::PeriodId pulse =
      gate.begin(ResourceKind::kLLC, 100.0, ReuseLevel::kLow, "pulse");
  gate.end(pulse);

  starved.join();
  EXPECT_EQ(starved.error, "");
  EXPECT_TRUE(rejected.load());
  release = true;
  holder.join();

  const GateStats stats = gate.stats();
  EXPECT_EQ(stats.monitor.rejections, 1u);
  EXPECT_EQ(stats.monitor.begins,
            stats.monitor.ends + stats.monitor.rejections);
  EXPECT_EQ(gate.waiting(), 0u);
  EXPECT_EQ(gate.usage(ResourceKind::kLLC), 0.0);
}

TEST(FaultGate, ThreadExitReapReclaimsOrphanAndAdmitsWaiter) {
  // The native-substrate thread-death proof: a thread dies holding admitted
  // capacity, the exit guard reaps the orphan, and the freed capacity admits
  // the parked waiter — verified through the recorded obs event ledger.
  obs::EventRecorder recorder;
  GateConfig config = small_gate();
  config.reap_on_thread_exit = true;
  config.trace_sink = &recorder;
  AdmissionGate gate(config);

  std::atomic<bool> held{false};
  std::atomic<bool> die{false};
  Worker orphan([&] {
    gate.begin(ResourceKind::kLLC, 600.0, ReuseLevel::kHigh, "orphan");
    held = true;
    while (!die) std::this_thread::sleep_for(100us);
    // Exits WITHOUT end(): the thread-exit guard must reap the period.
  });
  ASSERT_TRUE(await([&] { return held.load(); }, "orphan admitted"));

  Worker waiter([&] {
    const core::PeriodId id = gate.begin(ResourceKind::kLLC, 600.0,
                                         ReuseLevel::kHigh, "waiter");
    gate.end(id);
  });
  ASSERT_TRUE(await([&] { return gate.waiting() == 1; }, "waiter parked"));

  die = true;
  orphan.join();  // the exit guard runs before join returns
  waiter.join();
  EXPECT_EQ(orphan.error, "");
  EXPECT_EQ(waiter.error, "");

  const GateStats stats = gate.stats();
  EXPECT_EQ(stats.monitor.reclaims, 1u);
  EXPECT_EQ(stats.monitor.begins, 2u);
  EXPECT_EQ(stats.monitor.ends, 1u);
  EXPECT_EQ(gate.usage(ResourceKind::kLLC), 0.0);
  EXPECT_EQ(gate.waiting(), 0u);

  // Event-ledger proof of reclamation + waiter admission.
  ASSERT_EQ(recorder.dropped(), 0u);
  EXPECT_EQ(recorder.count(obs::EventKind::kReclaim), 1u);
  const std::vector<obs::Event> events = recorder.events();
  bool reclaim_seen = false;
  bool wake_after_reclaim = false;
  for (const obs::Event& e : events) {
    if (e.kind == obs::EventKind::kReclaim) reclaim_seen = true;
    if (reclaim_seen && e.kind == obs::EventKind::kWake) {
      wake_after_reclaim = true;
    }
  }
  EXPECT_TRUE(wake_after_reclaim)
      << "waiter was not admitted by the orphan reclaim";
  const obs::ReconcileReport report = obs::reconcile(events, stats.monitor);
  EXPECT_TRUE(report.ok) << report.message;
  EXPECT_EQ(report.still_blocked, 0u);
  EXPECT_EQ(report.still_admitted, 0u);
}

/// The timed-wait race matrix runs hardened: an (empty) injector switches
/// the gate to sliced waits without injecting anything.
struct HardenedTimedGate {
  fault::FaultInjector injector{fault::FaultPlan{}};
  AdmissionGate gate;

  HardenedTimedGate() : gate([this] {
    GateConfig config = small_gate();
    config.fault_injector = &injector;
    return config;
  }()) {}
};

TEST(FaultGate, TimedBeginConsumesGrantArrivingBeforeTimeout) {
  HardenedTimedGate h;
  std::atomic<bool> held{false};
  Worker holder([&] {
    const core::PeriodId id =
        h.gate.begin(ResourceKind::kLLC, 600.0, ReuseLevel::kHigh);
    held = true;
    // Release as soon as the timed waiter has parked.
    const auto ok = await([&] { return h.gate.waiting() == 1; },
                          "timed waiter parked");
    EXPECT_TRUE(ok);
    h.gate.end(id);
  });
  ASSERT_TRUE(await([&] { return held.load(); }, "holder admitted"));

  const std::optional<core::PeriodId> id =
      h.gate.begin_for(ResourceKind::kLLC, 600.0, ReuseLevel::kHigh, 10s);
  holder.join();
  ASSERT_TRUE(id.has_value());
  h.gate.end(*id);

  const GateStats stats = h.gate.stats();
  EXPECT_EQ(stats.monitor.cancels, 0u);
  EXPECT_EQ(stats.monitor.ends, 2u);
  EXPECT_EQ(h.gate.usage(ResourceKind::kLLC), 0.0);
}

TEST(FaultGate, TimedBeginWithdrawsOnTimeout) {
  HardenedTimedGate h;
  std::atomic<bool> release{false};
  std::atomic<bool> held{false};
  Worker holder([&] {
    const core::PeriodId id =
        h.gate.begin(ResourceKind::kLLC, 600.0, ReuseLevel::kHigh);
    held = true;
    while (!release) std::this_thread::sleep_for(100us);
    h.gate.end(id);
  });
  ASSERT_TRUE(await([&] { return held.load(); }, "holder admitted"));

  const std::optional<core::PeriodId> id =
      h.gate.begin_for(ResourceKind::kLLC, 600.0, ReuseLevel::kHigh, 30ms);
  EXPECT_FALSE(id.has_value());
  EXPECT_EQ(h.gate.stats().monitor.cancels, 1u);
  EXPECT_EQ(h.gate.usage(ResourceKind::kLLC), 600.0);  // only the holder

  release = true;
  holder.join();
  EXPECT_EQ(h.gate.usage(ResourceKind::kLLC), 0.0);
  const GateStats stats = h.gate.stats();
  EXPECT_EQ(stats.monitor.begins,
            stats.monitor.ends + stats.monitor.cancels);
}

TEST(FaultGate, TimedBeginObservesReapDuringWait) {
  HardenedTimedGate h;
  const core::PeriodId held =
      h.gate.begin(ResourceKind::kLLC, 600.0, ReuseLevel::kHigh);

  std::atomic<std::uint32_t> token{0};
  std::atomic<bool> got_null{false};
  Worker waiter([&] {
    token = AdmissionGate::current_thread_token();
    const std::optional<core::PeriodId> id =
        h.gate.begin_for(ResourceKind::kLLC, 600.0, ReuseLevel::kHigh, 10s);
    got_null = !id.has_value();
    if (id.has_value()) h.gate.end(*id);
  });
  ASSERT_TRUE(await([&] { return h.gate.waiting() == 1; }, "waiter parked"));

  // Administrative reclaim of the live waiter: its sliced wait must observe
  // the eviction and give up well before the 10 s timeout.
  h.gate.reap_thread(token.load());
  waiter.join();
  EXPECT_EQ(waiter.error, "");
  EXPECT_TRUE(got_null.load());
  EXPECT_EQ(h.gate.stats().monitor.reclaims, 1u);
  EXPECT_EQ(h.gate.waiting(), 0u);

  h.gate.end(held);
  EXPECT_EQ(h.gate.usage(ResourceKind::kLLC), 0.0);
}

TEST(FaultGate, SweepReclaimsLeaseExpiredOrphan) {
  AdmissionGate gate(small_gate());
  Worker orphan([&] {
    gate.begin(ResourceKind::kLLC, 700.0, ReuseLevel::kHigh, "leak");
    // Exits without end(); reap_on_thread_exit is OFF, so only the lease
    // sweep can recover the capacity.
  });
  orphan.join();
  EXPECT_EQ(gate.usage(ResourceKind::kLLC), 700.0);

  gate.advance_epoch();
  gate.advance_epoch();
  gate.advance_epoch();
  EXPECT_EQ(gate.sweep(/*max_epoch_age=*/2), 1u);
  EXPECT_EQ(gate.stats().monitor.reclaims, 1u);
  EXPECT_EQ(gate.usage(ResourceKind::kLLC), 0.0);
  EXPECT_EQ(gate.sweep(2), 0u);
}

}  // namespace
}  // namespace rda::rt
