// Native userspace admission gate.
//
// This is the paper's scheduling extension realized for real threads without
// a kernel patch: a thin adapter over core::AdmissionCore. pp_begin runs the
// same transactional admit pipeline as the simulator gate (shared verbatim —
// registry, predicate, waitlist, fast path, partitioning, feedback all live
// in the core); a denied caller blocks on a condition variable (standing in
// for the kernel wait queue + wake events of §3) until a completing period
// releases enough capacity.
//
// Sharded-core edition: the core is internally synchronized (lock-free calm
// lane + slow mutex), so the gate holds NO lock across core calls. Its one
// mutex (wait_mu_) guards only the wait-channel state: the grant/evict maps
// the core's batched Waker and evict notifier fill in, and the pool-group
// table. The core delivers wakes AFTER releasing its slow mutex, so the
// callbacks lock wait_mu_ themselves; a grant carries its period id so a
// late delivery (racing a timeout-recovery) can never be mistaken for a
// newer period's grant. Every fate transition — grant, watchdog rejection,
// orphan reclaim — pings the condition variable, which is what lets plain
// (non-hardened) waiters use a simple predicate wait without a lost-wakeup
// window.
//
// Threads that never call the API are simply never throttled — exactly the
// paper's behaviour for un-instrumented processes ("our system ignores
// processes that have not provided progress period information").
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "core/admission.hpp"
#include "fault/fault.hpp"
#include "obs/sink.hpp"

namespace rda::rt {

/// Thrown by a blocking begin whose waitlisted request was evicted instead
/// of granted: the starvation watchdog exhausted its degradation ladder
/// (rung 3), or the period was reclaimed out from under the waiter.
class AdmissionRejected : public std::runtime_error {
 public:
  AdmissionRejected(core::PeriodId period, const std::string& why)
      : std::runtime_error("admission rejected for period " +
                           std::to_string(period) + ": " + why),
        period_(period) {}
  core::PeriodId period() const { return period_; }

 private:
  core::PeriodId period_;
};

/// Sliced-wait retry/backoff used when the gate runs hardened (a fault
/// injector is attached or the watchdog is enabled): a sleeper re-checks its
/// fate every slice instead of trusting a single notification, so a lost or
/// delayed wake degrades latency instead of hanging the caller.
struct RetryOptions {
  double initial_slice_seconds = 0.0005;
  double backoff_multiplier = 2.0;
  double max_slice_seconds = 0.05;
};

struct GateConfig {
  /// LLC capacity the admission decisions are made against.
  double llc_capacity_bytes = 15360.0 * 1024.0;  // paper Table 1 default
  /// Multi-resource extension: when > 0, DRAM bandwidth (bytes/second)
  /// becomes a second gated resource (used via begin_multi).
  double bandwidth_capacity = 0.0;
  /// Multi-resource extension: when > 0, a package power budget (watts)
  /// becomes a gated resource (kEnergyBudget demands via begin_multi).
  double energy_capacity_watts = 0.0;
  core::PolicyKind policy = core::PolicyKind::kStrict;
  double oversubscription = 2.0;
  /// Per-resource bound overrides + demand-vector combining policy; see
  /// core::AdmissionConfig.
  std::vector<core::PerResourcePolicy> resource_policies;
  core::CombinerOptions combiner{};
  /// Enable the cached-decision fast path (Fig. 11): a repeat begin with an
  /// unchanged demand against an unchanged load table skips nothing
  /// semantically (the decision is still replayed) but is counted, letting
  /// deployments measure how often a real kernel entry could be elided.
  bool fast_path = false;
  /// §6 streaming partitioning for larger-than-LLC working sets.
  core::PartitionOptions partitioning{};
  /// Counter-feedback demand correction (fed via end(id, observation)).
  core::FeedbackOptions feedback{};
  core::MonitorOptions monitor{};
  /// Admission-lifecycle event sink (non-owning; nullptr = tracing off).
  /// Events are stamped with gate-epoch seconds.
  obs::TraceSink* trace_sink = nullptr;
  /// Fault injection (non-owning; nullptr = off). The gate consults kWake
  /// when delivering a grant (lost/delayed wake); the core consults kRelease
  /// (corrupted counters). Attaching one switches waits to sliced mode.
  fault::FaultInjector* fault_injector = nullptr;
  /// Reap whatever period the calling thread still holds when it exits
  /// (thread_local guard armed on the thread's first begin). Off by default:
  /// the guard registers the gate in a process-wide registry.
  bool reap_on_thread_exit = false;
  RetryOptions retry{};
};

struct GateStats {
  core::MonitorStats monitor;
  /// Begins that had to park AND sleep, counted ONCE per logical wait (a
  /// hardened sliced wait is still one wait; see wait_slices for the slice
  /// count). waits + no_sleep_blocks accounts for every monitor block.
  std::uint64_t waits = 0;
  /// Individual cv sleeps performed by hardened sliced waits (>= waits when
  /// hardened; 0 on the plain path, whose single predicate wait is 1 wait).
  std::uint64_t wait_slices = 0;
  /// Begins whose period visited the waitlist but was admitted on the
  /// in-core second look before the caller ever slept.
  std::uint64_t no_sleep_blocks = 0;
  double total_wait_seconds = 0.0;  ///< cumulative blocked time
  std::uint64_t fast_path_hits = 0;
  std::uint64_t partitioned_periods = 0;
  std::uint64_t lost_wakes = 0;       ///< grants whose notification was dropped
  std::uint64_t recovered_wakes = 0;  ///< dropped grants found by slice polls
};

class AdmissionGate {
 public:
  explicit AdmissionGate(GateConfig config = {});
  ~AdmissionGate();

  AdmissionGate(const AdmissionGate&) = delete;
  AdmissionGate& operator=(const AdmissionGate&) = delete;

  /// pp_begin: blocks until the demand is admitted. Returns the period id
  /// to pass to end().
  core::PeriodId begin(ResourceKind resource, double demand, ReuseLevel reuse,
                       std::string label = {});

  /// Multi-resource pp_begin: blocks until EVERY declared demand is
  /// admitted atomically (e.g. LLC bytes + DRAM bandwidth).
  core::PeriodId begin_multi(std::vector<core::ResourceDemand> demands,
                             ReuseLevel reuse, std::string label = {});

  /// Non-blocking begin: admitted immediately or not at all (the request is
  /// withdrawn, not waitlisted).
  std::optional<core::PeriodId> try_begin(ResourceKind resource,
                                          double demand, ReuseLevel reuse,
                                          std::string label = {});

  /// Bounded-wait begin: gives up (withdrawing the request) after `timeout`.
  /// If the wake races the timeout, the grant is consumed and the id
  /// returned — capacity is never charged to a caller that walked away.
  std::optional<core::PeriodId> begin_for(ResourceKind resource,
                                          double demand, ReuseLevel reuse,
                                          std::chrono::nanoseconds timeout,
                                          std::string label = {});

  /// pp_end.
  void end(core::PeriodId id);

  /// pp_end with observed hardware counters, feeding the demand corrector
  /// (GateConfig::feedback) exactly like the simulator's phase observation.
  void end(core::PeriodId id, const core::ReleaseObservation& observed);

  /// Declares a group of callers (identified by `group`) a task pool
  /// (§3.4): one denied member pauses the group until all fit.
  void mark_pool(std::uint32_t group);

  /// Associates the calling thread with a pool group (default: each thread
  /// is its own singleton group).
  void join_group(std::uint32_t group);

  /// --- Self-healing lifecycle ---------------------------------------------

  /// Reclaims whatever period `thread_id` (a token from
  /// current_thread_token()) left behind: an admitted orphan's load is
  /// returned, a waitlisted orphan is evicted, and the thread's grant flag
  /// and group membership are dropped. Invoked automatically on thread exit
  /// when GateConfig::reap_on_thread_exit is set.
  void reap_thread(std::uint32_t thread_id);

  /// Lease-based reclamation: reaps every period more than `max_epoch_age`
  /// advance_epoch() calls stale. Evicted live waiters observe the reclaim
  /// through their wait (AdmissionRejected / nullopt).
  std::size_t sweep(std::uint64_t max_epoch_age);
  /// Refreshes the calling thread's lease.
  void heartbeat();
  void advance_epoch();

  /// The calling thread's stable gate token (never reused in-process).
  static std::uint32_t current_thread_token() { return self_id(); }

  GateStats stats() const;
  double usage(ResourceKind resource) const;
  std::size_t waiting() const;

  /// Diagnostics for scenario/stress ledgers: the reversible
  /// oversubscription tally (must drain to zero at quiescence) and the
  /// core's shard-accounting audit.
  double oversubscribed(ResourceKind resource) const;
  core::AdmissionCore::AuditReport audit() const;
  /// Per-resource ledger snapshot (see core::AdmissionCore::resource_rows).
  std::vector<obs::ResourceRow> resource_rows() const {
    return core_.resource_rows();
  }

 private:
  enum class WaitMode { kBlocking, kTry, kTimed };

  struct WaitOutcome {
    std::optional<core::PeriodId> id;
    const char* failure = nullptr;  ///< non-null: rejected / reclaimed
  };

  std::optional<core::PeriodId> begin_impl(
      std::vector<core::ResourceDemand> demands, ReuseLevel reuse,
      std::string label, WaitMode mode, std::chrono::nanoseconds timeout);

  /// Single predicate wait on the grant/evict channel (paper-faithful
  /// cooperative path; no injector, no watchdog). Called unlocked.
  WaitOutcome plain_wait(std::uint32_t tid, core::PeriodId id, WaitMode mode,
                         std::chrono::nanoseconds timeout);

  /// Sliced wait with exponential backoff: re-checks grant / rejection /
  /// reclaim / silent admission every slice and drives the time-triggered
  /// watchdog. Called unlocked; core probes run outside wait_mu_.
  WaitOutcome hardened_wait(std::uint32_t tid, core::PeriodId id,
                            WaitMode mode, std::chrono::nanoseconds timeout);

  /// Eats the (possibly still in-flight) grant for `id` after try_withdraw
  /// reported kAlreadyAdmitted, so it cannot linger and satisfy the
  /// thread's NEXT begin.
  void consume_grant(std::uint32_t tid, core::PeriodId id);

  bool hardened() const {
    return config_.fault_injector != nullptr ||
           config_.monitor.watchdog.enable;
  }

  /// Stable small id for the calling thread: a process-lifetime token that
  /// is never reused, unlike std::this_thread::get_id() (which the OS
  /// recycles after thread exit, letting a new thread inherit a dead
  /// thread's group membership and stale granted_ flag).
  static std::uint32_t self_id();
  double now_seconds() const;

  GateConfig config_;
  core::AdmissionCore core_;

  /// Wait-channel lock. Guards granted_, evicted_, groups_ and nothing
  /// else. NEVER held across a core_ call: the core's delivery callbacks
  /// (batch waker, evict notifier) take it, so a core call made with it
  /// held would self-deadlock when the operation delivers.
  mutable std::mutex wait_mu_;
  std::condition_variable cv_;
  /// thread token -> period granted to it. Consumed (erased) by the owner;
  /// an entry whose period doesn't match the owner's current wait is stale
  /// (late delivery after a timeout-recovery) and is ignored/overwritten.
  std::unordered_map<std::uint32_t, core::PeriodId> granted_;
  /// thread token -> (period, reason) for waiters evicted without a grant.
  std::unordered_map<std::uint32_t,
                     std::pair<core::PeriodId, const char*>>
      evicted_;
  std::unordered_map<std::uint32_t, std::uint32_t> groups_;
  /// Sticky "the wait channel has ever carried state" flag: set by the
  /// first delivery (grant or evict) and by join_group. While clear, every
  /// map above is empty, so begin can skip the wait_mu_ scrub entirely —
  /// the uncontended hot path never touches the lock. Safe because period
  /// ids are never reused: a stale entry can never match a new period, so
  /// the scrub is hygiene, not correctness.
  std::atomic<bool> wait_channel_dirty_{false};

  std::atomic<std::uint64_t> waits_{0};
  std::atomic<std::uint64_t> wait_slices_{0};
  std::atomic<std::uint64_t> no_sleep_blocks_{0};
  std::atomic<std::uint64_t> lost_wakes_{0};
  std::atomic<std::uint64_t> recovered_wakes_{0};
  std::atomic<double> total_wait_seconds_{0.0};
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace rda::rt
