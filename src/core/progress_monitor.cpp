#include "core/progress_monitor.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rda::core {

ProgressMonitor::ProgressMonitor(SchedulingPredicate& predicate,
                                 ResourceMonitor& resources,
                                 MonitorOptions options)
    : predicate_(&predicate),
      resources_(&resources),
      options_(options),
      strategy_(make_wake_strategy(options.wake_order,
                                   options.work_conserving)) {}

void ProgressMonitor::set_wake_strategy(
    std::unique_ptr<WakeStrategy> strategy) {
  RDA_CHECK(strategy != nullptr);
  strategy_ = std::move(strategy);
}

void ProgressMonitor::admit(PeriodId id) { admitted_.insert(id); }

void ProgressMonitor::trace(obs::EventKind kind, double now,
                            const PeriodRecord& record) {
  if (sink_ == nullptr) return;
  obs::Event e;
  e.time = now;
  e.kind = kind;
  e.thread = record.thread;
  e.process = record.process;
  e.period = record.id;
  e.resource = record.primary_resource();
  e.demand = record.primary_demand();
  e.set_label(record.label);
  sink_->record(e);
}

void ProgressMonitor::wake_entry(const Waitlist::Entry& entry, double now) {
  ++stats_.wakes;
  if (sink_ != nullptr) {
    const PeriodRecord* record = registry_.find(entry.period);
    RDA_CHECK(record != nullptr);
    trace(obs::EventKind::kWake, now, *record);
  }
  if (waker_) waker_(entry.thread);
}

bool ProgressMonitor::try_admit_pool(sim::ProcessId process, bool force,
                                     double now) {
  // Collect per-resource demand sums of the pool's waiting members.
  double sums[kNumResourceKinds] = {};
  bool any = false;
  for (const Waitlist::Entry& e : waitlist_.entries()) {
    if (e.process != process) continue;
    const PeriodRecord* record = registry_.find(e.period);
    RDA_CHECK(record != nullptr);
    for (const ResourceDemand& d : record->demands) {
      sums[static_cast<std::size_t>(d.resource)] += d.amount;
    }
    any = true;
  }
  if (!any) {
    disabled_pools_.erase(process);
    return true;
  }
  if (!force) {
    for (std::size_t r = 0; r < kNumResourceKinds; ++r) {
      if (sums[r] <= 0.0) continue;
      if (!predicate_->would_admit(static_cast<ResourceKind>(r), sums[r])) {
        return false;
      }
    }
  }
  // Whole group fits (or is forced): admit and wake every member.
  std::vector<Waitlist::Entry> group = waitlist_.remove_process(process);
  for (const Waitlist::Entry& e : group) {
    const PeriodRecord* record = registry_.find(e.period);
    RDA_CHECK(record != nullptr);
    for (const ResourceDemand& d : record->demands) {
      resources_->increment_load(d.resource, d.amount);
    }
    admit(e.period);
    if (force) {
      ++stats_.forced_admissions;
      trace(obs::EventKind::kForceAdmit, now, *record);
    }
    wake_entry(e, now);
  }
  disabled_pools_.erase(process);
  ++stats_.pool_group_admissions;
  return true;
}

ProgressMonitor::BeginOutcome ProgressMonitor::begin_period(
    PeriodRecord record, double now) {
  record.begin_time = now;
  record.lease_epoch = epoch_;
  const sim::ThreadId thread = record.thread;
  const sim::ProcessId process = record.process;
  // insert rejects a nested begin (periods do not nest, §2.3) before any
  // stats or trace mutation: a thrown begin leaves no footprint.
  const PeriodId id = registry_.insert(std::move(record));
  ++stats_.begins;
  const PeriodRecord* stored = registry_.find(id);
  trace(obs::EventKind::kBegin, now, *stored);

  BeginOutcome outcome;
  outcome.id = id;

  const bool member_of_disabled_pool =
      options_.pool_guard && pool_disabled(process);

  if (!member_of_disabled_pool) {
    if (predicate_->try_schedule(*stored)) {
      admit(id);
      ++stats_.immediate_admissions;
      trace(obs::EventKind::kAdmit, now, *stored);
      outcome.admitted = true;
      return outcome;
    }
    // Liveness override: nothing else holds any targeted resource, yet
    // the demand is over the policy bound — it can never fit, so run solo.
    bool targets_free = true;
    for (const ResourceDemand& d : stored->demands) {
      if (!resources_->effectively_free(d.resource)) {
        targets_free = false;
        break;
      }
    }
    if (targets_free) {
      for (const ResourceDemand& d : stored->demands) {
        resources_->increment_load(d.resource, d.amount);
      }
      admit(id);
      ++stats_.forced_admissions;
      trace(obs::EventKind::kForceAdmit, now, *stored);
      outcome.admitted = true;
      outcome.forced = true;
      return outcome;
    }
    if (options_.pool_guard && is_pool(process)) {
      // §3.4: one denied member disables the whole pool.
      disabled_pools_.insert(process);
      ++stats_.pool_disables;
      trace(obs::EventKind::kPoolDisable, now, *stored);
    }
  }

  Waitlist::Entry entry;
  entry.period = id;
  entry.thread = thread;
  entry.process = process;
  entry.enqueue_time = now;
  entry.demand = stored->primary_demand();
  entry.last_escalation_time = now;
  waitlist_.push(entry);
  ++stats_.blocks;
  trace(obs::EventKind::kBlock, now, *stored);
  return outcome;
}

void ProgressMonitor::rescan(double now) {
  // 1. Disabled pools first: they have been waiting as a group.
  //    (copy — try_admit_pool mutates disabled_pools_)
  const std::vector<sim::ProcessId> disabled(disabled_pools_.begin(),
                                             disabled_pools_.end());
  for (sim::ProcessId p : disabled) try_admit_pool(p, /*force=*/false, now);

  // 2. Ordinary entries, in the order the wake strategy picks them. The
  //    fits check is side-effect-free; the load charge happens only after a
  //    candidate is committed, so a strategy can rank all fitting entries
  //    against the same free capacity.
  const auto fits = [&](const Waitlist::Entry& e) {
    if (options_.pool_guard && pool_disabled(e.process)) return false;
    const PeriodRecord* record = registry_.find(e.period);
    RDA_CHECK(record != nullptr);
    return predicate_->would_admit(*record);
  };
  for (;;) {
    const std::size_t i = strategy_->select(waitlist_.entries(), fits);
    if (i == WakeStrategy::npos) break;
    const Waitlist::Entry e = waitlist_.remove_at(i);
    const PeriodRecord* record = registry_.find(e.period);
    RDA_CHECK(record != nullptr);
    RDA_CHECK(predicate_->try_schedule(*record));
    admit(e.period);
    wake_entry(e, now);
  }

  // 3. Liveness: if nothing holds any resource but threads still wait, the
  //    head can never fit under the policy — force it through.
  if (!waitlist_.empty()) {
    bool all_free = true;
    for (std::size_t r = 0; r < kNumResourceKinds; ++r) {
      if (!resources_->effectively_free(static_cast<ResourceKind>(r))) {
        all_free = false;
        break;
      }
    }
    if (all_free) {
      const Waitlist::Entry head = waitlist_.entries().front();
      if (options_.pool_guard && pool_disabled(head.process)) {
        try_admit_pool(head.process, /*force=*/true, now);
      } else {
        const PeriodRecord* record = registry_.find(head.period);
        RDA_CHECK(record != nullptr);
        for (const ResourceDemand& d : record->demands) {
          resources_->increment_load(d.resource, d.amount);
        }
        admit(head.period);
        ++stats_.forced_admissions;
        trace(obs::EventKind::kForceAdmit, now, *record);
        const std::vector<Waitlist::Entry> forced =
            waitlist_.drain_admissible(
                [&](const Waitlist::Entry& e) {
                  return e.period == head.period;
                },
                /*head_only=*/false);
        for (const Waitlist::Entry& e : forced) wake_entry(e, now);
      }
    }
  }

  // 4. Starvation watchdog, round trigger: everything still parked after
  //    the offers above survived one more fruitless wake round.
  if (options_.watchdog.enable) watchdog_rounds(now);
}

void ProgressMonitor::watchdog_rounds(double now) {
  const WatchdogOptions& wd = options_.watchdog;
  if (wd.max_wake_rounds == 0 || waitlist_.empty()) return;
  for (std::size_t i = 0; i < waitlist_.size(); ++i) {
    ++waitlist_.entry_at(i).rounds;
  }
  // One escalation may remove an entry (shifting indices) — restart the
  // scan after each. Terminates: escalate() always resets rounds and either
  // removes the entry or advances/saturates its rung.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t i = 0; i < waitlist_.size(); ++i) {
      const Waitlist::Entry& e = waitlist_.entry_at(i);
      if (e.rung >= 3 || e.rounds < wd.max_wake_rounds) continue;
      escalate(i, now);
      progressed = true;
      break;
    }
  }
}

bool ProgressMonitor::watchdog_tick(double now) {
  const WatchdogOptions& wd = options_.watchdog;
  if (!wd.enable || wd.max_wait_seconds <= 0.0 || waitlist_.empty()) {
    return false;
  }
  bool any = false;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t i = 0; i < waitlist_.size(); ++i) {
      const Waitlist::Entry& e = waitlist_.entry_at(i);
      if (e.rung >= 3) continue;
      if (now - e.last_escalation_time < wd.max_wait_seconds) continue;
      escalate(i, now);
      any = true;
      progressed = true;
      break;
    }
  }
  return any;
}

bool ProgressMonitor::watchdog_stalled(double now) {
  if (!options_.watchdog.enable || waitlist_.empty()) return false;
  for (std::size_t i = 0; i < waitlist_.size(); ++i) {
    if (waitlist_.entry_at(i).rung >= 3) continue;
    escalate(i, now);
    return true;
  }
  return false;  // every waiter has exhausted the ladder
}

bool ProgressMonitor::escalate(std::size_t index, double now) {
  const WatchdogOptions& wd = options_.watchdog;
  Waitlist::Entry& e = waitlist_.entry_at(index);
  e.rounds = 0;
  e.last_escalation_time = now;
  PeriodRecord* record = registry_.find_mutable(e.period);
  RDA_CHECK(record != nullptr);

  // Rung 1: clamp oversized demands to a feasible charge. Applies only when
  // something actually exceeds the bound — a feasible-but-starved waiter
  // (leaked capacity, lost wake) skips straight to the next rung.
  if (e.rung < 1) {
    e.rung = 1;
    if (wd.clamp) {
      bool clamped = false;
      for (ResourceDemand& d : record->demands) {
        const double bound =
            wd.clamp_fraction * resources_->capacity(d.resource);
        if (d.amount > bound) {
          d.amount = bound;
          clamped = true;
        }
      }
      if (clamped) {
        e.demand = record->primary_demand();
        ++stats_.demand_clamps;
        trace(obs::EventKind::kDemandClamp, now, *record);
        if (!(options_.pool_guard && pool_disabled(e.process)) &&
            predicate_->try_schedule(*record)) {
          const Waitlist::Entry woken = waitlist_.remove_at(index);
          admit(woken.period);
          wake_entry(woken, now);
          return true;
        }
        // Feasible now; competes normally from here on.
        return false;
      }
    }
  }

  // Rung 2: forced admission, with the charge mirrored into the separate
  // oversubscription tally so the conservation ledger can audit it.
  if (e.rung < 2) {
    e.rung = 2;
    if (wd.force_admit) {
      for (const ResourceDemand& d : record->demands) {
        resources_->increment_load(d.resource, d.amount);
        resources_->add_oversubscribed(d.resource, d.amount);
      }
      record->oversub = true;
      admit(e.period);
      ++stats_.forced_admissions;
      ++stats_.watchdog_force_admissions;
      trace(obs::EventKind::kForceAdmit, now, *record);
      const Waitlist::Entry woken = waitlist_.remove_at(index);
      wake_entry(woken, now);
      return true;
    }
  }

  // Rung 3: evict with an error. No Waker grant — the substrate surfaces
  // the rejection to the sleeping owner via take_rejection*.
  e.rung = 3;
  if (wd.reject) {
    const Waitlist::Entry evicted = waitlist_.remove_at(index);
    const PeriodRecord closed = registry_.remove(evicted.period);
    ++stats_.rejections;
    trace(obs::EventKind::kReject, now, closed);
    rejected_.emplace(closed.id, closed.thread);
    rejected_by_thread_.emplace(closed.thread, closed.id);
    return true;
  }
  return false;  // ladder fully disabled for this entry; never re-checked
}

ProgressMonitor::ReapOutcome ProgressMonitor::reap_period(
    PeriodId id, double now, bool remember_waiter) {
  ReapOutcome outcome;
  if (registry_.find(id) == nullptr) return outcome;
  outcome.reaped = true;
  outcome.period = id;
  outcome.was_admitted = admitted_.erase(id) != 0;
  if (!outcome.was_admitted) {
    waitlist_.drain_admissible(
        [&](const Waitlist::Entry& e) { return e.period == id; },
        /*head_only=*/false);
    if (remember_waiter) reclaimed_.insert(id);
  }
  const PeriodRecord record = registry_.remove(id);
  ++stats_.reclaims;
  trace(obs::EventKind::kReclaim, now, record);
  if (outcome.was_admitted) {
    for (const ResourceDemand& d : record.demands) {
      resources_->decrement_load(d.resource, d.amount);
      if (record.oversub) {
        resources_->remove_oversubscribed(d.resource, d.amount);
      }
    }
  }
  // Either load was returned or a (possibly pool-disabling) waiter left —
  // both can unblock someone.
  rescan(now);
  return outcome;
}

ProgressMonitor::ReapOutcome ProgressMonitor::reap_thread(
    sim::ThreadId thread, double now, bool remember_waiter) {
  const std::optional<PeriodId> id = registry_.active_for_thread(thread);
  if (!id.has_value()) return {};
  return reap_period(*id, now, remember_waiter);
}

std::size_t ProgressMonitor::sweep(std::uint64_t max_epoch_age, double now,
                                   bool remember_waiters) {
  std::vector<PeriodId> stale;
  for (const PeriodRecord& r : registry_.snapshot()) {
    if (epoch_ - r.lease_epoch > max_epoch_age) stale.push_back(r.id);
  }
  std::sort(stale.begin(), stale.end());  // deterministic reap order
  std::size_t reaped = 0;
  for (PeriodId id : stale) {
    if (reap_period(id, now, remember_waiters).reaped) ++reaped;
  }
  return reaped;
}

void ProgressMonitor::heartbeat(sim::ThreadId thread) {
  const std::optional<PeriodId> id = registry_.active_for_thread(thread);
  if (!id.has_value()) return;
  PeriodRecord* record = registry_.find_mutable(*id);
  RDA_CHECK(record != nullptr);
  record->lease_epoch = epoch_;
}

bool ProgressMonitor::take_rejection(PeriodId id) {
  const auto it = rejected_.find(id);
  if (it == rejected_.end()) return false;
  rejected_by_thread_.erase(it->second);
  rejected_.erase(it);
  return true;
}

std::optional<PeriodId> ProgressMonitor::take_rejection_for_thread(
    sim::ThreadId thread) {
  const auto it = rejected_by_thread_.find(thread);
  if (it == rejected_by_thread_.end()) return std::nullopt;
  const PeriodId id = it->second;
  rejected_.erase(id);
  rejected_by_thread_.erase(it);
  return id;
}

std::vector<sim::ThreadId> ProgressMonitor::rejected_threads() const {
  std::vector<std::pair<PeriodId, sim::ThreadId>> pairs(rejected_.begin(),
                                                        rejected_.end());
  std::sort(pairs.begin(), pairs.end());
  std::vector<sim::ThreadId> out;
  out.reserve(pairs.size());
  for (const auto& [id, thread] : pairs) {
    (void)id;
    out.push_back(thread);
  }
  return out;
}

PeriodRecord ProgressMonitor::end_period(PeriodId id, double now) {
  ++stats_.ends;
  PeriodRecord record = registry_.remove(id);
  const bool was_admitted = admitted_.erase(id) != 0;
  RDA_CHECK_MSG(was_admitted,
                "pp_end on period " << id
                                    << " that was never admitted (still "
                                       "waitlisted?)");
  trace(obs::EventKind::kEnd, now, record);
  for (const ResourceDemand& d : record.demands) {
    resources_->decrement_load(d.resource, d.amount);
    if (record.oversub) {
      resources_->remove_oversubscribed(d.resource, d.amount);
    }
  }
  rescan(now);
  return record;
}

bool ProgressMonitor::cancel_waiting(PeriodId id, double now) {
  if (admitted_.count(id) != 0) return false;
  if (registry_.find(id) == nullptr) return false;
  waitlist_.drain_admissible(
      [&](const Waitlist::Entry& e) { return e.period == id; },
      /*head_only=*/false);
  const PeriodRecord record = registry_.remove(id);
  ++stats_.cancels;
  trace(obs::EventKind::kCancel, now, record);
  // The withdrawn waiter may have been what kept its pool disabled (a
  // timed-out last member used to strand the pool until some unrelated
  // end_period), and under head-only scanning it may have been the barrier
  // in front of admissible entries — re-evaluate both.
  rescan(now);
  return true;
}

}  // namespace rda::core
