# Empty compiler generated dependencies file for ablate_quantum.
# This may be replaced when dependencies are built.
