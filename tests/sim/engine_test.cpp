#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/units.hpp"

namespace rda::sim {
namespace {

using rda::util::MB;

EngineConfig small_machine(int cores = 2) {
  EngineConfig cfg;
  cfg.machine = MachineConfig();
  cfg.machine.cores = cores;
  cfg.machine.llc_bytes = MB(8);
  cfg.machine.dram_bandwidth = 30e9;
  return cfg;
}

PhaseProgram single_phase(double flops, std::uint64_t wss, ReuseLevel reuse,
                          bool marked = false) {
  ProgramBuilder b;
  if (marked) {
    b.period("p", flops, wss, reuse);
  } else {
    b.plain("p", flops, wss, reuse);
  }
  return b.build();
}

TEST(Engine, SingleThreadRunsToCompletion) {
  Engine engine(small_machine(1));
  const ProcessId pid = engine.create_process();
  engine.add_thread(pid, single_phase(1e9, MB(1), ReuseLevel::kHigh));
  const SimResult result = engine.run();
  EXPECT_NEAR(result.total_flops, 1e9, 1.0);
  EXPECT_GT(result.makespan, 0.0);
  EXPECT_FALSE(result.hit_time_limit);
  // Alone with a fitting working set, near-peak throughput.
  EXPECT_GT(result.gflops(), 4.5);
  EXPECT_LT(result.gflops(), 5.6);
}

TEST(Engine, EnergyAccountedForWholeRun) {
  Engine engine(small_machine(2));
  const ProcessId pid = engine.create_process();
  engine.add_thread(pid, single_phase(2e9, MB(1), ReuseLevel::kHigh));
  const SimResult result = engine.run();
  EXPECT_GT(result.package_joules, 0.0);
  EXPECT_GT(result.dram_joules, 0.0);
  EXPECT_GT(result.system_joules(), result.package_joules);
  EXPECT_GT(result.gflops_per_watt(), 0.0);
}

TEST(Engine, TwoThreadsOnTwoCoresRunConcurrently) {
  Engine engine(small_machine(2));
  const ProcessId pid = engine.create_process();
  engine.add_thread(pid, single_phase(1e9, MB(1), ReuseLevel::kHigh));
  engine.add_thread(pid, single_phase(1e9, MB(1), ReuseLevel::kHigh));
  const SimResult result = engine.run();
  Engine solo_engine(small_machine(2));
  const ProcessId solo_pid = solo_engine.create_process();
  solo_engine.add_thread(solo_pid, single_phase(1e9, MB(1), ReuseLevel::kHigh));
  const SimResult solo = solo_engine.run();
  // Independent cores, fitting working sets: near-perfect scaling.
  EXPECT_LT(result.makespan, solo.makespan * 1.1);
  EXPECT_NEAR(result.total_flops, 2e9, 1.0);
}

TEST(Engine, TimeSharingIsFair) {
  // 2 threads, 1 core: both finish, at roughly double the solo time.
  Engine engine(small_machine(1));
  const ProcessId pid = engine.create_process();
  engine.add_thread(pid, single_phase(1e9, MB(1), ReuseLevel::kHigh));
  engine.add_thread(pid, single_phase(1e9, MB(1), ReuseLevel::kHigh));
  const SimResult result = engine.run();
  ASSERT_EQ(result.threads.size(), 2u);
  // Fairness: cpu time within 20% of each other.
  const double a = result.threads[0].cpu_time;
  const double b = result.threads[1].cpu_time;
  EXPECT_NEAR(a, b, 0.2 * std::max(a, b));
  EXPECT_GT(result.context_switches, 0u);
}

TEST(Engine, CacheContentionSlowsCoRunners) {
  // Two high-reuse threads whose working sets together exceed the LLC.
  auto cfg = small_machine(2);
  cfg.machine.llc_bytes = MB(4);
  Engine contended(cfg);
  const ProcessId pid = contended.create_process();
  contended.add_thread(pid, single_phase(2e9, MB(4), ReuseLevel::kHigh));
  contended.add_thread(pid, single_phase(2e9, MB(4), ReuseLevel::kHigh));
  const SimResult both = contended.run();

  Engine alone(cfg);
  const ProcessId pid2 = alone.create_process();
  alone.add_thread(pid2, single_phase(2e9, MB(4), ReuseLevel::kHigh));
  const SimResult solo = alone.run();

  // Each of the co-runners gets only ~half the cache: throughput per thread
  // drops well below solo throughput.
  const double per_thread_gflops = both.total_flops / both.makespan / 2.0;
  const double solo_gflops = solo.total_flops / solo.makespan;
  EXPECT_LT(per_thread_gflops, 0.85 * solo_gflops);
}

TEST(Engine, BarrierSynchronizesProcess) {
  Engine engine(small_machine(2));
  const ProcessId pid = engine.create_process();
  // Thread 0 has much less phase-1 work; the barrier makes it wait.
  PhaseProgram fast = ProgramBuilder()
                          .plain("a", 1e8, MB(1), ReuseLevel::kHigh)
                          .barrier()
                          .plain("b", 1e8, MB(1), ReuseLevel::kHigh)
                          .build();
  PhaseProgram slow = ProgramBuilder()
                          .plain("a", 2e9, MB(1), ReuseLevel::kHigh)
                          .barrier()
                          .plain("b", 1e8, MB(1), ReuseLevel::kHigh)
                          .build();
  engine.add_thread(pid, fast);
  engine.add_thread(pid, slow);
  const SimResult result = engine.run();
  // Both finish; the fast thread's finish time is dominated by the barrier.
  EXPECT_NEAR(result.threads[0].finish_time, result.threads[1].finish_time,
              0.15 * result.threads[1].finish_time);
}

TEST(Engine, BarrierReleasedWhenSiblingFinishes) {
  // Thread 1's program ends before the barrier phase of thread 0 arrives;
  // the barrier must not wait for finished threads.
  Engine engine(small_machine(2));
  const ProcessId pid = engine.create_process();
  PhaseProgram with_barrier = ProgramBuilder()
                                  .plain("a", 5e8, MB(1), ReuseLevel::kHigh)
                                  .barrier()
                                  .plain("b", 1e8, MB(1), ReuseLevel::kHigh)
                                  .build();
  PhaseProgram short_program =
      ProgramBuilder().plain("a", 1e8, MB(1), ReuseLevel::kHigh).build();
  engine.add_thread(pid, with_barrier);
  engine.add_thread(pid, short_program);
  const SimResult result = engine.run();
  EXPECT_FALSE(result.hit_time_limit);
  EXPECT_NEAR(result.total_flops, 7e8, 1.0);
}

TEST(Engine, ManyThreadsAllComplete) {
  auto cfg = small_machine(4);
  Engine engine(cfg);
  for (int p = 0; p < 16; ++p) {
    const ProcessId pid = engine.create_process();
    engine.add_thread(pid,
                      single_phase(2e8, MB(0.5), ReuseLevel::kMedium));
  }
  const SimResult result = engine.run();
  EXPECT_NEAR(result.total_flops, 16 * 2e8, 10.0);
  for (const ThreadStats& t : result.threads) {
    EXPECT_GT(t.finish_time, 0.0);
    EXPECT_GT(t.flops, 0.0);
  }
}

TEST(Engine, TimeLimitAborts) {
  auto cfg = small_machine(1);
  cfg.time_limit = 1e-3;
  Engine engine(cfg);
  const ProcessId pid = engine.create_process();
  engine.add_thread(pid, single_phase(1e12, MB(1), ReuseLevel::kHigh));
  const SimResult result = engine.run();
  EXPECT_TRUE(result.hit_time_limit);
  EXPECT_LT(result.total_flops, 1e12);
}

TEST(Engine, RunIsSingleShot) {
  Engine engine(small_machine(1));
  const ProcessId pid = engine.create_process();
  engine.add_thread(pid, single_phase(1e6, MB(1), ReuseLevel::kLow));
  engine.run();
  EXPECT_THROW(engine.run(), util::CheckFailure);
}

TEST(Engine, ZeroFlopPhasesPassThrough) {
  Engine engine(small_machine(1));
  const ProcessId pid = engine.create_process();
  PhaseProgram program = ProgramBuilder()
                             .plain("empty", 0.0, MB(1), ReuseLevel::kLow)
                             .plain("work", 1e8, MB(1), ReuseLevel::kLow)
                             .plain("empty2", 0.0, 0, ReuseLevel::kLow)
                             .build();
  engine.add_thread(pid, program);
  const SimResult result = engine.run();
  EXPECT_NEAR(result.total_flops, 1e8, 1.0);
  EXPECT_FALSE(result.hit_time_limit);
}

// A gate that denies the first N begins, then admits everything and wakes
// one parked thread per end.
class CountingGate : public PhaseGate {
 public:
  explicit CountingGate(int deny_first) : deny_remaining_(deny_first) {}

  BeginResult on_phase_begin(ThreadId thread, ProcessId, const PhaseSpec&,
                             double) override {
    ++begins_;
    if (deny_remaining_ > 0) {
      --deny_remaining_;
      parked_.push_back(thread);
      return {false, 1e-6};
    }
    return {true, 1e-6};
  }

  EndResult on_phase_end(ThreadId, ProcessId, const PhaseSpec&,
                         const PhaseObservation&, double) override {
    ++ends_;
    if (!parked_.empty() && waker_ != nullptr) {
      const ThreadId tid = parked_.back();
      parked_.pop_back();
      waker_->wake(tid);
    }
    return {1e-6};
  }

  void attach(ThreadWaker& waker) override { waker_ = &waker; }

  int begins_ = 0;
  int ends_ = 0;

 private:
  int deny_remaining_;
  std::vector<ThreadId> parked_;
  ThreadWaker* waker_ = nullptr;
};

TEST(Engine, GateBlocksAndWakesThreads) {
  Engine engine(small_machine(2));
  CountingGate gate(/*deny_first=*/1);
  engine.set_gate(&gate);
  const ProcessId p1 = engine.create_process();
  const ProcessId p2 = engine.create_process();
  engine.add_thread(p1, single_phase(5e8, MB(1), ReuseLevel::kHigh,
                                     /*marked=*/true));
  engine.add_thread(p2, single_phase(5e8, MB(1), ReuseLevel::kHigh,
                                     /*marked=*/true));
  const SimResult result = engine.run();
  EXPECT_EQ(gate.begins_, 2);
  EXPECT_EQ(gate.ends_, 2);
  EXPECT_EQ(result.gate_blocks, 1u);
  EXPECT_NEAR(result.total_flops, 1e9, 1.0);
  // One thread spent time parked.
  const double blocked = result.threads[0].gate_blocked_time +
                         result.threads[1].gate_blocked_time;
  EXPECT_GT(blocked, 0.0);
}

TEST(Engine, UnmarkedPhasesNeverConsultGate) {
  Engine engine(small_machine(1));
  CountingGate gate(0);
  engine.set_gate(&gate);
  const ProcessId pid = engine.create_process();
  engine.add_thread(pid, single_phase(1e8, MB(1), ReuseLevel::kLow,
                                      /*marked=*/false));
  engine.run();
  EXPECT_EQ(gate.begins_, 0);
  EXPECT_EQ(gate.ends_, 0);
}

TEST(Engine, ApiCostChargedToMakespan) {
  // Same work, one run with free API calls, one with expensive ones.
  auto run_with_cost = [&](double cost) {
    Engine engine(small_machine(1));
    class CostGate : public PhaseGate {
     public:
      explicit CostGate(double c) : cost_(c) {}
      BeginResult on_phase_begin(ThreadId, ProcessId, const PhaseSpec&,
                                 double) override {
        return {true, cost_};
      }
      EndResult on_phase_end(ThreadId, ProcessId, const PhaseSpec&,
                             const PhaseObservation&, double) override {
        return {cost_};
      }
      void attach(ThreadWaker&) override {}

     private:
      double cost_;
    };
    CostGate gate(cost);
    engine.set_gate(&gate);
    const ProcessId pid = engine.create_process();
    ProgramBuilder b;
    for (int i = 0; i < 100; ++i) {
      b.period("pp", 1e6, MB(0.5), ReuseLevel::kHigh);
    }
    engine.add_thread(pid, b.build());
    return engine.run().makespan;
  };
  const double cheap = run_with_cost(0.0);
  const double costly = run_with_cost(1e-3);
  // 200 calls x 1ms = 0.2s of pure overhead.
  EXPECT_NEAR(costly - cheap, 0.2, 0.02);
}

}  // namespace
}  // namespace rda::sim
