#include "profiler/pipeline.hpp"

#include <functional>
#include <utility>

#include "profiler/detector.hpp"
#include "profiler/window.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace rda::prof {

ProfilePipeline::ProfilePipeline(PipelineConfig config)
    : config_(std::move(config)),
      // Delegate ladder derivation/validation so pipeline and serial
      // profiler always sweep identical windows.
      ladder_(MultiGranularityProfiler(config_.multi).window_ladder()) {}

PipelineResult ProfilePipeline::run(const trace::TraceArena& arena) const {
  PipelineResult result;
  result.level_reports.resize(ladder_.size());
  std::vector<std::vector<GranularPeriod>> per_level(ladder_.size());

  // One job per ladder level plus (optionally) the reuse pass. Jobs touch
  // only their own slot, so any interleaving yields the same result.
  std::vector<std::function<void()>> jobs;
  jobs.reserve(ladder_.size() + 1);
  for (std::size_t i = 0; i < ladder_.size(); ++i) {
    jobs.push_back([this, &arena, &result, &per_level, i] {
      const std::uint64_t window = ladder_[i];
      WindowConfig wcfg;
      wcfg.window_accesses = window;
      wcfg.hot_threshold = config_.multi.hot_threshold;
      const auto source = arena.records();
      ProfileReport report =
          assemble_report(WindowAnalyzer(wcfg).analyze(*source),
                          PeriodDetector(config_.multi.detector),
                          arena.nest());
      std::vector<GranularPeriod> normalized;
      normalized.reserve(report.periods.size());
      for (const MappedPeriod& mp : report.periods) {
        GranularPeriod g;
        g.window_accesses = window;
        g.first_access = mp.period.first_window * window;
        g.last_access = (mp.period.last_window + 1) * window;
        g.period = mp.period;
        normalized.push_back(std::move(g));
      }
      per_level[i] = std::move(normalized);
      result.level_reports[i] = std::move(report);
    });
  }
  if (config_.reuse_curve) {
    result.reuse = std::make_unique<ReuseDistanceAnalyzer>(
        config_.reuse_granularity, config_.reuse_max_tracked,
        config_.sample_rate);
    jobs.push_back([&arena, reuse = result.reuse.get()] {
      const auto source = arena.records();
      reuse->consume(*source);
    });
  }

  util::parallel_run(jobs, config_.jobs);

  // Sequential tail: assemble per-granularity lists in ladder order and
  // merge coarse to fine — independent of how the jobs were scheduled.
  for (std::size_t i = 0; i < ladder_.size(); ++i) {
    result.multi.per_granularity.emplace_back(ladder_[i],
                                              std::move(per_level[i]));
  }
  result.multi.periods = merge_coarse_to_fine(result.multi.per_granularity,
                                              config_.multi.overlap_tolerance);
  return result;
}

}  // namespace rda::prof
