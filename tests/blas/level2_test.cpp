#include "blas/level2.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace rda::blas {
namespace {

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.next_double(-2.0, 2.0);
  return v;
}

/// Upper-triangular matrix with a well-conditioned diagonal.
std::vector<double> random_upper(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> a(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      a[i * n + j] = rng.next_double(-1.0, 1.0);
    }
    a[i * n + i] = rng.next_double(1.0, 2.0);  // dominant diagonal
  }
  return a;
}

TEST(DgemvN, SmallKnownResult) {
  // A = [[1,2],[3,4]], x = [1,1], y = [10,10]; y := 2*A*x + 1*y.
  const std::vector<double> a = {1, 2, 3, 4};
  const std::vector<double> x = {1, 1};
  std::vector<double> y = {10, 10};
  dgemv_n(2, 2, 2.0, a, x, 1.0, y);
  EXPECT_DOUBLE_EQ(y[0], 2.0 * 3.0 + 10.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0 * 7.0 + 10.0);
}

TEST(DgemvN, BetaZeroOverwritesY) {
  const std::vector<double> a = {1, 0, 0, 1};
  const std::vector<double> x = {5, 7};
  std::vector<double> y = {999, 999};
  dgemv_n(2, 2, 1.0, a, x, 0.0, y);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(DgemvT, TransposeMatchesManualN) {
  // y := A^T x must equal applying dgemv_n with the transposed matrix.
  const std::size_t m = 7, n = 5;
  const std::vector<double> a = random_vector(m * n, 11);
  const std::vector<double> x = random_vector(m, 12);
  std::vector<double> y_t(n, 0.0);
  dgemv_t(m, n, 1.0, a, x, 0.0, y_t);

  std::vector<double> at(n * m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) at[j * m + i] = a[i * n + j];
  }
  std::vector<double> y_n(n, 0.0);
  dgemv_n(n, m, 1.0, at, x, 0.0, y_n);
  for (std::size_t j = 0; j < n; ++j) EXPECT_NEAR(y_t[j], y_n[j], 1e-12);
}

TEST(DtrmvUpper, IdentityIsNoop) {
  const std::size_t n = 6;
  std::vector<double> a(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) a[i * n + i] = 1.0;
  std::vector<double> x = random_vector(n, 13);
  const std::vector<double> x0 = x;
  dtrmv_upper(n, a, x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x0[i], 1e-14);
}

TEST(DtrmvUpper, MatchesDenseMultiply) {
  const std::size_t n = 9;
  const std::vector<double> a = random_upper(n, 14);
  std::vector<double> x = random_vector(n, 15);
  std::vector<double> expected(n, 0.0);
  dgemv_n(n, n, 1.0, a, x, 0.0, expected);  // dense multiply of U (zeros below)
  dtrmv_upper(n, a, x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], expected[i], 1e-12);
}

TEST(DtrsvUpper, InvertsDtrmv) {
  const std::size_t n = 12;
  const std::vector<double> a = random_upper(n, 16);
  const std::vector<double> x0 = random_vector(n, 17);
  std::vector<double> x = x0;
  dtrmv_upper(n, a, x);  // b = U x0
  dtrsv_upper(n, a, x);  // solve U x = b
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x0[i], 1e-10);
}

TEST(DtrsvUpper, SingularDiagonalDetected) {
  std::vector<double> a = {0.0, 1.0, 0.0, 1.0};  // U[0][0] == 0
  std::vector<double> x = {1.0, 1.0};
  EXPECT_THROW(dtrsv_upper(2, a, x), util::CheckFailure);
}

TEST(FlopCounts, Level2) {
  EXPECT_DOUBLE_EQ(dgemv_flops(100, 50), 10000.0);
  EXPECT_DOUBLE_EQ(dtrmv_flops(64), 4096.0);
  EXPECT_DOUBLE_EQ(dtrsv_flops(64), 4096.0);
}

}  // namespace
}  // namespace rda::blas
