// Event/stats reconciliation.
//
// Replays a recorded event stream through the period-lifecycle state
// machine and cross-checks the per-kind event counts against the monitor's
// aggregate MonitorStats. The two are maintained at the same sites in
// ProgressMonitor, so any disagreement means events were lost (ring
// wrap-around), double-emitted, or a lifecycle transition fired from an
// illegal state — exactly the class of bug (nested begins, stranded
// cancels) this layer exists to surface.
//
// Checked invariants:
//   * count(kind) == the matching MonitorStats field, for every kind;
//   * begins == immediate admissions + blocks + begin-path force-admits;
//   * per period: begin first and only once; admit/block only while
//     pending; wake/cancel only while blocked; end only while admitted.
#pragma once

#include <span>
#include <string>

#include "core/progress_monitor.hpp"
#include "obs/event.hpp"

namespace rda::obs {

struct ReconcileReport {
  bool ok = true;
  /// Empty when ok; otherwise newline-joined mismatch descriptions.
  std::string message;

  std::uint64_t begin_forced = 0;    ///< force-admits on the begin path
  std::uint64_t still_blocked = 0;   ///< periods blocked at capture end
  std::uint64_t still_admitted = 0;  ///< periods admitted but not yet ended
};

/// Requires a complete capture (EventRing::dropped() == 0) — a lossy ring
/// cannot reconcile and the counts will (correctly) disagree.
ReconcileReport reconcile(std::span<const Event> events,
                          const core::MonitorStats& stats);

}  // namespace rda::obs
