#include "sim/energy_model.hpp"

#include <gtest/gtest.h>

namespace rda::sim {
namespace {

TEST(EnergyMeter, StartsAtZero) {
  Calibration calib;
  EnergyMeter meter(calib, 12);
  EXPECT_DOUBLE_EQ(meter.package_joules(), 0.0);
  EXPECT_DOUBLE_EQ(meter.dram_joules(), 0.0);
  EXPECT_DOUBLE_EQ(meter.system_joules(), 0.0);
  EXPECT_DOUBLE_EQ(meter.dram_bytes(), 0.0);
}

TEST(EnergyMeter, AllIdleBurnsStaticPowerOnly) {
  Calibration calib;
  EnergyMeter meter(calib, 12);
  meter.accumulate(10.0, /*active=*/0, /*dram_bytes=*/0.0);
  const double expected_pkg =
      10.0 * (12 * calib.core_idle_power + calib.uncore_power);
  EXPECT_NEAR(meter.package_joules(), expected_pkg, 1e-9);
  EXPECT_NEAR(meter.dram_joules(), 10.0 * calib.dram_static_power, 1e-9);
}

TEST(EnergyMeter, ActiveCoresCostMore) {
  Calibration calib;
  EnergyMeter idle(calib, 12), busy(calib, 12);
  idle.accumulate(1.0, 0, 0.0);
  busy.accumulate(1.0, 12, 0.0);
  EXPECT_GT(busy.package_joules(), idle.package_joules());
  const double delta = busy.package_joules() - idle.package_joules();
  EXPECT_NEAR(delta, 12 * (calib.core_active_power - calib.core_idle_power),
              1e-9);
}

TEST(EnergyMeter, DramEnergyScalesWithBytes) {
  Calibration calib;
  EnergyMeter meter(calib, 1);
  meter.accumulate(0.0, 0, 1e9);  // a gigabyte, instantaneously
  EXPECT_NEAR(meter.dram_joules(), 1e9 * calib.dram_energy_per_byte, 1e-12);
  EXPECT_DOUBLE_EQ(meter.dram_bytes(), 1e9);
}

TEST(EnergyMeter, SystemIsPackagePlusDram) {
  Calibration calib;
  EnergyMeter meter(calib, 4);
  meter.accumulate(2.5, 3, 5e8);
  EXPECT_DOUBLE_EQ(meter.system_joules(),
                   meter.package_joules() + meter.dram_joules());
  EXPECT_DOUBLE_EQ(meter.elapsed(), 2.5);
}

TEST(EnergyMeter, AccumulationIsAdditive) {
  Calibration calib;
  EnergyMeter a(calib, 12), b(calib, 12);
  a.accumulate(1.0, 6, 1e8);
  a.accumulate(1.0, 6, 1e8);
  b.accumulate(2.0, 6, 2e8);
  EXPECT_NEAR(a.package_joules(), b.package_joules(), 1e-9);
  EXPECT_NEAR(a.dram_joules(), b.dram_joules(), 1e-9);
}

}  // namespace
}  // namespace rda::sim
