file(REMOVE_RECURSE
  "librda_sim.a"
)
