file(REMOVE_RECURSE
  "CMakeFiles/ablate_oversub.dir/ablate_oversub.cpp.o"
  "CMakeFiles/ablate_oversub.dir/ablate_oversub.cpp.o.d"
  "ablate_oversub"
  "ablate_oversub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_oversub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
