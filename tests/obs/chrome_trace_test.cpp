#include "obs/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/summary.hpp"

namespace rda::obs {
namespace {

std::vector<Event> sample_events() {
  std::vector<Event> events;
  Event e;
  e.thread = 3;
  e.process = 1;
  e.period = 42;
  e.demand = 1048576.0;
  e.set_label("dgemm");
  e.kind = EventKind::kBegin;
  e.time = 1.5;
  events.push_back(e);
  e.kind = EventKind::kBlock;
  e.time = 1.5;
  events.push_back(e);
  e.kind = EventKind::kWake;
  e.time = 2.0;
  events.push_back(e);
  e.kind = EventKind::kEnd;
  e.time = 2.5;
  events.push_back(e);
  return events;
}

TEST(ChromeTrace, EmitsObjectFormatWithAllEvents) {
  const std::string json = chrome_trace_json(sample_events());
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // Begin/end become B/E duration slices named after the label...
  EXPECT_NE(json.find("\"name\":\"dgemm\",\"cat\":\"admission\",\"ph\":\"B\""),
            std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  // ...and block/wake become thread-scoped instants named after the kind.
  EXPECT_NE(json.find("\"name\":\"block\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"wake\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
}

TEST(ChromeTrace, TimestampsAreMicroseconds) {
  const std::string json = chrome_trace_json(sample_events());
  EXPECT_NE(json.find("\"ts\":1500000"), std::string::npos);  // 1.5 s
  EXPECT_NE(json.find("\"ts\":2500000"), std::string::npos);  // 2.5 s
}

TEST(ChromeTrace, ArgsOnBeginButNotOnEnd) {
  const std::string json = chrome_trace_json(sample_events());
  const std::size_t end_pos = json.find("\"ph\":\"E\"");
  ASSERT_NE(end_pos, std::string::npos);
  const std::size_t end_close = json.find('}', end_pos);
  // The E record carries no args object (spec: args belong to the B).
  EXPECT_EQ(json.find("\"args\"", end_pos), json.find("\"args\"", end_close));
  // The B record does.
  EXPECT_NE(json.find("\"args\":{\"period\":42,\"resource\":\"LLC\""),
            std::string::npos);
}

TEST(ChromeTrace, EscapesLabelCharacters) {
  Event e;
  e.set_label("a\"b\\c");
  e.kind = EventKind::kBegin;
  const std::string json = chrome_trace_json({&e, 1});
  EXPECT_NE(json.find("a\\\"b\\\\c"), std::string::npos);
}

TEST(ChromeTrace, EmptyLabelFallsBackToPeriod) {
  Event e;
  e.kind = EventKind::kBegin;
  const std::string json = chrome_trace_json({&e, 1});
  EXPECT_NE(json.find("\"name\":\"period\""), std::string::npos);
}

TEST(Summary, ListsAllKindsAndWaitLine) {
  WaitHistogram waits;
  waits.add(1e-3);
  const std::string text = summarize(sample_events(), waits);
  for (const char* kind : {"begin", "admit", "block", "wake", "force_admit",
                           "pool_disable", "cancel", "end"}) {
    EXPECT_NE(text.find(kind), std::string::npos) << kind;
  }
  EXPECT_NE(text.find("wait latency"), std::string::npos);
  EXPECT_NE(text.find("p50"), std::string::npos);
  EXPECT_NE(text.find("p95"), std::string::npos);
}

TEST(Summary, EmptyCaptureStillRenders) {
  const std::string text = summarize({}, WaitHistogram{});
  EXPECT_NE(text.find("0 events"), std::string::npos);
}

}  // namespace
}  // namespace rda::obs
