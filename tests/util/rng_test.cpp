#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace rda::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(9);
  const std::uint64_t first = a.next_u64();
  a.next_u64();
  a.reseed(9);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, RangedDoubleWithinBounds) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double(-3.0, 7.0);
    EXPECT_GE(d, -3.0);
    EXPECT_LT(d, 7.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(8);
  EXPECT_EQ(rng.next_below(0), 0u);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
  // bound 1 is always 0
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, UniformishCoverage) {
  Rng rng(10);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(16));
  EXPECT_EQ(seen.size(), 16u);  // every bucket hit
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(12);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.next_bool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

}  // namespace
}  // namespace rda::util
