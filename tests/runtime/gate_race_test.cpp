// Wake-delivery race regressions for the native gate.
//
// The single-lock gate hid two bug classes this suite pins:
//   * a lost-wakeup window: end() only pinged the condition variable when
//     the gate ran hardened, and the plain wait predicate only watched the
//     grant flag — so a plain waiter whose fate arrived WITHOUT a Waker
//     grant (evicted by a reap, or racing a timed withdraw) slept to its
//     full timeout (or forever, for a blocking begin);
//   * wait-accounting drift: hardened sliced waits counted every retry
//     slice as a separate wait, inflating GateStats::waits.
// Both are structural in the sharded gate (every fate transition notifies;
// waits are counted once per logical wait) — these tests keep them so.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <optional>
#include <thread>

#include "fault/fault.hpp"
#include "runtime/gate.hpp"
#include "util/units.hpp"

namespace rda {
namespace {

using namespace std::chrono_literals;
using util::MB;

rt::GateConfig plain_config() {
  rt::GateConfig config;
  config.llc_capacity_bytes = static_cast<double>(MB(15));
  config.policy = core::PolicyKind::kStrict;
  return config;
}

/// Failure backstop only — nothing on the success path depends on it.
void await(const std::function<bool()>& pred, const char* what) {
  const auto deadline = std::chrono::steady_clock::now() + 30s;
  while (!pred()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << what;
    std::this_thread::sleep_for(50us);
  }
}

// The timed-begin-vs-release race, rapid-fire: a release lands around the
// waiter's timeout on every round. Whatever side wins, the round must
// resolve promptly and leave no capacity charged, no waiter parked, and no
// stale grant to poison the NEXT round's begin (same thread, new period).
TEST(GateRace, TimedBeginVsReleaseRaceAlwaysResolves) {
  rt::AdmissionGate gate(plain_config());
  for (int round = 0; round < 120; ++round) {
    const core::PeriodId held = gate.begin(
        ResourceKind::kLLC, static_cast<double>(MB(10)), ReuseLevel::kHigh);
    std::optional<core::PeriodId> got;
    std::thread waiter([&gate, &got, round] {
      // Timeout varies through the contention window so successive rounds
      // land the withdraw on both sides of the release.
      got = gate.begin_for(ResourceKind::kLLC, static_cast<double>(MB(10)),
                           ReuseLevel::kHigh,
                           std::chrono::microseconds(50 + 40 * (round % 8)));
    });
    // No park rendezvous here — the waiter may already have timed out and
    // withdrawn. The stagger sweeps the release across the timeout window.
    std::this_thread::sleep_for(std::chrono::microseconds(20 * (round % 11)));
    gate.end(held);
    waiter.join();
    if (got.has_value()) gate.end(*got);
    EXPECT_LT(gate.usage(ResourceKind::kLLC), 1e-6) << "round " << round;
    EXPECT_EQ(gate.waiting(), 0u) << "round " << round;
  }
  const core::AdmissionCore::AuditReport audit = gate.audit();
  EXPECT_TRUE(audit.ok) << audit.detail;
  const rt::GateStats stats = gate.stats();
  EXPECT_EQ(stats.monitor.begins,
            stats.monitor.ends + stats.monitor.cancels);
}

// A plain (non-hardened) timed waiter whose release arrives mid-wait must
// wake on the release, not sleep out its generous timeout.
TEST(GateRace, ReleaseWakesPlainTimedWaiterPromptly) {
  rt::AdmissionGate gate(plain_config());
  const core::PeriodId held = gate.begin(
      ResourceKind::kLLC, static_cast<double>(MB(10)), ReuseLevel::kHigh);
  std::optional<core::PeriodId> got;
  const auto start = std::chrono::steady_clock::now();
  std::thread waiter([&gate, &got] {
    got = gate.begin_for(ResourceKind::kLLC, static_cast<double>(MB(10)),
                         ReuseLevel::kHigh, 30s);
  });
  await([&gate] { return gate.waiting() == 1; }, "waiter to park");
  gate.end(held);
  waiter.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(got.has_value());
  gate.end(*got);
  // Far below the 30 s timeout: the waiter was woken, not timed out.
  EXPECT_LT(elapsed, 10s);
  EXPECT_LT(gate.usage(ResourceKind::kLLC), 1e-6);
}

// A plain timed waiter reaped off the waitlist gets NO grant — only an
// evict notice. The old gate never surfaced those to plain waiters, so the
// reaped waiter slept to its full timeout.
TEST(GateRace, ReapEvictsPlainTimedWaiterPromptly) {
  rt::AdmissionGate gate(plain_config());
  const core::PeriodId held = gate.begin(
      ResourceKind::kLLC, static_cast<double>(MB(10)), ReuseLevel::kHigh);
  std::atomic<std::uint32_t> waiter_token{0};
  std::optional<core::PeriodId> got = core::kInvalidPeriod;
  const auto start = std::chrono::steady_clock::now();
  std::thread waiter([&gate, &waiter_token, &got] {
    waiter_token.store(rt::AdmissionGate::current_thread_token());
    got = gate.begin_for(ResourceKind::kLLC, static_cast<double>(MB(10)),
                         ReuseLevel::kHigh, 30s);
  });
  await([&gate] { return gate.waiting() == 1; }, "waiter to park");
  gate.reap_thread(waiter_token.load());
  waiter.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(got.has_value());
  EXPECT_LT(elapsed, 10s) << "reaped waiter slept toward its timeout";
  gate.end(held);
  EXPECT_LT(gate.usage(ResourceKind::kLLC), 1e-6);
  EXPECT_EQ(gate.stats().monitor.reclaims, 1u);
}

// The blocking flavour: a reaped blocking waiter must observe
// AdmissionRejected instead of sleeping forever.
TEST(GateRace, ReapEvictsPlainBlockingWaiterWithError) {
  rt::AdmissionGate gate(plain_config());
  const core::PeriodId held = gate.begin(
      ResourceKind::kLLC, static_cast<double>(MB(10)), ReuseLevel::kHigh);
  std::atomic<std::uint32_t> waiter_token{0};
  std::atomic<bool> rejected{false};
  std::thread waiter([&gate, &waiter_token, &rejected] {
    waiter_token.store(rt::AdmissionGate::current_thread_token());
    try {
      const core::PeriodId id = gate.begin(
          ResourceKind::kLLC, static_cast<double>(MB(10)), ReuseLevel::kHigh);
      gate.end(id);
    } catch (const rt::AdmissionRejected&) {
      rejected.store(true);
    }
  });
  await([&gate] { return gate.waiting() == 1; }, "waiter to park");
  gate.reap_thread(waiter_token.load());
  waiter.join();
  EXPECT_TRUE(rejected.load());
  gate.end(held);
  EXPECT_LT(gate.usage(ResourceKind::kLLC), 1e-6);
}

// Hardened sliced waits: however many retry slices the sleeper needs, the
// stats record ONE logical wait (the slices are tallied separately), and
// the monitor's block count stays in lock-step.
TEST(GateRace, HardenedWaitCountsOneLogicalWait) {
  // An armed-but-empty injector hardens the gate without injecting faults.
  fault::FaultInjector injector{fault::FaultPlan{}};
  rt::GateConfig config = plain_config();
  config.fault_injector = &injector;
  config.retry.initial_slice_seconds = 0.0002;
  config.retry.max_slice_seconds = 0.002;
  rt::AdmissionGate gate(config);

  const core::PeriodId held = gate.begin(
      ResourceKind::kLLC, static_cast<double>(MB(10)), ReuseLevel::kHigh);
  std::thread waiter([&gate] {
    const core::PeriodId id = gate.begin(
        ResourceKind::kLLC, static_cast<double>(MB(10)), ReuseLevel::kHigh);
    gate.end(id);
  });
  await([&gate] { return gate.waiting() == 1; }, "waiter to park");
  // Hold long enough for several backoff slices to elapse.
  std::this_thread::sleep_for(20ms);
  gate.end(held);
  waiter.join();

  const rt::GateStats stats = gate.stats();
  EXPECT_EQ(stats.monitor.blocks, 1u);
  EXPECT_EQ(stats.waits, 1u) << "sliced wait counted per-slice";
  EXPECT_GE(stats.wait_slices, 2u);
  EXPECT_EQ(stats.no_sleep_blocks, 0u);
  EXPECT_GT(stats.total_wait_seconds, 0.0);
  EXPECT_LT(gate.usage(ResourceKind::kLLC), 1e-6);
}

}  // namespace
}  // namespace rda
