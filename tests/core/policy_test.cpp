#include "core/policy.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/units.hpp"

namespace rda::core {
namespace {

using rda::util::MB;

ResourceState state(double capacity, double usage) {
  return ResourceState{capacity, usage};
}

TEST(StrictPolicy, AllowsExactlyUpToCapacity) {
  StrictPolicy p;
  const ResourceState res = state(100.0, 40.0);
  EXPECT_TRUE(p.allow(/*outcome=*/0.0, res));    // fills exactly
  EXPECT_TRUE(p.allow(/*outcome=*/60.0, res));   // plenty of room
  EXPECT_FALSE(p.allow(/*outcome=*/-1.0, res));  // one byte over
}

TEST(CompromisePolicy, AllowsUpToFactorTimesCapacity) {
  // usage + demand <= 2*capacity <=> outcome >= -capacity.
  CompromisePolicy p(2.0);
  const ResourceState res = state(100.0, 150.0);
  EXPECT_TRUE(p.allow(-100.0, res));   // lands exactly at 2x
  EXPECT_TRUE(p.allow(-50.0, res));
  EXPECT_FALSE(p.allow(-100.1, res));  // just over 2x
}

TEST(CompromisePolicy, FactorOneEqualsStrict) {
  CompromisePolicy compromise(1.0);
  StrictPolicy strict;
  const ResourceState res = state(64.0, 10.0);
  for (double outcome : {-10.0, -0.1, 0.0, 0.1, 30.0}) {
    EXPECT_EQ(compromise.allow(outcome, res), strict.allow(outcome, res))
        << outcome;
  }
}

TEST(CompromisePolicy, SubUnityFactorRejected) {
  EXPECT_THROW(CompromisePolicy{0.5}, util::CheckFailure);
}

TEST(AlwaysAdmitPolicy, AdmitsAnything) {
  AlwaysAdmitPolicy p;
  EXPECT_TRUE(p.allow(-1e18, state(1.0, 1e18)));
}

TEST(PolicyFactory, MapsKinds) {
  EXPECT_EQ(make_policy(PolicyKind::kStrict)->name(), "RDA:Strict");
  EXPECT_EQ(make_policy(PolicyKind::kCompromise, 2.0)->name(),
            "RDA:Compromise(x=2)");
  EXPECT_EQ(make_policy(PolicyKind::kLinuxDefault)->name(), "AlwaysAdmit");
}

TEST(PolicyNames, HumanReadable) {
  EXPECT_EQ(to_string(PolicyKind::kLinuxDefault), "Linux default");
  EXPECT_EQ(to_string(PolicyKind::kStrict), "RDA:Strict");
  EXPECT_EQ(to_string(PolicyKind::kCompromise), "RDA:Compromise");
}

// Algorithm-1 semantics sweep with a real monitor: strict admits while
// usage + demand <= capacity, compromise while <= 2x capacity.
class PolicySweep : public ::testing::TestWithParam<double> {};

TEST_P(PolicySweep, StrictVsCompromiseBoundary) {
  const double demand = GetParam();
  ResourceMonitor monitor;
  monitor.set_capacity(ResourceKind::kLLC, static_cast<double>(MB(15)));
  monitor.increment_load(ResourceKind::kLLC, static_cast<double>(MB(10)));
  const ResourceState& res = monitor.state(ResourceKind::kLLC);
  const double outcome = res.remaining() - demand;

  StrictPolicy strict;
  CompromisePolicy compromise(2.0);
  EXPECT_EQ(strict.allow(outcome, res),
            res.usage + demand <= res.capacity + 1e-9);
  EXPECT_EQ(compromise.allow(outcome, res),
            res.usage + demand <= 2.0 * res.capacity + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Demands, PolicySweep,
    ::testing::Values(0.0, static_cast<double>(MB(1)),
                      static_cast<double>(MB(5)),
                      static_cast<double>(MB(5.0001)),
                      static_cast<double>(MB(15)),
                      static_cast<double>(MB(20)),
                      static_cast<double>(MB(20.0001)),
                      static_cast<double>(MB(40))));

}  // namespace
}  // namespace rda::core
