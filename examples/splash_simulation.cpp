// Simulating a SPLASH-2 application under the three scheduling policies.
//
// Water_nsquared (paper Table 2: 12 processes x 2 threads, three high-reuse
// progress periods of 3.6/3.6/3.7 MB separated by barrier phases) runs on a
// simulated 12-core Xeon E5-2420 and reports the paper's four metrics per
// policy. This is the programmatic entry point to everything the Fig. 7-10
// benches automate.
#include <cstdio>

#include "exp/harness.hpp"

using namespace rda;

int main() {
  const auto specs = workload::table2_workloads();
  const workload::WorkloadSpec& wnsq =
      workload::find_workload(specs, "Water_nsq");

  sim::EngineConfig engine;
  engine.machine = sim::MachineConfig::e5_2420();

  std::printf("simulating %s: %d processes x %d threads on %s\n\n",
              wnsq.name.c_str(), wnsq.processes, wnsq.threads_per_process,
              engine.machine.name.c_str());

  const exp::PolicyComparison cmp = exp::compare_policies(wnsq, engine);

  auto show = [](const exp::RunRow& row) {
    std::printf("  %-22s %8.1f s  %8.2f GFLOPS  %8.0f J system  %7.0f J "
                "DRAM  %6.3f GFLOPS/W\n",
                row.policy.c_str(), row.makespan, row.gflops,
                row.system_joules, row.dram_joules, row.gflops_per_watt);
  };
  show(cmp.baseline);
  show(cmp.strict);
  show(cmp.compromise);

  std::printf(
      "\nvs Linux default: Strict %.2fx speed, %+d%% energy | Compromise "
      "%.2fx speed, %+d%% energy\n",
      cmp.speedup(cmp.strict),
      -static_cast<int>(100 * cmp.energy_drop(cmp.strict)),
      cmp.speedup(cmp.compromise),
      -static_cast<int>(100 * cmp.energy_drop(cmp.compromise)));
  std::printf("(paper §4.2: Water_nsq gets its best energy efficiency from "
              "RDA:Strict — up to the 48%% max energy drop)\n");
  return 0;
}
