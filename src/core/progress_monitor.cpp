#include "core/progress_monitor.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rda::core {

ProgressMonitor::ProgressMonitor(SchedulingPredicate& predicate,
                                 ResourceMonitor& resources,
                                 MonitorOptions options)
    : predicate_(&predicate),
      resources_(&resources),
      options_(options),
      strategy_(make_wake_strategy(options.wake_order,
                                   options.work_conserving)) {}

void ProgressMonitor::set_wake_strategy(
    std::unique_ptr<WakeStrategy> strategy) {
  RDA_CHECK(strategy != nullptr);
  strategy_ = std::move(strategy);
}

void ProgressMonitor::admit(PeriodId id) {
  RDA_CHECK(registry_.mark_admitted(id));
}

void ProgressMonitor::disable_pool(sim::ProcessId process) {
  if (disabled_pools_.insert(process).second) disabled_pool_count_.fetch_add(1);
}

void ProgressMonitor::enable_pool(sim::ProcessId process) {
  if (disabled_pools_.erase(process) != 0) disabled_pool_count_.fetch_sub(1);
}

void ProgressMonitor::trace(obs::EventKind kind, double now,
                            const PeriodRecord& record) {
  if (sink_ == nullptr) return;
  obs::Event e;
  e.time = now;
  e.kind = kind;
  e.thread = record.thread;
  e.process = record.process;
  e.period = record.id;
  e.resource = record.primary_resource();
  e.demand = record.primary_demand();
  e.set_label(record.label);
  sink_->record(e);
}

void ProgressMonitor::wake_entry(const Waitlist::Entry& entry, double now,
                                 bool notify) {
  ++stats_.wakes;
  if (sink_ != nullptr) {
    const PeriodRecord* record = registry_.find(entry.period);
    RDA_CHECK(record != nullptr);
    trace(obs::EventKind::kWake, now, *record);
  }
  if (notify) pending_wakes_.push_back({entry.thread, entry.period});
}

void ProgressMonitor::deliver(PendingDelivery batch) {
  if (!batch.wakes.empty()) {
    if (batch_waker_) {
      batch_waker_(batch.wakes);
    } else if (waker_) {
      for (const WakeGrant& g : batch.wakes) waker_(g.thread);
    }
  }
  if (!batch.evicts.empty() && evict_notifier_) evict_notifier_(batch.evicts);
}

void ProgressMonitor::flush_batch() {
  // Callbacks run outside any batch; should one re-enter the monitor, the
  // nested operation opens its own batch and drains its own additions.
  while (!pending_wakes_.empty() || !pending_evicts_.empty()) {
    std::vector<WakeGrant> wakes;
    wakes.swap(pending_wakes_);
    std::vector<EvictNotice> evicts;
    evicts.swap(pending_evicts_);
    if (!wakes.empty()) {
      if (batch_waker_) {
        batch_waker_(wakes);
      } else if (waker_) {
        for (const WakeGrant& g : wakes) waker_(g.thread);
      }
    }
    if (!evicts.empty() && evict_notifier_) evict_notifier_(evicts);
  }
}

bool ProgressMonitor::try_admit_pool(sim::ProcessId process, bool force,
                                     double now) {
  // Collect per-resource demand sums of the pool's waiting members.
  double sums[kNumResourceKinds] = {};
  bool any = false;
  for (const Waitlist::Entry& e : waitlist_.entries()) {
    if (e.process != process) continue;
    const PeriodRecord* record = registry_.find(e.period);
    RDA_CHECK(record != nullptr);
    for (const ResourceDemand& d : record->demands) {
      sums[static_cast<std::size_t>(d.resource)] += d.amount;
    }
    any = true;
  }
  if (!any) {
    enable_pool(process);
    return true;
  }
  if (!force) {
    // The pool admits as one aggregate period: its summed per-resource
    // demands form a vector the combiner judges exactly like a single
    // period's.
    std::vector<ResourceDemand> group_demand;
    for (std::size_t r = 0; r < kNumResourceKinds; ++r) {
      if (sums[r] <= 0.0) continue;
      group_demand.push_back({static_cast<ResourceKind>(r), sums[r]});
    }
    if (!predicate_->would_admit(group_demand)) return false;
  }
  // Whole group fits (or is forced): admit and wake every member.
  std::vector<Waitlist::Entry> group = waitlist_.remove_process(process);
  for (const Waitlist::Entry& e : group) {
    const PeriodRecord* record = registry_.find(e.period);
    RDA_CHECK(record != nullptr);
    for (const ResourceDemand& d : record->demands) {
      resources_->increment_load(d.resource, d.amount, record->stripe);
    }
    admit(e.period);
    if (force) {
      ++stats_.forced_admissions;
      trace(obs::EventKind::kForceAdmit, now, *record);
    }
    wake_entry(e, now);
  }
  enable_pool(process);
  ++stats_.pool_group_admissions;
  return true;
}

ProgressMonitor::BeginOutcome ProgressMonitor::begin_period(
    PeriodRecord record, double now) {
  WakeBatch batch(*this);
  record.begin_time = now;
  record.lease_epoch = epoch_.load();
  const sim::ThreadId thread = record.thread;
  const sim::ProcessId process = record.process;
  // insert rejects a nested begin (periods do not nest, §2.3) before any
  // stats or trace mutation: a thrown begin leaves no footprint.
  const PeriodId id = registry_.insert(std::move(record));
  ++stats_.begins;
  const PeriodRecord* stored = registry_.find(id);
  trace(obs::EventKind::kBegin, now, *stored);

  BeginOutcome outcome;
  outcome.id = id;

  const bool member_of_disabled_pool =
      options_.pool_guard && pool_disabled(process);

  if (!member_of_disabled_pool) {
    if (predicate_->try_schedule(*stored)) {
      admit(id);
      ++stats_.immediate_admissions;
      trace(obs::EventKind::kAdmit, now, *stored);
      outcome.admitted = true;
      return outcome;
    }
    // Liveness override: nothing else holds any targeted resource, yet
    // the demand is over the policy bound — it can never fit, so run solo.
    bool targets_free = true;
    for (const ResourceDemand& d : stored->demands) {
      if (!resources_->effectively_free(d.resource)) {
        targets_free = false;
        break;
      }
    }
    if (targets_free) {
      for (const ResourceDemand& d : stored->demands) {
        resources_->increment_load(d.resource, d.amount, stored->stripe);
      }
      admit(id);
      ++stats_.forced_admissions;
      trace(obs::EventKind::kForceAdmit, now, *stored);
      outcome.admitted = true;
      outcome.forced = true;
      return outcome;
    }
    if (options_.pool_guard && is_pool(process)) {
      // §3.4: one denied member disables the whole pool.
      disable_pool(process);
      ++stats_.pool_disables;
      trace(obs::EventKind::kPoolDisable, now, *stored);
    }
  }

  Waitlist::Entry entry;
  entry.period = id;
  entry.thread = thread;
  entry.process = process;
  entry.enqueue_time = now;
  entry.demand = stored->primary_demand();
  entry.last_escalation_time = now;
  const std::uint64_t pre_park_version = resources_->version();
  waitlist_.push(entry);  // seq_cst publish: the parker's Dekker store
  ++stats_.blocks;
  trace(obs::EventKind::kBlock, now, *stored);

  // Second look after the park is published — the parker's half of the
  // lost-wake Dekker handshake with the lock-free release lane. A release
  // that drained its budget before our push also missed our waitlist entry;
  // re-running the predicate here sees its returned capacity. When calls
  // are serialized this provably never fires (nothing changed since the
  // failed try_schedule above), so sim traces are untouched.
  if (!(options_.pool_guard && pool_disabled(process))) {
    if (predicate_->try_schedule(*stored)) {
      const std::vector<Waitlist::Entry> self = waitlist_.drain_admissible(
          [id](const Waitlist::Entry& e) { return e.period == id; },
          /*head_only=*/false);
      RDA_CHECK(self.size() == 1);
      admit(id);
      wake_entry(self.front(), now, /*notify=*/false);  // we ARE the waiter
      outcome.admitted = true;
      outcome.woke_from_waitlist = true;
      return outcome;
    }
  } else if (resources_->version() != pre_park_version &&
             try_admit_pool(process, /*force=*/false, now) &&
             is_admitted(id)) {
    // Pool flavour of the same handshake, run only when a lock-free release
    // moved the budget while we parked (version changed) — a release whose
    // Dekker flag load missed our push can have made the whole group fit.
    // Serialized runs never re-check here, keeping legacy trace order. The
    // group admission queued a self-wake for us; withdraw it — we return
    // admitted instead of sleeping.
    for (auto it = pending_wakes_.rbegin(); it != pending_wakes_.rend();
         ++it) {
      if (it->thread == thread) {
        pending_wakes_.erase(std::next(it).base());
        break;
      }
    }
    outcome.admitted = true;
    outcome.woke_from_waitlist = true;
    return outcome;
  }
  return outcome;
}

void ProgressMonitor::rescan_release(double now) {
  WakeBatch batch(*this);
  rescan(now);
}

void ProgressMonitor::rescan(double now) {
  // 1. Disabled pools first: they have been waiting as a group.
  //    (copy — try_admit_pool mutates disabled_pools_)
  const std::vector<sim::ProcessId> disabled(disabled_pools_.begin(),
                                             disabled_pools_.end());
  for (sim::ProcessId p : disabled) try_admit_pool(p, /*force=*/false, now);

  // 2. Ordinary entries, in the order the wake strategy picks them. The
  //    fits check is side-effect-free; the load charge happens only after a
  //    candidate is committed, so a strategy can rank all fitting entries
  //    against the same free capacity.
  const auto fits = [&](const Waitlist::Entry& e) {
    if (options_.pool_guard && pool_disabled(e.process)) return false;
    const PeriodRecord* record = registry_.find(e.period);
    RDA_CHECK(record != nullptr);
    return predicate_->would_admit(*record);
  };
  for (;;) {
    const std::size_t i = strategy_->select(waitlist_.entries(), fits);
    if (i == WakeStrategy::npos) break;
    Waitlist::Entry e = waitlist_.remove_at(i);
    const PeriodRecord* record = registry_.find(e.period);
    RDA_CHECK(record != nullptr);
    if (!predicate_->try_schedule(*record)) {
      // The advisory would_admit read a budget a concurrent fast-lane
      // admission claimed first. Re-park at the original FIFO position and
      // stop: this pass's capacity view is stale. (Serialized, the charge
      // cannot fail — would_admit and try_schedule see the same budget.)
      waitlist_.restore(std::move(e));
      break;
    }
    admit(e.period);
    wake_entry(e, now);
  }

  // 3. Liveness: if nothing holds any resource but threads still wait, the
  //    head can never fit under the policy — force it through.
  if (!waitlist_.empty()) {
    bool all_free = true;
    for (std::size_t r = 0; r < kNumResourceKinds; ++r) {
      if (!resources_->effectively_free(static_cast<ResourceKind>(r))) {
        all_free = false;
        break;
      }
    }
    if (all_free) {
      const Waitlist::Entry head = waitlist_.entries().front();
      if (options_.pool_guard && pool_disabled(head.process)) {
        try_admit_pool(head.process, /*force=*/true, now);
      } else {
        const PeriodRecord* record = registry_.find(head.period);
        RDA_CHECK(record != nullptr);
        for (const ResourceDemand& d : record->demands) {
          resources_->increment_load(d.resource, d.amount, record->stripe);
        }
        admit(head.period);
        ++stats_.forced_admissions;
        trace(obs::EventKind::kForceAdmit, now, *record);
        const std::vector<Waitlist::Entry> forced =
            waitlist_.drain_admissible(
                [&](const Waitlist::Entry& e) {
                  return e.period == head.period;
                },
                /*head_only=*/false);
        for (const Waitlist::Entry& e : forced) wake_entry(e, now);
      }
    }
  }

  // 4. Starvation watchdog, round trigger: everything still parked after
  //    the offers above survived one more fruitless wake round.
  if (options_.watchdog.enable) watchdog_rounds(now);
}

void ProgressMonitor::watchdog_rounds(double now) {
  const WatchdogOptions& wd = options_.watchdog;
  if (wd.max_wake_rounds == 0 || waitlist_.empty()) return;
  for (std::size_t i = 0; i < waitlist_.size(); ++i) {
    ++waitlist_.entry_at(i).rounds;
  }
  // One escalation may remove an entry (shifting indices) — restart the
  // scan after each. Terminates: escalate() always resets rounds and either
  // removes the entry or advances/saturates its rung.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t i = 0; i < waitlist_.size(); ++i) {
      const Waitlist::Entry& e = waitlist_.entry_at(i);
      if (e.rung >= 3 || e.rounds < wd.max_wake_rounds) continue;
      escalate(i, now);
      progressed = true;
      break;
    }
  }
}

bool ProgressMonitor::watchdog_tick(double now) {
  WakeBatch batch(*this);
  const WatchdogOptions& wd = options_.watchdog;
  if (!wd.enable || wd.max_wait_seconds <= 0.0 || waitlist_.empty()) {
    return false;
  }
  bool any = false;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t i = 0; i < waitlist_.size(); ++i) {
      const Waitlist::Entry& e = waitlist_.entry_at(i);
      if (e.rung >= 3) continue;
      if (now - e.last_escalation_time < wd.max_wait_seconds) continue;
      escalate(i, now);
      any = true;
      progressed = true;
      break;
    }
  }
  return any;
}

bool ProgressMonitor::watchdog_stalled(double now) {
  WakeBatch batch(*this);
  if (!options_.watchdog.enable || waitlist_.empty()) return false;
  for (std::size_t i = 0; i < waitlist_.size(); ++i) {
    if (waitlist_.entry_at(i).rung >= 3) continue;
    escalate(i, now);
    return true;
  }
  return false;  // every waiter has exhausted the ladder
}

bool ProgressMonitor::escalate(std::size_t index, double now) {
  const WatchdogOptions& wd = options_.watchdog;
  Waitlist::Entry& e = waitlist_.entry_at(index);
  e.rounds = 0;
  e.last_escalation_time = now;
  PeriodRecord* record = registry_.find_mutable(e.period);
  RDA_CHECK(record != nullptr);

  // Rung 1: clamp oversized demands to a feasible charge. Applies only when
  // something actually exceeds the bound — a feasible-but-starved waiter
  // (leaked capacity, lost wake) skips straight to the next rung.
  if (e.rung < 1) {
    e.rung = 1;
    if (wd.clamp) {
      bool clamped = false;
      for (ResourceDemand& d : record->demands) {
        const double bound =
            wd.clamp_fraction * resources_->capacity(d.resource);
        if (d.amount > bound) {
          d.amount = bound;
          clamped = true;
        }
      }
      if (clamped) {
        e.demand = record->primary_demand();
        ++stats_.demand_clamps;
        trace(obs::EventKind::kDemandClamp, now, *record);
        if (!(options_.pool_guard && pool_disabled(e.process)) &&
            predicate_->try_schedule(*record)) {
          const Waitlist::Entry woken = waitlist_.remove_at(index);
          admit(woken.period);
          wake_entry(woken, now);
          return true;
        }
        // Feasible now; competes normally from here on.
        return false;
      }
    }
  }

  // Rung 2: forced admission, with the charge mirrored into the separate
  // oversubscription tally so the conservation ledger can audit it.
  if (e.rung < 2) {
    e.rung = 2;
    if (wd.force_admit) {
      for (const ResourceDemand& d : record->demands) {
        resources_->increment_load(d.resource, d.amount, record->stripe);
        resources_->add_oversubscribed(d.resource, d.amount);
      }
      record->oversub = true;
      admit(e.period);
      ++stats_.forced_admissions;
      ++stats_.watchdog_force_admissions;
      trace(obs::EventKind::kForceAdmit, now, *record);
      const Waitlist::Entry woken = waitlist_.remove_at(index);
      wake_entry(woken, now);
      return true;
    }
  }

  // Rung 3: evict with an error. No Waker grant — the substrate surfaces
  // the rejection to the sleeping owner via take_rejection* and the
  // batched eviction notice.
  e.rung = 3;
  if (wd.reject) {
    const Waitlist::Entry evicted = waitlist_.remove_at(index);
    const PeriodRecord closed = registry_.remove(evicted.period);
    ++stats_.rejections;
    trace(obs::EventKind::kReject, now, closed);
    rejected_.emplace(closed.id, closed.thread);
    rejected_by_thread_.emplace(closed.thread, closed.id);
    pending_evicts_.push_back(
        {closed.thread, closed.id, "starvation watchdog evicted the request"});
    return true;
  }
  return false;  // ladder fully disabled for this entry; never re-checked
}

ProgressMonitor::ReapOutcome ProgressMonitor::reap_period(
    PeriodId id, double now, bool remember_waiter) {
  ReapOutcome outcome;
  // try_remove claims the record atomically against a racing fast-lane
  // release: whoever removes it owns its discharge, the loser sees nothing.
  std::optional<PeriodRecord> record = registry_.try_remove(id);
  if (!record.has_value()) return outcome;
  outcome.reaped = true;
  outcome.period = id;
  outcome.was_admitted = record->admitted;
  if (!outcome.was_admitted) {
    const std::vector<Waitlist::Entry> drained = waitlist_.drain_admissible(
        [&](const Waitlist::Entry& e) { return e.period == id; },
        /*head_only=*/false);
    if (remember_waiter) {
      reclaimed_.insert(id);
      for (const Waitlist::Entry& e : drained) {
        pending_evicts_.push_back(
            {e.thread, id, "waitlisted period was reclaimed"});
      }
    }
  }
  ++stats_.reclaims;
  trace(obs::EventKind::kReclaim, now, *record);
  if (outcome.was_admitted) {
    for (const ResourceDemand& d : record->demands) {
      resources_->decrement_load(d.resource, d.amount, record->stripe);
      if (record->oversub) {
        resources_->remove_oversubscribed(d.resource, d.amount);
      }
    }
  }
  // Either load was returned or a (possibly pool-disabling) waiter left —
  // both can unblock someone.
  rescan(now);
  return outcome;
}

ProgressMonitor::ReapOutcome ProgressMonitor::reap_thread(
    sim::ThreadId thread, double now, bool remember_waiter) {
  WakeBatch batch(*this);
  const std::optional<PeriodId> id = registry_.active_for_thread(thread);
  if (!id.has_value()) return {};
  return reap_period(*id, now, remember_waiter);
}

std::size_t ProgressMonitor::sweep(std::uint64_t max_epoch_age, double now,
                                   bool remember_waiters) {
  WakeBatch batch(*this);
  const std::uint64_t epoch = epoch_.load();
  std::vector<PeriodId> stale;
  for (const PeriodRecord& r : registry_.snapshot()) {
    if (epoch - r.lease_epoch > max_epoch_age) stale.push_back(r.id);
  }
  std::sort(stale.begin(), stale.end());  // deterministic reap order
  std::size_t reaped = 0;
  for (PeriodId id : stale) {
    if (reap_period(id, now, remember_waiters).reaped) ++reaped;
  }
  return reaped;
}

void ProgressMonitor::heartbeat(sim::ThreadId thread) {
  const std::optional<PeriodId> id = registry_.active_for_thread(thread);
  if (!id.has_value()) return;
  PeriodRecord* record = registry_.find_mutable(*id);
  RDA_CHECK(record != nullptr);
  record->lease_epoch = epoch_.load();
}

bool ProgressMonitor::take_rejection(PeriodId id) {
  const auto it = rejected_.find(id);
  if (it == rejected_.end()) return false;
  rejected_by_thread_.erase(it->second);
  rejected_.erase(it);
  return true;
}

std::optional<PeriodId> ProgressMonitor::take_rejection_for_thread(
    sim::ThreadId thread) {
  const auto it = rejected_by_thread_.find(thread);
  if (it == rejected_by_thread_.end()) return std::nullopt;
  const PeriodId id = it->second;
  rejected_.erase(id);
  rejected_by_thread_.erase(it);
  return id;
}

std::vector<sim::ThreadId> ProgressMonitor::rejected_threads() const {
  std::vector<std::pair<PeriodId, sim::ThreadId>> pairs(rejected_.begin(),
                                                        rejected_.end());
  std::sort(pairs.begin(), pairs.end());
  std::vector<sim::ThreadId> out;
  out.reserve(pairs.size());
  for (const auto& [id, thread] : pairs) {
    (void)id;
    out.push_back(thread);
  }
  return out;
}

PeriodRecord ProgressMonitor::end_period(PeriodId id, double now) {
  WakeBatch batch(*this);
  ++stats_.ends;
  PeriodRecord record = registry_.remove(id);
  RDA_CHECK_MSG(record.admitted,
                "pp_end on period " << id
                                    << " that was never admitted (still "
                                       "waitlisted?)");
  trace(obs::EventKind::kEnd, now, record);
  for (const ResourceDemand& d : record.demands) {
    resources_->decrement_load(d.resource, d.amount, record.stripe);
    if (record.oversub) {
      resources_->remove_oversubscribed(d.resource, d.amount);
    }
  }
  rescan(now);
  return record;
}

std::vector<PeriodRecord> ProgressMonitor::end_periods(
    const std::vector<PeriodId>& ids, double now) {
  WakeBatch batch(*this);
  std::vector<PeriodRecord> records;
  records.reserve(ids.size());
  for (const PeriodId id : ids) {
    ++stats_.ends;
    PeriodRecord record = registry_.remove(id);
    RDA_CHECK_MSG(record.admitted,
                  "pp_end on period " << id
                                      << " that was never admitted (still "
                                         "waitlisted?)");
    trace(obs::EventKind::kEnd, now, record);
    for (const ResourceDemand& d : record.demands) {
      resources_->decrement_load(d.resource, d.amount, record.stripe);
      if (record.oversub) {
        resources_->remove_oversubscribed(d.resource, d.amount);
      }
    }
    records.push_back(std::move(record));
  }
  rescan(now);
  return records;
}

bool ProgressMonitor::cancel_waiting(PeriodId id, double now) {
  WakeBatch batch(*this);
  {
    const PeriodRecord* record = registry_.find(id);
    if (record == nullptr || record->admitted) return false;
  }
  waitlist_.drain_admissible(
      [&](const Waitlist::Entry& e) { return e.period == id; },
      /*head_only=*/false);
  const PeriodRecord record = registry_.remove(id);
  ++stats_.cancels;
  trace(obs::EventKind::kCancel, now, record);
  // The withdrawn waiter may have been what kept its pool disabled (a
  // timed-out last member used to strand the pool until some unrelated
  // end_period), and under head-only scanning it may have been the barrier
  // in front of admissible entries — re-evaluate both.
  rescan(now);
  return true;
}

}  // namespace rda::core
