file(REMOVE_RECURSE
  "CMakeFiles/validate_cache_model.dir/validate_cache_model.cpp.o"
  "CMakeFiles/validate_cache_model.dir/validate_cache_model.cpp.o.d"
  "validate_cache_model"
  "validate_cache_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validate_cache_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
