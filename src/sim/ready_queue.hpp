// Flat binary min-heap ready queue — the CFS red-black-tree stand-in.
//
// The engine previously kept each runqueue as a
// std::set<std::pair<double, ThreadId>>: every enqueue allocated a tree
// node and every pop chased parent/child pointers. A binary heap over one
// contiguous vector gives the same (vruntime, id) pop order — the pair's
// lexicographic comparison breaks vruntime ties by thread id, exactly like
// the set's iteration order — with O(log n) push/pop, no per-enqueue
// allocation (the vector's capacity persists across the simulation), and
// cache-friendly sift paths.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "sim/ids.hpp"
#include "util/check.hpp"

namespace rda::sim {

class ReadyQueue {
 public:
  using Entry = std::pair<double, ThreadId>;  ///< (vruntime, id)

  void push(double vruntime, ThreadId id) {
    heap_.emplace_back(vruntime, id);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }

  /// Removes and returns the smallest (vruntime, id) entry.
  Entry pop_min() {
    RDA_CHECK(!heap_.empty());
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    const Entry top = heap_.back();
    heap_.pop_back();
    return top;
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

 private:
  std::vector<Entry> heap_;  ///< min-heap under std::greater
};

}  // namespace rda::sim
