file(REMOVE_RECURSE
  "librda_util.a"
)
