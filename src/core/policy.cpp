#include "core/policy.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "util/check.hpp"

namespace rda::core {

std::string to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLinuxDefault: return "Linux default";
    case PolicyKind::kStrict: return "RDA:Strict";
    case PolicyKind::kCompromise: return "RDA:Compromise";
  }
  return "?";
}

bool StrictPolicy::allow(double outcome,
                         const ResourceState& resource) const {
  (void)resource;
  return outcome >= 0.0;
}

CompromisePolicy::CompromisePolicy(double oversubscription_factor)
    : factor_(oversubscription_factor) {
  RDA_CHECK_MSG(factor_ >= 1.0, "oversubscription factor below 1 is stricter "
                                "than Strict; use StrictPolicy");
}

bool CompromisePolicy::allow(double outcome,
                             const ResourceState& resource) const {
  // usage + demand <= factor * capacity  <=>  outcome >= -(factor-1)*capacity
  return outcome >= -(factor_ - 1.0) * resource.capacity;
}

double CompromisePolicy::admission_bound(double capacity) const {
  return factor_ * capacity;
}

std::string CompromisePolicy::name() const {
  std::ostringstream os;
  os << "RDA:Compromise(x=" << factor_ << ")";
  return os.str();
}

bool AlwaysAdmitPolicy::allow(double outcome,
                              const ResourceState& resource) const {
  (void)outcome;
  (void)resource;
  return true;
}

double AlwaysAdmitPolicy::admission_bound(double capacity) const {
  (void)capacity;
  return std::numeric_limits<double>::infinity();
}

std::unique_ptr<SchedulingPolicy> make_policy(PolicyKind kind,
                                              double oversubscription) {
  switch (kind) {
    case PolicyKind::kLinuxDefault:
      return std::make_unique<AlwaysAdmitPolicy>();
    case PolicyKind::kStrict:
      return std::make_unique<StrictPolicy>();
    case PolicyKind::kCompromise:
      return std::make_unique<CompromisePolicy>(oversubscription);
  }
  return std::make_unique<AlwaysAdmitPolicy>();
}

// --- Combining policies -----------------------------------------------------

std::string_view to_string(CombinerKind kind) {
  switch (kind) {
    case CombinerKind::kAllMustFit: return "all-must-fit";
    case CombinerKind::kWeightedSum: return "weighted-sum";
    case CombinerKind::kPriorityOrdered: return "priority-ordered";
  }
  return "?";
}

namespace {

std::size_t idx(ResourceKind kind) { return static_cast<std::size_t>(kind); }

/// Charge `demand` even if its budget is exhausted: take what the budget
/// has via try_acquire, otherwise force the charge through increment_load,
/// which books the shortfall as overdraft so the per-kind conservation
/// invariant survives and decrement_load pays it back symmetrically.
void acquire_or_force(ResourceMonitor& resources, const ResourceDemand& d,
                      std::uint32_t stripe) {
  if (!resources.try_acquire(d.resource, d.amount, stripe)) {
    resources.increment_load(d.resource, d.amount, stripe);
  }
}

class AllMustFitCombiner final : public CombiningPolicy {
 public:
  CombinerKind kind() const override { return CombinerKind::kAllMustFit; }
  std::string name() const override { return "all-must-fit"; }

  bool would_admit(const std::vector<ResourceDemand>& demands,
                   const ResourceMonitor& resources,
                   const PolicyTable& policies) const override {
    for (const ResourceDemand& d : demands) {
      const ResourceState& res = resources.state(d.resource);
      if (!policies[idx(d.resource)]->allow(res.remaining() - d.amount, res)) {
        return false;
      }
    }
    return true;
  }

  bool try_schedule(const std::vector<ResourceDemand>& demands,
                    std::uint32_t stripe, ResourceMonitor& resources,
                    const PolicyTable& policies) const override {
    (void)policies;  // each kind's bound is baked into its budget
    for (std::size_t i = 0; i < demands.size(); ++i) {
      const ResourceDemand& d = demands[i];
      if (!resources.try_acquire(d.resource, d.amount, stripe)) {
        for (std::size_t j = 0; j < i; ++j) {
          resources.decrement_load(demands[j].resource, demands[j].amount,
                                   stripe);
        }
        return false;
      }
    }
    return true;
  }
};

class WeightedSumCombiner final : public CombiningPolicy {
 public:
  explicit WeightedSumCombiner(const CombinerOptions& options)
      : threshold_(options.weighted_threshold), weights_(options.weights) {
    RDA_CHECK_MSG(threshold_ > 0.0,
                  "weighted-sum threshold must be positive");
  }

  CombinerKind kind() const override { return CombinerKind::kWeightedSum; }
  std::string name() const override {
    std::ostringstream os;
    os << "weighted-sum(t=" << threshold_ << ")";
    return os.str();
  }

  bool would_admit(const std::vector<ResourceDemand>& demands,
                   const ResourceMonitor& resources,
                   const PolicyTable& policies) const override {
    // Weight-averaged post-admission utilization over the declared kinds
    // with finite bounds. A single over-packed resource can be compensated
    // by slack on the others — the "compositional apportioning" admit.
    double weighted = 0.0;
    double weight_total = 0.0;
    for (const ResourceDemand& d : demands) {
      const ResourceState& res = resources.state(d.resource);
      const double bound =
          policies[idx(d.resource)]->admission_bound(res.capacity);
      if (!std::isfinite(bound) || bound <= 0.0) continue;
      const double w = weights_[idx(d.resource)];
      weighted += w * (res.usage + d.amount) / bound;
      weight_total += w;
    }
    if (weight_total <= 0.0) return true;
    return weighted / weight_total <= threshold_;
  }

  bool try_schedule(const std::vector<ResourceDemand>& demands,
                    std::uint32_t stripe, ResourceMonitor& resources,
                    const PolicyTable& policies) const override {
    if (!would_admit(demands, resources, policies)) return false;
    // An admitted vector is charged in full: resources whose own budget is
    // exhausted (compensated by slack elsewhere) go through the overdraft.
    for (const ResourceDemand& d : demands) {
      acquire_or_force(resources, d, stripe);
    }
    return true;
  }

 private:
  double threshold_;
  std::array<double, kNumResourceKinds> weights_;
};

class PriorityOrderedCombiner final : public CombiningPolicy {
 public:
  CombinerKind kind() const override {
    return CombinerKind::kPriorityOrdered;
  }
  std::string name() const override { return "priority-ordered"; }

  bool would_admit(const std::vector<ResourceDemand>& demands,
                   const ResourceMonitor& resources,
                   const PolicyTable& policies) const override {
    // Only the first-declared (dominant) demand gates admission; the rest
    // ride along on the overdraft if their budgets are tight.
    if (demands.empty()) return true;
    const ResourceDemand& d = demands.front();
    const ResourceState& res = resources.state(d.resource);
    return policies[idx(d.resource)]->allow(res.remaining() - d.amount, res);
  }

  bool try_schedule(const std::vector<ResourceDemand>& demands,
                    std::uint32_t stripe, ResourceMonitor& resources,
                    const PolicyTable& policies) const override {
    (void)policies;
    if (demands.empty()) return true;
    if (!resources.try_acquire(demands.front().resource,
                               demands.front().amount, stripe)) {
      return false;
    }
    for (std::size_t i = 1; i < demands.size(); ++i) {
      acquire_or_force(resources, demands[i], stripe);
    }
    return true;
  }
};

}  // namespace

std::unique_ptr<CombiningPolicy> make_combiner(const CombinerOptions& options) {
  switch (options.kind) {
    case CombinerKind::kAllMustFit:
      return std::make_unique<AllMustFitCombiner>();
    case CombinerKind::kWeightedSum:
      return std::make_unique<WeightedSumCombiner>(options);
    case CombinerKind::kPriorityOrdered:
      return std::make_unique<PriorityOrderedCombiner>();
  }
  return std::make_unique<AllMustFitCombiner>();
}

const CombiningPolicy& default_combiner() {
  static const AllMustFitCombiner combiner;
  return combiner;
}

}  // namespace rda::core
