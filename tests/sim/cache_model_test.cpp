#include "sim/cache_model.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace rda::sim {
namespace {

using rda::util::MB;

TEST(LlcModel, PhaseLifecycle) {
  LlcModel llc(MB(15));
  EXPECT_FALSE(llc.registered(1));
  llc.phase_enter(1, MB(2));
  EXPECT_TRUE(llc.registered(1));
  EXPECT_DOUBLE_EQ(llc.occupancy_bytes(1), 0.0);
  EXPECT_DOUBLE_EQ(llc.resident_fraction(1), 0.0);
  llc.phase_exit(1);
  EXPECT_FALSE(llc.registered(1));
  llc.check_invariants();
}

TEST(LlcModel, DoubleEnterRejected) {
  LlcModel llc(MB(15));
  llc.phase_enter(1, MB(1));
  EXPECT_THROW(llc.phase_enter(1, MB(1)), util::CheckFailure);
}

TEST(LlcModel, ExitWithoutEnterRejected) {
  LlcModel llc(MB(15));
  EXPECT_THROW(llc.phase_exit(7), util::CheckFailure);
}

TEST(LlcModel, FillGrowsTowardWorkingSet) {
  LlcModel llc(MB(15));
  llc.phase_enter(1, MB(2));
  llc.advance({{1, static_cast<double>(MB(1)), 0.0}});
  EXPECT_DOUBLE_EQ(llc.occupancy_bytes(1), static_cast<double>(MB(1)));
  EXPECT_NEAR(llc.resident_fraction(1), 0.5, 1e-12);
  // Over-filling saturates at the working set.
  llc.advance({{1, static_cast<double>(MB(5)), 0.0}});
  EXPECT_DOUBLE_EQ(llc.occupancy_bytes(1), static_cast<double>(MB(2)));
  EXPECT_DOUBLE_EQ(llc.resident_fraction(1), 1.0);
  llc.check_invariants();
}

TEST(LlcModel, CapacityOverflowEvictsProportionally) {
  LlcModel llc(MB(10));
  llc.phase_enter(1, MB(8));
  llc.phase_enter(2, MB(8));
  llc.advance({{1, static_cast<double>(MB(8)), 0.0},
               {2, static_cast<double>(MB(8)), 0.0}});
  // 16 MB demanded of a 10 MB cache: both get scaled to ~5 MB.
  EXPECT_NEAR(llc.total_occupancy(), static_cast<double>(MB(10)), 1.0);
  EXPECT_NEAR(llc.occupancy_bytes(1), llc.occupancy_bytes(2), 1.0);
  llc.check_invariants();
}

TEST(LlcModel, StreamingEvictsResidents) {
  LlcModel llc(MB(10));
  llc.phase_enter(1, MB(5));
  llc.advance({{1, static_cast<double>(MB(5)), 0.0}});
  EXPECT_DOUBLE_EQ(llc.resident_fraction(1), 1.0);
  llc.phase_enter(2, MB(1));
  // Thread 2 streams 20 MB through the cache; thread 1 must lose lines.
  llc.advance({{2, 0.0, static_cast<double>(MB(20))}});
  EXPECT_LT(llc.resident_fraction(1), 1.0);
  EXPECT_GT(llc.resident_fraction(1), 0.0);
  llc.check_invariants();
}

TEST(LlcModel, ExitReleasesOccupancyForOthers) {
  LlcModel llc(MB(10));
  llc.phase_enter(1, MB(8));
  llc.phase_enter(2, MB(8));
  llc.advance({{1, static_cast<double>(MB(8)), 0.0},
               {2, static_cast<double>(MB(8)), 0.0}});
  llc.phase_exit(1);
  const double before = llc.occupancy_bytes(2);
  // With 1 gone, 2 can now grow to its full working set.
  llc.advance({{2, static_cast<double>(MB(8)), 0.0}});
  EXPECT_GT(llc.occupancy_bytes(2), before);
  EXPECT_NEAR(llc.resident_fraction(2), 1.0, 1e-9);
  llc.check_invariants();
}

TEST(LlcModel, ZeroWssPhaseIsFullyResident) {
  LlcModel llc(MB(10));
  llc.phase_enter(1, 0);
  EXPECT_DOUBLE_EQ(llc.resident_fraction(1), 1.0);
  llc.check_invariants();
}

TEST(LlcModel, UnknownFillRejected) {
  LlcModel llc(MB(10));
  EXPECT_THROW(llc.advance({{99, 100.0, 0.0}}), util::CheckFailure);
}

// Property sweep: random fill/exit sequences never violate the invariants.
class LlcPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LlcPropertyTest, InvariantsHoldUnderRandomTraffic) {
  util::Rng rng(GetParam());
  LlcModel llc(MB(15));
  std::vector<ThreadId> active;
  ThreadId next_id = 0;
  for (int step = 0; step < 2000; ++step) {
    const double action = rng.next_double();
    if (action < 0.15 && active.size() < 24) {
      const ThreadId tid = next_id++;
      llc.phase_enter(tid, MB(rng.next_double(0.1, 6.0)));
      active.push_back(tid);
    } else if (action < 0.25 && !active.empty()) {
      const std::size_t idx = rng.next_below(active.size());
      llc.phase_exit(active[idx]);
      active.erase(active.begin() + static_cast<long>(idx));
    } else if (!active.empty()) {
      std::vector<FillTraffic> fills;
      for (const ThreadId tid : active) {
        if (rng.next_bool(0.5)) {
          fills.push_back({tid, rng.next_double(0, 1e6),
                           rng.next_double(0, 1e6)});
        }
      }
      llc.advance(fills);
    }
    llc.check_invariants();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LlcPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 17, 23));

}  // namespace
}  // namespace rda::sim
