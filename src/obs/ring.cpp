#include "obs/ring.hpp"

#include "util/check.hpp"

namespace rda::obs {

namespace {
std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

EventRing::EventRing(std::size_t capacity) {
  RDA_CHECK(capacity > 0);
  slots_.resize(round_up_pow2(capacity));
}

void EventRing::push(const Event& event) {
  SpinGuard guard(lock_);
  slots_[next_ & (slots_.size() - 1)] = event;
  ++next_;
}

std::vector<Event> EventRing::snapshot() const {
  SpinGuard guard(lock_);
  const std::size_t mask = slots_.size() - 1;
  const std::uint64_t held =
      next_ < slots_.size() ? next_ : static_cast<std::uint64_t>(slots_.size());
  std::vector<Event> out;
  out.reserve(static_cast<std::size_t>(held));
  for (std::uint64_t i = next_ - held; i < next_; ++i) {
    out.push_back(slots_[i & mask]);
  }
  return out;
}

std::uint64_t EventRing::total_recorded() const {
  SpinGuard guard(lock_);
  return next_;
}

std::uint64_t EventRing::dropped() const {
  SpinGuard guard(lock_);
  return next_ < slots_.size() ? 0 : next_ - slots_.size();
}

}  // namespace rda::obs
