// Multi-resource periods on the native gate: streaming kernels declare both
// an LLC footprint AND a DRAM-bandwidth appetite, and the gate admits only
// as many concurrent streams as the memory system can serve.
//
// This is the extension that fixes the paper's one losing case (BLAS-1):
// LLC-only admission cannot see that streams fight over bandwidth, so it
// happily co-schedules all of them.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "blas/level1.hpp"
#include "runtime/affinity.hpp"
#include "runtime/gate.hpp"
#include "util/units.hpp"

using namespace rda;
using rda::util::MB;

namespace {

constexpr int kStreams = 8;
constexpr std::size_t kVector = 4u << 20;  // 32 MB per operand: streams DRAM
constexpr int kPassesPerStream = 4;

double run(bool gate_bandwidth) {
  rt::GateConfig cfg;
  cfg.llc_capacity_bytes =
      static_cast<double>(rt::detect_llc_bytes().value_or(MB(15)));
  // Assume a 20 GB/s budget; each daxpy pass over 2x32 MB operands streams
  // ~24 bytes/flop-pair, so declare ~8 GB/s per stream.
  cfg.bandwidth_capacity = gate_bandwidth ? 20e9 : 0.0;
  cfg.policy = core::PolicyKind::kStrict;
  rt::AdmissionGate gate(cfg);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int w = 0; w < kStreams; ++w) {
    workers.emplace_back([&, w] {
      std::vector<double> x(kVector, 1.0 + w), y(kVector, 0.5);
      for (int pass = 0; pass < kPassesPerStream; ++pass) {
        core::PeriodId id;
        if (gate_bandwidth) {
          id = gate.begin_multi(
              {{ResourceKind::kLLC, static_cast<double>(MB(0.6))},
               {ResourceKind::kMemBandwidth, 8e9}},
              ReuseLevel::kLow, "daxpy");
        } else {
          id = gate.begin(ResourceKind::kLLC, static_cast<double>(MB(0.6)),
                          ReuseLevel::kLow, "daxpy");
        }
        blas::daxpy(1.0001, x, y);
        gate.end(id);
      }
    });
  }
  for (auto& t : workers) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const rt::GateStats stats = gate.stats();
  std::printf("    %llu begins, %llu waits (%.1f ms waiting)\n",
              static_cast<unsigned long long>(stats.monitor.begins),
              static_cast<unsigned long long>(stats.waits),
              1e3 * stats.total_wait_seconds);
  return seconds;
}

}  // namespace

int main() {
  const double flops =
      blas::daxpy_flops(kVector) * kStreams * kPassesPerStream;
  std::printf("%d daxpy streams x %d passes over %.0f MB operands\n\n",
              kStreams, kPassesPerStream,
              util::bytes_to_mb(kVector * sizeof(double)));

  std::printf("  LLC-only gating (paper behaviour):\n");
  const double plain = run(false);
  std::printf("    %.3f s, %.2f GFLOPS aggregate\n\n", plain,
              flops / plain / 1e9);

  std::printf("  LLC + bandwidth gating (extension, <=2 streams at once):\n");
  const double gated = run(true);
  std::printf("    %.3f s, %.2f GFLOPS aggregate\n\n", gated,
              flops / gated / 1e9);

  std::printf("on a bandwidth-starved machine the gated run matches the "
              "ungated throughput while keeping surplus cores free (in the "
              "simulator: ~40%% energy saving — see bench/ablate_bandwidth)."
              "\n");
  return 0;
}
