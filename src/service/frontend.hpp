// ServiceFrontEnd — the traffic-scale admission front end (ROADMAP item 2).
//
// Wires the open-loop arrival stream into the sharded AdmissionCore the way
// a production service would: arrivals are routed AT PUSH TIME to one of K
// drain shards (a seeded hash of the tenant id — K defaults to the node
// count), each with its own bounded MPSC submission queue; the drain loop
// runs on a fixed virtual-time cadence and, per pass, (1) releases every
// period whose service completed, (2) lets an idle node steal a parked
// tenant batch, (3) drains each shard's mailbox and queue, merges the
// shard streams into one deterministic batch, routes each submission to a
// node, and admits each node's share with ONE admit_batch/release_batch
// call — so the slow-lane mutex, the waitlist rescan, and the wake
// delivery are paid once per node per pass instead of once per period.
//
// Sharded drain execution model (DESIGN §16). Each shard is the sole
// consumer of its own queue; cross-shard effects (steals, node-death
// reroutes) go through seniority-ordered per-shard mailboxes drained at
// pass start, so no shard ever touches another shard's queue tail. In
// virtual time the shards run lockstep rounds and the pass merges their
// streams back into the canonical global order — all mailbox requeues
// first (ascending seniority = decision order), then a k-way min-seq merge
// of the shard staging runways — so the run is byte-identical for ANY
// shard count: K=1, K=4, and K=16 produce the same checksum, the same
// trace, the same CSV. The overload ladder stays global for the same
// reason (per-shard EWMAs would make admission decisions depend on K);
// per-shard backlog EWMAs exist but are observability-only.
//
// Placement is locality-aware: a tenant's periods follow its home node (the
// one already holding its LLC working set — warm periods run faster by
// warm_service_factor), parking on the home's waitlist up to
// home_park_limit deep before spilling cold to the least-loaded node, and
// falling back to least-loaded when the home is down. Whole-tenant-batch
// work stealing keeps a rejoined node from idling without shearing any
// tenant's working set across two LLCs.
//
// Overload control reuses the degradation-ladder shape of the admission
// watchdog, keyed off the backlog and admission-latency EWMAs:
//   rung 0  normal admission,
//   rung 1  clamp: demands capped to clamp_fraction × node LLC (easier to
//           admit, at a service-time penalty for the clamped period),
//   rung 2  forced oversubscription: declared demand is additionally
//           divided by the oversubscription factor, packing ~x tenants'
//           working sets per LLC (every rung-2 period pays the thrash
//           penalty),
//   rung 3  shed: drained submissions are dropped before admission.
//
// The whole simulation is virtual-time and single-threaded: a (config,
// arrival seed) pair reproduces the run bit-for-bit, which the tier-1
// byte-determinism stage depends on. The wall-clock counterpart (real
// producer threads against one core) lives in service/pump.hpp.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <queue>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/admission.hpp"
#include "core/tenant_ledger.hpp"
#include "obs/histogram.hpp"
#include "obs/sink.hpp"
#include "service/arrival.hpp"
#include "service/queue.hpp"
#include "service/shard.hpp"
#include "util/rng.hpp"

namespace rda::service {

enum class RoutePolicy {
  kLocalityAware,  ///< tenant-home placement + whole-batch stealing
  kRandom,         ///< uniform random over up nodes (the strawman)
  kLeastLoaded,    ///< smallest outstanding declared demand
};

std::string_view to_string(RoutePolicy policy);

struct LadderOptions {
  /// Escalate one rung when the backlog EWMA (queued + parked) exceeds
  /// this, or the admission-latency EWMA exceeds latency_high_seconds.
  double queue_high = 512.0;
  double latency_high_seconds = 0.050;
  double ewma_alpha = 0.25;
  /// De-escalation happens when BOTH EWMAs fall below half their
  /// thresholds (hysteresis keeps the ladder from flapping).
};

/// Node death at full load (the fault-matrix cell): the node goes down at
/// fail_at (parked periods are cancelled, admitted ones reaped; both are
/// re-queued) and rejoins idle at recover_at (<= fail_at = never).
struct NodeFault {
  int node = -1;
  double fail_at_seconds = 0.0;
  double recover_at_seconds = 0.0;
};

struct ServiceConfig {
  int nodes = 4;
  /// Drain shards (K): submissions are routed at push time to shard
  /// shard_of_tenant(seed, tenant, K), each shard owning its own bounded
  /// queue. 0 = one shard per node. Byte-determinism holds for ANY K — the
  /// lockstep merge restores the canonical global order — so K is purely a
  /// concurrency knob for the wall-clock pump, never a behavior knob.
  int drain_shards = 0;
  /// Per-node LLC capacity the admission cores gate against.
  double node_llc_bytes = 15360.0 * 1024.0;
  /// Per-node DRAM bandwidth capacity (bytes/second); 0 = bandwidth is not
  /// a gated resource (arrivals' bw demands are ignored).
  double node_bandwidth = 0.0;
  /// Per-node package power budget (watts); 0 = energy is not gated.
  double node_energy_watts = 0.0;
  RoutePolicy routing = RoutePolicy::kLocalityAware;
  double drain_interval_seconds = 1.0e-3;
  std::size_t drain_batch_max = 4096;
  std::size_t queue_capacity = 1 << 16;
  LadderOptions ladder{};
  /// Rung-2 under-declaration factor (the paper's Compromise x).
  double oversubscription = 2.0;
  /// Rung-1 demand cap as a fraction of node LLC capacity.
  double clamp_fraction = 0.5;
  /// Rung-3 SLO-aware shedding: keep the floor(fraction × batch) drained
  /// submissions carrying the MOST declared work (demand × service time)
  /// and shed the cheap tail — under overload the expensive admissions are
  /// the ones goodput cannot afford to rebuild. 0 = shed the whole batch
  /// (the old drop-all behavior, kept as the regression baseline).
  double shed_keep_fraction = 0.25;
  /// Bounded home affinity (kLocalityAware only): a period whose home is
  /// up parks on the home's waitlist as long as fewer than this many
  /// periods are already parked there — it will run warm once capacity
  /// frees. Beyond the limit it spills cold to a node that can admit it
  /// immediately, if one exists (the home does NOT move), capping the
  /// latency a hot tenant can pay for warmth; with the whole fleet
  /// saturated it parks at home regardless, since waiting warm dominates
  /// waiting cold.
  std::size_t home_park_limit = 2;
  /// Service-time multipliers: a warm period (placed on its tenant's home
  /// node) runs faster; clamped and oversubscribed periods run slower.
  double warm_service_factor = 0.6;
  double clamp_penalty = 1.25;
  double thrash_penalty = 1.5;
  /// Seed for the kRandom routing draw (arrivals carry their own seed).
  std::uint64_t seed = 1;
  /// Shared sink for service events AND the node cores' lifecycle events
  /// (non-owning; nullptr = tracing off). Period ids are per-node, so the
  /// per-period obs::reconcile applies per node; the queue-side ledger
  /// (obs::reconcile_service) applies to the combined stream.
  obs::TraceSink* trace_sink = nullptr;
  NodeFault fault{};
  /// Tenant-truth enforcement (DESIGN §17): audit every completion against
  /// its tenant's declaration, run the credit fair-share economy, and apply
  /// the per-tenant penalty ladder in the drain loop — quota sheds, then
  /// haircuts, then credit-priced bursts, then deprioritization. Off by
  /// default so pre-existing runs (and the committed BENCH baselines) stay
  /// byte-identical.
  bool enforce = false;
  core::TenantLedgerOptions ledger{};
  /// Occupancy model for the audit path: a completed period reports
  /// min(its TRUE working set, node LLC) as observed peak (true demand 0 =
  /// the declaration was truthful). Also arms the thrash model — a period
  /// admitted while its node's TRUE placed demand exceeds the LLC runs
  /// thrash_penalty× slower — so an under-declarer does real damage whether
  /// or not enforcement is on. Off = audits see declared == observed.
  bool model_true_occupancy = false;
};

struct ServiceStats {
  std::uint64_t enqueued = 0;   ///< kEnqueue events (incl. re-queues)
  std::uint64_t drains = 0;     ///< drain passes that popped anything
  std::uint64_t drained = 0;    ///< submissions popped across all drains
  std::uint64_t shed = 0;       ///< dropped by ladder rung 3
  std::uint64_t steals = 0;     ///< tenant batches moved to an idle node
  std::uint64_t stolen = 0;     ///< submissions inside those batches
  std::uint64_t reroutes = 0;   ///< submissions re-queued by a node death
  /// Requeues posted to a drain shard's mailbox. Every displaced
  /// submission takes exactly one hop, so mailboxed == stolen + reroutes
  /// for every K (the ledger obs::reconcile_service checks).
  std::uint64_t mailboxed = 0;
  std::uint64_t admitted = 0;   ///< periods admitted (immediately or woken)
  std::uint64_t woken = 0;      ///< subset admitted off a waitlist
  std::uint64_t completed = 0;  ///< periods that finished service
  std::uint64_t clamped = 0;         ///< rung-1 demand caps applied
  std::uint64_t oversubscribed = 0;  ///< rung-2 under-declared admissions
  std::uint64_t escalations = 0;
  std::uint64_t deescalations = 0;
  std::uint64_t overflow_drops = 0;  ///< queue-full pushes (not enqueued)
  std::uint64_t max_backlog = 0;     ///< peak queued + parked
  int final_rung = 0;
  std::uint64_t still_queued = 0;  ///< left in the queue at report time
  // Tenant-truth enforcement (all zero when ServiceConfig::enforce is off).
  std::uint64_t audits = 0;           ///< completed-period audits applied
  std::uint64_t penalties = 0;        ///< ledger rung escalations
  std::uint64_t haircuts = 0;         ///< rung-1 demand rescales applied
  std::uint64_t deprioritized = 0;    ///< rung-3 submissions sent batch-back
  std::uint64_t quota_denied = 0;     ///< rung-4 sheds (subset of `shed`)
  std::uint64_t burst_clamps = 0;     ///< over-fair-share bursts unfunded
  std::uint64_t credits_granted = 0;  ///< ledger lifetime grant units
  std::uint64_t credits_spent = 0;    ///< ledger lifetime spend units
};

/// Per-drain-shard observability counters. In virtual time the shards run
/// lockstep, so these are bookkeeping views of the partition — they are
/// NEVER inputs to an admission decision (the ladder stays global; DESIGN
/// §16 explains why per-shard control EWMAs would break the K-invariance
/// contract). At quiescence Σ enqueued == stats.enqueued − mailboxed,
/// Σ drained == stats.drained, Σ mail_in == Σ mail_out == stats.mailboxed.
struct ShardCounters {
  std::uint64_t enqueued = 0;     ///< fresh arrivals routed to this shard
  std::uint64_t drained = 0;      ///< submissions this shard fed to merges
  std::uint64_t mail_in = 0;      ///< requeues drained from this inbox
  std::uint64_t mail_out = 0;     ///< requeues this shard's nodes displaced
  std::uint64_t peak_staged = 0;  ///< deepest staging runway seen
  double backlog_ewma = 0.0;      ///< smoothed queue+staged+inbox depth
};

/// Per-tenant outcome ledger, tracked in every run (enforcement on or off)
/// so a bench can compare the same tenant across both. completed + shed <=
/// arrivals only transiently; at quiescence the difference is overflow
/// drops, which carry no tenant attribution.
struct TenantSummary {
  std::uint64_t tenant = 0;
  std::uint64_t arrivals = 0;     ///< fresh submissions (requeues excluded)
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;         ///< ladder + quota sheds
  double work = 0.0;              ///< completed base service seconds
  std::uint64_t admissions = 0;
  double latency_sum = 0.0;       ///< enqueue → admission, summed
  // Ledger view at report time (defaults when enforcement is off).
  int rung = 0;
  double honesty = 1.0;
  std::uint64_t credits = 0;      ///< outstanding balance (units)
};

struct ServiceReport {
  ServiceStats stats;
  int drain_shards = 0;
  std::vector<ShardCounters> shards;
  /// Enqueue → admission (immediate or wake) per period.
  obs::LatencyHistogram admission_latency;
  /// Per-resource capacity a node gates against (0 = ungated) and the peak
  /// declared demand outstanding on any one node — headroom = capacity −
  /// peak, reported for bandwidth and energy alongside LLC.
  std::array<double, kNumResourceKinds> node_capacity{};
  std::array<double, kNumResourceKinds> peak_outstanding{};
  double elapsed_seconds = 0.0;     ///< virtual time of the last completion
  double goodput_per_second = 0.0;  ///< completed periods / elapsed
  double work_per_second = 0.0;     ///< completed base service-sec / elapsed
  /// Node cores' stats summed (the begins==ends+cancels+reclaims ledger).
  core::MonitorStats admission;
  /// Order-sensitive fingerprint of (seq, node, admit time, completion
  /// time) — equal checksums mean byte-identical runs.
  std::uint64_t checksum = 0;
  /// Per-tenant rows, sorted by tenant id (always populated).
  std::vector<TenantSummary> tenants;
  /// TenantLedger digest (0 when enforcement is off). Cross-K runs must
  /// produce equal fingerprints — the ledger half of the K-invariance
  /// contract.
  std::uint64_t ledger_fingerprint = 0;
  /// Exact credit conservation: granted == spent + outstanding, in integer
  /// units, checked at report time (trivially true when enforcement is off).
  bool credits_conserved = true;
};

class ServiceFrontEnd {
 public:
  explicit ServiceFrontEnd(ServiceConfig config);

  /// Feeds `count` arrivals from `arrivals` (a live generator or a
  /// replayed trace) through the queue → drain → admit → complete
  /// lifecycle, then drains to quiescence. One-shot.
  ServiceReport run(ArrivalSource& arrivals, std::uint64_t count);

  // Introspection for tests.
  int current_rung() const { return rung_; }
  int drain_shards() const { return num_shards_; }
  int shard_for_tenant(std::uint64_t tenant) const {
    return shard_of_tenant(config_.seed, tenant, num_shards_);
  }
  int tenant_home(std::uint64_t tenant) const;
  bool node_up(int node) const {
    return node_up_[static_cast<std::size_t>(node)];
  }
  const core::AdmissionCore& node_core(int node) const {
    return *cores_[static_cast<std::size_t>(node)];
  }

 private:
  /// Per-resource declared demand, indexed by ResourceKind.
  using DemandVector = std::array<double, kNumResourceKinds>;

  /// One queued submission (the MPSC queue element).
  struct Sub {
    std::uint64_t seq = 0;
    std::uint64_t tenant = 1;
    double demand = 0.0;  ///< declared LLC bytes
    double bw = 0.0;      ///< declared DRAM bandwidth (0 = none)
    double watts = 0.0;   ///< declared package power (0 = none)
    double service = 0.0;
    double enqueue_time = 0.0;
    /// LLC bytes the request actually touches (0 = the declaration is the
    /// truth). Feeds the audit observation and the thrash model; never the
    /// admission predicate — the whole point is that admission only sees
    /// declarations.
    double true_demand = 0.0;
  };
  /// A period parked on some node's waitlist, waiting for its wake.
  struct Parked {
    Sub sub;
    int node = -1;
    DemandVector declared{};  ///< demand vector as charged to the core
    double penalty = 1.0;
    bool warm = false;
  };
  /// An admitted period until its completion is released. Keeps the whole
  /// submission so a node death can re-queue the work it was carrying.
  struct Flight {
    Sub sub;
    int node = -1;
    sim::ThreadId thread = sim::kInvalidThread;
    DemandVector declared{};
  };
  struct Completion {
    double time = 0.0;
    std::uint64_t key = 0;  ///< node/period composite, tie-break
    bool operator>(const Completion& o) const {
      return time != o.time ? time > o.time : key > o.key;
    }
  };

  /// One drain shard: its own MPSC queue (this shard is the sole
  /// consumer), the staging runway the lockstep merge pulls from (popped
  /// off the queue but not yet merged into a batch — keeping it per shard
  /// preserves the per-queue FIFO prefix the min-seq merge needs), and the
  /// seniority-ordered inbox for cross-shard requeues.
  struct DrainShard {
    std::unique_ptr<SubmissionQueue<Sub>> queue;
    std::deque<Sub> staged;
    Mailbox<Sub> inbox;
    ShardCounters counters;
    /// Audits captured by this shard's nodes since the last drain pass,
    /// each stamped with a GLOBAL completion-order seq; apply_audits()
    /// merges the slices by seq so ledger state is K-invariant.
    std::vector<core::AuditRecord> audit_slice;
  };

  static std::uint64_t flight_key(int node, core::PeriodId period);

  void enqueue(const Sub& sub, double at);
  /// Posts a displaced submission (steal or node-death reroute) to its
  /// tenant's drain shard, stamped with the next global seniority number.
  void mailbox_requeue(const Sub& sub, int from_node, double at);
  void trace_service(obs::EventKind kind, double at, std::uint64_t seq,
                     std::uint64_t tenant, double demand);
  /// Routes one shaped submission; returns the chosen node (always an up
  /// node) and whether the placement is warm (landed on the tenant home).
  int route(std::uint64_t tenant, double declared, bool& warm);
  int least_loaded() const;
  /// Per-node capacity of one resource kind (0 = ungated).
  double node_capacity(ResourceKind kind) const;
  /// Applies the current rung's demand transformation to the submission's
  /// whole demand vector. Rung 1 clamps the DOMINANT resource — the one
  /// consuming the largest fraction of its node capacity — instead of
  /// always the LLC; rung 2 under-declares every component.
  DemandVector shape_demand(const Sub& sub, double& penalty, bool& clamped,
                            bool& oversubscribed) const;
  /// The admit-request demand vector for a shaped submission (only kinds
  /// the nodes actually gate).
  std::vector<core::ResourceDemand> to_demands(
      const DemandVector& declared) const;
  void charge_outstanding(int node, const DemandVector& declared,
                          double sign);
  void record_admission(const Sub& sub, int node, core::PeriodId period,
                        const DemandVector& declared, double penalty,
                        bool warm, bool from_wake);
  void on_wakes(int node, const std::vector<core::ProgressMonitor::WakeGrant>&
                              grants);
  void release_due(double now);
  void apply_fault(double now);
  void steal_pass(double now);
  void drain_pass(double now);
  void update_ladder();
  /// The LLC bytes a submission will actually occupy on a node.
  double true_occupancy(const Sub& sub) const;
  /// Merges every shard's captured audit slice (sorted by global seq) into
  /// the ledger. Runs at the TOP of each drain pass — and once more after
  /// the run loop exits — so enforcement always acts on last pass's
  /// completions and no audit is stranded.
  void apply_audits();
  /// Rung-4 quota + credit-priced burst gate for one drained submission.
  /// Returns false when the submission must be shed (quota exceeded);
  /// otherwise may clamp the declared LLC component to the fair share
  /// (unfunded burst) and records the credit spend.
  bool enforce_ledger(const Sub& sub, DemandVector& declared);
  std::size_t backlog() const;
  void fold_checksum(std::uint64_t a, std::uint64_t b);

  /// Assembles the pass's drain batch: all mailbox requeues in ascending
  /// seniority (decision order), then a k-way min-seq merge of the shard
  /// staging runways up to drain_batch_max. The result is the canonical
  /// global order for any shard count.
  std::vector<Sub> merge_drain_batch();
  std::size_t inbox_backlog() const;

  ServiceConfig config_;
  std::vector<std::unique_ptr<core::AdmissionCore>> cores_;
  std::vector<DrainShard> shards_;
  int num_shards_ = 1;
  /// Next global seniority number for mailbox requeues. Assigned in the
  /// (globally sequential) fault/steal phases, so ascending seniority
  /// replays displaced work in exactly the order it was displaced.
  std::uint64_t requeue_seq_ = 0;
  /// Submissions accepted but not yet merged into a drain batch (queues +
  /// staging runways, summed over shards). The overflow decision tests
  /// this GLOBAL count against queue_capacity — per-shard occupancy varies
  /// with K, the global backlog does not, so drops are K-invariant.
  std::size_t queue_backlog_ = 0;
  util::Rng rng_;
  double now_ = 0.0;

  std::vector<bool> node_up_;
  std::vector<double> outstanding_;     ///< declared LLC bytes per node
  std::vector<DemandVector> outstanding_vec_;  ///< per-resource, per node
  DemandVector peak_outstanding_{};     ///< max over nodes and time
  std::vector<std::uint64_t> in_flight_count_;
  std::vector<std::size_t> parked_depth_;  ///< parked periods per node
  std::unordered_map<std::uint64_t, int> tenant_home_;
  std::unordered_map<std::uint64_t, Parked> parked_;     ///< by flight key
  std::unordered_map<std::uint64_t, Flight> in_flight_;  ///< by flight key
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      completions_;

  int rung_ = 0;
  double depth_ewma_ = 0.0;
  double latency_ewma_ = 0.0;
  bool fault_down_ = false;
  bool fault_done_ = false;

  /// Enforcement state (null / empty unless config_.enforce).
  std::unique_ptr<core::TenantLedger> ledger_;
  std::uint64_t audit_seq_ = 0;  ///< global completion-order audit stamp
  /// Open (admitted + parked) submissions per tenant — the rung-4 quota
  /// denominator. Displaced work (reroute/steal) leaves the count while
  /// mailboxed and rejoins it on re-admission.
  std::unordered_map<std::uint64_t, std::uint64_t> tenant_open_;
  /// TRUE placed LLC bytes per node (model_true_occupancy only): the
  /// physical load the thrash model compares against capacity.
  std::vector<double> true_outstanding_;
  /// Per-tenant outcome rows (always tracked; ordered for the report).
  std::map<std::uint64_t, TenantSummary> tenant_rows_;

  ServiceStats stats_;
  obs::LatencyHistogram latency_;
  double last_completion_ = 0.0;
  double completed_work_ = 0.0;
  std::uint64_t checksum_ = 0x9e3779b97f4a7c15ull;
  bool ran_ = false;
};

}  // namespace rda::service
