# Empty compiler generated dependencies file for ablate_feedback.
# This may be replaced when dependencies are built.
