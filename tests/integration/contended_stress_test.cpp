// Contended admission stress for the sharded core (satellite of the
// shard-the-core PR).
//
// Two attack angles:
//   * ContendedStress.*Churn*: 16 real threads hammer the native gate with
//     seeded random begin/try/timed traffic concurrently — no scripting, no
//     expected event stream; what must hold is the QUIESCENT state (usage
//     drained, waitlist empty, oversubscription tally zero, shard audit
//     clean) and the begin/end/cancel conservation laws. Runs under TSan in
//     tier-1, where the lock-free calm lane gets its memory-order checkup.
//   * AdmissionParity.Scripted*: seeded scripted sequences over 16 virtual
//     threads, driven through BOTH substrates (sim adapter and native gate,
//     drivers serialized exactly like parity_test.cpp) and compared
//     event-for-event. Expected admit/deny fates and a legal end ordering
//     are derived by replaying the generated ops through a bare reference
//     AdmissionCore first — the generator never guesses.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/admission.hpp"
#include "core/rda_scheduler.hpp"
#include "obs/recorder.hpp"
#include "runtime/gate.hpp"
#include "sim/calibration.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace rda {
namespace {

using namespace std::chrono_literals;
using util::MB;

constexpr double kCapacity = 15.0 * 1024.0 * 1024.0;
constexpr int kVThreads = 16;

// ---------------------------------------------------------------------------
// Part 1: free-running 16-thread churn against the native gate.
// ---------------------------------------------------------------------------

struct ChurnTotals {
  std::atomic<std::uint64_t> admitted{0};
  std::atomic<std::uint64_t> timed_out{0};
  std::atomic<std::uint64_t> try_denied{0};
};

void churn_worker(rt::AdmissionGate& gate, std::uint64_t seed, int ops,
                  ChurnTotals& totals) {
  util::Rng rng(seed);
  for (int op = 0; op < ops; ++op) {
    const double demand =
        static_cast<double>(MB(1)) * (0.5 + 5.5 * rng.next_double());
    if (rng.next_double() < 0.2) {
      const auto got = gate.try_begin(ResourceKind::kLLC, demand,
                                      ReuseLevel::kHigh);
      if (got.has_value()) {
        totals.admitted.fetch_add(1, std::memory_order_relaxed);
        gate.end(*got);
      } else {
        totals.try_denied.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      const auto got = gate.begin_for(
          ResourceKind::kLLC, demand, ReuseLevel::kHigh,
          std::chrono::microseconds(500 + rng.next_below(20000)));
      if (got.has_value()) {
        totals.admitted.fetch_add(1, std::memory_order_relaxed);
        if (rng.next_double() < 0.3) std::this_thread::yield();
        gate.end(*got);
      } else {
        totals.timed_out.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

void expect_quiescent(rt::AdmissionGate& gate) {
  EXPECT_EQ(gate.waiting(), 0u);
  EXPECT_LT(gate.usage(ResourceKind::kLLC), 1e-6);
  EXPECT_NEAR(gate.oversubscribed(ResourceKind::kLLC), 0.0, 1e-6);
  const core::AdmissionCore::AuditReport audit = gate.audit();
  EXPECT_TRUE(audit.ok) << audit.detail;
  const rt::GateStats stats = gate.stats();
  // Every begin resolved as an end or a cancel — nothing leaked.
  EXPECT_EQ(stats.monitor.begins, stats.monitor.ends + stats.monitor.cancels);
  // Every monitor block is accounted by exactly one wait-channel outcome.
  EXPECT_LE(stats.waits + stats.no_sleep_blocks,
            stats.monitor.blocks + stats.lost_wakes);
}

void run_churn(rt::GateConfig config, std::uint64_t seed, int ops) {
  config.llc_capacity_bytes = kCapacity;
  rt::AdmissionGate gate(config);
  ChurnTotals totals;
  std::vector<std::thread> workers;
  workers.reserve(kVThreads);
  for (int t = 0; t < kVThreads; ++t) {
    workers.emplace_back(churn_worker, std::ref(gate), seed + t, ops,
                         std::ref(totals));
  }
  for (std::thread& w : workers) w.join();
  // The load is feasible (every demand fits alone), so starvation-free
  // progress means a healthy majority of ops admit even on a small host.
  EXPECT_GT(totals.admitted.load(), static_cast<std::uint64_t>(ops));
  expect_quiescent(gate);
}

TEST(ContendedStress, SixteenThreadChurnDrainsClean) {
  rt::GateConfig config;
  config.policy = core::PolicyKind::kStrict;
  run_churn(config, 2024, 200);
}

TEST(ContendedStress, SixteenThreadChurnCompromiseFastPath) {
  rt::GateConfig config;
  config.policy = core::PolicyKind::kCompromise;
  config.fast_path = true;
  run_churn(config, 4048, 200);
}

TEST(ContendedStress, SixteenThreadChurnHardenedSlicedWaits) {
  // An armed-but-empty injector forces every wait onto the hardened sliced
  // path and every core call onto the slow lane — the opposite extreme
  // from the fast-path run above.
  fault::FaultInjector injector{fault::FaultPlan{}};
  rt::GateConfig config;
  config.policy = core::PolicyKind::kStrict;
  config.fault_injector = &injector;
  config.retry.initial_slice_seconds = 0.0002;
  run_churn(config, 8096, 80);
}

// ---------------------------------------------------------------------------
// Part 2: seeded scripted parity over 16 virtual threads.
// ---------------------------------------------------------------------------

struct Op {
  enum Kind { kBegin, kEnd, kTryBegin } kind = kBegin;
  int vt = 0;
  double demand = 0.0;       ///< bytes (begins only)
  bool expect_admit = true;  ///< begins: immediately admitted?
};

std::string vt_label(int vt) { return "vt" + std::to_string(vt); }

/// Generates a seeded op script whose admit/deny expectations and end
/// ordering are DERIVED, not guessed: every candidate op is replayed
/// through a bare AdmissionCore as it is emitted, so an end is only ever
/// scripted for a period the reference shows admitted, and expect_admit
/// records the reference fate. Ends with a full drain.
std::vector<Op> make_script(std::uint64_t seed, core::WakeOrder wake_order,
                            int rounds) {
  core::AdmissionConfig config;
  config.llc_capacity_bytes = kCapacity;
  config.policy = core::PolicyKind::kStrict;
  config.monitor.wake_order = wake_order;
  core::AdmissionCore core(config);

  enum class State { kIdle, kParked, kAdmitted };
  struct Vt {
    State state = State::kIdle;
    core::PeriodId id = core::kInvalidPeriod;
  };
  std::array<Vt, kVThreads> vts;
  util::Rng rng(seed);
  std::vector<Op> script;
  double now = 0.0;

  const auto reclassify = [&] {
    for (Vt& vt : vts) {
      if (vt.state == State::kParked && core.is_admitted(vt.id)) {
        vt.state = State::kAdmitted;
      }
    }
  };
  const auto admit_one = [&](int vt, bool as_try) {
    core::AdmitRequest request;
    request.thread = static_cast<sim::ThreadId>(vt);
    request.process = static_cast<sim::ProcessId>(vt);
    request.demands = {{ResourceKind::kLLC,
                        static_cast<double>(MB(1 + rng.next_below(7)))}};
    request.reuse = ReuseLevel::kHigh;
    const double demand = request.demands[0].amount;
    const core::AdmitTicket ticket = core.admit(std::move(request), now);
    if (as_try && !ticket.admitted) {
      // A denied try-begin withdraws instead of waiting.
      EXPECT_TRUE(core.withdraw(ticket.id, now));
      script.push_back({Op::kTryBegin, vt, demand, false});
      return;
    }
    script.push_back({Op::kBegin, vt, demand, ticket.admitted});
    vts[static_cast<std::size_t>(vt)] = {
        ticket.admitted ? State::kAdmitted : State::kParked, ticket.id};
  };
  const auto release_one = [&](int vt) {
    core.release(vts[static_cast<std::size_t>(vt)].id, {}, now);
    script.push_back({Op::kEnd, vt, 0.0, false});
    vts[static_cast<std::size_t>(vt)] = {};
    reclassify();
  };

  for (int round = 0; round < rounds; ++round) {
    now += 1.0;
    const int vt = static_cast<int>(rng.next_below(kVThreads));
    switch (vts[static_cast<std::size_t>(vt)].state) {
      case State::kIdle:
        admit_one(vt, /*as_try=*/rng.next_double() < 0.15);
        break;
      case State::kAdmitted:
        release_one(vt);
        break;
      case State::kParked:
        // A parked vthread's OS thread is asleep; act elsewhere. Release
        // the lowest admitted period so the waiter makes progress.
        for (int other = 0; other < kVThreads; ++other) {
          if (vts[static_cast<std::size_t>(other)].state ==
              State::kAdmitted) {
            release_one(other);
            break;
          }
        }
        break;
    }
  }
  // Drain: release admitted periods until every vthread is idle. Parked
  // periods are woken by those releases (demands are individually
  // feasible) and then released in turn.
  for (bool active = true; active;) {
    active = false;
    now += 1.0;
    for (int vt = 0; vt < kVThreads; ++vt) {
      if (vts[static_cast<std::size_t>(vt)].state == State::kAdmitted) {
        release_one(vt);
        active = true;
        break;
      }
    }
    if (!active) {
      for (const Vt& vt : vts) {
        EXPECT_NE(vt.state, State::kParked)
            << "drain left a parked vthread with no admitted period";
      }
    }
  }
  return script;
}

struct EventKey {
  obs::EventKind kind;
  std::string label;
  double demand;

  bool operator==(const EventKey& o) const {
    return kind == o.kind && label == o.label && demand == o.demand;
  }
};

std::vector<EventKey> keys_of(const std::vector<obs::Event>& events) {
  std::vector<EventKey> keys;
  keys.reserve(events.size());
  for (const obs::Event& e : events) {
    keys.push_back({e.kind, std::string(e.label), e.demand});
  }
  return keys;
}

/// Sim-substrate replay: single-threaded, PhaseGate hooks called directly.
class SimDriver {
 public:
  SimDriver(const std::vector<Op>& script, core::WakeOrder wake_order) {
    core::RdaOptions options;
    options.monitor.wake_order = wake_order;
    options.trace_sink = &recorder_;
    core::RdaScheduler gate(kCapacity, sim::Calibration{}, options);
    gate.attach(waker_);
    std::array<sim::PhaseSpec, kVThreads> active_phase;
    double now = 0.0;
    for (const Op& op : script) {
      now += 1.0;
      const auto vt = static_cast<sim::ThreadId>(op.vt);
      const auto process = static_cast<sim::ProcessId>(op.vt);
      switch (op.kind) {
        case Op::kBegin: {
          sim::PhaseSpec phase;
          phase.wss_bytes = static_cast<std::uint64_t>(op.demand);
          phase.reuse = ReuseLevel::kHigh;
          phase.marked = true;
          phase.label = vt_label(op.vt);
          active_phase[static_cast<std::size_t>(op.vt)] = phase;
          const sim::BeginResult r =
              gate.on_phase_begin(vt, process, phase, now);
          EXPECT_EQ(r.admit, op.expect_admit) << "sim begin " << phase.label;
          break;
        }
        case Op::kTryBegin: {
          sim::PhaseSpec phase;
          phase.wss_bytes = static_cast<std::uint64_t>(op.demand);
          phase.reuse = ReuseLevel::kHigh;
          phase.marked = true;
          phase.label = vt_label(op.vt);
          const sim::BeginResult r =
              gate.on_phase_begin(vt, process, phase, now);
          EXPECT_FALSE(r.admit) << "sim try_begin " << phase.label;
          if (!r.admit) {
            const auto id = gate.core().active_for_thread(vt);
            EXPECT_TRUE(id.has_value());
            if (id.has_value()) {
              EXPECT_TRUE(gate.core().withdraw(*id, now));
            }
          }
          break;
        }
        case Op::kEnd:
          gate.on_phase_end(vt, process,
                            active_phase[static_cast<std::size_t>(op.vt)],
                            sim::PhaseObservation{}, now);
          break;
      }
    }
    stats_ = gate.monitor_stats();
    events_ = recorder_.events();
  }

  std::vector<EventKey> keys() const { return keys_of(events_); }
  const core::MonitorStats& stats() const { return stats_; }

 private:
  struct NullWaker final : sim::ThreadWaker {
    void wake(sim::ThreadId) override {}  // wake order is read from events
  };
  NullWaker waker_;
  obs::EventRecorder recorder_{1 << 14};
  core::MonitorStats stats_;
  std::vector<obs::Event> events_;
};

/// Native-substrate replay with real OS threads, serialized like
/// parity_test.cpp's driver but with failure deadlines instead of
/// unbounded spins (a regression must fail the test, not hang tier-1).
class NativeDriver {
 public:
  NativeDriver(const std::vector<Op>& script, core::WakeOrder wake_order) {
    rt::GateConfig config;
    config.llc_capacity_bytes = kCapacity;
    config.monitor.wake_order = wake_order;
    config.trace_sink = &recorder_;
    rt::AdmissionGate gate(config);

    std::array<std::atomic<core::PeriodId>, kVThreads> ids{};
    std::array<std::atomic<bool>, kVThreads> done{};
    std::array<std::optional<std::thread>, kVThreads> parked;

    const auto deadline_spin = [](const auto& pred, const char* what) {
      const auto deadline = std::chrono::steady_clock::now() + 30s;
      while (!pred()) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline) << what;
        std::this_thread::sleep_for(50us);
      }
    };
    const auto settle = [&](int vt) {
      const auto slot = static_cast<std::size_t>(vt);
      deadline_spin(
          [&] { return done[slot].load(std::memory_order_acquire); },
          "vthread begin to settle");
      if (parked[slot].has_value()) {
        parked[slot]->join();
        parked[slot].reset();
      }
    };

    for (const Op& op : script) {
      const auto slot = static_cast<std::size_t>(op.vt);
      switch (op.kind) {
        case Op::kBegin: {
          done[slot].store(false, std::memory_order_relaxed);
          const std::size_t waiting_before = gate.waiting();
          std::thread worker([&gate, &ids, &done, op, slot] {
            const core::PeriodId id =
                gate.begin(ResourceKind::kLLC, op.demand, ReuseLevel::kHigh,
                           vt_label(op.vt));
            ids[slot].store(id, std::memory_order_relaxed);
            done[slot].store(true, std::memory_order_release);
          });
          if (op.expect_admit) {
            worker.join();
          } else {
            deadline_spin([&] { return gate.waiting() > waiting_before; },
                          "vthread to park");
            parked[slot] = std::move(worker);
          }
          break;
        }
        case Op::kTryBegin: {
          std::thread worker([&gate, op] {
            const auto denied = gate.try_begin(
                ResourceKind::kLLC, op.demand, ReuseLevel::kHigh,
                vt_label(op.vt));
            EXPECT_FALSE(denied.has_value()) << "native try_begin " << op.vt;
          });
          worker.join();
          break;
        }
        case Op::kEnd:
          settle(op.vt);
          gate.end(ids[slot].load(std::memory_order_relaxed));
          break;
      }
    }
    const core::AdmissionCore::AuditReport audit = gate.audit();
    EXPECT_TRUE(audit.ok) << audit.detail;
    EXPECT_LT(gate.usage(ResourceKind::kLLC), 1e-6);
    stats_ = gate.stats();
    events_ = recorder_.events();
  }

  std::vector<EventKey> keys() const { return keys_of(events_); }
  const core::MonitorStats& stats() const { return stats_.monitor; }

 private:
  obs::EventRecorder recorder_{1 << 14};
  rt::GateStats stats_;
  std::vector<obs::Event> events_;
};

void run_scripted_parity(std::uint64_t seed, core::WakeOrder wake_order) {
  const std::vector<Op> script = make_script(seed, wake_order, 240);
  ASSERT_GT(script.size(), 240u);

  const SimDriver sim(script, wake_order);
  const NativeDriver native(script, wake_order);

  const std::vector<EventKey> sim_keys = sim.keys();
  const std::vector<EventKey> native_keys = native.keys();
  ASSERT_EQ(sim_keys.size(), native_keys.size());
  for (std::size_t i = 0; i < sim_keys.size(); ++i) {
    ASSERT_TRUE(sim_keys[i] == native_keys[i])
        << "event " << i << ": sim " << to_string(sim_keys[i].kind) << "/"
        << sim_keys[i].label << "/" << sim_keys[i].demand << " vs native "
        << to_string(native_keys[i].kind) << "/" << native_keys[i].label
        << "/" << native_keys[i].demand;
  }
  EXPECT_EQ(sim.stats().begins, native.stats().begins);
  EXPECT_EQ(sim.stats().ends, native.stats().ends);
  EXPECT_EQ(sim.stats().immediate_admissions,
            native.stats().immediate_admissions);
  EXPECT_EQ(sim.stats().blocks, native.stats().blocks);
  EXPECT_EQ(sim.stats().wakes, native.stats().wakes);
  EXPECT_EQ(sim.stats().cancels, native.stats().cancels);
  EXPECT_EQ(sim.stats().begins, sim.stats().ends + sim.stats().cancels);
}

TEST(AdmissionParity, ScriptedSixteenVThreadsFifo) {
  run_scripted_parity(101, core::WakeOrder::kFifo);
}

TEST(AdmissionParity, ScriptedSixteenVThreadsBestFit) {
  run_scripted_parity(202, core::WakeOrder::kBestFitDemand);
}

TEST(AdmissionParity, ScriptedSecondSeedFifo) {
  run_scripted_parity(747, core::WakeOrder::kFifo);
}

}  // namespace
}  // namespace rda
