#include "core/waitlist.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rda::core {

std::vector<Waitlist::Entry> Waitlist::drain_admissible(
    const std::function<bool(const Entry&)>& admit, bool head_only) {
  std::vector<Entry> admitted;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (admit(*it)) {
      admitted.push_back(*it);
      it = entries_.erase(it);
    } else if (head_only) {
      break;
    } else {
      ++it;
    }
  }
  return admitted;
}

Waitlist::Entry Waitlist::remove_at(std::size_t index) {
  RDA_CHECK_MSG(index < entries_.size(),
                "waitlist remove_at(" << index << ") with only "
                                      << entries_.size() << " entries");
  const Entry entry = entries_[index];
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(index));
  return entry;
}

std::vector<Waitlist::Entry> Waitlist::remove_process(
    sim::ProcessId process) {
  std::vector<Entry> removed;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->process == process) {
      removed.push_back(*it);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return removed;
}

std::size_t Waitlist::count_process(sim::ProcessId process) const {
  return static_cast<std::size_t>(
      std::count_if(entries_.begin(), entries_.end(),
                    [&](const Entry& e) { return e.process == process; }));
}

std::string to_string(WakeOrder order) {
  switch (order) {
    case WakeOrder::kFifo: return "fifo";
    case WakeOrder::kBestFitDemand: return "best-fit";
  }
  return "?";
}

std::size_t FifoWakeStrategy::select(
    const std::deque<Waitlist::Entry>& entries,
    const std::function<bool(const Waitlist::Entry&)>& fits) const {
  if (entries.empty()) return npos;
  if (!work_conserving_) {
    // Strict FIFO: only the head may be admitted; a non-fitting head
    // blocks everyone behind it.
    return fits(entries.front()) ? 0 : npos;
  }
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (fits(entries[i])) return i;
  }
  return npos;
}

std::string FifoWakeStrategy::name() const {
  return work_conserving_ ? "fifo" : "fifo-head-only";
}

std::size_t BestFitWakeStrategy::select(
    const std::deque<Waitlist::Entry>& entries,
    const std::function<bool(const Waitlist::Entry&)>& fits) const {
  std::size_t best = npos;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (!fits(entries[i])) continue;
    if (best == npos || entries[i].demand > entries[best].demand) best = i;
  }
  return best;
}

std::unique_ptr<WakeStrategy> make_wake_strategy(WakeOrder order,
                                                 bool work_conserving) {
  switch (order) {
    case WakeOrder::kFifo:
      return std::make_unique<FifoWakeStrategy>(work_conserving);
    case WakeOrder::kBestFitDemand:
      return std::make_unique<BestFitWakeStrategy>();
  }
  return std::make_unique<FifoWakeStrategy>(work_conserving);
}

}  // namespace rda::core
