#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace rda::util {

int resolve_jobs(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void parallel_run(std::vector<std::function<void()>>& tasks, int jobs) {
  const int workers = std::min<int>(std::max(jobs, 1),
                                    static_cast<int>(tasks.size()));
  if (workers <= 1) {
    for (auto& task : tasks) task();
    return;
  }

  std::atomic<std::size_t> cursor{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks.size()) return;
      try {
        tasks[i]();
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace rda::util
