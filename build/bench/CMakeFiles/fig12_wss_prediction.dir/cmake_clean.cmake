file(REMOVE_RECURSE
  "CMakeFiles/fig12_wss_prediction.dir/fig12_wss_prediction.cpp.o"
  "CMakeFiles/fig12_wss_prediction.dir/fig12_wss_prediction.cpp.o.d"
  "fig12_wss_prediction"
  "fig12_wss_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_wss_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
