// Wait-latency histogram (block → wake/force-admit time).
//
// Power-of-two nanosecond buckets: constant memory, O(1) insert, and
// quantiles good to a factor of two across fourteen decades — plenty to
// tell "microseconds of queueing" from "stranded for seconds", which is the
// question the cancel-path starvation bug hid. Exact min/max are tracked on
// the side so the tails are not bucket-quantized.
#pragma once

#include <array>
#include <cstdint>

namespace rda::obs {

class WaitHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void add(double seconds);
  void merge(const WaitHistogram& other);

  std::uint64_t count() const { return count_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const;
  /// Quantile in [0,1]; returns a bucket-resolution estimate (the geometric
  /// midpoint of the bucket holding the q-th sample). 0 when empty.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }

  std::uint64_t bucket_count(std::size_t bucket) const {
    return buckets_[bucket];
  }
  /// Lower bound of a bucket, in seconds.
  static double bucket_floor(std::size_t bucket);

 private:
  static std::size_t bucket_of(double seconds);

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace rda::obs
