#include "api/pp.hpp"

#include <memory>
#include <mutex>

namespace rda::api {

namespace {

std::unique_ptr<rt::AdmissionGate>& gate_slot() {
  static std::unique_ptr<rt::AdmissionGate> gate;
  return gate;
}

std::once_flag& gate_once() {
  static std::once_flag flag;
  return flag;
}

}  // namespace

void pp_configure(const rt::GateConfig& config) {
  gate_slot() = std::make_unique<rt::AdmissionGate>(config);
}

rt::AdmissionGate& pp_gate() {
  std::call_once(gate_once(), [] {
    if (!gate_slot()) gate_slot() = std::make_unique<rt::AdmissionGate>();
  });
  return *gate_slot();
}

core::PeriodId pp_begin(std::span<const core::ResourceDemand> demands,
                        ReuseLevel reuse) {
  return pp_gate().begin_multi(
      std::vector<core::ResourceDemand>(demands.begin(), demands.end()),
      reuse);
}

core::PeriodId pp_begin(ResourceKind resource, std::uint64_t demand_bytes,
                        ReuseLevel reuse) {
  const core::ResourceDemand demand{resource,
                                    static_cast<double>(demand_bytes)};
  return pp_begin(std::span<const core::ResourceDemand>(&demand, 1), reuse);
}

void pp_end(core::PeriodId id) { pp_gate().end(id); }

}  // namespace rda::api
