// Synthetic memory-trace generators.
//
// These replace Intel PIN instrumentation of real binaries (which we cannot
// run here): each generator produces the load/store/JMP record stream a real
// application phase would produce, from an explicit access-pattern model.
// The profiler (src/profiler) consumes these streams with no knowledge that
// they are synthetic.
//
// All generators are O(1) memory: records are produced on demand so traces
// of hundreds of millions of accesses never materialize.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "trace/record.hpp"
#include "util/rng.hpp"

namespace rda::trace {

// ---------------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------------

/// Plays a list of sources back to back.
class ConcatSource final : public TraceSource {
 public:
  explicit ConcatSource(std::vector<std::unique_ptr<TraceSource>> parts);
  bool next(TraceRecord& out) override;

 private:
  std::vector<std::unique_ptr<TraceSource>> parts_;
  std::size_t index_ = 0;
};

/// Re-creates a source `times` times via a factory (sources are one-shot).
class RepeatSource final : public TraceSource {
 public:
  using Factory = std::function<std::unique_ptr<TraceSource>()>;
  RepeatSource(Factory factory, std::size_t times);
  bool next(TraceRecord& out) override;

 private:
  Factory factory_;
  std::size_t remaining_;
  std::unique_ptr<TraceSource> current_;
};

/// Streams a pre-built record vector (used by unit tests).
class VectorSource final : public TraceSource {
 public:
  explicit VectorSource(std::vector<TraceRecord> records);
  bool next(TraceRecord& out) override;

 private:
  std::vector<TraceRecord> records_;
  std::size_t index_ = 0;
};

// ---------------------------------------------------------------------------
// Region access patterns
// ---------------------------------------------------------------------------

enum class Pattern : std::uint8_t {
  kSequential,     ///< streaming pass(es) over the region
  kStrided,        ///< fixed stride, wraps around the region
  kRandomUniform,  ///< uniform random within the region
  kHotCold,        ///< most accesses in a hot subset, rest anywhere
};

/// Declarative description of one phase's data-access behaviour.
struct RegionSpec {
  std::uint64_t base = 0;        ///< region base virtual address
  std::uint64_t size_bytes = 0;  ///< region extent
  Pattern pattern = Pattern::kSequential;
  std::uint64_t stride = 64;           ///< kStrided step
  double hot_fraction = 0.125;         ///< kHotCold: hot subset size / region
  double hot_probability = 0.9;        ///< kHotCold: P(access lands in hot)
  double store_ratio = 0.25;           ///< fraction of accesses that write
  std::uint64_t access_granularity = 8;  ///< address quantization (word size)

  /// PC of the enclosing loop back-edge; 0 emits no jump records.
  std::uint64_t jump_pc = 0;
  /// A jump record is emitted every this many memory records (loop trip).
  std::uint64_t jump_period = 64;
};

/// Emits `num_accesses` memory records following a RegionSpec, interleaved
/// with back-edge jump records.
class RegionAccessSource final : public TraceSource {
 public:
  RegionAccessSource(RegionSpec spec, std::uint64_t num_accesses,
                     std::uint64_t rng_seed);
  bool next(TraceRecord& out) override;

 private:
  std::uint64_t pick_address();

  RegionSpec spec_;
  std::uint64_t remaining_;
  std::uint64_t emitted_since_jump_ = 0;
  std::uint64_t cursor_ = 0;  ///< sequential/strided position within region
  util::Rng rng_;
};

// ---------------------------------------------------------------------------
// Application-shaped patterns
// ---------------------------------------------------------------------------

/// All-pairs interaction sweep (water_nsquared-like): for molecule pairs
/// (i, j), i<j, reads both records and writes back forces into record i.
/// Emits up to `max_pairs` pairs (3 memory records per pair) so phase length
/// can be bounded independently of n.
class PairInteractionSource final : public TraceSource {
 public:
  PairInteractionSource(std::uint64_t base, std::uint64_t num_records,
                        std::uint64_t record_bytes, std::uint64_t max_pairs,
                        std::uint64_t jump_pc = 0);
  bool next(TraceRecord& out) override;

 private:
  std::uint64_t addr_of(std::uint64_t index) const;

  std::uint64_t base_;
  std::uint64_t n_;
  std::uint64_t record_bytes_;
  std::uint64_t pairs_remaining_;
  std::uint64_t i_ = 0, j_ = 1;
  int step_ = 0;  ///< 0: load i, 1: load j, 2: store i, 3: jump
  std::uint64_t jump_pc_;
};

/// Five-point-stencil sweep over an n×n grid (ocean_cp-like): for each
/// interior cell, loads the four neighbours and stores the centre.
class GridSweepSource final : public TraceSource {
 public:
  GridSweepSource(std::uint64_t base, std::uint64_t n, std::uint64_t cell_bytes,
                  std::uint64_t sweeps, std::uint64_t jump_pc = 0);
  bool next(TraceRecord& out) override;

 private:
  std::uint64_t addr_of(std::uint64_t row, std::uint64_t col) const;
  bool advance_cell();

  std::uint64_t base_;
  std::uint64_t n_;
  std::uint64_t cell_bytes_;
  std::uint64_t sweeps_remaining_;
  std::uint64_t row_ = 1, col_ = 1;
  int step_ = 0;  ///< 0..3 neighbour loads, 4 centre store, 5 jump
  std::uint64_t jump_pc_;
};

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// Materializes a source (tests / small traces only).
std::vector<TraceRecord> drain(TraceSource& source);

/// Counts records without materializing.
std::uint64_t count_records(TraceSource& source);

}  // namespace rda::trace
