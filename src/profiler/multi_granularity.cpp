#include "profiler/multi_granularity.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rda::prof {

MultiGranularityProfiler::MultiGranularityProfiler(
    MultiGranularityConfig config)
    : config_(std::move(config)) {
  if (!config_.windows.empty()) {
    ladder_ = config_.windows;
  } else {
    RDA_CHECK(config_.levels >= 1);
    RDA_CHECK(config_.ladder_ratio >= 2);
    std::uint64_t w = config_.base_window;
    for (int level = 0; level < config_.levels && w >= 1024; ++level) {
      ladder_.push_back(w);
      w /= static_cast<std::uint64_t>(config_.ladder_ratio);
    }
  }
  RDA_CHECK_MSG(!ladder_.empty(), "empty window ladder");
  // Coarse-to-fine order is what the merge step assumes.
  std::sort(ladder_.begin(), ladder_.end(), std::greater<>());
}

MultiGranularityReport MultiGranularityProfiler::profile(
    const std::function<std::unique_ptr<trace::TraceSource>()>& make_source)
    const {
  MultiGranularityReport report;

  for (const std::uint64_t window : ladder_) {
    WindowConfig wcfg;
    wcfg.window_accesses = window;
    wcfg.hot_threshold = config_.hot_threshold;
    const auto source = make_source();
    RDA_CHECK(source != nullptr);
    const std::vector<WindowStats> windows =
        WindowAnalyzer(wcfg).analyze(*source);
    const std::vector<DetectedPeriod> detected =
        PeriodDetector(config_.detector).detect(windows);

    std::vector<GranularPeriod> normalized;
    normalized.reserve(detected.size());
    for (const DetectedPeriod& p : detected) {
      GranularPeriod g;
      g.window_accesses = window;
      g.first_access = p.first_window * window;
      g.last_access = (p.last_window + 1) * window;
      g.period = p;
      normalized.push_back(std::move(g));
    }
    report.per_granularity.emplace_back(window, normalized);
  }

  // Merge coarse to fine: keep a finer period only where coarser periods
  // left the region unexplained.
  for (const auto& [window, found] : report.per_granularity) {
    (void)window;
    for (const GranularPeriod& candidate : found) {
      std::uint64_t covered = 0;
      for (const GranularPeriod& kept : report.periods) {
        const std::uint64_t lo =
            std::max(candidate.first_access, kept.first_access);
        const std::uint64_t hi =
            std::min(candidate.last_access, kept.last_access);
        if (hi > lo) covered += hi - lo;
      }
      const double covered_fraction =
          candidate.span() > 0
              ? static_cast<double>(covered) /
                    static_cast<double>(candidate.span())
              : 1.0;
      if (covered_fraction <= config_.overlap_tolerance) {
        report.periods.push_back(candidate);
      }
    }
  }
  std::sort(report.periods.begin(), report.periods.end(),
            [](const GranularPeriod& a, const GranularPeriod& b) {
              return a.first_access < b.first_access;
            });
  return report;
}

}  // namespace rda::prof
