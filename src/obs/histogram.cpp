#include "obs/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace rda::obs {

template <unsigned SubBucketBits>
std::size_t BasicLatencyHistogram<SubBucketBits>::bucket_of(double seconds) {
  if (!(seconds > 0.0)) return 0;  // negatives/NaN land in the floor bucket
  const double ns = seconds * 1e9;
  if (ns < 0.5) return 0;
  if (ns >= 9.2e18) return kBuckets - 1;
  // Round to the nearest nanosecond: bucket floors converted to seconds and
  // back must land in their own bucket, which truncation would break
  // whenever floor*1e-9*1e9 rounds a hair below the integer.
  const auto whole = static_cast<std::uint64_t>(ns + 0.5);
  if (whole < kSubBuckets) return static_cast<std::size_t>(whole);
  // Value sits in octave [2^m, 2^(m+1)), split into kSubBuckets equal
  // sub-buckets of width 2^(m - SubBucketBits).
  const unsigned m = static_cast<unsigned>(std::bit_width(whole)) - 1;
  const std::uint64_t sub =
      (whole - (std::uint64_t{1} << m)) >> (m - SubBucketBits);
  const std::size_t bucket =
      kSubBuckets + static_cast<std::size_t>(m - SubBucketBits) * kSubBuckets +
      static_cast<std::size_t>(sub);
  return std::min(bucket, kBuckets - 1);
}

template <unsigned SubBucketBits>
double BasicLatencyHistogram<SubBucketBits>::bucket_floor(std::size_t bucket) {
  if (bucket < kSubBuckets) return static_cast<double>(bucket) * 1e-9;
  const std::size_t k = bucket - kSubBuckets;
  const unsigned m = SubBucketBits + static_cast<unsigned>(k / kSubBuckets);
  const std::size_t sub = k % kSubBuckets;
  const double octave = std::ldexp(1.0, static_cast<int>(m));
  const double width =
      std::ldexp(1.0, static_cast<int>(m) - static_cast<int>(SubBucketBits));
  return (octave + static_cast<double>(sub) * width) * 1e-9;
}

template <unsigned SubBucketBits>
double BasicLatencyHistogram<SubBucketBits>::bucket_ceiling(
    std::size_t bucket) {
  if (bucket + 1 < kBuckets) return bucket_floor(bucket + 1);
  return bucket_floor(bucket) * 2.0;  // saturated top bucket
}

template <unsigned SubBucketBits>
void BasicLatencyHistogram<SubBucketBits>::add(double seconds) {
  seconds = std::max(seconds, 0.0);
  ++buckets_[bucket_of(seconds)];
  ++count_;
  sum_ += seconds;
  min_ = count_ == 1 ? seconds : std::min(min_, seconds);
  max_ = std::max(max_, seconds);
}

template <unsigned SubBucketBits>
void BasicLatencyHistogram<SubBucketBits>::merge(
    const BasicLatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

template <unsigned SubBucketBits>
double BasicLatencyHistogram<SubBucketBits>::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

template <unsigned SubBucketBits>
double BasicLatencyHistogram<SubBucketBits>::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_ - 1);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += buckets_[b];
    if (static_cast<double>(seen) > target) {
      // The q-th rank falls in this bucket: interpolate linearly by its
      // position among the bucket's samples (centered, so a lone sample
      // reads as the bucket midpoint), then clamp into the exact observed
      // range so the estimate never exceeds the true extremes.
      const double lo = bucket_floor(b);
      const double hi = bucket_ceiling(b);
      const double frac =
          (target - before + 0.5) / static_cast<double>(buckets_[b]);
      return std::clamp(lo + frac * (hi - lo), min_, max_);
    }
  }
  return max_;
}

template class BasicLatencyHistogram<0>;
template class BasicLatencyHistogram<3>;

}  // namespace rda::obs
