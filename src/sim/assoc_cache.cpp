#include "sim/assoc_cache.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rda::sim {

namespace {

bool is_power_of_two(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

SetAssociativeCache::SetAssociativeCache(AssocCacheConfig config)
    : config_(config) {
  RDA_CHECK(config_.line_bytes > 0);
  RDA_CHECK(config_.ways > 0);
  RDA_CHECK(config_.capacity_bytes >= config_.line_bytes * config_.ways);
  ways_ = config_.ways;
  const std::uint64_t total_lines =
      config_.capacity_bytes / config_.line_bytes;
  sets_ = static_cast<std::uint32_t>(total_lines / ways_);
  RDA_CHECK_MSG(sets_ > 0, "cache too small for its associativity");
  RDA_CHECK_MSG(is_power_of_two(config_.line_bytes),
                "line size must be a power of two");
  lines_.assign(static_cast<std::size_t>(sets_) * ways_, Line{});
}

SetAssociativeCache::Line* SetAssociativeCache::find_line(std::uint64_t set,
                                                          std::uint64_t tag) {
  Line* base = &lines_[set * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].tag == tag) return &base[w];
  }
  return nullptr;
}

SetAssociativeCache::Line* SetAssociativeCache::pick_victim(
    std::uint64_t set, std::uint32_t allowed_ways) {
  Line* base = &lines_[set * ways_];
  Line* victim = nullptr;
  for (std::uint32_t w = 0; w < allowed_ways; ++w) {
    Line& line = base[w];
    if (!line.valid) return &line;
    if (victim == nullptr || line.last_use < victim->last_use) {
      victim = &line;
    }
  }
  return victim;
}

bool SetAssociativeCache::access(std::uint64_t address, ThreadId owner) {
  ++clock_;
  const std::uint64_t line_addr = address / config_.line_bytes;
  const std::uint64_t set = line_addr % sets_;
  const std::uint64_t tag = line_addr / sets_;

  ++stats_.accesses;
  AssocCacheStats& os = owner_stats_[owner];
  ++os.accesses;

  if (Line* hit = find_line(set, tag)) {
    hit->last_use = clock_;
    ++stats_.hits;
    ++os.hits;
    return true;
  }

  ++stats_.misses;
  ++os.misses;

  const auto part = partitions_.find(owner);
  const std::uint32_t allowed =
      part == partitions_.end() ? ways_ : std::min(part->second, ways_);
  RDA_CHECK_MSG(allowed > 0, "owner " << owner << " has a zero-way partition");

  Line* victim = pick_victim(set, allowed);
  if (victim->valid) {
    ++stats_.evictions;
    auto it = owner_lines_.find(victim->owner);
    if (it != owner_lines_.end() && it->second > 0) --it->second;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->owner = owner;
  victim->last_use = clock_;
  ++owner_lines_[owner];
  return false;
}

void SetAssociativeCache::set_partition(ThreadId owner,
                                        std::uint32_t allowed_ways) {
  RDA_CHECK(allowed_ways > 0);
  partitions_[owner] = std::min(allowed_ways, ways_);
}

void SetAssociativeCache::clear_partition(ThreadId owner) {
  partitions_.erase(owner);
}

void SetAssociativeCache::flush_owner(ThreadId owner) {
  for (Line& line : lines_) {
    if (line.valid && line.owner == owner) {
      line.valid = false;
      ++stats_.evictions;
    }
  }
  owner_lines_[owner] = 0;
}

std::uint64_t SetAssociativeCache::occupancy_lines(ThreadId owner) const {
  const auto it = owner_lines_.find(owner);
  return it == owner_lines_.end() ? 0 : it->second;
}

std::uint64_t SetAssociativeCache::occupancy_bytes(ThreadId owner) const {
  return occupancy_lines(owner) * config_.line_bytes;
}

AssocCacheStats SetAssociativeCache::owner_stats(ThreadId owner) const {
  const auto it = owner_stats_.find(owner);
  return it == owner_stats_.end() ? AssocCacheStats{} : it->second;
}

}  // namespace rda::sim
