// adversary — adversarial-tenant hardening benchmark: one misbehaving
// tenant among eight, with the TenantLedger's audit + credit + penalty
// machinery switched off and on over the SAME arrival trace. Emits
// BENCH_adversary.json and gates the headline claims:
//
//   * unenforced, a WSS inflator costs honest tenants >= 25% of their
//     all-honest goodput (the attack is real);
//   * enforced, honest tenants recover >= 90% of all-honest goodput (the
//     defense works);
//   * on an all-honest fleet, enforcement costs <= 2% (the defense is
//     affordable);
//   * long-term Jain fairness improves under enforcement for the inflator
//     cell, and credit conservation holds exactly in every enforced cell.
//
//   adversary [--arrivals N] [--jobs J] [--shards K]
//             [--out BENCH_adversary.json] [--baseline PATH]
//             [--quick] [--csv]
//
// Every cell is virtual-time and deterministic: byte-identical CSV for any
// --jobs value and any --shards value (tier1.sh cmps both), including the
// per-cell TenantLedger fingerprint — the ledger half of the K-invariance
// contract.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/harness.hpp"
#include "service/arrival.hpp"
#include "service/frontend.hpp"
#include "util/atomic_file.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace {

using namespace rda;
using rda::util::MB;

constexpr std::uint64_t kAdversaryTenant = 1;
constexpr double kServiceMean = 2.0e-3;

struct Cell {
  std::string name;
  service::AdversaryKind adversary = service::AdversaryKind::kNone;
  bool enforce = false;
};

struct CellResult {
  Cell cell;
  service::ServiceReport report;
  // Derived per-cell metrics (honest = every tenant but the adversary's id,
  // even in all-honest cells, so numerators stay comparable).
  double honest_work = 0.0;       ///< completed base service-sec, honest
  std::uint64_t honest_completed = 0;
  double jain_long = 0.0;         ///< Jain over completed/arrivals
  double jain_short = 0.0;        ///< Jain over admission responsiveness
  int adversary_rung = 0;         ///< ledger rung of the adversary at end
};

std::vector<Cell> build_cells() {
  using service::AdversaryKind;
  std::vector<Cell> cells;
  const auto add = [&](const char* name, AdversaryKind kind, bool enforce) {
    Cell cell;
    cell.name = name;
    cell.adversary = kind;
    cell.enforce = enforce;
    cells.push_back(cell);
  };
  add("all_honest_off", AdversaryKind::kNone, false);
  add("all_honest_on", AdversaryKind::kNone, true);
  add("inflator_off", AdversaryKind::kWssInflator, false);
  add("inflator_on", AdversaryKind::kWssInflator, true);
  add("under_declarer_off", AdversaryKind::kUnderDeclarer, false);
  add("under_declarer_on", AdversaryKind::kUnderDeclarer, true);
  add("churn_off", AdversaryKind::kChurn, false);
  add("churn_on", AdversaryKind::kChurn, true);
  return cells;
}

/// Jain's fairness index (Σx)² / (n·Σx²) over per-tenant allocations x;
/// 1 = perfectly even, 1/n = one tenant has everything.
double jain(const std::vector<double>& xs) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

CellResult run_cell(const Cell& cell, std::uint64_t arrivals, int shards) {
  service::ArrivalConfig arr;
  arr.shape = service::ArrivalShape::kPoisson;
  // ~86% of the honest fleet's service capacity (4 nodes x 15MB / 2MB mean
  // demand = 28 concurrent x 1/2ms = 14000/s): loaded enough that capacity
  // an inflator hoards is capacity honest tenants bleed for, with headroom
  // so the all-honest fleet itself stays off the overload ladder.
  arr.rate = 12000.0;
  arr.seed = 29;
  arr.tenants = 8;
  arr.hot_tenant_share = 0.4;  // the adversary is the hot tenant
  arr.demand_mean_bytes = static_cast<double>(MB(2));
  arr.service_mean_seconds = kServiceMean;
  arr.adversary.kind = cell.adversary;
  arr.adversary.tenant = kAdversaryTenant;
  arr.adversary.factor = 8.0;
  arr.adversary.churn_pieces = 8;

  service::ServiceConfig cfg;
  cfg.nodes = 4;
  cfg.drain_shards = shards;
  cfg.node_llc_bytes = static_cast<double>(MB(15));
  // One physical model for EVERY cell: completed periods occupy what they
  // actually touch, and a node driven past its LLC thrashes. Enforcement
  // is the only axis that varies between _off and _on.
  cfg.model_true_occupancy = true;
  cfg.enforce = cell.enforce;

  service::ArrivalGenerator gen(arr);
  service::ServiceFrontEnd frontend(cfg);
  CellResult result;
  result.cell = cell;
  result.report = frontend.run(gen, arrivals);

  const service::ServiceStats& s = result.report.stats;
  RDA_CHECK_MSG(s.completed + s.shed == arrivals,
                "adversary cell lost or duplicated arrivals");
  RDA_CHECK_MSG(s.still_queued == 0, "adversary cell left work queued");
  RDA_CHECK_MSG(s.overflow_drops == 0, "adversary cell overflowed its queue");
  RDA_CHECK_MSG(result.report.credits_conserved,
                "credit conservation broken: granted != spent + outstanding");
  if (cell.enforce) {
    RDA_CHECK_MSG(s.audits > 0, "enforced cell audited nothing");
  }

  std::vector<double> success;   // completed / arrivals, per tenant
  std::vector<double> response;  // 1 / (1 + mean admission latency / service)
  for (const service::TenantSummary& row : result.report.tenants) {
    if (row.tenant != kAdversaryTenant) {
      result.honest_work += row.work;
      result.honest_completed += row.completed;
    } else {
      result.adversary_rung = row.rung;
    }
    success.push_back(row.arrivals > 0
                          ? static_cast<double>(row.completed) /
                                static_cast<double>(row.arrivals)
                          : 0.0);
    const double mean_latency =
        row.admissions > 0
            ? row.latency_sum / static_cast<double>(row.admissions)
            : 0.0;
    response.push_back(1.0 / (1.0 + mean_latency / kServiceMean));
  }
  result.jain_long = jain(success);
  result.jain_short = jain(response);
  return result;
}

void print_csv(const std::vector<CellResult>& results) {
  // Byte-compared across --jobs and --shards by tier1.sh; the ledger
  // fingerprint column pins the enforcement state itself to K-invariance,
  // not just the service outcomes.
  std::printf(
      "cell,completed,shed,audits,penalties,haircuts,quota_denied,"
      "credits_granted,credits_spent,honest_completed,honest_work,"
      "jain_long,jain_short,checksum,ledger_fingerprint\n");
  for (const CellResult& r : results) {
    const service::ServiceStats& s = r.report.stats;
    std::printf(
        "%s,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%.17g,%.17g,%.17g,"
        "%llx,%llx\n",
        r.cell.name.c_str(), static_cast<unsigned long long>(s.completed),
        static_cast<unsigned long long>(s.shed),
        static_cast<unsigned long long>(s.audits),
        static_cast<unsigned long long>(s.penalties),
        static_cast<unsigned long long>(s.haircuts),
        static_cast<unsigned long long>(s.quota_denied),
        static_cast<unsigned long long>(s.credits_granted),
        static_cast<unsigned long long>(s.credits_spent),
        static_cast<unsigned long long>(r.honest_completed), r.honest_work,
        r.jain_long, r.jain_short,
        static_cast<unsigned long long>(r.report.checksum),
        static_cast<unsigned long long>(r.report.ledger_fingerprint));
  }
}

double json_number_after(const std::string& text, const std::string& anchor,
                         const std::string& key, double fallback) {
  std::size_t from = 0;
  if (!anchor.empty()) {
    from = text.find("\"" + anchor + "\"");
    if (from == std::string::npos) return fallback;
  }
  const std::size_t at = text.find("\"" + key + "\":", from);
  if (at == std::string::npos) return fallback;
  const char* p = text.c_str() + at + key.size() + 3;
  char* end = nullptr;
  const double value = std::strtod(p, &end);
  return end == p ? fallback : value;
}

const CellResult& find_cell(const std::vector<CellResult>& results,
                            const std::string& name) {
  for (const CellResult& r : results) {
    if (r.cell.name == name) return r;
  }
  RDA_CHECK_MSG(false, "missing adversary cell " + name);
  return results.front();
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = exp::has_flag(argc, argv, "--quick");
  const bool csv = exp::has_flag(argc, argv, "--csv");
  const std::uint64_t arrivals =
      exp::parse_u64_flag(argc, argv, "--arrivals", quick ? 8'000 : 40'000);
  const int jobs = exp::parse_jobs(argc, argv);
  const int shards =
      static_cast<int>(exp::parse_u64_flag(argc, argv, "--shards", 0));
  const std::string out_path =
      exp::parse_string_flag(argc, argv, "--out", "BENCH_adversary.json");
  const std::string baseline_path =
      exp::parse_string_flag(argc, argv, "--baseline", "");

  const std::vector<Cell> cells = build_cells();
  std::vector<CellResult> results(cells.size());
  exp::run_cells(cells.size(), jobs, [&](std::size_t i) {
    results[i] = run_cell(cells[i], arrivals, shards);
  });

  if (csv) {
    print_csv(results);
    return 0;
  }

  for (const CellResult& r : results) {
    const service::ServiceStats& s = r.report.stats;
    std::printf(
        "%-20s honest work %9.4f s  completed %6llu  shed %5llu  "
        "jain %5.3f/%5.3f  audits %6llu  penalties %3llu  adv rung %d\n",
        r.cell.name.c_str(), r.honest_work,
        static_cast<unsigned long long>(s.completed),
        static_cast<unsigned long long>(s.shed), r.jain_long, r.jain_short,
        static_cast<unsigned long long>(s.audits),
        static_cast<unsigned long long>(s.penalties), r.adversary_rung);
  }

  const CellResult& honest_off = find_cell(results, "all_honest_off");
  const CellResult& honest_on = find_cell(results, "all_honest_on");
  const CellResult& inflator_off = find_cell(results, "inflator_off");
  const CellResult& inflator_on = find_cell(results, "inflator_on");
  const CellResult& under_off = find_cell(results, "under_declarer_off");
  const CellResult& under_on = find_cell(results, "under_declarer_on");
  const CellResult& churn_off = find_cell(results, "churn_off");
  const CellResult& churn_on = find_cell(results, "churn_on");

  const double base = honest_off.honest_work;
  const double overhead =
      base > 0.0 ? 1.0 - honest_on.honest_work / base : 1.0;
  const double unenforced_loss =
      base > 0.0 ? 1.0 - inflator_off.honest_work / base : 0.0;
  const double recovery =
      base > 0.0 ? inflator_on.honest_work / base : 0.0;
  std::printf(
      "headline: unenforced inflator loss %.1f%%, enforced recovery %.1f%%, "
      "all-honest enforcement overhead %.2f%%\n",
      100.0 * unenforced_loss, 100.0 * recovery, 100.0 * overhead);

  int rc = 0;
  const auto gate = [&rc](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "error: %s\n", what);
      rc = 1;
    }
  };
  // The attack is real: one inflator among eight costs honest tenants at
  // least a quarter of their goodput when declarations are trusted.
  gate(unenforced_loss >= 0.25,
       "unenforced WSS inflator cost honest tenants < 25%");
  // The defense works: enforcement claws back >= 90% of all-honest goodput.
  gate(recovery >= 0.90,
       "enforcement recovered < 90% of all-honest honest-tenant goodput");
  // The defense is affordable: <= 2% on an all-honest fleet.
  gate(overhead <= 0.02, "enforcement cost an all-honest fleet > 2%");
  // Fairness must move the right way, both horizons.
  gate(inflator_on.jain_long > inflator_off.jain_long,
       "long-term Jain did not improve under enforcement (inflator)");
  gate(inflator_on.jain_short >= inflator_off.jain_short,
       "short-term Jain regressed under enforcement (inflator)");
  // The ladder actually engaged on the liars, and only on the liars.
  gate(inflator_on.adversary_rung >= 1 &&
           inflator_on.report.stats.penalties > 0,
       "inflator never climbed the penalty ladder");
  gate(under_on.adversary_rung >= 1 && under_on.report.stats.penalties > 0,
       "under-declarer never climbed the penalty ladder");
  gate(honest_on.report.stats.penalties == 0,
       "an all-honest fleet took penalties");
  // The under-declarer's harm is thrash latency, not lost completions, so
  // its recovery gate is on short-horizon responsiveness fairness: quota
  // plus haircut must restore what the liar stole without costing honest
  // goodput.
  gate(under_on.jain_short > under_off.jain_short,
       "enforcement did not restore responsiveness the under-declarer stole");
  gate(under_on.honest_work >= 0.98 * under_off.honest_work,
       "enforcement cost under-declarer victims > 2% goodput");
  gate(churn_on.honest_work >= 0.95 * churn_off.honest_work,
       "enforcement cost churn victims > 5%");

  std::ostringstream json;
  json << "{\n  \"arrivals\": " << arrivals << ",\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"unenforced_loss\": %.4f,\n  \"recovery\": %.4f,\n"
                "  \"enforce_overhead\": %.4f,\n",
                unenforced_loss, recovery, overhead);
  json << buf;
  json << "  \"cells\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    const service::ServiceStats& s = r.report.stats;
    std::snprintf(
        buf, sizeof(buf),
        "    {\"name\": \"%s\", \"honest_work\": %.6f, "
        "\"jain_long\": %.4f, \"jain_short\": %.4f,\n"
        "     \"completed\": %llu, \"shed\": %llu, \"audits\": %llu, "
        "\"penalties\": %llu, \"credits_granted\": %llu, "
        "\"credits_spent\": %llu, \"adversary_rung\": %d}%s\n",
        r.cell.name.c_str(), r.honest_work, r.jain_long, r.jain_short,
        static_cast<unsigned long long>(s.completed),
        static_cast<unsigned long long>(s.shed),
        static_cast<unsigned long long>(s.audits),
        static_cast<unsigned long long>(s.penalties),
        static_cast<unsigned long long>(s.credits_granted),
        static_cast<unsigned long long>(s.credits_spent), r.adversary_rung,
        i + 1 < results.size() ? "," : "");
    json << buf;
  }
  json << "  ]\n}\n";

  try {
    util::write_file_atomic(out_path, json.str());
    std::printf("wrote %s\n", out_path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "warning: %s\n", e.what());
  }

  // Regression gate against the committed snapshot: deterministic
  // virtual-time metrics, so any >10% drop is a code change, not noise.
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::printf("no committed baseline at %s; recorded fresh snapshot\n",
                  baseline_path.c_str());
    } else {
      std::stringstream buffer;
      buffer << in.rdbuf();
      const std::string basej = buffer.str();
      const double base_arrivals =
          json_number_after(basej, "", "arrivals", 0.0);
      if (static_cast<std::uint64_t>(base_arrivals) != arrivals) {
        std::printf(
            "baseline used %.0f arrivals (this run: %llu); skipping gate\n",
            base_arrivals, static_cast<unsigned long long>(arrivals));
      } else {
        const double base_recovery =
            json_number_after(basej, "", "recovery", 0.0);
        if (base_recovery > 0.0 && recovery < base_recovery - 0.10) {
          std::fprintf(stderr,
                       "error: recovery %.3f fell >0.10 below the committed "
                       "%.3f\n",
                       recovery, base_recovery);
          rc = 1;
        }
        for (const CellResult& r : results) {
          const double base_work =
              json_number_after(basej, r.cell.name, "honest_work", 0.0);
          if (base_work > 0.0 && r.honest_work < 0.9 * base_work) {
            std::fprintf(stderr,
                         "error: %s honest work %.4f fell >10%% below the "
                         "committed %.4f\n",
                         r.cell.name.c_str(), r.honest_work, base_work);
            rc = 1;
          }
        }
      }
    }
  }
  return rc;
}
