#include "predict/regression.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace rda::predict {

double LogFit::operator()(double x) const { return a + b * std::log(x); }

LogFit fit_log(std::span<const double> xs, std::span<const double> ys) {
  std::vector<double> log_xs;
  log_xs.reserve(xs.size());
  for (double x : xs) {
    if (x <= 0.0) {
      throw std::invalid_argument("fit_log: input sizes must be positive");
    }
    log_xs.push_back(std::log(x));
  }
  const util::LineFit line = util::fit_line(log_xs, ys);
  LogFit fit;
  fit.a = line.intercept;
  fit.b = line.slope;
  fit.r_squared = line.r_squared;
  return fit;
}

double prediction_accuracy(double predicted, double actual) {
  if (actual == 0.0) return predicted == 0.0 ? 1.0 : 0.0;
  const double rel_err = std::fabs(predicted - actual) / std::fabs(actual);
  return std::clamp(1.0 - rel_err, 0.0, 1.0);
}

WssPredictor::WssPredictor(std::span<const double> xs,
                           std::span<const double> ys) {
  log_fit_ = fit_log(xs, ys);
  line_fit_ = util::fit_line(xs, ys);
  family_ = log_fit_.r_squared >= line_fit_.r_squared
                ? FitFamily::kLogarithmic
                : FitFamily::kLinear;
}

double WssPredictor::predict(double input_size) const {
  const double raw = family_ == FitFamily::kLogarithmic
                         ? log_fit_(input_size)
                         : line_fit_(input_size);
  return std::max(0.0, raw);  // a working set cannot be negative
}

double WssPredictor::r_squared() const {
  return family_ == FitFamily::kLogarithmic ? log_fit_.r_squared
                                            : line_fit_.r_squared;
}

std::string WssPredictor::describe() const {
  std::ostringstream os;
  if (family_ == FitFamily::kLogarithmic) {
    os << "wss(n) = " << log_fit_.a << " + " << log_fit_.b
       << "*ln(n)  [R^2=" << log_fit_.r_squared << "]";
  } else {
    os << "wss(n) = " << line_fit_.intercept << " + " << line_fit_.slope
       << "*n  [R^2=" << line_fit_.r_squared << "]";
  }
  return os.str();
}

}  // namespace rda::predict
