# Empty dependencies file for ablate_bandwidth.
# This may be replaced when dependencies are built.
