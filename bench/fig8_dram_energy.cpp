// Reproduces paper Figure 8: energy (Joules) consumed by DRAM only, per
// workload and policy. The paper's reading: RDA:Strict almost always has the
// lowest DRAM energy (best LLC utilization); for low-reuse workloads the
// policies are nearly identical.
#include <iostream>

#include "fig_common.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rda;
  std::cout << "=== Figure 8: DRAM-only energy, Joules ===\n"
            << "(lower is better; paper Fig. 8)\n\n";
  const bench::FigureData data =
      bench::run_all_workloads(bench::quick_requested(argc, argv),
                               bench::jobs_requested(argc, argv));
  const bool csv = bench::csv_requested(argc, argv);

  bench::print_metric_table(data, "DRAM energy [J]", 0,
                            [](const exp::RunRow& row) {
                              return row.dram_joules;
                            }, csv);
  if (csv) return 0;

  // The §4.2 observation: strict <= compromise on DRAM energy.
  int strict_best = 0;
  for (const exp::PolicyComparison& cmp : data.comparisons) {
    if (cmp.strict.dram_joules <= cmp.compromise.dram_joules * 1.001) {
      ++strict_best;
    }
  }
  std::cout << "RDA:Strict has lowest DRAM energy on " << strict_best << "/"
            << data.comparisons.size()
            << " workloads (paper: \"almost always\")\n";
  return 0;
}
