// Resource monitor (§3.2): real-time estimation of hardware load.
//
// "A table is used to keep track of the current load level for the
//  resources, where an entry is allocated to each resource to save its
//  current usage level. The resource manager keeps the usage estimation
//  up-to-date any time a process enters or completes a progress period."
//
// The version counter supports the cached-decision fast path: a thread's
// prior admission decision is reusable only while nobody else has changed
// any load entry.
#pragma once

#include <array>
#include <cstdint>

#include "common/types.hpp"

namespace rda::core {

/// Capacity + current aggregate demand of one hardware resource.
struct ResourceState {
  double capacity = 0.0;
  double usage = 0.0;

  double remaining() const { return capacity - usage; }
};

class ResourceMonitor {
 public:
  ResourceMonitor();

  /// Configures the maximum capacity of a resource (e.g. LLC bytes from the
  /// machine description). Capacity must be positive before use.
  void set_capacity(ResourceKind kind, double capacity);

  const ResourceState& state(ResourceKind kind) const;
  double capacity(ResourceKind kind) const { return state(kind).capacity; }
  double usage(ResourceKind kind) const { return state(kind).usage; }
  double remaining(ResourceKind kind) const { return state(kind).remaining(); }

  /// Adds a progress period's demand to the active load (paper Fig. 5,
  /// "increment load value").
  void increment_load(ResourceKind kind, double demand);

  /// Removes a completed period's demand (paper Fig. 6, "decrement load").
  /// Checks the load never goes negative (up to floating-point dust, which
  /// is snapped to zero).
  void decrement_load(ResourceKind kind, double demand);

  /// Forced-oversubscription tally: load admitted by the watchdog BEYOND
  /// what the policy would allow. It rides on top of the ordinary usage
  /// (the load itself is still charged via increment_load) purely as an
  /// audit trail — the fault-matrix ledger asserts it returns to zero.
  void add_oversubscribed(ResourceKind kind, double demand);
  void remove_oversubscribed(ResourceKind kind, double demand);
  double oversubscribed(ResourceKind kind) const {
    return oversub_[static_cast<std::size_t>(kind)];
  }

  /// True when the resource carries no load beyond floating-point dust.
  /// Admission liveness decisions must use this, never `usage() > 0`: a
  /// long sequence of increment/decrement pairs at megabyte scale leaves
  /// residues of ~1e-2 bytes.
  bool effectively_free(ResourceKind kind) const;

  /// Bumped on every load change; keying for cached admission decisions.
  std::uint64_t version() const { return version_; }

 private:
  double dust_threshold(ResourceKind kind) const;

  std::array<ResourceState, kNumResourceKinds> states_{};
  std::array<double, kNumResourceKinds> oversub_{};
  std::uint64_t version_ = 1;
};

}  // namespace rda::core
