#include "profiler/report.hpp"

#include <iomanip>
#include <sstream>

#include "util/units.hpp"

namespace rda::prof {

std::string render_begin_call(std::uint64_t wss_bytes, ReuseLevel reuse) {
  std::ostringstream os;
  os << "pp_begin(RESOURCE_LLC, MB(" << std::fixed << std::setprecision(2)
     << util::bytes_to_mb(wss_bytes) << "), REUSE_";
  switch (reuse) {
    case ReuseLevel::kLow: os << "LOW"; break;
    case ReuseLevel::kMedium: os << "MED"; break;
    case ReuseLevel::kHigh: os << "HIGH"; break;
  }
  os << ")";
  return os.str();
}

std::string ProfileReport::to_string() const {
  std::ostringstream os;
  os << "windows: " << windows.size() << ", detected periods: "
     << periods.size() << "\n";
  for (std::size_t i = 0; i < periods.size(); ++i) {
    const MappedPeriod& mp = periods[i];
    os << "  PP" << (i + 1) << ": windows [" << mp.period.first_window << ", "
       << mp.period.last_window << "], wss="
       << std::fixed << std::setprecision(2)
       << util::bytes_to_mb(mp.period.wss_bytes) << " MB, reuse_ratio="
       << std::setprecision(1) << mp.period.reuse_ratio << " ("
       << rda::to_string(mp.period.reuse_level) << ")";
    if (i < annotations.size()) {
      os << "\n      boundary loop: " << annotations[i].loop_name
         << "\n      insert: " << annotations[i].begin_call << " ... "
         << annotations[i].end_call;
    }
    os << "\n";
  }
  return os.str();
}

ProfileReport assemble_report(std::vector<WindowStats> windows,
                              const PeriodDetector& detector,
                              const trace::LoopNest& nest) {
  ProfileReport report;
  report.windows = std::move(windows);
  const std::vector<DetectedPeriod> detected = detector.detect(report.windows);
  LoopMapper mapper(nest);
  report.periods = mapper.map_all(detected);
  report.annotations.reserve(report.periods.size());
  for (const MappedPeriod& mp : report.periods) {
    Annotation ann;
    ann.loop_name =
        mp.boundary_loop ? nest.loop(*mp.boundary_loop).name : std::string("?");
    ann.wss_bytes = mp.period.wss_bytes;
    ann.reuse = mp.period.reuse_level;
    ann.begin_call = render_begin_call(ann.wss_bytes, ann.reuse);
    ann.end_call = "pp_end(pp_id)";
    report.annotations.push_back(std::move(ann));
  }
  return report;
}

ProfileReport Profiler::profile(trace::TraceSource& source,
                                const trace::LoopNest& nest) const {
  return assemble_report(analyzer_.analyze(source), detector_, nest);
}

}  // namespace rda::prof
