file(REMOVE_RECURSE
  "librda_runtime.a"
)
