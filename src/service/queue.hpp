// Lock-light bounded MPSC submission queue (Vyukov's array queue).
//
// The front door of the service: producer threads (or the virtual-time
// arrival loop) push submissions with one CAS-free fetch_add-style ticket
// per slot, and the single drain loop pops them in FIFO order, a batch at
// a time. The classic Dmitry Vyukov bounded-MPMC sequence scheme is used
// — each cell carries a sequence number the producer/consumer compare
// against their ticket, so neither side ever takes a lock and a full or
// empty queue is detected without blocking.
//
// push() is multi-producer safe. pop()/pop_batch() assume a SINGLE
// consumer (the drain loop owns the tail) — that is the service design:
// one drainer per front end, so admissions can be batched per drain pass.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace rda::service {

template <typename T>
class SubmissionQueue {
 public:
  /// Capacity is rounded up to a power of two (sequence arithmetic needs
  /// the mask trick).
  explicit SubmissionQueue(std::size_t capacity) {
    RDA_CHECK_MSG(capacity >= 2, "queue capacity must be at least 2");
    std::size_t pow2 = 2;
    while (pow2 < capacity) pow2 <<= 1;
    cells_ = std::vector<Cell>(pow2);
    mask_ = pow2 - 1;
    for (std::size_t i = 0; i < pow2; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  SubmissionQueue(const SubmissionQueue&) = delete;
  SubmissionQueue& operator=(const SubmissionQueue&) = delete;

  /// Multi-producer enqueue. False = queue full (caller decides whether
  /// that is backpressure or a shed).
  bool push(T value) {
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::uint64_t seq = cell.sequence.load(std::memory_order_acquire);
      const std::int64_t diff =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = std::move(value);
          cell.sequence.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // the cell still holds an unconsumed value: full
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single-consumer dequeue. False = queue empty.
  bool pop(T& out) {
    const std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    const std::uint64_t seq = cell.sequence.load(std::memory_order_acquire);
    const std::int64_t diff =
        static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1);
    if (diff < 0) return false;
    out = std::move(cell.value);
    cell.sequence.store(pos + mask_ + 1, std::memory_order_release);
    tail_.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Single-consumer batched dequeue: appends up to `max` values to `out`
  /// in FIFO order and returns how many were taken.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max) {
    std::size_t taken = 0;
    T value;
    while (taken < max && pop(value)) {
      out.push_back(std::move(value));
      ++taken;
    }
    return taken;
  }

  /// Items currently queued. Exact when quiescent; a racing producer can
  /// make it stale by one, which is fine for the overload EWMA it feeds.
  std::size_t size() const {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(head >= tail ? head - tail : 0);
  }

  std::size_t capacity() const { return mask_ + 1; }

 private:
  struct Cell {
    std::atomic<std::uint64_t> sequence{0};
    T value{};
  };

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  /// Producers race on head_; tail_ belongs to the single consumer (padded
  /// apart so producers do not false-share the consumer's cursor).
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
};

}  // namespace rda::service
