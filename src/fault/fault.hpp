// Seeded, deterministic fault injection.
//
// A FaultPlan is a script of faults — thread death while admitted or
// waitlisted, lost/delayed wakes, corrupted counter observations, cluster
// node failures — each armed at a specific HOOK and firing on the Nth
// matching consult of that hook. Injection points in core/admission,
// runtime/gate, sim/engine and cluster call consult() at well-defined,
// deterministic places (never from a timer), so the same plan + workload
// replays the same fault sequence bit-for-bit: the property tools/fault_matrix
// relies on to byte-compare runs.
//
// Everything is opt-in: every hook site holds a nullable FaultInjector* and
// the default (nullptr) costs one branch — the production hot path is
// untouched.
#pragma once

#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

#include "sim/ids.hpp"

namespace rda::fault {

enum class FaultKind : std::uint8_t {
  kThreadDeath,     ///< thread disappears mid-period (admitted or waitlisted)
  kLostWake,        ///< an admission grant's wake notification is dropped
  kDelayedWake,     ///< the wake is delivered late (native gate only)
  kCorruptCounter,  ///< observed peak occupancy scaled by `factor`
  kNodeFail,        ///< cluster node fails a routing attempt
  kNodeRecover,     ///< cluster node rejoins the placement set
};

std::string_view to_string(FaultKind kind);

/// Where in the lifecycle a fault can be armed. Each hook site consults the
/// injector exactly once per event of that type, in substrate-deterministic
/// order.
enum class Hook : std::uint8_t {
  kAdmit,      ///< after a period was admitted on the begin path
  kBlock,      ///< after a period was parked on the waitlist
  kWake,       ///< when an admission grant is about to be delivered
  kRelease,    ///< when a completed period's counters are observed
  kNodeRoute,  ///< when the cluster routes a process to a node
};

std::string_view to_string(Hook hook);

struct FaultSpec {
  FaultKind kind = FaultKind::kThreadDeath;
  Hook hook = Hook::kAdmit;
  /// Restricts the fault to one thread; kInvalidThread matches any.
  sim::ThreadId thread = sim::kInvalidThread;
  /// Restricts a kNodeRoute fault to one node; negative matches any.
  int node = -1;
  /// Fires on the Nth matching consult (1-based). With several specs on the
  /// same hook, at most one fires per consult; a spec whose count was
  /// reached while another fired takes the next matching consult.
  std::uint64_t at_count = 1;
  /// kCorruptCounter: multiplier applied to the observed peak occupancy.
  double factor = 1.0;
  /// kDelayedWake: how long the native gate sits on the notification.
  double delay_seconds = 0.0;
};

/// An ordered script of faults. Build one explicitly, or derive a pseudo-
/// random plan from a seed (every draw comes from util::Rng, so a seed fully
/// determines the plan).
class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& add(FaultSpec spec) {
    specs_.push_back(spec);
    return *this;
  }
  const std::vector<FaultSpec>& specs() const { return specs_; }
  bool empty() const { return specs_.empty(); }

  /// `fault_count` faults drawn from {thread death, lost wake, corrupt
  /// counter} spread across the first `thread_count` threads and the first
  /// few matching consults.
  static FaultPlan random(std::uint64_t seed, std::size_t fault_count,
                          std::size_t thread_count);

 private:
  std::vector<FaultSpec> specs_;
};

/// Arms a plan and answers hook-site consults. One spec fires at most once;
/// consult order is the only clock (no wall time), so firing is
/// deterministic per plan. Internally synchronized: the native gate consults
/// from multiple threads under its own mutex, but scenario drivers may also
/// probe fired() concurrently.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Reports the hook event; returns the spec that fires on it, or nullptr.
  /// The returned pointer stays valid for the injector's lifetime.
  const FaultSpec* consult(Hook hook,
                           sim::ThreadId thread = sim::kInvalidThread,
                           int node = -1);

  /// Specs that have fired, in firing order.
  std::vector<FaultSpec> fired() const;
  std::uint64_t consults() const;
  std::size_t armed() const;  ///< specs not yet fired

 private:
  struct Armed {
    FaultSpec spec;
    std::uint64_t matches = 0;
    bool fired = false;
  };

  mutable std::mutex mu_;
  std::vector<Armed> armed_;
  std::vector<FaultSpec> fired_log_;
  std::uint64_t consults_ = 0;
};

}  // namespace rda::fault
