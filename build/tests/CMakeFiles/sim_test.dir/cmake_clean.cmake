file(REMOVE_RECURSE
  "CMakeFiles/sim_test.dir/sim/assoc_cache_test.cpp.o"
  "CMakeFiles/sim_test.dir/sim/assoc_cache_test.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/cache_model_test.cpp.o"
  "CMakeFiles/sim_test.dir/sim/cache_model_test.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/calibration_test.cpp.o"
  "CMakeFiles/sim_test.dir/sim/calibration_test.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/energy_model_test.cpp.o"
  "CMakeFiles/sim_test.dir/sim/energy_model_test.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/engine_test.cpp.o"
  "CMakeFiles/sim_test.dir/sim/engine_test.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/perf_model_test.cpp.o"
  "CMakeFiles/sim_test.dir/sim/perf_model_test.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/phase_test.cpp.o"
  "CMakeFiles/sim_test.dir/sim/phase_test.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/scheduler_mode_test.cpp.o"
  "CMakeFiles/sim_test.dir/sim/scheduler_mode_test.cpp.o.d"
  "sim_test"
  "sim_test.pdb"
  "sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
