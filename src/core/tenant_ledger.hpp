// TenantLedger — the tenant-truth enforcement tier above the admission
// predicate (ROADMAP item 1).
//
// The paper's predicate trusts every pp_begin declaration, so one greedy
// tenant that inflates its declared WSS hoards LLC capacity and starves
// honest neighbours, and one that under-declares thrashes them. The ledger
// closes that gap with three mechanisms layered over the per-LABEL
// DemandCorrector (which fixes honest mistakes; the ledger judges
// per-TENANT intent):
//
//   1. Demand-truth auditing. Every completed period's measured peak
//      occupancy is compared against what its tenant declared. An audit is
//      honest when |log(observed/declared)| stays inside the tolerance
//      band; each verdict feeds a decayed per-tenant honesty score and the
//      consecutive-divergence streaks that drive the penalty ladder. A
//      contended observation whose peak is BELOW the declaration is a lower
//      bound, not a lie (the period may simply have been unable to grow its
//      occupancy) — it is recorded but never moves a streak, which is what
//      makes a contended-but-honest tenant recoverable by construction.
//
//   2. Karma-style credit accounting. A tenant whose honest audit shows it
//      reserved more than it used donates the unused budget as credits
//      (integer units, so conservation is exact: Σgranted == Σspent +
//      Σoutstanding at all times); a tenant bursting over its long-term
//      fair share spends credits. Fair share is thereby a long-term
//      average, not an instantaneous cap — bursty-but-honest tenants ride
//      their own banked slack. Divergent audits grant nothing, so inflating
//      a declaration can never mint credits.
//
//   3. A per-tenant penalty ladder, engaging only on SUSTAINED divergence
//      (escalate_after consecutive divergent audits per rung) and decaying
//      back on honest behaviour (recover_after consecutive honest audits
//      per rung):
//        rung 0  trusted — declarations taken at face value,
//        rung 1  haircut — declared demand is rescaled by the audited
//                usage ratio (an inflator is charged what it uses; an
//                under-declarer is charged what it takes),
//        rung 2  credit surcharge — bursts cost surcharge× the credits,
//        rung 3  deprioritized — the tenant's submissions go to the back
//                of every admission batch,
//        rung 4  hard quota — at most quota_outstanding submissions open
//                (admitted or parked) at once; the excess is shed.
//      Rungs compose downward: rung 4 also pays the haircut, surcharge,
//      and deprioritization.
//
// Determinism contract (the K-invariance discipline of DESIGN §16): audits
// arriving from K drain shards are captured as per-shard AuditRecord slices
// stamped with a global audit_seq and applied through apply(), which sorts
// by seq — so ledger state, fingerprint(), and every enforcement decision
// are byte-identical for any shard count. The ledger is internally
// synchronized (one mutex; state is tiny and off every fast path) so the
// sharded AdmissionCore's slow lanes can audit concurrently with admission
// queries from other threads.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "obs/sink.hpp"

namespace rda::core {

struct TenantLedgerOptions {
  /// Honest band: |log(observed/declared)| <= log(1 + tolerance).
  double tolerance = 0.30;
  /// Per-audit EMA weight of the PREVIOUS honesty score (1 − this is the
  /// weight of the fresh verdict).
  double honesty_decay = 0.80;
  /// Decay for the audited usage ratio (same shape as FeedbackOptions:
  /// a decayed running max so the haircut only relaxes under repeated
  /// consistent evidence).
  double ratio_decay = 0.90;
  /// Audits required before any penalty can engage — one noisy period must
  /// not brand a tenant.
  std::uint32_t min_audits = 3;
  /// Consecutive divergent audits to climb one rung.
  std::uint32_t escalate_after = 3;
  /// Consecutive honest audits to descend one rung.
  std::uint32_t recover_after = 6;
  /// Haircut clamp (rung >= 1): declared × clamp(ratio, min, max).
  double correction_min = 0.10;
  double correction_max = 8.0;
  /// Bytes of unused honest reservation per credit unit.
  double credit_unit_bytes = 64.0 * 1024.0;
  /// Per-tenant credit balance cap (units); grants truncate here so one
  /// idle tenant cannot bank unbounded burst rights.
  std::uint64_t credit_cap = 1u << 20;
  /// Rung >= 2: bursts cost this multiple of the base credit price.
  double surcharge = 4.0;
  /// Rung 4: max open (admitted + parked) submissions per tenant.
  std::uint64_t quota_outstanding = 2;
  /// Event sink for kPenalty / kCreditGrant / kCreditSpend (non-owning;
  /// nullptr = tracing off).
  obs::TraceSink* trace_sink = nullptr;
};

/// One captured audit: a completed period's declared primary demand vs the
/// peak occupancy the counters (or the service's occupancy model) saw.
/// Captured per drain shard, stamped with a GLOBAL completion-order seq,
/// merged and applied deterministically by TenantLedger::apply.
struct AuditRecord {
  std::uint64_t audit_seq = 0;
  std::uint64_t tenant = 0;
  double declared = 0.0;
  double observed = 0.0;
  bool contended = false;
  double time = 0.0;
};

/// Outcome of one audit, for tests and stats.
struct TenantVerdict {
  bool honest = false;
  bool counted = true;  ///< false: contended lower bound, streaks untouched
  int rung = 0;         ///< rung AFTER this audit
  bool rung_changed = false;
  std::uint64_t credits_granted = 0;
};

class TenantLedger {
 public:
  explicit TenantLedger(TenantLedgerOptions options = {});

  TenantLedger(const TenantLedger&) = delete;
  TenantLedger& operator=(const TenantLedger&) = delete;

  /// Audits one completed period and applies its consequences (honesty
  /// EMA, streaks, rung moves, credit grant). Thread-safe.
  TenantVerdict audit(std::uint64_t tenant, double declared, double observed,
                      bool contended, double now);

  /// Applies a batch of captured audits in audit_seq order (the records
  /// may arrive unsorted — one slice per drain shard; apply() owns the
  /// deterministic merge). Equivalent to calling audit() per record in seq
  /// order.
  void apply(std::span<const AuditRecord> records);

  /// Current penalty rung of a tenant (0 = trusted / unknown).
  int rung(std::uint64_t tenant) const;

  /// Declared-demand multiplier (rung >= 1): the audited usage ratio,
  /// clamped — < 1 shrinks an inflator's reservation to what it uses,
  /// > 1 grows an under-declarer's to what it takes. 1.0 below rung 1.
  double demand_correction(std::uint64_t tenant) const;

  /// Decayed honesty score in [0, 1]; 1.0 for unknown tenants.
  double honesty(std::uint64_t tenant) const;

  /// Credit price multiplier for a burst (surcharge at rung >= 2, else 1).
  double credit_price(std::uint64_t tenant) const;

  /// True when the tenant is past the deprioritization rung.
  bool deprioritized(std::uint64_t tenant) const { return rung(tenant) >= 3; }

  /// Rung-4 quota check: may this tenant open one more submission given
  /// `open` already admitted or parked? Always true below rung 4.
  bool within_quota(std::uint64_t tenant, std::uint64_t open) const;

  /// Spends up to `want` credit units; returns the units actually spent
  /// (the whole balance when it falls short — the caller learns the
  /// deficit from the difference). Thread-safe.
  std::uint64_t spend(std::uint64_t tenant, std::uint64_t want, double now);

  /// --- Conservation + determinism ----------------------------------------

  std::uint64_t credits_balance(std::uint64_t tenant) const;
  std::uint64_t total_granted() const;
  std::uint64_t total_spent() const;
  std::uint64_t total_outstanding() const;
  /// Σgranted == Σspent + Σoutstanding, exactly (integer units).
  bool credits_conserved() const;

  std::uint64_t audits() const;
  std::uint64_t penalties() const;  ///< rung escalations applied

  /// Order-sensitive digest of the full per-tenant state (tenants walked in
  /// id order). Equal fingerprints mean byte-identical ledgers — the
  /// cross-K determinism tests compare exactly this.
  std::uint64_t fingerprint() const;

  const TenantLedgerOptions& options() const { return options_; }

 private:
  struct TenantState {
    double honesty = 1.0;          ///< decayed EMA of honest verdicts
    double ratio = 1.0;            ///< decayed audited observed/declared
    std::uint32_t audit_count = 0;
    std::uint32_t divergent_streak = 0;
    std::uint32_t honest_streak = 0;
    int rung = 0;
    std::uint64_t credits = 0;         ///< outstanding balance (units)
    std::uint64_t granted = 0;         ///< lifetime grants (units)
    std::uint64_t spent = 0;           ///< lifetime spends (units)
  };

  TenantVerdict audit_locked(std::uint64_t tenant, double declared,
                             double observed, bool contended, double now);
  void trace(obs::EventKind kind, double now, std::uint64_t tenant,
             double demand) const;

  TenantLedgerOptions options_;
  mutable std::mutex mu_;
  /// Ordered so fingerprint() and iteration are deterministic without a
  /// per-call sort.
  std::map<std::uint64_t, TenantState> tenants_;
  std::uint64_t audits_ = 0;
  std::uint64_t penalties_ = 0;
  std::uint64_t total_granted_ = 0;
  std::uint64_t total_spent_ = 0;
};

}  // namespace rda::core
