// Experiment harness: runs a Table-2 workload under a scheduling policy and
// reports the paper's four metrics (Figs. 7–10). Shared by every bench
// binary and the integration tests.
#pragma once

#include <string>
#include <vector>

#include "core/policy.hpp"
#include "core/rda_scheduler.hpp"
#include "sim/engine.hpp"
#include "workload/table2.hpp"

namespace rda::exp {

struct RunConfig {
  sim::EngineConfig engine{};
  core::PolicyKind policy = core::PolicyKind::kLinuxDefault;
  double oversubscription = 2.0;  ///< paper's x for RDA:Compromise
  bool fast_path = false;
};

/// One row of a Fig. 7–10 style table.
struct RunRow {
  std::string workload;
  std::string policy;
  double system_joules = 0.0;
  double dram_joules = 0.0;
  double gflops = 0.0;
  double gflops_per_watt = 0.0;
  double makespan = 0.0;
  double total_flops = 0.0;
  std::uint64_t gate_blocks = 0;
  std::uint64_t context_switches = 0;
  std::uint64_t migrations = 0;
};

/// Simulates `spec` under `config` and collects the metrics row.
RunRow run_workload(const workload::WorkloadSpec& spec,
                    const RunConfig& config);

/// The paper's three-way comparison for one workload.
struct PolicyComparison {
  RunRow baseline;    ///< Linux default
  RunRow strict;      ///< RDA:Strict
  RunRow compromise;  ///< RDA:Compromise(x=2)

  /// Best RDA configuration by a metric (the paper quotes per-workload
  /// bests for its headline numbers).
  const RunRow& best_rda_by_energy() const;
  const RunRow& best_rda_by_gflops() const;

  double speedup(const RunRow& rda) const {
    return baseline.gflops > 0.0 ? rda.gflops / baseline.gflops : 0.0;
  }
  /// Fractional system-energy decrease vs the Linux baseline (0.48 = −48%).
  double energy_drop(const RunRow& rda) const {
    return baseline.system_joules > 0.0
               ? 1.0 - rda.system_joules / baseline.system_joules
               : 0.0;
  }
  double efficiency_gain(const RunRow& rda) const {
    return baseline.gflops_per_watt > 0.0
               ? rda.gflops_per_watt / baseline.gflops_per_watt
               : 0.0;
  }
};

/// Runs one workload under all three policies on identical engine config.
PolicyComparison compare_policies(const workload::WorkloadSpec& spec,
                                  const sim::EngineConfig& engine_config);

/// The paper's §4.2 headline aggregation over all workloads, taking each
/// workload's best RDA configuration.
struct Headline {
  double max_energy_drop = 0.0;  ///< paper: 48% (water_nsquared, Strict)
  double avg_energy_drop = 0.0;  ///< paper: 12%
  double max_speedup = 0.0;      ///< paper: 1.88x (Raytrace)
  double avg_speedup = 0.0;      ///< paper: 1.16x
};

Headline summarize(const std::vector<PolicyComparison>& comparisons);

}  // namespace rda::exp
