// Multi-node demand-aware placement (the paper's §5 multi-node future work).
//
// Submits a periodic mix of big high-reuse and small streaming processes to
// a 2-node cluster under round-robin vs declared-demand placement, with a
// per-node RDA:Strict gate. The declared demands the applications already
// provide through pp_begin double as placement hints — no extra
// instrumentation needed.
#include <cstdio>

#include "cluster/cluster.hpp"
#include "util/units.hpp"

using namespace rda;
using rda::util::MB;

namespace {

cluster::ClusterResult run(cluster::PlacementPolicy policy) {
  cluster::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.node.machine = sim::MachineConfig::e5_2420();
  cfg.use_gate = true;
  cfg.gate.policy = core::PolicyKind::kStrict;
  cluster::ClusterScheduler sched(cfg, policy);

  // Periodic submission (big, small, big, small, ...): resonates with
  // round-robin so all the big working sets pile onto node 0.
  for (int i = 0; i < 6; ++i) {
    std::vector<sim::PhaseProgram> big;
    big.push_back(sim::ProgramBuilder()
                      .period("render", 5e9, MB(7), ReuseLevel::kHigh)
                      .build());
    sched.add_process(std::move(big));
    std::vector<sim::PhaseProgram> small;
    small.push_back(sim::ProgramBuilder()
                        .period("ingest", 2e8, MB(0.5), ReuseLevel::kLow)
                        .build());
    sched.add_process(std::move(small));
  }
  return sched.run();
}

}  // namespace

int main() {
  std::printf("2-node cluster, per-node RDA:Strict, periodic big/small "
              "submission\n\n");
  for (const auto policy : {cluster::PlacementPolicy::kRoundRobin,
                            cluster::PlacementPolicy::kLeastDeclaredLoad}) {
    const cluster::ClusterResult result = run(policy);
    std::printf("  %-22s makespan %.2f s, %6.2f GFLOPS, %5.0f J  (procs: ",
                cluster::to_string(policy).c_str(), result.makespan(),
                result.gflops(), result.system_joules());
    for (std::size_t n = 0; n < result.processes_per_node.size(); ++n) {
      std::printf("%s%d", n ? "/" : "", result.processes_per_node[n]);
    }
    std::printf(")\n");
  }
  std::printf("\nthe declared pp_begin demands double as placement hints: "
              "balancing CACHE pressure beats balancing process counts.\n");
  return 0;
}
