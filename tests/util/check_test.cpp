#include "util/check.hpp"

#include <gtest/gtest.h>

#include <string>

namespace rda::util {
namespace {

TEST(Check, PassingCheckIsSilent) {
  EXPECT_NO_THROW(RDA_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(RDA_CHECK_MSG(true, "never shown"));
}

TEST(Check, FailingCheckThrowsWithExpression) {
  try {
    RDA_CHECK(2 < 1);
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos);
  }
}

TEST(Check, MessageIsFormattedIntoWhat) {
  try {
    RDA_CHECK_MSG(false, "thread " << 42 << " misbehaved");
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("thread 42 misbehaved"),
              std::string::npos);
  }
}

TEST(Check, SideEffectsEvaluatedOnce) {
  int calls = 0;
  auto bump = [&] {
    ++calls;
    return true;
  };
  RDA_CHECK(bump());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace rda::util
