file(REMOVE_RECURSE
  "CMakeFiles/ablate_waitlist.dir/ablate_waitlist.cpp.o"
  "CMakeFiles/ablate_waitlist.dir/ablate_waitlist.cpp.o.d"
  "ablate_waitlist"
  "ablate_waitlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_waitlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
