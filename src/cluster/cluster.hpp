// Multi-node extension (§5: "Our work is currently developed at the
// single-node level but can be extended to multiple nodes as part of our
// future work").
//
// A cluster is N identical nodes, each with its own LLC, DRAM, and RDA
// gate. Processes are placed on a node at submission time using their
// DECLARED demands — the same information the single-node predicate uses —
// then each node runs independently (processes never migrate across nodes,
// matching the paper's process-level granularity).
//
// Placement policies:
//   * round-robin            — demand-blind (the baseline a batch system does),
//   * least-declared-load    — balance the sum of declared working sets,
//   * first-fit-capacity     — pack nodes up to their LLC capacity before
//                              spilling (bin-packing by declared demand).
#pragma once

#include <memory>
#include <vector>

#include "core/rda_scheduler.hpp"
#include "sim/engine.hpp"

namespace rda::cluster {

enum class PlacementPolicy {
  kRoundRobin,
  kLeastDeclaredLoad,
  kFirstFitCapacity,
};

std::string to_string(PlacementPolicy policy);

struct ClusterConfig {
  int nodes = 2;
  /// Every node is one instance of this machine.
  sim::EngineConfig node{};
  /// Per-node RDA gate options; `use_gate` false = Linux default everywhere.
  bool use_gate = true;
  core::RdaOptions gate{};
};

struct ClusterResult {
  std::vector<sim::SimResult> nodes;
  std::vector<int> processes_per_node;
  /// Fleet-wide admission totals: the per-node AdmissionCore stats summed
  /// (all zero when the cluster runs without gates).
  core::MonitorStats admission;

  /// Cluster makespan = slowest node (all nodes start together).
  double makespan() const;
  double total_flops() const;
  /// Sum of node energies (each node pays its own idle power for the whole
  /// cluster makespan — an idle node still burns static power).
  double system_joules() const;
  double gflops() const;
  double gflops_per_watt() const;
};

/// Places processes and runs all nodes to completion.
class ClusterScheduler {
 public:
  ClusterScheduler(ClusterConfig config, PlacementPolicy policy);

  /// Submits one process (its per-thread phase programs). Placement happens
  /// immediately, based on the process's declared peak demand. Returns the
  /// node index chosen.
  int add_process(std::vector<sim::PhaseProgram> thread_programs,
                  bool task_pool = false);

  /// Declared-demand estimate used for placement: the max over time of the
  /// sum of each thread's declared working set (threads of a process run
  /// their programs in lockstep at worst).
  static double process_demand_estimate(
      const std::vector<sim::PhaseProgram>& thread_programs);

  ClusterResult run();

  const std::vector<double>& placed_demand() const { return node_demand_; }

  /// The admission engine of one node's gate (nullptr when `use_gate` is
  /// off). Placement and fleet-wide stats route through these cores.
  const core::AdmissionCore* node_core(int node) const;

 private:
  int pick_node(double demand) const;

  ClusterConfig config_;
  PlacementPolicy policy_;
  std::vector<std::unique_ptr<sim::Engine>> engines_;
  std::vector<std::unique_ptr<core::RdaScheduler>> gates_;
  std::vector<double> node_demand_;  ///< placed declared demand per node
  std::vector<int> node_processes_;
  int next_round_robin_ = 0;
  bool ran_ = false;
};

}  // namespace rda::cluster
