// Ablation: sweep the Compromise oversubscription factor x.
//
// The paper fixes x = 2 ("shown to be effective in attaining the best
// balance between energy efficiency and performance", §3.3) but never shows
// the sweep. This bench fills that gap on a high-reuse and a mixed workload:
// x = 1 is Strict, large x approaches the Linux default.
#include <cstring>
#include <iostream>
#include <vector>

#include "exp/harness.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rda;
  const bool quick = !(argc > 1 && std::strcmp(argv[1], "--full") == 0);
  std::cout << "=== Ablation: RDA:Compromise oversubscription factor x ===\n"
               "(paper fixes x=2; x=1 == Strict, x->inf == Linux default)\n\n";

  sim::EngineConfig engine;
  engine.machine = sim::MachineConfig::e5_2420();

  const auto specs = workload::table2_workloads();
  for (const char* name : {"BLAS-3", "Ocean_cp"}) {
    const workload::WorkloadSpec spec =
        quick ? workload::scale_workload(workload::find_workload(specs, name),
                                         0.25, 2)
              : workload::find_workload(specs, name);

    exp::RunConfig base_cfg;
    base_cfg.engine = engine;
    base_cfg.policy = core::PolicyKind::kLinuxDefault;
    const exp::RunRow baseline = exp::run_workload(spec, base_cfg);

    util::Table table({"x", "GFLOPS", "system J", "GFLOPS/W",
                       "speedup vs Linux", "energy vs Linux"});
    for (const double x : {1.0, 1.25, 1.5, 2.0, 3.0, 4.0, 8.0}) {
      exp::RunConfig cfg;
      cfg.engine = engine;
      cfg.policy = core::PolicyKind::kCompromise;
      cfg.oversubscription = x;
      const exp::RunRow row = exp::run_workload(spec, cfg);
      table.begin_row()
          .add_cell(x, 2)
          .add_cell(row.gflops, 2)
          .add_cell(row.system_joules, 0)
          .add_cell(row.gflops_per_watt, 3)
          .add_cell(row.gflops / baseline.gflops, 2)
          .add_cell(row.system_joules / baseline.system_joules, 2);
    }
    std::cout << spec.name << " (Linux default: " << baseline.gflops
              << " GFLOPS, " << baseline.system_joules << " J)\n"
              << table.render() << "\n";
  }
  return 0;
}
