#include "obs/summary.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>

#include "util/table.hpp"

namespace rda::obs {

namespace {

std::string format_seconds(double s) {
  std::ostringstream os;
  os.precision(3);
  if (s < 1e-6) {
    os << s * 1e9 << " ns";
  } else if (s < 1e-3) {
    os << s * 1e6 << " us";
  } else if (s < 1.0) {
    os << s * 1e3 << " ms";
  } else {
    os << s << " s";
  }
  return os.str();
}

std::string format_amount(double v) {
  std::ostringstream os;
  os.precision(4);
  if (std::isinf(v)) {
    os << "inf";
  } else {
    os << v;
  }
  return os.str();
}

}  // namespace

double ResourceRow::headroom() const {
  if (std::isinf(bound)) return bound;
  return std::max(0.0, bound - usage);
}

std::string summarize(std::span<const Event> events,
                      const WaitHistogram& waits,
                      std::span<const ResourceRow> resources) {
  std::array<std::uint64_t, kNumEventKinds> counts{};
  double t_min = 0.0;
  double t_max = 0.0;
  for (const Event& e : events) {
    ++counts[static_cast<std::size_t>(e.kind)];
    if (&e == &events.front() || e.time < t_min) t_min = e.time;
    if (&e == &events.front() || e.time > t_max) t_max = e.time;
  }

  util::Table table({"event", "count"});
  for (std::size_t k = 0; k < kNumEventKinds; ++k) {
    table.begin_row()
        .add_cell(std::string(to_string(static_cast<EventKind>(k))))
        .add_cell(counts[k]);
  }

  std::ostringstream os;
  os << "admission trace: " << events.size() << " events";
  if (!events.empty()) {
    os << " over " << format_seconds(t_max - t_min);
  }
  os << "\n" << table.render();
  os << "wait latency: " << waits.count() << " waits";
  if (waits.count() > 0) {
    os << "  p50 " << format_seconds(waits.p50()) << "  p95 "
       << format_seconds(waits.p95()) << "  p99 "
       << format_seconds(waits.p99()) << "  max "
       << format_seconds(waits.max());
  }
  os << "\n";
  if (!resources.empty()) {
    util::Table rtable({"resource", "capacity", "bound", "usage", "headroom",
                        "overdraft", "oversub"});
    for (const ResourceRow& row : resources) {
      rtable.begin_row()
          .add_cell(std::string(to_string(row.kind)))
          .add_cell(format_amount(row.capacity))
          .add_cell(format_amount(row.bound))
          .add_cell(format_amount(row.usage))
          .add_cell(format_amount(row.headroom()))
          .add_cell(format_amount(row.overdraft))
          .add_cell(format_amount(row.oversubscribed));
    }
    os << rtable.render();
  }
  return os.str();
}

}  // namespace rda::obs
