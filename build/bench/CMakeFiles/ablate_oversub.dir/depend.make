# Empty dependencies file for ablate_oversub.
# This may be replaced when dependencies are built.
