#include "core/waitlist.hpp"

#include <gtest/gtest.h>

namespace rda::core {
namespace {

Waitlist::Entry entry(PeriodId period, sim::ThreadId thread,
                      sim::ProcessId process) {
  return Waitlist::Entry{period, thread, process, 0.0};
}

TEST(Waitlist, FifoOrderPreserved) {
  Waitlist wl;
  wl.push(entry(1, 10, 0));
  wl.push(entry(2, 11, 0));
  wl.push(entry(3, 12, 1));
  ASSERT_EQ(wl.size(), 3u);
  EXPECT_EQ(wl.entries().front().period, 1u);
  EXPECT_EQ(wl.entries().back().period, 3u);
}

TEST(Waitlist, DrainWorkConservingSkipsNonFitting) {
  Waitlist wl;
  wl.push(entry(1, 10, 0));
  wl.push(entry(2, 11, 0));
  wl.push(entry(3, 12, 1));
  // Admit odd period ids only.
  const auto admitted = wl.drain_admissible(
      [](const Waitlist::Entry& e) { return e.period % 2 == 1; },
      /*head_only=*/false);
  ASSERT_EQ(admitted.size(), 2u);
  EXPECT_EQ(admitted[0].period, 1u);
  EXPECT_EQ(admitted[1].period, 3u);
  ASSERT_EQ(wl.size(), 1u);
  EXPECT_EQ(wl.entries().front().period, 2u);
}

TEST(Waitlist, DrainHeadOnlyStopsAtFirstRejection) {
  Waitlist wl;
  wl.push(entry(1, 10, 0));
  wl.push(entry(2, 11, 0));
  wl.push(entry(3, 12, 1));
  const auto admitted = wl.drain_admissible(
      [](const Waitlist::Entry& e) { return e.period != 2; },
      /*head_only=*/true);
  // Head (1) admitted, 2 rejected -> stop; 3 never examined.
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_EQ(admitted[0].period, 1u);
  EXPECT_EQ(wl.size(), 2u);
}

TEST(Waitlist, DrainAdmitAllEmptiesList) {
  Waitlist wl;
  for (PeriodId id = 1; id <= 5; ++id) wl.push(entry(id, 10, 0));
  const auto admitted = wl.drain_admissible(
      [](const Waitlist::Entry&) { return true; }, false);
  EXPECT_EQ(admitted.size(), 5u);
  EXPECT_TRUE(wl.empty());
}

TEST(Waitlist, RemoveProcessPullsWholeGroup) {
  Waitlist wl;
  wl.push(entry(1, 10, 7));
  wl.push(entry(2, 11, 8));
  wl.push(entry(3, 12, 7));
  EXPECT_EQ(wl.count_process(7), 2u);
  const auto removed = wl.remove_process(7);
  ASSERT_EQ(removed.size(), 2u);
  EXPECT_EQ(removed[0].period, 1u);
  EXPECT_EQ(removed[1].period, 3u);
  EXPECT_EQ(wl.size(), 1u);
  EXPECT_EQ(wl.count_process(7), 0u);
}

TEST(Waitlist, EmptyOperations) {
  Waitlist wl;
  EXPECT_TRUE(wl.empty());
  EXPECT_TRUE(wl.drain_admissible([](const auto&) { return true; }, false)
                  .empty());
  EXPECT_TRUE(wl.remove_process(1).empty());
  EXPECT_EQ(wl.count_process(1), 0u);
}

}  // namespace
}  // namespace rda::core
