#include "cluster/cluster.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rda::cluster {

std::string to_string(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kRoundRobin: return "round-robin";
    case PlacementPolicy::kLeastDeclaredLoad: return "least-declared-load";
    case PlacementPolicy::kFirstFitCapacity: return "first-fit-capacity";
  }
  return "?";
}

ClusterScheduler::ClusterScheduler(ClusterConfig config,
                                   PlacementPolicy policy)
    : config_(config), policy_(policy) {
  RDA_CHECK(config_.nodes >= 1);
  for (int n = 0; n < config_.nodes; ++n) {
    engines_.push_back(std::make_unique<sim::Engine>(config_.node));
    if (config_.use_gate) {
      gates_.push_back(std::make_unique<core::RdaScheduler>(
          static_cast<double>(config_.node.machine.llc_bytes),
          config_.node.calib, config_.gate));
      engines_.back()->set_gate(gates_.back().get());
    } else {
      gates_.push_back(nullptr);
    }
  }
  node_demand_.assign(static_cast<std::size_t>(config_.nodes), 0.0);
  node_processes_.assign(static_cast<std::size_t>(config_.nodes), 0);
}

double ClusterScheduler::process_demand_estimate(
    const std::vector<sim::PhaseProgram>& thread_programs) {
  // Per thread: its largest declared marked demand. Process: their sum —
  // the worst-case simultaneous footprint the node's gate may see.
  double total = 0.0;
  for (const sim::PhaseProgram& program : thread_programs) {
    double peak = 0.0;
    for (const sim::PhaseSpec& phase : program.phases) {
      if (!phase.marked) continue;
      peak = std::max(peak, static_cast<double>(phase.declared_wss()));
    }
    total += peak;
  }
  return total;
}

int ClusterScheduler::pick_node(double demand) const {
  switch (policy_) {
    case PlacementPolicy::kRoundRobin:
      return next_round_robin_;
    case PlacementPolicy::kLeastDeclaredLoad: {
      int best = 0;
      for (int n = 1; n < config_.nodes; ++n) {
        if (node_demand_[n] < node_demand_[best]) best = n;
      }
      return best;
    }
    case PlacementPolicy::kFirstFitCapacity: {
      for (int n = 0; n < config_.nodes; ++n) {
        // The capacity the node's own admission core decides against — the
        // same number its predicate will enforce at runtime. Gateless nodes
        // fall back to the raw machine LLC size.
        const core::AdmissionCore* core = node_core(n);
        const double capacity =
            core != nullptr
                ? core->resources().capacity(ResourceKind::kLLC)
                : static_cast<double>(config_.node.machine.llc_bytes);
        if (node_demand_[n] + demand <= capacity) return n;
      }
      // Nothing fits: fall back to the least-loaded node.
      int best = 0;
      for (int n = 1; n < config_.nodes; ++n) {
        if (node_demand_[n] < node_demand_[best]) best = n;
      }
      return best;
    }
  }
  return 0;
}

const core::AdmissionCore* ClusterScheduler::node_core(int node) const {
  RDA_CHECK(node >= 0 && node < config_.nodes);
  const core::RdaScheduler* gate = gates_[static_cast<std::size_t>(node)].get();
  return gate != nullptr ? &gate->core() : nullptr;
}

int ClusterScheduler::add_process(
    std::vector<sim::PhaseProgram> thread_programs, bool task_pool) {
  RDA_CHECK_MSG(!ran_, "cannot add processes after run()");
  RDA_CHECK(!thread_programs.empty());
  const double demand = process_demand_estimate(thread_programs);
  const int node = pick_node(demand);
  next_round_robin_ = (next_round_robin_ + 1) % config_.nodes;

  sim::Engine& engine = *engines_[node];
  const sim::ProcessId pid = engine.create_process();
  if (task_pool && gates_[node]) gates_[node]->mark_pool(pid);
  for (sim::PhaseProgram& program : thread_programs) {
    engine.add_thread(pid, std::move(program));
  }
  node_demand_[node] += demand;
  ++node_processes_[node];
  return node;
}

ClusterResult ClusterScheduler::run() {
  RDA_CHECK_MSG(!ran_, "ClusterScheduler::run is single-shot");
  ran_ = true;
  ClusterResult result;
  result.processes_per_node = node_processes_;
  for (int n = 0; n < config_.nodes; ++n) {
    if (engines_[n]->thread_count() == 0) {
      // Idle node: contributes only static power for the cluster makespan;
      // represent it with an empty result.
      result.nodes.push_back(sim::SimResult{});
      continue;
    }
    result.nodes.push_back(engines_[n]->run());
  }
  for (int n = 0; n < config_.nodes; ++n) {
    const core::AdmissionCore* core = node_core(n);
    if (core != nullptr) result.admission += core->stats();
  }
  // Nodes that finish early (or never ran) still burn idle + uncore +
  // DRAM-static power until the slowest node completes — the cluster is a
  // single billing domain.
  const double span = result.makespan();
  const sim::Calibration& calib = config_.node.calib;
  const double idle_power =
      config_.node.machine.cores * calib.core_idle_power +
      calib.uncore_power;
  for (sim::SimResult& node : result.nodes) {
    const double idle_tail = span - node.makespan;
    if (idle_tail > 0.0) {
      node.package_joules += idle_tail * idle_power;
      node.dram_joules += idle_tail * calib.dram_static_power;
    }
  }
  return result;
}

double ClusterResult::makespan() const {
  double span = 0.0;
  for (const sim::SimResult& node : nodes) {
    span = std::max(span, node.makespan);
  }
  return span;
}

double ClusterResult::total_flops() const {
  double flops = 0.0;
  for (const sim::SimResult& node : nodes) flops += node.total_flops;
  return flops;
}

double ClusterResult::system_joules() const {
  double joules = 0.0;
  for (const sim::SimResult& node : nodes) joules += node.system_joules();
  return joules;
}

double ClusterResult::gflops() const {
  const double span = makespan();
  return span > 0.0 ? total_flops() / span / 1e9 : 0.0;
}

double ClusterResult::gflops_per_watt() const {
  const double joules = system_joules();
  return joules > 0.0 ? total_flops() / joules / 1e9 : 0.0;
}

}  // namespace rda::cluster
