#include "util/atomic_file.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/check.hpp"

namespace rda::util {

void write_file_atomic(const std::string& path, std::string_view content) {
  // Same directory as the target so the rename cannot cross a filesystem
  // boundary (which would make it a non-atomic copy).
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  RDA_CHECK_MSG(f != nullptr, "cannot open " << tmp << " for writing: "
                                             << std::strerror(errno));
  const std::size_t written =
      content.empty() ? 0 : std::fwrite(content.data(), 1, content.size(), f);
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (written != content.size() || !flushed || !closed) {
    std::remove(tmp.c_str());
    RDA_CHECK_MSG(false, "short write to " << tmp << " (" << written << "/"
                                           << content.size() << " bytes)");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    std::remove(tmp.c_str());
    RDA_CHECK_MSG(false, "cannot rename " << tmp << " to " << path << ": "
                                          << std::strerror(err));
  }
}

}  // namespace rda::util
