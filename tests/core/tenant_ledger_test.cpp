// TenantLedger — demand-truth auditing, Karma credits, and the penalty
// ladder (DESIGN §17): escalation only on sustained divergence, guaranteed
// recovery for honest-but-contended tenants, exact credit conservation,
// and the sharded-capture determinism contract (apply() of per-shard
// slices == sequential audits in seq order).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/tenant_ledger.hpp"

namespace rda::core {
namespace {

TenantLedgerOptions fast() {
  TenantLedgerOptions o;
  o.min_audits = 3;
  o.escalate_after = 3;
  o.recover_after = 2;  // quick descents for unit tests
  o.credit_unit_bytes = 1024.0;
  return o;
}

/// Audits `n` periods for `tenant`, all with the same declared/observed.
void audit_n(TenantLedger& ledger, std::uint64_t tenant, int n,
             double declared, double observed, bool contended = false) {
  for (int i = 0; i < n; ++i) {
    ledger.audit(tenant, declared, observed, contended, static_cast<double>(i));
  }
}

TEST(TenantLedger, UnknownTenantIsTrusted) {
  TenantLedger ledger(fast());
  EXPECT_EQ(ledger.rung(7), 0);
  EXPECT_DOUBLE_EQ(ledger.honesty(7), 1.0);
  EXPECT_DOUBLE_EQ(ledger.demand_correction(7), 1.0);
  EXPECT_DOUBLE_EQ(ledger.credit_price(7), 1.0);
  EXPECT_FALSE(ledger.deprioritized(7));
  EXPECT_TRUE(ledger.within_quota(7, 1'000'000));
  EXPECT_EQ(ledger.spend(7, 10, 0.0), 0u);
}

TEST(TenantLedger, AnonymousOrUnpricedWorkIsNotAuditable) {
  TenantLedger ledger(fast());
  EXPECT_FALSE(ledger.audit(0, 100.0, 50.0, false, 0.0).counted);
  EXPECT_FALSE(ledger.audit(5, 0.0, 50.0, false, 0.0).counted);
  EXPECT_EQ(ledger.audits(), 0u);
}

TEST(TenantLedger, HonestAuditsStayTrustedAndMintCredits) {
  TenantLedger ledger(fast());
  // Declared 100KiB, used 80KiB: inside the 30% band, 20KiB unused.
  audit_n(ledger, 1, 5, 100.0 * 1024.0, 80.0 * 1024.0);
  EXPECT_EQ(ledger.rung(1), 0);
  EXPECT_DOUBLE_EQ(ledger.honesty(1), 1.0);
  // 20KiB / 1KiB unit = 20 credits per audit, 5 audits.
  EXPECT_EQ(ledger.credits_balance(1), 100u);
  EXPECT_TRUE(ledger.credits_conserved());
}

TEST(TenantLedger, DivergentAuditsGrantNothing) {
  TenantLedger ledger(fast());
  // Inflated 8x: far outside the band — unused budget must NOT mint.
  audit_n(ledger, 1, 5, 800.0, 100.0);
  EXPECT_EQ(ledger.credits_balance(1), 0u);
  EXPECT_EQ(ledger.total_granted(), 0u);
}

TEST(TenantLedger, InflatorClimbsTheFullLadder) {
  TenantLedger ledger(fast());
  // Each rung needs escalate_after = 3 consecutive divergent audits (the
  // first rung also satisfies min_audits = 3 on the way).
  for (int r = 1; r <= 4; ++r) {
    audit_n(ledger, 1, 3, 800.0, 100.0);
    EXPECT_EQ(ledger.rung(1), r);
  }
  // Rung is capped at 4; further divergence cannot push past it.
  audit_n(ledger, 1, 10, 800.0, 100.0);
  EXPECT_EQ(ledger.rung(1), 4);

  // Rung 1+: the haircut charges the inflator what it uses (ratio 1/8 —
  // the decayed running max has converged there by 22 audits).
  EXPECT_NEAR(ledger.demand_correction(1), 0.125, 1e-9);
  // Rung 2+: bursts pay the surcharge.
  EXPECT_DOUBLE_EQ(ledger.credit_price(1), ledger.options().surcharge);
  // Rung 3+: back of every batch.
  EXPECT_TRUE(ledger.deprioritized(1));
  // Rung 4: hard quota on open submissions.
  EXPECT_TRUE(ledger.within_quota(1, 0));
  EXPECT_FALSE(ledger.within_quota(1, ledger.options().quota_outstanding));
  EXPECT_LT(ledger.honesty(1), 0.1);
}

TEST(TenantLedger, UnderDeclarerIsChargedWhatItTakes) {
  TenantLedger ledger(fast());
  audit_n(ledger, 1, 3, 100.0, 600.0);  // takes 6x what it declared
  EXPECT_EQ(ledger.rung(1), 1);
  EXPECT_NEAR(ledger.demand_correction(1), 6.0, 1e-9);
  // The haircut clamps at correction_max even for wilder lies.
  audit_n(ledger, 2, 3, 100.0, 100.0 * 1e6);
  EXPECT_DOUBLE_EQ(ledger.demand_correction(2),
                   ledger.options().correction_max);
}

TEST(TenantLedger, OneNoisyPeriodDoesNotBrandATenant) {
  TenantLedgerOptions o = fast();
  o.min_audits = 3;
  o.escalate_after = 1;  // a single divergent audit would escalate...
  TenantLedger ledger(o);
  ledger.audit(1, 800.0, 100.0, false, 0.0);
  // ...but min_audits has not been met yet.
  EXPECT_EQ(ledger.rung(1), 0);
}

TEST(TenantLedger, HonestBehaviorDescendsTheLadder) {
  TenantLedger ledger(fast());
  audit_n(ledger, 1, 12, 800.0, 100.0);  // climb to rung 4
  ASSERT_EQ(ledger.rung(1), 4);
  // recover_after = 2 honest audits per rung: 8 honest audits walk all the
  // way back down to trusted.
  audit_n(ledger, 1, 8, 100.0, 100.0);
  EXPECT_EQ(ledger.rung(1), 0);
  EXPECT_DOUBLE_EQ(ledger.demand_correction(1), 1.0);
  EXPECT_TRUE(ledger.within_quota(1, 1'000'000));
}

TEST(TenantLedger, ContendedLowerBoundNeverEscalates) {
  TenantLedger ledger(fast());
  // Contended periods whose occupancy stayed below the declaration prove
  // nothing: the tenant may simply have been squeezed. A lifetime of them
  // must not move the ladder — this is the recoverability guarantee.
  audit_n(ledger, 1, 50, 800.0, 100.0, /*contended=*/true);
  EXPECT_EQ(ledger.rung(1), 0);
  EXPECT_DOUBLE_EQ(ledger.honesty(1), 1.0);
  // A contended period that still EXCEEDED its declaration is a lie and
  // counts (observed > declared cannot be explained by contention).
  audit_n(ledger, 1, 3, 100.0, 600.0, /*contended=*/true);
  EXPECT_EQ(ledger.rung(1), 1);
}

TEST(TenantLedger, ContendedAuditsDoNotResetAnHonestStreak) {
  TenantLedger ledger(fast());
  audit_n(ledger, 1, 12, 800.0, 100.0);  // rung 4
  ASSERT_EQ(ledger.rung(1), 4);
  // Interleave honest audits with contended lower bounds: the streak must
  // survive the uncounted audits, so recovery still happens.
  for (int i = 0; i < 8; ++i) {
    ledger.audit(1, 100.0, 100.0, false, 0.0);
    ledger.audit(1, 800.0, 100.0, true, 0.0);
  }
  EXPECT_EQ(ledger.rung(1), 0);
}

TEST(CreditConservation, ExactAcrossGrantsAndSpends) {
  TenantLedger ledger(fast());
  audit_n(ledger, 1, 4, 100.0 * 1024.0, 80.0 * 1024.0);  // 80 credits
  audit_n(ledger, 2, 2, 50.0 * 1024.0, 40.0 * 1024.0);   // 20 credits
  EXPECT_EQ(ledger.total_granted(), 100u);

  // Spend caps at the balance; the caller learns the deficit.
  EXPECT_EQ(ledger.spend(1, 30, 0.0), 30u);
  EXPECT_EQ(ledger.spend(2, 100, 0.0), 20u);
  EXPECT_EQ(ledger.spend(2, 5, 0.0), 0u);

  EXPECT_EQ(ledger.credits_balance(1), 50u);
  EXPECT_EQ(ledger.credits_balance(2), 0u);
  EXPECT_EQ(ledger.total_spent(), 50u);
  EXPECT_EQ(ledger.total_outstanding(), 50u);
  EXPECT_TRUE(ledger.credits_conserved());
}

TEST(CreditConservation, GrantsTruncateAtTheCap) {
  TenantLedgerOptions o = fast();
  o.credit_cap = 25;
  TenantLedger ledger(o);
  audit_n(ledger, 1, 3, 100.0 * 1024.0, 80.0 * 1024.0);  // 20/audit, cap 25
  EXPECT_EQ(ledger.credits_balance(1), 25u);
  EXPECT_EQ(ledger.total_granted(), 25u);
  EXPECT_TRUE(ledger.credits_conserved());
}

// The sharded-capture contract: audits recorded into per-shard slices and
// merged through apply() must produce byte-identical ledger state to
// auditing sequentially in global seq order, for any slicing.
TEST(TenantLedger, ApplyOfShardSlicesMatchesSequentialAudits) {
  std::vector<AuditRecord> records;
  for (std::uint64_t seq = 0; seq < 200; ++seq) {
    AuditRecord r;
    r.audit_seq = seq;
    r.tenant = 1 + seq % 5;
    r.declared = 100.0 * 1024.0;
    // Mix honest, inflated, and contended-lower-bound periods.
    r.observed = (seq % 3 == 0) ? 90.0 * 1024.0 : 12.0 * 1024.0;
    r.contended = seq % 7 == 0;
    r.time = static_cast<double>(seq);
    records.push_back(r);
  }

  TenantLedger sequential(fast());
  for (const AuditRecord& r : records) {
    sequential.audit(r.tenant, r.declared, r.observed, r.contended, r.time);
  }

  for (int shards : {1, 3, 16}) {
    // Deal records round-robin into K slices (what K drain shards capture),
    // then concatenate the slices — records arrive at apply() out of seq
    // order exactly as the sharded drain would deliver them.
    std::vector<std::vector<AuditRecord>> slices(
        static_cast<std::size_t>(shards));
    for (std::size_t i = 0; i < records.size(); ++i) {
      slices[i % static_cast<std::size_t>(shards)].push_back(records[i]);
    }
    std::vector<AuditRecord> merged;
    for (const auto& slice : slices) {
      merged.insert(merged.end(), slice.begin(), slice.end());
    }

    TenantLedger sharded(fast());
    sharded.apply(merged);
    EXPECT_EQ(sharded.fingerprint(), sequential.fingerprint())
        << "ledger state diverged at " << shards << " shards";
    for (std::uint64_t t = 1; t <= 5; ++t) {
      EXPECT_EQ(sharded.rung(t), sequential.rung(t));
      EXPECT_DOUBLE_EQ(sharded.honesty(t), sequential.honesty(t));
      EXPECT_EQ(sharded.credits_balance(t), sequential.credits_balance(t));
    }
  }
}

TEST(TenantLedger, FingerprintSeparatesDifferentHistories) {
  TenantLedger a(fast());
  TenantLedger b(fast());
  audit_n(a, 1, 3, 100.0, 100.0);
  audit_n(b, 1, 3, 100.0, 99.0);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

// Concurrent audit-vs-admit: drain threads audit and grant while admission
// threads query corrections, quotas, and spend credits. Run under TSan by
// tier1.sh; the assertions here pin conservation across the race.
TEST(TenantLedger, ConcurrentAuditVsAdmitStress) {
  TenantLedger ledger(fast());
  constexpr int kAuditors = 4;
  constexpr int kAdmitters = 4;
  constexpr int kOpsPerThread = 2'000;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;

  for (int a = 0; a < kAuditors; ++a) {
    threads.emplace_back([&ledger, &go, a] {
      while (!go.load(std::memory_order_acquire)) {}
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t tenant = 1 + static_cast<std::uint64_t>(i % 8);
        const bool lie = (i + a) % 4 == 0;
        ledger.audit(tenant, 100.0 * 1024.0,
                     lie ? 10.0 * 1024.0 : 90.0 * 1024.0, i % 5 == 0,
                     static_cast<double>(i));
      }
    });
  }
  std::atomic<std::uint64_t> spent_by_admitters{0};
  for (int w = 0; w < kAdmitters; ++w) {
    threads.emplace_back([&ledger, &go, &spent_by_admitters, w] {
      while (!go.load(std::memory_order_acquire)) {}
      std::uint64_t local = 0;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t tenant = 1 + static_cast<std::uint64_t>(i % 8);
        (void)ledger.demand_correction(tenant);
        (void)ledger.within_quota(tenant, static_cast<std::uint64_t>(i % 3));
        (void)ledger.deprioritized(tenant);
        if ((i + w) % 16 == 0) {
          local += ledger.spend(tenant, 2, static_cast<double>(i));
        }
      }
      spent_by_admitters.fetch_add(local, std::memory_order_relaxed);
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(ledger.audits(),
            static_cast<std::uint64_t>(kAuditors) * kOpsPerThread);
  EXPECT_EQ(ledger.total_spent(), spent_by_admitters.load());
  EXPECT_TRUE(ledger.credits_conserved());
}

}  // namespace
}  // namespace rda::core
