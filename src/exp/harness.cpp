#include "exp/harness.hpp"

#include <cstdlib>
#include <cstring>
#include <memory>

namespace rda::exp {

int parse_jobs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0) {
      return util::resolve_jobs(std::atoi(argv[i + 1]));
    }
  }
  return 1;
}

namespace {

const char* flag_value(int argc, char** argv, const std::string& key) {
  const char* value = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (key == argv[i]) value = argv[i + 1];
  }
  return value;
}

}  // namespace

std::uint64_t parse_u64_flag(int argc, char** argv, const std::string& key,
                             std::uint64_t fallback) {
  const char* value = flag_value(argc, argv, key);
  return value ? std::strtoull(value, nullptr, 10) : fallback;
}

double parse_double_flag(int argc, char** argv, const std::string& key,
                         double fallback) {
  const char* value = flag_value(argc, argv, key);
  return value ? std::strtod(value, nullptr) : fallback;
}

std::string parse_string_flag(int argc, char** argv, const std::string& key,
                              const std::string& fallback) {
  const char* value = flag_value(argc, argv, key);
  return value ? std::string(value) : fallback;
}

bool has_flag(int argc, char** argv, const std::string& key) {
  for (int i = 1; i < argc; ++i) {
    if (key == argv[i]) return true;
  }
  return false;
}

RunRow run_workload(const workload::WorkloadSpec& spec,
                    const RunConfig& config) {
  sim::Engine engine(config.engine);

  core::RdaOptions options;
  if (config.rda_options.has_value()) {
    options = *config.rda_options;
  } else {
    options.policy = config.policy;
    options.oversubscription = config.oversubscription;
    options.fast_path = config.fast_path;
  }

  std::unique_ptr<core::RdaScheduler> gate;
  if (options.policy != core::PolicyKind::kLinuxDefault) {
    gate = std::make_unique<core::RdaScheduler>(
        static_cast<double>(config.engine.machine.llc_bytes),
        config.engine.calib, options);
    engine.set_gate(gate.get());
  }

  workload::populate_engine(engine, spec, [&](sim::ProcessId pid) {
    if (gate) gate->mark_pool(pid);
  });

  const sim::SimResult result = engine.run();

  RunRow row;
  row.workload = spec.name;
  row.policy = core::to_string(options.policy);
  row.system_joules = result.system_joules();
  row.dram_joules = result.dram_joules;
  row.gflops = result.gflops();
  row.gflops_per_watt = result.gflops_per_watt();
  row.makespan = result.makespan;
  row.total_flops = result.total_flops;
  row.gate_blocks = result.gate_blocks;
  row.context_switches = result.context_switches;
  row.migrations = result.migrations;
  return row;
}

const RunRow& PolicyComparison::best_rda_by_energy() const {
  return strict.system_joules <= compromise.system_joules ? strict
                                                          : compromise;
}

const RunRow& PolicyComparison::best_rda_by_gflops() const {
  return strict.gflops >= compromise.gflops ? strict : compromise;
}

namespace {

/// The paper's three-way policy sweep as a config list (matrix columns).
std::vector<RunConfig> three_policy_configs(
    const sim::EngineConfig& engine_config) {
  std::vector<RunConfig> configs(3);
  for (RunConfig& c : configs) c.engine = engine_config;
  configs[0].policy = core::PolicyKind::kLinuxDefault;
  configs[1].policy = core::PolicyKind::kStrict;
  configs[2].policy = core::PolicyKind::kCompromise;
  configs[2].oversubscription = 2.0;  // the paper's configured factor
  return configs;
}

}  // namespace

std::size_t failed_cells(const std::vector<RunRow>& rows) {
  std::size_t failed = 0;
  for (const RunRow& row : rows) {
    if (row.failed()) ++failed;
  }
  return failed;
}

std::vector<RunRow> run_matrix(const std::vector<workload::WorkloadSpec>& specs,
                               const std::vector<RunConfig>& configs,
                               int jobs) {
  std::vector<RunRow> rows(specs.size() * configs.size());
  run_cells(rows.size(), jobs, [&](std::size_t cell) {
    const std::size_t s = cell / configs.size();
    const std::size_t c = cell % configs.size();
    try {
      rows[cell] = run_workload(specs[s], configs[c]);
    } catch (const std::exception& e) {
      // Fault isolation: one exploding cell must not take down the matrix.
      // Only this cell's pre-allocated slot is touched, so jobs-parity holds
      // for error rows exactly as for metric rows.
      RunRow& row = rows[cell];
      row.workload = specs[s].name;
      row.policy = core::to_string(
          configs[c].rda_options.has_value() ? configs[c].rda_options->policy
                                             : configs[c].policy);
      row.error = e.what();
    }
  });
  return rows;
}

PolicyComparison compare_policies(const workload::WorkloadSpec& spec,
                                  const sim::EngineConfig& engine_config,
                                  int jobs) {
  const std::vector<RunRow> rows =
      run_matrix({spec}, three_policy_configs(engine_config), jobs);
  PolicyComparison cmp;
  cmp.baseline = rows[0];
  cmp.strict = rows[1];
  cmp.compromise = rows[2];
  return cmp;
}

std::vector<PolicyComparison> compare_policies_all(
    const std::vector<workload::WorkloadSpec>& specs,
    const sim::EngineConfig& engine_config, int jobs) {
  const std::vector<RunRow> rows =
      run_matrix(specs, three_policy_configs(engine_config), jobs);
  std::vector<PolicyComparison> out(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    out[i].baseline = rows[3 * i + 0];
    out[i].strict = rows[3 * i + 1];
    out[i].compromise = rows[3 * i + 2];
  }
  return out;
}

Headline summarize(const std::vector<PolicyComparison>& comparisons) {
  Headline h;
  if (comparisons.empty()) return h;
  double energy_sum = 0.0;
  double speedup_sum = 0.0;
  for (const PolicyComparison& cmp : comparisons) {
    const double drop = cmp.energy_drop(cmp.best_rda_by_energy());
    const double speedup = cmp.speedup(cmp.best_rda_by_gflops());
    energy_sum += drop;
    speedup_sum += speedup;
    h.max_energy_drop = std::max(h.max_energy_drop, drop);
    h.max_speedup = std::max(h.max_speedup, speedup);
  }
  h.avg_energy_drop = energy_sum / static_cast<double>(comparisons.size());
  h.avg_speedup = speedup_sum / static_cast<double>(comparisons.size());
  return h;
}

}  // namespace rda::exp
