#include "core/feedback.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rda::core {

DemandCorrector::DemandCorrector(FeedbackOptions options)
    : options_(options) {
  RDA_CHECK(options_.decay > 0.0 && options_.decay <= 1.0);
  RDA_CHECK(options_.min_correction > 0.0);
  RDA_CHECK(options_.max_correction >= options_.min_correction);
}

double DemandCorrector::correction(const std::string& label,
                                   ResourceKind kind) const {
  if (!options_.enable) return 1.0;
  const auto it = states_.find(label);
  if (it == states_.end()) return 1.0;
  const State& state = it->second[static_cast<std::size_t>(kind)];
  if (state.samples < options_.min_samples) return 1.0;
  return std::clamp(state.ratio, options_.min_correction,
                    options_.max_correction);
}

void DemandCorrector::observe(const std::string& label, ResourceKind kind,
                              double declared_demand, double observed_peak,
                              bool contended) {
  if (!options_.enable || declared_demand <= 0.0) return;
  ++observations_;
  State& state = states_[label][static_cast<std::size_t>(kind)];
  ++state.samples;
  const double ratio = observed_peak / declared_demand;
  if (contended) {
    // The peak is only a lower bound: allow it to GROW the correction (the
    // period demonstrably used more than believed) but never shrink it.
    state.ratio = std::max(state.ratio, ratio);
  } else {
    // Decayed running max: shrinks only under repeated uncontended evidence.
    state.ratio = std::max(ratio, state.ratio * options_.decay);
  }
}

}  // namespace rda::core
