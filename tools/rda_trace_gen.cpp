// rda_trace_gen — generate a synthetic application trace file.
//
// The PIN-substitute capture step of the toolchain: writes the load/store/
// JMP record stream of a modelled application (water_nsquared or ocean_cp at
// a chosen input size) plus its loop-nest side table into a .rdatrc file
// that rda_profile can analyze.
//
//   rda_trace_gen --app wnsq --input 8000 --out wnsq_8000.rdatrc
//   rda_trace_gen --app ocp --input 514 --windows 4 --seed 7 --out o.rdatrc
#include <cstdio>
#include <string>

#include "args.hpp"
#include "trace/trace_io.hpp"
#include "util/units.hpp"
#include "workload/trace_models.hpp"

int main(int argc, char** argv) {
  using namespace rda;
  const tools::Args args(argc, argv);
  const std::string app = args.get("app", "wnsq");
  const std::string out = args.get("out");
  if (out.empty() || args.has("help")) {
    tools::usage(
        "usage: rda_trace_gen --app wnsq|ocp --input N --out FILE\n"
        "                     [--windows W=5] [--seed S=42]\n"
        "  --app      application model (wnsq = water_nsquared,\n"
        "             ocp = ocean_cp)\n"
        "  --input    input size: molecules (wnsq, default 8000) or\n"
        "             cells (ocp, default 514)\n"
        "  --windows  profiling windows per progress period\n");
  }
  const std::uint64_t windows = args.get_u64("windows", 5);
  const std::uint64_t seed = args.get_u64("seed", 42);

  workload::AppTraceModel model;
  std::uint64_t input = 0;
  if (app == "wnsq") {
    input = args.get_u64("input", 8000);
    model = workload::make_wnsq_trace(input, windows, seed);
  } else if (app == "ocp") {
    input = args.get_u64("input", 514);
    model = workload::make_ocp_trace(input, windows, seed);
  } else {
    tools::usage("unknown --app '" + app + "' (expected wnsq or ocp)\n");
  }

  trace::TraceFileWriter writer(out, model.nest);
  writer.write_all(*model.source);
  writer.finalize();

  std::printf("wrote %s: %llu records, %zu loops\n", out.c_str(),
              static_cast<unsigned long long>(writer.records_written()),
              model.nest.size());
  std::printf("model: %s input=%llu, true PP working sets:", app.c_str(),
              static_cast<unsigned long long>(input));
  for (const std::uint64_t wss : model.true_wss) {
    std::printf(" %.2fMB", util::bytes_to_mb(wss));
  }
  std::printf("\nrecommended profile flags: --window %llu --threshold %u\n",
              static_cast<unsigned long long>(model.window_accesses),
              model.hot_threshold);
  return 0;
}
