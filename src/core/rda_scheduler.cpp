#include "core/rda_scheduler.hpp"

#include "util/check.hpp"

namespace rda::core {

namespace {

AdmissionConfig to_core_config(double llc_capacity_bytes,
                               const RdaOptions& options) {
  AdmissionConfig config;
  config.llc_capacity_bytes = llc_capacity_bytes;
  config.bandwidth_capacity = options.bandwidth_capacity;
  config.energy_capacity_watts = options.energy_capacity_watts;
  config.policy = options.policy;
  config.oversubscription = options.oversubscription;
  config.resource_policies = options.resource_policies;
  config.combiner = options.combiner;
  config.fast_path = options.fast_path;
  config.partitioning = options.partitioning;
  config.feedback = options.feedback;
  config.monitor = options.monitor;
  config.tenant_ledger = options.tenant_ledger;
  config.trace_sink = options.trace_sink;
  config.fault_injector = options.fault_injector;
  return config;
}

}  // namespace

RdaScheduler::RdaScheduler(double llc_capacity_bytes,
                           const sim::Calibration& calib, RdaOptions options)
    : calib_(calib), core_(to_core_config(llc_capacity_bytes, options)) {}

void RdaScheduler::attach(sim::ThreadWaker& waker) {
  waker_ = &waker;
  core_.set_waker([&waker](sim::ThreadId tid) { waker.wake(tid); });
}

void RdaScheduler::on_thread_exit(sim::ThreadId thread, double now) {
  // The dead thread can never consume a reclaimed/rejected notice, so the
  // reap leaves no bookkeeping behind (remember_waiter = false).
  core_.reap(thread, now, /*remember_waiter=*/false);
  rejected_running_.erase(thread);
}

bool RdaScheduler::pending_admitted(sim::ThreadId thread) const {
  const std::optional<PeriodId> id = core_.active_for_thread(thread);
  return id.has_value() && core_.is_admitted(*id);
}

bool RdaScheduler::on_stall(double now) {
  bool changed = core_.watchdog_tick(now);
  // Sim time cannot advance while everything is blocked, so the wall-clock
  // trigger alone can never fire here — a stall itself is the proof of
  // starvation.
  if (!changed) changed = core_.watchdog_stalled(now);
  // Watchdog rejections never get a Waker grant; resume their owners here
  // so they run the phase ungated instead of wedging the simulation.
  for (sim::ThreadId thread : core_.rejected_threads()) {
    core_.take_rejection_for_thread(thread);
    rejected_running_.insert(thread);
    if (waker_ != nullptr) waker_->wake(thread);
    changed = true;
  }
  return changed;
}

sim::BeginResult RdaScheduler::on_phase_begin(sim::ThreadId thread,
                                              sim::ProcessId process,
                                              const sim::PhaseSpec& phase,
                                              double now) {
  AdmitRequest request;
  request.thread = thread;
  request.process = process;
  request.demands = {
      {ResourceKind::kLLC, static_cast<double>(phase.declared_wss())}};
  if (core_.config().bandwidth_capacity > 0.0 &&
      phase.bw_bytes_per_sec > 0.0) {
    request.demands.push_back(
        {ResourceKind::kMemBandwidth, phase.bw_bytes_per_sec});
  }
  if (core_.config().energy_capacity_watts > 0.0 && phase.watts > 0.0) {
    request.demands.push_back({ResourceKind::kEnergyBudget, phase.watts});
  }
  request.reuse = phase.reuse;
  request.label = phase.label;

  const AdmitTicket ticket = core_.admit(std::move(request), now);

  sim::BeginResult result;
  result.admit = ticket.admitted;
  result.call_cost =
      ticket.fast_path ? calib_.api_fast_path_cost : calib_.api_call_cost;
  result.occupancy_cap = ticket.occupancy_cap;
  return result;
}

sim::EndResult RdaScheduler::on_phase_end(sim::ThreadId thread,
                                          sim::ProcessId process,
                                          const sim::PhaseSpec& phase,
                                          const sim::PhaseObservation& observed,
                                          double now) {
  (void)process;
  (void)phase;
  if (rejected_running_.erase(thread) != 0) {
    // The period was watchdog-rejected before it ran; there is nothing to
    // release — the phase executed ungated.
    sim::EndResult result;
    result.call_cost = calib_.api_call_cost;
    return result;
  }
  const std::optional<PeriodId> id = core_.active_for_thread(thread);
  RDA_CHECK_MSG(id.has_value(), "phase end from thread "
                                    << thread << " with no active period");
  ReleaseObservation counters;
  counters.peak_occupancy = observed.peak_occupancy;
  counters.cache_contended = observed.cache_contended;
  counters.has_counters = true;
  if (observed.duration > 0.0 && observed.dram_bytes > 0.0) {
    // The DRAM-traffic counter view of the phase: average achieved
    // bandwidth, the trustworthy signal to audit a declared bytes/second
    // demand against.
    counters.peak_bandwidth = observed.dram_bytes / observed.duration;
    counters.has_bandwidth = true;
  }
  const ReleaseTicket ticket = core_.release(*id, counters, now);

  sim::EndResult result;
  result.call_cost =
      ticket.fast_path ? calib_.api_fast_path_cost : calib_.api_call_cost;
  return result;
}

}  // namespace rda::core
