// FaultInjector unit tests: consult-count determinism, hook/thread/node
// targeting, and the one-fire-per-consult fairness between same-hook specs.
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace rda::fault {
namespace {

FaultSpec spec(FaultKind kind, Hook hook, std::uint64_t at_count = 1) {
  FaultSpec s;
  s.kind = kind;
  s.hook = hook;
  s.at_count = at_count;
  return s;
}

TEST(FaultInjector, FiresOnNthMatchingConsultExactlyOnce) {
  FaultPlan plan;
  plan.add(spec(FaultKind::kThreadDeath, Hook::kAdmit, 3));
  FaultInjector injector(std::move(plan));

  EXPECT_EQ(injector.consult(Hook::kAdmit), nullptr);
  EXPECT_EQ(injector.consult(Hook::kAdmit), nullptr);
  const FaultSpec* fired = injector.consult(Hook::kAdmit);
  ASSERT_NE(fired, nullptr);
  EXPECT_EQ(fired->kind, FaultKind::kThreadDeath);
  // A spec fires at most once.
  EXPECT_EQ(injector.consult(Hook::kAdmit), nullptr);
  EXPECT_EQ(injector.armed(), 0u);
  ASSERT_EQ(injector.fired().size(), 1u);
  EXPECT_EQ(injector.consults(), 4u);
}

TEST(FaultInjector, HookMismatchNeverMatches) {
  FaultPlan plan;
  plan.add(spec(FaultKind::kLostWake, Hook::kWake));
  FaultInjector injector(std::move(plan));

  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(injector.consult(Hook::kAdmit), nullptr);
    EXPECT_EQ(injector.consult(Hook::kRelease), nullptr);
  }
  const FaultSpec* fired = injector.consult(Hook::kWake);
  ASSERT_NE(fired, nullptr);
  EXPECT_EQ(fired->kind, FaultKind::kLostWake);
}

TEST(FaultInjector, ThreadTargetingRestrictsMatches) {
  FaultSpec targeted = spec(FaultKind::kThreadDeath, Hook::kAdmit);
  targeted.thread = 2;
  FaultPlan plan;
  plan.add(targeted);
  FaultInjector injector(std::move(plan));

  EXPECT_EQ(injector.consult(Hook::kAdmit, 1), nullptr);
  EXPECT_EQ(injector.consult(Hook::kAdmit, 3), nullptr);
  const FaultSpec* fired = injector.consult(Hook::kAdmit, 2);
  ASSERT_NE(fired, nullptr);
  EXPECT_EQ(fired->thread, 2u);
}

TEST(FaultInjector, UntargetedSpecMatchesAnyThread) {
  FaultPlan plan;
  plan.add(spec(FaultKind::kThreadDeath, Hook::kAdmit, 2));
  FaultInjector injector(std::move(plan));

  EXPECT_EQ(injector.consult(Hook::kAdmit, 7), nullptr);
  EXPECT_NE(injector.consult(Hook::kAdmit, 9), nullptr);
}

TEST(FaultInjector, NodeTargetingRestrictsRouteFaults) {
  FaultSpec targeted = spec(FaultKind::kNodeFail, Hook::kNodeRoute);
  targeted.node = 1;
  FaultPlan plan;
  plan.add(targeted);
  FaultInjector injector(std::move(plan));

  EXPECT_EQ(injector.consult(Hook::kNodeRoute, sim::kInvalidThread, 0),
            nullptr);
  EXPECT_EQ(injector.consult(Hook::kNodeRoute, sim::kInvalidThread, 2),
            nullptr);
  const FaultSpec* fired =
      injector.consult(Hook::kNodeRoute, sim::kInvalidThread, 1);
  ASSERT_NE(fired, nullptr);
  EXPECT_EQ(fired->node, 1);
}

TEST(FaultInjector, AtMostOneSpecFiresPerConsult) {
  // Two specs armed on the same hook with at_count=1: the first consult can
  // satisfy both, but only one fires; the runner-up takes the next matching
  // consult (matches >= at_count) instead of being starved forever.
  FaultPlan plan;
  plan.add(spec(FaultKind::kThreadDeath, Hook::kAdmit));
  plan.add(spec(FaultKind::kCorruptCounter, Hook::kAdmit));
  FaultInjector injector(std::move(plan));

  const FaultSpec* first = injector.consult(Hook::kAdmit);
  ASSERT_NE(first, nullptr);
  const FaultSpec* second = injector.consult(Hook::kAdmit);
  ASSERT_NE(second, nullptr);
  EXPECT_NE(first->kind, second->kind);
  EXPECT_EQ(injector.armed(), 0u);
  EXPECT_EQ(injector.consult(Hook::kAdmit), nullptr);
}

TEST(FaultInjector, FiredLogPreservesFiringOrder) {
  FaultPlan plan;
  plan.add(spec(FaultKind::kLostWake, Hook::kWake, 2));
  plan.add(spec(FaultKind::kThreadDeath, Hook::kAdmit, 1));
  FaultInjector injector(std::move(plan));

  injector.consult(Hook::kAdmit);  // thread death fires first
  injector.consult(Hook::kWake);
  injector.consult(Hook::kWake);  // lost wake fires second

  const std::vector<FaultSpec> fired = injector.fired();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0].kind, FaultKind::kThreadDeath);
  EXPECT_EQ(fired[1].kind, FaultKind::kLostWake);
}

std::string plan_fingerprint(const FaultPlan& plan) {
  std::string out;
  for (const FaultSpec& s : plan.specs()) {
    out += std::string(to_string(s.kind)) + "/" +
           std::string(to_string(s.hook)) + "/t" + std::to_string(s.thread) +
           "/n" + std::to_string(s.at_count) + "/f" +
           std::to_string(s.factor) + ";";
  }
  return out;
}

TEST(FaultInjector, RandomPlanIsSeedDeterministic) {
  const FaultPlan a = FaultPlan::random(42, 4, 4);
  const FaultPlan b = FaultPlan::random(42, 4, 4);
  EXPECT_EQ(a.specs().size(), 4u);
  EXPECT_EQ(plan_fingerprint(a), plan_fingerprint(b));
}

TEST(FaultInjector, DifferentSeedsProduceDifferentPlans) {
  std::string first = plan_fingerprint(FaultPlan::random(1, 4, 4));
  bool any_different = false;
  for (std::uint64_t seed = 2; seed < 8; ++seed) {
    if (plan_fingerprint(FaultPlan::random(seed, 4, 4)) != first) {
      any_different = true;
      break;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(FaultInjector, ReplayingConsultSequenceReplaysFirings) {
  // The whole point of the design: consult order is the only clock, so the
  // same plan and consult sequence fire identically on every run.
  const std::vector<Hook> sequence = {Hook::kAdmit, Hook::kBlock, Hook::kWake,
                                      Hook::kAdmit, Hook::kWake,
                                      Hook::kRelease, Hook::kAdmit};
  auto run = [&] {
    FaultInjector injector(FaultPlan::random(11, 3, 2));
    std::string log;
    for (Hook h : sequence) {
      for (sim::ThreadId t = 0; t < 2; ++t) {
        const FaultSpec* f = injector.consult(h, t);
        if (f != nullptr) {
          log += std::string(to_string(f->kind)) + "@t" + std::to_string(t) +
                 ";";
        }
      }
    }
    return log;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace rda::fault
