#include "exp/harness.hpp"

#include <memory>

namespace rda::exp {

RunRow run_workload(const workload::WorkloadSpec& spec,
                    const RunConfig& config) {
  sim::Engine engine(config.engine);

  std::unique_ptr<core::RdaScheduler> gate;
  if (config.policy != core::PolicyKind::kLinuxDefault) {
    core::RdaOptions options;
    options.policy = config.policy;
    options.oversubscription = config.oversubscription;
    options.fast_path = config.fast_path;
    gate = std::make_unique<core::RdaScheduler>(
        static_cast<double>(config.engine.machine.llc_bytes),
        config.engine.calib, options);
    engine.set_gate(gate.get());
  }

  workload::populate_engine(engine, spec, [&](sim::ProcessId pid) {
    if (gate) gate->mark_pool(pid);
  });

  const sim::SimResult result = engine.run();

  RunRow row;
  row.workload = spec.name;
  row.policy = core::to_string(config.policy);
  row.system_joules = result.system_joules();
  row.dram_joules = result.dram_joules;
  row.gflops = result.gflops();
  row.gflops_per_watt = result.gflops_per_watt();
  row.makespan = result.makespan;
  row.total_flops = result.total_flops;
  row.gate_blocks = result.gate_blocks;
  row.context_switches = result.context_switches;
  row.migrations = result.migrations;
  return row;
}

const RunRow& PolicyComparison::best_rda_by_energy() const {
  return strict.system_joules <= compromise.system_joules ? strict
                                                          : compromise;
}

const RunRow& PolicyComparison::best_rda_by_gflops() const {
  return strict.gflops >= compromise.gflops ? strict : compromise;
}

PolicyComparison compare_policies(const workload::WorkloadSpec& spec,
                                  const sim::EngineConfig& engine_config) {
  PolicyComparison cmp;
  RunConfig config;
  config.engine = engine_config;

  config.policy = core::PolicyKind::kLinuxDefault;
  cmp.baseline = run_workload(spec, config);

  config.policy = core::PolicyKind::kStrict;
  cmp.strict = run_workload(spec, config);

  config.policy = core::PolicyKind::kCompromise;
  config.oversubscription = 2.0;  // the paper's configured factor
  cmp.compromise = run_workload(spec, config);

  return cmp;
}

Headline summarize(const std::vector<PolicyComparison>& comparisons) {
  Headline h;
  if (comparisons.empty()) return h;
  double energy_sum = 0.0;
  double speedup_sum = 0.0;
  for (const PolicyComparison& cmp : comparisons) {
    const double drop = cmp.energy_drop(cmp.best_rda_by_energy());
    const double speedup = cmp.speedup(cmp.best_rda_by_gflops());
    energy_sum += drop;
    speedup_sum += speedup;
    h.max_energy_drop = std::max(h.max_energy_drop, drop);
    h.max_speedup = std::max(h.max_speedup, speedup);
  }
  h.avg_energy_drop = energy_sum / static_cast<double>(comparisons.size());
  h.avg_speedup = speedup_sum / static_cast<double>(comparisons.size());
  return h;
}

}  // namespace rda::exp
