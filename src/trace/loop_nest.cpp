#include "trace/loop_nest.hpp"

#include <stdexcept>

#include "util/check.hpp"

namespace rda::trace {

LoopId LoopNest::add_loop(std::string name, std::uint64_t pc_begin,
                          std::uint64_t pc_end) {
  RDA_CHECK_MSG(pc_begin < pc_end, "loop '" << name << "' has empty PC range");
  LoopInfo info;
  info.name = std::move(name);
  info.pc_begin = pc_begin;
  info.pc_end = pc_end;
  info.parent = kNoLoop;
  info.depth = 0;
  loops_.push_back(std::move(info));
  return static_cast<LoopId>(loops_.size() - 1);
}

LoopId LoopNest::add_nested(LoopId parent, std::string name,
                            std::uint64_t pc_begin, std::uint64_t pc_end) {
  RDA_CHECK(parent < loops_.size());
  const LoopInfo& outer = loops_[parent];
  RDA_CHECK_MSG(pc_begin >= outer.pc_begin && pc_end <= outer.pc_end,
                "loop '" << name << "' escapes parent '" << outer.name << "'");
  RDA_CHECK_MSG(pc_begin < pc_end, "loop '" << name << "' has empty PC range");
  LoopInfo info;
  info.name = std::move(name);
  info.pc_begin = pc_begin;
  info.pc_end = pc_end;
  info.parent = parent;
  info.depth = outer.depth + 1;
  loops_.push_back(std::move(info));
  return static_cast<LoopId>(loops_.size() - 1);
}

std::optional<LoopId> LoopNest::innermost_containing(std::uint64_t pc) const {
  std::optional<LoopId> best;
  int best_depth = -1;
  for (LoopId id = 0; id < loops_.size(); ++id) {
    const LoopInfo& info = loops_[id];
    if (info.contains(pc) && info.depth > best_depth) {
      best = id;
      best_depth = info.depth;
    }
  }
  return best;
}

std::optional<LoopId> LoopNest::outermost_containing(std::uint64_t pc) const {
  for (LoopId id = 0; id < loops_.size(); ++id) {
    const LoopInfo& info = loops_[id];
    if (info.depth == 0 && info.contains(pc)) return id;
  }
  return std::nullopt;
}

LoopId LoopNest::outermost_ancestor(LoopId loop) const {
  RDA_CHECK(loop < loops_.size());
  LoopId cur = loop;
  while (loops_[cur].parent != kNoLoop) cur = loops_[cur].parent;
  return cur;
}

}  // namespace rda::trace
