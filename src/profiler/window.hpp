// Fixed-size-window trace statistics (§2.4).
//
// The paper's preliminary profiler collects, per fixed-size sampling window
// of instructions:
//   * memory footprint   — number of unique addresses touched,
//   * working-set size   — addresses touched at least a pre-configured
//                          number of times,
//   * reuse ratio        — average touches per unique address,
//   * retired-JMP PCs    — for locating the window inside the loop nest.
// WindowAnalyzer reproduces exactly that, at cache-line granularity.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/record.hpp"

namespace rda::prof {

/// Profiler tuning knobs; defaults follow the paper's description.
struct WindowConfig {
  /// Window length in memory accesses (the paper windows by instruction
  /// count; memory records are our instruction proxy).
  std::uint64_t window_accesses = 1u << 20;
  /// Address quantization — a 64-byte cache line, the unit the LLC manages.
  std::uint64_t granularity = 64;
  /// An address is part of the working set once touched this many times.
  std::uint32_t hot_threshold = 4;
};

/// Summary of one profiling window.
struct WindowStats {
  std::uint64_t index = 0;           ///< position in the window sequence
  std::uint64_t accesses = 0;        ///< memory records consumed
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t footprint_bytes = 0; ///< unique lines × granularity
  std::uint64_t wss_bytes = 0;       ///< hot lines × granularity
  double reuse_ratio = 0.0;          ///< accesses / unique lines
  /// Retired-JMP histogram for this window (PC → count).
  std::unordered_map<std::uint64_t, std::uint64_t> jump_counts;

  /// Most frequently retired JMP PC, 0 when no jumps were observed.
  std::uint64_t dominant_jump_pc() const;
};

/// Splits a trace into consecutive windows and summarizes each one.
class WindowAnalyzer {
 public:
  explicit WindowAnalyzer(WindowConfig config = {});

  /// Consumes the whole source. A trailing partial window shorter than half
  /// the configured length is dropped (its statistics are not comparable).
  std::vector<WindowStats> analyze(trace::TraceSource& source) const;

  const WindowConfig& config() const { return config_; }

 private:
  WindowConfig config_;
};

}  // namespace rda::prof
