#include "runtime/gate.hpp"

#include <atomic>
#include <utility>

#include "util/check.hpp"

namespace rda::rt {

namespace {

core::AdmissionConfig to_core_config(const GateConfig& config) {
  core::AdmissionConfig c;
  c.llc_capacity_bytes = config.llc_capacity_bytes;
  c.bandwidth_capacity = config.bandwidth_capacity;
  c.policy = config.policy;
  c.oversubscription = config.oversubscription;
  c.fast_path = config.fast_path;
  c.partitioning = config.partitioning;
  c.feedback = config.feedback;
  c.monitor = config.monitor;
  c.trace_sink = config.trace_sink;
  return c;
}

}  // namespace

AdmissionGate::AdmissionGate(GateConfig config)
    : config_(config),
      core_(to_core_config(config)),
      epoch_(std::chrono::steady_clock::now()) {
  // The kernel wake event: flag the thread and ping every sleeper. Runs
  // under mu_ (the core is only ever called with mu_ held), so the insert
  // needs no further synchronization.
  core_.set_waker([this](sim::ThreadId tid) {
    granted_.insert(static_cast<std::uint32_t>(tid));
    cv_.notify_all();
  });
}

std::uint32_t AdmissionGate::self_id() {
  // thread_local slot token: assigned once per OS thread, never recycled
  // within the process, shared across all gates (the token only has to
  // identify the thread, not the gate).
  static std::atomic<std::uint32_t> next_token{1};
  thread_local const std::uint32_t token =
      next_token.fetch_add(1, std::memory_order_relaxed);
  return token;
}

std::uint32_t AdmissionGate::group_of(std::uint32_t thread_id) const {
  const auto it = groups_.find(thread_id);
  // Default: every thread is its own singleton group, so pool semantics
  // never trigger unless join_group was called.
  return it == groups_.end() ? thread_id : it->second;
}

double AdmissionGate::now_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

std::optional<core::PeriodId> AdmissionGate::begin_impl(
    std::vector<core::ResourceDemand> demands, ReuseLevel reuse,
    std::string label, WaitMode mode, std::chrono::nanoseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  const std::uint32_t tid = self_id();

  core::AdmitRequest request;
  request.thread = tid;
  request.process = group_of(tid);
  request.demands = std::move(demands);
  request.reuse = reuse;
  request.label = std::move(label);

  const core::AdmitTicket ticket = core_.admit(std::move(request),
                                               now_seconds());
  if (ticket.admitted) return ticket.id;

  if (mode == WaitMode::kTry) {
    const bool withdrawn = core_.withdraw(ticket.id, now_seconds());
    RDA_CHECK(withdrawn);
    return std::nullopt;
  }

  ++waits_;
  const double wait_start = now_seconds();
  bool granted = true;
  if (mode == WaitMode::kBlocking) {
    cv_.wait(lock, [&] { return granted_.count(tid) != 0; });
  } else {
    granted = cv_.wait_for(lock, timeout,
                           [&] { return granted_.count(tid) != 0; });
  }
  total_wait_seconds_ += now_seconds() - wait_start;
  if (granted) {
    granted_.erase(tid);
    return ticket.id;
  }
  // Timed out. Withdraw can still lose to a wake that fired between the
  // predicate's last false and re-acquiring mu_: then the period is already
  // admitted (its load charged, the grant flagged) and withdraw returns
  // false — consume the grant instead of stranding the capacity.
  if (!core_.withdraw(ticket.id, now_seconds())) {
    RDA_CHECK_MSG(granted_.count(tid) != 0,
                  "timed-out period " << ticket.id
                                      << " already admitted but no grant "
                                         "flagged for thread "
                                      << tid);
    granted_.erase(tid);
    return ticket.id;
  }
  return std::nullopt;
}

core::PeriodId AdmissionGate::begin(ResourceKind resource, double demand,
                                    ReuseLevel reuse, std::string label) {
  const std::optional<core::PeriodId> id =
      begin_impl({{resource, demand}}, reuse, std::move(label),
                 WaitMode::kBlocking, {});
  RDA_CHECK(id.has_value());
  return *id;
}

core::PeriodId AdmissionGate::begin_multi(
    std::vector<core::ResourceDemand> demands, ReuseLevel reuse,
    std::string label) {
  const std::optional<core::PeriodId> id =
      begin_impl(std::move(demands), reuse, std::move(label),
                 WaitMode::kBlocking, {});
  RDA_CHECK(id.has_value());
  return *id;
}

std::optional<core::PeriodId> AdmissionGate::try_begin(ResourceKind resource,
                                                       double demand,
                                                       ReuseLevel reuse,
                                                       std::string label) {
  return begin_impl({{resource, demand}}, reuse, std::move(label),
                    WaitMode::kTry, {});
}

std::optional<core::PeriodId> AdmissionGate::begin_for(
    ResourceKind resource, double demand, ReuseLevel reuse,
    std::chrono::nanoseconds timeout, std::string label) {
  return begin_impl({{resource, demand}}, reuse, std::move(label),
                    WaitMode::kTimed, timeout);
}

void AdmissionGate::end(core::PeriodId id) {
  end(id, core::ReleaseObservation{});
}

void AdmissionGate::end(core::PeriodId id,
                        const core::ReleaseObservation& observed) {
  std::lock_guard<std::mutex> lock(mu_);
  core_.release(id, observed, now_seconds());
}

void AdmissionGate::mark_pool(std::uint32_t group) {
  std::lock_guard<std::mutex> lock(mu_);
  core_.mark_pool(group);
}

void AdmissionGate::join_group(std::uint32_t group) {
  std::lock_guard<std::mutex> lock(mu_);
  groups_[self_id()] = group;
}

GateStats AdmissionGate::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  GateStats s;
  s.monitor = core_.stats();
  s.waits = waits_;
  s.total_wait_seconds = total_wait_seconds_;
  s.fast_path_hits = core_.fast_path_hits();
  s.partitioned_periods = core_.partitioned_periods();
  return s;
}

double AdmissionGate::usage(ResourceKind resource) const {
  std::lock_guard<std::mutex> lock(mu_);
  return core_.resources().usage(resource);
}

std::size_t AdmissionGate::waiting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return core_.monitor().waitlist().size();
}

}  // namespace rda::rt
