#include "profiler/reuse_distance.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace rda::prof {

namespace {

/// splitmix64 finalizer — cheap, stateless, and uncorrelated with the
/// line-address arithmetic of any generator, which is what spatial sampling
/// needs from its hash.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

ReuseDistanceAnalyzer::ReuseDistanceAnalyzer(std::uint64_t granularity,
                                             std::uint64_t max_tracked,
                                             double sample_rate)
    : granularity_(granularity),
      max_tracked_(max_tracked),
      sample_rate_(sample_rate) {
  RDA_CHECK(granularity_ > 0);
  RDA_CHECK(max_tracked_ > 0);
  RDA_CHECK_MSG(sample_rate_ > 0.0 && sample_rate_ <= 1.0,
                "sample rate must be in (0, 1], got " << sample_rate_);
  if (sample_rate_ >= 1.0) {
    sample_threshold_ = ~0ull;  // every line passes
  } else {
    sample_threshold_ = static_cast<std::uint64_t>(
        sample_rate_ * 18446744073709551616.0 /* 2^64 */);
  }
  fenwick_.assign(1024, 0);
}

bool ReuseDistanceAnalyzer::sampled_line(std::uint64_t line) const {
  if (sample_rate_ >= 1.0) return true;
  return mix64(line) < sample_threshold_;
}

void ReuseDistanceAnalyzer::fenwick_add(std::uint64_t index,
                                        std::int64_t delta) {
  // 1-based Fenwick tree.
  for (std::uint64_t i = index + 1; i < fenwick_.size(); i += i & (~i + 1)) {
    fenwick_[i] += delta;
  }
}

std::int64_t ReuseDistanceAnalyzer::fenwick_sum(std::uint64_t index) const {
  // An out-of-range position would silently truncate the prefix sum (and
  // with it the reported distance); positions are assigned by access() and
  // renumbered by compaction, so out-of-range here is an invariant breach.
  RDA_CHECK_MSG(index + 1 < fenwick_.size(),
                "stale position " << index << " vs tree of "
                                  << fenwick_.size());
  std::int64_t sum = 0;
  for (std::uint64_t i = index + 1; i > 0; i -= i & (~i + 1)) {
    sum += fenwick_[i];
  }
  return sum;
}

void ReuseDistanceAnalyzer::access(std::uint64_t address) {
  const std::uint64_t line = address / granularity_;
  ++total_;
  if (!sampled_line(line)) return;
  ++sampled_;

  // Position compaction keeps memory O(unique lines): when the timestamp
  // space outgrows 4x the live set, renumber live marks preserving order.
  if (clock_ + 2 >= fenwick_.size()) {
    if (fenwick_.size() < 4 * (last_position_.size() + 256)) {
      // Grow until the next position (clock_) is addressable; a single
      // doubling is enough today (clock_ advances one per access) but the
      // loop keeps sizing correct by construction.
      std::size_t size = fenwick_.size();
      while (clock_ + 2 >= size) size *= 2;
      fenwick_.assign(size, 0);
      // Rebuild marks into the enlarged tree.
      for (const auto& [l, pos] : last_position_) {
        (void)l;
        fenwick_add(pos, +1);
      }
    } else {
      // Renumber: sort live (position, line) pairs, assign dense positions.
      std::vector<std::pair<std::uint64_t, std::uint64_t>> live;
      live.reserve(last_position_.size());
      for (const auto& [l, pos] : last_position_) live.push_back({pos, l});
      std::sort(live.begin(), live.end());
      std::fill(fenwick_.begin(), fenwick_.end(), 0);
      std::uint64_t next = 0;
      for (const auto& [pos, l] : live) {
        (void)pos;
        last_position_[l] = next;
        fenwick_add(next, +1);
        ++next;
      }
      clock_ = next;
    }
  }

  const auto it = last_position_.find(line);
  if (it == last_position_.end()) {
    // Cold miss: infinite distance, kept out of the histogram.
    ++cold_;
  } else {
    const std::int64_t marks_up_to = fenwick_sum(it->second);
    const std::int64_t live = static_cast<std::int64_t>(
        last_position_.size());
    std::uint64_t distance = static_cast<std::uint64_t>(live - marks_up_to);
    if (sample_rate_ < 1.0) {
      // A distance of d tracked lines estimates d/R true lines in between.
      distance = static_cast<std::uint64_t>(
          std::llround(static_cast<double>(distance) / sample_rate_));
    }
    distance = std::min(distance, max_tracked_);
    fenwick_add(it->second, -1);
    if (histogram_.size() <= distance) histogram_.resize(distance + 1, 0);
    ++histogram_[distance];
  }

  last_position_[line] = clock_;
  fenwick_add(clock_, +1);
  ++clock_;
}

void ReuseDistanceAnalyzer::consume(trace::TraceSource& source) {
  trace::TraceRecord record;
  while (source.next(record)) {
    if (record.is_memory()) access(record.value);
  }
}

std::uint64_t ReuseDistanceAnalyzer::hits_with_cache_lines(
    std::uint64_t lines) const {
  std::uint64_t hits = 0;
  // Distances capped at max_tracked_ are lower-bounded, not measured, so
  // they never count as hits regardless of the queried size.
  const std::uint64_t bound = std::min<std::uint64_t>(
      std::min<std::uint64_t>(lines, histogram_.size()), max_tracked_);
  for (std::uint64_t d = 0; d < bound; ++d) hits += histogram_[d];
  return hits;
}

double ReuseDistanceAnalyzer::miss_ratio(std::uint64_t bytes) const {
  // Ratios are over the sampled population; spatial sampling keeps the
  // sampled accesses an unbiased slice of all accesses.
  if (sampled_ == 0) return 0.0;
  const std::uint64_t lines = bytes / granularity_;
  const std::uint64_t hits = hits_with_cache_lines(lines);
  return 1.0 - static_cast<double>(hits) / static_cast<double>(sampled_);
}

std::uint64_t ReuseDistanceAnalyzer::cold_misses() const {
  if (sample_rate_ >= 1.0) return cold_;
  return static_cast<std::uint64_t>(
      std::llround(static_cast<double>(cold_) / sample_rate_));
}

std::uint64_t ReuseDistanceAnalyzer::unique_lines() const {
  if (sample_rate_ >= 1.0) return last_position_.size();
  return static_cast<std::uint64_t>(std::llround(
      static_cast<double>(last_position_.size()) / sample_rate_));
}

std::uint64_t ReuseDistanceAnalyzer::working_set_bytes(double slack) const {
  if (sampled_ == 0) return 0;
  const double floor_misses = static_cast<double>(cold_);
  const double budget =
      floor_misses + slack * static_cast<double>(sampled_);
  // Walk the cumulative histogram for the smallest size meeting the budget.
  std::uint64_t hits = 0;
  for (std::uint64_t d = 0; d < histogram_.size(); ++d) {
    hits += histogram_[d];
    const double misses = static_cast<double>(sampled_ - hits);
    if (misses <= budget) return (d + 1) * granularity_;
  }
  return (histogram_.empty() ? 1 : histogram_.size()) * granularity_;
}

}  // namespace rda::prof
