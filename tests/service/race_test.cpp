// Race coverage for the service submission path (run under the TSan
// preset): concurrent producers against the drain loop, with a chaos
// thread churning big park/withdraw cycles — the wall-clock analogue of a
// node draining and rejoining while submissions keep arriving. The ledger
// invariant begins == ends + cancels + reclaims + rejections, extended to
// the queue (pushed == drained == admitted), must survive the churn.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/admission.hpp"
#include "service/pump.hpp"
#include "service/queue.hpp"

namespace rda::service {
namespace {

TEST(ServicePump, BatchedAndPerCallBothCompleteAllOps) {
  for (const bool batched : {false, true}) {
    PumpConfig cfg;
    cfg.producers = 2;
    cfg.ops_per_producer = 3000;
    cfg.batched = batched;
    cfg.batch_max = 128;
    const PumpResult result = run_pump(cfg);
    EXPECT_EQ(result.ops, 6000u);
    EXPECT_GT(result.seconds, 0.0);
    EXPECT_GT(result.mops, 0.0);
  }
}

TEST(ServicePump, ShardedDrainCompletesAllOpsForAnyShardCount) {
  // 4 nodes drained by 1, 3, or 4 shard threads (3 exercises the uneven
  // n % shards ownership split). Every op must admit AND release on its
  // own node regardless of how the drainers partition the fleet.
  for (const int shards : {1, 3, 4}) {
    PumpConfig cfg;
    cfg.producers = 2;
    cfg.ops_per_producer = 2000;
    cfg.batched = true;
    cfg.nodes = 4;
    cfg.shards = shards;
    cfg.batch_max = 128;
    const PumpResult result = run_pump(cfg);
    EXPECT_EQ(result.ops, 4000u) << shards << " shards";
    EXPECT_GT(result.mops, 0.0) << shards << " shards";
  }
}

TEST(ServiceRace, ShardedDrainSurvivesNodeDeathMidRun) {
  // The wall-clock analogue of the frontend's fault cell: 4 nodes, 4
  // shard queues, 4 drain threads, concurrent producers — and node 2 dies
  // mid-run while holding an admitted resident period. Its drainer then
  // plays the mailbox role: everything it pops is forwarded to shard 3's
  // queue (push is multi-producer safe — that is the wall-clock mailbox)
  // and admitted on node 3. Nothing may be lost, doubled, or deadlocked.
  constexpr int kNodes = 4;
  constexpr int kProducers = 3;
  constexpr std::uint64_t kPerProducer = 2000;
  constexpr std::uint64_t kBase = kProducers * kPerProducer;
  constexpr std::uint64_t kExtra = 100;  // pushed after the death, node 2
  constexpr double kCapacity = 15360.0 * 1024.0;

  std::vector<std::unique_ptr<core::AdmissionCore>> cores;
  for (int n = 0; n < kNodes; ++n) {
    core::AdmissionConfig cc;
    cc.llc_capacity_bytes = kCapacity;
    cc.policy = core::PolicyKind::kStrict;
    cores.push_back(std::make_unique<core::AdmissionCore>(cc));
    cores.back()->set_batch_waker([](const auto&) {});
  }

  std::vector<std::unique_ptr<SubmissionQueue<sim::ThreadId>>> queues;
  for (int n = 0; n < kNodes; ++n) {
    queues.push_back(
        std::make_unique<SubmissionQueue<sim::ThreadId>>(1 << 12));
  }

  std::atomic<std::uint64_t> remaining{kBase + kExtra};
  std::atomic<bool> node2_down{false};
  std::atomic<std::uint64_t> forwarded{0};

  const auto make_request = [&](sim::ThreadId thread) {
    core::AdmitRequest r;
    r.thread = thread;
    r.process = thread;
    r.demands = {{ResourceKind::kLLC, 1.0e-4 * kCapacity}};
    return r;
  };

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const auto thread =
            static_cast<sim::ThreadId>(p * kPerProducer + i);
        SubmissionQueue<sim::ThreadId>& queue =
            *queues[static_cast<std::size_t>(thread) % kNodes];
        while (!queue.push(thread)) std::this_thread::yield();
      }
    });
  }

  std::vector<std::thread> drainers;
  for (int s = 0; s < kNodes; ++s) {
    drainers.emplace_back([&, s] {
      std::vector<sim::ThreadId> batch;
      while (remaining.load(std::memory_order_acquire) > 0) {
        batch.clear();
        if (queues[static_cast<std::size_t>(s)]->pop_batch(batch, 256) ==
            0) {
          std::this_thread::yield();
          continue;
        }
        if (s == 2 && node2_down.load(std::memory_order_acquire)) {
          // Dead node: forward every popped submission to shard 3 — the
          // lock-light reroute hop. remaining is NOT decremented; the op
          // still has to complete, just elsewhere.
          for (const sim::ThreadId thread : batch) {
            while (!queues[3]->push(thread)) std::this_thread::yield();
          }
          forwarded.fetch_add(batch.size(), std::memory_order_relaxed);
          continue;
        }
        std::vector<core::AdmitRequest> requests;
        requests.reserve(batch.size());
        for (const sim::ThreadId thread : batch) {
          requests.push_back(make_request(thread));
        }
        const auto tickets = cores[static_cast<std::size_t>(s)]
                                 ->admit_batch(std::move(requests), 0.0);
        std::vector<core::PeriodId> ids;
        ids.reserve(tickets.size());
        for (const auto& ticket : tickets) {
          ASSERT_TRUE(ticket.admitted);
          ids.push_back(ticket.id);
        }
        cores[static_cast<std::size_t>(s)]->release_batch(ids, 0.0);
        remaining.fetch_sub(ids.size(), std::memory_order_acq_rel);
      }
    });
  }

  // Chaos: node 2 carries a resident admitted period, dies mid-run (the
  // resident is reaped, its budget reclaimed), and 100 more node-2 ops
  // arrive AFTER the death — all of which must take the forward hop.
  std::thread chaos([&] {
    const auto resident_thread = static_cast<sim::ThreadId>(kBase + 500);
    const core::AdmitTicket resident =
        cores[2]->admit(make_request(resident_thread), 0.0);
    ASSERT_TRUE(resident.admitted);
    while (remaining.load(std::memory_order_acquire) >
           (kBase + kExtra) / 2) {
      std::this_thread::yield();  // let the fleet get half-way
    }
    node2_down.store(true, std::memory_order_release);
    const core::ProgressMonitor::ReapOutcome outcome =
        cores[2]->reap(resident_thread, 0.0);
    EXPECT_TRUE(outcome.reaped);
    EXPECT_TRUE(outcome.was_admitted);
    for (std::uint64_t i = 0; i < kExtra; ++i) {
      // ids ≡ 2 (mod 4): routed to the dead node's queue at push time.
      const auto thread = static_cast<sim::ThreadId>(kBase + 2 + 4 * i);
      while (!queues[2]->push(thread)) std::this_thread::yield();
    }
  });

  for (std::thread& t : producers) t.join();
  for (std::thread& t : drainers) t.join();
  chaos.join();

  EXPECT_EQ(remaining.load(), 0u);
  EXPECT_GE(forwarded.load(), kExtra);

  // Every core audits clean at quiescence and the fleet-wide ledger
  // balances: each op began and ended exactly once, the resident resolved
  // as the one reclaim.
  core::MonitorStats total;
  for (int n = 0; n < kNodes; ++n) {
    const core::AdmissionCore::AuditReport audit = cores[n]->audit();
    EXPECT_TRUE(audit.ok) << "node " << n << ": " << audit.detail;
    total += cores[n]->stats();
  }
  EXPECT_EQ(total.begins, total.ends + total.cancels + total.reclaims +
                              total.rejections);
  EXPECT_EQ(total.ends, kBase + kExtra);
  EXPECT_EQ(total.reclaims, 1u);
  for (int n = 0; n < kNodes; ++n) {
    EXPECT_EQ(queues[static_cast<std::size_t>(n)]->size(), 0u);
  }
}

TEST(ServiceRace, DrainRejoinRacesConcurrentSubmissions) {
  constexpr int kProducers = 3;
  constexpr std::uint64_t kPerProducer = 8000;
  constexpr std::uint64_t kTotal = kProducers * kPerProducer;
  constexpr double kCapacity = 15360.0 * 1024.0;

  core::AdmissionConfig cc;
  cc.llc_capacity_bytes = kCapacity;
  cc.policy = core::PolicyKind::kStrict;
  core::AdmissionCore core(cc);
  core.set_batch_waker([](const auto&) {});

  SubmissionQueue<sim::ThreadId> queue(1 << 12);
  std::atomic<bool> drained_all{false};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const auto thread =
            static_cast<sim::ThreadId>(p * kPerProducer + i);
        while (!queue.push(thread)) std::this_thread::yield();
      }
    });
  }

  // The drain loop: one batched admission + release pass per pop.
  std::thread drainer([&] {
    std::vector<sim::ThreadId> batch;
    std::uint64_t drained = 0;
    std::uint64_t admitted = 0;
    while (drained < kTotal) {
      batch.clear();
      if (queue.pop_batch(batch, 256) == 0) {
        std::this_thread::yield();
        continue;
      }
      drained += batch.size();
      std::vector<core::AdmitRequest> requests;
      requests.reserve(batch.size());
      for (const sim::ThreadId thread : batch) {
        core::AdmitRequest r;
        r.thread = thread;
        r.process = thread;
        r.demands = {{ResourceKind::kLLC, 1.0e-4 * kCapacity}};
        requests.push_back(std::move(r));
      }
      const auto tickets = core.admit_batch(std::move(requests), 0.0);
      std::vector<core::PeriodId> ids;
      ids.reserve(tickets.size());
      for (const auto& ticket : tickets) {
        ASSERT_TRUE(ticket.admitted);
        ids.push_back(ticket.id);
      }
      admitted += ids.size();
      core.release_batch(ids, 0.0);
    }
    EXPECT_EQ(drained, kTotal);
    EXPECT_EQ(admitted, kTotal);
    drained_all.store(true);
  });

  // Chaos: a "node" repeatedly drains (parks a big request that cannot
  // co-fit with its previous one) and rejoins (withdraws or releases) —
  // keeping the core bouncing between the calm and slow lanes.
  std::thread chaos([&] {
    const auto base = static_cast<sim::ThreadId>(kTotal + 10);
    core::PeriodId held = core::kInvalidPeriod;
    for (int i = 0; i < 600 && !drained_all.load(); ++i) {
      core::AdmitRequest big;
      big.thread = base + static_cast<sim::ThreadId>(i);
      big.process = big.thread;
      big.demands = {{ResourceKind::kLLC, 0.55 * kCapacity}};
      const core::AdmitTicket ticket = core.admit(std::move(big), 0.0);
      if (ticket.admitted) {
        if (held != core::kInvalidPeriod) core.release(held, {}, 0.0);
        held = ticket.id;
      } else {
        const core::WithdrawResult result = core.try_withdraw(ticket.id, 0.0);
        if (result == core::WithdrawResult::kAlreadyAdmitted) {
          core.release(ticket.id, {}, 0.0);
        }
      }
      std::this_thread::yield();
    }
    if (held != core::kInvalidPeriod) core.release(held, {}, 0.0);
  });

  for (std::thread& t : producers) t.join();
  drainer.join();
  chaos.join();

  // Quiescent audit + the extended ledger: nothing lost, nothing doubled.
  const core::AdmissionCore::AuditReport audit = core.audit();
  EXPECT_TRUE(audit.ok) << audit.detail;
  const core::MonitorStats stats = core.stats();
  EXPECT_EQ(stats.begins, stats.ends + stats.cancels + stats.reclaims +
                              stats.rejections);
  EXPECT_GE(stats.begins, kTotal);
  EXPECT_EQ(queue.size(), 0u);
}

}  // namespace
}  // namespace rda::service
