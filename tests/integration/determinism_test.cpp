// The simulator must be bit-deterministic: identical inputs give identical
// Joules/GFLOPS. Policy comparisons are meaningless otherwise.
#include <gtest/gtest.h>

#include "exp/harness.hpp"

namespace rda::exp {
namespace {

RunRow run_once(core::PolicyKind policy) {
  const auto specs = workload::table2_workloads();
  const auto spec = workload::scale_workload(
      workload::find_workload(specs, "Water_nsq"), 0.1, 4);
  RunConfig cfg;
  cfg.engine.machine = sim::MachineConfig::e5_2420();
  cfg.policy = policy;
  return run_workload(spec, cfg);
}

TEST(Determinism, BaselineRunsIdentical) {
  const RunRow a = run_once(core::PolicyKind::kLinuxDefault);
  const RunRow b = run_once(core::PolicyKind::kLinuxDefault);
  EXPECT_EQ(a.system_joules, b.system_joules);
  EXPECT_EQ(a.dram_joules, b.dram_joules);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.gflops, b.gflops);
  EXPECT_EQ(a.context_switches, b.context_switches);
}

TEST(Determinism, StrictRunsIdentical) {
  const RunRow a = run_once(core::PolicyKind::kStrict);
  const RunRow b = run_once(core::PolicyKind::kStrict);
  EXPECT_EQ(a.system_joules, b.system_joules);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.gate_blocks, b.gate_blocks);
}

TEST(Determinism, PoliciesActuallyDiffer) {
  // Sanity: determinism tests would pass trivially if policies were
  // ignored; make sure strict and baseline produce different schedules.
  const RunRow base = run_once(core::PolicyKind::kLinuxDefault);
  const RunRow strict = run_once(core::PolicyKind::kStrict);
  EXPECT_NE(base.makespan, strict.makespan);
  EXPECT_GT(strict.gate_blocks, 0u);
  EXPECT_EQ(base.gate_blocks, 0u);
}

}  // namespace
}  // namespace rda::exp
