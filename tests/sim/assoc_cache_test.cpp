#include "sim/assoc_cache.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "trace/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace rda::sim {
namespace {

using rda::util::KB;
using rda::util::MB;

AssocCacheConfig small_cache() {
  AssocCacheConfig cfg;
  cfg.capacity_bytes = KB(64);  // 1024 lines
  cfg.ways = 8;
  cfg.line_bytes = 64;
  return cfg;
}

TEST(AssocCache, GeometryDerived) {
  SetAssociativeCache cache(small_cache());
  EXPECT_EQ(cache.ways(), 8u);
  EXPECT_EQ(cache.sets(), 128u);
  EXPECT_EQ(cache.capacity_bytes(), KB(64));
}

TEST(AssocCache, PaperLlcGeometry) {
  SetAssociativeCache cache;  // defaults: 15 MB, 20-way
  EXPECT_EQ(cache.ways(), 20u);
  EXPECT_EQ(cache.sets(), 12288u);
}

TEST(AssocCache, MissThenHit) {
  SetAssociativeCache cache(small_cache());
  EXPECT_FALSE(cache.access(0x1000, 1));  // cold miss
  EXPECT_TRUE(cache.access(0x1000, 1));   // now resident
  EXPECT_TRUE(cache.access(0x1020, 1));   // same 64B line
  EXPECT_FALSE(cache.access(0x1040, 1));  // next line
  EXPECT_EQ(cache.stats().accesses, 4u);
  EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(AssocCache, WorkingSetWithinCapacityAllHitsAfterWarmup) {
  SetAssociativeCache cache(small_cache());
  const std::uint64_t lines = 512;  // half the cache
  for (std::uint64_t i = 0; i < lines; ++i) cache.access(i * 64, 1);
  AssocCacheStats warm;
  for (int pass = 0; pass < 4; ++pass) {
    for (std::uint64_t i = 0; i < lines; ++i) cache.access(i * 64, 1);
  }
  EXPECT_EQ(cache.stats().misses, lines);  // only the cold misses
  EXPECT_EQ(cache.occupancy_lines(1), lines);
  (void)warm;
}

TEST(AssocCache, WorkingSetOverCapacityThrashesUnderLru) {
  SetAssociativeCache cache(small_cache());
  const std::uint64_t lines = 2048;  // 2x capacity
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t i = 0; i < lines; ++i) cache.access(i * 64, 1);
  }
  // Cyclic sweep over 2x capacity under LRU: every access misses.
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(AssocCache, LruEvictsOldest) {
  AssocCacheConfig cfg;
  cfg.capacity_bytes = 2 * 64;  // one set, two ways
  cfg.ways = 2;
  cfg.line_bytes = 64;
  SetAssociativeCache cache(cfg);
  cache.access(0 * 64, 1);  // A
  cache.access(1 * 64, 1);  // B
  cache.access(0 * 64, 1);  // touch A (B becomes LRU)
  cache.access(2 * 64, 1);  // C evicts B
  EXPECT_TRUE(cache.access(0 * 64, 1));   // A still here
  EXPECT_FALSE(cache.access(1 * 64, 1));  // B gone
}

TEST(AssocCache, OccupancyTracksOwners) {
  SetAssociativeCache cache(small_cache());
  for (std::uint64_t i = 0; i < 100; ++i) cache.access(i * 64, 1);
  for (std::uint64_t i = 0; i < 50; ++i) cache.access(MB(1) + i * 64, 2);
  EXPECT_EQ(cache.occupancy_lines(1), 100u);
  EXPECT_EQ(cache.occupancy_lines(2), 50u);
  EXPECT_EQ(cache.occupancy_bytes(2), 50u * 64u);
  EXPECT_EQ(cache.occupancy_lines(99), 0u);
}

TEST(AssocCache, CompetingOwnersStealOccupancy) {
  SetAssociativeCache cache(small_cache());
  // Owner 1 fills the whole cache; owner 2 then streams through it.
  for (std::uint64_t i = 0; i < 1024; ++i) cache.access(i * 64, 1);
  EXPECT_EQ(cache.occupancy_lines(1), 1024u);
  for (std::uint64_t i = 0; i < 512; ++i) cache.access(MB(2) + i * 64, 2);
  EXPECT_EQ(cache.occupancy_lines(1) + cache.occupancy_lines(2), 1024u);
  EXPECT_EQ(cache.occupancy_lines(2), 512u);
}

TEST(AssocCache, PartitionConfinesFills) {
  SetAssociativeCache cache(small_cache());
  cache.set_partition(2, 2);  // owner 2 gets 2 of 8 ways
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t i = 0; i < 1024; ++i) cache.access(i * 64, 2);
  }
  // At most 2/8 of the cache despite touching all of it.
  EXPECT_LE(cache.occupancy_lines(2), 2u * cache.sets());
  cache.clear_partition(2);
  for (std::uint64_t i = 0; i < 1024; ++i) cache.access(i * 64, 2);
  EXPECT_GT(cache.occupancy_lines(2), 2u * cache.sets());
}

TEST(AssocCache, PartitionProtectsVictim) {
  SetAssociativeCache cache(small_cache());
  // Owner 1 (high reuse) owns the cache; owner 2 is a confined streamer.
  for (std::uint64_t i = 0; i < 512; ++i) cache.access(i * 64, 1);
  cache.set_partition(2, 1);
  for (std::uint64_t i = 0; i < 100000; ++i) {
    cache.access(MB(4) + i * 64, 2);
  }
  // Owner 1 keeps at least the 7 unpartitioned ways' worth of lines.
  EXPECT_GE(cache.occupancy_lines(1), 512u - cache.sets());
  // Re-touching its working set is mostly hits.
  const AssocCacheStats before = cache.owner_stats(1);
  for (std::uint64_t i = 0; i < 512; ++i) cache.access(i * 64, 1);
  const AssocCacheStats after = cache.owner_stats(1);
  // Exactly the protected lines hit (512 - one way's worth = 384).
  EXPECT_GE(after.hits - before.hits, 380u);
}

TEST(AssocCache, FlushOwnerEvictsAllItsLines) {
  SetAssociativeCache cache(small_cache());
  for (std::uint64_t i = 0; i < 200; ++i) cache.access(i * 64, 1);
  for (std::uint64_t i = 0; i < 100; ++i) cache.access(MB(1) + i * 64, 2);
  cache.flush_owner(1);
  EXPECT_EQ(cache.occupancy_lines(1), 0u);
  EXPECT_EQ(cache.occupancy_lines(2), 100u);
  EXPECT_FALSE(cache.access(0, 1));  // cold again
}

TEST(AssocCache, FlushCountsInvalidationsNotEvictions) {
  // Regression: flush_owner used to book its invalidations as evictions,
  // inflating the replacement count the partitioning logic reasons about.
  SetAssociativeCache cache(small_cache());
  for (std::uint64_t i = 0; i < 200; ++i) cache.access(i * 64, 1);
  for (std::uint64_t i = 0; i < 100; ++i) cache.access(MB(1) + i * 64, 2);
  const AssocCacheStats before = cache.stats();
  EXPECT_EQ(before.evictions, 0u);  // cache never filled: no replacements
  EXPECT_EQ(before.invalidations, 0u);

  cache.flush_owner(1);
  const AssocCacheStats after = cache.stats();
  EXPECT_EQ(after.evictions, before.evictions);  // unchanged by the flush
  EXPECT_EQ(after.invalidations, 200u);
  // Owner-level stats: invalidations booked to the flushed owner only, and
  // its access history survives the flush.
  EXPECT_EQ(cache.owner_stats(1).invalidations, 200u);
  EXPECT_EQ(cache.owner_stats(2).invalidations, 0u);
  EXPECT_EQ(cache.owner_stats(1).accesses, 200u);
  EXPECT_EQ(cache.owner_stats(1).misses, 200u);
}

TEST(AssocCache, ZeroWayPartitionRejected) {
  SetAssociativeCache cache(small_cache());
  EXPECT_THROW(cache.set_partition(1, 0), util::CheckFailure);
}

TEST(AssocCache, SampledGeometrySimulatesSubsetScalesCounts) {
  AssocCacheConfig cfg;  // paper LLC: 15 MB, 20-way, 12288 sets
  cfg.set_sample = 16;
  SetAssociativeCache cache(cfg);
  EXPECT_EQ(cache.sets(), 12288u);  // logical geometry unchanged
  EXPECT_GT(cache.sampled_sets(), 0u);
  EXPECT_LT(cache.sampled_sets(), cache.sets() / 8);  // roughly 1/16

  // A touch landing in an unsampled set is a free "hit" with no bookkeeping;
  // counts of sampled touches are scaled back up by sets/sampled_sets.
  for (std::uint64_t i = 0; i < 200000; ++i) cache.access(i * 64, 1);
  const AssocCacheStats stats = cache.stats();
  EXPECT_GT(stats.accesses, 0u);
  // Scaled accesses land near the true count (hash selection is uniform).
  EXPECT_NEAR(static_cast<double>(stats.accesses), 200000.0, 0.25 * 200000.0);
}

TEST(AssocCache, SampledMissRatioTracksFullModel) {
  // Same random trace through a full and a 1/16-sampled cache: miss ratios
  // must agree within the 2% absolute budget validate_cache_model enforces.
  for (const double ws_mb : {4.0, 12.0, 20.0}) {
    AssocCacheConfig full_cfg;
    AssocCacheConfig sampled_cfg;
    sampled_cfg.set_sample = 16;
    SetAssociativeCache full(full_cfg);
    SetAssociativeCache sampled(sampled_cfg);

    trace::RegionSpec spec;
    spec.base = 0;
    spec.size_bytes = static_cast<std::uint64_t>(MB(ws_mb));
    spec.pattern = trace::Pattern::kRandomUniform;
    spec.access_granularity = 64;
    trace::RegionAccessSource src_a(spec, 400000, 21);
    trace::RegionAccessSource src_b(spec, 400000, 21);
    trace::TraceRecord rec;
    while (src_a.next(rec)) full.access(rec.value, 1);
    while (src_b.next(rec)) sampled.access(rec.value, 1);

    const double err = std::fabs(sampled.stats().miss_ratio() -
                                 full.stats().miss_ratio());
    EXPECT_LE(err, 0.02) << "ws " << ws_mb << " MB";
    // Scaled occupancy approximates the true line count.
    const double occ_full = static_cast<double>(full.occupancy_lines(1));
    const double occ_sampled = static_cast<double>(sampled.occupancy_lines(1));
    EXPECT_NEAR(occ_sampled, occ_full, 0.15 * occ_full + 64.0)
        << "ws " << ws_mb << " MB";
  }
}

// Validation against the fluid occupancy model: a hot/cold pattern whose
// working set fits should show a high hit ratio; as the working set grows
// past capacity the hit ratio must fall monotonically — the same shape
// compute_rate assumes via resident_fraction.
class AssocVsFluid : public ::testing::TestWithParam<double> {};

TEST_P(AssocVsFluid, HitRatioFallsWithOversubscription) {
  const double ws_scale = GetParam();  // working set / capacity
  SetAssociativeCache cache(small_cache());
  const std::uint64_t ws_bytes =
      static_cast<std::uint64_t>(ws_scale * KB(64));
  trace::RegionSpec spec;
  spec.base = 0;
  spec.size_bytes = std::max<std::uint64_t>(ws_bytes, 1024);
  spec.pattern = trace::Pattern::kRandomUniform;
  spec.access_granularity = 64;
  trace::RegionAccessSource src(spec, 200000, 7);
  trace::TraceRecord rec;
  while (src.next(rec)) cache.access(rec.value, 1);

  const double hit_ratio = cache.stats().hit_ratio();
  if (ws_scale <= 0.5) {
    EXPECT_GT(hit_ratio, 0.95);
  } else if (ws_scale >= 4.0) {
    EXPECT_LT(hit_ratio, 0.5);
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, AssocVsFluid,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0, 4.0, 8.0));

}  // namespace
}  // namespace rda::sim
