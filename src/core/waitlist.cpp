#include "core/waitlist.hpp"

#include <algorithm>

namespace rda::core {

std::vector<Waitlist::Entry> Waitlist::drain_admissible(
    const std::function<bool(const Entry&)>& admit, bool head_only) {
  std::vector<Entry> admitted;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (admit(*it)) {
      admitted.push_back(*it);
      it = entries_.erase(it);
    } else if (head_only) {
      break;
    } else {
      ++it;
    }
  }
  return admitted;
}

std::vector<Waitlist::Entry> Waitlist::remove_process(
    sim::ProcessId process) {
  std::vector<Entry> removed;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->process == process) {
      removed.push_back(*it);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return removed;
}

std::size_t Waitlist::count_process(sim::ProcessId process) const {
  return static_cast<std::size_t>(
      std::count_if(entries_.begin(), entries_.end(),
                    [&](const Entry& e) { return e.process == process; }));
}

}  // namespace rda::core
