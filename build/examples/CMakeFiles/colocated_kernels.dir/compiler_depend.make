# Empty compiler generated dependencies file for colocated_kernels.
# This may be replaced when dependencies are built.
