#include "blas/level3.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rda::blas {

namespace {

/// Inner kernel: C[i0:i1, j0:j1] += A[i0:i1, l0:l1] * B[l0:l1, j0:j1].
void gemm_tile(std::size_t i0, std::size_t i1, std::size_t j0, std::size_t j1,
               std::size_t l0, std::size_t l1, std::size_t n, std::size_t k,
               double alpha, const double* a, const double* b, double* c) {
  for (std::size_t i = i0; i < i1; ++i) {
    const double* arow = a + i * k;
    double* crow = c + i * n;
    for (std::size_t l = l0; l < l1; ++l) {
      const double av = alpha * arow[l];
      const double* brow = b + l * n;
      for (std::size_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace

void dgemm(std::size_t m, std::size_t n, std::size_t k, double alpha,
           std::span<const double> a, std::span<const double> b, double beta,
           std::span<double> c) {
  RDA_CHECK(a.size() >= m * k);
  RDA_CHECK(b.size() >= k * n);
  RDA_CHECK(c.size() >= m * n);
  for (std::size_t i = 0; i < m * n; ++i) c[i] *= beta;
  constexpr std::size_t B = kGemmBlock;
  for (std::size_t i0 = 0; i0 < m; i0 += B) {
    const std::size_t i1 = std::min(m, i0 + B);
    for (std::size_t l0 = 0; l0 < k; l0 += B) {
      const std::size_t l1 = std::min(k, l0 + B);
      for (std::size_t j0 = 0; j0 < n; j0 += B) {
        const std::size_t j1 = std::min(n, j0 + B);
        gemm_tile(i0, i1, j0, j1, l0, l1, n, k, alpha, a.data(), b.data(),
                  c.data());
      }
    }
  }
}

void dgemm_naive(std::size_t m, std::size_t n, std::size_t k, double alpha,
                 std::span<const double> a, std::span<const double> b,
                 double beta, std::span<double> c) {
  RDA_CHECK(a.size() >= m * k);
  RDA_CHECK(b.size() >= k * n);
  RDA_CHECK(c.size() >= m * n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t l = 0; l < k; ++l) acc += a[i * k + l] * b[l * n + j];
      c[i * n + j] = alpha * acc + beta * c[i * n + j];
    }
  }
}

void dsyrk_upper(std::size_t n, std::size_t k, double alpha,
                 std::span<const double> a, double beta, std::span<double> c) {
  RDA_CHECK(a.size() >= n * k);
  RDA_CHECK(c.size() >= n * n);
  for (std::size_t i = 0; i < n; ++i) {
    const double* ai = &a[i * k];
    for (std::size_t j = i; j < n; ++j) {
      const double* aj = &a[j * k];
      double acc = 0.0;
      for (std::size_t l = 0; l < k; ++l) acc += ai[l] * aj[l];
      c[i * n + j] = alpha * acc + beta * c[i * n + j];
    }
  }
}

void dtrmm_ru(std::size_t m, std::size_t n, std::span<const double> a,
              std::span<double> b) {
  RDA_CHECK(a.size() >= n * n);
  RDA_CHECK(b.size() >= m * n);
  // B := B*U. Column j of the result depends on columns 0..j of B, so
  // sweep columns right-to-left to update in place.
  for (std::size_t i = 0; i < m; ++i) {
    double* row = &b[i * n];
    for (std::size_t jj = n; jj-- > 0;) {
      double acc = 0.0;
      for (std::size_t l = 0; l <= jj; ++l) acc += row[l] * a[l * n + jj];
      row[jj] = acc;
    }
  }
}

void dtrsm_ru(std::size_t m, std::size_t n, std::span<const double> a,
              std::span<double> b) {
  RDA_CHECK(a.size() >= n * n);
  RDA_CHECK(b.size() >= m * n);
  // Solve X*U = B row-wise: x[j] = (b[j] - sum_{l<j} x[l]*U[l][j]) / U[j][j],
  // left-to-right (forward substitution in the column index).
  for (std::size_t i = 0; i < m; ++i) {
    double* row = &b[i * n];
    for (std::size_t j = 0; j < n; ++j) {
      double acc = row[j];
      for (std::size_t l = 0; l < j; ++l) acc -= row[l] * a[l * n + j];
      RDA_CHECK_MSG(a[j * n + j] != 0.0, "singular triangular matrix");
      row[j] = acc / a[j * n + j];
    }
  }
}

}  // namespace rda::blas
