// Unit coverage for the drain-shard primitives: the tenant→shard routing
// hash and the seniority-ordered inter-shard mailbox (DESIGN §16). The
// mailbox ordering rule is the load-bearing one — the frontend's lockstep
// merge is only K-invariant because a steal and a reroute landing in the
// same round replay in decision order, not arrival order.
#include "service/shard.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

namespace rda::service {
namespace {

TEST(ShardHash, TenantShardIsDeterministicAndInRange) {
  for (const int shards : {1, 3, 4, 16}) {
    for (std::uint64_t tenant = 1; tenant <= 500; ++tenant) {
      const int s = shard_of_tenant(7, tenant, shards);
      ASSERT_GE(s, 0);
      ASSERT_LT(s, shards);
      // A tenant's shard never moves: the whole sharding contract rests
      // on push-time routing agreeing with every later mailbox send.
      ASSERT_EQ(s, shard_of_tenant(7, tenant, shards));
    }
  }
}

TEST(ShardHash, SpreadsTenantsAcrossAllShards) {
  // 500 tenants over 16 shards: every shard should own some tenants (a
  // degenerate hash would funnel the fleet through one drain queue).
  std::set<int> hit;
  for (std::uint64_t tenant = 1; tenant <= 500; ++tenant) {
    hit.insert(shard_of_tenant(1, tenant, 16));
  }
  EXPECT_EQ(hit.size(), 16u);
}

TEST(ShardHash, SeedMovesTheAssignment) {
  // Different fleet seeds shard tenants differently — at least one of the
  // first few tenants must land elsewhere.
  bool moved = false;
  for (std::uint64_t tenant = 1; tenant <= 32 && !moved; ++tenant) {
    moved = shard_of_tenant(1, tenant, 16) != shard_of_tenant(2, tenant, 16);
  }
  EXPECT_TRUE(moved);
}

TEST(ShardHash, NodeOwnershipPartitionsNodes) {
  // Drainer s owns the nodes with n % shards == s; with more shards than
  // nodes the extras own nothing — but every node has exactly one owner.
  for (const int shards : {1, 2, 3, 8}) {
    for (int node = 0; node < 4; ++node) {
      const int owner = shard_of_node(node, shards);
      ASSERT_GE(owner, 0);
      ASSERT_LT(owner, shards);
      ASSERT_EQ(owner, node % shards);
    }
  }
}

TEST(ShardMailbox, DrainReturnsSeniorityOrderRegardlessOfSendOrder) {
  Mailbox<int> box;
  box.send(5, 50);
  box.send(1, 10);
  box.send(3, 30);
  EXPECT_EQ(box.size(), 3u);
  EXPECT_FALSE(box.empty());

  std::vector<Mailbox<int>::Entry> out;
  EXPECT_EQ(box.drain(out), 3u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].seniority, 1u);
  EXPECT_EQ(out[0].value, 10);
  EXPECT_EQ(out[1].seniority, 3u);
  EXPECT_EQ(out[2].seniority, 5u);
  EXPECT_TRUE(box.empty());

  // Drain appends: a second round lands after the first in the same out
  // vector, exactly how the frontend accumulates across shards.
  box.send(2, 20);
  EXPECT_EQ(box.drain(out), 1u);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[3].seniority, 2u);
}

TEST(ShardMailbox, StealAndRerouteInTheSameRoundReplayInDecisionOrder) {
  // The frontend's merge rule, in miniature: a node death reroutes
  // submission A (decision #0) and a steal then displaces submission B
  // (decision #1), but B's send lands in its shard's box before A's does.
  // After draining ALL boxes and sorting by seniority — exactly what
  // merge_drain_batch does — the replay order is the decision order, so
  // the batch is identical to what a single-shard run would build.
  Mailbox<char> shard0;
  Mailbox<char> shard1;
  shard1.send(1, 'B');  // the steal's send happens to land first
  shard0.send(0, 'A');  // the reroute was decided first

  std::vector<Mailbox<char>::Entry> merged;
  shard0.drain(merged);
  shard1.drain(merged);
  std::sort(merged.begin(), merged.end(),
            [](const Mailbox<char>::Entry& a, const Mailbox<char>::Entry& b) {
              return a.seniority < b.seniority;
            });

  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].value, 'A');
  EXPECT_EQ(merged[1].value, 'B');
}

}  // namespace
}  // namespace rda::service
