# Empty dependencies file for fig9_gflops.
# This may be replaced when dependencies are built.
