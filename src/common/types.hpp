// Fundamental vocabulary types shared across the whole library.
//
// These mirror the arguments of the paper's user-level API (Fig. 4):
//   pp_id = pp_begin(RESOURCE_LLC, MB(6.3), REUSE_HIGH);
// The profiler categorizes measured reuse ratios into the same three levels
// the paper's Table 2 uses (low / med / high).
#pragma once

#include <cstdint>
#include <string_view>

namespace rda {

/// Hardware resources a progress period can target. The paper evaluates the
/// shared last-level cache but designs the resource monitor as a table keyed
/// by resource (§3.2, "an entry is allocated to each resource").
enum class ResourceKind : std::uint8_t {
  kLLC,          ///< shared last-level cache capacity (bytes)
  kMemBandwidth, ///< DRAM bandwidth (bytes/second)
  kL2,           ///< private L2 capacity (bytes) — available for extensions
  kEnergyBudget, ///< package power budget (watts) — RAPL-style energy cap
};

inline constexpr std::size_t kNumResourceKinds = 4;

constexpr std::string_view to_string(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kLLC: return "LLC";
    case ResourceKind::kMemBandwidth: return "MemBW";
    case ResourceKind::kL2: return "L2";
    case ResourceKind::kEnergyBudget: return "Energy";
  }
  return "?";
}

/// Relative temporal-locality factor of a progress period (§2.2): how heavily
/// the working set will be reused while the period runs.
enum class ReuseLevel : std::uint8_t {
  kLow,     ///< streaming, little to gain from cache residency (BLAS-1)
  kMedium,  ///< some reuse (BLAS-2, matrix-vector)
  kHigh,    ///< heavy reuse (BLAS-3, blocked matrix-matrix)
};

constexpr std::string_view to_string(ReuseLevel level) {
  switch (level) {
    case ReuseLevel::kLow: return "low";
    case ReuseLevel::kMedium: return "med";
    case ReuseLevel::kHigh: return "high";
  }
  return "?";
}

/// Thresholds for mapping a measured reuse ratio (average accesses per unique
/// cache line within a window, §2.4) onto the three levels. Values are
/// configurable because the paper tuned them per granularity.
struct ReuseThresholds {
  double medium_at = 2.0;  ///< ratio >= this → at least medium
  double high_at = 8.0;    ///< ratio >= this → high
};

constexpr ReuseLevel categorize_reuse(double reuse_ratio,
                                      ReuseThresholds t = {}) {
  if (reuse_ratio >= t.high_at) return ReuseLevel::kHigh;
  if (reuse_ratio >= t.medium_at) return ReuseLevel::kMedium;
  return ReuseLevel::kLow;
}

/// Paper §2.3 spells the API constants in SHOUTY case; provide aliases so the
/// quickstart example reads exactly like the paper's Figure 4.
inline constexpr ResourceKind RESOURCE_LLC = ResourceKind::kLLC;
inline constexpr ResourceKind RESOURCE_MEM_BW = ResourceKind::kMemBandwidth;
inline constexpr ResourceKind RESOURCE_ENERGY = ResourceKind::kEnergyBudget;
inline constexpr ReuseLevel REUSE_LOW = ReuseLevel::kLow;
inline constexpr ReuseLevel REUSE_MED = ReuseLevel::kMedium;
inline constexpr ReuseLevel REUSE_HIGH = ReuseLevel::kHigh;

}  // namespace rda
