file(REMOVE_RECURSE
  "CMakeFiles/rda_blas.dir/level1.cpp.o"
  "CMakeFiles/rda_blas.dir/level1.cpp.o.d"
  "CMakeFiles/rda_blas.dir/level2.cpp.o"
  "CMakeFiles/rda_blas.dir/level2.cpp.o.d"
  "CMakeFiles/rda_blas.dir/level3.cpp.o"
  "CMakeFiles/rda_blas.dir/level3.cpp.o.d"
  "librda_blas.a"
  "librda_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rda_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
