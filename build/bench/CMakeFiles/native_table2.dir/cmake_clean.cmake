file(REMOVE_RECURSE
  "CMakeFiles/native_table2.dir/native_table2.cpp.o"
  "CMakeFiles/native_table2.dir/native_table2.cpp.o.d"
  "native_table2"
  "native_table2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_table2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
