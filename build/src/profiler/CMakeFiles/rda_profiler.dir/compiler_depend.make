# Empty compiler generated dependencies file for rda_profiler.
# This may be replaced when dependencies are built.
