// Loop-nest metadata — the stand-in for Dyninst ParseAPI.
//
// The paper samples retired-JMP addresses inside each profiling window and
// asks ParseAPI for the loop-nest structure of the binary, then uses "the
// outermost loop that contains the identified progress period" as the
// period's boundary (§2.4). We model the binary's loop structure as a tree
// of PC ranges; the profiler's LoopMapper performs the same outermost-loop
// query against it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace rda::trace {

/// Identifies a loop within a LoopNest. Index into LoopNest::loops().
using LoopId = std::uint32_t;
inline constexpr LoopId kNoLoop = static_cast<LoopId>(-1);

/// A single natural loop: the half-open PC range of its body and its
/// position in the nest.
struct LoopInfo {
  std::string name;          ///< source-level label, e.g. "dgemm.k"
  std::uint64_t pc_begin = 0;
  std::uint64_t pc_end = 0;  ///< exclusive
  LoopId parent = kNoLoop;   ///< enclosing loop, kNoLoop for top level
  int depth = 0;             ///< 0 for top-level loops

  bool contains(std::uint64_t pc) const {
    return pc >= pc_begin && pc < pc_end;
  }
};

/// Immutable loop-nest tree for one "binary". Built top-down; children must
/// be strictly nested inside their parent's PC range.
class LoopNest {
 public:
  /// Adds a top-level loop; returns its id.
  LoopId add_loop(std::string name, std::uint64_t pc_begin,
                  std::uint64_t pc_end);
  /// Adds a loop nested inside `parent`; throws if the range escapes it.
  LoopId add_nested(LoopId parent, std::string name, std::uint64_t pc_begin,
                    std::uint64_t pc_end);

  /// Innermost loop whose body contains `pc`, if any.
  std::optional<LoopId> innermost_containing(std::uint64_t pc) const;

  /// Outermost (depth-0 ancestor) loop containing `pc`, if any. This is the
  /// query §2.4 uses to place progress-period boundaries.
  std::optional<LoopId> outermost_containing(std::uint64_t pc) const;

  /// Walks up from `loop` to its depth-0 ancestor.
  LoopId outermost_ancestor(LoopId loop) const;

  const LoopInfo& loop(LoopId id) const { return loops_.at(id); }
  const std::vector<LoopInfo>& loops() const { return loops_; }
  std::size_t size() const { return loops_.size(); }

 private:
  std::vector<LoopInfo> loops_;
};

}  // namespace rda::trace
