// Native analogue of the Table-2 BLAS workloads: real worker threads
// executing the real BLAS kernels, each kernel wrapped in a progress period
// through the real userspace AdmissionGate.
//
// This is the part of the evaluation that needs no simulator — on a
// multi-core machine with a shared LLC the three policies produce the
// paper's effect directly; on a small CI box it exercises the full native
// stack end-to-end and reports the gate statistics.
#pragma once

#include <optional>

#include "core/policy.hpp"
#include "runtime/gate.hpp"

namespace rda::workload {

struct NativeRunConfig {
  /// nullopt = Linux default (no gate at all).
  std::optional<core::PolicyKind> policy;
  double llc_capacity_bytes = 15728640.0;
  double oversubscription = 2.0;
  int threads = 4;
  /// Kernel invocations per worker thread.
  int repeats = 4;
  /// Scales the operand dimensions (1.0 = defaults below).
  double size_scale = 1.0;
};

struct NativeRunResult {
  double seconds = 0.0;
  double flops = 0.0;
  std::uint64_t gate_waits = 0;
  double gate_wait_seconds = 0.0;

  double gflops() const { return seconds > 0.0 ? flops / seconds / 1e9 : 0.0; }
};

/// Runs the BLAS-`level` workload (level in {1,2,3}) natively. Workers cycle
/// through the level's four kernels (Table 2), each invocation wrapped in a
/// period declaring its true operand footprint with the level's reuse class.
NativeRunResult run_native_blas(int level, const NativeRunConfig& config);

}  // namespace rda::workload
