# Empty dependencies file for native_table2.
# This may be replaced when dependencies are built.
