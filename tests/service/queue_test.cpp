#include "service/queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

namespace rda::service {
namespace {

TEST(SubmissionQueue, FifoSingleThread) {
  SubmissionQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.size(), 5u);
  int v = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.pop(v));
  EXPECT_EQ(q.size(), 0u);
}

TEST(SubmissionQueue, FullQueueRejectsWithoutBlocking) {
  SubmissionQueue<int> q(4);  // rounds to capacity 4
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_FALSE(q.push(99));
  int v = -1;
  ASSERT_TRUE(q.pop(v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(q.push(99));  // freed slot is reusable
}

TEST(SubmissionQueue, PopBatchTakesInOrderUpToMax) {
  SubmissionQueue<int> q(16);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.push(i));
  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q.pop_batch(out, 100), 6u);
  EXPECT_EQ(out.size(), 10u);
  EXPECT_EQ(out.back(), 9);
}

TEST(SubmissionQueue, WrapAroundKeepsFifo) {
  SubmissionQueue<int> q(4);
  int v = -1;
  for (int round = 0; round < 100; ++round) {
    EXPECT_TRUE(q.push(2 * round));
    EXPECT_TRUE(q.push(2 * round + 1));
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, 2 * round);
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, 2 * round + 1);
  }
}

TEST(SubmissionQueue, MultiProducerSingleConsumerLosesNothing) {
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20000;
  SubmissionQueue<std::uint64_t> q(1 << 10);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t value =
            static_cast<std::uint64_t>(p) * kPerProducer + i;
        while (!q.push(value)) std::this_thread::yield();
      }
    });
  }

  // Single consumer: per-producer values must arrive in producer order,
  // and every value must arrive exactly once.
  std::vector<std::uint64_t> next(kProducers, 0);
  std::uint64_t consumed = 0;
  std::vector<std::uint64_t> batch;
  while (consumed < kProducers * kPerProducer) {
    batch.clear();
    if (q.pop_batch(batch, 256) == 0) {
      std::this_thread::yield();
      continue;
    }
    for (const std::uint64_t value : batch) {
      const auto p = static_cast<std::size_t>(value / kPerProducer);
      const std::uint64_t i = value % kPerProducer;
      ASSERT_LT(p, static_cast<std::size_t>(kProducers));
      ASSERT_EQ(i, next[p]) << "producer " << p << " order violated";
      ++next[p];
      ++consumed;
    }
  }
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(q.size(), 0u);
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(next[p], kPerProducer);
}

}  // namespace
}  // namespace rda::service
