// Ablation: baseline scheduler structure — one global runqueue (perfectly
// balanced, the default) vs per-core runqueues with idle stealing (closer
// to real CFS). The paper's results should not depend on this modelling
// choice; this bench verifies that and quantifies migration traffic.
#include <cstdio>

#include "exp/harness.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rda;
  const bool full = argc > 1 && std::string(argv[1]) == "--full";
  std::printf("=== Ablation: global runqueue vs per-core runqueues ===\n\n");

  // Matrix: 2 workloads x (2 scheduler modes x 2 policies).
  const auto all_specs = workload::table2_workloads();
  std::vector<workload::WorkloadSpec> specs;
  for (const char* name : {"BLAS-3", "Water_nsq"}) {
    specs.push_back(
        full ? workload::find_workload(all_specs, name)
             : workload::scale_workload(
                   workload::find_workload(all_specs, name), 0.25, 2));
  }
  std::vector<exp::RunConfig> configs;
  for (const auto mode : {sim::SchedulerMode::kGlobalQueue,
                          sim::SchedulerMode::kPerCoreQueues}) {
    for (const auto policy :
         {core::PolicyKind::kLinuxDefault, core::PolicyKind::kStrict}) {
      exp::RunConfig cfg;
      cfg.engine.machine = sim::MachineConfig::e5_2420();
      cfg.engine.scheduler = mode;
      cfg.policy = policy;
      configs.push_back(cfg);
    }
  }
  const std::vector<exp::RunRow> rows =
      exp::run_matrix(specs, configs, exp::parse_jobs(argc, argv));

  for (std::size_t s = 0; s < specs.size(); ++s) {
    util::Table table({"scheduler", "policy", "GFLOPS", "system J",
                       "ctx switches", "migrations"});
    for (std::size_t c = 0; c < configs.size(); ++c) {
      const exp::RunRow& row = rows[s * configs.size() + c];
      table.begin_row()
          .add_cell(configs[c].engine.scheduler ==
                            sim::SchedulerMode::kGlobalQueue
                        ? "global queue"
                        : "per-core + stealing")
          .add_cell(row.policy)
          .add_cell(row.gflops, 2)
          .add_cell(row.system_joules, 0)
          .add_cell(row.context_switches)
          .add_cell(row.migrations);
    }
    std::printf("%s\n%s\n", specs[s].name.c_str(), table.render().c_str());
  }
  std::printf("(the RDA benefit is robust to the baseline scheduler's queue "
              "structure — the interference it removes is in the cache, not "
              "the runqueue)\n");
  return 0;
}
