# Empty dependencies file for micro_gate.
# This may be replaced when dependencies are built.
