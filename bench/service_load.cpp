// service_load — traffic-scale service front-end benchmark: open-loop
// arrival shapes through the batched admission drain, locality-aware vs
// random routing, plus a node-death-at-full-load fault cell. Emits
// BENCH_service.json for trend tracking and gates against the committed
// snapshot.
//
//   service_load [--arrivals N] [--jobs J] [--shards K]
//                [--out BENCH_service.json] [--baseline PATH]
//                [--quick] [--csv]
//
// Two kinds of metrics live here and are gated differently:
//   * Virtual-time cells (shape x routing, fault) are seeded and
//     deterministic — byte-identical for any --jobs value AND any
//     --shards value (tier1.sh cmps the --csv output across fan-outs and
//     across drain-shard counts; the lockstep merge makes K a pure
//     concurrency knob). Their goodput/p99 regression gate against the
//     committed baseline needs no machine calibration.
//   * The wall-clock pump cells measure this machine today: batched drain
//     vs per-call admission on slow-lane-pinned cores, and the
//     drain-scaling point (4 drain shards over a 4-node fleet vs one
//     drainer). Both are only meaningful with >=8 real cores; below that
//     the JSON carries an explicit "skipped" reason instead of a
//     mysterious null, and the committed mops floor is scaled by the
//     calib.hpp drift kernel.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "calib.hpp"
#include "exp/harness.hpp"
#include "service/arrival.hpp"
#include "service/frontend.hpp"
#include "service/pump.hpp"
#include "util/atomic_file.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace {

using namespace rda;
using rda::util::MB;

struct Cell {
  std::string name;
  service::ArrivalShape shape;
  service::RoutePolicy routing;
  bool fault = false;
};

struct CellResult {
  Cell cell;
  service::ServiceReport report;
};

std::vector<Cell> build_cells() {
  using service::ArrivalShape;
  using service::RoutePolicy;
  std::vector<Cell> cells;
  for (const ArrivalShape shape :
       {ArrivalShape::kPoisson, ArrivalShape::kDiurnal,
        ArrivalShape::kBursty}) {
    for (const RoutePolicy routing :
         {RoutePolicy::kLocalityAware, RoutePolicy::kRandom}) {
      Cell cell;
      cell.shape = shape;
      cell.routing = routing;
      cell.name = std::string(service::to_string(shape)) + "_" +
                  (routing == RoutePolicy::kLocalityAware ? "locality"
                                                          : "random");
      cells.push_back(cell);
    }
  }
  // Node death at full load, drained and re-routed mid-run.
  Cell fault;
  fault.shape = ArrivalShape::kPoisson;
  fault.routing = RoutePolicy::kLocalityAware;
  fault.fault = true;
  fault.name = "poisson_locality_node_death";
  cells.push_back(fault);
  return cells;
}

CellResult run_cell(const Cell& cell, std::uint64_t arrivals, int shards) {
  service::ArrivalConfig arr;
  arr.shape = cell.shape;
  arr.rate = 9000.0;
  arr.seed = 29;
  // 30% hot-tenant skew: enough footprint reuse for locality to pay, while
  // the hot tenant's home node stays under capacity at the diurnal/bursty
  // peaks (a 0.5 share pegs it there and load imbalance swamps the warmth).
  arr.tenants = 8;
  arr.hot_tenant_share = 0.3;
  arr.demand_mean_bytes = static_cast<double>(MB(2));
  arr.service_mean_seconds = 2.0e-3;

  service::ServiceConfig cfg;
  cfg.nodes = 4;
  cfg.drain_shards = shards;
  cfg.node_llc_bytes = static_cast<double>(MB(15));
  cfg.routing = cell.routing;
  if (cell.fault) {
    // "Node death at full load": push the offered rate to ~80% of the
    // fleet's service capacity so the dying node is carrying a steady
    // complement of parked and in-flight work to reroute, without tipping
    // the ladder into its shed/recover oscillation (which periodically
    // empties every node and would make the reroute count a coin flip).
    arr.rate = 12000.0;
    const double span =
        static_cast<double>(arrivals) / arr.rate;  // expected run length
    cfg.fault.node = 1;
    cfg.fault.fail_at_seconds = 0.2 * span;
    cfg.fault.recover_at_seconds = 0.5 * span;
  }

  service::ArrivalGenerator gen(arr);
  service::ServiceFrontEnd frontend(cfg);
  CellResult result;
  result.cell = cell;
  result.report = frontend.run(gen, arrivals);

  // Ledger invariants every cell must satisfy, fault or not: each arrival
  // resolves exactly once, and nothing is left queued or in flight.
  const service::ServiceStats& s = result.report.stats;
  RDA_CHECK_MSG(s.completed + s.shed == arrivals,
                "service cell lost or duplicated arrivals");
  RDA_CHECK_MSG(s.still_queued == 0, "service cell left work queued");
  RDA_CHECK_MSG(s.overflow_drops == 0, "service cell overflowed its queue");
  if (cell.fault) {
    RDA_CHECK_MSG(s.reroutes > 0, "fault cell saw no node-death reroutes");
  }
  return result;
}

void print_csv(const std::vector<CellResult>& results) {
  // `mailboxed` is deliberately in the byte-compared CSV: it must equal
  // stolen + reroutes for EVERY shard count, so the cross-K cmp in
  // tier1.sh also pins the mailbox ledger.
  std::printf(
      "cell,completed,shed,steals,reroutes,mailboxed,goodput,"
      "work_per_second,p50,p95,p99,checksum\n");
  for (const CellResult& r : results) {
    std::printf(
        "%s,%llu,%llu,%llu,%llu,%llu,%.17g,%.17g,%.17g,%.17g,%.17g,%llx\n",
        r.cell.name.c_str(),
        static_cast<unsigned long long>(r.report.stats.completed),
        static_cast<unsigned long long>(r.report.stats.shed),
        static_cast<unsigned long long>(r.report.stats.steals),
        static_cast<unsigned long long>(r.report.stats.reroutes),
        static_cast<unsigned long long>(r.report.stats.mailboxed),
        r.report.goodput_per_second, r.report.work_per_second,
        r.report.admission_latency.p50(),
        r.report.admission_latency.p95(),
        r.report.admission_latency.p99(),
        static_cast<unsigned long long>(r.report.checksum));
  }
}

/// Minimal extractor for the flat-ish JSON this binary writes: finds the
/// first `"key": <number>` after `anchor` (cell name), or from the start
/// when `anchor` is empty. Returns fallback when absent or null.
double json_number_after(const std::string& text, const std::string& anchor,
                         const std::string& key, double fallback) {
  std::size_t from = 0;
  if (!anchor.empty()) {
    from = text.find("\"" + anchor + "\"");
    if (from == std::string::npos) return fallback;
  }
  const std::size_t at = text.find("\"" + key + "\":", from);
  if (at == std::string::npos) return fallback;
  const char* p = text.c_str() + at + key.size() + 3;
  char* end = nullptr;
  const double value = std::strtod(p, &end);
  return end == p ? fallback : value;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = exp::has_flag(argc, argv, "--quick");
  const bool csv = exp::has_flag(argc, argv, "--csv");
  const std::uint64_t arrivals =
      exp::parse_u64_flag(argc, argv, "--arrivals", quick ? 8'000 : 40'000);
  const int jobs = exp::parse_jobs(argc, argv);
  const int shards = static_cast<int>(
      exp::parse_u64_flag(argc, argv, "--shards", 0));
  const std::string out_path =
      exp::parse_string_flag(argc, argv, "--out", "BENCH_service.json");
  const std::string baseline_path =
      exp::parse_string_flag(argc, argv, "--baseline", "");

  // Virtual-time matrix: cells are independent (each builds its own fleet),
  // results land in pre-allocated slots read in index order, so output is
  // bit-identical for any --jobs value.
  const std::vector<Cell> cells = build_cells();
  std::vector<CellResult> results(cells.size());
  exp::run_cells(cells.size(), jobs, [&](std::size_t i) {
    results[i] = run_cell(cells[i], arrivals, shards);
  });

  if (csv) {
    print_csv(results);
    return 0;
  }

  for (const CellResult& r : results) {
    std::printf(
        "%-28s goodput %8.1f/s  work %8.5f s/s  p50 %6.2f ms  p95 %6.2f ms  "
        "p99 %6.2f ms  steals %llu  reroutes %llu\n",
        r.cell.name.c_str(), r.report.goodput_per_second,
        r.report.work_per_second, 1e3 * r.report.admission_latency.p50(),
        1e3 * r.report.admission_latency.p95(),
        1e3 * r.report.admission_latency.p99(),
        static_cast<unsigned long long>(r.report.stats.steals),
        static_cast<unsigned long long>(r.report.stats.reroutes));
  }

  // Locality must beat random placement on every shape (same trace, same
  // fleet, only the routing policy differs) — the tentpole's whole point.
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    if (results[i].cell.fault || results[i + 1].cell.fault) continue;
    if (results[i].report.work_per_second <=
        results[i + 1].report.work_per_second) {
      std::fprintf(stderr, "error: %s did not out-serve %s\n",
                   results[i].cell.name.c_str(),
                   results[i + 1].cell.name.c_str());
      return 1;
    }
  }

  // Wall-clock pump: batched drain vs per-call admission against a
  // slow-lane-pinned core. Below 8 real cores the producers time-slice one
  // another and the ratio measures the OS scheduler — skip with a reason.
  const unsigned cores = std::thread::hardware_concurrency();
  const double calib_ns = bench::bench_calibration();
  const double machine_factor =
      std::max(1.0, calib_ns / bench::kCalibBaselineNs);
  double per_call_mops = 0.0;
  double batched_mops = 0.0;
  double batch_speedup = 0.0;
  double sharded_1_mops = 0.0;
  double sharded_4_mops = 0.0;
  double drain_scaling = 0.0;
  const bool pump_ran = cores >= 8;
  if (pump_ran) {
    service::PumpConfig pump;
    pump.producers = 4;
    pump.ops_per_producer = quick ? 20'000 : 100'000;
    pump.batched = false;
    per_call_mops = service::run_pump(pump).mops;
    pump.batched = true;
    batched_mops = service::run_pump(pump).mops;
    batch_speedup = per_call_mops > 0.0 ? batched_mops / per_call_mops : 0.0;
    std::printf(
        "pump: per-call %.3f Mops/s, batched %.3f Mops/s (%.2fx)\n",
        per_call_mops, batched_mops, batch_speedup);

    // Drain scaling: the same 4-node fleet drained by ONE thread vs by 4
    // shard drainers, each owning a disjoint queue+node set. The single
    // drainer serializes 4 cores' admissions; sharding must recover >=2x.
    pump.nodes = 4;
    pump.shards = 1;
    sharded_1_mops = service::run_pump(pump).mops;
    pump.shards = 4;
    sharded_4_mops = service::run_pump(pump).mops;
    drain_scaling =
        sharded_1_mops > 0.0 ? sharded_4_mops / sharded_1_mops : 0.0;
    std::printf(
        "drain scaling: 1 shard %.3f Mops/s, 4 shards %.3f Mops/s (%.2fx)\n",
        sharded_1_mops, sharded_4_mops, drain_scaling);
    if (drain_scaling < 2.0) {
      std::fprintf(stderr,
                   "error: 4-shard drain only %.2fx over one drainer "
                   "(needs >=2x on an 8-core host)\n",
                   drain_scaling);
      return 1;
    }
  } else {
    std::printf("pump: skipped (%u hardware threads, need 8)\n", cores);
  }

  std::ostringstream json;
  json << "{\n";
  json << "  \"arrivals\": " << arrivals << ",\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"calib_ns\": %.2f,\n  \"machine_factor\": %.4f,\n",
                calib_ns, machine_factor);
  json << buf;
  json << "  \"cells\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"name\": \"%s\", \"goodput\": %.3f, \"work_per_second\": "
        "%.6f,\n     \"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f,\n"
        "     \"completed\": %llu, \"shed\": %llu, \"steals\": %llu, "
        "\"reroutes\": %llu, \"mailboxed\": %llu}%s\n",
        r.cell.name.c_str(), r.report.goodput_per_second,
        r.report.work_per_second, 1e3 * r.report.admission_latency.p50(),
        1e3 * r.report.admission_latency.p95(),
        1e3 * r.report.admission_latency.p99(),
        static_cast<unsigned long long>(r.report.stats.completed),
        static_cast<unsigned long long>(r.report.stats.shed),
        static_cast<unsigned long long>(r.report.stats.steals),
        static_cast<unsigned long long>(r.report.stats.reroutes),
        static_cast<unsigned long long>(r.report.stats.mailboxed),
        i + 1 < results.size() ? "," : "");
    json << buf;
  }
  json << "  ],\n";
  if (pump_ran) {
    std::snprintf(buf, sizeof(buf),
                  "  \"per_call_mops\": %.3f,\n  \"batched_mops\": %.3f,\n"
                  "  \"batch_speedup\": %.3f,\n",
                  per_call_mops, batched_mops, batch_speedup);
    json << buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"sharded_1_mops\": %.3f,\n"
                  "  \"sharded_4_mops\": %.3f,\n"
                  "  \"drain_scaling\": %.3f\n",
                  sharded_1_mops, sharded_4_mops, drain_scaling);
    json << buf;
  } else {
    std::snprintf(buf, sizeof(buf),
                  "  \"per_call_mops\": null,\n  \"batched_mops\": null,\n"
                  "  \"batch_speedup\": null,\n"
                  "  \"batch_speedup_skipped\": \"%u hardware threads (<8): "
                  "the pump would measure the OS scheduler\",\n",
                  cores);
    json << buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"sharded_1_mops\": null,\n"
                  "  \"sharded_4_mops\": null,\n"
                  "  \"drain_scaling\": null,\n"
                  "  \"drain_scaling_skipped\": \"%u hardware threads (<8): "
                  "shard drainers would time-slice one core\"\n",
                  cores);
    json << buf;
  }
  json << "}\n";

  try {
    util::write_file_atomic(out_path, json.str());
    std::printf("wrote %s\n", out_path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "warning: %s\n", e.what());
  }

  // Regression gate against the committed snapshot: virtual-time goodput
  // may not drop more than 10% (deterministic — any drop is a code change,
  // not machine weather); p99 may not grow more than 10%. The wall-clock
  // batched-mops floor is scaled by today's machine drift.
  int rc = 0;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::printf("no committed baseline at %s; recorded fresh snapshot\n",
                  baseline_path.c_str());
    } else {
      std::stringstream buffer;
      buffer << in.rdbuf();
      const std::string base = buffer.str();
      const double base_arrivals =
          json_number_after(base, "", "arrivals", 0.0);
      if (static_cast<std::uint64_t>(base_arrivals) != arrivals) {
        std::printf(
            "baseline used %.0f arrivals (this run: %llu); skipping gate\n",
            base_arrivals, static_cast<unsigned long long>(arrivals));
      } else {
        for (const CellResult& r : results) {
          const double base_goodput =
              json_number_after(base, r.cell.name, "goodput", 0.0);
          const double base_p99 =
              json_number_after(base, r.cell.name, "p99_ms", 0.0);
          const double p99_ms = 1e3 * r.report.admission_latency.p99();
          if (base_goodput > 0.0 &&
              r.report.goodput_per_second < 0.9 * base_goodput) {
            std::fprintf(stderr,
                         "error: %s goodput %.1f/s fell >10%% below the "
                         "committed %.1f/s\n",
                         r.cell.name.c_str(), r.report.goodput_per_second,
                         base_goodput);
            rc = 1;
          }
          if (base_p99 > 0.0 && p99_ms > 1.1 * base_p99) {
            std::fprintf(stderr,
                         "error: %s p99 %.3f ms grew >10%% over the "
                         "committed %.3f ms\n",
                         r.cell.name.c_str(), p99_ms, base_p99);
            rc = 1;
          }
        }
        const double base_batched =
            json_number_after(base, "", "batched_mops", 0.0);
        if (pump_ran && base_batched > 0.0) {
          const double floor = 0.9 * base_batched / machine_factor;
          if (batched_mops < floor) {
            std::fprintf(stderr,
                         "error: batched pump %.3f Mops/s fell below the "
                         "drift-adjusted floor %.3f\n",
                         batched_mops, floor);
            rc = 1;
          }
          if (batch_speedup < 2.0) {
            std::fprintf(stderr,
                         "error: batched drain only %.2fx over per-call "
                         "(needs >=2x on an 8-core host)\n",
                         batch_speedup);
            rc = 1;
          }
        }
      }
    }
  }
  return rc;
}
