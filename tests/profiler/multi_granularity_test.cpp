#include "profiler/multi_granularity.hpp"

#include <gtest/gtest.h>

#include "trace/generators.hpp"
#include "util/units.hpp"

namespace rda::prof {
namespace {

using rda::util::KB;
using rda::util::MB;

/// Fresh-pass factory over: long phase A + short phase B + long phase A2.
/// Phase B is only visible at fine granularity (it spans less than one
/// coarse window).
std::unique_ptr<trace::TraceSource> make_layered_trace() {
  auto phase = [](std::uint64_t base, std::uint64_t size,
                  std::uint64_t accesses,
                  std::uint64_t seed) -> std::unique_ptr<trace::TraceSource> {
    trace::RegionSpec spec;
    spec.base = base;
    spec.size_bytes = size;
    spec.pattern = trace::Pattern::kHotCold;
    spec.hot_fraction = 0.625;
    spec.hot_probability = 0.97;
    spec.access_granularity = 8;
    return std::make_unique<trace::RegionAccessSource>(spec, accesses, seed);
  };
  std::vector<std::unique_ptr<trace::TraceSource>> parts;
  const std::uint64_t coarse = 1u << 18;
  parts.push_back(phase(0x10000000, MB(2), coarse * 4, 1));   // A: 4 coarse
  parts.push_back(phase(0x40000000, KB(256), coarse, 2));     // B: 1 coarse
  parts.push_back(phase(0x20000000, MB(2), coarse * 4, 3));   // A2
  return std::make_unique<trace::ConcatSource>(std::move(parts));
}

MultiGranularityConfig layered_config() {
  MultiGranularityConfig cfg;
  cfg.windows = {1u << 18, 1u << 16};  // coarse + fine
  cfg.hot_threshold = 4;
  cfg.detector.min_windows = 3;
  return cfg;
}

TEST(MultiGranularity, LadderDerivedWhenUnspecified) {
  MultiGranularityConfig cfg;
  cfg.base_window = 1u << 20;
  cfg.levels = 3;
  cfg.ladder_ratio = 4;
  const MultiGranularityProfiler profiler(cfg);
  const auto& ladder = profiler.window_ladder();
  ASSERT_EQ(ladder.size(), 3u);
  EXPECT_EQ(ladder[0], 1u << 20);
  EXPECT_EQ(ladder[1], 1u << 18);
  EXPECT_EQ(ladder[2], 1u << 16);
}

TEST(MultiGranularity, ExplicitWindowsSortedCoarseFirst) {
  MultiGranularityConfig cfg;
  cfg.windows = {1u << 14, 1u << 20, 1u << 17};
  const MultiGranularityProfiler profiler(cfg);
  const auto& ladder = profiler.window_ladder();
  EXPECT_EQ(ladder[0], 1u << 20);
  EXPECT_EQ(ladder[2], 1u << 14);
}

TEST(MultiGranularity, FindsCoarsePhases) {
  const MultiGranularityProfiler profiler(layered_config());
  const auto report = profiler.profile(make_layered_trace);
  // The two long phases must be found at the coarse granularity.
  int coarse_periods = 0;
  for (const GranularPeriod& p : report.periods) {
    if (p.window_accesses == (1u << 18)) ++coarse_periods;
  }
  EXPECT_GE(coarse_periods, 2);
}

TEST(MultiGranularity, FinerPeriodsOnlyWhereUncovered) {
  const MultiGranularityProfiler profiler(layered_config());
  const auto report = profiler.profile(make_layered_trace);
  // Fine-granularity findings inside the long phases are redundant and
  // must be suppressed; the short middle phase region may survive as fine.
  for (std::size_t i = 0; i + 1 < report.periods.size(); ++i) {
    const GranularPeriod& a = report.periods[i];
    const GranularPeriod& b = report.periods[i + 1];
    const std::uint64_t lo = std::max(a.first_access, b.first_access);
    const std::uint64_t hi = std::min(a.last_access, b.last_access);
    const std::uint64_t overlap = hi > lo ? hi - lo : 0;
    EXPECT_LE(static_cast<double>(overlap),
              0.5 * static_cast<double>(std::min(a.span(), b.span())))
        << "periods " << i << " and " << i + 1 << " largely overlap";
  }
}

TEST(MultiGranularity, PerGranularityResultsExposed) {
  const MultiGranularityProfiler profiler(layered_config());
  const auto report = profiler.profile(make_layered_trace);
  ASSERT_EQ(report.per_granularity.size(), 2u);
  EXPECT_EQ(report.per_granularity[0].first, 1u << 18);
  EXPECT_EQ(report.per_granularity[1].first, 1u << 16);
  // The fine pass sees at least as many windows' worth of periods.
  EXPECT_GE(report.per_granularity[1].second.size(),
            report.per_granularity[0].second.size());
}

GranularPeriod make_period(std::uint64_t window, std::uint64_t first,
                           std::uint64_t last) {
  GranularPeriod g;
  g.window_accesses = window;
  g.first_access = first;
  g.last_access = last;
  return g;
}

TEST(MultiGranularity, CoveredFractionIsIntervalUnion) {
  // Two kept periods overlapping on [400, 600): summing intersections would
  // report (600 + 400)/1000 = 100% covered; the union is only 800/1000.
  const std::vector<GranularPeriod> kept = {
      make_period(100, 0, 600), make_period(100, 400, 800)};
  const GranularPeriod candidate = make_period(10, 0, 1000);
  EXPECT_DOUBLE_EQ(covered_fraction(candidate, kept), 0.8);
}

TEST(MultiGranularity, MergeDoesNotDoubleCountOverlapRegression) {
  // Regression for the pre-union merge: kept periods A=[0,200) and
  // B=[0,800) overlap on [0,200). Candidate C=[0,3200) is 25% covered by
  // the union (exactly at tolerance, so keepable), but summing per-period
  // intersections claims (200+800)/3200 = 31.25% and wrongly rejects it.
  std::vector<std::pair<std::uint64_t, std::vector<GranularPeriod>>>
      per_granularity;
  per_granularity.emplace_back(
      400, std::vector<GranularPeriod>{make_period(400, 0, 200)});
  per_granularity.emplace_back(
      200, std::vector<GranularPeriod>{make_period(200, 0, 800)});
  per_granularity.emplace_back(
      100, std::vector<GranularPeriod>{make_period(100, 0, 3200)});

  const std::vector<GranularPeriod> merged =
      merge_coarse_to_fine(per_granularity, 0.25);
  ASSERT_EQ(merged.size(), 3u);
  bool fine_kept = false;
  for (const GranularPeriod& p : merged) {
    if (p.window_accesses == 100) fine_kept = true;
  }
  EXPECT_TRUE(fine_kept) << "union coverage is exactly 0.25, double-counted "
                            "coverage would be 0.3125";
}

TEST(MultiGranularity, MergedPeriodsSortedByOffset) {
  const MultiGranularityProfiler profiler(layered_config());
  const auto report = profiler.profile(make_layered_trace);
  for (std::size_t i = 0; i + 1 < report.periods.size(); ++i) {
    EXPECT_LE(report.periods[i].first_access,
              report.periods[i + 1].first_access);
  }
}

}  // namespace
}  // namespace rda::prof
