// rda_profile — run the §2.4 profiler on a trace file.
//
// Windows the trace, detects progress periods, maps them onto the loop nest
// stored in the file, and prints the pp_begin/pp_end annotations to insert.
//
//   rda_profile --trace wnsq_8000.rdatrc --window 786432 --threshold 6
//
// --reuse-curve additionally runs Mattson stack-distance analysis over the
// whole trace and prints the LRU miss-ratio curve plus the cache size at
// its knee — a principled value for the pp_begin demand.
#include <cstdio>
#include <string>

#include "args.hpp"
#include "profiler/report.hpp"
#include "profiler/reuse_distance.hpp"
#include "trace/trace_io.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace rda;
  const tools::Args args(argc, argv);
  const std::string path = args.get("trace");
  if (path.empty() || args.has("help")) {
    tools::usage(
        "usage: rda_profile --trace FILE [--window N] [--threshold K]\n"
        "                   [--min-windows M] [--similarity S]\n"
        "  --window      accesses per profiling window (default 1048576)\n"
        "  --threshold   touches before a line counts as working set "
        "(default 4)\n"
        "  --min-windows consecutive similar windows to seed a period "
        "(default 3)\n"
        "  --similarity  relative similarity band (default 0.25)\n"
        "  --reuse-curve also print the LRU miss-ratio curve + WSS knee\n");
  }

  const trace::TraceFile file = trace::TraceFile::open(path);
  std::printf("%s: %llu records, %zu loops\n\n", path.c_str(),
              static_cast<unsigned long long>(file.record_count()),
              file.nest().size());

  prof::WindowConfig wcfg;
  wcfg.window_accesses = args.get_u64("window", wcfg.window_accesses);
  wcfg.hot_threshold =
      static_cast<std::uint32_t>(args.get_u64("threshold", wcfg.hot_threshold));
  prof::DetectorConfig dcfg;
  dcfg.min_windows = args.get_u64("min-windows", dcfg.min_windows);
  dcfg.similarity_threshold =
      args.get_double("similarity", dcfg.similarity_threshold);

  auto source = file.records();
  const prof::ProfileReport report =
      prof::Profiler(wcfg, dcfg).profile(*source, file.nest());
  std::printf("%s", report.to_string().c_str());

  if (args.has("reuse-curve")) {
    prof::ReuseDistanceAnalyzer rd;
    auto pass = file.records();
    rd.consume(*pass);
    std::printf("\nLRU miss-ratio curve (whole trace, %llu accesses, "
                "%llu cold):\n",
                static_cast<unsigned long long>(rd.total_accesses()),
                static_cast<unsigned long long>(rd.cold_misses()));
    for (double mb : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 15.0}) {
      std::printf("  %6.2f MB -> %5.1f%% misses\n", mb,
                  100.0 * rd.miss_ratio(util::MB(mb)));
    }
    std::printf("  knee (2%% slack): %.2f MB — a principled pp_begin "
                "demand\n",
                util::bytes_to_mb(rd.working_set_bytes(0.02)));
  }

  if (report.periods.empty()) {
    std::printf("\nno periods detected — try a different --window (the "
                "trace generator prints a recommended value)\n");
    return 1;
  }
  return 0;
}
