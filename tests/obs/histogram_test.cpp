#include "obs/histogram.hpp"

#include <gtest/gtest.h>

namespace rda::obs {
namespace {

TEST(WaitHistogram, EmptyReportsZeros) {
  WaitHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.p95(), 0.0);
}

TEST(WaitHistogram, SingleSampleIsExact) {
  WaitHistogram h;
  h.add(3e-3);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 3e-3);
  EXPECT_DOUBLE_EQ(h.max(), 3e-3);
  EXPECT_DOUBLE_EQ(h.mean(), 3e-3);
  // Bucket midpoint is clamped to the observed [min, max] == the sample.
  EXPECT_DOUBLE_EQ(h.p50(), 3e-3);
  EXPECT_DOUBLE_EQ(h.p95(), 3e-3);
}

TEST(WaitHistogram, QuantilesAreBucketAccurate) {
  WaitHistogram h;
  // 90 waits near 1 us, 10 near 1 s: p50 must see the short cluster and
  // p95 the long one; power-of-two buckets are exact to a factor of two.
  for (int i = 0; i < 90; ++i) h.add(1e-6);
  for (int i = 0; i < 10; ++i) h.add(1.0);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_GE(h.p50(), 0.5e-6);
  EXPECT_LE(h.p50(), 2e-6);
  EXPECT_GE(h.p95(), 0.5);
  EXPECT_LE(h.p95(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1.0);
  EXPECT_NEAR(h.mean(), (90.0 * 1e-6 + 10.0) / 100.0, 1e-9);
}

TEST(WaitHistogram, NegativeAndZeroClampToFloorBucket) {
  WaitHistogram h;
  h.add(-1.0);  // clock skew must not corrupt the histogram
  h.add(0.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.bucket_count(0), 2u);
}

TEST(WaitHistogram, MergeCombinesCountsAndExtremes) {
  WaitHistogram a;
  WaitHistogram b;
  a.add(1e-6);
  a.add(2e-6);
  b.add(1e-3);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.min(), 1e-6);
  EXPECT_DOUBLE_EQ(a.max(), 1e-3);
  // Merging an empty histogram is a no-op.
  a.merge(WaitHistogram{});
  EXPECT_EQ(a.count(), 3u);
}

TEST(WaitHistogram, BucketFloorsDouble) {
  EXPECT_DOUBLE_EQ(WaitHistogram::bucket_floor(0), 0.0);
  EXPECT_DOUBLE_EQ(WaitHistogram::bucket_floor(1), 1e-9);
  EXPECT_DOUBLE_EQ(WaitHistogram::bucket_floor(2), 2e-9);
  EXPECT_DOUBLE_EQ(WaitHistogram::bucket_floor(11), 1024e-9);
}

}  // namespace
}  // namespace rda::obs
