// Trace record types — the stand-in for an Intel PIN instruction stream.
//
// The paper's preliminary profiler (§2.4) uses PIN to collect (1) the
// virtual memory address of every load/store in fixed-size instruction
// windows and (2) the linear addresses of retired JMP instructions, which
// Dyninst ParseAPI then locates within the binary's loop-nest structure.
// Our generators emit exactly that record stream.
#pragma once

#include <cstdint>

namespace rda::trace {

enum class RecordKind : std::uint8_t {
  kLoad,   ///< data read; value = virtual address
  kStore,  ///< data write; value = virtual address
  kJump,   ///< retired JMP; value = instruction pointer (PC)
};

/// One trace event. 16 bytes, trivially copyable; traces are streamed, never
/// fully materialized, so the layout matters less than the cheap copy.
struct TraceRecord {
  std::uint64_t value = 0;  ///< address (load/store) or PC (jump)
  RecordKind kind = RecordKind::kLoad;

  constexpr bool is_memory() const { return kind != RecordKind::kJump; }
};

/// Streaming trace producer. Generators are one-shot: after next() returns
/// false the source is exhausted.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Fills `out` with the next record; returns false at end of trace.
  virtual bool next(TraceRecord& out) = 0;

  TraceSource() = default;
  TraceSource(const TraceSource&) = delete;
  TraceSource& operator=(const TraceSource&) = delete;
};

}  // namespace rda::trace
