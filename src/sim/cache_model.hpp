// Shared last-level-cache occupancy model.
//
// The simulator tracks, per thread in a phase, how many bytes of that
// phase's working set are currently LLC-resident. Running threads grow
// their occupancy through their reuse-miss fill traffic; everyone's
// occupancy is eroded by other threads' fills (capacity contention) and by
// streaming traffic passing through the cache. This is a fluid version of
// the classic LRU-occupancy race: co-scheduled working sets that sum past
// capacity steal lines from each other, which is exactly the interference
// the paper's scheduler avoids.
//
// Invariants (enforced, see check_invariants):
//   * 0 <= occupancy(t) <= wss(t) for every registered thread,
//   * sum of occupancies <= capacity.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/ids.hpp"

namespace rda::sim {

/// Fill traffic of one running thread over an interval.
struct FillTraffic {
  ThreadId thread = kInvalidThread;
  /// Bytes of working-set lines brought in (grow residency).
  double residency_bytes = 0.0;
  /// Bytes of pass-through streaming traffic (evict others, don't persist).
  double streaming_bytes = 0.0;
};

class LlcModel {
 public:
  explicit LlcModel(std::uint64_t capacity_bytes);

  /// Thread enters a phase with the given working set. `carry_bytes` is the
  /// occupancy inherited from the thread's previous phase (consecutive
  /// periods of one thread typically revisit the same data — e.g. a loop
  /// split into many fine-grained periods, paper Fig. 11); it is capped at
  /// the new working set and at the free capacity. `occupancy_cap_bytes`
  /// implements the paper's §6 cache-partitioning extension: the phase may
  /// never hold more than this many bytes (<= 0 disables the cap).
  void phase_enter(ThreadId thread, std::uint64_t wss_bytes,
                   double carry_bytes = 0.0, double occupancy_cap_bytes = 0.0);

  /// Thread leaves its phase; its lines are released. Returns the occupancy
  /// held at exit (the potential carry into the thread's next phase).
  double phase_exit(ThreadId thread);

  /// True if the thread currently has a registered phase.
  bool registered(ThreadId thread) const;

  /// Advances the model by one interval of fill traffic.
  void advance(const std::vector<FillTraffic>& fills);

  double occupancy_bytes(ThreadId thread) const;
  /// occupancy / wss in [0,1]; 1.0 for zero-wss phases (nothing to cache).
  double resident_fraction(ThreadId thread) const;
  double total_occupancy() const { return total_occupancy_; }
  std::uint64_t capacity() const { return capacity_; }
  std::size_t active_phases() const { return active_.size(); }

  /// Throws util::CheckFailure if an invariant is violated.
  void check_invariants() const;

 private:
  /// Dense per-thread slot (thread ids are small sequential integers, so a
  /// flat vector replaces the previous unordered_map: the engine's inner
  /// loop queries occupancy/resident_fraction per running thread per step).
  struct Entry {
    double wss = 0.0;
    double occupancy = 0.0;
    /// Partition ceiling (§6 extension); infinity when unpartitioned.
    double cap = 0.0;
    std::uint32_t active_pos = 0;  ///< index into active_ while registered
    bool active = false;

    double growth_limit() const { return std::min(wss, cap); }
  };

  /// Removes `bytes` of occupancy spread over all entries proportionally to
  /// their current occupancy.
  void evict_proportional(double bytes);

  Entry& slot(ThreadId thread);
  const Entry* find(ThreadId thread) const {
    return thread < slots_.size() && slots_[thread].active ? &slots_[thread]
                                                           : nullptr;
  }

  std::uint64_t capacity_;
  std::vector<Entry> slots_;       ///< indexed by ThreadId
  std::vector<ThreadId> active_;   ///< registered threads (iteration set)
  double total_occupancy_ = 0.0;
};

}  // namespace rda::sim
