# Empty compiler generated dependencies file for rda_cluster.
# This may be replaced when dependencies are built.
