// Multi-granularity progress-period search (§2.4 automation).
//
// The paper parameterizes detection by two granularities — x (window size,
// bounding the loop body) and y (minimum total instructions in the
// repetition) — and reports "manually experimenting with different
// granularities of window sizes" per application. This class automates the
// sweep: it profiles the trace at several window sizes, then merges the
// per-granularity detections, preferring the COARSEST granularity that
// explains each region of the execution (matching §4.3's conclusion that a
// single period at the outermost loop level minimizes tracking overhead).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "profiler/report.hpp"

namespace rda::prof {

struct MultiGranularityConfig {
  /// Window sizes (accesses) to sweep, coarse to fine. Empty = derive a
  /// geometric ladder from `base_window` and `levels`.
  std::vector<std::uint64_t> windows;
  std::uint64_t base_window = 1u << 22;  ///< coarsest window when deriving
  int levels = 4;                        ///< ladder length when deriving
  int ladder_ratio = 4;                  ///< divide by this per level
  std::uint32_t hot_threshold = 4;
  DetectorConfig detector{};
  /// A finer-granularity period is kept only if at most this fraction of
  /// its access range is already covered by a coarser period.
  double overlap_tolerance = 0.25;
};

/// A detected period normalized to absolute access offsets so detections
/// from different window sizes are comparable.
struct GranularPeriod {
  std::uint64_t window_accesses = 0;  ///< granularity it was found at
  std::uint64_t first_access = 0;     ///< inclusive, in trace accesses
  std::uint64_t last_access = 0;      ///< exclusive
  DetectedPeriod period;

  std::uint64_t span() const { return last_access - first_access; }
};

struct MultiGranularityReport {
  /// Merged result: coarse periods first, finer ones only where no coarse
  /// period explains the region.
  std::vector<GranularPeriod> periods;
  /// Everything found per granularity, for inspection.
  std::vector<std::pair<std::uint64_t, std::vector<GranularPeriod>>>
      per_granularity;
};

/// Fraction of `candidate`'s access range covered by the interval UNION of
/// the already-kept periods (overlapping kept periods are not
/// double-counted). Empty candidates count as fully covered.
double covered_fraction(const GranularPeriod& candidate,
                        const std::vector<GranularPeriod>& kept);

/// Coarse-to-fine merge over per-granularity detections (must be ordered
/// coarse first): a candidate is kept only when at most `overlap_tolerance`
/// of its range is already covered. Result is sorted by first access. Shared
/// by the serial profiler and the parallel pipeline so both merge
/// identically.
std::vector<GranularPeriod> merge_coarse_to_fine(
    const std::vector<std::pair<std::uint64_t, std::vector<GranularPeriod>>>&
        per_granularity,
    double overlap_tolerance);

class MultiGranularityProfiler {
 public:
  explicit MultiGranularityProfiler(MultiGranularityConfig config = {});

  /// `make_source` must produce a fresh pass over the same trace each call
  /// (one pass per granularity).
  MultiGranularityReport profile(
      const std::function<std::unique_ptr<trace::TraceSource>()>& make_source)
      const;

  const std::vector<std::uint64_t>& window_ladder() const { return ladder_; }

 private:
  MultiGranularityConfig config_;
  std::vector<std::uint64_t> ladder_;
};

}  // namespace rda::prof
