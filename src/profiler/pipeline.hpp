// Single-read, multi-core profiling pipeline (§2.4 at scale).
//
// The serial path decodes the trace file once per ladder level plus once for
// the reuse curve. This pipeline decodes it exactly once into a TraceArena
// and fans the independent analyses out over a worker pool:
//
//   arena ──┬── ladder level 0: WindowAnalyzer → PeriodDetector → report
//           ├── ladder level 1:            "              "
//           ├── ...
//           └── reuse curve:    ReuseDistanceAnalyzer (exact or sampled)
//           ═══ join ═══ coarse-to-fine merge (sequential)
//
// Each job reads a private zero-copy arena view and writes a private result
// slot; the merge runs after the join in ladder order. Results are therefore
// bit-identical for any job count — `jobs` trades wall-clock only.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "profiler/multi_granularity.hpp"
#include "profiler/report.hpp"
#include "profiler/reuse_distance.hpp"
#include "trace/arena.hpp"

namespace rda::prof {

struct PipelineConfig {
  /// Window ladder, detector, and merge knobs (as for the serial profiler).
  MultiGranularityConfig multi;
  /// Also run a reuse-distance pass (as a parallel job).
  bool reuse_curve = false;
  std::uint64_t reuse_granularity = 64;
  std::uint64_t reuse_max_tracked = 1u << 22;
  /// Spatial sampling rate for the reuse pass; 1.0 = exact Mattson.
  double sample_rate = 1.0;
  /// Worker threads; <= 1 runs everything inline (the verifiable baseline).
  int jobs = 1;
};

struct PipelineResult {
  /// Per-granularity detections + the coarse-to-fine merged period list.
  MultiGranularityReport multi;
  /// Fully assembled (loop-mapped, annotated) report per ladder level, in
  /// ladder (coarse-first) order — level_reports[i] is what the serial
  /// Profiler would produce at window_ladder()[i].
  std::vector<ProfileReport> level_reports;
  /// Reuse-distance pass result; null unless `reuse_curve` was requested.
  std::unique_ptr<ReuseDistanceAnalyzer> reuse;
};

class ProfilePipeline {
 public:
  explicit ProfilePipeline(PipelineConfig config);

  /// Runs all passes over `arena` and merges. Deterministic in `jobs`.
  PipelineResult run(const trace::TraceArena& arena) const;

  const std::vector<std::uint64_t>& window_ladder() const { return ladder_; }

 private:
  PipelineConfig config_;
  std::vector<std::uint64_t> ladder_;
};

}  // namespace rda::prof
