// Strongly-typed identifiers used across the simulator and the RDA core.
#pragma once

#include <cstdint>

namespace rda::sim {

using ThreadId = std::uint32_t;
using ProcessId = std::uint32_t;

inline constexpr ThreadId kInvalidThread = static_cast<ThreadId>(-1);
inline constexpr ProcessId kInvalidProcess = static_cast<ProcessId>(-1);

}  // namespace rda::sim

namespace rda::core {

/// Unique identifier a pp_begin call returns to the application (§2.3);
/// passed back to pp_end.
using PeriodId = std::uint64_t;
inline constexpr PeriodId kInvalidPeriod = 0;

}  // namespace rda::core
