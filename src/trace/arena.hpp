// Single-read trace arena: decode a trace file from disk once, then hand out
// any number of zero-copy record views.
//
// The multi-granularity profiler needs one full pass per ladder level plus
// one for the reuse curve; streaming each pass through its own
// FileTraceSource re-reads and re-decodes the file every time, which is the
// dominant cost on large traces and serializes passes that are otherwise
// independent. TraceArena maps (or, when mmap is unavailable, loads) the
// record section into memory exactly once; views decode the packed 9-byte
// records in place, so concurrent passes share one read-only buffer and the
// OS page cache does the rest.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "trace/loop_nest.hpp"
#include "trace/record.hpp"

namespace rda::trace {

/// An immutable, fully-resident (mmap'd or heap-loaded) trace: loop nest
/// plus the raw record section. Safe to share across threads; views are
/// independent cursors over the same bytes.
class TraceArena {
 public:
  /// Opens `path`, parses the header/loop nest, and maps the record
  /// section. Falls back to reading the section into a heap buffer when
  /// mmap is not usable. Throws util::CheckFailure on malformed input.
  static TraceArena load(const std::string& path);

  const LoopNest& nest() const { return nest_; }
  std::uint64_t record_count() const { return record_count_; }

  /// Fresh zero-copy streaming view over all records. Any number of views
  /// may be live at once, on any threads.
  std::unique_ptr<TraceSource> records() const;

  /// Start of the packed record bytes (9 bytes per record), for bulk
  /// consumers that want to skip the TraceSource indirection.
  const unsigned char* raw_records() const;

  /// True when the records are served from an mmap rather than a copy.
  bool mapped() const;

 private:
  class Buffer;  // owns either the mapping or the heap copy

  TraceArena() = default;

  LoopNest nest_;
  std::uint64_t record_count_ = 0;
  std::shared_ptr<const Buffer> buffer_;
};

}  // namespace rda::trace
