// Multi-resource gating: periods that declare both an LLC working set and a
// DRAM-bandwidth demand must fit BOTH resources (conclusion: "configurable
// to allow multiple hardware resources to be targeted").
#include <gtest/gtest.h>

#include <vector>

#include "core/rda_scheduler.hpp"
#include "runtime/gate.hpp"
#include "util/units.hpp"

namespace rda::core {
namespace {

using rda::util::MB;

PeriodRecord multi_record(sim::ThreadId thread, double llc_mb,
                          double bw_gbs) {
  PeriodRecord r;
  r.thread = thread;
  r.process = thread;
  r.set_single(ResourceKind::kLLC, static_cast<double>(MB(llc_mb)));
  if (bw_gbs > 0.0) {
    r.add_demand(ResourceKind::kMemBandwidth, bw_gbs * 1e9);
  }
  r.reuse = ReuseLevel::kLow;
  return r;
}

class MultiFixture {
 public:
  MultiFixture()
      : policy_(std::make_unique<StrictPolicy>()),
        predicate_(*policy_, resources_),
        monitor_(predicate_, resources_) {
    resources_.set_capacity(ResourceKind::kLLC, static_cast<double>(MB(15)));
    resources_.set_capacity(ResourceKind::kMemBandwidth, 30e9);
    monitor_.set_waker([this](sim::ThreadId tid) { woken_.push_back(tid); });
  }

  ResourceMonitor resources_;
  std::unique_ptr<SchedulingPolicy> policy_;
  SchedulingPredicate predicate_;
  ProgressMonitor monitor_;
  std::vector<sim::ThreadId> woken_;
};

TEST(MultiResource, BothDemandsCharged) {
  MultiFixture fx;
  const auto outcome =
      fx.monitor_.begin_period(multi_record(1, 2.0, 10.0), 0.0);
  ASSERT_TRUE(outcome.admitted);
  EXPECT_NEAR(fx.resources_.usage(ResourceKind::kLLC),
              static_cast<double>(MB(2)), 1.0);
  EXPECT_NEAR(fx.resources_.usage(ResourceKind::kMemBandwidth), 10e9, 1.0);
  fx.monitor_.end_period(outcome.id, 1.0);
  EXPECT_NEAR(fx.resources_.usage(ResourceKind::kLLC), 0.0, 1e-6);
  EXPECT_NEAR(fx.resources_.usage(ResourceKind::kMemBandwidth), 0.0, 1e-6);
}

TEST(MultiResource, SecondResourceCanBeTheBottleneck) {
  MultiFixture fx;
  // Tiny LLC footprints, huge bandwidth appetites: 3 x 12 GB/s > 30 GB/s.
  const auto a = fx.monitor_.begin_period(multi_record(1, 0.5, 12.0), 0.0);
  const auto b = fx.monitor_.begin_period(multi_record(2, 0.5, 12.0), 0.0);
  const auto c = fx.monitor_.begin_period(multi_record(3, 0.5, 12.0), 0.0);
  EXPECT_TRUE(a.admitted);
  EXPECT_TRUE(b.admitted);
  EXPECT_FALSE(c.admitted);  // LLC has room; bandwidth does not
  fx.monitor_.end_period(a.id, 1.0);
  ASSERT_EQ(fx.woken_.size(), 1u);
  EXPECT_EQ(fx.woken_[0], 3u);
}

TEST(MultiResource, NoPartialCharging) {
  MultiFixture fx;
  // First period eats most of the bandwidth.
  const auto a = fx.monitor_.begin_period(multi_record(1, 1.0, 25.0), 0.0);
  ASSERT_TRUE(a.admitted);
  // Second fits the LLC but not the bandwidth: denied, and crucially the
  // LLC load must NOT have been incremented (atomic all-or-nothing).
  const double llc_before = fx.resources_.usage(ResourceKind::kLLC);
  const auto b = fx.monitor_.begin_period(multi_record(2, 1.0, 10.0), 0.0);
  EXPECT_FALSE(b.admitted);
  EXPECT_DOUBLE_EQ(fx.resources_.usage(ResourceKind::kLLC), llc_before);
}

TEST(MultiResource, LivenessOverrideChecksAllTargets) {
  MultiFixture fx;
  // 50 GB/s can never fit a 30 GB/s machine; alone, it is force-admitted.
  const auto big = fx.monitor_.begin_period(multi_record(1, 1.0, 50.0), 0.0);
  EXPECT_TRUE(big.admitted);
  EXPECT_TRUE(big.forced);
  fx.monitor_.end_period(big.id, 1.0);
}

TEST(MultiResource, SchedulerGatesDeclaredBandwidth) {
  RdaOptions options;
  options.policy = PolicyKind::kStrict;
  options.bandwidth_capacity = 30e9;
  RdaScheduler sched(static_cast<double>(MB(15)), sim::Calibration{},
                     options);
  class NullWaker : public sim::ThreadWaker {
   public:
    void wake(sim::ThreadId) override {}
  } waker;
  sched.attach(waker);

  sim::PhaseSpec streaming;
  streaming.flops = 1e9;
  streaming.wss_bytes = MB(0.6);
  streaming.bw_bytes_per_sec = 12e9;
  streaming.reuse = ReuseLevel::kLow;
  streaming.marked = true;

  EXPECT_TRUE(sched.on_phase_begin(1, 1, streaming, 0.0).admit);
  EXPECT_TRUE(sched.on_phase_begin(2, 2, streaming, 0.0).admit);
  // Third 12 GB/s stream exceeds the 30 GB/s plane.
  EXPECT_FALSE(sched.on_phase_begin(3, 3, streaming, 0.0).admit);
}

TEST(MultiResource, SchedulerIgnoresBandwidthWhenDisabled) {
  RdaOptions options;
  options.policy = PolicyKind::kStrict;
  options.bandwidth_capacity = 0.0;  // extension off
  RdaScheduler sched(static_cast<double>(MB(15)), sim::Calibration{},
                     options);
  class NullWaker : public sim::ThreadWaker {
   public:
    void wake(sim::ThreadId) override {}
  } waker;
  sched.attach(waker);

  sim::PhaseSpec streaming;
  streaming.flops = 1e9;
  streaming.wss_bytes = MB(0.6);
  streaming.bw_bytes_per_sec = 12e9;
  streaming.reuse = ReuseLevel::kLow;
  streaming.marked = true;

  // All admitted: only the LLC is gated and 3 x 0.6 MB fits trivially.
  for (sim::ThreadId t = 1; t <= 3; ++t) {
    EXPECT_TRUE(sched.on_phase_begin(t, t, streaming, 0.0).admit) << t;
  }
}

TEST(MultiResource, NativeGateBeginMulti) {
  rt::GateConfig cfg;
  cfg.llc_capacity_bytes = static_cast<double>(MB(15));
  cfg.bandwidth_capacity = 30e9;
  cfg.policy = PolicyKind::kStrict;
  rt::AdmissionGate gate(cfg);
  const auto id = gate.begin_multi(
      {{ResourceKind::kLLC, static_cast<double>(MB(1))},
       {ResourceKind::kMemBandwidth, 10e9}},
      ReuseLevel::kLow, "stream");
  EXPECT_NEAR(gate.usage(ResourceKind::kMemBandwidth), 10e9, 1.0);
  gate.end(id);
  EXPECT_NEAR(gate.usage(ResourceKind::kMemBandwidth), 0.0, 1e-6);
}

}  // namespace
}  // namespace rda::core
