#include "service/arrival.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <numbers>
#include <sstream>
#include <utility>

#include "util/atomic_file.hpp"
#include "util/check.hpp"

namespace rda::service {

std::string_view to_string(ArrivalShape shape) {
  switch (shape) {
    case ArrivalShape::kPoisson: return "poisson";
    case ArrivalShape::kDiurnal: return "diurnal";
    case ArrivalShape::kBursty: return "bursty";
  }
  return "?";
}

std::string_view to_string(AdversaryKind kind) {
  switch (kind) {
    case AdversaryKind::kNone: return "none";
    case AdversaryKind::kWssInflator: return "wss-inflator";
    case AdversaryKind::kUnderDeclarer: return "under-declarer";
    case AdversaryKind::kChurn: return "churn";
  }
  return "?";
}

namespace {

/// Exponential gap with mean 1/rate. 1 - u is in (0, 1], so the log is
/// finite and the gap strictly positive.
double exponential_gap(util::Rng& rng, double rate) {
  return -std::log(1.0 - rng.next_double()) / rate;
}

}  // namespace

ArrivalGenerator::ArrivalGenerator(ArrivalConfig config)
    : config_(config), rng_(config.seed) {
  RDA_CHECK_MSG(config_.rate > 0.0, "arrival rate must be positive");
  RDA_CHECK_MSG(config_.tenants >= 1, "need at least one tenant");
  RDA_CHECK_MSG(config_.diurnal_amplitude >= 0.0 &&
                    config_.diurnal_amplitude < 1.0,
                "diurnal amplitude must be in [0, 1)");
  RDA_CHECK_MSG(config_.burst_fraction > 0.0 && config_.burst_fraction < 1.0,
                "burst fraction must be in (0, 1)");
  RDA_CHECK_MSG(config_.burst_multiplier >= 1.0,
                "burst multiplier must be >= 1");
  RDA_CHECK_MSG(config_.adversary.factor > 0.0,
                "adversary factor must be positive");
  RDA_CHECK_MSG(config_.adversary.churn_pieces >= 1,
                "churn must emit at least one piece");
}

double ArrivalGenerator::next_gap() {
  switch (config_.shape) {
    case ArrivalShape::kPoisson:
      return exponential_gap(rng_, config_.rate);
    case ArrivalShape::kDiurnal: {
      // Thinning (Lewis & Shedler): propose at the peak rate, accept a
      // proposal at t with probability λ(t)/λ_max. Rejected proposals
      // advance time, so the accepted stream follows λ(t) exactly.
      const double peak = config_.rate * (1.0 + config_.diurnal_amplitude);
      double t = time_;
      for (;;) {
        t += exponential_gap(rng_, peak);
        const double phase = 2.0 * std::numbers::pi * t /
                             config_.diurnal_period_seconds;
        const double lambda =
            config_.rate *
            (1.0 + config_.diurnal_amplitude * std::sin(phase));
        if (rng_.next_double() * peak < lambda) return t - time_;
      }
    }
    case ArrivalShape::kBursty: {
      // Two-state MMPP with the long-run mean pinned to config_.rate:
      //   rate = f·on + (1-f)·off   with   on = m·off
      // ⇒ off = rate / (f·m + 1 - f).
      const double f = config_.burst_fraction;
      const double m = config_.burst_multiplier;
      const double off_rate = config_.rate / (f * m + 1.0 - f);
      const double on_rate = m * off_rate;
      const double on_hold = config_.burst_mean_seconds;
      const double off_hold = on_hold * (1.0 - f) / f;
      double t = time_;
      for (;;) {
        if (t >= state_ends_) {
          // Entering a fresh state (the stream starts quiet); draw its
          // exponential holding time.
          burst_on_ = state_ends_ == 0.0 ? false : !burst_on_;
          state_ends_ =
              t + exponential_gap(rng_, 1.0 / (burst_on_ ? on_hold
                                                         : off_hold));
        }
        const double gap =
            exponential_gap(rng_, burst_on_ ? on_rate : off_rate);
        if (t + gap <= state_ends_) return t + gap - time_;
        t = state_ends_;  // gap crossed the state boundary: redraw there
      }
    }
  }
  RDA_CHECK_MSG(false, "unreachable arrival shape");
  return 0.0;
}

Arrival ArrivalGenerator::next() {
  if (!pending_.empty()) {
    Arrival stub = pending_.front();
    pending_.pop_front();
    stub.seq = seq_++;
    return stub;
  }
  time_ += next_gap();

  Arrival a;
  a.time = time_;
  a.seq = seq_++;
  if (config_.tenants == 1 || rng_.next_bool(config_.hot_tenant_share)) {
    a.tenant = 1;
  } else {
    a.tenant = 2 + rng_.next_below(config_.tenants - 1);
  }
  const auto jitter = [&](double mean, double spread) {
    return mean * (1.0 - spread + 2.0 * spread * rng_.next_double());
  };
  a.demand_bytes = jitter(config_.demand_mean_bytes, config_.demand_spread);
  a.service_seconds =
      jitter(config_.service_mean_seconds, config_.service_spread);
  if (config_.bw_mean_bytes_per_sec > 0.0) {
    a.bw_bytes_per_sec =
        jitter(config_.bw_mean_bytes_per_sec, config_.bw_spread);
  }
  if (config_.watts_mean > 0.0) {
    a.watts = jitter(config_.watts_mean, config_.watts_spread);
  }

  // Adversary overlay: transforms the already-drawn arrival, so RNG
  // consumption — and every honest tenant's sub-stream — is untouched.
  const AdversaryConfig& adv = config_.adversary;
  if (adv.kind != AdversaryKind::kNone && a.tenant == adv.tenant) {
    switch (adv.kind) {
      case AdversaryKind::kNone:
        break;
      case AdversaryKind::kWssInflator:
        a.true_demand_bytes = a.demand_bytes;
        a.demand_bytes *= adv.factor;
        break;
      case AdversaryKind::kUnderDeclarer:
        a.true_demand_bytes = a.demand_bytes * adv.factor;
        break;
      case AdversaryKind::kChurn: {
        a.service_seconds /= static_cast<double>(adv.churn_pieces);
        for (std::uint32_t p = 1; p < adv.churn_pieces; ++p) {
          pending_.push_back(a);  // seq assigned at emission
        }
        break;
      }
    }
  }
  return a;
}

namespace {

constexpr char kTraceHeader[] =
    "time,seq,tenant,demand_bytes,service_seconds,bw_bytes_per_sec,watts,"
    "true_demand_bytes";
/// Pre-adversary captures lack the true_demand column; they replay with
/// true_demand = 0 (every declaration truthful) — bit-identical behavior.
constexpr char kLegacyTraceHeader[] =
    "time,seq,tenant,demand_bytes,service_seconds,bw_bytes_per_sec,watts";

}  // namespace

TraceArrivals::TraceArrivals(std::vector<Arrival> arrivals)
    : arrivals_(std::move(arrivals)) {
  double last = 0.0;
  for (const Arrival& a : arrivals_) {
    RDA_CHECK_MSG(a.time >= last, "arrival trace times must be monotonic");
    last = a.time;
  }
}

TraceArrivals TraceArrivals::from_csv(const std::string& path) {
  std::ifstream in(path);
  RDA_CHECK_MSG(in.good(), "cannot open arrival trace: " + path);
  std::string line;
  RDA_CHECK_MSG(static_cast<bool>(std::getline(in, line)),
                "arrival trace is empty: " + path);
  const bool legacy = line == kLegacyTraceHeader;
  RDA_CHECK_MSG(legacy || line == kTraceHeader,
                "arrival trace header mismatch in " + path + ": " + line);

  std::vector<Arrival> arrivals;
  std::size_t row = 1;
  while (std::getline(in, line)) {
    ++row;
    if (line.empty()) continue;
    const char* p = line.c_str();
    const auto field = [&](double& out) {
      char* end = nullptr;
      out = std::strtod(p, &end);
      RDA_CHECK_MSG(end != p, "bad number in arrival trace " + path +
                                  " row " + std::to_string(row));
      p = *end == ',' ? end + 1 : end;
    };
    Arrival a;
    double seq = 0.0;
    double tenant = 0.0;
    field(a.time);
    field(seq);
    field(tenant);
    field(a.demand_bytes);
    field(a.service_seconds);
    field(a.bw_bytes_per_sec);
    field(a.watts);
    if (!legacy) field(a.true_demand_bytes);
    a.seq = static_cast<std::uint64_t>(seq);
    a.tenant = static_cast<std::uint64_t>(tenant);
    RDA_CHECK_MSG(a.tenant >= 1, "arrival trace tenant ids are 1-based (" +
                                     path + " row " + std::to_string(row) +
                                     ")");
    arrivals.push_back(a);
  }
  return TraceArrivals(std::move(arrivals));
}

Arrival TraceArrivals::next() {
  RDA_CHECK_MSG(cursor_ < arrivals_.size(),
                "arrival trace exhausted: replay asked for more arrivals "
                "than were recorded");
  return arrivals_[cursor_++];
}

std::vector<Arrival> record_arrivals(ArrivalSource& source,
                                     std::uint64_t count) {
  std::vector<Arrival> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) out.push_back(source.next());
  return out;
}

void write_arrival_trace_csv(const std::string& path,
                             std::span<const Arrival> arrivals) {
  std::ostringstream os;
  os << kTraceHeader << "\n";
  char buf[256];
  for (const Arrival& a : arrivals) {
    std::snprintf(buf, sizeof(buf),
                  "%.17g,%llu,%llu,%.17g,%.17g,%.17g,%.17g,%.17g\n", a.time,
                  static_cast<unsigned long long>(a.seq),
                  static_cast<unsigned long long>(a.tenant), a.demand_bytes,
                  a.service_seconds, a.bw_bytes_per_sec, a.watts,
                  a.true_demand_bytes);
    os << buf;
  }
  util::write_file_atomic(path, os.str());
}

}  // namespace rda::service
