// Corrupt-trace regression tests: every malformed-input class must surface
// as a TraceError carrying the exact byte offset at which parsing gave up —
// bad magic, truncated loop table, lying record-count header, bad parent
// links, and mid-stream truncation discovered by an already-open source.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>

#include "trace/arena.hpp"
#include "trace/error.hpp"
#include "trace/trace_io.hpp"
#include "util/check.hpp"

namespace rda::trace {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void append_bytes(std::string& buf, const void* data, std::size_t n) {
  buf.append(static_cast<const char*>(data), n);
}

template <typename T>
void append_pod(std::string& buf, T value) {
  append_bytes(buf, &value, sizeof(T));
}

void append_magic(std::string& buf) { buf.append("RDATRC01", 8); }

void write_file(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

/// One loop-table entry: u16 name length, name, pc_begin, pc_end, parent.
void append_loop(std::string& buf, const std::string& name,
                 std::uint32_t parent) {
  append_pod<std::uint16_t>(buf, static_cast<std::uint16_t>(name.size()));
  append_bytes(buf, name.data(), name.size());
  append_pod<std::uint64_t>(buf, 0x1000);
  append_pod<std::uint64_t>(buf, 0x2000);
  append_pod<std::uint32_t>(buf, parent);
}

std::optional<TraceError> open_error(const std::string& path) {
  try {
    TraceFile::open(path);
  } catch (const TraceError& e) {
    return e;
  }
  return std::nullopt;
}

TEST(TraceCorrupt, BadMagicReportsOffsetZero) {
  const std::string path = temp_path("badmagic.rdatrc");
  std::string buf = "XXXXXX01";
  append_pod<std::uint32_t>(buf, 0);
  append_pod<std::uint64_t>(buf, 0);
  write_file(path, buf);

  const std::optional<TraceError> err = open_error(path);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->byte_offset(), 0u);
  EXPECT_NE(std::string(err->what()).find("bad magic"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceCorrupt, TruncatedLoopTableReportsExactOffset) {
  const std::string path = temp_path("shortloop.rdatrc");
  std::string buf;
  append_magic(buf);
  append_pod<std::uint32_t>(buf, 1);  // promises one loop...
  append_pod<std::uint16_t>(buf, 10);  // ...whose 10-byte name...
  buf.append("abc", 3);                // ...is cut off after 3 bytes
  write_file(path, buf);

  const std::optional<TraceError> err = open_error(path);
  ASSERT_TRUE(err.has_value());
  // magic(8) + loop count(4) + name length(2) + the 3 bytes that were read.
  EXPECT_EQ(err->byte_offset(), 17u);
  EXPECT_NE(std::string(err->what()).find("loop name"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceCorrupt, ParentMustPrecedeChild) {
  const std::string path = temp_path("badparent.rdatrc");
  std::string buf;
  append_magic(buf);
  append_pod<std::uint32_t>(buf, 2);
  append_loop(buf, "outer", 0xffffffffu);
  append_loop(buf, "inner", 5);  // forward/self reference: invalid
  append_pod<std::uint64_t>(buf, 0);
  write_file(path, buf);

  const std::optional<TraceError> err = open_error(path);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(std::string(err->what()).find("parent"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceCorrupt, SelfParentRejected) {
  const std::string path = temp_path("selfparent.rdatrc");
  std::string buf;
  append_magic(buf);
  append_pod<std::uint32_t>(buf, 1);
  append_loop(buf, "l", 0);  // parent 0 == own index
  append_pod<std::uint64_t>(buf, 0);
  write_file(path, buf);
  EXPECT_TRUE(open_error(path).has_value());
  std::remove(path.c_str());
}

TEST(TraceCorrupt, LyingRecordCountFailsAtOpenNotMidProfile) {
  const std::string path = temp_path("lyingcount.rdatrc");
  std::string buf;
  append_magic(buf);
  append_pod<std::uint32_t>(buf, 0);
  append_pod<std::uint64_t>(buf, 5);  // promises 5 records...
  append_pod<std::uint64_t>(buf, 0xdeadbeef);
  buf.push_back('\0');  // ...but carries only 1
  write_file(path, buf);

  const std::optional<TraceError> err = open_error(path);
  ASSERT_TRUE(err.has_value());
  // The size check reports at end-of-file: 8 + 4 + 8 + 9 record bytes.
  EXPECT_EQ(err->byte_offset(), 29u);
  EXPECT_NE(std::string(err->what()).find("ends early"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceCorrupt, ImplausibleRecordCountRejected) {
  const std::string path = temp_path("hugecount.rdatrc");
  std::string buf;
  append_magic(buf);
  append_pod<std::uint32_t>(buf, 0);
  append_pod<std::uint64_t>(buf, UINT64_MAX);  // would overflow size math
  write_file(path, buf);

  const std::optional<TraceError> err = open_error(path);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(std::string(err->what()).find("implausible"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceCorrupt, MidStreamTruncationDetectedByOpenSource) {
  // The file is valid when opened, then shrinks on disk (crash of a
  // concurrent writer): the streaming source must report the truncation as
  // a TraceError instead of returning short/garbage records.
  const std::string path = temp_path("midstream.rdatrc");
  LoopNest nest;
  {
    TraceFileWriter writer(path, nest);
    for (std::uint64_t i = 0; i < 8; ++i) {
      writer.write({i, RecordKind::kLoad});
    }
  }
  const TraceFile file = TraceFile::open(path);  // header validated here
  ASSERT_EQ(file.record_count(), 8u);
  std::filesystem::resize_file(path,
                               std::filesystem::file_size(path) - 13);

  auto source = file.records();  // fresh handle sees the shrunken file
  TraceRecord record;
  bool threw = false;
  try {
    while (source->next(record)) {
    }
  } catch (const TraceError& e) {
    threw = true;
    EXPECT_NE(std::string(e.what()).find("truncated mid-stream"),
              std::string::npos);
  }
  EXPECT_TRUE(threw);
  std::remove(path.c_str());
}

TEST(TraceCorrupt, ArenaRejectsTruncatedRecordSection) {
  const std::string path = temp_path("arenatrunc.rdatrc");
  LoopNest nest;
  {
    TraceFileWriter writer(path, nest);
    for (std::uint64_t i = 0; i < 4; ++i) {
      writer.write({i, RecordKind::kStore});
    }
  }
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 5);
  EXPECT_THROW(TraceArena::load(path), util::CheckFailure);
  std::remove(path.c_str());
}

TEST(TraceCorrupt, TraceErrorIsACheckFailure) {
  // Every pre-existing catch site handles util::CheckFailure; the richer
  // error must keep flowing through them unchanged.
  const std::string path = temp_path("compat.rdatrc");
  write_file(path, "definitely not a trace");
  EXPECT_THROW(TraceFile::open(path), util::CheckFailure);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rda::trace
