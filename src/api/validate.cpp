#include "api/validate.hpp"

#include <sstream>

namespace rda::api {

std::vector<ValidationIssue> validate_program(
    const sim::PhaseProgram& program, const ValidationOptions& options) {
  std::vector<ValidationIssue> issues;
  auto add = [&](ValidationIssue::Severity severity, std::size_t index,
                 std::string message) {
    issues.push_back({severity, index, std::move(message)});
  };

  for (std::size_t i = 0; i < program.phases.size(); ++i) {
    const sim::PhaseSpec& p = program.phases[i];
    if (p.flops < 0.0) {
      add(ValidationIssue::Severity::kError, i, "negative flops");
    }
    if (p.marked && p.contains_blocking_sync) {
      // §3.4: a paused sibling inside a synchronizing period can deadlock
      // the whole group; such regions must stay default-scheduled.
      add(ValidationIssue::Severity::kError, i,
          "blocking synchronization inside a progress period");
    }
    if (p.marked && p.wss_bytes == 0) {
      add(ValidationIssue::Severity::kWarning, i,
          "marked period declares zero demand; it gains nothing from RDA");
    }
    if (options.llc_capacity_bytes > 0 && p.marked &&
        p.wss_bytes > options.llc_capacity_bytes) {
      std::ostringstream os;
      os << "working set (" << p.wss_bytes
         << " B) exceeds LLC capacity (" << options.llc_capacity_bytes
         << " B); §3.4 expects individually fitting periods";
      add(ValidationIssue::Severity::kWarning, i, os.str());
    }
  }
  return issues;
}

bool program_ok(const std::vector<ValidationIssue>& issues) {
  for (const ValidationIssue& issue : issues) {
    if (issue.severity == ValidationIssue::Severity::kError) return false;
  }
  return true;
}

}  // namespace rda::api
