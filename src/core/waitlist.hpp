// Resource waitlist (§3.1).
//
// "Processes that are paused are placed on a resource waitlist so they may
//  be rescheduled later when another progress period completes and releases
//  sufficient resources."
//
// FIFO by default. The scan policy on release is configurable:
//   * work-conserving (default): walk the list in arrival order and admit
//     every entry that now fits (skipping ones that don't);
//   * head-only: stop at the first entry that does not fit — stronger
//     arrival-order fairness, weaker utilization (ablation bench).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <vector>

#include "core/registry.hpp"

namespace rda::core {

class Waitlist {
 public:
  struct Entry {
    PeriodId period = kInvalidPeriod;
    sim::ThreadId thread = sim::kInvalidThread;
    sim::ProcessId process = sim::kInvalidProcess;
    double enqueue_time = 0.0;
  };

  void push(Entry entry) { entries_.push_back(entry); }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  const std::deque<Entry>& entries() const { return entries_; }

  /// Removes and returns every entry `admit` accepts, in FIFO order. When
  /// `head_only`, scanning stops at the first rejection.
  std::vector<Entry> drain_admissible(
      const std::function<bool(const Entry&)>& admit, bool head_only);

  /// Removes all entries of one process (group admission for thread pools).
  std::vector<Entry> remove_process(sim::ProcessId process);

  /// Total pending entries of one process.
  std::size_t count_process(sim::ProcessId process) const;

 private:
  std::deque<Entry> entries_;
};

}  // namespace rda::core
