#include "fig_common.hpp"

#include <cstring>
#include <iostream>

#include "util/table.hpp"

namespace rda::bench {

FigureData run_all_workloads(bool quick, int jobs) {
  FigureData data;
  sim::EngineConfig engine;
  engine.machine = sim::MachineConfig::e5_2420();

  for (const workload::WorkloadSpec& spec : workload::table2_workloads()) {
    data.specs.push_back(quick ? workload::scale_workload(spec, 0.125, 4)
                               : spec);
  }
  data.comparisons = exp::compare_policies_all(data.specs, engine, jobs);
  for (const workload::WorkloadSpec& spec : data.specs) {
    std::cerr << "  ran " << spec.name << (quick ? " (quick)" : "") << "\n";
  }
  return data;
}

namespace {

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

}  // namespace

bool quick_requested(int argc, char** argv) {
  return has_flag(argc, argv, "--quick");
}

bool csv_requested(int argc, char** argv) {
  return has_flag(argc, argv, "--csv");
}

int jobs_requested(int argc, char** argv) {
  return exp::parse_jobs(argc, argv);
}

void print_metric_table(
    const FigureData& data, const std::string& metric_name, int precision,
    const std::function<double(const exp::RunRow&)>& metric, bool csv) {
  if (csv) {
    std::cout << "workload,linux_default,rda_strict,rda_compromise\n";
    for (std::size_t i = 0; i < data.comparisons.size(); ++i) {
      const exp::PolicyComparison& cmp = data.comparisons[i];
      std::cout << data.specs[i].name << ',' << metric(cmp.baseline) << ','
                << metric(cmp.strict) << ',' << metric(cmp.compromise)
                << '\n';
    }
    return;
  }
  util::Table table({"workload", "Linux default", "RDA:Strict",
                     "RDA:Compromise(x=2)"});
  for (std::size_t i = 0; i < data.comparisons.size(); ++i) {
    const exp::PolicyComparison& cmp = data.comparisons[i];
    table.begin_row()
        .add_cell(data.specs[i].name)
        .add_cell(metric(cmp.baseline), precision)
        .add_cell(metric(cmp.strict), precision)
        .add_cell(metric(cmp.compromise), precision);
  }
  std::cout << "metric: " << metric_name << "\n" << table.render() << "\n";
}

}  // namespace rda::bench
