#include "obs/ring.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace rda::obs {
namespace {

Event event_with_period(core::PeriodId id) {
  Event e;
  e.period = id;
  e.time = static_cast<double>(id);
  return e;
}

TEST(EventRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(EventRing(1).capacity(), 1u);
  EXPECT_EQ(EventRing(2).capacity(), 2u);
  EXPECT_EQ(EventRing(5).capacity(), 8u);
  EXPECT_EQ(EventRing(8).capacity(), 8u);
  EXPECT_EQ(EventRing(1000).capacity(), 1024u);
}

TEST(EventRing, SnapshotReturnsEventsInOrder) {
  EventRing ring(8);
  for (core::PeriodId id = 1; id <= 5; ++id) {
    ring.push(event_with_period(id));
  }
  EXPECT_EQ(ring.total_recorded(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  const std::vector<Event> events = ring.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].period, i + 1);
  }
}

TEST(EventRing, WrapAroundKeepsNewestAndCountsDropped) {
  EventRing ring(4);
  for (core::PeriodId id = 1; id <= 6; ++id) {
    ring.push(event_with_period(id));
  }
  EXPECT_EQ(ring.total_recorded(), 6u);
  EXPECT_EQ(ring.dropped(), 2u);  // events 1 and 2 were overwritten
  const std::vector<Event> events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].period, i + 3);  // oldest surviving first
  }
}

TEST(EventRing, LabelsSurviveTheRing) {
  EventRing ring(4);
  Event e;
  e.set_label("a-label-longer-than-the-24-byte-field");
  ring.push(e);
  const std::vector<Event> events = ring.snapshot();
  ASSERT_EQ(events.size(), 1u);
  // Truncated to fit, NUL-terminated.
  EXPECT_EQ(std::string_view(events[0].label), "a-label-longer-than-the");
}

TEST(EventRing, ConcurrentPushesLoseNothing) {
  EventRing ring(1 << 12);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ring.push(event_with_period(
            static_cast<core::PeriodId>(t * kPerThread + i + 1)));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ring.total_recorded(), kThreads * kPerThread);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.snapshot().size(), kThreads * kPerThread);
}

}  // namespace
}  // namespace rda::obs
