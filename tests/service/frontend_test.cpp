#include "service/frontend.hpp"

#include <gtest/gtest.h>

#include "obs/recorder.hpp"
#include "obs/reconcile.hpp"

namespace rda::service {
namespace {

constexpr double kMB = 1024.0 * 1024.0;

ArrivalConfig calm_arrivals(std::uint64_t seed = 3) {
  ArrivalConfig a;
  a.shape = ArrivalShape::kPoisson;
  a.rate = 5000.0;
  a.seed = seed;
  a.tenants = 4;
  a.demand_mean_bytes = 2.0 * kMB;
  a.service_mean_seconds = 2.0e-3;
  return a;
}

ServiceConfig small_service() {
  ServiceConfig cfg;
  cfg.nodes = 4;
  cfg.node_llc_bytes = 15.0 * kMB;
  return cfg;
}

TEST(ServiceFrontEnd, CalmRunCompletesEveryArrival) {
  ArrivalGenerator gen(calm_arrivals());
  ServiceFrontEnd service(small_service());
  const ServiceReport report = service.run(gen, 20000);

  // A stolen batch re-enqueues its submissions, so enqueues exceed the
  // arrival count by exactly the stolen periods.
  EXPECT_EQ(report.stats.enqueued, 20000u + report.stats.stolen);
  EXPECT_EQ(report.stats.completed, 20000u);
  EXPECT_EQ(report.stats.shed, 0u);
  EXPECT_EQ(report.stats.overflow_drops, 0u);
  EXPECT_EQ(report.stats.still_queued, 0u);
  EXPECT_EQ(report.stats.reroutes, 0u);
  EXPECT_EQ(report.stats.admitted, 20000u);
  // The core ledger balances: steal withdrawals cancel, all else ends.
  EXPECT_EQ(report.admission.begins, 20000u + report.admission.cancels);
  EXPECT_EQ(report.admission.ends, 20000u);
  // ~5000/s offered, all completed: goodput lands near the offered rate.
  EXPECT_GT(report.goodput_per_second, 4000.0);
  EXPECT_LT(report.goodput_per_second, 6000.0);
  // Latency histogram saw every admission; admission waits at least one
  // drain tick, so p50 is at or above the drain interval.
  EXPECT_EQ(report.admission_latency.count(), 20000u);
  EXPECT_GE(report.admission_latency.p50(), 0.5e-3);
}

TEST(ServiceFrontEnd, RunsAreByteDeterministic) {
  ServiceConfig cfg = small_service();
  ArrivalConfig arr = calm_arrivals(17);
  arr.shape = ArrivalShape::kBursty;

  ArrivalGenerator g1(arr);
  ServiceFrontEnd s1(cfg);
  const ServiceReport r1 = s1.run(g1, 10000);

  ArrivalGenerator g2(arr);
  ServiceFrontEnd s2(cfg);
  const ServiceReport r2 = s2.run(g2, 10000);

  EXPECT_EQ(r1.checksum, r2.checksum);
  EXPECT_EQ(r1.stats.completed, r2.stats.completed);
  EXPECT_EQ(r1.stats.drains, r2.stats.drains);
  EXPECT_EQ(r1.elapsed_seconds, r2.elapsed_seconds);
  EXPECT_EQ(r1.admission_latency.p99(), r2.admission_latency.p99());
}

TEST(ServiceFrontEnd, QueueLedgerReconcilesAgainstServiceEvents) {
  obs::EventRecorder recorder(1 << 18);
  ServiceConfig cfg = small_service();
  cfg.trace_sink = &recorder;
  ArrivalGenerator gen(calm_arrivals(5));
  ServiceFrontEnd service(cfg);
  const ServiceReport report = service.run(gen, 5000);
  ASSERT_EQ(recorder.dropped(), 0u);

  obs::ServiceStatsCheck check;
  check.enqueued = report.stats.enqueued;
  check.drains = report.stats.drains;
  check.steals = report.stats.steals;
  check.stolen = report.stats.stolen;
  check.reroutes = report.stats.reroutes;
  check.mailboxed = report.stats.mailboxed;
  check.shed = report.stats.shed;
  check.still_queued = report.stats.still_queued;
  const auto events = recorder.events();
  const obs::ReconcileReport ledger =
      obs::reconcile_service(events, check);
  EXPECT_TRUE(ledger.ok) << ledger.message;
}

TEST(ServiceFrontEnd, ShardedDrainIsByteIdenticalAcrossShardCounts) {
  // The config exercises every cross-shard path: a node death (reroutes),
  // a rejoin (steals), and enough load that shard queues stay non-trivial.
  // The lockstep merge must make K invisible: any shard count replays the
  // same canonical order, so checksum, stats, and percentiles all match.
  ArrivalConfig arr = calm_arrivals(37);
  arr.rate = 1500.0;
  arr.demand_mean_bytes = 6.0 * kMB;
  arr.service_mean_seconds = 5.0e-3;
  ServiceConfig cfg;
  cfg.nodes = 2;
  cfg.node_llc_bytes = 15.0 * kMB;
  cfg.ladder.queue_high = 1.0e9;
  cfg.ladder.latency_high_seconds = 1.0e9;
  cfg.fault.node = 1;
  cfg.fault.fail_at_seconds = 0.2;
  cfg.fault.recover_at_seconds = 0.35;

  std::vector<ServiceReport> reports;
  for (const int shards : {1, 4, 16}) {
    cfg.drain_shards = shards;
    ArrivalGenerator gen(arr);
    ServiceFrontEnd service(cfg);
    reports.push_back(service.run(gen, 1200));
    EXPECT_EQ(reports.back().drain_shards, shards);
    EXPECT_EQ(reports.back().shards.size(),
              static_cast<std::size_t>(shards));
  }
  const ServiceReport& base = reports.front();
  EXPECT_GE(base.stats.steals, 1u);
  EXPECT_GT(base.stats.reroutes, 0u);
  for (const ServiceReport& r : reports) {
    EXPECT_EQ(r.checksum, base.checksum);
    EXPECT_EQ(r.stats.completed, base.stats.completed);
    EXPECT_EQ(r.stats.drains, base.stats.drains);
    EXPECT_EQ(r.stats.stolen, base.stats.stolen);
    EXPECT_EQ(r.stats.reroutes, base.stats.reroutes);
    EXPECT_EQ(r.stats.mailboxed, base.stats.mailboxed);
    EXPECT_EQ(r.elapsed_seconds, base.elapsed_seconds);
    EXPECT_EQ(r.admission_latency.p99(), base.admission_latency.p99());

    // Mailbox ledger: every displaced submission took exactly one hop.
    EXPECT_EQ(r.stats.mailboxed, r.stats.stolen + r.stats.reroutes);
    // Per-shard counters partition the global stats exactly.
    std::uint64_t enqueued = 0, drained = 0, mail_in = 0, mail_out = 0;
    for (const ShardCounters& c : r.shards) {
      enqueued += c.enqueued;
      drained += c.drained;
      mail_in += c.mail_in;
      mail_out += c.mail_out;
    }
    EXPECT_EQ(enqueued, r.stats.enqueued - r.stats.mailboxed);
    EXPECT_EQ(drained, r.stats.drained);
    EXPECT_EQ(mail_in, r.stats.mailboxed);
    EXPECT_EQ(mail_out, r.stats.mailboxed);
  }
}

TEST(ServiceFrontEnd, SloSheddingKeepsGoodputAtOrAboveDropAll) {
  // Bursty overload that pins the ladder at rung 3 long enough to shed
  // thousands. shed_keep_fraction 0 is the old drop-all rung; 0.25 keeps
  // the quarter of each drained batch carrying the most declared work.
  // Shedding cheapest-first must not cost goodput — the kept periods are
  // exactly the ones whose completed work is hardest to replace.
  ArrivalConfig arr = calm_arrivals(23);
  arr.shape = ArrivalShape::kBursty;
  arr.rate = 25000.0;
  arr.demand_mean_bytes = 8.0 * kMB;

  ServiceConfig cfg = small_service();
  cfg.ladder.queue_high = 64.0;

  cfg.shed_keep_fraction = 0.0;
  ArrivalGenerator g1(arr);
  ServiceFrontEnd drop_all(cfg);
  const ServiceReport base = drop_all.run(g1, 30000);

  cfg.shed_keep_fraction = 0.25;
  ArrivalGenerator g2(arr);
  ServiceFrontEnd slo(cfg);
  const ServiceReport kept = slo.run(g2, 30000);

  ASSERT_GT(base.stats.shed, 0u);
  ASSERT_GT(kept.stats.shed, 0u);
  // Both resolve every arrival exactly once.
  EXPECT_EQ(base.stats.completed + base.stats.shed, 30000u);
  EXPECT_EQ(kept.stats.completed + kept.stats.shed, 30000u);
  // SLO-aware shedding sheds fewer and completes more...
  EXPECT_LT(kept.stats.shed, base.stats.shed);
  EXPECT_GT(kept.stats.completed, base.stats.completed);
  // ...and goodput does not regress against the drop-all baseline.
  EXPECT_GE(kept.goodput_per_second, base.goodput_per_second);
  EXPECT_GE(kept.work_per_second, base.work_per_second);
}

TEST(ServiceFrontEnd, OverloadClimbsTheLadderAndShedsAtTheTop) {
  // ~4 MB demands on 15 MB nodes with 2 ms service: the fleet sustains
  // roughly 6k/s at rung 0. Offer 4x that: the backlog EWMA crosses the
  // (deliberately low) threshold, the ladder climbs through clamp and
  // forced-oversub to shed, and de-escalates once arrivals stop.
  ArrivalConfig arr = calm_arrivals(23);
  arr.rate = 25000.0;
  arr.demand_mean_bytes = 8.0 * kMB;  // above the rung-1 clamp cap
  ServiceConfig cfg = small_service();
  cfg.ladder.queue_high = 64.0;
  ArrivalGenerator gen(arr);
  ServiceFrontEnd service(cfg);
  const ServiceReport report = service.run(gen, 30000);

  EXPECT_GT(report.stats.escalations, 0u);
  EXPECT_GT(report.stats.shed, 0u);
  EXPECT_GT(report.stats.clamped, 0u);
  EXPECT_GT(report.stats.oversubscribed, 0u);
  EXPECT_GT(report.stats.max_backlog, 64u);
  // Every arrival resolves exactly one way.
  EXPECT_EQ(report.stats.completed + report.stats.shed, 30000u);
  // Load is gone at the end: the ladder walked back down.
  EXPECT_EQ(report.stats.final_rung, 0);
  EXPECT_GT(report.stats.deescalations, 0u);
}

TEST(ServiceFrontEnd, LocalityRoutingBeatsRandomOnTheSameTrace) {
  // Hot tenants re-hitting their home node's warm LLC run at 0.6x service
  // time; random placement forfeits most of those hits. Same arrival
  // stream, same fleet — only the routing policy differs.
  ArrivalConfig arr = calm_arrivals(29);
  arr.rate = 9000.0;
  arr.hot_tenant_share = 0.5;

  ServiceConfig cfg = small_service();
  cfg.routing = RoutePolicy::kLocalityAware;
  ArrivalGenerator g1(arr);
  ServiceFrontEnd locality(cfg);
  const ServiceReport with_locality = locality.run(g1, 20000);

  cfg.routing = RoutePolicy::kRandom;
  ArrivalGenerator g2(arr);
  ServiceFrontEnd random(cfg);
  const ServiceReport with_random = random.run(g2, 20000);

  ASSERT_EQ(with_locality.stats.shed, 0u);
  ASSERT_EQ(with_random.stats.shed, 0u);
  EXPECT_GT(with_locality.work_per_second, with_random.work_per_second);
  EXPECT_LT(with_locality.admission_latency.p99(),
            with_random.admission_latency.p99() + 1.0e-9);
}

TEST(ServiceFrontEnd, NodeDeathAtFullLoadLosesNoWork) {
  obs::EventRecorder recorder(1 << 18);
  ArrivalConfig arr = calm_arrivals(31);
  arr.rate = 8000.0;
  ServiceConfig cfg = small_service();
  cfg.trace_sink = &recorder;
  cfg.fault.node = 1;
  cfg.fault.fail_at_seconds = 0.2;
  cfg.fault.recover_at_seconds = 0.6;
  ArrivalGenerator gen(arr);
  ServiceFrontEnd service(cfg);
  const ServiceReport report = service.run(gen, 16000);

  // The dead node's parked AND admitted periods were re-queued and then
  // completed elsewhere; nothing vanished and nothing ran twice.
  EXPECT_GT(report.stats.reroutes, 0u);
  EXPECT_EQ(report.stats.completed, 16000u);
  EXPECT_EQ(report.stats.shed, 0u);
  EXPECT_EQ(recorder.count(obs::EventKind::kNodeDown), 1u);
  EXPECT_EQ(recorder.count(obs::EventKind::kNodeUp), 1u);
  // Fleet-wide admission ledger: every begin resolved exactly once.
  EXPECT_EQ(report.admission.begins,
            report.admission.ends + report.admission.cancels +
                report.admission.reclaims + report.admission.rejections);
  // The extra begins are exactly the re-submissions of rerouted work.
  EXPECT_EQ(report.admission.begins,
            16000u + report.admission.cancels + report.admission.reclaims);
}

TEST(ServiceFrontEnd, RejoinedIdleNodeStealsAParkedTenantBatch) {
  // Two overloaded nodes; node 1 dies and rejoins while the survivor is
  // drowning in parked periods from several tenants. The steal pass hands
  // the rejoined idle node a whole tenant batch.
  ArrivalConfig arr = calm_arrivals(37);
  arr.rate = 1500.0;
  arr.demand_mean_bytes = 6.0 * kMB;  // ~2 concurrent per 15 MB node
  arr.service_mean_seconds = 5.0e-3;
  ServiceConfig cfg;
  cfg.nodes = 2;
  cfg.node_llc_bytes = 15.0 * kMB;
  cfg.ladder.queue_high = 1.0e9;  // keep the ladder quiet: no shedding
  cfg.ladder.latency_high_seconds = 1.0e9;
  cfg.fault.node = 1;
  cfg.fault.fail_at_seconds = 0.2;
  cfg.fault.recover_at_seconds = 0.35;
  obs::EventRecorder recorder(1 << 18);
  cfg.trace_sink = &recorder;
  ArrivalGenerator gen(arr);
  ServiceFrontEnd service(cfg);
  const ServiceReport report = service.run(gen, 1200);

  EXPECT_GE(report.stats.steals, 1u);
  EXPECT_GE(report.stats.stolen, 1u);
  EXPECT_EQ(recorder.count(obs::EventKind::kSteal), report.stats.steals);
  EXPECT_EQ(report.stats.shed, 0u);
  EXPECT_EQ(report.stats.completed, 1200u);
}

TEST(ServiceFrontEnd, MultiResourceRunReportsPerResourceHeadroom) {
  ServiceConfig cfg = small_service();
  cfg.node_bandwidth = 30e9;
  cfg.node_energy_watts = 25.0;
  ArrivalConfig arr = calm_arrivals(11);
  arr.bw_mean_bytes_per_sec = 6e9;
  arr.watts_mean = 5.0;

  ArrivalGenerator gen(arr);
  ServiceFrontEnd service(cfg);
  const ServiceReport report = service.run(gen, 15000);

  EXPECT_EQ(report.stats.completed, 15000u);
  EXPECT_EQ(report.stats.still_queued, 0u);
  // The report names every gated capacity...
  constexpr auto kLlc = static_cast<std::size_t>(ResourceKind::kLLC);
  constexpr auto kBw = static_cast<std::size_t>(ResourceKind::kMemBandwidth);
  constexpr auto kWatts =
      static_cast<std::size_t>(ResourceKind::kEnergyBudget);
  EXPECT_EQ(report.node_capacity[kLlc], cfg.node_llc_bytes);
  EXPECT_EQ(report.node_capacity[kBw], 30e9);
  EXPECT_EQ(report.node_capacity[kWatts], 25.0);
  // ...and the peak declared demand outstanding per node stays within the
  // strict per-node bound for every kind (headroom is never negative).
  EXPECT_GT(report.peak_outstanding[kBw], 0.0);
  EXPECT_GT(report.peak_outstanding[kWatts], 0.0);
  EXPECT_LE(report.peak_outstanding[kLlc], cfg.node_llc_bytes * (1 + 1e-9));
  EXPECT_LE(report.peak_outstanding[kBw], 30e9 * (1 + 1e-9));
  EXPECT_LE(report.peak_outstanding[kWatts], 25.0 * (1 + 1e-9));

  // The extended run is exactly as reproducible as the LLC-only one.
  ArrivalGenerator twin_gen(arr);
  ServiceFrontEnd twin(cfg);
  EXPECT_EQ(twin.run(twin_gen, 15000).checksum, report.checksum);
}

TEST(ServiceFrontEnd, LadderClampsTheDominantResourceNotJustLlc) {
  // Bandwidth-dominant overload: tiny 1 MB working sets (far below the
  // rung-1 LLC cap of clamp_fraction * 15 MB) but 25 GB/s appetites on
  // 30 GB/s nodes. Any clamp recorded here must have cut the bandwidth
  // component, because the LLC component can never trip its cap.
  ServiceConfig cfg = small_service();
  cfg.node_bandwidth = 30e9;
  cfg.ladder.queue_high = 64.0;
  ArrivalConfig arr = calm_arrivals(29);
  arr.rate = 25000.0;
  arr.demand_mean_bytes = 1.0 * kMB;
  arr.demand_spread = 0.2;
  arr.bw_mean_bytes_per_sec = 25e9;
  arr.bw_spread = 0.1;

  ArrivalGenerator gen(arr);
  ServiceFrontEnd service(cfg);
  const ServiceReport report = service.run(gen, 30000);

  EXPECT_GT(report.stats.escalations, 0u);
  EXPECT_GT(report.stats.clamped, 0u);
  EXPECT_EQ(report.stats.completed + report.stats.shed, 30000u);
  EXPECT_EQ(report.stats.final_rung, 0);
}

}  // namespace
}  // namespace rda::service
