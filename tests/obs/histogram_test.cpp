#include "obs/histogram.hpp"

#include <gtest/gtest.h>

namespace rda::obs {
namespace {

TEST(WaitHistogram, EmptyReportsZeros) {
  WaitHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.p95(), 0.0);
}

TEST(WaitHistogram, SingleSampleIsExact) {
  WaitHistogram h;
  h.add(3e-3);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 3e-3);
  EXPECT_DOUBLE_EQ(h.max(), 3e-3);
  EXPECT_DOUBLE_EQ(h.mean(), 3e-3);
  // Bucket midpoint is clamped to the observed [min, max] == the sample.
  EXPECT_DOUBLE_EQ(h.p50(), 3e-3);
  EXPECT_DOUBLE_EQ(h.p95(), 3e-3);
}

TEST(WaitHistogram, QuantilesAreBucketAccurate) {
  WaitHistogram h;
  // 90 waits near 1 us, 10 near 1 s: p50 must see the short cluster and
  // p95 the long one; power-of-two buckets are exact to a factor of two.
  for (int i = 0; i < 90; ++i) h.add(1e-6);
  for (int i = 0; i < 10; ++i) h.add(1.0);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_GE(h.p50(), 0.5e-6);
  EXPECT_LE(h.p50(), 2e-6);
  EXPECT_GE(h.p95(), 0.5);
  EXPECT_LE(h.p95(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1.0);
  EXPECT_NEAR(h.mean(), (90.0 * 1e-6 + 10.0) / 100.0, 1e-9);
}

TEST(WaitHistogram, NegativeAndZeroClampToFloorBucket) {
  WaitHistogram h;
  h.add(-1.0);  // clock skew must not corrupt the histogram
  h.add(0.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.bucket_count(0), 2u);
}

TEST(WaitHistogram, MergeCombinesCountsAndExtremes) {
  WaitHistogram a;
  WaitHistogram b;
  a.add(1e-6);
  a.add(2e-6);
  b.add(1e-3);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.min(), 1e-6);
  EXPECT_DOUBLE_EQ(a.max(), 1e-3);
  // Merging an empty histogram is a no-op.
  a.merge(WaitHistogram{});
  EXPECT_EQ(a.count(), 3u);
}

TEST(WaitHistogram, BucketFloorsDouble) {
  EXPECT_DOUBLE_EQ(WaitHistogram::bucket_floor(0), 0.0);
  EXPECT_DOUBLE_EQ(WaitHistogram::bucket_floor(1), 1e-9);
  EXPECT_DOUBLE_EQ(WaitHistogram::bucket_floor(2), 2e-9);
  EXPECT_DOUBLE_EQ(WaitHistogram::bucket_floor(11), 1024e-9);
}

// LatencyHistogram (SubBucketBits = 3) splits every octave into eight
// sub-buckets, so relative bucket width is at most 12.5% — tight enough
// for SLO-grade p50/p95/p99. The tests below pin the bucket layout and
// the interpolation behaviour the service bench depends on.

TEST(LatencyHistogram, LinearRegionBucketBoundaries) {
  // Below kSubBuckets (8) ns, buckets are exactly 1 ns wide.
  EXPECT_EQ(LatencyHistogram::kSubBuckets, 8u);
  EXPECT_DOUBLE_EQ(LatencyHistogram::bucket_floor(0), 0.0);
  EXPECT_DOUBLE_EQ(LatencyHistogram::bucket_floor(1), 1e-9);
  EXPECT_DOUBLE_EQ(LatencyHistogram::bucket_floor(7), 7e-9);
  EXPECT_EQ(LatencyHistogram::bucket_of(3e-9), 3u);
  EXPECT_EQ(LatencyHistogram::bucket_of(7e-9), 7u);
}

TEST(LatencyHistogram, SubBucketBoundaries) {
  // First split octave [8, 16) ns: eight 1 ns sub-buckets starting at
  // bucket index 8; the next octave [16, 32) ns has 2 ns sub-buckets.
  EXPECT_DOUBLE_EQ(LatencyHistogram::bucket_floor(8), 8e-9);
  EXPECT_DOUBLE_EQ(LatencyHistogram::bucket_floor(15), 15e-9);
  EXPECT_DOUBLE_EQ(LatencyHistogram::bucket_floor(16), 16e-9);
  EXPECT_DOUBLE_EQ(LatencyHistogram::bucket_floor(17), 18e-9);
  EXPECT_DOUBLE_EQ(LatencyHistogram::bucket_ceiling(17), 20e-9);
  EXPECT_EQ(LatencyHistogram::bucket_of(8e-9), 8u);
  EXPECT_EQ(LatencyHistogram::bucket_of(15e-9), 15u);
  EXPECT_EQ(LatencyHistogram::bucket_of(16e-9), 16u);
  EXPECT_EQ(LatencyHistogram::bucket_of(19e-9), 17u);
  // 1 us = 1024..  sits at the start of the [1024, 2048) ns octave minus
  // the 1000 ns offset: 1000 ns lands in sub-bucket (1000-512)/64 = 7 of
  // the [512, 1024) octave.
  const std::size_t b = LatencyHistogram::bucket_of(1e-6);
  EXPECT_LE(LatencyHistogram::bucket_floor(b), 1e-6);
  EXPECT_GT(LatencyHistogram::bucket_ceiling(b), 1e-6);
}

TEST(LatencyHistogram, EveryBucketFloorMapsBackToItself) {
  // bucket_of(bucket_floor(b)) == b for every bucket: the floor is the
  // canonical representative, so the two functions must be inverses.
  // (Stop at the octave of 2^53 ns where doubles still hold exact
  // integers; beyond that floor values are not representable.)
  const std::size_t limit =
      LatencyHistogram::kSubBuckets + 53 * LatencyHistogram::kSubBuckets;
  for (std::size_t b = 1; b < limit; ++b) {
    EXPECT_EQ(LatencyHistogram::bucket_of(LatencyHistogram::bucket_floor(b)), b)
        << "bucket " << b;
  }
}

TEST(LatencyHistogram, SingleSampleIsExact) {
  LatencyHistogram h;
  h.add(4.2e-3);
  EXPECT_DOUBLE_EQ(h.p50(), 4.2e-3);
  EXPECT_DOUBLE_EQ(h.p95(), 4.2e-3);
  EXPECT_DOUBLE_EQ(h.p99(), 4.2e-3);
}

TEST(LatencyHistogram, PercentileInterpolationWithinBucketWidth) {
  LatencyHistogram h;
  // Uniform ramp 1..1000 us: true p50 = 500.5 us, p95 = 950.05 us,
  // p99 = 990.01 us. With 12.5% buckets the estimate must land within
  // one bucket width of the truth.
  for (int i = 1; i <= 1000; ++i) h.add(i * 1e-6);
  EXPECT_NEAR(h.quantile(0.50), 500.5e-6, 0.125 * 500.5e-6);
  EXPECT_NEAR(h.quantile(0.95), 950.05e-6, 0.125 * 950.05e-6);
  EXPECT_NEAR(h.quantile(0.99), 990.01e-6, 0.125 * 990.01e-6);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1e-6);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000e-6);
  EXPECT_NEAR(h.sum(), 500.5e-3, 1e-9);
}

TEST(LatencyHistogram, MergeIsOrderIndependent) {
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram c;
  for (int i = 0; i < 50; ++i) a.add(1e-6 + i * 1e-8);
  for (int i = 0; i < 50; ++i) b.add(1e-3 + i * 1e-6);
  c.add(0.5);

  LatencyHistogram ab_c;
  ab_c.merge(a);
  ab_c.merge(b);
  ab_c.merge(c);
  LatencyHistogram c_ba;
  c_ba.merge(c);
  c_ba.merge(b);
  c_ba.merge(a);

  EXPECT_EQ(ab_c.count(), c_ba.count());
  EXPECT_DOUBLE_EQ(ab_c.p50(), c_ba.p50());
  EXPECT_DOUBLE_EQ(ab_c.p99(), c_ba.p99());
  EXPECT_DOUBLE_EQ(ab_c.min(), c_ba.min());
  EXPECT_DOUBLE_EQ(ab_c.max(), c_ba.max());
  EXPECT_DOUBLE_EQ(ab_c.sum(), c_ba.sum());
}

}  // namespace
}  // namespace rda::obs
