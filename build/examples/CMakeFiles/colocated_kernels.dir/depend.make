# Empty dependencies file for colocated_kernels.
# This may be replaced when dependencies are built.
