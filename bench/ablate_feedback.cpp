// Extension bench: counter-feedback demand correction.
//
// The paper's demands are developer-declared; the related-work section
// proposes fusing them with real-time hardware counters. This bench sweeps
// declaration error (declared / true working set) and shows that feedback
// recovers most of the performance lost to mis-estimation in both
// directions.
#include <cstdio>
#include <vector>

#include "core/rda_scheduler.hpp"
#include "exp/harness.hpp"
#include "sim/engine.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace rda;
using rda::util::MB;

struct Outcome {
  double gflops = 0.0;
  double system_joules = 0.0;
};

Outcome run(bool feedback, double true_mb, double declared_mb) {
  sim::EngineConfig cfg;
  cfg.machine = sim::MachineConfig::e5_2420();
  sim::Engine engine(cfg);
  core::RdaOptions options;
  options.policy = core::PolicyKind::kStrict;
  options.feedback.enable = feedback;
  options.feedback.min_samples = 2;
  options.feedback.decay = 0.6;
  core::RdaScheduler gate(static_cast<double>(cfg.machine.llc_bytes),
                          cfg.calib, options);
  engine.set_gate(&gate);
  for (int p = 0; p < 12; ++p) {
    const sim::ProcessId pid = engine.create_process();
    sim::ProgramBuilder b;
    for (int r = 0; r < 8; ++r) {
      b.period("pp", 1.5e9, MB(true_mb), ReuseLevel::kHigh)
          .declared(MB(declared_mb));
    }
    engine.add_thread(pid, b.build());
  }
  const sim::SimResult result = engine.run();
  return {result.gflops(), result.system_joules()};
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Extension: counter-feedback demand correction ===\n");
  std::printf("(12 processes x 8 periods, true working set 2 MB each; the "
              "declaration is wrong by the given factor)\n\n");

  // 6 declaration errors x {feedback off, on} = 12 independent simulations.
  const double true_mb = 2.0;
  const std::vector<double> factors = {0.25, 0.5, 1.0, 2.0, 4.0, 6.0};
  std::vector<Outcome> outcomes(2 * factors.size());
  exp::run_cells(outcomes.size(), exp::parse_jobs(argc, argv),
                 [&](std::size_t cell) {
                   outcomes[cell] = run(/*feedback=*/cell % 2 == 1, true_mb,
                                        true_mb * factors[cell / 2]);
                 });

  util::Table table({"declared/true", "GFLOPS (declared only)",
                     "GFLOPS (+feedback)", "J (declared only)",
                     "J (+feedback)"});
  for (std::size_t f = 0; f < factors.size(); ++f) {
    const Outcome& off = outcomes[2 * f];
    const Outcome& on = outcomes[2 * f + 1];
    table.begin_row()
        .add_cell(factors[f], 2)
        .add_cell(off.gflops, 2)
        .add_cell(on.gflops, 2)
        .add_cell(off.system_joules, 0)
        .add_cell(on.system_joules, 0);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("reading: over-declaration (factor > 1) wastes concurrency and "
              "under-declaration (< 1) re-admits thrash; the counter "
              "feedback converges to the true demand after ~2 instances "
              "per period.\n");
  return 0;
}
