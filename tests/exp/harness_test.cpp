#include "exp/harness.hpp"

#include <gtest/gtest.h>

namespace rda::exp {
namespace {

workload::WorkloadSpec tiny(const char* name) {
  const auto specs = workload::table2_workloads();
  return workload::scale_workload(workload::find_workload(specs, name),
                                  0.05, 8);
}

TEST(Harness, RunRowCarriesAllMetrics) {
  RunConfig cfg;
  cfg.engine.machine = sim::MachineConfig::e5_2420();
  cfg.policy = core::PolicyKind::kStrict;
  const RunRow row = run_workload(tiny("BLAS-3"), cfg);
  EXPECT_EQ(row.workload, "BLAS-3");
  EXPECT_EQ(row.policy, "RDA:Strict");
  EXPECT_GT(row.system_joules, 0.0);
  EXPECT_GT(row.dram_joules, 0.0);
  EXPECT_LT(row.dram_joules, row.system_joules);
  EXPECT_GT(row.gflops, 0.0);
  EXPECT_GT(row.gflops_per_watt, 0.0);
  EXPECT_GT(row.makespan, 0.0);
  EXPECT_GT(row.total_flops, 0.0);
  // Cross-metric consistency.
  EXPECT_NEAR(row.gflops, row.total_flops / row.makespan / 1e9,
              1e-9 * row.gflops);
  EXPECT_NEAR(row.gflops_per_watt, row.total_flops / row.system_joules / 1e9,
              1e-9 * row.gflops_per_watt);
}

TEST(Harness, BaselineNeverBlocks) {
  RunConfig cfg;
  cfg.engine.machine = sim::MachineConfig::e5_2420();
  cfg.policy = core::PolicyKind::kLinuxDefault;
  const RunRow row = run_workload(tiny("Water_nsq"), cfg);
  EXPECT_EQ(row.gate_blocks, 0u);
}

TEST(Harness, ComparisonSelectorsPickExtremes) {
  PolicyComparison cmp;
  cmp.baseline.gflops = 10.0;
  cmp.baseline.system_joules = 1000.0;
  cmp.baseline.gflops_per_watt = 0.1;
  cmp.strict.gflops = 20.0;
  cmp.strict.system_joules = 400.0;
  cmp.compromise.gflops = 15.0;
  cmp.compromise.system_joules = 700.0;
  EXPECT_EQ(&cmp.best_rda_by_energy(), &cmp.strict);
  EXPECT_EQ(&cmp.best_rda_by_gflops(), &cmp.strict);
  EXPECT_DOUBLE_EQ(cmp.speedup(cmp.strict), 2.0);
  EXPECT_DOUBLE_EQ(cmp.energy_drop(cmp.strict), 0.6);
  cmp.compromise.system_joules = 300.0;
  EXPECT_EQ(&cmp.best_rda_by_energy(), &cmp.compromise);
}

TEST(Harness, ComparisonHandlesZeroBaseline) {
  PolicyComparison cmp;  // all zeros
  EXPECT_DOUBLE_EQ(cmp.speedup(cmp.strict), 0.0);
  EXPECT_DOUBLE_EQ(cmp.energy_drop(cmp.strict), 0.0);
  EXPECT_DOUBLE_EQ(cmp.efficiency_gain(cmp.strict), 0.0);
}

TEST(Harness, SummarizeEmptyIsZero) {
  const Headline h = summarize({});
  EXPECT_DOUBLE_EQ(h.max_speedup, 0.0);
  EXPECT_DOUBLE_EQ(h.avg_energy_drop, 0.0);
}

TEST(Harness, SummarizeAveragesAndMaxes) {
  PolicyComparison a;
  a.baseline.gflops = 10.0;
  a.baseline.system_joules = 100.0;
  a.strict.gflops = 20.0;           // 2.0x
  a.strict.system_joules = 50.0;    // -50%
  a.compromise = a.strict;
  PolicyComparison b;
  b.baseline.gflops = 10.0;
  b.baseline.system_joules = 100.0;
  b.strict.gflops = 10.0;           // 1.0x
  b.strict.system_joules = 100.0;   // 0%
  b.compromise = b.strict;
  const Headline h = summarize({a, b});
  EXPECT_DOUBLE_EQ(h.max_speedup, 2.0);
  EXPECT_DOUBLE_EQ(h.avg_speedup, 1.5);
  EXPECT_DOUBLE_EQ(h.max_energy_drop, 0.5);
  EXPECT_DOUBLE_EQ(h.avg_energy_drop, 0.25);
}

TEST(Harness, ParseJobsFlag) {
  const char* none[] = {"prog"};
  EXPECT_EQ(parse_jobs(1, const_cast<char**>(none)), 1);
  const char* four[] = {"prog", "--quick", "--jobs", "4"};
  EXPECT_EQ(parse_jobs(4, const_cast<char**>(four)), 4);
  // 0 means "one per hardware thread", floored at 1.
  const char* zero[] = {"prog", "--jobs", "0"};
  EXPECT_GE(parse_jobs(3, const_cast<char**>(zero)), 1);
  // Trailing --jobs with no value is ignored.
  const char* dangling[] = {"prog", "--jobs"};
  EXPECT_EQ(parse_jobs(2, const_cast<char**>(dangling)), 1);
}

TEST(Harness, RunMatrixIsRowMajorAndMatchesSingleRuns) {
  const std::vector<workload::WorkloadSpec> specs = {tiny("BLAS-3"),
                                                     tiny("Water_nsq")};
  std::vector<RunConfig> configs(2);
  for (RunConfig& c : configs) c.engine.machine = sim::MachineConfig::e5_2420();
  configs[0].policy = core::PolicyKind::kLinuxDefault;
  configs[1].policy = core::PolicyKind::kStrict;

  const std::vector<RunRow> rows = run_matrix(specs, configs, 2);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].workload, "BLAS-3");
  EXPECT_EQ(rows[0].policy, "Linux default");
  EXPECT_EQ(rows[1].workload, "BLAS-3");
  EXPECT_EQ(rows[1].policy, "RDA:Strict");
  EXPECT_EQ(rows[2].workload, "Water_nsq");
  EXPECT_EQ(rows[3].workload, "Water_nsq");

  // Each cell equals the standalone run bit for bit: cells are isolated.
  for (std::size_t s = 0; s < specs.size(); ++s) {
    for (std::size_t c = 0; c < configs.size(); ++c) {
      const RunRow solo = run_workload(specs[s], configs[c]);
      const RunRow& cell = rows[s * configs.size() + c];
      EXPECT_EQ(cell.system_joules, solo.system_joules);
      EXPECT_EQ(cell.makespan, solo.makespan);
      EXPECT_EQ(cell.gflops, solo.gflops);
      EXPECT_EQ(cell.gate_blocks, solo.gate_blocks);
      EXPECT_EQ(cell.context_switches, solo.context_switches);
    }
  }
}

TEST(Harness, ComparePoliciesAllMatchesIndividualComparisons) {
  const std::vector<workload::WorkloadSpec> specs = {tiny("BLAS-3"),
                                                     tiny("Raytrace")};
  sim::EngineConfig engine;
  engine.machine = sim::MachineConfig::e5_2420();
  const std::vector<PolicyComparison> all =
      compare_policies_all(specs, engine, 3);
  ASSERT_EQ(all.size(), 2u);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const PolicyComparison solo = compare_policies(specs[i], engine);
    EXPECT_EQ(all[i].baseline.system_joules, solo.baseline.system_joules);
    EXPECT_EQ(all[i].strict.makespan, solo.strict.makespan);
    EXPECT_EQ(all[i].compromise.gflops, solo.compromise.gflops);
  }
}

TEST(Harness, RdaOptionsOverrideWinsOverPolicyFields) {
  RunConfig cfg;
  cfg.engine.machine = sim::MachineConfig::e5_2420();
  cfg.policy = core::PolicyKind::kLinuxDefault;  // ignored:
  core::RdaOptions options;
  options.policy = core::PolicyKind::kStrict;
  cfg.rda_options = options;
  const RunRow row = run_workload(tiny("BLAS-3"), cfg);
  EXPECT_EQ(row.policy, "RDA:Strict");
  EXPECT_GT(row.gate_blocks, 0u);  // the gate was actually attached
}

TEST(Harness, ScaledWorkloadPreservesStructure) {
  const auto specs = workload::table2_workloads();
  const auto& full = workload::find_workload(specs, "Water_nsq");
  const auto scaled = workload::scale_workload(full, 0.5, 3);
  EXPECT_EQ(scaled.processes, 4);  // 12 / 3
  EXPECT_EQ(scaled.threads_per_process, full.threads_per_process);
  const auto fp = full.program(0, 0);
  const auto sp = scaled.program(0, 0);
  ASSERT_EQ(fp.phases.size(), sp.phases.size());
  for (std::size_t i = 0; i < fp.phases.size(); ++i) {
    EXPECT_NEAR(sp.phases[i].flops, 0.5 * fp.phases[i].flops, 1.0);
    EXPECT_EQ(sp.phases[i].wss_bytes, fp.phases[i].wss_bytes);
    EXPECT_EQ(sp.phases[i].marked, fp.phases[i].marked);
  }
}

}  // namespace
}  // namespace rda::exp
