// fault_matrix — seeded fault-injection sweep + invariant ledger.
//
// Runs the standard scenario grid (workload shape x substrate x seed)
// through both substrates, asserting after every cell that the admission
// ledger survived the injected faults: capacity conserved, no stranded
// waiters, registry drained, event stream reconciles with the monitor
// counters. The CSV is derived from seeded state only — no timestamps —
// so two runs with the same --seed are byte-identical regardless of --jobs,
// which is exactly what the tier-1 smoke stage compares.
//
//   fault_matrix [--seed S] [--seeds N] [--jobs J] [--out matrix.csv]
//
// Exit status: 0 when every cell's ledger held, 1 otherwise.
#include <cstdio>
#include <string>
#include <vector>

#include "exp/harness.hpp"
#include "fault/scenario.hpp"
#include "args.hpp"
#include "util/atomic_file.hpp"

int main(int argc, char** argv) {
  const rda::tools::Args args(argc, argv);
  const std::uint64_t seed = args.get_u64("seed", 1);
  const std::size_t seeds =
      static_cast<std::size_t>(args.get_u64("seeds", 3));
  const int jobs = static_cast<int>(args.get_u64("jobs", 1));
  const std::string out_path = args.get("out", "");

  const std::vector<rda::fault::ScenarioSpec> grid =
      rda::fault::scenario_grid(seed, seeds);

  // Pre-allocated slots consumed in cell order: output is independent of
  // how the cells interleave across jobs.
  std::vector<rda::fault::ScenarioResult> results(grid.size());
  rda::exp::run_cells(grid.size(), jobs, [&](std::size_t cell) {
    results[cell] = rda::fault::run_scenario(grid[cell]);
  });

  std::string csv = rda::fault::csv_header();
  std::size_t failed = 0;
  std::uint64_t faults_fired = 0;
  for (const rda::fault::ScenarioResult& r : results) {
    csv += rda::fault::csv_row(r);
    faults_fired += r.faults_fired;
    if (!r.ok) {
      ++failed;
      std::fprintf(stderr, "FAIL %s/%s seed=%llu: %s\n", r.name.c_str(),
                   r.substrate.c_str(),
                   static_cast<unsigned long long>(r.seed),
                   r.failure.c_str());
    }
  }

  if (out_path.empty()) {
    std::fputs(csv.c_str(), stdout);
  } else {
    rda::util::write_file_atomic(out_path, csv);
    std::printf("wrote %s\n", out_path.c_str());
  }
  std::printf("%zu cells, %llu faults fired, %zu ledger failures\n",
              results.size(), static_cast<unsigned long long>(faults_fired),
              failed);
  return failed == 0 ? 0 : 1;
}
