#include "core/admission.hpp"

#include <utility>

#include "util/check.hpp"

namespace rda::core {

AdmissionCore::AdmissionCore(AdmissionConfig config)
    : config_(config),
      policy_(make_policy(config.policy, config.oversubscription)),
      predicate_(*policy_, resources_),
      monitor_(predicate_, resources_, config.monitor),
      corrector_(config.feedback) {
  resources_.set_capacity(ResourceKind::kLLC, config_.llc_capacity_bytes);
  if (config_.bandwidth_capacity > 0.0) {
    resources_.set_capacity(ResourceKind::kMemBandwidth,
                            config_.bandwidth_capacity);
  }
  monitor_.set_trace_sink(config_.trace_sink);
}

bool AdmissionCore::fast_path_usable(
    sim::ThreadId thread, sim::ProcessId process,
    const std::vector<ResourceDemand>& demands) const {
  if (!config_.fast_path) return false;
  const auto it = cache_.find(thread);
  if (it == cache_.end() || !it->second.valid) return false;
  const std::vector<ResourceDemand>& cached = it->second.demands;
  if (cached.size() != demands.size()) return false;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    if (cached[i].resource != demands[i].resource) return false;
    if (cached[i].amount != demands[i].amount) return false;
  }
  // Nobody else touched the load table since this thread's own last call,
  // the previous identical request was admitted, and nobody is queued ahead
  // — so replaying the predicate gives the identical "admit".
  if (it->second.version != resources_.version()) return false;
  if (!monitor_.waitlist().empty()) return false;
  if (monitor_.pool_disabled(process)) return false;
  return true;
}

AdmitTicket AdmissionCore::admit(AdmitRequest request, double now) {
  RDA_CHECK_MSG(!request.demands.empty(),
                "pp_begin with no declared demand from thread "
                    << request.thread);
  // A nested begin (periods do not nest, §2.3 — a second begin from the
  // same thread would leak the first period's charged load forever) is
  // rejected by the registry insert inside begin_period, before any stats
  // or trace mutation. Counters touched on this path are deferred until
  // after that insert for the same reason.
  AdmitTicket ticket;
  ResourceDemand& primary = request.demands.front();
  const double declared = primary.amount;
  bool partitioned = false;
  if (primary.resource == ResourceKind::kLLC) {
    // Counter-feedback: charge the corrected demand learned from previous
    // instances of this period (keyed by its static code location).
    if (config_.feedback.enable) {
      primary.amount *= corrector_.correction(request.label);
    }
    if (config_.partitioning.enable &&
        primary.amount > resources_.capacity(ResourceKind::kLLC)) {
      // §6: a larger-than-LLC working set streams from DRAM regardless —
      // confine it to a small partition and charge only that.
      ticket.occupancy_cap = config_.partitioning.streaming_fraction *
                             resources_.capacity(ResourceKind::kLLC);
      primary.amount = ticket.occupancy_cap;
      partitioned = true;
    }
  }

  const bool fast =
      fast_path_usable(request.thread, request.process, request.demands);

  PeriodRecord record;
  record.thread = request.thread;
  record.process = request.process;
  if (config_.fast_path) {
    record.demands = request.demands;  // copy: the cache keeps the original
  } else {
    record.demands = std::move(request.demands);
  }
  record.reuse = request.reuse;
  record.label = std::move(request.label);
  record.declared_demand = declared;
  const ProgressMonitor::BeginOutcome outcome =
      monitor_.begin_period(std::move(record), now);

  RDA_CHECK_MSG(!fast || outcome.admitted,
                "fast path replay diverged from the cached admit decision");
  if (partitioned) ++partitioned_periods_;
  if (fast) ++fast_path_hits_;

  if (config_.fast_path) {
    ThreadCache& cache = cache_[request.thread];
    cache.valid = outcome.admitted && !outcome.forced;
    cache.demands = std::move(request.demands);
    cache.version = resources_.version();
  }

  ticket.id = outcome.id;
  ticket.admitted = outcome.admitted;
  ticket.forced = outcome.forced;
  ticket.fast_path = fast;
  return ticket;
}

bool AdmissionCore::withdraw(PeriodId id, double now) {
  RDA_CHECK_MSG(monitor_.registry().find(id) != nullptr,
                "withdraw of unknown period id " << id);
  return monitor_.cancel_waiting(id, now);
}

ReleaseTicket AdmissionCore::release(PeriodId id,
                                     const ReleaseObservation& observed_in,
                                     double now) {
  ReleaseTicket ticket;
  ReleaseObservation observed = observed_in;
  if (config_.fault_injector != nullptr && observed.has_counters) {
    const PeriodRecord* active = monitor_.registry().find(id);
    RDA_CHECK_MSG(active != nullptr, "pp_end with unknown period id " << id);
    const fault::FaultSpec* fired = config_.fault_injector->consult(
        fault::Hook::kRelease, active->thread);
    if (fired != nullptr && fired->kind == fault::FaultKind::kCorruptCounter) {
      // A garbage counter read: the corrector must stay within its clamp
      // bounds instead of poisoning future demands.
      observed.peak_occupancy *= fired->factor;
    }
  }
  if (observed.has_counters && config_.feedback.enable) {
    const PeriodRecord* active = monitor_.registry().find(id);
    RDA_CHECK_MSG(active != nullptr, "pp_end with unknown period id " << id);
    corrector_.observe(active->label, active->declared_demand,
                       observed.peak_occupancy, observed.cache_contended);
  }
  if (!config_.fast_path) {
    // end_period itself rejects unknown ids; no pre-lookup needed.
    ticket.record = monitor_.end_period(id, now);
    return ticket;
  }
  const PeriodRecord* active = monitor_.registry().find(id);
  RDA_CHECK_MSG(active != nullptr, "pp_end with unknown period id " << id);
  const sim::ThreadId thread = active->thread;
  // The end is fast-pathable when no waiter can be affected: with an empty
  // waitlist the decrement wakes nobody, so the kernel entry is skippable.
  const bool fast = monitor_.waitlist().empty();
  ticket.fast_path = fast;
  // Replay validity: the cached admit decision survives this end only if
  // nobody else touched the load table between our begin and now (then our
  // increment+decrement cancel and the table returns to the decision's
  // state).
  ThreadCache& cache = cache_[thread];
  const bool undisturbed = resources_.version() == cache.version;
  ticket.record = monitor_.end_period(id, now);
  if (fast && undisturbed && cache.valid) {
    cache.version = resources_.version();
  } else {
    cache.valid = false;
  }
  return ticket;
}

}  // namespace rda::core
