// AdmissionCore — the one transactional admit/withdraw/release engine.
//
// Every substrate that gates progress periods (the discrete-event simulator
// via core::RdaScheduler, real threads via rt::AdmissionGate, and the
// cluster layer's per-node gates) used to re-implement the same pipeline:
// demand correction, §6 streaming partitioning, the Fig. 11 cached-decision
// fast path, registry + predicate + waitlist bookkeeping. AdmissionCore owns
// that pipeline once; the substrates shrink to adapters that translate their
// wake mechanism (sim event injection, condvar notify) into the core's
// Waker callback and their notion of time into `now` seconds.
//
// Threading contract (sharded edition): the core is INTERNALLY synchronized
// and splits every operation across two lanes.
//
//   * Fast lane (lock-free, the common case): when the system is CALM — no
//     fault injector, no counter feedback, nobody parked on any waitlist,
//     no §3.4-disabled pool — admit claims budget from the striped
//     ResourceMonitor with atomic CAS and inserts into the calling thread's
//     registry shard; release removes the record from its shard and returns
//     the budget. The only shared state two unrelated threads touch is
//     their own shard/stripe, so contended throughput scales with cores.
//
//   * Slow lane: everything else (parks, wakes, pools, watchdog, feedback,
//     fault hooks) runs the full ProgressMonitor logic under one slow
//     mutex, exactly as the pre-shard core did — byte-for-byte identical
//     traces and stats when calls are serialized.
//
// The lanes hand off via a Dekker-style handshake on seq_cst atomics: a
// parking thread publishes its waitlist entry and then re-reads the budget
// (begin_period's second look); a fast release returns its budget and then
// re-reads the waitlist count, escalating to a slow-lane rescan if anybody
// is parked. One side always sees the other, so no wake is lost.
//
// Wakes are BATCHED: the slow lane accumulates woken threads per operation
// and delivers them once, AFTER releasing the slow mutex (set_batch_waker
// receives the whole batch; a plain set_waker waker is called per thread,
// in wake order, at the same point). Delivering outside the lock lets a
// wake callback re-enter the core — the sim engine's death-at-wake fault
// path reaps the dying thread from inside the wake. The woken period is
// already marked admitted before its wake is delivered, so a waiter that
// probes its fate (is_admitted / take_rejection / …, all under the slow
// mutex) instead of sleeping observes a consistent verdict.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/feedback.hpp"
#include "core/policy.hpp"
#include "core/tenant_ledger.hpp"
#include "core/predicate.hpp"
#include "core/progress_monitor.hpp"
#include "core/resource_monitor.hpp"
#include "core/sharding.hpp"
#include "fault/fault.hpp"
#include "obs/sink.hpp"
#include "obs/summary.hpp"

namespace rda::core {

/// §6 future-work extension: cache partitioning for streaming periods.
/// "If an application whose working set size is larger than the LLC is
///  scheduled (e.g., streaming applications), we can partition the cache and
///  give this application only a small portion ... because it would fetch
///  most data from main memory regardless."
struct PartitionOptions {
  bool enable = false;
  /// Fraction of LLC capacity granted to a larger-than-LLC period. The
  /// period is admitted with this reduced charge and confined to it, so
  /// normal periods co-run instead of waiting behind it.
  double streaming_fraction = 0.10;
};

/// Per-resource bound override: one resource kind running a different
/// Strict/Compromise configuration than the core-wide default.
struct PerResourcePolicy {
  ResourceKind resource = ResourceKind::kLLC;
  PolicyKind policy = PolicyKind::kStrict;
  double oversubscription = 2.0;
};

struct AdmissionConfig {
  /// LLC capacity the admission decisions are made against (bytes).
  double llc_capacity_bytes = 15360.0 * 1024.0;  // paper Table 1 default
  /// Multi-resource extension: when > 0, DRAM bandwidth (bytes/second)
  /// becomes a second gated resource.
  double bandwidth_capacity = 0.0;
  /// Multi-resource extension: when > 0, a RAPL-style package power budget
  /// (watts) becomes a gated resource — periods declaring kEnergyBudget
  /// demands are throttled to hold the cap.
  double energy_capacity_watts = 0.0;
  PolicyKind policy = PolicyKind::kStrict;
  /// Oversubscription factor x for RDA:Compromise (paper uses 2).
  double oversubscription = 2.0;
  /// Per-resource overrides of the default bound policy above (e.g. LLC on
  /// Compromise while the watts budget stays Strict). At most one entry per
  /// resource kind; later entries win.
  std::vector<PerResourcePolicy> resource_policies;
  /// How per-resource verdicts fold into one admission decision. Anything
  /// but all-must-fit forces every call through the slow lane (the
  /// lock-free budget CAS can only express per-resource hard fits).
  CombinerOptions combiner{};
  /// Enable the cached-decision fast path (Fig. 11 second series).
  bool fast_path = false;
  PartitionOptions partitioning{};
  /// Counter-feedback extension: correct declared demands from observed
  /// per-period hardware counters. Forces every call through the slow lane
  /// (the corrector is serial state).
  FeedbackOptions feedback{};
  MonitorOptions monitor{};
  /// Tenant-truth enforcement tier (non-owning; nullptr = off). When set,
  /// every completed period with counters is audited against its tenant's
  /// declaration (request.process is the tenant identity) and admissions
  /// from haircut-rung tenants are charged the audited usage ratio instead
  /// of the declared demand. Forces every call through the slow lane — the
  /// ledger is serial state, like the corrector.
  TenantLedger* tenant_ledger = nullptr;
  /// Admission-lifecycle event sink (non-owning; nullptr = tracing off).
  obs::TraceSink* trace_sink = nullptr;
  /// Fault injection (non-owning; nullptr = off). The core itself consults
  /// only the kRelease hook (corrupted counter observations); the substrates
  /// consult the lifecycle hooks around their own admit/block/wake sites.
  /// Attaching an injector forces every call through the slow lane so the
  /// fault matrix stays deterministic.
  fault::FaultInjector* fault_injector = nullptr;
};

/// One pp_begin, substrate-neutral. The first demand is the primary one;
/// when it targets the LLC it is reshaped by counter feedback and §6
/// partitioning before admission.
struct AdmitRequest {
  sim::ThreadId thread = sim::kInvalidThread;
  sim::ProcessId process = sim::kInvalidProcess;
  std::vector<ResourceDemand> demands;
  ReuseLevel reuse = ReuseLevel::kLow;
  std::string label;
};

/// Outcome of admit(). `admitted == false` means the period is parked on
/// the waitlist; the caller must either sleep until the Waker fires for its
/// thread (the grant) or withdraw() the request.
struct AdmitTicket {
  PeriodId id = kInvalidPeriod;
  bool admitted = false;
  bool forced = false;     ///< admitted via the liveness override
  bool fast_path = false;  ///< decision served from the thread cache
  /// Admitted on the post-park second look of the lost-wake handshake: the
  /// period visited the waitlist (blocks was counted) but the caller must
  /// NOT sleep — no grant will ever arrive for it.
  bool woke_from_waitlist = false;
  /// Non-zero when §6 partitioning capped the period's LLC occupancy.
  double occupancy_cap = 0.0;
};

/// Observed hardware counters of a completed period, fed back into the
/// demand corrector. `has_counters == false` (the default) skips feedback —
/// the native runtime has no per-period counter isolation by default.
struct ReleaseObservation {
  double peak_occupancy = 0.0;  ///< bytes actually resident at peak
  bool cache_contended = false;
  bool has_counters = false;
  /// Observed DRAM bandwidth (bytes/second) for the vector-demand feedback
  /// path; consumed only when has_bandwidth is set AND the period declared
  /// a kMemBandwidth demand.
  double peak_bandwidth = 0.0;
  bool has_bandwidth = false;
  /// True when the memory bus was saturated while the period ran — its
  /// bandwidth peak is then a lower bound, like cache_contended for the LLC.
  bool bandwidth_contended = false;
};

/// Outcome of release().
struct ReleaseTicket {
  bool fast_path = false;  ///< release needed no full "kernel entry"
  PeriodRecord record;     ///< the closed period
};

/// Outcome of try_withdraw() — the race-tolerant withdraw the native gate's
/// timeout path uses.
enum class WithdrawResult {
  kCancelled,        ///< was waitlisted; now cancelled
  kAlreadyAdmitted,  ///< the grant won the race; caller owns the admission
  kGone,             ///< already rejected/reclaimed/unknown
};

class AdmissionCore {
 public:
  /// The kernel wake event, abstracted: called once per period admitted off
  /// the waitlist, with the thread that parked it. Invoked after the slow
  /// mutex is released — re-entering the core from the callback is safe.
  using Waker = std::function<void(sim::ThreadId)>;

  explicit AdmissionCore(AdmissionConfig config = {});

  AdmissionCore(const AdmissionCore&) = delete;
  AdmissionCore& operator=(const AdmissionCore&) = delete;

  void set_waker(Waker waker) { monitor_.set_waker(std::move(waker)); }
  /// Batched wake delivery: one call per slow-lane operation with every
  /// thread it admitted off the waitlist, in wake order. Takes precedence
  /// over set_waker.
  void set_batch_waker(ProgressMonitor::BatchWakeFn waker) {
    monitor_.set_batch_waker(std::move(waker));
  }
  /// Eviction notices (watchdog rung 3, waitlisted-orphan reclaim): lets
  /// the substrate rouse a sleeping owner that will never get a grant.
  void set_evict_notifier(ProgressMonitor::EvictFn notifier) {
    monitor_.set_evict_notifier(std::move(notifier));
  }
  void set_trace_sink(obs::TraceSink* sink) {
    monitor_.set_trace_sink(sink);
    config_.trace_sink = sink;
  }
  void set_wake_strategy(std::unique_ptr<WakeStrategy> strategy) {
    monitor_.set_wake_strategy(std::move(strategy));
  }

  /// Declares a process as a task-pool (§3.4 group pause semantics).
  void mark_pool(sim::ProcessId process) {
    std::lock_guard<std::mutex> lock(slow_mu_);
    monitor_.mark_pool(process);
  }

  /// pp_begin. Applies feedback correction and §6 partitioning to the
  /// primary LLC demand, consults the fast-path cache, then admits through
  /// the calm lock-free lane or the full predicate pipeline. Throws
  /// util::CheckFailure on a nested begin from the same thread (before any
  /// stats or trace mutation).
  AdmitTicket admit(AdmitRequest request, double now);

  /// Batched pp_begin for the service front end's drain loop. Semantically
  /// identical to calling admit() per request in order (tickets come back in
  /// request order), but calm requests go through the lock-free lane
  /// individually while every slow-lane leftover shares ONE slow-mutex
  /// acquisition, one wake batch, and one deliver — the per-call lock and
  /// notify cost is amortized across the whole batch. Leftovers keep their
  /// original arrival order (FIFO fairness). A nested-begin throw aborts the
  /// batch like it aborts the single call.
  std::vector<AdmitTicket> admit_batch(std::vector<AdmitRequest> requests,
                                       double now);

  /// Withdraws a request that is still waitlisted (timeout / try_begin /
  /// shutdown). Returns false — withdrawing NOTHING — when the period was
  /// already admitted (the grant raced the timeout; the caller must consume
  /// it and eventually release()). Throws on an unknown id.
  bool withdraw(PeriodId id, double now);

  /// Race-tolerant withdraw: like withdraw(), but an id that vanished
  /// (watchdog rejection, orphan reclaim) reports kGone instead of
  /// throwing, and a won-by-the-grant race reports kAlreadyAdmitted.
  WithdrawResult try_withdraw(PeriodId id, double now);

  /// pp_end. Feeds observed counters to the demand corrector, releases the
  /// period's load and rescans the waitlist (invoking the Waker for every
  /// admission). Throws on an unknown id or a never-admitted period.
  ReleaseTicket release(PeriodId id, const ReleaseObservation& observed,
                        double now);

  /// Batched pp_end. Calm records release through the lock-free lane; the
  /// rest are discharged together under one slow-mutex hold with a single
  /// waitlist rescan for the whole batch (ProgressMonitor::end_periods), and
  /// the Dekker re-check after a purely fast batch escalates at most once.
  /// No counter observations: feedback-corrected periods must go through the
  /// single-call release() (feedback disables the calm lane anyway).
  std::vector<ReleaseTicket> release_batch(const std::vector<PeriodId>& ids,
                                           double now);

  /// Active (admitted OR waitlisted) period of a thread, if any.
  std::optional<PeriodId> active_for_thread(sim::ThreadId thread) const {
    return monitor_.registry().active_for_thread(thread);
  }

  /// --- Self-healing lifecycle ---------------------------------------------

  /// Reaps whatever period `thread` left behind (thread-exit detection /
  /// task teardown): an admitted orphan's load is returned and waiters are
  /// rescanned; a waitlisted orphan is evicted. See ProgressMonitor.
  ProgressMonitor::ReapOutcome reap(sim::ThreadId thread, double now,
                                    bool remember_waiter = false);

  /// Lease-based reclamation: reaps every period whose lease is more than
  /// `max_epoch_age` advance_epoch() calls stale. heartbeat() refreshes a
  /// live thread's lease.
  std::size_t sweep(std::uint64_t max_epoch_age, double now,
                    bool remember_waiters = false);
  void heartbeat(sim::ThreadId thread);
  void advance_epoch() { monitor_.advance_epoch(); }

  /// Time-triggered starvation-watchdog pass (the round trigger runs inside
  /// every rescan). Returns true when a waiter moved a degradation rung.
  bool watchdog_tick(double now);

  /// Stall-triggered escalation: the substrate proved nothing can progress,
  /// so the head-most unexhausted waiter moves a rung immediately.
  bool watchdog_stalled(double now);

  /// Post-wait state probes for the substrates: a granted period shows as
  /// admitted; a watchdog-rejected or reaped-while-waiting one never gets a
  /// Waker grant and must be discovered (and consumed) through these. All
  /// take the slow mutex: an operation's wakes are flushed before its
  /// effects become observable here.
  bool is_admitted(PeriodId id) const;
  bool is_rejected(PeriodId id) const;
  bool take_rejection(PeriodId id);
  std::optional<PeriodId> take_rejection_for_thread(sim::ThreadId thread);
  std::vector<sim::ThreadId> rejected_threads() const;
  bool is_reclaimed(PeriodId id) const;
  bool take_reclaimed(PeriodId id);

  /// Shard-accounting audit, meaningful at quiescence (no in-flight calls):
  /// striped usage vs registry ground truth, budget conservation, waitlist
  /// counter vs contents, oversubscription tally vs oversub records.
  struct AuditReport {
    bool ok = true;
    std::string detail;  ///< first violated invariant, empty when ok
  };
  AuditReport audit() const;

  /// Per-resource ledger snapshot (one row per configured kind, in kind
  /// order) for obs::summarize and obs::reconcile_resources: capacity,
  /// policy bound, aggregate usage, unclaimed budget, overdraft, and the
  /// watchdog oversubscription tally.
  std::vector<obs::ResourceRow> resource_rows() const;

  const AdmissionConfig& config() const { return config_; }
  /// Slow-lane monitor stats plus the fast lane's per-shard begin/end
  /// counters, merged. By value: assembled at call time.
  MonitorStats stats() const;
  std::uint64_t fast_path_hits() const { return fast_path_hits_.load(); }
  std::uint64_t partitioned_periods() const {
    return partitioned_periods_.load();
  }
  ResourceMonitor& resources() { return resources_; }
  const ResourceMonitor& resources() const { return resources_; }
  const ProgressMonitor& monitor() const { return monitor_; }
  const SchedulingPolicy& policy() const { return *policy_; }
  const SchedulingPolicy& policy(ResourceKind kind) const {
    return *policy_table_[static_cast<std::size_t>(kind)];
  }
  const CombiningPolicy& combiner() const { return *combiner_; }
  const DemandCorrector& corrector() const { return corrector_; }

 private:
  struct ThreadCache {
    bool valid = false;
    /// Post-transformation demands of the last admitted request.
    std::vector<ResourceDemand> demands;
    std::uint64_t version = 0;  ///< load-table version at our last call
  };

  /// Per-shard fast-lane state: the Fig. 11 decision cache for the threads
  /// hashing here plus this shard's share of the begin/end counters.
  /// Cacheline-aligned so shards do not false-share.
  struct alignas(64) ShardSlot {
    std::mutex cache_mu;
    std::unordered_map<sim::ThreadId, ThreadCache> cache;
    std::atomic<std::uint64_t> begins{0};
    std::atomic<std::uint64_t> ends{0};
    std::atomic<std::uint64_t> immediate{0};
  };

  /// True when the lock-free lane may decide alone: all-must-fit combining,
  /// no injector, no feedback, nobody parked, no pool disabled. Reads two
  /// seq_cst atomics.
  bool calm() const {
    return combiner_calm_ && config_.fault_injector == nullptr &&
           !config_.feedback.enable && config_.tenant_ledger == nullptr &&
           monitor_.waitlist().size() == 0 &&
           monitor_.disabled_pool_count() == 0;
  }

  bool fast_path_usable(const ShardSlot& slot, sim::ThreadId thread,
                        sim::ProcessId process,
                        const std::vector<ResourceDemand>& demands) const;
  /// Lock-free admit attempt. False = budget contention or nested-begin
  /// impossible here; caller falls through to the slow lane.
  bool fast_admit(AdmitRequest& request, double now, bool partitioned,
                  double declared, AdmitTicket& ticket);
  AdmitTicket slow_admit(AdmitRequest request, double now, bool partitioned,
                         double declared, double occupancy_cap);
  /// slow_admit body; caller holds slow_mu_ inside an open WakeBatch.
  AdmitTicket slow_admit_locked(AdmitRequest request, double now,
                                bool partitioned, double declared,
                                double occupancy_cap);
  ReleaseTicket slow_release(PeriodId id, const ReleaseObservation& observed,
                             double now);
  /// Lock-free release attempt (no Dekker re-check — the caller owes one
  /// rescan check per call/batch). False = record not claimable calmly.
  bool fast_release(PeriodId id, double now, ReleaseTicket& ticket);
  void trace(obs::EventKind kind, double now, const PeriodRecord& record);

  AdmissionConfig config_;
  std::unique_ptr<SchedulingPolicy> policy_;
  /// Owned per-resource override policies (resource_policies entries).
  std::vector<std::unique_ptr<SchedulingPolicy>> override_policies_;
  /// Per-kind bound policies; kinds without an override point at policy_.
  PolicyTable policy_table_{};
  std::unique_ptr<CombiningPolicy> combiner_;
  /// Precomputed: the configured combiner admits via per-resource hard
  /// fits, so the lock-free lane's budget CAS expresses it exactly.
  bool combiner_calm_ = true;
  ResourceMonitor resources_;
  SchedulingPredicate predicate_;
  ProgressMonitor monitor_;
  DemandCorrector corrector_;

  /// Serializes the slow lane (ProgressMonitor and everything reachable
  /// from it). Lock order: slow_mu_ → registry shard / cache_mu.
  mutable std::mutex slow_mu_;

  std::array<ShardSlot, kNumShards> slots_;
  std::atomic<std::uint64_t> fast_path_hits_{0};
  std::atomic<std::uint64_t> partitioned_periods_{0};
};

}  // namespace rda::core
