// Drain-shard infrastructure: tenant→shard routing hash and the
// inter-shard mailbox.
//
// The drain loop is sharded K ways (DESIGN §16): every submission is
// routed AT PUSH TIME to one of K per-shard `SubmissionQueue`s by a seeded
// hash of its tenant id, and each shard is the sole consumer of its own
// queue — no shard ever touches another shard's queue tail. Cross-shard
// effects (whole-tenant work stealing, node-death reroutes, spill
// placement on another shard's node) never reach into a foreign queue
// either; they are posted to the target shard's `Mailbox` and drained at
// the start of the next drain pass.
//
// Mailbox ordering is the load-bearing determinism rule: every entry
// carries a global seniority number assigned when the requeue decision was
// made, and `drain` hands entries back in ascending seniority regardless
// of the order the sends landed — so a steal and a node-death reroute
// arriving in the same round replay in decision order, and the lockstep
// merge (frontend.cpp) produces the same byte stream for any shard count.
//
// In wall-clock mode (service/pump.hpp) shards are real consumer threads
// and the lock-light mailbox role is played by the target shard's MPSC
// queue itself (push is multi-producer safe); this Mailbox is the
// virtual-time, lockstep-round variant where ordering, not thread safety,
// is the contract.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rda::service {

/// splitmix64 finalizer over (seed, key): the tenant→shard routing hash.
/// Seeded so two fleets with different seeds shard their tenants
/// differently, deterministic so a tenant's shard never moves.
inline std::uint64_t shard_hash(std::uint64_t seed, std::uint64_t key) {
  std::uint64_t x = key + 0x9e3779b97f4a7c15ull * (seed + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// The shard that drains submissions for `tenant` in a K-shard fleet.
inline int shard_of_tenant(std::uint64_t seed, std::uint64_t tenant,
                           int shards) {
  return static_cast<int>(shard_hash(seed, tenant) %
                          static_cast<std::uint64_t>(shards));
}

/// The shard that owns (executes admissions against) node `node`. With
/// more shards than nodes the extra shards own no node — they still route
/// and drain their tenants' submissions, the placement just always lands
/// in another shard's node bucket.
inline int shard_of_node(int node, int shards) { return node % shards; }

/// Seniority-ordered inter-shard mailbox. Sends may arrive in any order
/// within a round; drain returns entries sorted by the seniority number
/// stamped at decision time, so replay order is the decision order.
template <typename T>
class Mailbox {
 public:
  struct Entry {
    std::uint64_t seniority = 0;
    T value{};
  };

  void send(std::uint64_t seniority, T value) {
    entries_.push_back(Entry{seniority, std::move(value)});
  }

  /// Appends every held entry to `out` in ascending seniority order and
  /// empties the box. Returns how many entries were drained.
  std::size_t drain(std::vector<Entry>& out) {
    std::sort(entries_.begin(), entries_.end(),
              [](const Entry& a, const Entry& b) {
                return a.seniority < b.seniority;
              });
    const std::size_t n = entries_.size();
    for (Entry& entry : entries_) out.push_back(std::move(entry));
    entries_.clear();
    return n;
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

 private:
  std::vector<Entry> entries_;
};

}  // namespace rda::service
