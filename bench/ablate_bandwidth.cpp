// Extension bench: DRAM bandwidth as a second gated resource.
//
// The paper's BLAS-1 result is its one loss: streaming workloads gain
// nothing from LLC-only admission because their bottleneck is memory
// bandwidth, so RDA just reduces concurrency. With the multi-resource
// extension, streaming periods declare their bandwidth appetite and the
// predicate stops co-scheduling more streams than the memory system can
// serve — the surplus cores idle instead of queueing on DRAM, which costs
// the same time but less energy.
#include <cstdio>
#include <vector>

#include "core/rda_scheduler.hpp"
#include "exp/harness.hpp"
#include "sim/engine.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace rda;
using rda::util::MB;

struct Outcome {
  double gflops = 0.0;
  double system_joules = 0.0;
  double makespan = 0.0;
  std::uint64_t blocks = 0;
};

/// 24 streaming processes (BLAS-1-like): 0.6 MB working sets, ~7 GB/s of
/// DRAM appetite each when unconstrained.
Outcome run(bool gate_bandwidth, double per_stream_gbs) {
  sim::EngineConfig cfg;
  cfg.machine = sim::MachineConfig::e5_2420();
  sim::Engine engine(cfg);

  core::RdaOptions options;
  options.policy = core::PolicyKind::kStrict;
  options.bandwidth_capacity =
      gate_bandwidth ? cfg.machine.dram_bandwidth : 0.0;
  core::RdaScheduler gate(static_cast<double>(cfg.machine.llc_bytes),
                          cfg.calib, options);
  engine.set_gate(&gate);

  for (int i = 0; i < 24; ++i) {
    const sim::ProcessId pid = engine.create_process();
    engine.add_thread(pid,
                      sim::ProgramBuilder()
                          .period_bw("stream", 1.5e9, MB(0.6),
                                     ReuseLevel::kLow, per_stream_gbs * 1e9)
                          .build());
  }
  const sim::SimResult result = engine.run();
  Outcome o;
  o.gflops = result.gflops();
  o.system_joules = result.system_joules();
  o.makespan = result.makespan;
  o.blocks = result.gate_blocks;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Extension: bandwidth-aware admission (24 streaming "
              "processes, 30 GB/s machine) ===\n\n");

  // 3 declared bandwidths x {gating off, on} = 6 independent simulations.
  const std::vector<double> gbs_points = {7.0, 5.0, 3.0};
  std::vector<Outcome> outcomes(2 * gbs_points.size());
  exp::run_cells(outcomes.size(), exp::parse_jobs(argc, argv),
                 [&](std::size_t cell) {
                   outcomes[cell] = run(/*gate_bandwidth=*/cell % 2 == 1,
                                        gbs_points[cell / 2]);
                 });

  util::Table table({"gating", "declared GB/s each", "GFLOPS", "makespan [s]",
                     "system J", "gate blocks"});
  for (std::size_t g = 0; g < gbs_points.size(); ++g) {
    const double gbs = gbs_points[g];
    const Outcome& off = outcomes[2 * g];
    const Outcome& on = outcomes[2 * g + 1];
    table.begin_row()
        .add_cell("LLC only (paper)")
        .add_cell(gbs, 1)
        .add_cell(off.gflops, 2)
        .add_cell(off.makespan, 1)
        .add_cell(off.system_joules, 0)
        .add_cell(off.blocks);
    table.begin_row()
        .add_cell("LLC + bandwidth")
        .add_cell(gbs, 1)
        .add_cell(on.gflops, 2)
        .add_cell(on.makespan, 1)
        .add_cell(on.system_joules, 0)
        .add_cell(on.blocks);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("reading: throughput is pinned by the 30 GB/s memory system "
              "either way; bandwidth gating runs fewer streams at once, so "
              "the surplus cores idle and the same work costs less "
              "energy.\n");
  return 0;
}
